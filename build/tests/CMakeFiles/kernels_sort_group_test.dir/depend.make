# Empty dependencies file for kernels_sort_group_test.
# This may be replaced when dependencies are built.
