file(REMOVE_RECURSE
  "CMakeFiles/kernels_sort_group_test.dir/kernels_sort_group_test.cc.o"
  "CMakeFiles/kernels_sort_group_test.dir/kernels_sort_group_test.cc.o.d"
  "kernels_sort_group_test"
  "kernels_sort_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_sort_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
