file(REMOVE_RECURSE
  "CMakeFiles/kernels_basic_test.dir/kernels_basic_test.cc.o"
  "CMakeFiles/kernels_basic_test.dir/kernels_basic_test.cc.o.d"
  "kernels_basic_test"
  "kernels_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
