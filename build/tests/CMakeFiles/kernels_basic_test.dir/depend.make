# Empty dependencies file for kernels_basic_test.
# This may be replaced when dependencies are built.
