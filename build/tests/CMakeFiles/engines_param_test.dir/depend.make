# Empty dependencies file for engines_param_test.
# This may be replaced when dependencies are built.
