file(REMOVE_RECURSE
  "CMakeFiles/engines_param_test.dir/engines_param_test.cc.o"
  "CMakeFiles/engines_param_test.dir/engines_param_test.cc.o.d"
  "engines_param_test"
  "engines_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engines_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
