file(REMOVE_RECURSE
  "CMakeFiles/kernels_misc_test.dir/kernels_misc_test.cc.o"
  "CMakeFiles/kernels_misc_test.dir/kernels_misc_test.cc.o.d"
  "kernels_misc_test"
  "kernels_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
