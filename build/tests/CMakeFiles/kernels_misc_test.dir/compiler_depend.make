# Empty compiler generated dependencies file for kernels_misc_test.
# This may be replaced when dependencies are built.
