# Empty compiler generated dependencies file for bento_test.
# This may be replaced when dependencies are built.
