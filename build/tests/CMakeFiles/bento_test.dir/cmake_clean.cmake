file(REMOVE_RECURSE
  "CMakeFiles/bento_test.dir/bento_test.cc.o"
  "CMakeFiles/bento_test.dir/bento_test.cc.o.d"
  "bento_test"
  "bento_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
