# Empty compiler generated dependencies file for json_pipeline.
# This may be replaced when dependencies are built.
