file(REMOVE_RECURSE
  "CMakeFiles/json_pipeline.dir/json_pipeline.cpp.o"
  "CMakeFiles/json_pipeline.dir/json_pipeline.cpp.o.d"
  "json_pipeline"
  "json_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
