file(REMOVE_RECURSE
  "CMakeFiles/bento_sim.dir/device.cc.o"
  "CMakeFiles/bento_sim.dir/device.cc.o.d"
  "CMakeFiles/bento_sim.dir/machine.cc.o"
  "CMakeFiles/bento_sim.dir/machine.cc.o.d"
  "CMakeFiles/bento_sim.dir/memory.cc.o"
  "CMakeFiles/bento_sim.dir/memory.cc.o.d"
  "CMakeFiles/bento_sim.dir/parallel.cc.o"
  "CMakeFiles/bento_sim.dir/parallel.cc.o.d"
  "CMakeFiles/bento_sim.dir/spill.cc.o"
  "CMakeFiles/bento_sim.dir/spill.cc.o.d"
  "libbento_sim.a"
  "libbento_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
