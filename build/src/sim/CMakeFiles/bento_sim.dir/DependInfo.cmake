
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/bento_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/bento_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/bento_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/bento_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/bento_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/bento_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/parallel.cc" "src/sim/CMakeFiles/bento_sim.dir/parallel.cc.o" "gcc" "src/sim/CMakeFiles/bento_sim.dir/parallel.cc.o.d"
  "/root/repo/src/sim/spill.cc" "src/sim/CMakeFiles/bento_sim.dir/spill.cc.o" "gcc" "src/sim/CMakeFiles/bento_sim.dir/spill.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bento_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
