# Empty dependencies file for bento_sim.
# This may be replaced when dependencies are built.
