file(REMOVE_RECURSE
  "libbento_io.a"
)
