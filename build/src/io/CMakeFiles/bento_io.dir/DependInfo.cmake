
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/bcf.cc" "src/io/CMakeFiles/bento_io.dir/bcf.cc.o" "gcc" "src/io/CMakeFiles/bento_io.dir/bcf.cc.o.d"
  "/root/repo/src/io/compress.cc" "src/io/CMakeFiles/bento_io.dir/compress.cc.o" "gcc" "src/io/CMakeFiles/bento_io.dir/compress.cc.o.d"
  "/root/repo/src/io/csv_reader.cc" "src/io/CMakeFiles/bento_io.dir/csv_reader.cc.o" "gcc" "src/io/CMakeFiles/bento_io.dir/csv_reader.cc.o.d"
  "/root/repo/src/io/csv_writer.cc" "src/io/CMakeFiles/bento_io.dir/csv_writer.cc.o" "gcc" "src/io/CMakeFiles/bento_io.dir/csv_writer.cc.o.d"
  "/root/repo/src/io/encoding.cc" "src/io/CMakeFiles/bento_io.dir/encoding.cc.o" "gcc" "src/io/CMakeFiles/bento_io.dir/encoding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/columnar/CMakeFiles/bento_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bento_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bento_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
