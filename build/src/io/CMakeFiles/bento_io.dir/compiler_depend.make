# Empty compiler generated dependencies file for bento_io.
# This may be replaced when dependencies are built.
