file(REMOVE_RECURSE
  "CMakeFiles/bento_io.dir/bcf.cc.o"
  "CMakeFiles/bento_io.dir/bcf.cc.o.d"
  "CMakeFiles/bento_io.dir/compress.cc.o"
  "CMakeFiles/bento_io.dir/compress.cc.o.d"
  "CMakeFiles/bento_io.dir/csv_reader.cc.o"
  "CMakeFiles/bento_io.dir/csv_reader.cc.o.d"
  "CMakeFiles/bento_io.dir/csv_writer.cc.o"
  "CMakeFiles/bento_io.dir/csv_writer.cc.o.d"
  "CMakeFiles/bento_io.dir/encoding.cc.o"
  "CMakeFiles/bento_io.dir/encoding.cc.o.d"
  "libbento_io.a"
  "libbento_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
