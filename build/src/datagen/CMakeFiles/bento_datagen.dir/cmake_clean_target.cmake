file(REMOVE_RECURSE
  "libbento_datagen.a"
)
