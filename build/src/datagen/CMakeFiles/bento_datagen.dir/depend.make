# Empty dependencies file for bento_datagen.
# This may be replaced when dependencies are built.
