file(REMOVE_RECURSE
  "CMakeFiles/bento_datagen.dir/datasets.cc.o"
  "CMakeFiles/bento_datagen.dir/datasets.cc.o.d"
  "libbento_datagen.a"
  "libbento_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
