file(REMOVE_RECURSE
  "libbento_util.a"
)
