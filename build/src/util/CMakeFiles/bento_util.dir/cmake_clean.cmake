file(REMOVE_RECURSE
  "CMakeFiles/bento_util.dir/json.cc.o"
  "CMakeFiles/bento_util.dir/json.cc.o.d"
  "CMakeFiles/bento_util.dir/logging.cc.o"
  "CMakeFiles/bento_util.dir/logging.cc.o.d"
  "CMakeFiles/bento_util.dir/random.cc.o"
  "CMakeFiles/bento_util.dir/random.cc.o.d"
  "CMakeFiles/bento_util.dir/status.cc.o"
  "CMakeFiles/bento_util.dir/status.cc.o.d"
  "CMakeFiles/bento_util.dir/string_util.cc.o"
  "CMakeFiles/bento_util.dir/string_util.cc.o.d"
  "libbento_util.a"
  "libbento_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
