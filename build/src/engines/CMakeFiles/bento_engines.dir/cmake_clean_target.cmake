file(REMOVE_RECURSE
  "libbento_engines.a"
)
