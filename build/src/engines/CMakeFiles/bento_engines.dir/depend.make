# Empty dependencies file for bento_engines.
# This may be replaced when dependencies are built.
