
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engines/chunk_stream.cc" "src/engines/CMakeFiles/bento_engines.dir/chunk_stream.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/chunk_stream.cc.o.d"
  "/root/repo/src/engines/cudf.cc" "src/engines/CMakeFiles/bento_engines.dir/cudf.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/cudf.cc.o.d"
  "/root/repo/src/engines/datatable.cc" "src/engines/CMakeFiles/bento_engines.dir/datatable.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/datatable.cc.o.d"
  "/root/repo/src/engines/eager_engine.cc" "src/engines/CMakeFiles/bento_engines.dir/eager_engine.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/eager_engine.cc.o.d"
  "/root/repo/src/engines/lazy_engine.cc" "src/engines/CMakeFiles/bento_engines.dir/lazy_engine.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/lazy_engine.cc.o.d"
  "/root/repo/src/engines/modin.cc" "src/engines/CMakeFiles/bento_engines.dir/modin.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/modin.cc.o.d"
  "/root/repo/src/engines/pandas.cc" "src/engines/CMakeFiles/bento_engines.dir/pandas.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/pandas.cc.o.d"
  "/root/repo/src/engines/polars.cc" "src/engines/CMakeFiles/bento_engines.dir/polars.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/polars.cc.o.d"
  "/root/repo/src/engines/registry.cc" "src/engines/CMakeFiles/bento_engines.dir/registry.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/registry.cc.o.d"
  "/root/repo/src/engines/spark.cc" "src/engines/CMakeFiles/bento_engines.dir/spark.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/spark.cc.o.d"
  "/root/repo/src/engines/streaming_ops.cc" "src/engines/CMakeFiles/bento_engines.dir/streaming_ops.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/streaming_ops.cc.o.d"
  "/root/repo/src/engines/vaex.cc" "src/engines/CMakeFiles/bento_engines.dir/vaex.cc.o" "gcc" "src/engines/CMakeFiles/bento_engines.dir/vaex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frame/CMakeFiles/bento_frame.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/bento_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bento_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/bento_io.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/bento_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bento_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bento_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
