file(REMOVE_RECURSE
  "CMakeFiles/bento_engines.dir/chunk_stream.cc.o"
  "CMakeFiles/bento_engines.dir/chunk_stream.cc.o.d"
  "CMakeFiles/bento_engines.dir/cudf.cc.o"
  "CMakeFiles/bento_engines.dir/cudf.cc.o.d"
  "CMakeFiles/bento_engines.dir/datatable.cc.o"
  "CMakeFiles/bento_engines.dir/datatable.cc.o.d"
  "CMakeFiles/bento_engines.dir/eager_engine.cc.o"
  "CMakeFiles/bento_engines.dir/eager_engine.cc.o.d"
  "CMakeFiles/bento_engines.dir/lazy_engine.cc.o"
  "CMakeFiles/bento_engines.dir/lazy_engine.cc.o.d"
  "CMakeFiles/bento_engines.dir/modin.cc.o"
  "CMakeFiles/bento_engines.dir/modin.cc.o.d"
  "CMakeFiles/bento_engines.dir/pandas.cc.o"
  "CMakeFiles/bento_engines.dir/pandas.cc.o.d"
  "CMakeFiles/bento_engines.dir/polars.cc.o"
  "CMakeFiles/bento_engines.dir/polars.cc.o.d"
  "CMakeFiles/bento_engines.dir/registry.cc.o"
  "CMakeFiles/bento_engines.dir/registry.cc.o.d"
  "CMakeFiles/bento_engines.dir/spark.cc.o"
  "CMakeFiles/bento_engines.dir/spark.cc.o.d"
  "CMakeFiles/bento_engines.dir/streaming_ops.cc.o"
  "CMakeFiles/bento_engines.dir/streaming_ops.cc.o.d"
  "CMakeFiles/bento_engines.dir/vaex.cc.o"
  "CMakeFiles/bento_engines.dir/vaex.cc.o.d"
  "libbento_engines.a"
  "libbento_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
