# Empty compiler generated dependencies file for bento_expr.
# This may be replaced when dependencies are built.
