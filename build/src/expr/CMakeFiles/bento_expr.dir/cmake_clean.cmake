file(REMOVE_RECURSE
  "CMakeFiles/bento_expr.dir/eval.cc.o"
  "CMakeFiles/bento_expr.dir/eval.cc.o.d"
  "CMakeFiles/bento_expr.dir/expr.cc.o"
  "CMakeFiles/bento_expr.dir/expr.cc.o.d"
  "CMakeFiles/bento_expr.dir/parser.cc.o"
  "CMakeFiles/bento_expr.dir/parser.cc.o.d"
  "libbento_expr.a"
  "libbento_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
