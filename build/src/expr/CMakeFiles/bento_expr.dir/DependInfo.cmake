
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/eval.cc" "src/expr/CMakeFiles/bento_expr.dir/eval.cc.o" "gcc" "src/expr/CMakeFiles/bento_expr.dir/eval.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/expr/CMakeFiles/bento_expr.dir/expr.cc.o" "gcc" "src/expr/CMakeFiles/bento_expr.dir/expr.cc.o.d"
  "/root/repo/src/expr/parser.cc" "src/expr/CMakeFiles/bento_expr.dir/parser.cc.o" "gcc" "src/expr/CMakeFiles/bento_expr.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/bento_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/bento_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bento_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bento_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
