file(REMOVE_RECURSE
  "libbento_expr.a"
)
