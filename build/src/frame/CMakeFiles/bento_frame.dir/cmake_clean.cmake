file(REMOVE_RECURSE
  "CMakeFiles/bento_frame.dir/capabilities.cc.o"
  "CMakeFiles/bento_frame.dir/capabilities.cc.o.d"
  "CMakeFiles/bento_frame.dir/exec.cc.o"
  "CMakeFiles/bento_frame.dir/exec.cc.o.d"
  "CMakeFiles/bento_frame.dir/op.cc.o"
  "CMakeFiles/bento_frame.dir/op.cc.o.d"
  "libbento_frame.a"
  "libbento_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
