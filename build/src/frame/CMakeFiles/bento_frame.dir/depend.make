# Empty dependencies file for bento_frame.
# This may be replaced when dependencies are built.
