file(REMOVE_RECURSE
  "libbento_frame.a"
)
