
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/apply.cc" "src/kernels/CMakeFiles/bento_kernels.dir/apply.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/apply.cc.o.d"
  "/root/repo/src/kernels/arithmetic.cc" "src/kernels/CMakeFiles/bento_kernels.dir/arithmetic.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/arithmetic.cc.o.d"
  "/root/repo/src/kernels/cast.cc" "src/kernels/CMakeFiles/bento_kernels.dir/cast.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/cast.cc.o.d"
  "/root/repo/src/kernels/compare.cc" "src/kernels/CMakeFiles/bento_kernels.dir/compare.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/compare.cc.o.d"
  "/root/repo/src/kernels/datetime.cc" "src/kernels/CMakeFiles/bento_kernels.dir/datetime.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/datetime.cc.o.d"
  "/root/repo/src/kernels/dedup.cc" "src/kernels/CMakeFiles/bento_kernels.dir/dedup.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/dedup.cc.o.d"
  "/root/repo/src/kernels/encode.cc" "src/kernels/CMakeFiles/bento_kernels.dir/encode.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/encode.cc.o.d"
  "/root/repo/src/kernels/groupby.cc" "src/kernels/CMakeFiles/bento_kernels.dir/groupby.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/groupby.cc.o.d"
  "/root/repo/src/kernels/join.cc" "src/kernels/CMakeFiles/bento_kernels.dir/join.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/join.cc.o.d"
  "/root/repo/src/kernels/null_ops.cc" "src/kernels/CMakeFiles/bento_kernels.dir/null_ops.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/null_ops.cc.o.d"
  "/root/repo/src/kernels/pivot.cc" "src/kernels/CMakeFiles/bento_kernels.dir/pivot.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/pivot.cc.o.d"
  "/root/repo/src/kernels/row_hash.cc" "src/kernels/CMakeFiles/bento_kernels.dir/row_hash.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/row_hash.cc.o.d"
  "/root/repo/src/kernels/selection.cc" "src/kernels/CMakeFiles/bento_kernels.dir/selection.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/selection.cc.o.d"
  "/root/repo/src/kernels/sort.cc" "src/kernels/CMakeFiles/bento_kernels.dir/sort.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/sort.cc.o.d"
  "/root/repo/src/kernels/stats.cc" "src/kernels/CMakeFiles/bento_kernels.dir/stats.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/stats.cc.o.d"
  "/root/repo/src/kernels/string_ops.cc" "src/kernels/CMakeFiles/bento_kernels.dir/string_ops.cc.o" "gcc" "src/kernels/CMakeFiles/bento_kernels.dir/string_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/columnar/CMakeFiles/bento_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bento_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bento_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
