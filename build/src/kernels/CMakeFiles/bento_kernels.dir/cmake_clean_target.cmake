file(REMOVE_RECURSE
  "libbento_kernels.a"
)
