# Empty dependencies file for bento_kernels.
# This may be replaced when dependencies are built.
