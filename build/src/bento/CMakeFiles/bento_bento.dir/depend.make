# Empty dependencies file for bento_bento.
# This may be replaced when dependencies are built.
