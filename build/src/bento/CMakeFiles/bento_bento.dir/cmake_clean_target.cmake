file(REMOVE_RECURSE
  "libbento_bento.a"
)
