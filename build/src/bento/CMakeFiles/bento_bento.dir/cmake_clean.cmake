file(REMOVE_RECURSE
  "CMakeFiles/bento_bento.dir/pipeline.cc.o"
  "CMakeFiles/bento_bento.dir/pipeline.cc.o.d"
  "CMakeFiles/bento_bento.dir/report.cc.o"
  "CMakeFiles/bento_bento.dir/report.cc.o.d"
  "CMakeFiles/bento_bento.dir/runner.cc.o"
  "CMakeFiles/bento_bento.dir/runner.cc.o.d"
  "libbento_bento.a"
  "libbento_bento.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_bento.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
