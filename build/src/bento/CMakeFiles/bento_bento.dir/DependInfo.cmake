
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bento/pipeline.cc" "src/bento/CMakeFiles/bento_bento.dir/pipeline.cc.o" "gcc" "src/bento/CMakeFiles/bento_bento.dir/pipeline.cc.o.d"
  "/root/repo/src/bento/report.cc" "src/bento/CMakeFiles/bento_bento.dir/report.cc.o" "gcc" "src/bento/CMakeFiles/bento_bento.dir/report.cc.o.d"
  "/root/repo/src/bento/runner.cc" "src/bento/CMakeFiles/bento_bento.dir/runner.cc.o" "gcc" "src/bento/CMakeFiles/bento_bento.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engines/CMakeFiles/bento_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/bento_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/frame/CMakeFiles/bento_frame.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/bento_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bento_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/bento_io.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/bento_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bento_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bento_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
