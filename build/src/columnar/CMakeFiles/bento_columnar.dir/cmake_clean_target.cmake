file(REMOVE_RECURSE
  "libbento_columnar.a"
)
