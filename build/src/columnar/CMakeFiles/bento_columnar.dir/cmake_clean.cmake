file(REMOVE_RECURSE
  "CMakeFiles/bento_columnar.dir/array.cc.o"
  "CMakeFiles/bento_columnar.dir/array.cc.o.d"
  "CMakeFiles/bento_columnar.dir/bitmap.cc.o"
  "CMakeFiles/bento_columnar.dir/bitmap.cc.o.d"
  "CMakeFiles/bento_columnar.dir/buffer.cc.o"
  "CMakeFiles/bento_columnar.dir/buffer.cc.o.d"
  "CMakeFiles/bento_columnar.dir/builder.cc.o"
  "CMakeFiles/bento_columnar.dir/builder.cc.o.d"
  "CMakeFiles/bento_columnar.dir/datatype.cc.o"
  "CMakeFiles/bento_columnar.dir/datatype.cc.o.d"
  "CMakeFiles/bento_columnar.dir/scalar.cc.o"
  "CMakeFiles/bento_columnar.dir/scalar.cc.o.d"
  "CMakeFiles/bento_columnar.dir/schema.cc.o"
  "CMakeFiles/bento_columnar.dir/schema.cc.o.d"
  "CMakeFiles/bento_columnar.dir/table.cc.o"
  "CMakeFiles/bento_columnar.dir/table.cc.o.d"
  "libbento_columnar.a"
  "libbento_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bento_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
