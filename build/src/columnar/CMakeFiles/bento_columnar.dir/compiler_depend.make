# Empty compiler generated dependencies file for bento_columnar.
# This may be replaced when dependencies are built.
