
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnar/array.cc" "src/columnar/CMakeFiles/bento_columnar.dir/array.cc.o" "gcc" "src/columnar/CMakeFiles/bento_columnar.dir/array.cc.o.d"
  "/root/repo/src/columnar/bitmap.cc" "src/columnar/CMakeFiles/bento_columnar.dir/bitmap.cc.o" "gcc" "src/columnar/CMakeFiles/bento_columnar.dir/bitmap.cc.o.d"
  "/root/repo/src/columnar/buffer.cc" "src/columnar/CMakeFiles/bento_columnar.dir/buffer.cc.o" "gcc" "src/columnar/CMakeFiles/bento_columnar.dir/buffer.cc.o.d"
  "/root/repo/src/columnar/builder.cc" "src/columnar/CMakeFiles/bento_columnar.dir/builder.cc.o" "gcc" "src/columnar/CMakeFiles/bento_columnar.dir/builder.cc.o.d"
  "/root/repo/src/columnar/datatype.cc" "src/columnar/CMakeFiles/bento_columnar.dir/datatype.cc.o" "gcc" "src/columnar/CMakeFiles/bento_columnar.dir/datatype.cc.o.d"
  "/root/repo/src/columnar/scalar.cc" "src/columnar/CMakeFiles/bento_columnar.dir/scalar.cc.o" "gcc" "src/columnar/CMakeFiles/bento_columnar.dir/scalar.cc.o.d"
  "/root/repo/src/columnar/schema.cc" "src/columnar/CMakeFiles/bento_columnar.dir/schema.cc.o" "gcc" "src/columnar/CMakeFiles/bento_columnar.dir/schema.cc.o.d"
  "/root/repo/src/columnar/table.cc" "src/columnar/CMakeFiles/bento_columnar.dir/table.cc.o" "gcc" "src/columnar/CMakeFiles/bento_columnar.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bento_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bento_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
