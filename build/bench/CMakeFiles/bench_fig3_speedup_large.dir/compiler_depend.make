# Empty compiler generated dependencies file for bench_fig3_speedup_large.
# This may be replaced when dependencies are built.
