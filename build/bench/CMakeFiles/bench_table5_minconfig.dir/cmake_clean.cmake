file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_minconfig.dir/bench_table5_minconfig.cc.o"
  "CMakeFiles/bench_table5_minconfig.dir/bench_table5_minconfig.cc.o.d"
  "bench_table5_minconfig"
  "bench_table5_minconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_minconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
