file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_compat.dir/bench_table2_compat.cc.o"
  "CMakeFiles/bench_table2_compat.dir/bench_table2_compat.cc.o.d"
  "bench_table2_compat"
  "bench_table2_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
