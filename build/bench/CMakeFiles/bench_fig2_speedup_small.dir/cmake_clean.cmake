file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_speedup_small.dir/bench_fig2_speedup_small.cc.o"
  "CMakeFiles/bench_fig2_speedup_small.dir/bench_fig2_speedup_small.cc.o.d"
  "bench_fig2_speedup_small"
  "bench_fig2_speedup_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_speedup_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
