file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_write.dir/bench_fig6_write.cc.o"
  "CMakeFiles/bench_fig6_write.dir/bench_fig6_write.cc.o.d"
  "bench_fig6_write"
  "bench_fig6_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
