# Empty dependencies file for bench_fig7_pipeline.
# This may be replaced when dependencies are built.
