# Empty dependencies file for bench_fig4_apply.
# This may be replaced when dependencies are built.
