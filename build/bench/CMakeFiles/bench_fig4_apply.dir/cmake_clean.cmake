file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_apply.dir/bench_fig4_apply.cc.o"
  "CMakeFiles/bench_fig4_apply.dir/bench_fig4_apply.cc.o.d"
  "bench_fig4_apply"
  "bench_fig4_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
