// Parameterized cross-engine sweeps: every engine must satisfy the same
// behavioural contracts. The parameter is the engine id.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "datagen/datasets.h"
#include "frame/engine.h"
#include "io/bcf.h"
#include "io/csv.h"
#include "kernels/sort.h"
#include "tests/test_util.h"

namespace bento::eng {
namespace {

using col::Scalar;
using col::TablePtr;
using col::TypeId;
using frame::Op;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

class EngineContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  frame::EnginePtr engine() const {
    return frame::CreateEngine(GetParam()).ValueOrDie();
  }

  static TablePtr Sample() {
    return MakeTable({
        {"g", Str({"x", "y", "x", "z", "y", "x"})},
        {"a", I64({5, 3, 5, 1, 2, 5})},
        {"b", F64({1.5, 0.0, 2.5, 3.5, 0.0, 4.5},
                  {true, false, true, true, false, true})},
    });
  }
};

TEST_P(EngineContractTest, InfoIsCoherent) {
  auto info = engine()->info();
  EXPECT_EQ(info.id, GetParam());
  EXPECT_FALSE(info.paper_name.empty());
  EXPECT_FALSE(info.native_language.empty());
  EXPECT_FALSE(info.modeled_version.empty());
}

TEST_P(EngineContractTest, TransformChainProducesExpectedRows) {
  auto frame = engine()->FromTable(Sample()).ValueOrDie();
  ASSERT_OK_AND_ASSIGN(frame, frame->Apply(Op::Query("a >= 2")));
  ASSERT_OK_AND_ASSIGN(frame, frame->Apply(Op::DropNa({"b"})));
  ASSERT_OK_AND_ASSIGN(auto result, frame->Collect());
  // a>=2 keeps rows {5,3,5,2,5}; dropna(b) removes the two null-b rows.
  EXPECT_EQ(result->num_rows(), 3);
}

TEST_P(EngineContractTest, SortIsStableAndNullsLast) {
  auto frame = engine()->FromTable(Sample()).ValueOrDie();
  ASSERT_OK_AND_ASSIGN(frame, frame->Apply(Op::SortValues({{"b", true}})));
  ASSERT_OK_AND_ASSIGN(auto result, frame->Collect());
  auto b = result->GetColumn("b").ValueOrDie();
  EXPECT_TRUE(b->IsNull(result->num_rows() - 1));
  EXPECT_TRUE(b->IsNull(result->num_rows() - 2));
  EXPECT_DOUBLE_EQ(b->float64_data()[0], 1.5);
}

TEST_P(EngineContractTest, GroupByTotalsPreserved) {
  auto frame = engine()->FromTable(Sample()).ValueOrDie();
  ASSERT_OK_AND_ASSIGN(
      frame, frame->Apply(Op::GroupByAgg(
                 {"g"}, {{"a", kern::AggKind::kSum, "total"},
                         {"a", kern::AggKind::kCount, "n"}})));
  ASSERT_OK_AND_ASSIGN(auto result, frame->Collect());
  EXPECT_EQ(result->num_rows(), 3);
  double total = 0;
  int64_t n = 0;
  auto totals = result->GetColumn("total").ValueOrDie();
  auto counts = result->GetColumn("n").ValueOrDie();
  for (int64_t i = 0; i < result->num_rows(); ++i) {
    total += totals->float64_data()[i];
    n += counts->int64_data()[i];
  }
  EXPECT_DOUBLE_EQ(total, 21.0);
  EXPECT_EQ(n, 6);
}

TEST_P(EngineContractTest, ErrorsSurfaceNotCrash) {
  auto frame = engine()->FromTable(Sample()).ValueOrDie();
  // Unknown column: the error may surface at Apply (eager) or at Collect
  // (lazy), but must surface as a Status either way.
  auto applied = frame->Apply(Op::StrLower("missing_column"));
  if (applied.ok()) {
    EXPECT_FALSE(applied.ValueOrDie()->Collect().ok());
  } else {
    EXPECT_TRUE(applied.status().IsKeyError());
  }
  EXPECT_FALSE(frame->RunAction(Op::SearchPattern("nope", "x")).ok());
}

TEST_P(EngineContractTest, CollectIsIdempotent) {
  auto frame = engine()->FromTable(Sample()).ValueOrDie();
  ASSERT_OK_AND_ASSIGN(frame, frame->Apply(Op::Round("b", 1)));
  ASSERT_OK_AND_ASSIGN(auto first, frame->Collect());
  ASSERT_OK_AND_ASSIGN(auto second, frame->Collect());
  test::ExpectTablesEqual(first, second);
}

TEST_P(EngineContractTest, NumRowsMatchesCollect) {
  auto frame = engine()->FromTable(Sample()).ValueOrDie();
  ASSERT_OK_AND_ASSIGN(frame, frame->Apply(Op::Query("a == 5")));
  ASSERT_OK_AND_ASSIGN(int64_t rows, frame->NumRows());
  EXPECT_EQ(rows, 3);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineContractTest,
                         ::testing::ValuesIn(frame::EngineIds()),
                         [](const auto& info) { return info.param; });

// --- generated-data pipeline equivalence across engines -------------------

class GeneratedPipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratedPipelineTest, AthleteSliceAllOpsAgreeWithPandas) {
  const std::string dataset = GetParam();
  auto data = gen::GenerateDataset(dataset, 0.002, 99).ValueOrDie();

  // A representative op chain valid on every dataset: filter on the first
  // numeric column, sort by it, round it, and drop nulls on it.
  std::string numeric;
  for (const col::Field& f : data->schema()->fields()) {
    if (f.type == TypeId::kFloat64) {
      numeric = f.name;
      break;
    }
  }
  ASSERT_FALSE(numeric.empty());
  std::vector<Op> ops = {
      Op::DropNa({numeric}),
      Op::ApplyExpr("scaled", numeric + " * 2"),
      Op::SortValues({{numeric, false}}),
      Op::Round("scaled", 1),
  };

  TablePtr reference;
  for (const std::string& id : frame::EngineIds()) {
    SCOPED_TRACE(id);
    auto engine = frame::CreateEngine(id).ValueOrDie();
    auto frame = engine->FromTable(data).ValueOrDie();
    for (const Op& op : ops) {
      ASSERT_OK_AND_ASSIGN(frame, frame->Apply(op));
    }
    ASSERT_OK_AND_ASSIGN(auto result, frame->Collect());
    if (id == "spark_pd") {
      ASSERT_OK_AND_ASSIGN(result, result->DropColumns({"__index__"}));
    }
    if (reference == nullptr) {
      reference = result;
    } else {
      ASSERT_EQ(reference->num_rows(), result->num_rows());
      // Spot-check the transformed column cell-by-cell.
      auto a = reference->GetColumn("scaled").ValueOrDie();
      auto b = result->GetColumn("scaled").ValueOrDie();
      for (int64_t i = 0; i < a->length(); ++i) {
        ASSERT_EQ(test::CellStr(*a, i), test::CellStr(*b, i)) << "row " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, GeneratedPipelineTest,
                         ::testing::Values("athlete", "taxi"));

// --- per-type kernel sweeps ------------------------------------------------

class TypedRoundTripTest : public ::testing::TestWithParam<TypeId> {};

TEST_P(TypedRoundTripTest, CsvAndBcfPreserveColumn) {
  const TypeId type = GetParam();
  col::ArrayPtr column;
  switch (type) {
    case TypeId::kInt64:
      column = I64({1, -5, 99}, {true, false, true});
      break;
    case TypeId::kFloat64:
      column = F64({0.5, -1.25, 3.75}, {true, true, false});
      break;
    case TypeId::kBool:
      column = test::Bools({true, false, true}, {true, false, true});
      break;
    case TypeId::kString:
      column = Str({"plain", "with,comma", ""}, {true, true, false});
      break;
    default:
      GTEST_SKIP();
  }
  // Anchor column keeps CSV rows non-blank (blank lines are skipped, the
  // Pandas-compatible behaviour).
  auto t = MakeTable({{"row", I64({0, 1, 2})}, {"c", column}});
  std::string base = "/tmp/bento_typed_" + std::to_string(::getpid()) + "_" +
                     std::to_string(static_cast<int>(type));
  ASSERT_OK(io::WriteCsv(t, base + ".csv"));
  auto csv = io::ReadCsv(base + ".csv").ValueOrDie();
  test::ExpectTablesEqual(t, csv);
  ASSERT_OK(io::WriteBcf(t, base + ".bcf"));
  auto bcf = io::BcfReader::Open(base + ".bcf").ValueOrDie()->ReadAll().ValueOrDie();
  test::ExpectTablesEqual(t, bcf);
  std::remove((base + ".csv").c_str());
  std::remove((base + ".bcf").c_str());
}

INSTANTIATE_TEST_SUITE_P(Types, TypedRoundTripTest,
                         ::testing::Values(TypeId::kInt64, TypeId::kFloat64,
                                           TypeId::kBool, TypeId::kString));

}  // namespace
}  // namespace bento::eng
