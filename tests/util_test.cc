#include <gtest/gtest.h>

#include <cmath>

#include "util/json.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"

namespace bento {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::OutOfMemory("need ", 42, " bytes");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_EQ(st.message(), "need 42 bytes");
  EXPECT_EQ(st.ToString(), "OutOfMemory: need 42 bytes");
}

TEST(StatusTest, AllConstructorsSetTheirCode) {
  EXPECT_TRUE(Status::Invalid("x").IsInvalid());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::KeyError("x").IsKeyError());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_EQ(Status::IndexError("x").code(), StatusCode::kIndexError);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::Invalid("boom");
  Status copy = st;
  EXPECT_EQ(copy.ToString(), st.ToString());
}

Status FailsThrough() {
  BENTO_RETURN_NOT_OK(Status::IOError("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(FailsThrough().IsIOError());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::Invalid("not positive");
  return v;
}

Result<int> Doubled(int v) {
  BENTO_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  EXPECT_EQ(Doubled(4).ValueOrDie(), 8);
  EXPECT_FALSE(Doubled(-1).ok());
  EXPECT_TRUE(Doubled(-1).status().IsInvalid());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

// --- string utilities ---

TEST(StringUtilTest, Split) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, JoinTrimCase) {
  EXPECT_EQ(StrJoin({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(StrTrim("  hi \t\n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(AsciiToLower("MiXeD 42"), "mixed 42");
  EXPECT_EQ(AsciiToUpper("MiXeD 42"), "MIXED 42");
}

TEST(StringUtilTest, ContainsPrefixSuffix) {
  EXPECT_TRUE(StrContains("hello world", "lo wo"));
  EXPECT_FALSE(StrContains("hello", "world"));
  EXPECT_TRUE(StrStartsWith("hello", "he"));
  EXPECT_FALSE(StrStartsWith("h", "he"));
  EXPECT_TRUE(StrEndsWith("hello", "llo"));
  EXPECT_FALSE(StrEndsWith("o", "llo"));
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("-7").ValueOrDie(), -7);
  EXPECT_EQ(ParseInt64("  13  ").ValueOrDie(), 13);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").ValueOrDie(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").ValueOrDie(), -1000.0);
  EXPECT_FALSE(ParseDouble("3.5x").ok());
}

TEST(StringUtilTest, ParseBool) {
  EXPECT_TRUE(ParseBool("true").ValueOrDie());
  EXPECT_TRUE(ParseBool("Yes").ValueOrDie());
  EXPECT_FALSE(ParseBool("0").ValueOrDie());
  EXPECT_FALSE(ParseBool("maybe").ok());
}

TEST(StringUtilTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.5, -2.25, 1.0 / 3.0, 1e300, 6.02e23, 0.1}) {
    EXPECT_DOUBLE_EQ(ParseDouble(FormatDouble(v)).ValueOrDie(), v);
  }
  EXPECT_EQ(FormatDouble(std::nan("")), "nan");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KiB");
  EXPECT_EQ(HumanBytes(16ULL << 30), "16.00 GiB");
}

// --- JSON ---

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(ParseJson("null").ValueOrDie().is_null());
  EXPECT_TRUE(ParseJson("true").ValueOrDie().bool_value());
  EXPECT_EQ(ParseJson("42").ValueOrDie().int_value(), 42);
  EXPECT_DOUBLE_EQ(ParseJson("-2.5e2").ValueOrDie().number_value(), -250.0);
  EXPECT_EQ(ParseJson("\"hi\\nthere\"").ValueOrDie().string_value(),
            "hi\nthere");
}

TEST(JsonTest, ParseNested) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": "c"}], "d": {"e": false}})")
               .ValueOrDie();
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.Get("a").size(), 3u);
  EXPECT_EQ(v.Get("a").at(2).GetString("b"), "c");
  EXPECT_FALSE(v.Get("d").GetBool("e", true));
}

TEST(JsonTest, RejectsGarbage) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("12 34").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
}

TEST(JsonTest, DumpParseRoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::Str("bento \"quoted\""));
  obj.Set("count", JsonValue::Int(12));
  obj.Set("ratio", JsonValue::Number(0.125));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Bool(true));
  arr.Append(JsonValue::Null());
  obj.Set("flags", std::move(arr));

  for (int indent : {0, 2}) {
    auto round = ParseJson(obj.Dump(indent)).ValueOrDie();
    EXPECT_EQ(round.GetString("name"), "bento \"quoted\"");
    EXPECT_EQ(round.GetInt("count"), 12);
    EXPECT_DOUBLE_EQ(round.GetNumber("ratio"), 0.125);
    EXPECT_TRUE(round.Get("flags").at(0).bool_value());
    EXPECT_TRUE(round.Get("flags").at(1).is_null());
  }
}

TEST(JsonTest, ObjectSetOverwrites) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", JsonValue::Int(1));
  obj.Set("k", JsonValue::Int(2));
  EXPECT_EQ(obj.GetInt("k"), 2);
  EXPECT_EQ(obj.members().size(), 1u);
}

TEST(JsonTest, UnicodeEscapes) {
  auto v = ParseJson("\"\\u0041\\u00e9\"").ValueOrDie();
  EXPECT_EQ(v.string_value(), "A\xC3\xA9");
}

// --- RNG ---

TEST(RandomTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, NormalHasRequestedMoments) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(RandomTest, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.Zipf(100, 1.2);
    ASSERT_LT(v, 100u);
    if (v < 10) ++low;
  }
  // With skew, the first 10 ranks should dominate well past uniform's 10%.
  EXPECT_GT(low, n / 4);
}

TEST(RandomTest, AsciiStringRespectsLengthBounds) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    std::string s = rng.AsciiString(3, 9);
    EXPECT_GE(s.size(), 3u);
    EXPECT_LE(s.size(), 9u);
  }
}

}  // namespace
}  // namespace bento
