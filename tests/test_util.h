#ifndef BENTO_TESTS_TEST_UTIL_H_
#define BENTO_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "columnar/builder.h"
#include "columnar/table.h"
#include "kernels/sort.h"

namespace bento::test {

#define ASSERT_OK(expr)                                 \
  do {                                                  \
    auto _st = (expr);                                  \
    ASSERT_TRUE(_st.ok()) << _st.ToString();            \
  } while (false)

#define EXPECT_OK(expr)                                 \
  do {                                                  \
    auto _st = (expr);                                  \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                          \
  ASSERT_OK_AND_ASSIGN_IMPL(BENTO_CONCAT(_r_, __COUNTER__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)                \
  auto tmp = (rexpr);                                             \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();               \
  lhs = std::move(tmp).ValueOrDie();

// --- column construction helpers (null encoded via optional-like flag) ----

inline col::ArrayPtr I64(const std::vector<int64_t>& values,
                         const std::vector<bool>& valid = {}) {
  col::Int64Builder b;
  for (size_t i = 0; i < values.size(); ++i) {
    b.AppendMaybe(values[i], valid.empty() || valid[i]);
  }
  return b.Finish().ValueOrDie();
}

inline col::ArrayPtr F64(const std::vector<double>& values,
                         const std::vector<bool>& valid = {}) {
  col::Float64Builder b;
  for (size_t i = 0; i < values.size(); ++i) {
    b.AppendMaybe(values[i], valid.empty() || valid[i]);
  }
  return b.Finish().ValueOrDie();
}

inline col::ArrayPtr Str(const std::vector<std::string>& values,
                         const std::vector<bool>& valid = {}) {
  col::StringBuilder b;
  for (size_t i = 0; i < values.size(); ++i) {
    b.AppendMaybe(values[i], valid.empty() || valid[i]);
  }
  return b.Finish().ValueOrDie();
}

inline col::ArrayPtr Bools(const std::vector<bool>& values,
                           const std::vector<bool>& valid = {}) {
  col::BoolBuilder b;
  for (size_t i = 0; i < values.size(); ++i) {
    b.AppendMaybe(values[i], valid.empty() || valid[i]);
  }
  return b.Finish().ValueOrDie();
}

inline col::TablePtr MakeTable(
    const std::vector<std::pair<std::string, col::ArrayPtr>>& columns) {
  std::vector<col::Field> fields;
  std::vector<col::ArrayPtr> arrays;
  for (const auto& [name, array] : columns) {
    fields.push_back({name, array->type()});
    arrays.push_back(array);
  }
  return col::Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                          std::move(arrays))
      .ValueOrDie();
}

/// Cell as display string with categorical decoded; the comparison unit.
inline std::string CellStr(const col::Array& a, int64_t i) {
  return a.IsNull(i) ? std::string("null") : a.ValueToString(i);
}

/// Asserts equal schema names and cell-by-cell equality (categorical and
/// string columns compare by value).
inline void ExpectTablesEqual(const col::TablePtr& expected,
                              const col::TablePtr& actual) {
  ASSERT_EQ(expected->num_columns(), actual->num_columns());
  ASSERT_EQ(expected->num_rows(), actual->num_rows());
  for (int c = 0; c < expected->num_columns(); ++c) {
    EXPECT_EQ(expected->schema()->field(c).name,
              actual->schema()->field(c).name);
    for (int64_t r = 0; r < expected->num_rows(); ++r) {
      EXPECT_EQ(CellStr(*expected->column(c), r), CellStr(*actual->column(c), r))
          << "column " << expected->schema()->field(c).name << " row " << r;
    }
  }
}

/// Order-insensitive comparison: both tables are sorted by `keys` first.
inline void ExpectTablesEquivalent(const col::TablePtr& expected,
                                   const col::TablePtr& actual,
                                   const std::vector<std::string>& keys) {
  std::vector<kern::SortKey> sort_keys;
  for (const std::string& k : keys) sort_keys.push_back({k, true});
  auto se = kern::SortTable(expected, sort_keys);
  auto sa = kern::SortTable(actual, sort_keys);
  ASSERT_TRUE(se.ok()) << se.status().ToString();
  ASSERT_TRUE(sa.ok()) << sa.status().ToString();
  ExpectTablesEqual(se.ValueOrDie(), sa.ValueOrDie());
}

}  // namespace bento::test

#endif  // BENTO_TESTS_TEST_UTIL_H_
