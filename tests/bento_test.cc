#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "bento/pipeline.h"
#include "bento/report.h"
#include "bento/runner.h"
#include "tests/test_util.h"

namespace bento::run {
namespace {

using frame::Stage;

TEST(PipelineTest, AllFourPipelinesBuild) {
  for (const char* name : {"athlete", "loan", "patrol", "taxi"}) {
    auto p = PipelineFor(name);
    ASSERT_TRUE(p.ok()) << name;
    EXPECT_GT(p.ValueOrDie().steps.size(), 10u);
    // Every pipeline exercises all three post-ingest stages.
    EXPECT_FALSE(p.ValueOrDie().StageSteps(Stage::kEDA).empty());
    EXPECT_FALSE(p.ValueOrDie().StageSteps(Stage::kDT).empty());
    EXPECT_FALSE(p.ValueOrDie().StageSteps(Stage::kDC).empty());
  }
  EXPECT_FALSE(PipelineFor("nope").ok());
}

TEST(PipelineTest, JsonRoundTrip) {
  auto p = PipelineFor("athlete").ValueOrDie();
  JsonValue spec = PipelineToJson(p);
  auto round = PipelineFromJson(spec).ValueOrDie();
  ASSERT_EQ(round.steps.size(), p.steps.size());
  for (size_t i = 0; i < p.steps.size(); ++i) {
    EXPECT_EQ(round.steps[i].op.kind, p.steps[i].op.kind) << i;
    EXPECT_EQ(round.steps[i].stage, p.steps[i].stage) << i;
    EXPECT_EQ(round.steps[i].carry, p.steps[i].carry) << i;
    EXPECT_EQ(round.steps[i].op.column, p.steps[i].op.column) << i;
  }
  // The JSON text itself parses back identically.
  auto reparsed = ParseJson(spec.Dump(2)).ValueOrDie();
  EXPECT_EQ(PipelineFromJson(reparsed).ValueOrDie().steps.size(),
            p.steps.size());
}

TEST(PipelineTest, RowFnRegistry) {
  EXPECT_TRUE(LookupRowFn("bmi").ok());
  EXPECT_TRUE(LookupRowFn("total_check").ok());
  EXPECT_FALSE(LookupRowFn("nope").ok());
}

TEST(ReportTest, TextTableAligns) {
  TextTable table({"engine", "time"});
  table.AddRow({"pandas", "1.5s"});
  table.AddRow({"spark_sql", "0.5s"});
  std::string s = table.ToString();
  EXPECT_NE(s.find("engine     time"), std::string::npos);
  EXPECT_NE(s.find("spark_sql  0.5s"), std::string::npos);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(FormatSeconds(0.0000005), "0us");
  EXPECT_EQ(FormatSeconds(0.0123), "12.3ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(FormatSeconds(-1.0), "n/a");
  EXPECT_EQ(FormatSpeedup(12.54), "12.5x");
  EXPECT_EQ(FormatSpeedup(0.25), "0.250x");
  EXPECT_EQ(FormatSpeedup(150.0), "150x");
}

class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest()
      : dir_("/tmp/bento_runner_test_" + std::to_string(::getpid())),
        // Tiny scale: athlete shrinks to ~200 rows.
        runner_(dir_, 0.001) {}

  ~RunnerTest() override {
    std::string cmd = "rm -rf " + dir_;
    (void)!system(cmd.c_str());
  }

  std::string dir_;
  Runner runner_;
};

TEST_F(RunnerTest, EnsureCsvGeneratesAndCaches) {
  auto path = runner_.EnsureCsv("athlete").ValueOrDie();
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  fclose(f);
  // Second call reuses the cache (same path).
  EXPECT_EQ(runner_.EnsureCsv("athlete").ValueOrDie(), path);
  // Samples get distinct files.
  EXPECT_NE(runner_.EnsureCsv("athlete", 0.5).ValueOrDie(), path);
}

TEST_F(RunnerTest, FullPipelinePerEngine) {
  auto pipeline = PipelineFor("athlete").ValueOrDie();
  for (const std::string& id :
       {"pandas", "polars", "spark_sql", "cudf", "vaex", "datatable",
        "modin_ray"}) {
    SCOPED_TRACE(id);
    RunConfig config;
    config.engine_id = id;
    config.mode = RunMode::kPipelineStage;
    auto report = runner_.Run(config, pipeline, "athlete").ValueOrDie();
    EXPECT_TRUE(report.status.ok()) << id << ": " << report.status.ToString();
    EXPECT_GT(report.total_seconds, 0.0);
    EXPECT_GT(report.stage_seconds[Stage::kEDA], 0.0);
    EXPECT_GT(report.peak_host_bytes, 0u);
  }
}

TEST_F(RunnerTest, FunctionCoreModeTimesEveryOp) {
  auto pipeline = PipelineFor("athlete").ValueOrDie();
  RunConfig config;
  config.engine_id = "pandas2";
  config.mode = RunMode::kFunctionCore;
  auto report = runner_.Run(config, pipeline, "athlete").ValueOrDie();
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(report.ops.size(), pipeline.steps.size());
  for (const OpTiming& op : report.ops) {
    EXPECT_GE(op.seconds, 0.0) << op.op;
  }
}

TEST_F(RunnerTest, BcfSourceMode) {
  auto pipeline = PipelineFor("athlete").ValueOrDie();
  RunConfig config;
  config.engine_id = "polars";
  config.use_bcf_source = true;
  auto report = runner_.Run(config, pipeline, "athlete").ValueOrDie();
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
}

TEST_F(RunnerTest, UndersizedMachineReportsOoM) {
  auto pipeline = PipelineFor("athlete").ValueOrDie();
  RunConfig config;
  config.engine_id = "pandas";
  // A machine whose scaled budget cannot hold even the scaled athlete CSV.
  config.machine = sim::MachineSpec{"micro", 2, 64ULL << 10, std::nullopt};
  auto report = runner_.Run(config, pipeline, "athlete").ValueOrDie();
  EXPECT_TRUE(report.status.IsOutOfMemory()) << report.status.ToString();
}

TEST_F(RunnerTest, EffectiveMachineScalesAndAttachesGpu) {
  RunConfig config;
  config.engine_id = "cudf";
  config.machine = sim::MachineSpec::Laptop();
  auto machine = runner_.EffectiveMachine(config);
  EXPECT_TRUE(machine.gpu.has_value());
  EXPECT_LT(machine.ram_bytes, sim::MachineSpec::Laptop().ram_bytes);
  config.engine_id = "pandas";
  EXPECT_FALSE(runner_.EffectiveMachine(config).gpu.has_value());
}

}  // namespace
}  // namespace bento::run
