#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "engines/chunk_stream.h"
#include "io/bcf.h"
#include "io/compress.h"
#include "io/csv.h"
#include "io/encoding.h"
#include "kernels/cast.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace bento::io {
namespace {

using col::TablePtr;
using col::TypeId;
using test::Bools;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

class TempPath {
 public:
  explicit TempPath(const std::string& suffix) {
    static int counter = 0;
    path_ = "/tmp/bento_io_test_" + std::to_string(getpid()) + "_" +
            std::to_string(counter++) + suffix;
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

// --- LZ codec ---

TEST(CompressTest, RoundTripsText) {
  std::string text =
      "the quick brown fox jumps over the lazy dog; the quick brown fox "
      "jumps again and again and again over the very same lazy dog";
  auto packed = LzCompress(reinterpret_cast<const uint8_t*>(text.data()),
                           text.size());
  EXPECT_LT(packed.size(), text.size());  // repetitive text must compress
  auto unpacked =
      LzDecompress(packed.data(), packed.size(), text.size()).ValueOrDie();
  EXPECT_EQ(std::string(unpacked.begin(), unpacked.end()), text);
}

TEST(CompressTest, RoundTripsRandomProperty) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = rng.Uniform(5000);
    std::vector<uint8_t> data(n);
    // Mix random bytes with runs so both token kinds are exercised.
    for (size_t i = 0; i < n; ++i) {
      data[i] = rng.Bernoulli(0.5) ? static_cast<uint8_t>(rng.Uniform(256))
                                   : static_cast<uint8_t>(7);
    }
    auto packed = LzCompress(data.data(), data.size());
    auto unpacked =
        LzDecompress(packed.data(), packed.size(), data.size()).ValueOrDie();
    ASSERT_EQ(unpacked, data);
  }
}

TEST(CompressTest, RejectsCorruptStreams) {
  std::vector<uint8_t> bogus = {0x85, 0x01};  // match token, truncated
  EXPECT_FALSE(LzDecompress(bogus.data(), bogus.size(), 10).ok());
  std::vector<uint8_t> bad_dist = {0x80, 0xFF, 0x00};  // distance > output
  EXPECT_FALSE(LzDecompress(bad_dist.data(), bad_dist.size(), 4).ok());
}

TEST(CompressTest, EmptyInput) {
  auto packed = LzCompress(nullptr, 0);
  EXPECT_TRUE(LzDecompress(packed.data(), packed.size(), 0).ValueOrDie().empty());
}

// --- encodings ---

TEST(EncodingTest, VarintRoundTrip) {
  std::vector<uint8_t> buf;
  for (uint64_t v : std::vector<uint64_t>{0, 1, 127, 128, 300000, UINT64_MAX}) {
    buf.clear();
    PutVarint(v, &buf);
    size_t pos = 0;
    EXPECT_EQ(GetVarint(buf.data(), buf.size(), &pos).ValueOrDie(), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(EncodingTest, ZigZag) {
  for (int64_t v : std::vector<int64_t>{0, 1, -1, 1000, -1000, INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(UnZigZag(ZigZag(v)), v);
  }
}

TEST(EncodingTest, RoundTripPerEncoding) {
  struct Case {
    col::ArrayPtr array;
    Encoding encoding;
  };
  std::vector<Case> cases = {
      {I64({5, 6, 7, 100, -3}, {true, true, false, true, true}),
       Encoding::kDelta},
      {I64({1, 2, 3}), Encoding::kPlain},
      {F64({1.5, -2.5, 0.0}, {true, false, true}), Encoding::kPlain},
      {Bools({true, true, false, false, true}), Encoding::kRle},
      {Str({"aa", "bb", "aa", ""}, {true, true, true, false}),
       Encoding::kPlain},
      {Str({"x", "y", "x", "x"}, {true, true, true, true}), Encoding::kDict},
      {Str({"aa", "bb", "", "dddd"}, {true, true, false, true}),
       Encoding::kStrView},
  };
  for (const Case& c : cases) {
    auto encoded = EncodeArray(c.array, c.encoding).ValueOrDie();
    auto decoded =
        DecodeArray(c.array->type(), c.encoding, encoded.data(), encoded.size(),
                    c.array->length(), c.array->validity_buffer(),
                    c.array->cached_null_count())
            .ValueOrDie();
    ASSERT_EQ(decoded->length(), c.array->length());
    for (int64_t i = 0; i < c.array->length(); ++i) {
      EXPECT_EQ(test::CellStr(*c.array, i), test::CellStr(*decoded, i))
          << "encoding " << static_cast<int>(c.encoding) << " row " << i;
    }
  }
}

TEST(EncodingTest, ChooseEncodingHeuristics) {
  EXPECT_EQ(ChooseEncoding(I64({1, 2})), Encoding::kDelta);
  EXPECT_EQ(ChooseEncoding(Bools({true})), Encoding::kRle);
  EXPECT_EQ(ChooseEncoding(F64({1.0})), Encoding::kPlain);
  // Low-cardinality strings pick DICT.
  std::vector<std::string> repeated(100, "abc");
  EXPECT_EQ(ChooseEncoding(Str(repeated)), Encoding::kDict);
  // High-cardinality strings pick the mmap-ready STRVIEW layout.
  std::vector<std::string> unique(100);
  for (int i = 0; i < 100; ++i) unique[i] = "s" + std::to_string(i);
  EXPECT_EQ(ChooseEncoding(Str(unique)), Encoding::kStrView);
}

// --- CSV ---

TablePtr SampleTable() {
  return MakeTable({
      {"id", I64({1, 2, 3, 4})},
      {"score", F64({1.5, -2.0, 0.0, 99.25}, {true, true, false, true})},
      {"name", Str({"alice", "bob,comma", "quote\"inside", ""},
                   {true, true, true, false})},
      {"flag", Bools({true, false, true, false})},
  });
}

TEST(CsvTest, WriteReadRoundTrip) {
  TempPath path(".csv");
  auto t = SampleTable();
  ASSERT_TRUE(WriteCsv(t, path.str()).ok());
  auto back = ReadCsv(path.str()).ValueOrDie();
  test::ExpectTablesEqual(t, back);
}

TEST(CsvTest, TypeInferenceLadder) {
  TempPath path(".csv");
  FILE* f = fopen(path.str().c_str(), "w");
  fputs("i,f,b,s,empty\n1,1.5,true,hello,\n2,2,false,world,\n", f);
  fclose(f);
  auto t = ReadCsv(path.str()).ValueOrDie();
  EXPECT_EQ(t->schema()->GetField("i").ValueOrDie().type, TypeId::kInt64);
  EXPECT_EQ(t->schema()->GetField("f").ValueOrDie().type, TypeId::kFloat64);
  EXPECT_EQ(t->schema()->GetField("b").ValueOrDie().type, TypeId::kBool);
  EXPECT_EQ(t->schema()->GetField("s").ValueOrDie().type, TypeId::kString);
  // All-null column defaults to string.
  EXPECT_EQ(t->schema()->GetField("empty").ValueOrDie().type, TypeId::kString);
  EXPECT_EQ(t->GetColumn("empty").ValueOrDie()->null_count(), 2);
}

TEST(CsvTest, NullLiterals) {
  TempPath path(".csv");
  FILE* f = fopen(path.str().c_str(), "w");
  fputs("x,y\n1,a\nNA,null\n3,NaN\n", f);
  fclose(f);
  auto t = ReadCsv(path.str()).ValueOrDie();
  EXPECT_EQ(t->GetColumn("x").ValueOrDie()->null_count(), 1);
  EXPECT_EQ(t->GetColumn("y").ValueOrDie()->null_count(), 2);
}

TEST(CsvTest, QuotedFieldsWithEmbeddedNewline) {
  TempPath path(".csv");
  FILE* f = fopen(path.str().c_str(), "w");
  fputs("a,b\n\"line1\nline2\",\"x,y\"\n", f);
  fclose(f);
  auto t = ReadCsv(path.str()).ValueOrDie();
  ASSERT_EQ(t->num_rows(), 1);
  EXPECT_EQ(t->GetColumn("a").ValueOrDie()->GetView(0), "line1\nline2");
  EXPECT_EQ(t->GetColumn("b").ValueOrDie()->GetView(0), "x,y");
}

TEST(CsvTest, QuotedFieldTortureRoundTrip) {
  // Every quoting hazard at once: embedded delimiters, embedded newlines
  // (both \n and \r\n), doubled quotes, quotes adjacent to delimiters, and
  // fields that are nothing but separators. Writer and both readers
  // (buffered and mmap/parallel) must agree cell-for-cell.
  auto t = MakeTable({
      {"left", Str({"a,b", ",", "\"", "line1\nline2", "crlf\r\nrest", ""},
                   {true, true, true, true, true, false})},
      {"right", Str({"she said \"hi\"", "\",\"", "\n", ",,,", "x", "tail"})},
      {"n", I64({1, 2, 3, 4, 5, 6})},
  });
  TempPath path(".csv");
  ASSERT_TRUE(WriteCsv(t, path.str()).ok());
  test::ExpectTablesEqual(t, ReadCsv(path.str()).ValueOrDie());
  test::ExpectTablesEqual(t, ReadCsvMmap(path.str()).ValueOrDie());
}

TEST(CsvTest, ParallelWriterQuotesEmbeddedNewlines) {
  // The chunked writer must keep quoting correct at chunk boundaries too.
  col::StringBuilder b;
  col::Int64Builder ids;
  for (int i = 0; i < 5000; ++i) {
    b.Append("row\n" + std::to_string(i) + ",with,commas");
    ids.Append(i);
  }
  auto t = MakeTable(
      {{"id", ids.Finish().ValueOrDie()}, {"s", b.Finish().ValueOrDie()}});
  TempPath path(".csv");
  sim::ParallelOptions popts;
  popts.max_workers = 4;
  ASSERT_TRUE(WriteCsvParallel(t, path.str(), {}, popts).ok());
  test::ExpectTablesEqual(t, ReadCsv(path.str()).ValueOrDie());
}

TEST(CsvTest, TrailingNullColumnsRoundTrip) {
  // Columns whose tail (or entirety) is null: rows end in bare commas, and
  // the readers must rebuild the same null pattern and row count.
  auto t = MakeTable({
      {"id", I64({1, 2, 3, 4})},
      {"mid", F64({1.5, 0.0, 0.0, 2.5}, {true, false, false, true})},
      {"tail", Str({"x", "", "", ""}, {true, false, false, false})},
  });
  TempPath path(".csv");
  ASSERT_TRUE(WriteCsv(t, path.str()).ok());
  auto back = ReadCsv(path.str()).ValueOrDie();
  test::ExpectTablesEqual(t, back);
  EXPECT_EQ(back->GetColumn("tail").ValueOrDie()->null_count(), 3);
  test::ExpectTablesEqual(t, ReadCsvMmap(path.str()).ValueOrDie());
}

TEST(CsvTest, AllNullLastColumnKeepsArity) {
  // An entirely-null final column must survive as a column, not collapse
  // the row arity (every data line ends with the delimiter).
  TempPath path(".csv");
  FILE* f = fopen(path.str().c_str(), "w");
  fputs("a,b\n1,\n2,\n3,\n", f);
  fclose(f);
  auto t = ReadCsv(path.str()).ValueOrDie();
  ASSERT_EQ(t->num_columns(), 2);
  ASSERT_EQ(t->num_rows(), 3);
  EXPECT_EQ(t->GetColumn("b").ValueOrDie()->null_count(), 3);
}

TEST(CsvTest, MissingTrailingFieldsBecomeNull) {
  TempPath path(".csv");
  FILE* f = fopen(path.str().c_str(), "w");
  fputs("a,b,c\n1,2,3\n4,5\n", f);
  fclose(f);
  auto t = ReadCsv(path.str()).ValueOrDie();
  EXPECT_EQ(t->GetColumn("c").ValueOrDie()->null_count(), 1);
}

TEST(CsvTest, MmapReaderMatchesBuffered) {
  TempPath path(".csv");
  auto t = SampleTable();
  ASSERT_TRUE(WriteCsv(t, path.str()).ok());
  auto buffered = ReadCsv(path.str()).ValueOrDie();
  auto mapped = ReadCsvMmap(path.str()).ValueOrDie();
  test::ExpectTablesEqual(buffered, mapped);
}

TEST(CsvTest, ChunkReaderStreamsAllRows) {
  TempPath path(".csv");
  col::Int64Builder b;
  for (int i = 0; i < 1000; ++i) b.Append(i);
  auto t = MakeTable({{"v", b.Finish().ValueOrDie()}});
  ASSERT_TRUE(WriteCsv(t, path.str()).ok());

  CsvReadOptions options;
  options.chunk_rows = 128;
  auto reader = CsvChunkReader::Open(path.str(), options).ValueOrDie();
  int64_t total = 0;
  int chunks = 0;
  int64_t expected_next = 0;
  while (true) {
    auto chunk = reader->Next().ValueOrDie();
    if (chunk == nullptr) break;
    ++chunks;
    total += chunk->num_rows();
    for (int64_t i = 0; i < chunk->num_rows(); ++i) {
      ASSERT_EQ(chunk->column(0)->int64_data()[i], expected_next++);
    }
  }
  EXPECT_EQ(total, 1000);
  EXPECT_GT(chunks, 1);
}

TEST(CsvTest, ParallelWriterMatchesSerial) {
  TempPath p1(".csv");
  TempPath p2(".csv");
  auto t = SampleTable();
  ASSERT_TRUE(WriteCsv(t, p1.str()).ok());
  sim::ParallelOptions popts;
  popts.max_workers = 3;
  ASSERT_TRUE(WriteCsvParallel(t, p2.str(), {}, popts).ok());
  auto a = ReadCsv(p1.str()).ValueOrDie();
  auto b = ReadCsv(p2.str()).ValueOrDie();
  test::ExpectTablesEqual(a, b);
}

TEST(CsvTest, MissingFileErrors) {
  EXPECT_TRUE(ReadCsv("/nonexistent/nope.csv").status().IsIOError());
  EXPECT_TRUE(ReadCsvMmap("/nonexistent/nope.csv").status().IsIOError());
}

// --- BCF ---

TEST(BcfTest, WriteReadRoundTrip) {
  TempPath path(".bcf");
  auto t = SampleTable();
  ASSERT_TRUE(WriteBcf(t, path.str()).ok());
  auto reader = BcfReader::Open(path.str()).ValueOrDie();
  EXPECT_EQ(reader->num_rows(), t->num_rows());
  auto back = reader->ReadAll().ValueOrDie();
  test::ExpectTablesEqual(t, back);
}

TEST(BcfTest, MultipleRowGroups) {
  TempPath path(".bcf");
  col::Int64Builder b;
  for (int i = 0; i < 1000; ++i) b.Append(i * 3);
  auto t = MakeTable({{"v", b.Finish().ValueOrDie()}});
  BcfWriteOptions options;
  options.row_group_rows = 100;
  ASSERT_TRUE(WriteBcf(t, path.str(), options).ok());
  auto reader = BcfReader::Open(path.str()).ValueOrDie();
  EXPECT_EQ(reader->num_row_groups(), 10);
  auto g3 = reader->ReadRowGroup(3).ValueOrDie();
  EXPECT_EQ(g3->num_rows(), 100);
  EXPECT_EQ(g3->column(0)->int64_data()[0], 900);
  auto back = reader->ReadAll().ValueOrDie();
  test::ExpectTablesEqual(t, back);
}

TEST(BcfTest, ColumnProjection) {
  TempPath path(".bcf");
  auto t = SampleTable();
  ASSERT_TRUE(WriteBcf(t, path.str()).ok());
  auto reader = BcfReader::Open(path.str()).ValueOrDie();
  auto projected = reader->ReadAll({"name", "id"}).ValueOrDie();
  EXPECT_EQ(projected->num_columns(), 2);
  EXPECT_EQ(projected->schema()->field(0).name, "name");
  EXPECT_FALSE(reader->ReadAll({"missing"}).ok());
}

TEST(BcfTest, CompressionToggle) {
  // Highly repetitive strings: the compressed file must be smaller.
  std::vector<std::string> values(2000, "a rather repetitive value here");
  auto t = MakeTable({{"s", Str(values)}});
  TempPath packed(".bcf");
  TempPath raw(".bcf");
  BcfWriteOptions with;
  with.compression = true;
  BcfWriteOptions without;
  without.compression = false;
  ASSERT_TRUE(WriteBcf(t, packed.str(), with).ok());
  ASSERT_TRUE(WriteBcf(t, raw.str(), without).ok());

  auto size_of = [](const std::string& p) {
    FILE* f = fopen(p.c_str(), "rb");
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    fclose(f);
    return size;
  };
  EXPECT_LT(size_of(packed.str()), size_of(raw.str()));
  test::ExpectTablesEqual(
      t, BcfReader::Open(packed.str()).ValueOrDie()->ReadAll().ValueOrDie());
}

TEST(BcfTest, IncrementalWriter) {
  TempPath path(".bcf");
  auto writer = BcfWriter::Open(path.str()).ValueOrDie();
  auto t1 = MakeTable({{"v", I64({1, 2})}});
  auto t2 = MakeTable({{"v", I64({3})}});
  ASSERT_TRUE(writer->Append(t1).ok());
  ASSERT_TRUE(writer->Append(t2).ok());
  ASSERT_TRUE(writer->Finish().ok());
  auto back = BcfReader::Open(path.str()).ValueOrDie()->ReadAll().ValueOrDie();
  EXPECT_EQ(back->num_rows(), 3);
  EXPECT_EQ(back->column(0)->int64_data()[2], 3);
}

TEST(BcfTest, WriterRejectsSchemaDrift) {
  TempPath path(".bcf");
  auto writer = BcfWriter::Open(path.str()).ValueOrDie();
  ASSERT_TRUE(writer->Append(MakeTable({{"v", I64({1})}})).ok());
  EXPECT_FALSE(writer->Append(MakeTable({{"w", I64({1})}})).ok());
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_FALSE(writer->Finish().ok());  // double finish rejected
}

TEST(BcfTest, CorruptFilesRejected) {
  TempPath path(".bcf");
  FILE* f = fopen(path.str().c_str(), "w");
  fputs("definitely not a bcf file at all.....", f);
  fclose(f);
  EXPECT_FALSE(BcfReader::Open(path.str()).ok());
  EXPECT_FALSE(BcfReader::Open("/nonexistent/x.bcf").ok());
}

TEST(BcfTest, CategoricalColumnsRoundTrip) {
  auto s = Str({"b", "a", "b", "c"});
  auto cat = kern::Cast(s, TypeId::kCategorical).ValueOrDie();
  auto t = MakeTable({{"c", cat}});
  TempPath path(".bcf");
  ASSERT_TRUE(WriteBcf(t, path.str()).ok());
  auto back = BcfReader::Open(path.str()).ValueOrDie()->ReadAll().ValueOrDie();
  EXPECT_EQ(back->column(0)->type(), TypeId::kCategorical);
  EXPECT_EQ(test::CellStr(*back->column(0), 3), "c");
}

// --- chunk streams ---

TEST(ChunkStreamTest, TableStreamSlices) {
  col::Int64Builder b;
  for (int i = 0; i < 10; ++i) b.Append(i);
  auto t = MakeTable({{"v", b.Finish().ValueOrDie()}});
  eng::TableChunkStream stream(t, 4);
  std::vector<int64_t> sizes;
  while (true) {
    auto chunk = stream.Next().ValueOrDie();
    if (chunk == nullptr) break;
    sizes.push_back(chunk->num_rows());
  }
  EXPECT_EQ(sizes, (std::vector<int64_t>{4, 4, 2}));
}

TEST(ChunkStreamTest, BcfStreamProjects) {
  TempPath path(".bcf");
  auto t = SampleTable();
  BcfWriteOptions options;
  options.row_group_rows = 2;
  ASSERT_TRUE(WriteBcf(t, path.str(), options).ok());
  auto stream = eng::BcfChunkStream::Open(path.str(), {"id"}).ValueOrDie();
  int64_t rows = 0;
  while (true) {
    auto chunk = stream->Next().ValueOrDie();
    if (chunk == nullptr) break;
    EXPECT_EQ(chunk->num_columns(), 1);
    rows += chunk->num_rows();
  }
  EXPECT_EQ(rows, t->num_rows());
}

}  // namespace
}  // namespace bento::io
