// Stress and correctness tests for the work-stealing ThreadPool behind
// ExecutionMode::kReal. Run these under BENTO_SANITIZE=thread: the suite is
// expected to be TSan-clean.
#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/machine.h"
#include "sim/parallel.h"
#include "tests/test_util.h"

namespace bento::sim {
namespace {

TEST(ThreadPoolTest, SizeClampedToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  constexpr int kTasks = 2000;
  std::atomic<int> ran{0};
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      ran.fetch_add(1, std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (done.load(std::memory_order_acquire) < kTasks) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, ConcurrentExternalSubmitters) {
  // Many external threads hammering Submit at once: every task must run
  // exactly once even while workers steal from each other.
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kPerSubmitter = 500;
  std::atomic<int> ran{0};
  {
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&] {
        for (int i = 0; i < kPerSubmitter; ++i) {
          pool.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (auto& t : submitters) t.join();
    // Drain by running a barrier-like ParallelFor after all submits landed.
    ASSERT_OK(pool.ParallelFor(
        1, [](int64_t) { return Status::OK(); }, 1, nullptr));
  }
  while (ran.load(std::memory_order_acquire) < kSubmitters * kPerSubmitter) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), kSubmitters * kPerSubmitter);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  // Clean shutdown: tasks still sitting in deques when the destructor runs
  // are executed, not dropped.
  std::atomic<int> ran{0};
  constexpr int kTasks = 300;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, StealingBalancesSkewedLoad) {
  // One long task pins a worker; the rest of the (externally submitted,
  // round-robined) work must be stolen by the idle workers, so total wall
  // time stays well under the serial sum.
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  auto body = [&](int64_t i) -> Status {
    if (i == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    sum.fetch_add(i, std::memory_order_relaxed);
    return Status::OK();
  };
  constexpr int64_t kN = 200;
  ASSERT_OK(pool.ParallelFor(kN, body, 4, nullptr));
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ASSERT_OK(pool.ParallelFor(
      kN,
      [&](int64_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      4, nullptr));
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, FirstErrorAbortsRemainingClaims) {
  ThreadPool pool(4);
  std::atomic<int64_t> claimed{0};
  constexpr int64_t kN = 100000;
  Status st = pool.ParallelFor(
      kN,
      [&](int64_t i) {
        claimed.fetch_add(1, std::memory_order_relaxed);
        if (i == 7) return Status::Invalid("index 7 is unlucky");
        return Status::OK();
      },
      4, nullptr);
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_NE(st.message().find("unlucky"), std::string::npos);
  // The failure flag stops new claims; far fewer than all indices ran.
  EXPECT_LT(claimed.load(), kN);

  // The pool stays usable after a failed ParallelFor.
  std::atomic<int> ok{0};
  ASSERT_OK(pool.ParallelFor(
      50,
      [&](int64_t) {
        ok.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      4, nullptr));
  EXPECT_EQ(ok.load(), 50);
}

TEST(ThreadPoolTest, ExceptionBecomesUnknownStatus) {
  ThreadPool pool(2);
  Status st = pool.ParallelFor(
      10,
      [](int64_t i) -> Status {
        if (i == 3) throw std::runtime_error("boom from a task");
        return Status::OK();
      },
      2, nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnknown);
  EXPECT_NE(st.message().find("boom"), std::string::npos);

  Status st2 = pool.ParallelFor(
      4, [](int64_t) -> Status { throw 42; }, 2, nullptr);
  EXPECT_EQ(st2.code(), StatusCode::kUnknown);
}

TEST(ThreadPoolTest, CallerParticipatesOnBusyPool) {
  // Saturate the pool with long sleepers, then issue ParallelFor: the
  // caller itself is a runner, so every index executes promptly even
  // though no worker is free to pick up the fan-out.
  ThreadPool pool(2);
  for (int i = 0; i < 2; ++i) {
    pool.Submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(100)); });
  }
  std::atomic<int> ran{0};
  ASSERT_OK(pool.ParallelFor(
      20,
      [&](int64_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      2, nullptr));
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A sim::ParallelFor issued from inside a pool task must degrade to the
  // serial inline path (OnWorkerThread) instead of re-entering the pool.
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  std::atomic<int> inner_total{0};
  ParallelOptions real;
  real.mode = ExecutionMode::kReal;
  real.max_workers = 4;
  ASSERT_OK(ThreadPool::Shared()->ParallelFor(
      8,
      [&](int64_t) -> Status {
        return ParallelFor(
            16,
            [&](int64_t) {
              inner_total.fetch_add(1, std::memory_order_relaxed);
              return Status::OK();
            },
            real);
      },
      4, nullptr));
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPoolTest, MemoryPoolInstalledOnWorkers) {
  // Allocations made inside real-mode tasks must charge the caller's pool.
  MemoryPool tracked("tracked");
  MemoryScope scope(&tracked);
  std::atomic<int> saw_pool{0};
  ASSERT_OK(ThreadPool::Shared()->ParallelFor(
      32,
      [&](int64_t) {
        if (MemoryPool::Current() == &tracked) {
          saw_pool.fetch_add(1, std::memory_order_relaxed);
        }
        return Status::OK();
      },
      4, MemoryPool::Current()));
  EXPECT_EQ(saw_pool.load(), 32);
}

TEST(ThreadPoolTest, RealModeParallelForMatchesSerialResult) {
  // End-to-end through sim::ParallelFor: a real-mode session computes the
  // same reduction as the simulated (serial) path.
  auto compute = [](ExecutionMode mode) {
    Session session(MachineSpec::Server());
    session.set_execution_mode(mode);
    constexpr int64_t kN = 512;
    std::vector<int64_t> out(kN, 0);
    ParallelOptions options;
    options.mode = ExecutionMode::kReal;  // engine requests real...
    options.max_workers = 4;
    EXPECT_TRUE(ParallelFor(
                    kN,
                    [&](int64_t i) {
                      out[i] = i * i;  // disjoint slot per task
                      return Status::OK();
                    },
                    options)
                    .ok());
    return std::accumulate(out.begin(), out.end(), int64_t{0});
  };
  // ...but only a kReal session actually dispatches; both agree on results.
  EXPECT_EQ(compute(ExecutionMode::kSimulated), compute(ExecutionMode::kReal));
}

TEST(ThreadPoolTest, SimulatedSessionGetsCreditRealDoesNot) {
  auto run = [](ExecutionMode mode) {
    Session session(MachineSpec::Server());
    session.set_execution_mode(mode);
    ParallelOptions options;
    options.mode = mode;
    options.max_workers = 4;
    EXPECT_TRUE(ParallelFor(
                    64,
                    [](int64_t) {
                      volatile double x = 0;
                      for (int k = 0; k < 20000; ++k) x = x + k;
                      (void)x;
                      return Status::OK();
                    },
                    options)
                    .ok());
    return session.credit_seconds();
  };
  EXPECT_GT(run(ExecutionMode::kSimulated), 0.0);
  // Real execution overlaps in wall time; no virtual credit is granted.
  EXPECT_EQ(run(ExecutionMode::kReal), 0.0);
}

}  // namespace
}  // namespace bento::sim
