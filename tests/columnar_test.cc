#include <gtest/gtest.h>

#include "columnar/bitmap.h"
#include "columnar/builder.h"
#include "columnar/table.h"
#include "sim/memory.h"
#include "tests/test_util.h"

namespace bento::col {
namespace {

using test::Bools;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

TEST(BufferTest, AllocateZeroInitialized) {
  auto buf = Buffer::Allocate(64).ValueOrDie();
  EXPECT_EQ(buf->size(), 64u);
  for (uint64_t i = 0; i < buf->size(); ++i) EXPECT_EQ(buf->data()[i], 0);
}

TEST(BufferTest, ChargesCurrentPool) {
  sim::MemoryPool pool("buf", 0);
  {
    sim::MemoryScope scope(&pool);
    auto buf = Buffer::Allocate(1000).ValueOrDie();
    EXPECT_EQ(pool.bytes_allocated(), 1000u);
  }
  EXPECT_EQ(pool.bytes_allocated(), 0u);  // released on destruction
}

TEST(BufferTest, BudgetedPoolFailsAllocation) {
  sim::MemoryPool pool("tiny", 100);
  sim::MemoryScope scope(&pool);
  EXPECT_TRUE(Buffer::Allocate(101).status().IsOutOfMemory());
  EXPECT_EQ(pool.bytes_allocated(), 0u);
}

TEST(BufferTest, SliceKeepsParentAlive) {
  BufferPtr view;
  {
    auto parent = Buffer::CopyOf("abcdefgh", 8).ValueOrDie();
    view = Buffer::Slice(parent, 2, 3);
  }
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(view->data()), 3), "cde");
}

TEST(BitmapTest, SetClearCount) {
  auto bm = AllocateBitmap(20, false).ValueOrDie();
  EXPECT_EQ(CountSetBits(bm->data(), 20), 0);
  SetBit(bm->mutable_data(), 0);
  SetBit(bm->mutable_data(), 7);
  SetBit(bm->mutable_data(), 19);
  EXPECT_EQ(CountSetBits(bm->data(), 20), 3);
  EXPECT_TRUE(BitIsSet(bm->data(), 7));
  ClearBit(bm->mutable_data(), 7);
  EXPECT_FALSE(BitIsSet(bm->data(), 7));
  EXPECT_EQ(CountSetBits(bm->data(), 20), 2);
}

TEST(BitmapTest, AllocateAllSetClearsPadding) {
  auto bm = AllocateBitmap(13, true).ValueOrDie();
  EXPECT_EQ(CountSetBits(bm->data(), 13), 13);
  // Padding bits beyond 13 must be clear.
  EXPECT_EQ(CountSetBits(bm->data(), 16), 13);
}

TEST(BitmapTest, CountLargeWordPath) {
  auto bm = AllocateBitmap(1000, false).ValueOrDie();
  int64_t expected = 0;
  for (int64_t i = 0; i < 1000; i += 3) {
    SetBit(bm->mutable_data(), i);
    ++expected;
  }
  EXPECT_EQ(CountSetBits(bm->data(), 1000), expected);
  EXPECT_EQ(CountSetBits(nullptr, 17), 17);  // null bitmap = all valid
}

TEST(BitmapTest, BitmapAnd) {
  auto a = AllocateBitmap(10, true).ValueOrDie();
  auto b = AllocateBitmap(10, true).ValueOrDie();
  ClearBit(a->mutable_data(), 2);
  ClearBit(b->mutable_data(), 5);
  auto out = BitmapAnd(a->data(), b->data(), 10).ValueOrDie();
  EXPECT_EQ(CountSetBits(out->data(), 10), 8);
  EXPECT_FALSE(BitIsSet(out->data(), 2));
  EXPECT_FALSE(BitIsSet(out->data(), 5));
}

TEST(BuilderTest, Int64WithNulls) {
  auto a = I64({1, 2, 3}, {true, false, true});
  EXPECT_EQ(a->length(), 3);
  EXPECT_EQ(a->null_count(), 1);
  EXPECT_TRUE(a->IsValid(0));
  EXPECT_TRUE(a->IsNull(1));
  EXPECT_EQ(a->int64_data()[2], 3);
}

TEST(BuilderTest, NoNullsMeansNoBitmap) {
  auto a = I64({1, 2, 3});
  EXPECT_EQ(a->validity_bits(), nullptr);
  EXPECT_EQ(a->null_count(), 0);
}

TEST(BuilderTest, Strings) {
  auto a = Str({"", "hello", "wörld"}, {true, true, true});
  EXPECT_EQ(a->GetView(0), "");
  EXPECT_EQ(a->GetView(1), "hello");
  EXPECT_EQ(a->GetView(2), "wörld");
}

TEST(BuilderTest, CategoricalValidatesCodes) {
  CategoricalBuilder b;
  b.Append(0);
  b.Append(5);  // out of range for a 2-entry dictionary
  auto dict = std::make_shared<std::vector<std::string>>(
      std::vector<std::string>{"a", "b"});
  EXPECT_FALSE(b.Finish(dict).ok());
}

TEST(ArrayTest, ValueToString) {
  EXPECT_EQ(I64({42})->ValueToString(0), "42");
  EXPECT_EQ(F64({1.5})->ValueToString(0), "1.5");
  EXPECT_EQ(Bools({true})->ValueToString(0), "true");
  EXPECT_EQ(Str({"x"})->ValueToString(0), "x");
  EXPECT_EQ(I64({1}, {false})->ValueToString(0), "null");
}

TEST(ArrayTest, GetScalarBoxes) {
  auto a = F64({2.5}, {true});
  EXPECT_EQ(a->GetScalar(0).double_value(), 2.5);
  EXPECT_TRUE(I64({1}, {false})->GetScalar(0).is_null());
}

TEST(ArrayTest, SliceFixedWidthZeroCopy) {
  auto a = I64({10, 20, 30, 40, 50});
  auto s = a->Slice(1, 3).ValueOrDie();
  EXPECT_EQ(s->length(), 3);
  EXPECT_EQ(s->int64_data()[0], 20);
  EXPECT_EQ(s->int64_data()[2], 40);
  // Zero-copy: the slice points into the parent's buffer.
  EXPECT_EQ(s->int64_data(), a->int64_data() + 1);
}

TEST(ArrayTest, SliceStringsAndValidity) {
  auto a = Str({"a", "bb", "ccc", "dddd"}, {true, false, true, true});
  auto s = a->Slice(1, 3).ValueOrDie();
  EXPECT_EQ(s->length(), 3);
  EXPECT_TRUE(s->IsNull(0));
  EXPECT_EQ(s->GetView(1), "ccc");
  EXPECT_EQ(s->GetView(2), "dddd");
  EXPECT_EQ(s->null_count(), 1);
}

TEST(ArrayTest, SliceOutOfBounds) {
  auto a = I64({1, 2, 3});
  EXPECT_FALSE(a->Slice(2, 5).ok());
  EXPECT_FALSE(a->Slice(-1, 1).ok());
  EXPECT_TRUE(a->Slice(3, 0).ok());
}

TEST(ArrayTest, MakeAllNull) {
  for (TypeId t : {TypeId::kInt64, TypeId::kFloat64, TypeId::kBool,
                   TypeId::kString, TypeId::kTimestamp}) {
    auto a = Array::MakeAllNull(t, 4).ValueOrDie();
    EXPECT_EQ(a->length(), 4);
    EXPECT_EQ(a->null_count(), 4);
    EXPECT_TRUE(a->IsNull(0));
  }
}

TEST(SchemaTest, LookupAndNames) {
  Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kString}});
  EXPECT_EQ(schema.num_fields(), 2);
  EXPECT_EQ(schema.IndexOf("b"), 1);
  EXPECT_EQ(schema.IndexOf("zz"), -1);
  EXPECT_TRUE(schema.Contains("a"));
  EXPECT_FALSE(schema.GetField("zz").ok());
  EXPECT_EQ(schema.names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(schema.ToString(), "a: int64, b: string");
}

TEST(TableTest, MakeValidations) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"a", TypeId::kInt64}, {"b", TypeId::kString}});
  // Length mismatch.
  EXPECT_FALSE(Table::Make(schema, {I64({1, 2}), Str({"x"})}).ok());
  // Type mismatch.
  EXPECT_FALSE(Table::Make(schema, {Str({"x"}), Str({"y"})}).ok());
  // Column count mismatch.
  EXPECT_FALSE(Table::Make(schema, {I64({1})}).ok());
}

TEST(TableTest, ColumnOperations) {
  auto t = MakeTable({{"a", I64({1, 2})}, {"b", Str({"x", "y"})}});
  EXPECT_EQ(t->GetColumn("a").ValueOrDie()->int64_data()[1], 2);
  EXPECT_FALSE(t->GetColumn("zz").ok());

  auto with_c = t->SetColumn("c", F64({0.5, 1.5})).ValueOrDie();
  EXPECT_EQ(with_c->num_columns(), 3);
  auto replaced = with_c->SetColumn("a", F64({9.0, 8.0})).ValueOrDie();
  EXPECT_EQ(replaced->schema()->GetField("a").ValueOrDie().type,
            TypeId::kFloat64);

  auto dropped = with_c->DropColumns({"b"}).ValueOrDie();
  EXPECT_EQ(dropped->num_columns(), 2);
  EXPECT_FALSE(with_c->DropColumns({"zz"}).ok());

  auto selected = with_c->SelectColumns({"c", "a"}).ValueOrDie();
  EXPECT_EQ(selected->schema()->field(0).name, "c");

  auto renamed = t->RenameColumns({{"a", "alpha"}}).ValueOrDie();
  EXPECT_TRUE(renamed->schema()->Contains("alpha"));
  EXPECT_FALSE(t->RenameColumns({{"zz", "w"}}).ok());
}

TEST(TableTest, SliceAndByteSize) {
  auto t = MakeTable({{"a", I64({1, 2, 3, 4})}, {"b", Str({"p", "q", "r", "s"})}});
  auto s = t->Slice(1, 2).ValueOrDie();
  EXPECT_EQ(s->num_rows(), 2);
  EXPECT_EQ(s->column(0)->int64_data()[0], 2);
  EXPECT_GT(t->ByteSize(), 0u);
}

TEST(TableTest, ConcatTables) {
  auto t1 = MakeTable({{"a", I64({1, 2})}, {"b", Str({"x", "y"})}});
  auto t2 = MakeTable({{"a", I64({3}, {false})}, {"b", Str({"z"})}});
  auto cat = ConcatTables({t1, t2}).ValueOrDie();
  EXPECT_EQ(cat->num_rows(), 3);
  EXPECT_TRUE(cat->column(0)->IsNull(2));
  EXPECT_EQ(cat->column(1)->GetView(2), "z");
}

TEST(TableTest, ConcatRejectsSchemaMismatch) {
  auto t1 = MakeTable({{"a", I64({1})}});
  auto t2 = MakeTable({{"b", I64({1})}});
  EXPECT_FALSE(ConcatTables({t1, t2}).ok());
  EXPECT_FALSE(ConcatTables({}).ok());
}

TEST(TableTest, ToStringTruncates) {
  auto t = MakeTable({{"a", I64({1, 2, 3, 4, 5})}});
  std::string s = t->ToString(2);
  EXPECT_NE(s.find("(5 rows total)"), std::string::npos);
}

TEST(ScalarTest, KindsAndConversions) {
  EXPECT_TRUE(Scalar::Null().is_null());
  EXPECT_EQ(Scalar::Int(4).AsDouble().ValueOrDie(), 4.0);
  EXPECT_EQ(Scalar::Double(2.9).AsInt().ValueOrDie(), 2);
  EXPECT_EQ(Scalar::Bool(true).AsDouble().ValueOrDie(), 1.0);
  EXPECT_FALSE(Scalar::Str("x").AsDouble().ok());
  EXPECT_EQ(Scalar::Int(3), Scalar::Double(3.0));  // numeric cross-equality
  EXPECT_EQ(Scalar::Str("a"), Scalar::Str("a"));
  EXPECT_FALSE(Scalar::Str("a") == Scalar::Int(1));
}

}  // namespace
}  // namespace bento::col
