#include <gtest/gtest.h>

#include "frame/capabilities.h"
#include "frame/exec.h"
#include "frame/op.h"
#include "tests/test_util.h"

namespace bento::frame {
namespace {

using col::Scalar;
using col::TypeId;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

col::TablePtr SampleTable() {
  return MakeTable({
      {"id", I64({3, 1, 2, 3})},
      {"score", F64({1.5, 2.5, 0.0, 1.5}, {true, true, false, true})},
      {"name", Str({"Ada", "Grace", "Edsger", "Ada"})},
  });
}

TEST(OpTest, ActionsVsTransforms) {
  EXPECT_TRUE(IsAction(OpKind::kIsNa));
  EXPECT_TRUE(IsAction(OpKind::kDescribe));
  EXPECT_FALSE(IsAction(OpKind::kSortValues));
  EXPECT_FALSE(IsAction(OpKind::kQuery));
  EXPECT_FALSE(IsAction(OpKind::kGroupByAgg));
}

TEST(OpTest, NamesAreStable) {
  EXPECT_STREQ(OpKindName(OpKind::kIsNa), "isna");
  EXPECT_STREQ(OpKindName(OpKind::kDropDuplicates), "dedup");
  EXPECT_STREQ(OpKindName(OpKind::kToDatetime), "chdate");
  EXPECT_STREQ(OpKindName(OpKind::kApplyRow), "applyrow");
}

TEST(ExecTest, QueryFiltersRows) {
  auto out =
      ExecTransform(SampleTable(), Op::Query("id >= 2"), {}).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 3);
  EXPECT_FALSE(ExecTransform(SampleTable(), Op::Query("id +"), {}).ok());
  // Non-boolean predicate rejected.
  EXPECT_FALSE(ExecTransform(SampleTable(), Op::Query("id + 1"), {}).ok());
}

TEST(ExecTest, SortAndDropAndRename) {
  auto sorted =
      ExecTransform(SampleTable(), Op::SortValues({{"id", true}}), {})
          .ValueOrDie();
  EXPECT_EQ(sorted->column(0)->int64_data()[0], 1);

  auto dropped =
      ExecTransform(SampleTable(), Op::DropColumns({"score"}), {}).ValueOrDie();
  EXPECT_EQ(dropped->num_columns(), 2);

  auto renamed =
      ExecTransform(SampleTable(), Op::Rename({{"name", "who"}}), {})
          .ValueOrDie();
  EXPECT_TRUE(renamed->schema()->Contains("who"));
}

TEST(ExecTest, ApplyExprAddsColumn) {
  auto out = ExecTransform(SampleTable(),
                           Op::ApplyExpr("double_score", "score * 2"), {})
                 .ValueOrDie();
  EXPECT_DOUBLE_EQ(
      out->GetColumn("double_score").ValueOrDie()->float64_data()[1], 5.0);
  EXPECT_TRUE(out->GetColumn("double_score").ValueOrDie()->IsNull(2));
}

TEST(ExecTest, FillNaVariants) {
  auto filled = ExecTransform(SampleTable(),
                              Op::FillNa("score", Scalar::Double(7.0)), {})
                    .ValueOrDie();
  EXPECT_DOUBLE_EQ(filled->GetColumn("score").ValueOrDie()->float64_data()[2],
                   7.0);
  auto mean = ExecTransform(SampleTable(), Op::FillNaMean("score"), {})
                  .ValueOrDie();
  EXPECT_NEAR(mean->GetColumn("score").ValueOrDie()->float64_data()[2],
              (1.5 + 2.5 + 1.5) / 3.0, 1e-12);
}

TEST(ExecTest, DedupAndDropNa) {
  auto dedup =
      ExecTransform(SampleTable(), Op::DropDuplicates(), {}).ValueOrDie();
  EXPECT_EQ(dedup->num_rows(), 3);
  auto dropna = ExecTransform(SampleTable(), Op::DropNa(), {}).ValueOrDie();
  EXPECT_EQ(dropna->num_rows(), 3);
}

TEST(ExecTest, GroupByProducesFrame) {
  Op op = Op::GroupByAgg({"name"}, {{"score", kern::AggKind::kMean, "m"}});
  auto out = ExecTransform(SampleTable(), op, {}).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 3);
  EXPECT_TRUE(out->schema()->Contains("m"));
}

TEST(ExecTest, MergeRequiresRightSide) {
  Op op = Op::Merge(nullptr, "id", "id");
  EXPECT_FALSE(ExecTransform(SampleTable(), op, {}).ok());
}

TEST(ExecTest, ActionsProduceResults) {
  ExecPolicy policy;
  auto isna = ExecAction(SampleTable(), Op::IsNa(), policy).ValueOrDie();
  EXPECT_EQ(isna.counts, (std::vector<int64_t>{0, 1, 0}));

  auto cols = ExecAction(SampleTable(), Op::GetColumns(), policy).ValueOrDie();
  EXPECT_EQ(cols.names, (std::vector<std::string>{"id", "score", "name"}));

  auto dtypes = ExecAction(SampleTable(), Op::GetDtypes(), policy).ValueOrDie();
  EXPECT_EQ(dtypes.types[0], TypeId::kInt64);

  auto search = ExecAction(SampleTable(), Op::SearchPattern("name", "a"),
                           policy)
                    .ValueOrDie();
  EXPECT_EQ(search.count, 3);  // Ada, Grace, Ada ("a" lowercase)

  auto stats = ExecAction(SampleTable(), Op::Describe(), policy).ValueOrDie();
  EXPECT_NE(stats.table, nullptr);

  auto outlier =
      ExecAction(SampleTable(), Op::LocateOutliers("id", 0.0, 1.0), policy)
          .ValueOrDie();
  EXPECT_EQ(outlier.count, 0);  // bounds are min/max: nothing outside
}

TEST(ExecTest, ActionTransformMixupsRejected) {
  EXPECT_FALSE(ExecTransform(SampleTable(), Op::IsNa(), {}).ok());
  EXPECT_FALSE(ExecAction(SampleTable(), Op::DropNa(), {}).ok());
}

TEST(ExecTest, RowApplyObjectOverheadCharged) {
  // With a per-cell staging charge and a tight budget, row apply must OoM.
  sim::MachineSpec spec = sim::MachineSpec::Laptop();
  spec.ram_bytes = 1 << 16;  // 64 KiB
  sim::Session session(spec);

  ExecPolicy policy;
  policy.row_apply_object_bytes = 64;
  Op op = Op::ApplyRow(
      "out",
      [](const col::Table& t, int64_t r) -> Result<Scalar> {
        return Scalar::Int(r);
      },
      TypeId::kInt64);

  col::Int64Builder big;
  for (int i = 0; i < 2000; ++i) big.Append(i);
  auto t = MakeTable({{"x", big.Finish().ValueOrDie()}});
  // 2000 rows x 1 column x 64 bytes = 128000 > 64 KiB budget.
  Status st = ExecTransform(t, op, policy).status();
  EXPECT_TRUE(st.IsOutOfMemory()) << st.ToString();

  // The same op without the object model succeeds.
  policy.row_apply_object_bytes = 0;
  EXPECT_TRUE(ExecTransform(t, op, policy).ok());
}

TEST(ExecTest, CopyOutputsDoublesFootprint) {
  sim::MemoryPool pool("measure", 0);
  uint64_t peak_with_copy = 0;
  uint64_t peak_without = 0;
  {
    sim::MemoryScope scope(&pool);
    auto t = SampleTable();
    ExecPolicy policy;
    policy.copy_outputs = false;
    pool.ResetPeak();
    ASSERT_TRUE(ExecTransform(t, Op::SortValues({{"id", true}}), policy).ok());
    peak_without = pool.peak_bytes();
    policy.copy_outputs = true;
    pool.ResetPeak();
    ASSERT_TRUE(ExecTransform(t, Op::SortValues({{"id", true}}), policy).ok());
    peak_with_copy = pool.peak_bytes();
  }
  EXPECT_GT(peak_with_copy, peak_without);
}

TEST(CapabilitiesTest, MatrixCoversAllPreparators) {
  // 27 rows: the paper's Table II inventory.
  EXPECT_EQ(CapabilityMatrix().size(), 27u);
  for (const CapabilityRow& row : CapabilityMatrix()) {
    EXPECT_EQ(row.support.size(), CapabilityEngineOrder().size())
        << row.preparator;
  }
}

TEST(CapabilitiesTest, LookupSemantics) {
  // Pandas is the reference API.
  EXPECT_EQ(GetSupport("pandas", "isna").ValueOrDie(), Support::kFull);
  // Modin variants share the Modin column.
  EXPECT_EQ(GetSupport("modin_ray", "sort").ValueOrDie(),
            GetSupport("modin_dask", "sort").ValueOrDie());
  // DataTable misses most DT preparators (Table II).
  EXPECT_EQ(GetSupport("datatable", "merge").ValueOrDie(), Support::kEmulated);
  EXPECT_FALSE(GetSupport("nosuch", "isna").ok());
  EXPECT_FALSE(GetSupport("polars", "nosuch").ok());
}

TEST(CapabilitiesTest, StageNames) {
  EXPECT_STREQ(StageName(Stage::kIO), "I/O");
  EXPECT_STREQ(StageName(Stage::kEDA), "EDA");
  EXPECT_STREQ(SupportMark(Support::kFull), "++");
  EXPECT_STREQ(SupportMark(Support::kEmulated), "o");
}

TEST(DeepCopyTest, IndependentBuffers) {
  auto t = SampleTable();
  auto copy = DeepCopyTable(t).ValueOrDie();
  test::ExpectTablesEqual(t, copy);
  EXPECT_NE(copy->column(0)->data_buffer()->data(),
            t->column(0)->data_buffer()->data());
}

}  // namespace
}  // namespace bento::frame
