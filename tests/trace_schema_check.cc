// Standalone validator for obs trace files, used by the CI trace job:
//
//   trace_schema_check trace.json                  # structural schema only
//   trace_schema_check --expect-pipeline trace.json
//   trace_schema_check --expect-pipeline --min-preparators 20 trace.json
//   trace_schema_check --expect-energy trace.json
//
// --expect-pipeline additionally requires the runner's nesting shape
// (stage ⊃ preparator ⊃ engine/kernel/io) and a memory-timeline counter
// track. --expect-energy requires resource-sampled spans (counter args)
// and a monotone energy:joules counter track. Exits 0 on a valid trace, 1
// otherwise, printing a short summary.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tests/trace_schema.h"
#include "util/json.h"

int main(int argc, char** argv) {
  bool expect_pipeline = false;
  bool expect_energy = false;
  int min_preparators = 0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--expect-pipeline") == 0) {
      expect_pipeline = true;
    } else if (std::strcmp(argv[i], "--expect-energy") == 0) {
      expect_energy = true;
    } else if (std::strcmp(argv[i], "--min-preparators") == 0 &&
               i + 1 < argc) {
      min_preparators = std::atoi(argv[++i]);
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: trace_schema_check [--expect-pipeline] "
                 "[--expect-energy] [--min-preparators N] trace.json\n");
    return 1;
  }

  auto doc = bento::ReadJsonFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }

  bento::test::TraceStats stats;
  bento::Status st =
      bento::test::ValidateTraceDocument(doc.ValueOrDie(), &stats);
  if (st.ok() && expect_pipeline) {
    st = bento::test::ValidatePipelineShape(doc.ValueOrDie(),
                                            min_preparators);
  }
  if (st.ok() && expect_energy) {
    st = bento::test::ValidateEnergyTrack(doc.ValueOrDie());
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                 st.ToString().c_str());
    return 1;
  }

  std::printf("%s: OK — %d spans (%d sampled), %d counter samples, "
              "%d named threads\n",
              path.c_str(), stats.span_count, stats.sampled_spans,
              stats.counter_samples, stats.thread_metadata);
  for (const auto& [cat, n] : stats.spans_by_category) {
    std::printf("  %-11s %d\n", cat.c_str(), n);
  }
  if (!stats.counter_tracks.empty()) {
    std::printf("  counter tracks:");
    for (const std::string& track : stats.counter_tracks) {
      std::printf(" %s", track.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
