#include <gtest/gtest.h>

#include <cmath>

#include "kernels/compare.h"
#include "kernels/null_ops.h"
#include "kernels/selection.h"
#include "tests/test_util.h"

namespace bento::kern {
namespace {

using col::Scalar;
using col::TypeId;
using test::Bools;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

TEST(FilterTest, KeepsMaskedRows) {
  auto values = I64({10, 20, 30, 40});
  auto mask = Bools({true, false, true, false});
  auto out = Filter(values, mask).ValueOrDie();
  ASSERT_EQ(out->length(), 2);
  EXPECT_EQ(out->int64_data()[0], 10);
  EXPECT_EQ(out->int64_data()[1], 30);
}

TEST(FilterTest, NullMaskSlotsDropRows) {
  auto values = Str({"a", "b", "c"});
  auto mask = Bools({true, true, true}, {true, false, true});
  auto out = Filter(values, mask).ValueOrDie();
  ASSERT_EQ(out->length(), 2);
  EXPECT_EQ(out->GetView(1), "c");
}

TEST(FilterTest, PreservesNullsInValues) {
  auto values = F64({1.0, 2.0, 3.0}, {true, false, true});
  auto mask = Bools({true, true, false});
  auto out = Filter(values, mask).ValueOrDie();
  ASSERT_EQ(out->length(), 2);
  EXPECT_TRUE(out->IsNull(1));
}

TEST(FilterTest, TypeAndLengthChecks) {
  EXPECT_FALSE(Filter(I64({1}), I64({1})).ok());
  EXPECT_FALSE(Filter(I64({1, 2}), Bools({true})).ok());
}

TEST(FilterTest, TableFilter) {
  auto t = MakeTable({{"a", I64({1, 2, 3})}, {"b", Str({"x", "y", "z"})}});
  auto out = FilterTable(t, Bools({false, true, true})).ValueOrDie();
  EXPECT_EQ(out->num_rows(), 2);
  EXPECT_EQ(out->column(1)->GetView(0), "y");
}

TEST(TakeTest, GathersAndEmitsNullsForNegative) {
  auto values = Str({"a", "b", "c"});
  auto out = Take(values, {2, -1, 0, 0}).ValueOrDie();
  ASSERT_EQ(out->length(), 4);
  EXPECT_EQ(out->GetView(0), "c");
  EXPECT_TRUE(out->IsNull(1));
  EXPECT_EQ(out->GetView(2), "a");
}

TEST(TakeTest, OutOfBoundsFails) {
  EXPECT_FALSE(Take(I64({1, 2}), {2}).ok());
}

TEST(TakeTest, TimestampKeepsType) {
  col::TimestampBuilder b;
  b.Append(1000);
  b.Append(2000);
  auto ts = b.Finish().ValueOrDie();
  auto out = Take(ts, {1, 0}).ValueOrDie();
  EXPECT_EQ(out->type(), TypeId::kTimestamp);
  EXPECT_EQ(out->int64_data()[0], 2000);
}

TEST(CompareTest, ScalarNumeric) {
  auto v = F64({1.0, 2.0, 3.0}, {true, true, false});
  auto gt = CompareScalar(v, CompareOp::kGt, Scalar::Double(1.5)).ValueOrDie();
  EXPECT_EQ(gt->bool_data()[0], 0);
  EXPECT_EQ(gt->bool_data()[1], 1);
  EXPECT_TRUE(gt->IsNull(2));  // null propagates
}

TEST(CompareTest, IntColumnVsDoubleLiteral) {
  auto v = I64({1, 2, 3});
  auto le = CompareScalar(v, CompareOp::kLe, Scalar::Double(2.0)).ValueOrDie();
  EXPECT_EQ(le->bool_data()[0], 1);
  EXPECT_EQ(le->bool_data()[2], 0);
}

TEST(CompareTest, ScalarString) {
  auto v = Str({"apple", "banana"});
  auto eq = CompareScalar(v, CompareOp::kEq, Scalar::Str("banana")).ValueOrDie();
  EXPECT_EQ(eq->bool_data()[0], 0);
  EXPECT_EQ(eq->bool_data()[1], 1);
  EXPECT_FALSE(CompareScalar(v, CompareOp::kEq, Scalar::Int(1)).ok());
}

TEST(CompareTest, NullLiteralYieldsAllNull) {
  auto v = I64({1, 2});
  auto out = CompareScalar(v, CompareOp::kEq, Scalar::Null()).ValueOrDie();
  EXPECT_EQ(out->null_count(), 2);
}

TEST(CompareTest, ArrayVsArray) {
  auto a = I64({1, 5, 3});
  auto b = F64({2.0, 4.0, 3.0});
  auto lt = CompareArrays(a, CompareOp::kLt, b).ValueOrDie();
  EXPECT_EQ(lt->bool_data()[0], 1);
  EXPECT_EQ(lt->bool_data()[1], 0);
  auto eq = CompareArrays(a, CompareOp::kEq, b).ValueOrDie();
  EXPECT_EQ(eq->bool_data()[2], 1);
}

TEST(CompareTest, AllOperators) {
  auto v = I64({5});
  auto check = [&](CompareOp op, int64_t rhs, bool expected) {
    auto out = CompareScalar(v, op, Scalar::Int(rhs)).ValueOrDie();
    EXPECT_EQ(out->bool_data()[0] != 0, expected);
  };
  check(CompareOp::kEq, 5, true);
  check(CompareOp::kNe, 5, false);
  check(CompareOp::kLt, 6, true);
  check(CompareOp::kLe, 5, true);
  check(CompareOp::kGt, 5, false);
  check(CompareOp::kGe, 5, true);
}

TEST(BooleanTest, KleeneAndOr) {
  auto t = Bools({true, true, false, false}, {true, false, true, false});
  auto u = Bools({true, false, true, false}, {true, true, true, false});
  // AND: false dominates null.
  auto a = BooleanAnd(t, u).ValueOrDie();
  EXPECT_EQ(a->bool_data()[0], 1);
  EXPECT_TRUE(a->IsNull(1) == false);  // null AND false = false
  EXPECT_EQ(a->bool_data()[1], 0);
  EXPECT_EQ(a->bool_data()[2], 0);
  EXPECT_TRUE(a->IsNull(3));
  // OR: true dominates null.
  auto o = BooleanOr(t, u).ValueOrDie();
  EXPECT_EQ(o->bool_data()[0], 1);
  EXPECT_TRUE(o->IsNull(1));  // null OR false = null
  EXPECT_EQ(o->bool_data()[2], 1);
  EXPECT_TRUE(o->IsNull(3));
}

TEST(BooleanTest, Not) {
  auto v = Bools({true, false}, {true, false});
  auto out = BooleanNot(v).ValueOrDie();
  EXPECT_EQ(out->bool_data()[0], 0);
  EXPECT_TRUE(out->IsNull(1));
  EXPECT_FALSE(BooleanNot(I64({1})).ok());
}

TEST(IsNullTest, MetadataAndScanAgree) {
  auto v = F64({1.0, 2.0, 3.0, 4.0}, {true, false, true, false});
  for (NullProbe probe : {NullProbe::kMetadata, NullProbe::kScan}) {
    auto mask = IsNull(v, probe).ValueOrDie();
    EXPECT_EQ(mask->bool_data()[0], 0);
    EXPECT_EQ(mask->bool_data()[1], 1);
    EXPECT_EQ(mask->bool_data()[3], 1);
  }
}

TEST(IsNullTest, ScanDetectsNaNSentinels) {
  // Sentinel model: a NaN without a validity bit is null to the scan probe
  // but invisible to the metadata probe.
  auto v = F64({1.0, std::nan("")});
  auto scan = IsNull(v, NullProbe::kScan).ValueOrDie();
  EXPECT_EQ(scan->bool_data()[1], 1);
  auto meta = IsNull(v, NullProbe::kMetadata).ValueOrDie();
  EXPECT_EQ(meta->bool_data()[1], 0);
}

TEST(IsNullTest, StringScan) {
  auto v = Str({"a", "b"}, {true, false});
  auto mask = IsNull(v, NullProbe::kScan).ValueOrDie();
  EXPECT_EQ(mask->bool_data()[0], 0);
  EXPECT_EQ(mask->bool_data()[1], 1);
}

TEST(NullCountsTest, PerColumn) {
  auto t = MakeTable({{"a", I64({1, 2, 3}, {true, false, false})},
                      {"b", Str({"x", "y", "z"})}});
  auto counts = NullCounts(t, NullProbe::kMetadata).ValueOrDie();
  EXPECT_EQ(counts, (std::vector<int64_t>{2, 0}));
  auto scanned = NullCounts(t, NullProbe::kScan).ValueOrDie();
  EXPECT_EQ(scanned, counts);
}

TEST(FillNullTest, NumericAndString) {
  auto v = F64({1.0, 0.0, 3.0}, {true, false, true});
  auto filled = FillNull(v, col::Scalar::Double(9.5)).ValueOrDie();
  EXPECT_EQ(filled->null_count(), 0);
  EXPECT_DOUBLE_EQ(filled->float64_data()[1], 9.5);

  auto s = Str({"a", ""}, {true, false});
  auto sf = FillNull(s, col::Scalar::Str("missing")).ValueOrDie();
  EXPECT_EQ(sf->GetView(1), "missing");

  // Type mismatch rejected.
  EXPECT_FALSE(FillNull(s, col::Scalar::Int(1)).ok());
  // No nulls: returns input unchanged.
  auto dense = I64({1, 2});
  EXPECT_EQ(FillNull(dense, col::Scalar::Int(0)).ValueOrDie().get(),
            dense.get());
}

TEST(FillNullTest, WithMean) {
  auto v = F64({2.0, 0.0, 4.0}, {true, false, true});
  auto filled = FillNullWithMean(v).ValueOrDie();
  EXPECT_DOUBLE_EQ(filled->float64_data()[1], 3.0);
  EXPECT_FALSE(FillNullWithMean(Str({"x"})).ok());
}

TEST(DropNullRowsTest, AllColumnsAndSubset) {
  auto t = MakeTable({{"a", I64({1, 2, 3}, {true, false, true})},
                      {"b", Str({"x", "y", "z"}, {true, true, false})}});
  auto all = DropNullRows(t).ValueOrDie();
  EXPECT_EQ(all->num_rows(), 1);
  EXPECT_EQ(all->column(0)->int64_data()[0], 1);

  auto subset = DropNullRows(t, {"a"}).ValueOrDie();
  EXPECT_EQ(subset->num_rows(), 2);
  EXPECT_FALSE(DropNullRows(t, {"zz"}).ok());
}

}  // namespace
}  // namespace bento::kern
