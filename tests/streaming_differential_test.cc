#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bento/pipeline.h"
#include "bento/runner.h"
#include "engines/lazy_engine.h"
#include "engines/polars.h"
#include "engines/spark.h"
#include "engines/streaming_ops.h"
#include "engines/vaex.h"
#include "frame/engine.h"
#include "kernels/flat_index.h"
#include "kernels/groupby.h"
#include "kernels/join.h"
#include "obs/metrics.h"
#include "sim/parallel.h"
#include "tests/test_util.h"
#include "util/random.h"

// The out-of-core lock: every chunked / spilled / partitioned execution path
// must be BIT-IDENTICAL to the in-memory eager result — same rows, same
// order, same floats. Integer-valued numeric data makes float aggregation
// exact, so any ordering or merge bug shows up as a hard mismatch instead of
// an epsilon.

namespace bento::eng {
namespace {

using col::TablePtr;
using frame::Op;
using kern::AggKind;
using kern::AggSpec;
using test::I64;
using test::MakeTable;
using test::Str;

/// Random table whose numeric columns hold integer values (exact in
/// float64 under any association), with nulls and a low-cardinality string.
TablePtr IntValuedTable(int64_t rows, uint64_t seed, int64_t key_card = 23) {
  Rng rng(seed);
  col::Int64Builder k;
  col::Float64Builder v;
  col::Int64Builder n;
  col::StringBuilder s;
  for (int64_t i = 0; i < rows; ++i) {
    k.Append(rng.UniformInt(0, key_card - 1));
    v.AppendMaybe(static_cast<double>(rng.UniformInt(0, 1000)),
                  !rng.Bernoulli(0.15));
    n.AppendMaybe(rng.UniformInt(-50, 50), !rng.Bernoulli(0.05));
    s.Append(std::string(1, static_cast<char>('a' + rng.Uniform(4))));
  }
  return MakeTable({{"k", k.Finish().ValueOrDie()},
                    {"v", v.Finish().ValueOrDie()},
                    {"n", n.Finish().ValueOrDie()},
                    {"s", s.Finish().ValueOrDie()}});
}

/// Scoped BENTO_CHUNK_ROWS override (nullptr = unset).
class ChunkRowsGuard {
 public:
  explicit ChunkRowsGuard(const char* value) {
    if (value != nullptr) {
      setenv("BENTO_CHUNK_ROWS", value, 1);
    } else {
      unsetenv("BENTO_CHUNK_ROWS");
    }
  }
  ~ChunkRowsGuard() { unsetenv("BENTO_CHUNK_ROWS"); }
};

std::vector<AggSpec> TestAggs() {
  return {{"v", AggKind::kSum, "v_sum"},   {"v", AggKind::kCount, "v_cnt"},
          {"v", AggKind::kMean, "v_mean"}, {"n", AggKind::kMin, "n_min"},
          {"n", AggKind::kMax, "n_max"},   {"v", AggKind::kStd, "v_std"}};
}

/// A pipeline that crosses every streaming breaker class: filter (streamable),
/// one-hot + fillna-mean (two-pass), group-by (partial-agg), join (probe /
/// grace), sort (external).
///
/// Accumulating aggregations (sum/mean/std) read only the all-integer column
/// `n` here: FillNaMean fills `v` with a fractional mean (identical in both
/// paths), but SUMMING fractional values chunk-wise legitimately differs
/// from eager row-order summation by float association. `v` feeds only the
/// order-independent min/max/count, keeping the whole plan bit-exact.
std::vector<Op> BreakersPlan(const std::shared_ptr<frame::DataFrame>& labels) {
  std::vector<AggSpec> aggs = {
      {"n", AggKind::kSum, "n_sum"}, {"n", AggKind::kMean, "n_mean"},
      {"n", AggKind::kStd, "n_std"}, {"v", AggKind::kMin, "v_min"},
      {"v", AggKind::kMax, "v_max"}, {"v", AggKind::kCount, "v_cnt"}};
  return {
      Op::Query("k >= 2"),
      Op::GetDummies("s"),
      Op::FillNaMean("v"),
      Op::GroupByAgg({"k"}, std::move(aggs)),
      Op::Merge(labels, "k", "k", kern::JoinType::kLeft),
      Op::SortValues({{"n_sum", false}, {"k", true}}),
  };
}

TablePtr LabelsTable() {
  std::vector<int64_t> keys;
  std::vector<std::string> labels;
  for (int64_t i = 0; i < 18; ++i) {  // keys 18..22 stay unmatched (left join)
    keys.push_back(i);
    labels.push_back("label_" + std::to_string(i));
  }
  return MakeTable({{"k", I64(keys)}, {"label", Str(labels)}});
}

/// Chunked execution under a tight budget must equal unbounded in-memory
/// execution, for every streaming engine and for chunk sizes from degenerate
/// (1 row) through larger-than-the-table (whole-table one-shot).
TEST(StreamingDifferentialTest, TightBudgetMatchesUnboundedAcrossChunkSizes) {
  auto t = IntValuedTable(2500, /*seed=*/101);

  struct NamedEngine {
    const char* name;
    std::unique_ptr<LazyEngineBase> engine;
  };
  std::vector<NamedEngine> engines;
  engines.push_back({"spark_sql", std::make_unique<SparkSqlEngine>()});
  engines.push_back({"polars", std::make_unique<PolarsEngine>()});
  engines.push_back({"vaex", std::make_unique<VaexEngine>()});

  for (auto& [name, engine] : engines) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(engine->StreamsBreakers()) << name;
    auto labels = engine->FromTable(LabelsTable()).ValueOrDie();
    std::vector<Op> plan = BreakersPlan(labels);
    LazySource source;
    source.kind = LazySource::Kind::kTable;
    source.table = t;

    TablePtr unbounded = engine->Execute(source, plan).ValueOrDie();

    for (const char* chunk_rows : {"1", "7", "65536", "1073741824"}) {
      SCOPED_TRACE(std::string("chunk_rows=") + chunk_rows);
      ChunkRowsGuard guard(chunk_rows);
      // Tight enough that MemoryTight() engages streaming (budget < 5x the
      // source), loose enough for one widened chunk + breaker state.
      sim::MachineSpec tight{"tight", 4,
                             static_cast<uint64_t>(t->ByteSize() * 4),
                             std::nullopt};
      sim::Session session(tight);
      auto streamed = engine->Execute(source, plan);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
      test::ExpectTablesEqual(unbounded, streamed.ValueOrDie());
    }
  }
}

/// Every registered engine must produce the same frame regardless of worker
/// count and chunk-size override: parallel merges and chunked scans are
/// deterministic, not just "equivalent".
TEST(StreamingDifferentialTest, AllEnginesStableAcrossWorkersAndChunks) {
  auto t = IntValuedTable(3000, /*seed=*/202);
  std::vector<Op> plan = {
      Op::Query("k >= 1"),
      Op::GroupByAgg({"k", "s"}, TestAggs()),
      Op::SortValues({{"v_sum", false}, {"k", true}, {"s", true}}),
  };

  for (const std::string& id : frame::EngineIds()) {
    SCOPED_TRACE(id);
    TablePtr baseline;
    for (int cores : {1, 2, 4}) {
      for (const char* chunk_rows :
           {static_cast<const char*>(nullptr), "513"}) {
        SCOPED_TRACE(std::string("cores=") + std::to_string(cores) +
                     " chunk_rows=" +
                     (chunk_rows != nullptr ? chunk_rows : "(default)"));
        ChunkRowsGuard guard(chunk_rows);
        sim::MachineSpec machine{"m", cores, 8ULL << 30, std::nullopt};
        sim::Session session(machine);
        auto engine = frame::CreateEngine(id).ValueOrDie();
        auto frame = engine->FromTable(t).ValueOrDie();
        for (const Op& op : plan) frame = frame->Apply(op).ValueOrDie();
        auto result = frame->Collect().ValueOrDie();
        if (baseline == nullptr) {
          baseline = result;
        } else {
          test::ExpectTablesEqual(baseline, result);
        }
      }
    }
  }
}

/// Forced spill (threshold 0 spills the partial state from the first chunk)
/// must still be bit-identical to the eager kernel, for any partition count.
TEST(StreamingDifferentialTest, ForcedSpillGroupByBitIdentical) {
  auto t = IntValuedTable(6000, /*seed=*/303, /*key_card=*/500);
  auto aggs = TestAggs();
  auto eager = kern::GroupBy(t, {"k"}, aggs).ValueOrDie();
  frame::ExecPolicy policy;

  static obs::Counter* engaged =
      obs::MetricsRegistry::Global().counter("groupby.spill_engaged");
  for (int partitions : {1, 3, 16}) {
    SCOPED_TRACE(partitions);
    const uint64_t engaged_before = engaged->value();
    StreamingGroupByOptions options;
    options.spill_partitions = partitions;
    options.spill_threshold_bytes = 0;
    TableChunkStream spilled_in(t, 257);
    auto spilled =
        StreamingGroupBy(&spilled_in, {"k"}, aggs, policy, options).ValueOrDie();
    EXPECT_GT(engaged->value(), engaged_before);
    test::ExpectTablesEqual(eager, spilled);

    // And the default (never-spill without a session budget) path agrees.
    TableChunkStream memory_in(t, 257);
    auto in_memory =
        StreamingGroupBy(&memory_in, {"k"}, aggs, policy).ValueOrDie();
    test::ExpectTablesEqual(eager, in_memory);
  }
}

/// Grace join must reproduce HashJoin exactly: same rows, same order, same
/// right-side nulls — across partition counts, chunk sizes, join types, null
/// keys, and empty inputs.
TEST(StreamingDifferentialTest, GraceJoinMatchesHashJoin) {
  Rng rng(404);
  col::Int64Builder pk;
  col::Float64Builder pv;
  for (int64_t i = 0; i < 3000; ++i) {
    pk.AppendMaybe(rng.UniformInt(0, 40), !rng.Bernoulli(0.1));
    pv.Append(static_cast<double>(rng.UniformInt(0, 100)));
  }
  auto probe = MakeTable(
      {{"k", pk.Finish().ValueOrDie()}, {"pv", pv.Finish().ValueOrDie()}});

  std::vector<int64_t> bk;
  std::vector<std::string> bl;
  for (int64_t i = 0; i < 30; ++i) {  // keys 30..40 unmatched
    bk.push_back(i);
    bl.push_back("b" + std::to_string(i));
  }
  auto build = MakeTable({{"k", I64(bk)}, {"label", Str(bl)}});

  for (kern::JoinType type : {kern::JoinType::kInner, kern::JoinType::kLeft}) {
    kern::JoinOptions options;
    options.type = type;
    auto expected = kern::HashJoin(probe, build, "k", "k", options).ValueOrDie();
    for (int partitions : {1, 2, 7}) {
      for (int64_t chunk : {int64_t{1}, int64_t{311}, int64_t{1} << 30}) {
        SCOPED_TRACE("type=" + std::to_string(static_cast<int>(type)) +
                     " partitions=" + std::to_string(partitions) +
                     " chunk=" + std::to_string(chunk));
        TableChunkStream stream(probe, chunk);
        auto grace =
            GraceHashJoin(&stream, build, "k", "k", options, partitions)
                .ValueOrDie();
        test::ExpectTablesEqual(expected, grace);
      }
    }
  }

  // Empty probe and empty build keep HashJoin's schema semantics.
  auto empty_probe = probe->Slice(0, 0).ValueOrDie();
  auto empty_build = build->Slice(0, 0).ValueOrDie();
  kern::JoinOptions inner;
  inner.type = kern::JoinType::kInner;
  {
    TableChunkStream stream(empty_probe, 64);
    auto grace = GraceHashJoin(&stream, build, "k", "k", inner, 4).ValueOrDie();
    auto expected =
        kern::HashJoin(empty_probe, build, "k", "k", inner).ValueOrDie();
    test::ExpectTablesEqual(expected, grace);
  }
  {
    TableChunkStream stream(probe, 64);
    auto grace =
        GraceHashJoin(&stream, empty_build, "k", "k", inner, 4).ValueOrDie();
    auto expected =
        kern::HashJoin(probe, empty_build, "k", "k", inner).ValueOrDie();
    test::ExpectTablesEqual(expected, grace);
  }
}

/// End-to-end through the engine: a budget too small for the partial-agg
/// state forces the group-by to spill, the plan still completes, and the
/// frame matches the unbounded run.
TEST(StreamingDifferentialTest, EngineGroupBySpillsUnderTinyBudgetAndMatches) {
  auto t = IntValuedTable(20000, /*seed=*/505, /*key_card=*/4000);
  SparkSqlEngine engine;
  LazySource source;
  source.kind = LazySource::Kind::kTable;
  source.table = t;
  std::vector<Op> plan = {Op::GroupByAgg({"k"}, TestAggs())};

  TablePtr unbounded = engine.Execute(source, plan).ValueOrDie();

  static obs::Counter* engaged =
      obs::MetricsRegistry::Global().counter("groupby.spill_engaged");
  const uint64_t engaged_before = engaged->value();
  sim::MachineSpec tight{"tight", 4,
                         static_cast<uint64_t>(t->ByteSize() * 2),
                         std::nullopt};
  sim::Session session(tight);
  auto streamed = engine.Execute(source, plan);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_GT(engaged->value(), engaged_before)
      << "budget/8 should be below the 4000-group partial state";
  test::ExpectTablesEqual(unbounded, streamed.ValueOrDie());
}

/// Scoped BENTO_PIPELINE_WORKERS override.
class PipelineWorkersGuard {
 public:
  explicit PipelineWorkersGuard(int workers) {
    setenv("BENTO_PIPELINE_WORKERS", std::to_string(workers).c_str(), 1);
  }
  ~PipelineWorkersGuard() { unsetenv("BENTO_PIPELINE_WORKERS"); }
};

/// The pipelined group-by fold must be bit-identical to the eager kernel for
/// ANY worker count — including under forced hash collisions (every group in
/// one bucket chain) and forced spill (partial state hash-partitioned to
/// disk from the first chunk). Workers only parallelize the pure per-chunk
/// partial aggregation; the merge stays serial in claim order.
TEST(StreamingDifferentialTest, GroupByWorkerSweepBitIdentical) {
  auto t = IntValuedTable(5000, /*seed=*/606, /*key_card=*/200);
  auto aggs = TestAggs();
  frame::ExecPolicy policy;

  for (bool collisions : {false, true}) {
    std::optional<kern::ScopedForcedHashCollisions> forced;
    if (collisions) forced.emplace();
    auto eager = kern::GroupBy(t, {"k"}, aggs).ValueOrDie();
    for (bool spill : {false, true}) {
      for (int workers : {1, 2, 4, 8}) {
        SCOPED_TRACE("collisions=" + std::to_string(collisions) +
                     " spill=" + std::to_string(spill) +
                     " workers=" + std::to_string(workers));
        StreamingGroupByOptions options;
        options.pipeline.workers = workers;
        if (spill) options.spill_threshold_bytes = 0;
        int64_t claimed = 0;
        options.chunks_claimed = &claimed;
        TableChunkStream in(t, 311);
        auto result =
            StreamingGroupBy(&in, {"k"}, aggs, policy, options).ValueOrDie();
        test::ExpectTablesEqual(eager, result);
        EXPECT_EQ(claimed, (5000 + 310) / 311);
      }
    }
  }
}

/// Same contract for the pipelined dedup: hashing fans out across workers,
/// the first-seen filter stays serial, and the kept rows are identical for
/// any worker count and chunking (one-shot whole-table included).
TEST(StreamingDifferentialTest, DedupWorkerSweepBitIdentical) {
  auto t = IntValuedTable(4000, /*seed=*/707, /*key_card=*/37);
  TablePtr baseline;
  {
    TableChunkStream in(t, int64_t{1} << 30);  // whole-table one-shot
    baseline = StreamingDedup(&in, {"k", "s"}).ValueOrDie();
  }
  for (int workers : {1, 2, 4, 8}) {
    for (int64_t chunk : {int64_t{64}, int64_t{509}}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " chunk=" + std::to_string(chunk));
      StreamingDedupOptions options;
      options.pipeline.workers = workers;
      int64_t claimed = 0;
      options.chunks_claimed = &claimed;
      TableChunkStream in(t, chunk);
      auto result = StreamingDedup(&in, {"k", "s"}, options).ValueOrDie();
      test::ExpectTablesEqual(baseline, result);
      EXPECT_EQ(claimed, (4000 + chunk - 1) / chunk);
    }
  }
}

/// End-to-end through the engines in REAL execution mode: the full breaker
/// plan (two-pass one-hot + fillna-mean, pipelined group-by, probe join,
/// external sort) under a tight budget must produce the same frame for 1,
/// 2, 4 and 8 pipeline workers as the unbounded in-memory run — and stay
/// under the budget while doing it.
TEST(StreamingDifferentialTest, EnginePipelineWorkerSweepMatchesInMemory) {
  auto t = IntValuedTable(6000, /*seed=*/808);

  struct NamedEngine {
    const char* name;
    std::unique_ptr<LazyEngineBase> engine;
  };
  std::vector<NamedEngine> engines;
  engines.push_back({"spark_sql", std::make_unique<SparkSqlEngine>()});
  engines.push_back({"polars", std::make_unique<PolarsEngine>()});
  engines.push_back({"vaex", std::make_unique<VaexEngine>()});

  for (auto& [name, engine] : engines) {
    SCOPED_TRACE(name);
    auto labels = engine->FromTable(LabelsTable()).ValueOrDie();
    std::vector<Op> plan = BreakersPlan(labels);
    LazySource source;
    source.kind = LazySource::Kind::kTable;
    source.table = t;

    TablePtr unbounded = engine->Execute(source, plan).ValueOrDie();

    for (int workers : {1, 2, 4, 8}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      PipelineWorkersGuard workers_guard(workers);
      ChunkRowsGuard chunk_guard("257");
      sim::MachineSpec tight{"tight", 4,
                             static_cast<uint64_t>(t->ByteSize() * 4),
                             std::nullopt};
      sim::Session session(tight);
      session.set_execution_mode(sim::ExecutionMode::kReal);
      auto streamed = engine->Execute(source, plan);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
      test::ExpectTablesEqual(unbounded, streamed.ValueOrDie());
      EXPECT_LE(session.host_pool()->peak_bytes(),
                session.host_pool()->budget());
    }
  }
}

/// The paper-scale acceptance claim, shrunk by BENTO_SCALE: the patrol and
/// taxi pipelines complete on the streaming engines under the (scaled)
/// laptop RAM model, with the MemoryPool peak below the budget.
TEST(OutOfCoreAcceptanceTest, PatrolAndTaxiFitTheLaptopBudget) {
  const std::string dir =
      "/tmp/bento_ooc_accept_" + std::to_string(::getpid());
  run::Runner runner(dir, 0.001);
  for (const char* dataset : {"patrol", "taxi"}) {
    auto pipeline = run::PipelineFor(dataset).ValueOrDie();
    for (const char* engine_id : {"vaex", "spark_sql", "polars"}) {
      SCOPED_TRACE(std::string(dataset) + "/" + engine_id);
      run::RunConfig config;
      config.engine_id = engine_id;
      config.machine = sim::MachineSpec::Laptop();
      config.mode = run::RunMode::kPipelineStage;
      config.use_bcf_source = std::string(engine_id) != "vaex";
      auto report = runner.Run(config, pipeline, dataset).ValueOrDie();
      EXPECT_TRUE(report.status.ok()) << report.status.ToString();
      EXPECT_GT(report.peak_host_bytes, 0u);
      EXPECT_LE(report.peak_host_bytes,
                runner.EffectiveMachine(config).ram_bytes);
    }
  }
  const std::string cmd = "rm -rf " + dir;
  (void)!system(cmd.c_str());
}

}  // namespace
}  // namespace bento::eng
