#include <gtest/gtest.h>

#include "expr/eval.h"
#include "expr/parser.h"
#include "tests/test_util.h"

namespace bento::expr {
namespace {

using col::Scalar;
using col::TypeId;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

TEST(ExprBuildTest, ToStringRendersInfix) {
  auto e = Expr::Binary(BinOpKind::kGt,
                        Expr::Binary(BinOpKind::kAdd, Expr::Column("a"),
                                     Expr::Literal(Scalar::Int(1))),
                        Expr::Literal(Scalar::Int(2)));
  EXPECT_EQ(e->ToString(), "((a + 1) > 2)");
}

TEST(ExprBuildTest, CollectColumns) {
  auto e = ParseExpr("a + b * fillna(c, 0) > d").ValueOrDie();
  std::set<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<std::string>{"a", "b", "c", "d"}));
}

TEST(ParserTest, Precedence) {
  EXPECT_EQ(ParseExpr("1 + 2 * 3").ValueOrDie()->ToString(), "(1 + (2 * 3))");
  EXPECT_EQ(ParseExpr("(1 + 2) * 3").ValueOrDie()->ToString(), "((1 + 2) * 3)");
  EXPECT_EQ(ParseExpr("a > 1 and b < 2 or c == 3").ValueOrDie()->ToString(),
            "(((a > 1) and (b < 2)) or (c == 3))");
  EXPECT_EQ(ParseExpr("2 ** 3 ** 2").ValueOrDie()->ToString(),
            "(2 ** (3 ** 2))");  // right associative
  EXPECT_EQ(ParseExpr("-x + 1").ValueOrDie()->ToString(), "((-x) + 1)");
}

TEST(ParserTest, LiteralsAndKeywords) {
  EXPECT_EQ(ParseExpr("42").ValueOrDie()->literal().int_value(), 42);
  EXPECT_DOUBLE_EQ(ParseExpr("-2.5").ValueOrDie()->literal().double_value(),
                   -2.5);
  EXPECT_TRUE(ParseExpr("True").ValueOrDie()->literal().bool_value());
  EXPECT_TRUE(ParseExpr("None").ValueOrDie()->literal().is_null());
  EXPECT_EQ(ParseExpr("'hi'").ValueOrDie()->literal().string_value(), "hi");
  EXPECT_EQ(ParseExpr("\"there\"").ValueOrDie()->literal().string_value(),
            "there");
}

TEST(ParserTest, AlternativeOperatorSpellings) {
  EXPECT_EQ(ParseExpr("a && b").ValueOrDie()->ToString(), "(a and b)");
  EXPECT_EQ(ParseExpr("a || b").ValueOrDie()->ToString(), "(a or b)");
  EXPECT_EQ(ParseExpr("a & b").ValueOrDie()->ToString(), "(a and b)");
  EXPECT_EQ(ParseExpr("!a").ValueOrDie()->ToString(), "(not a)");
  EXPECT_EQ(ParseExpr("not a").ValueOrDie()->ToString(), "(not a)");
}

TEST(ParserTest, FunctionCalls) {
  auto e = ParseExpr("round(log(a), 2)").ValueOrDie();
  EXPECT_EQ(e->kind(), Expr::Kind::kCall);
  EXPECT_EQ(e->fn_name(), "round");
  ASSERT_EQ(e->args().size(), 2u);
  EXPECT_EQ(e->args()[0]->fn_name(), "log");
}

TEST(ParserTest, Rejections) {
  EXPECT_FALSE(ParseExpr("").ok());
  EXPECT_FALSE(ParseExpr("a +").ok());
  EXPECT_FALSE(ParseExpr("(a").ok());
  EXPECT_FALSE(ParseExpr("f(a,").ok());
  EXPECT_FALSE(ParseExpr("'unterminated").ok());
  EXPECT_FALSE(ParseExpr("a b").ok());
  EXPECT_FALSE(ParseExpr("#").ok());
}

TEST(InferTypeTest, Rules) {
  col::Schema schema({{"i", TypeId::kInt64},
                      {"f", TypeId::kFloat64},
                      {"s", TypeId::kString},
                      {"ts", TypeId::kTimestamp}});
  auto type_of = [&](const std::string& text) {
    return ParseExpr(text).ValueOrDie()->InferType(schema);
  };
  EXPECT_EQ(type_of("i + 1").ValueOrDie(), TypeId::kInt64);
  EXPECT_EQ(type_of("i / 2").ValueOrDie(), TypeId::kFloat64);
  EXPECT_EQ(type_of("i + f").ValueOrDie(), TypeId::kFloat64);
  EXPECT_EQ(type_of("i > 1").ValueOrDie(), TypeId::kBool);
  EXPECT_EQ(type_of("lower(s)").ValueOrDie(), TypeId::kString);
  EXPECT_EQ(type_of("contains(s, 'x')").ValueOrDie(), TypeId::kBool);
  EXPECT_EQ(type_of("year(ts)").ValueOrDie(), TypeId::kInt64);
  EXPECT_EQ(type_of("log(f)").ValueOrDie(), TypeId::kFloat64);
  EXPECT_FALSE(type_of("s + 1").ok());
  EXPECT_FALSE(type_of("missing_column").ok());
}

TEST(EvalTest, ArithmeticOverColumns) {
  auto t = MakeTable({{"a", F64({1.0, 2.0})}, {"b", F64({10.0, 20.0})}});
  auto e = ParseExpr("a * 2 + b").ValueOrDie();
  auto out = Evaluate(e, t).ValueOrDie();
  EXPECT_DOUBLE_EQ(out->float64_data()[0], 12.0);
  EXPECT_DOUBLE_EQ(out->float64_data()[1], 24.0);
}

TEST(EvalTest, PredicateWithStrings) {
  auto t = MakeTable({{"name", Str({"alice", "bob"})}, {"age", I64({30, 40})}});
  auto e = ParseExpr("age > 35 and name == 'bob'").ValueOrDie();
  auto out = Evaluate(e, t).ValueOrDie();
  EXPECT_EQ(out->bool_data()[0], 0);
  EXPECT_EQ(out->bool_data()[1], 1);
}

TEST(EvalTest, NullPropagation) {
  auto t = MakeTable({{"a", F64({1.0, 0.0}, {true, false})}});
  auto out = Evaluate(ParseExpr("a + 1").ValueOrDie(), t).ValueOrDie();
  EXPECT_FALSE(out->IsNull(0));
  EXPECT_TRUE(out->IsNull(1));
}

TEST(EvalTest, Functions) {
  auto t = MakeTable({{"x", F64({4.0, -1.0})},
                      {"s", Str({"Hello World", "bye"})}});
  EXPECT_DOUBLE_EQ(Evaluate(ParseExpr("sqrt(x)").ValueOrDie(), t)
                       .ValueOrDie()
                       ->float64_data()[0],
                   2.0);
  EXPECT_EQ(Evaluate(ParseExpr("lower(s)").ValueOrDie(), t)
                .ValueOrDie()
                ->GetView(0),
            "hello world");
  EXPECT_EQ(Evaluate(ParseExpr("contains(s, 'World')").ValueOrDie(), t)
                .ValueOrDie()
                ->bool_data()[0],
            1);
  EXPECT_EQ(Evaluate(ParseExpr("length(s)").ValueOrDie(), t)
                .ValueOrDie()
                ->int64_data()[1],
            3);
  EXPECT_DOUBLE_EQ(Evaluate(ParseExpr("fillna(x, 0.5)").ValueOrDie(), t)
                       .ValueOrDie()
                       ->float64_data()[0],
                   4.0);
  EXPECT_FALSE(Evaluate(ParseExpr("nosuchfn(x)").ValueOrDie(), t).ok());
}

TEST(EvalTest, IsNullFunction) {
  auto t = MakeTable({{"a", I64({1, 0}, {true, false})}});
  auto out = Evaluate(ParseExpr("isnull(a)").ValueOrDie(), t).ValueOrDie();
  EXPECT_EQ(out->bool_data()[0], 0);
  EXPECT_EQ(out->bool_data()[1], 1);
}

TEST(EvalTest, LiteralBroadcast) {
  auto t = MakeTable({{"a", I64({1, 2, 3})}});
  auto out = Evaluate(ParseExpr("7").ValueOrDie(), t).ValueOrDie();
  EXPECT_EQ(out->length(), 3);
  EXPECT_EQ(out->int64_data()[2], 7);
}

TEST(EvalTest, ErrorsSurface) {
  auto t = MakeTable({{"a", I64({1})}});
  EXPECT_FALSE(Evaluate(ParseExpr("zz + 1").ValueOrDie(), t).ok());
  EXPECT_FALSE(Evaluate(nullptr, t).ok());
}

}  // namespace
}  // namespace bento::expr
