// Randomized property tests over the core invariants, parameterized by seed
// (TEST_P sweeps).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <numeric>

#include "expr/parser.h"
#include "io/bcf.h"
#include "io/csv.h"
#include "kernels/groupby.h"
#include "kernels/selection.h"
#include "kernels/sort.h"
#include "sim/machine.h"
#include "sim/parallel.h"
#include "tests/test_util.h"
#include "util/json.h"
#include "util/random.h"

namespace bento {
namespace {

using col::TablePtr;
using col::TypeId;

/// A random table mixing all basic types, nulls, and odd string content.
TablePtr RandomTable(Rng* rng, int64_t rows) {
  col::Int64Builder ints;
  col::Float64Builder doubles;
  col::BoolBuilder bools;
  col::StringBuilder strings;
  for (int64_t i = 0; i < rows; ++i) {
    ints.AppendMaybe(rng->UniformInt(-1000, 1000), !rng->Bernoulli(0.1));
    doubles.AppendMaybe(rng->Normal(0, 100), !rng->Bernoulli(0.2));
    bools.AppendMaybe(rng->Bernoulli(0.5), !rng->Bernoulli(0.15));
    std::string s = rng->AsciiString(0, 24);
    if (rng->Bernoulli(0.1)) s += ",\"tricky\nbit\"";
    strings.AppendMaybe(s, !rng->Bernoulli(0.25));
  }
  return test::MakeTable({{"i", ints.Finish().ValueOrDie()},
                          {"d", doubles.Finish().ValueOrDie()},
                          {"b", bools.Finish().ValueOrDie()},
                          {"s", strings.Finish().ValueOrDie()}});
}

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededProperty, BcfRoundTripsAnyTable) {
  Rng rng(GetParam());
  auto t = RandomTable(&rng, 1 + static_cast<int64_t>(rng.Uniform(3000)));
  std::string path = "/tmp/bento_prop_" + std::to_string(::getpid()) + "_" +
                     std::to_string(GetParam()) + ".bcf";
  io::BcfWriteOptions options;
  options.row_group_rows = 1 + static_cast<int64_t>(rng.Uniform(500));
  options.compression = rng.Bernoulli(0.5);
  ASSERT_OK(io::WriteBcf(t, path, options));
  auto back = io::BcfReader::Open(path).ValueOrDie()->ReadAll().ValueOrDie();
  test::ExpectTablesEqual(t, back);
  std::remove(path.c_str());
}

TEST_P(SeededProperty, CsvRoundTripsQuotedContent) {
  Rng rng(GetParam() ^ 0xC5);
  auto t = RandomTable(&rng, 1 + static_cast<int64_t>(rng.Uniform(500)));
  std::string path = "/tmp/bento_prop_" + std::to_string(::getpid()) + "_" +
                     std::to_string(GetParam()) + ".csv";
  ASSERT_OK(io::WriteCsv(t, path));
  auto back = io::ReadCsv(path).ValueOrDie();
  test::ExpectTablesEqual(t, back);
  std::remove(path.c_str());
}

TEST_P(SeededProperty, SortProducesOrderedPermutation) {
  Rng rng(GetParam() ^ 0x50);
  auto t = RandomTable(&rng, 1 + static_cast<int64_t>(rng.Uniform(2000)));
  std::vector<kern::SortKey> keys = {{"d", rng.Bernoulli(0.5)},
                                     {"i", rng.Bernoulli(0.5)}};
  auto indices = kern::ArgSort(t, keys).ValueOrDie();

  // Permutation: every row index exactly once.
  std::vector<int64_t> sorted_idx = indices;
  std::sort(sorted_idx.begin(), sorted_idx.end());
  for (size_t i = 0; i < sorted_idx.size(); ++i) {
    ASSERT_EQ(sorted_idx[i], static_cast<int64_t>(i));
  }

  // Ordered under the comparator (adjacent pairs never inverted).
  auto sorted = kern::TakeTable(t, indices).ValueOrDie();
  for (int64_t r = 0; r + 1 < sorted->num_rows(); ++r) {
    int cmp =
        kern::CompareTableRows(sorted, r, sorted, r + 1, keys).ValueOrDie();
    ASSERT_LE(cmp, 0) << "rows " << r << " and " << r + 1;
  }
}

TEST_P(SeededProperty, GroupSumsPreserveColumnTotal) {
  Rng rng(GetParam() ^ 0x61);
  auto t = RandomTable(&rng, 100 + static_cast<int64_t>(rng.Uniform(3000)));
  auto grouped =
      kern::GroupBy(t, {"i"}, {{"d", kern::AggKind::kSum, "sum"},
                               {"d", kern::AggKind::kCount, "n"}})
          .ValueOrDie();
  double group_total = 0;
  int64_t group_count = 0;
  auto sums = grouped->GetColumn("sum").ValueOrDie();
  auto counts = grouped->GetColumn("n").ValueOrDie();
  for (int64_t g = 0; g < grouped->num_rows(); ++g) {
    if (sums->IsValid(g)) group_total += sums->float64_data()[g];
    group_count += counts->int64_data()[g];
  }
  auto d = t->GetColumn("d").ValueOrDie();
  double direct_total = 0;
  int64_t direct_count = 0;
  for (int64_t r = 0; r < d->length(); ++r) {
    if (d->IsValid(r)) {
      direct_total += d->float64_data()[r];
      ++direct_count;
    }
  }
  EXPECT_NEAR(group_total, direct_total, 1e-6 * (std::abs(direct_total) + 1));
  EXPECT_EQ(group_count, direct_count);
}

TEST_P(SeededProperty, FilterThenConcatIsPartition) {
  Rng rng(GetParam() ^ 0x99);
  auto t = RandomTable(&rng, 1 + static_cast<int64_t>(rng.Uniform(2000)));
  // Filter on b==true, b==false, b==null: the three parts partition t.
  auto b = t->GetColumn("b").ValueOrDie();
  col::BoolBuilder is_true, is_false, is_null;
  for (int64_t i = 0; i < b->length(); ++i) {
    const bool valid = b->IsValid(i);
    const bool v = valid && b->bool_data()[i] != 0;
    is_true.Append(valid && v);
    is_false.Append(valid && !v);
    is_null.Append(!valid);
  }
  int64_t total = 0;
  for (auto* builder : {&is_true, &is_false, &is_null}) {
    auto mask = builder->Finish().ValueOrDie();
    total += kern::FilterTable(t, mask).ValueOrDie()->num_rows();
  }
  EXPECT_EQ(total, t->num_rows());
}

TEST_P(SeededProperty, SlicesReassembleToWhole) {
  Rng rng(GetParam() ^ 0x42);
  auto t = RandomTable(&rng, 10 + static_cast<int64_t>(rng.Uniform(1000)));
  std::vector<TablePtr> parts;
  int64_t pos = 0;
  while (pos < t->num_rows()) {
    int64_t len = std::min<int64_t>(1 + static_cast<int64_t>(rng.Uniform(97)),
                                    t->num_rows() - pos);
    parts.push_back(t->Slice(pos, len).ValueOrDie());
    pos += len;
  }
  auto whole = col::ConcatTables(parts).ValueOrDie();
  test::ExpectTablesEqual(t, whole);
}

TEST_P(SeededProperty, ExprToStringParsesBackToItself) {
  Rng rng(GetParam() ^ 0xE0);
  // Build a random expression tree, render, parse, render again: fixpoint.
  std::function<expr::ExprPtr(int)> build = [&](int depth) -> expr::ExprPtr {
    if (depth <= 0 || rng.Bernoulli(0.3)) {
      switch (rng.Uniform(3)) {
        case 0:
          return expr::Expr::Column(std::string(1, 'a' + rng.Uniform(4)));
        case 1:
          return expr::Expr::Literal(col::Scalar::Int(rng.UniformInt(-9, 9)));
        default:
          return expr::Expr::Literal(
              col::Scalar::Double(rng.UniformInt(1, 9) * 0.5));
      }
    }
    static const expr::BinOpKind ops[] = {
        expr::BinOpKind::kAdd, expr::BinOpKind::kMul, expr::BinOpKind::kLt,
        expr::BinOpKind::kAnd, expr::BinOpKind::kOr,  expr::BinOpKind::kSub};
    return expr::Expr::Binary(ops[rng.Uniform(6)], build(depth - 1),
                              build(depth - 1));
  };
  auto e = build(4);
  std::string rendered = e->ToString();
  auto reparsed = expr::ParseExpr(rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered << ": "
                             << reparsed.status().ToString();
  EXPECT_EQ(reparsed.ValueOrDie()->ToString(), rendered);
}

TEST_P(SeededProperty, JsonDumpParseFixpoint) {
  Rng rng(GetParam() ^ 0x15);
  std::function<JsonValue(int)> build = [&](int depth) -> JsonValue {
    if (depth <= 0 || rng.Bernoulli(0.4)) {
      switch (rng.Uniform(4)) {
        case 0:
          return JsonValue::Null();
        case 1:
          return JsonValue::Bool(rng.Bernoulli(0.5));
        case 2:
          return JsonValue::Int(rng.UniformInt(-1000000, 1000000));
        default:
          return JsonValue::Str(rng.AsciiString(0, 12) + "\"\n\\x");
      }
    }
    if (rng.Bernoulli(0.5)) {
      JsonValue arr = JsonValue::Array();
      for (uint64_t i = 0; i < rng.Uniform(4); ++i) {
        arr.Append(build(depth - 1));
      }
      return arr;
    }
    JsonValue obj = JsonValue::Object();
    for (uint64_t i = 0; i < rng.Uniform(4); ++i) {
      obj.Set("k" + std::to_string(i), build(depth - 1));
    }
    return obj;
  };
  JsonValue v = build(4);
  std::string once = v.Dump();
  auto round = ParseJson(once);
  ASSERT_TRUE(round.ok()) << once;
  EXPECT_EQ(round.ValueOrDie().Dump(), once);
  // Pretty-printed form parses to the same document too.
  auto pretty = ParseJson(v.Dump(2));
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(pretty.ValueOrDie().Dump(), once);
}

TEST_P(SeededProperty, MakespanBounds) {
  Rng rng(GetParam() ^ 0x3C);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.Uniform(40));
    std::vector<double> durations(n);
    double total = 0, longest = 0;
    for (double& d : durations) {
      d = rng.Uniform(1000) * 1e-3;
      if (rng.Bernoulli(0.2)) d = 0.0;       // idle tasks
      if (rng.Bernoulli(0.1)) d *= 50;       // heavy skew
      total += d;
      longest = std::max(longest, d);
    }
    const int workers = 1 + static_cast<int>(rng.Uniform(12));
    for (auto policy :
         {sim::SchedulePolicy::kGreedy, sim::SchedulePolicy::kStaticBlocks}) {
      const double m = sim::SimulateMakespan(durations, workers, policy);
      // No schedule beats the critical path or perfect work division, and
      // none is worse than fully serial execution (zero dispatch cost).
      ASSERT_GE(m, longest - 1e-12);
      ASSERT_GE(m, total / workers - 1e-9);
      ASSERT_LE(m, total + 1e-9);
      // One worker has no overlap to exploit: makespan is the serial sum.
      ASSERT_NEAR(sim::SimulateMakespan(durations, 1, policy), total, 1e-9);
    }
    // Dispatch overhead only ever adds time.
    const double dispatch = rng.Uniform(100) * 1e-4;
    ASSERT_GE(sim::SimulateMakespan(durations, workers,
                                    sim::SchedulePolicy::kGreedy, dispatch),
              sim::SimulateMakespan(durations, workers,
                                    sim::SchedulePolicy::kGreedy));
  }
}

TEST_P(SeededProperty, GreedyMakespanMonotoneInWorkers) {
  // Greedy (work-stealing) scheduling never slows down when workers are
  // added. Deliberately NOT asserted for kStaticBlocks: shifting block
  // boundaries can pack two heavy tasks onto one worker (e.g. durations
  // {0,0,9,9,0,0} take 9s on 2 workers but 18s on 3).
  Rng rng(GetParam() ^ 0xA7);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.Uniform(30));
    std::vector<double> durations(n);
    for (double& d : durations) d = rng.Uniform(1000) * 1e-3;
    const double dispatch = rng.Bernoulli(0.5) ? rng.Uniform(50) * 1e-4 : 0.0;
    double prev = sim::SimulateMakespan(durations, 1,
                                        sim::SchedulePolicy::kGreedy, dispatch);
    for (int w = 2; w <= 14; ++w) {
      double m = sim::SimulateMakespan(durations, w,
                                       sim::SchedulePolicy::kGreedy, dispatch);
      ASSERT_LE(m, prev + 1e-9) << "workers " << w;
      prev = m;
    }
  }
}

TEST_P(SeededProperty, SplitRangeCoversDisjointly) {
  Rng rng(GetParam() ^ 0x5B);
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t n = static_cast<int64_t>(rng.Uniform(100000));
    const int max_chunks = 1 + static_cast<int>(rng.Uniform(24));
    const int64_t min_rows = 1 + static_cast<int64_t>(rng.Uniform(5000));
    auto chunks = sim::SplitRange(n, max_chunks, min_rows);
    if (n == 0) {
      ASSERT_TRUE(chunks.empty());
      continue;
    }
    // Exact disjoint cover of [0, n): contiguous, ascending, non-empty.
    ASSERT_FALSE(chunks.empty());
    ASSERT_LE(static_cast<int>(chunks.size()), max_chunks);
    ASSERT_EQ(chunks.front().first, 0);
    ASSERT_EQ(chunks.back().second, n);
    for (size_t i = 0; i < chunks.size(); ++i) {
      ASSERT_LT(chunks[i].first, chunks[i].second);
      if (i > 0) ASSERT_EQ(chunks[i].first, chunks[i - 1].second);
      // The minimum-chunk contract: inputs of at least min_rows rows never
      // produce an undersized chunk; smaller inputs collapse to one chunk.
      if (n >= min_rows) {
        ASSERT_GE(chunks[i].second - chunks[i].first, min_rows);
      }
    }
    if (n < min_rows) {
      ASSERT_EQ(chunks.size(), 1u);
    }
  }
  // Pinned edge cases.
  EXPECT_TRUE(sim::SplitRange(0, 8, 1).empty());
  auto tiny = sim::SplitRange(3, 8, 100);
  ASSERT_EQ(tiny.size(), 1u);
  EXPECT_EQ(tiny[0], (std::pair<int64_t, int64_t>{0, 3}));
  // Degenerate arguments clamp instead of misbehaving.
  auto clamped = sim::SplitRange(10, 0, 0);
  ASSERT_EQ(clamped.size(), 1u);
  EXPECT_EQ(clamped[0], (std::pair<int64_t, int64_t>{0, 10}));
}

TEST_P(SeededProperty, RealExecutionMatchesSimulated) {
  // The tentpole invariant at the ParallelFor level: a real-thread run
  // produces exactly the per-index outputs of the simulated (serial) run.
  Rng rng(GetParam() ^ 0x77);
  const int64_t n = 1 + static_cast<int64_t>(rng.Uniform(4000));
  std::vector<uint64_t> inputs(n);
  for (auto& v : inputs) v = rng.Uniform(1u << 30);

  auto run = [&](sim::ExecutionMode mode) {
    sim::Session session(sim::MachineSpec::Server());
    session.set_execution_mode(mode);
    std::vector<uint64_t> out(n, 0);
    sim::ParallelOptions options;
    options.mode = sim::ExecutionMode::kReal;
    options.max_workers = 1 + static_cast<int>(rng.Uniform(8));
    EXPECT_TRUE(sim::ParallelFor(
                    n,
                    [&](int64_t i) {
                      uint64_t h = inputs[i] * 0x9E3779B97F4A7C15ULL;
                      out[i] = h ^ (h >> 31);
                      return Status::OK();
                    },
                    options)
                    .ok());
    return out;
  };
  EXPECT_EQ(run(sim::ExecutionMode::kSimulated),
            run(sim::ExecutionMode::kReal));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace bento
