// Differential plan fuzzer: seeded random preparator pipelines run three
// ways — lazy with the optimizer on, lazy with the optimizer off (the
// `_noopt` registry variants), and the eager pandas reference — and the
// results must agree. Optimized vs unoptimized on the SAME engine must be
// bit-identical including row order (the optimizer's contract); against the
// eager reference, plans containing breakers with engine-specific emission
// order (group-by, join, dedup) are compared as sorted multisets.
//
// The default seed count keeps ctest bounded; set BENTO_FUZZ_SEEDS to fuzz
// harder (the acceptance run uses >= 200).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "engines/lazy_engine.h"
#include "frame/engine.h"
#include "kernels/common.h"
#include "kernels/groupby.h"
#include "sim/machine.h"
#include "sim/parallel.h"
#include "tests/test_util.h"

namespace bento {
namespace {

using col::Scalar;
using col::TypeId;
using frame::Op;
using frame::OpKind;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

using Rng = std::mt19937;

int RandInt(Rng& rng, int lo, int hi) {  // inclusive
  return lo + static_cast<int>(rng() % static_cast<uint32_t>(hi - lo + 1));
}

template <typename T>
const T& Pick(Rng& rng, const std::vector<T>& pool) {
  return pool[rng() % pool.size()];
}

// --- random base data --------------------------------------------------------

const std::vector<std::string>& TeamPool() {
  static const std::vector<std::string> pool = {
      "Alpha", "BRAVO", "charlie", "Delta", "echo", "FOX"};
  return pool;
}

const std::vector<std::string>& NocPool() {
  static const std::vector<std::string> pool = {"USA", "GER", "CHN", "KEN",
                                                "BRA"};
  return pool;
}

/// Seed-dependent athlete-like table: numeric and string columns, nulls,
/// duplicate keys.
col::TablePtr MakeBaseTable(Rng& rng) {
  const int n = RandInt(rng, 80, 200);
  std::vector<int64_t> id, age;
  std::vector<double> height, weight;
  std::vector<std::string> team, noc, medal;
  std::vector<bool> age_valid, height_valid, medal_valid;
  for (int i = 0; i < n; ++i) {
    id.push_back(rng() % 64);  // dense duplicates
    age.push_back(15 + static_cast<int64_t>(rng() % 30));
    age_valid.push_back(rng() % 10 != 0);
    height.push_back(150.0 + static_cast<double>(rng() % 500) / 10.0);
    height_valid.push_back(rng() % 8 != 0);
    weight.push_back(45.0 + static_cast<double>(rng() % 600) / 10.0);
    team.push_back(Pick(rng, TeamPool()));
    noc.push_back(Pick(rng, NocPool()));
    medal.push_back(Pick(rng, std::vector<std::string>{"gold", "silver",
                                                       "bronze"}));
    medal_valid.push_back(rng() % 4 != 0);
  }
  return MakeTable({{"id", I64(id)},
                    {"age", I64(age, age_valid)},
                    {"height", F64(height, height_valid)},
                    {"weight", F64(weight)},
                    {"team", Str(team)},
                    {"noc", Str(noc)},
                    {"medal", Str(medal, medal_valid)}});
}

col::TablePtr RegionsTable() {
  return MakeTable({{"noc", Str({"USA", "GER", "CHN", "KEN"})},
                    {"region", Str({"americas", "europe", "asia", "africa"})},
                    {"rank", I64({1, 2, 3, 4})}});
}

// --- random pipelines --------------------------------------------------------

enum class ColType { kNum, kStr };

struct Shadow {
  std::vector<std::pair<std::string, ColType>> cols;

  bool Has(const std::string& name) const {
    for (const auto& c : cols) {
      if (c.first == name) return true;
    }
    return false;
  }
  std::vector<std::string> Of(ColType t) const {
    std::vector<std::string> out;
    for (const auto& c : cols) {
      if (c.second == t) out.push_back(c.first);
    }
    return out;
  }
  void Drop(const std::vector<std::string>& names) {
    for (const std::string& n : names) {
      for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i].first == n) {
          cols.erase(cols.begin() + i);
          break;
        }
      }
    }
  }
};

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

struct FuzzPlan {
  std::vector<Op> ops;
  bool expect_error = false;
  bool order_ambiguous = false;  // contains groupby / merge / dedup
  std::vector<std::string> final_columns;
};

/// Generates a random valid pipeline against the base-table schema,
/// tracking the live columns so every op references existing data. With
/// small probability the last op references a missing column instead, and
/// all three arms must fail alike.
FuzzPlan GeneratePlan(Rng& rng) {
  FuzzPlan out;
  Shadow shadow;
  shadow.cols = {{"id", ColType::kNum},      {"age", ColType::kNum},
                 {"height", ColType::kNum},  {"weight", ColType::kNum},
                 {"team", ColType::kStr},    {"noc", ColType::kStr},
                 {"medal", ColType::kStr}};
  bool merged = false;
  int next_expr_col = 0;

  const int target_len = RandInt(rng, 2, 7);
  int guard = 0;
  while (static_cast<int>(out.ops.size()) < target_len && ++guard < 64) {
    const std::vector<std::string> nums = shadow.Of(ColType::kNum);
    const std::vector<std::string> strs = shadow.Of(ColType::kStr);
    switch (rng() % 13) {
      case 0: {  // numeric filter
        if (nums.empty()) break;
        const std::vector<std::string> cmps = {">", ">=", "<", "<=", "=="};
        std::string pred = Pick(rng, nums) + " " + Pick(rng, cmps) + " " +
                           FormatDouble(RandInt(rng, 0, 220));
        if (rng() % 3 == 0 && !nums.empty()) {
          pred += " and " + Pick(rng, nums) + " >= " +
                  FormatDouble(RandInt(rng, 0, 60));
        }
        out.ops.push_back(Op::Query(pred));
        break;
      }
      case 1: {  // string equality filter
        if (strs.empty()) break;
        const std::string& col = Pick(rng, strs);
        const std::string value =
            col == "noc" ? Pick(rng, NocPool()) : Pick(rng, TeamPool());
        out.ops.push_back(Op::Query(col + " == '" + value + "'"));
        break;
      }
      case 2: {  // sort
        std::vector<kern::SortKey> keys;
        keys.push_back({Pick(rng, shadow.cols).first, rng() % 2 == 0});
        if (rng() % 2 == 0) {
          keys.push_back({Pick(rng, shadow.cols).first, rng() % 2 == 0});
        }
        out.ops.push_back(Op::SortValues(std::move(keys)));
        break;
      }
      case 3: {  // cast to float64
        if (nums.empty()) break;
        out.ops.push_back(Op::Cast(Pick(rng, nums), TypeId::kFloat64));
        break;
      }
      case 4: {  // drop a column (keep a workable schema)
        if (shadow.cols.size() < 4) break;
        const std::string col = Pick(rng, shadow.cols).first;
        out.ops.push_back(Op::DropColumns({col}));
        shadow.Drop({col});
        break;
      }
      case 5: {  // round
        if (nums.empty()) break;
        out.ops.push_back(Op::Round(Pick(rng, nums), RandInt(rng, 0, 2)));
        break;
      }
      case 6: {  // fillna (scalar or mean)
        if (nums.empty()) break;
        const std::string& col = Pick(rng, nums);
        if (rng() % 2 == 0) {
          out.ops.push_back(Op::FillNa(
              col, Scalar::Double(static_cast<double>(RandInt(rng, 0, 99)))));
        } else {
          out.ops.push_back(Op::FillNaMean(col));
        }
        break;
      }
      case 7: {  // lowercase / replace on a string column
        if (strs.empty()) break;
        const std::string& col = Pick(rng, strs);
        if (rng() % 2 == 0) {
          out.ops.push_back(Op::StrLower(col));
        } else {
          out.ops.push_back(
              Op::Replace(col, Scalar::Str(Pick(rng, TeamPool())),
                          Scalar::Str("other")));
        }
        break;
      }
      case 8: {  // dedup (full row or subset)
        std::vector<std::string> subset;
        if (rng() % 2 == 0) {
          subset.push_back(Pick(rng, shadow.cols).first);
          if (rng() % 2 == 0) subset.push_back(Pick(rng, shadow.cols).first);
        }
        out.ops.push_back(Op::DropDuplicates(subset));
        out.order_ambiguous = true;
        break;
      }
      case 9: {  // group-by aggregate
        if (strs.empty() || nums.empty()) break;
        std::vector<std::string> keys = {Pick(rng, strs)};
        std::vector<kern::AggSpec> aggs;
        Shadow after;
        after.cols.push_back({keys[0], ColType::kStr});
        const std::vector<kern::AggKind> kinds = {
            kern::AggKind::kSum, kern::AggKind::kMin, kern::AggKind::kMax,
            kern::AggKind::kCount};
        const int n_aggs = RandInt(rng, 1, 2);
        for (int i = 0; i < n_aggs; ++i) {
          kern::AggSpec spec{Pick(rng, nums), Pick(rng, kinds), ""};
          if (rng() % 2 == 0) spec.output_name = "agg" + std::to_string(i);
          const std::string produced = spec.output_name.empty()
                                           ? kern::DefaultAggName(spec)
                                           : spec.output_name;
          if (after.Has(produced)) continue;
          after.cols.push_back({produced, ColType::kNum});
          aggs.push_back(std::move(spec));
        }
        if (aggs.empty()) break;
        out.ops.push_back(Op::GroupByAgg(std::move(keys), std::move(aggs)));
        shadow = after;
        out.order_ambiguous = true;
        break;
      }
      case 10: {  // merge with the regions table (right side bound per arm)
        if (merged || !shadow.Has("noc")) break;
        out.ops.push_back(Op::Merge(nullptr, "noc", "noc",
                                    rng() % 2 == 0 ? kern::JoinType::kInner
                                                   : kern::JoinType::kLeft));
        shadow.cols.push_back({"region", ColType::kStr});
        shadow.cols.push_back({"rank", ColType::kNum});
        merged = true;
        out.order_ambiguous = true;
        break;
      }
      case 11: {  // derived numeric column
        if (nums.size() < 2) break;
        const std::string name = "fx" + std::to_string(next_expr_col++);
        out.ops.push_back(Op::ApplyExpr(
            name, Pick(rng, nums) + " + " + Pick(rng, nums) + " * 2"));
        shadow.cols.push_back({name, ColType::kNum});
        break;
      }
      case 12: {  // dropna
        std::vector<std::string> subset;
        if (rng() % 2 == 0 && !nums.empty()) subset.push_back(Pick(rng, nums));
        out.ops.push_back(Op::DropNa(subset));
        break;
      }
    }
  }
  if (out.ops.empty()) out.ops.push_back(Op::Query("age >= 20.0"));

  // Some seeds run the whole pipeline over an empty frame: a filter no row
  // can pass, injected up front so every downstream op (group-by, merge,
  // sort, scan-bound drops) sees zero rows.
  if (rng() % 7 == 0) {
    out.ops.insert(out.ops.begin(), Op::Query("weight > 10000.0"));
  }

  // Occasionally close with an op over a column that does not exist; the
  // optimizer must not turn this error into a success (or vice versa).
  if (rng() % 8 == 0) {
    out.expect_error = true;
    if (rng() % 2 == 0) {
      out.ops.push_back(Op::Query("zz_missing > 1.0"));
    } else {
      out.ops.push_back(Op::DropColumns({"zz_missing"}));
    }
  }
  for (const auto& c : shadow.cols) out.final_columns.push_back(c.first);
  return out;
}

// --- arms --------------------------------------------------------------------

struct SourceSpec {
  enum class Kind { kTable, kCsv, kBcf } kind = Kind::kTable;
  col::TablePtr table;
  std::string path;
};

struct ArmResult {
  Status status = Status::OK();
  col::TablePtr table;
};

/// Drops SparkPD's synthetic index columns so arms compare on user data.
col::TablePtr StripIndexColumns(const col::TablePtr& table) {
  std::vector<std::string> doomed;
  for (const auto& field : table->schema()->fields()) {
    if (field.name.rfind("__index__", 0) == 0) doomed.push_back(field.name);
  }
  if (doomed.empty()) return table;
  auto stripped = table->DropColumns(doomed);
  return stripped.ok() ? stripped.ValueOrDie() : table;
}

ArmResult RunPipeline(const std::string& engine_id, const SourceSpec& source,
                      const std::vector<Op>& ops) {
  auto engine_r = frame::CreateEngine(engine_id);
  if (!engine_r.ok()) return {engine_r.status(), nullptr};
  auto engine = engine_r.ValueOrDie();

  auto open = [&]() -> Result<frame::DataFrame::Ptr> {
    switch (source.kind) {
      case SourceSpec::Kind::kCsv:
        return engine->ReadCsv(source.path, io::CsvReadOptions{});
      case SourceSpec::Kind::kBcf:
        return engine->ReadBcf(source.path);
      case SourceSpec::Kind::kTable:
      default:
        return engine->FromTable(source.table);
    }
  };
  Result<frame::DataFrame::Ptr> frame_r = open();
  if (!frame_r.ok()) return {frame_r.status(), nullptr};
  frame::DataFrame::Ptr frame = frame_r.ValueOrDie();

  for (const Op& op : ops) {
    Op bound = op;
    if (bound.kind == OpKind::kMerge) {
      auto other = engine->FromTable(RegionsTable());
      if (!other.ok()) return {other.status(), nullptr};
      bound.other = other.ValueOrDie();
    }
    auto next = frame->Apply(bound);
    if (!next.ok()) return {next.status(), nullptr};
    frame = next.ValueOrDie();
  }
  auto out = frame->Collect();
  if (!out.ok()) return {out.status(), nullptr};
  return {Status::OK(), StripIndexColumns(out.ValueOrDie())};
}

int SeedCount() {
  const char* env = std::getenv("BENTO_FUZZ_SEEDS");
  if (env != nullptr && *env != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;  // bounded ctest default (~1 s); raise via env to fuzz harder
}

const std::vector<std::string>& LazyEngines() {
  static const std::vector<std::string> ids = {"polars", "spark_sql",
                                               "spark_pd", "vaex"};
  return ids;
}

class TempFile {
 public:
  explicit TempFile(std::string path) : path_(std::move(path)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(PlanFuzzTest, OptimizedMatchesUnoptimizedAndEagerReference) {
  const int seeds = SeedCount();
  for (int seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(static_cast<uint32_t>(0x5eed0000 + seed));

    // Worker counts 1..4, alternating simulated / real thread dispatch.
    sim::MachineSpec spec = sim::MachineSpec::Server();
    spec.cores = 1 + seed % 4;
    sim::Session session(spec);
    session.set_execution_mode(seed % 2 == 0 ? sim::ExecutionMode::kSimulated
                                             : sim::ExecutionMode::kReal);

    const col::TablePtr base = MakeBaseTable(rng);
    const FuzzPlan fuzz = GeneratePlan(rng);
    SCOPED_TRACE("plan:\n" + plan::Explain(fuzz.ops));

    // Rotate the source kind so scan pushdown (CSV column skipping, BCF
    // zone maps) is fuzzed too, not just in-memory plans.
    SourceSpec source;
    std::unique_ptr<TempFile> temp;
    {
      ASSERT_OK_AND_ASSIGN(auto writer_engine, frame::CreateEngine("pandas"));
      ASSERT_OK_AND_ASSIGN(auto writer_frame, writer_engine->FromTable(base));
      const std::string stem =
          testing::TempDir() + "bento_fuzz_" + std::to_string(seed);
      switch (seed % 3) {
        case 0:
          source.kind = SourceSpec::Kind::kTable;
          source.table = base;
          break;
        case 1:
          source.kind = SourceSpec::Kind::kCsv;
          source.path = stem + ".csv";
          temp = std::make_unique<TempFile>(source.path);
          ASSERT_OK(writer_engine->WriteCsv(writer_frame, source.path));
          break;
        case 2:
          source.kind = SourceSpec::Kind::kBcf;
          source.path = stem + ".bcf";
          temp = std::make_unique<TempFile>(source.path);
          ASSERT_OK(writer_engine->WriteBcf(writer_frame, source.path));
          break;
      }
    }

    const ArmResult reference = RunPipeline("pandas", source, fuzz.ops);
    if (fuzz.expect_error) {
      EXPECT_FALSE(reference.status.ok())
          << "reference unexpectedly succeeded";
    }

    for (const std::string& id : LazyEngines()) {
      SCOPED_TRACE("engine=" + id);
      const ArmResult optimized = RunPipeline(id, source, fuzz.ops);
      const ArmResult unoptimized = RunPipeline(id + "_noopt", source,
                                                fuzz.ops);

      ASSERT_EQ(optimized.status.ok(), reference.status.ok())
          << "optimized: " << optimized.status.ToString()
          << "\nreference: " << reference.status.ToString();
      ASSERT_EQ(unoptimized.status.ok(), reference.status.ok())
          << "unoptimized: " << unoptimized.status.ToString()
          << "\nreference: " << reference.status.ToString();
      if (!reference.status.ok()) {
        // The optimizer must preserve the *kind* of failure, not just
        // failure itself.
        EXPECT_EQ(optimized.status.code(), unoptimized.status.code())
            << optimized.status.ToString() << " vs "
            << unoptimized.status.ToString();
        continue;
      }

      // Optimized vs unoptimized on the same engine: bit-identical,
      // including row order.
      test::ExpectTablesEqual(unoptimized.table, optimized.table);

      // Against the eager reference: breakers with engine-specific emission
      // order compare as sorted multisets over every shared column.
      if (fuzz.order_ambiguous) {
        std::vector<std::string> keys;
        for (const auto& field : reference.table->schema()->fields()) {
          keys.push_back(field.name);
        }
        test::ExpectTablesEquivalent(reference.table, optimized.table, keys);
      } else {
        test::ExpectTablesEqual(reference.table, optimized.table);
      }
    }
  }
}

}  // namespace
}  // namespace bento
