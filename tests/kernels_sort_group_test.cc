#include <gtest/gtest.h>

#include "kernels/dedup.h"
#include "kernels/groupby.h"
#include "kernels/join.h"
#include "kernels/row_hash.h"
#include "kernels/sort.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace bento::kern {
namespace {

using col::TablePtr;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

TEST(SortTest, SingleKeyAscending) {
  auto t = MakeTable({{"k", I64({3, 1, 2})}});
  auto sorted = SortTable(t, {{"k", true}}).ValueOrDie();
  EXPECT_EQ(sorted->column(0)->int64_data()[0], 1);
  EXPECT_EQ(sorted->column(0)->int64_data()[2], 3);
}

TEST(SortTest, DescendingAndNullsLast) {
  auto t = MakeTable({{"k", F64({1.0, 0.0, 2.0}, {true, false, true})}});
  auto asc = SortTable(t, {{"k", true}}).ValueOrDie();
  EXPECT_DOUBLE_EQ(asc->column(0)->float64_data()[0], 1.0);
  EXPECT_TRUE(asc->column(0)->IsNull(2));
  auto desc = SortTable(t, {{"k", false}}).ValueOrDie();
  EXPECT_DOUBLE_EQ(desc->column(0)->float64_data()[0], 2.0);
  EXPECT_TRUE(desc->column(0)->IsNull(2));  // nulls last either way
}

TEST(SortTest, MultiKeyAndStability) {
  auto t = MakeTable({{"a", I64({1, 1, 0, 0})}, {"b", Str({"x", "w", "z", "z"})},
                      {"row", I64({0, 1, 2, 3})}});
  auto sorted = SortTable(t, {{"a", true}, {"b", true}}).ValueOrDie();
  // a=0 rows first, tie on b="z" broken by original order (stable).
  EXPECT_EQ(sorted->column(2)->int64_data()[0], 2);
  EXPECT_EQ(sorted->column(2)->int64_data()[1], 3);
  EXPECT_EQ(sorted->column(1)->GetView(2), "w");
}

TEST(SortTest, StringKeys) {
  auto t = MakeTable({{"s", Str({"pear", "apple", "fig"})}});
  auto sorted = SortTable(t, {{"s", true}}).ValueOrDie();
  EXPECT_EQ(sorted->column(0)->GetView(0), "apple");
  EXPECT_EQ(sorted->column(0)->GetView(2), "pear");
}

TEST(SortTest, ParallelMatchesSerialProperty) {
  Rng rng(99);
  col::Int64Builder kb;
  col::Float64Builder vb;
  const int64_t n = 20000;
  for (int64_t i = 0; i < n; ++i) {
    kb.AppendMaybe(rng.UniformInt(0, 50), !rng.Bernoulli(0.05));
    vb.Append(rng.UniformDouble());
  }
  auto t = MakeTable({{"k", kb.Finish().ValueOrDie()},
                      {"v", vb.Finish().ValueOrDie()}});
  std::vector<SortKey> keys = {{"k", true}};
  auto serial = ArgSort(t, keys).ValueOrDie();
  sim::ParallelOptions opts;
  opts.max_workers = 7;
  auto parallel = ArgSortParallel(t, keys, opts).ValueOrDie();
  // Both must produce the identical stable order.
  EXPECT_EQ(serial, parallel);
}

TEST(SortTest, UnknownKeyFails) {
  auto t = MakeTable({{"a", I64({1})}});
  EXPECT_FALSE(SortTable(t, {{"zz", true}}).ok());
  EXPECT_FALSE(SortTable(t, {}).ok());
}

TEST(CompareTableRowsTest, AcrossTables) {
  auto a = MakeTable({{"k", I64({1, 5})}});
  auto b = MakeTable({{"k", I64({3})}});
  std::vector<SortKey> keys = {{"k", true}};
  EXPECT_LT(CompareTableRows(a, 0, b, 0, keys).ValueOrDie(), 0);
  EXPECT_GT(CompareTableRows(a, 1, b, 0, keys).ValueOrDie(), 0);
  EXPECT_EQ(CompareTableRows(a, 0, a, 0, keys).ValueOrDie(), 0);
}

TEST(HashRowsTest, EqualRowsHashEqual) {
  auto t = MakeTable({{"a", I64({1, 1, 2})}, {"b", Str({"x", "x", "x"})}});
  auto hashes = HashRows(t, {"a", "b"}).ValueOrDie();
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_NE(hashes[0], hashes[2]);
}

TEST(HashRowsTest, NullsHashConsistently) {
  auto t = MakeTable({{"a", I64({1, 1}, {false, false})}});
  auto hashes = HashRows(t, {}).ValueOrDie();
  EXPECT_EQ(hashes[0], hashes[1]);
}

TEST(GroupByTest, BasicAggregations) {
  auto t = MakeTable({{"k", Str({"a", "b", "a", "a"})},
                      {"v", F64({1.0, 10.0, 2.0, 3.0})}});
  auto out = GroupBy(t, {"k"},
                     {{"v", AggKind::kSum, "s"},
                      {"v", AggKind::kMean, "m"},
                      {"v", AggKind::kMin, "lo"},
                      {"v", AggKind::kMax, "hi"},
                      {"v", AggKind::kCount, "n"}})
                 .ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2);  // first-seen order: a, b
  EXPECT_EQ(out->column(0)->GetView(0), "a");
  EXPECT_DOUBLE_EQ(out->GetColumn("s").ValueOrDie()->float64_data()[0], 6.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("m").ValueOrDie()->float64_data()[0], 2.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("lo").ValueOrDie()->float64_data()[0], 1.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("hi").ValueOrDie()->float64_data()[0], 3.0);
  EXPECT_EQ(out->GetColumn("n").ValueOrDie()->int64_data()[0], 3);
  EXPECT_DOUBLE_EQ(out->GetColumn("s").ValueOrDie()->float64_data()[1], 10.0);
}

TEST(GroupByTest, StdMatchesManual) {
  auto t = MakeTable({{"k", I64({1, 1, 1})}, {"v", F64({2.0, 4.0, 6.0})}});
  auto out = GroupBy(t, {"k"}, {{"v", AggKind::kStd, "sd"}}).ValueOrDie();
  EXPECT_NEAR(out->GetColumn("sd").ValueOrDie()->float64_data()[0], 2.0, 1e-12);
}

TEST(GroupByTest, NullKeysFormAGroup) {
  auto t = MakeTable({{"k", Str({"a", "x", "x"}, {true, false, false})},
                      {"v", I64({1, 2, 3})}});
  auto out = GroupBy(t, {"k"}, {{"v", AggKind::kSum, "s"}}).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2);
  EXPECT_DOUBLE_EQ(out->GetColumn("s").ValueOrDie()->float64_data()[1], 5.0);
}

TEST(GroupByTest, NullValuesSkipped) {
  auto t = MakeTable(
      {{"k", I64({1, 1})}, {"v", F64({5.0, 99.0}, {true, false})}});
  auto out = GroupBy(t, {"k"},
                     {{"v", AggKind::kSum, "s"}, {"v", AggKind::kCount, "n"}})
                 .ValueOrDie();
  EXPECT_DOUBLE_EQ(out->GetColumn("s").ValueOrDie()->float64_data()[0], 5.0);
  EXPECT_EQ(out->GetColumn("n").ValueOrDie()->int64_data()[0], 1);
}

TEST(GroupByTest, AllNullGroupAggregatesToNull) {
  auto t = MakeTable({{"k", I64({1})}, {"v", F64({0.0}, {false})}});
  auto out = GroupBy(t, {"k"}, {{"v", AggKind::kMean, "m"}}).ValueOrDie();
  EXPECT_TRUE(out->GetColumn("m").ValueOrDie()->IsNull(0));
}

TEST(GroupByTest, RejectsStringAggregation) {
  auto t = MakeTable({{"k", I64({1})}, {"s", Str({"x"})}});
  EXPECT_FALSE(GroupBy(t, {"k"}, {{"s", AggKind::kSum, ""}}).ok());
  EXPECT_TRUE(GroupBy(t, {"k"}, {{"s", AggKind::kCount, "n"}}).ok());
  EXPECT_FALSE(GroupBy(t, {}, {{"k", AggKind::kSum, ""}}).ok());
}

TEST(GroupByTest, PartitionedMatchesSerialProperty) {
  Rng rng(7);
  col::Int64Builder kb;
  col::Float64Builder vb;
  for (int64_t i = 0; i < 20000; ++i) {
    kb.Append(rng.UniformInt(0, 97));
    vb.AppendMaybe(rng.UniformDouble(0, 100), !rng.Bernoulli(0.1));
  }
  auto t = MakeTable({{"k", kb.Finish().ValueOrDie()},
                      {"v", vb.Finish().ValueOrDie()}});
  std::vector<AggSpec> aggs = {{"v", AggKind::kSum, "s"},
                               {"v", AggKind::kMean, "m"},
                               {"v", AggKind::kCount, "n"}};
  auto serial = GroupBy(t, {"k"}, aggs).ValueOrDie();
  sim::ParallelOptions opts;
  opts.max_workers = 5;
  auto partitioned = GroupByPartitioned(t, {"k"}, aggs, opts).ValueOrDie();
  EXPECT_EQ(serial->num_rows(), partitioned->num_rows());
  test::ExpectTablesEquivalent(serial, partitioned, {"k"});
}

TEST(JoinTest, InnerJoin) {
  auto left = MakeTable({{"k", I64({1, 2, 3})}, {"lv", Str({"a", "b", "c"})}});
  auto right = MakeTable({{"k", I64({2, 3, 4})}, {"rv", F64({20, 30, 40})}});
  auto out = HashJoin(left, right, "k", "k").ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2);
  EXPECT_EQ(out->GetColumn("lv").ValueOrDie()->GetView(0), "b");
  EXPECT_DOUBLE_EQ(out->GetColumn("rv").ValueOrDie()->float64_data()[1], 30.0);
}

TEST(JoinTest, LeftJoinEmitsNulls) {
  auto left = MakeTable({{"k", I64({1, 2})}, {"lv", I64({10, 20})}});
  auto right = MakeTable({{"k", I64({2})}, {"rv", I64({200})}});
  JoinOptions opts;
  opts.type = JoinType::kLeft;
  auto out = HashJoin(left, right, "k", "k", opts).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2);
  EXPECT_TRUE(out->GetColumn("rv").ValueOrDie()->IsNull(0));
  EXPECT_EQ(out->GetColumn("rv").ValueOrDie()->int64_data()[1], 200);
}

TEST(JoinTest, DuplicateRightKeysReplicate) {
  auto left = MakeTable({{"k", I64({7})}, {"lv", I64({1})}});
  auto right = MakeTable({{"k", I64({7, 7})}, {"rv", I64({100, 200})}});
  auto out = HashJoin(left, right, "k", "k").ValueOrDie();
  EXPECT_EQ(out->num_rows(), 2);
}

TEST(JoinTest, NullKeysNeverMatch) {
  auto left = MakeTable({{"k", I64({1}, {false})}, {"lv", I64({1})}});
  auto right = MakeTable({{"k", I64({1}, {false})}, {"rv", I64({2})}});
  auto inner = HashJoin(left, right, "k", "k").ValueOrDie();
  EXPECT_EQ(inner->num_rows(), 0);
  JoinOptions opts;
  opts.type = JoinType::kLeft;
  auto outer = HashJoin(left, right, "k", "k", opts).ValueOrDie();
  EXPECT_EQ(outer->num_rows(), 1);
  EXPECT_TRUE(outer->GetColumn("rv").ValueOrDie()->IsNull(0));
}

TEST(JoinTest, CollidingNamesGetSuffix) {
  auto left = MakeTable({{"k", I64({1})}, {"v", I64({1})}});
  auto right = MakeTable({{"k", I64({1})}, {"v", I64({2})}});
  auto out = HashJoin(left, right, "k", "k").ValueOrDie();
  EXPECT_TRUE(out->schema()->Contains("v"));
  EXPECT_TRUE(out->schema()->Contains("v_r"));
}

TEST(JoinTest, ParallelMatchesSerialProperty) {
  Rng rng(21);
  col::Int64Builder lk, rk;
  for (int i = 0; i < 5000; ++i) lk.Append(rng.UniformInt(0, 500));
  for (int i = 0; i < 800; ++i) rk.Append(rng.UniformInt(0, 500));
  col::Int64Builder lid, rid;
  for (int i = 0; i < 5000; ++i) lid.Append(i);
  for (int i = 0; i < 800; ++i) rid.Append(i);
  auto left = MakeTable({{"k", lk.Finish().ValueOrDie()},
                         {"lid", lid.Finish().ValueOrDie()}});
  auto right = MakeTable({{"k", rk.Finish().ValueOrDie()},
                          {"rid", rid.Finish().ValueOrDie()}});
  auto serial = HashJoin(left, right, "k", "k").ValueOrDie();
  sim::ParallelOptions popts;
  popts.max_workers = 4;
  auto parallel =
      HashJoinParallel(left, right, "k", "k", {}, popts).ValueOrDie();
  test::ExpectTablesEqual(serial, parallel);  // probe order is preserved
}

TEST(DedupTest, KeepsFirstOccurrence) {
  auto t = MakeTable({{"a", I64({1, 2, 1, 3, 2})},
                      {"b", Str({"x", "y", "x", "z", "q"})}});
  auto all = DropDuplicates(t).ValueOrDie();
  EXPECT_EQ(all->num_rows(), 4);  // (2,"q") differs from (2,"y")
  auto on_a = DropDuplicates(t, {"a"}).ValueOrDie();
  EXPECT_EQ(on_a->num_rows(), 3);
  EXPECT_EQ(on_a->column(1)->GetView(1), "y");  // first occurrence kept
}

TEST(DedupTest, NullsAreEqualForDedup) {
  auto t = MakeTable({{"a", I64({1, 1}, {false, false})}});
  EXPECT_EQ(DropDuplicates(t).ValueOrDie()->num_rows(), 1);
}

TEST(UniqueTest, DistinctNonNull) {
  auto v = Str({"b", "a", "b", "c"}, {true, true, true, false});
  auto u = Unique(v).ValueOrDie();
  ASSERT_EQ(u->length(), 2);
  EXPECT_EQ(u->GetView(0), "b");
  EXPECT_EQ(u->GetView(1), "a");
}

}  // namespace
}  // namespace bento::kern
