#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "kernels/dedup.h"
#include "kernels/encode.h"
#include "kernels/flat_index.h"
#include "kernels/groupby.h"
#include "kernels/join.h"
#include "kernels/row_hash.h"
#include "kernels/selection.h"
#include "kernels/sort.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace bento::kern {
namespace {

using col::TablePtr;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

TEST(SortTest, SingleKeyAscending) {
  auto t = MakeTable({{"k", I64({3, 1, 2})}});
  auto sorted = SortTable(t, {{"k", true}}).ValueOrDie();
  EXPECT_EQ(sorted->column(0)->int64_data()[0], 1);
  EXPECT_EQ(sorted->column(0)->int64_data()[2], 3);
}

TEST(SortTest, DescendingAndNullsLast) {
  auto t = MakeTable({{"k", F64({1.0, 0.0, 2.0}, {true, false, true})}});
  auto asc = SortTable(t, {{"k", true}}).ValueOrDie();
  EXPECT_DOUBLE_EQ(asc->column(0)->float64_data()[0], 1.0);
  EXPECT_TRUE(asc->column(0)->IsNull(2));
  auto desc = SortTable(t, {{"k", false}}).ValueOrDie();
  EXPECT_DOUBLE_EQ(desc->column(0)->float64_data()[0], 2.0);
  EXPECT_TRUE(desc->column(0)->IsNull(2));  // nulls last either way
}

TEST(SortTest, MultiKeyAndStability) {
  auto t = MakeTable({{"a", I64({1, 1, 0, 0})}, {"b", Str({"x", "w", "z", "z"})},
                      {"row", I64({0, 1, 2, 3})}});
  auto sorted = SortTable(t, {{"a", true}, {"b", true}}).ValueOrDie();
  // a=0 rows first, tie on b="z" broken by original order (stable).
  EXPECT_EQ(sorted->column(2)->int64_data()[0], 2);
  EXPECT_EQ(sorted->column(2)->int64_data()[1], 3);
  EXPECT_EQ(sorted->column(1)->GetView(2), "w");
}

TEST(SortTest, StringKeys) {
  auto t = MakeTable({{"s", Str({"pear", "apple", "fig"})}});
  auto sorted = SortTable(t, {{"s", true}}).ValueOrDie();
  EXPECT_EQ(sorted->column(0)->GetView(0), "apple");
  EXPECT_EQ(sorted->column(0)->GetView(2), "pear");
}

TEST(SortTest, ParallelMatchesSerialProperty) {
  Rng rng(99);
  col::Int64Builder kb;
  col::Float64Builder vb;
  const int64_t n = 20000;
  for (int64_t i = 0; i < n; ++i) {
    kb.AppendMaybe(rng.UniformInt(0, 50), !rng.Bernoulli(0.05));
    vb.Append(rng.UniformDouble());
  }
  auto t = MakeTable({{"k", kb.Finish().ValueOrDie()},
                      {"v", vb.Finish().ValueOrDie()}});
  std::vector<SortKey> keys = {{"k", true}};
  auto serial = ArgSort(t, keys).ValueOrDie();
  sim::ParallelOptions opts;
  opts.max_workers = 7;
  auto parallel = ArgSortParallel(t, keys, opts).ValueOrDie();
  // Both must produce the identical stable order.
  EXPECT_EQ(serial, parallel);
}

TEST(SortTest, ParallelMatchesSerialWorkerSweep) {
  Rng rng(101);
  col::Int64Builder kb;
  col::Float64Builder vb;
  const int64_t n = 30000;
  for (int64_t i = 0; i < n; ++i) {
    kb.AppendMaybe(rng.UniformInt(0, 40), !rng.Bernoulli(0.05));  // many ties
    vb.Append(rng.UniformDouble());
  }
  auto t = MakeTable({{"k", kb.Finish().ValueOrDie()},
                      {"v", vb.Finish().ValueOrDie()}});
  std::vector<SortKey> keys = {{"k", false}};
  auto serial = ArgSort(t, keys).ValueOrDie();
  for (int workers : {1, 2, 3, 5, 8}) {
    sim::ParallelOptions opts;
    opts.max_workers = workers;
    auto parallel = ArgSortParallel(t, keys, opts).ValueOrDie();
    EXPECT_EQ(serial, parallel) << "workers=" << workers;
  }
}

TEST(SortTest, MergeSortedRunsMatchesArgSort) {
  Rng rng(102);
  col::Int64Builder kb;
  const int64_t n = 25000;
  for (int64_t i = 0; i < n; ++i) kb.Append(rng.UniformInt(0, 30));
  auto t = MakeTable({{"k", kb.Finish().ValueOrDie()}});
  std::vector<SortKey> keys = {{"k", true}};
  auto expected = ArgSort(t, keys).ValueOrDie();
  auto columns = std::vector<col::ArrayPtr>{t->column(0)};
  // Pre-sorted runs over contiguous (uneven, incl. empty) row ranges: the
  // shape the chunked argsort produces.
  for (int nruns : {2, 3, 7}) {
    std::vector<std::vector<int64_t>> runs;
    int64_t b = 0;
    for (int r = 0; r < nruns; ++r) {
      int64_t e = r + 1 == nruns ? n : std::min<int64_t>(n, b + n / nruns + r * 37);
      std::vector<int64_t> run;
      for (int64_t i = b; i < e; ++i) run.push_back(i);
      std::stable_sort(run.begin(), run.end(), [&](int64_t i, int64_t j) {
        return t->column(0)->int64_data()[i] < t->column(0)->int64_data()[j];
      });
      runs.push_back(std::move(run));
      b = e;
    }
    sim::ParallelOptions opts;
    opts.max_workers = 4;
    auto merged = MergeSortedRuns(t, keys, runs, opts).ValueOrDie();
    EXPECT_EQ(expected, merged) << "nruns=" << nruns;
  }
}

TEST(TakeTest, ParallelMatchesSerial) {
  Rng rng(103);
  col::Int64Builder ib;
  col::Float64Builder fb;
  col::StringBuilder sb;
  col::BoolBuilder bb;
  const int64_t n = 20000;
  for (int64_t i = 0; i < n; ++i) {
    ib.AppendMaybe(rng.UniformInt(-100, 100), !rng.Bernoulli(0.1));
    fb.AppendMaybe(rng.UniformDouble(), !rng.Bernoulli(0.1));
    sb.AppendMaybe(std::string(static_cast<size_t>(rng.UniformInt(0, 20)), 'x'),
                   !rng.Bernoulli(0.1));
    bb.Append(rng.Bernoulli(0.5));
  }
  auto t = MakeTable({{"i", ib.Finish().ValueOrDie()},
                      {"f", fb.Finish().ValueOrDie()},
                      {"s", sb.Finish().ValueOrDie()},
                      {"b", bb.Finish().ValueOrDie()}});
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < n; ++i) {
    indices.push_back(rng.Bernoulli(0.05) ? -1 : rng.UniformInt(0, n - 1));
  }
  auto serial = TakeTable(t, indices).ValueOrDie();
  sim::ParallelOptions opts;
  opts.max_workers = 6;
  auto parallel = TakeTableParallel(t, indices, opts).ValueOrDie();
  test::ExpectTablesEqual(serial, parallel);
  // Out-of-bounds index: both paths must fail with the same message.
  std::vector<int64_t> bad = indices;
  bad[12345] = n + 7;
  auto serial_err = TakeTable(t, bad);
  auto parallel_err = TakeTableParallel(t, bad, opts);
  ASSERT_FALSE(serial_err.ok());
  ASSERT_FALSE(parallel_err.ok());
  EXPECT_EQ(serial_err.status().ToString(), parallel_err.status().ToString());
}

TEST(SortTest, UnknownKeyFails) {
  auto t = MakeTable({{"a", I64({1})}});
  EXPECT_FALSE(SortTable(t, {{"zz", true}}).ok());
  EXPECT_FALSE(SortTable(t, {}).ok());
}

TEST(CompareTableRowsTest, AcrossTables) {
  auto a = MakeTable({{"k", I64({1, 5})}});
  auto b = MakeTable({{"k", I64({3})}});
  std::vector<SortKey> keys = {{"k", true}};
  EXPECT_LT(CompareTableRows(a, 0, b, 0, keys).ValueOrDie(), 0);
  EXPECT_GT(CompareTableRows(a, 1, b, 0, keys).ValueOrDie(), 0);
  EXPECT_EQ(CompareTableRows(a, 0, a, 0, keys).ValueOrDie(), 0);
}

TEST(HashRowsTest, EqualRowsHashEqual) {
  auto t = MakeTable({{"a", I64({1, 1, 2})}, {"b", Str({"x", "x", "x"})}});
  auto hashes = HashRows(t, {"a", "b"}).ValueOrDie();
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_NE(hashes[0], hashes[2]);
}

TEST(HashRowsTest, NullsHashConsistently) {
  auto t = MakeTable({{"a", I64({1, 1}, {false, false})}});
  auto hashes = HashRows(t, {}).ValueOrDie();
  EXPECT_EQ(hashes[0], hashes[1]);
}

TEST(GroupByTest, BasicAggregations) {
  auto t = MakeTable({{"k", Str({"a", "b", "a", "a"})},
                      {"v", F64({1.0, 10.0, 2.0, 3.0})}});
  auto out = GroupBy(t, {"k"},
                     {{"v", AggKind::kSum, "s"},
                      {"v", AggKind::kMean, "m"},
                      {"v", AggKind::kMin, "lo"},
                      {"v", AggKind::kMax, "hi"},
                      {"v", AggKind::kCount, "n"}})
                 .ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2);  // first-seen order: a, b
  EXPECT_EQ(out->column(0)->GetView(0), "a");
  EXPECT_DOUBLE_EQ(out->GetColumn("s").ValueOrDie()->float64_data()[0], 6.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("m").ValueOrDie()->float64_data()[0], 2.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("lo").ValueOrDie()->float64_data()[0], 1.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("hi").ValueOrDie()->float64_data()[0], 3.0);
  EXPECT_EQ(out->GetColumn("n").ValueOrDie()->int64_data()[0], 3);
  EXPECT_DOUBLE_EQ(out->GetColumn("s").ValueOrDie()->float64_data()[1], 10.0);
}

TEST(GroupByTest, StdMatchesManual) {
  auto t = MakeTable({{"k", I64({1, 1, 1})}, {"v", F64({2.0, 4.0, 6.0})}});
  auto out = GroupBy(t, {"k"}, {{"v", AggKind::kStd, "sd"}}).ValueOrDie();
  EXPECT_NEAR(out->GetColumn("sd").ValueOrDie()->float64_data()[0], 2.0, 1e-12);
}

TEST(GroupByTest, NullKeysFormAGroup) {
  auto t = MakeTable({{"k", Str({"a", "x", "x"}, {true, false, false})},
                      {"v", I64({1, 2, 3})}});
  auto out = GroupBy(t, {"k"}, {{"v", AggKind::kSum, "s"}}).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2);
  EXPECT_DOUBLE_EQ(out->GetColumn("s").ValueOrDie()->float64_data()[1], 5.0);
}

TEST(GroupByTest, NullValuesSkipped) {
  auto t = MakeTable(
      {{"k", I64({1, 1})}, {"v", F64({5.0, 99.0}, {true, false})}});
  auto out = GroupBy(t, {"k"},
                     {{"v", AggKind::kSum, "s"}, {"v", AggKind::kCount, "n"}})
                 .ValueOrDie();
  EXPECT_DOUBLE_EQ(out->GetColumn("s").ValueOrDie()->float64_data()[0], 5.0);
  EXPECT_EQ(out->GetColumn("n").ValueOrDie()->int64_data()[0], 1);
}

TEST(GroupByTest, AllNullGroupAggregatesToNull) {
  auto t = MakeTable({{"k", I64({1})}, {"v", F64({0.0}, {false})}});
  auto out = GroupBy(t, {"k"}, {{"v", AggKind::kMean, "m"}}).ValueOrDie();
  EXPECT_TRUE(out->GetColumn("m").ValueOrDie()->IsNull(0));
}

TEST(GroupByTest, RejectsStringAggregation) {
  auto t = MakeTable({{"k", I64({1})}, {"s", Str({"x"})}});
  EXPECT_FALSE(GroupBy(t, {"k"}, {{"s", AggKind::kSum, ""}}).ok());
  EXPECT_TRUE(GroupBy(t, {"k"}, {{"s", AggKind::kCount, "n"}}).ok());
  EXPECT_FALSE(GroupBy(t, {}, {{"k", AggKind::kSum, ""}}).ok());
}

TEST(GroupByTest, PartitionedMatchesSerialProperty) {
  Rng rng(7);
  col::Int64Builder kb;
  col::Float64Builder vb;
  for (int64_t i = 0; i < 20000; ++i) {
    kb.Append(rng.UniformInt(0, 97));
    vb.AppendMaybe(rng.UniformDouble(0, 100), !rng.Bernoulli(0.1));
  }
  auto t = MakeTable({{"k", kb.Finish().ValueOrDie()},
                      {"v", vb.Finish().ValueOrDie()}});
  std::vector<AggSpec> aggs = {{"v", AggKind::kSum, "s"},
                               {"v", AggKind::kMean, "m"},
                               {"v", AggKind::kCount, "n"}};
  auto serial = GroupBy(t, {"k"}, aggs).ValueOrDie();
  sim::ParallelOptions opts;
  opts.max_workers = 5;
  auto partitioned = GroupByPartitioned(t, {"k"}, aggs, opts).ValueOrDie();
  // Positional: the morsel kernel restores global first-seen group order,
  // and per-group accumulation follows global row order, so the output is
  // row-for-row identical to serial — not just equivalent up to reordering.
  test::ExpectTablesEqual(serial, partitioned);
}

/// Builds the randomized group-by property input: int64 keys (some null),
/// a float64 value column with nulls and NaNs, and a bool column.
TablePtr GroupPropertyTable(uint64_t seed, int64_t n, int64_t cardinality) {
  Rng rng(seed);
  col::Int64Builder kb;
  col::Float64Builder vb;
  col::BoolBuilder bb;
  for (int64_t i = 0; i < n; ++i) {
    kb.AppendMaybe(rng.UniformInt(0, cardinality), !rng.Bernoulli(0.02));
    double v = rng.UniformDouble(-50, 50);
    if (rng.Bernoulli(0.02)) v = std::nan("");
    vb.AppendMaybe(v, !rng.Bernoulli(0.1));
    bb.Append(rng.Bernoulli(0.5));
  }
  return MakeTable({{"k", kb.Finish().ValueOrDie()},
                    {"v", vb.Finish().ValueOrDie()},
                    {"b", bb.Finish().ValueOrDie()}});
}

std::vector<AggSpec> AllAggs() {
  return {{"v", AggKind::kSum, "s"},   {"v", AggKind::kMean, "m"},
          {"v", AggKind::kMin, "lo"},  {"v", AggKind::kMax, "hi"},
          {"v", AggKind::kStd, "sd"},  {"v", AggKind::kCount, "n"},
          {"b", AggKind::kSum, "bs"}};
}

TEST(GroupByTest, PartitionedBitIdenticalAcrossWorkerCounts) {
  auto t = GroupPropertyTable(31, 20000, 97);
  auto aggs = AllAggs();
  auto serial = GroupBy(t, {"k"}, aggs).ValueOrDie();
  for (int workers = 1; workers <= 8; ++workers) {
    sim::ParallelOptions opts;
    opts.max_workers = workers;
    auto partitioned = GroupByPartitioned(t, {"k"}, aggs, opts).ValueOrDie();
    // Every group lives in exactly one partition and its rows accumulate in
    // global row order, so even float aggregates (kStd included) are
    // bit-identical to serial for every worker count.
    test::ExpectTablesEqual(serial, partitioned);
  }
}

TEST(GroupByTest, PartitionedRealModeMatchesSerial) {
  auto t = GroupPropertyTable(32, 30000, 251);
  auto aggs = AllAggs();
  auto serial = GroupBy(t, {"k"}, aggs).ValueOrDie();
  sim::ParallelOptions opts;
  opts.max_workers = 4;
  opts.mode = sim::ExecutionMode::kReal;  // genuine pool threads
  auto partitioned = GroupByPartitioned(t, {"k"}, aggs, opts).ValueOrDie();
  test::ExpectTablesEqual(serial, partitioned);
}

TEST(GroupByTest, PartitionedForcedHashCollisions) {
  // All keys hash to one constant: every row lands in one partition and the
  // grouper resolves groups purely through the equality fallback.
  auto t = GroupPropertyTable(33, 9000, 23);
  auto aggs = AllAggs();
  ScopedForcedHashCollisions forced;
  auto serial = GroupBy(t, {"k"}, aggs).ValueOrDie();
  sim::ParallelOptions opts;
  opts.max_workers = 6;
  auto partitioned = GroupByPartitioned(t, {"k"}, aggs, opts).ValueOrDie();
  test::ExpectTablesEqual(serial, partitioned);
}

TEST(AggStateTest, MergeMatchesSerialOnIntegerData) {
  // Integer-valued doubles: the moment sums are exact, so any split of the
  // sequence must merge to the bit-identical state.
  Rng rng(44);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) {
    values.push_back(static_cast<double>(rng.UniformInt(-1000, 1000)));
  }
  AggState serial;
  for (double v : values) {
    serial.rows += 1;
    serial.Add(v);
  }
  // Skewed splits: 1 | n-1, n-1 | 1, and several random cut sets.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<size_t> cuts = {0, values.size()};
    if (trial == 0) cuts.insert(cuts.begin() + 1, 1);
    else if (trial == 1) cuts.insert(cuts.begin() + 1, values.size() - 1);
    else {
      for (int c = 0; c < trial % 5 + 1; ++c) {
        cuts.push_back(static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(values.size()))));
      }
      std::sort(cuts.begin(), cuts.end());
    }
    AggState merged;
    for (size_t s = 0; s + 1 < cuts.size(); ++s) {
      AggState part;
      for (size_t i = cuts[s]; i < cuts[s + 1]; ++i) {
        part.rows += 1;
        part.Add(values[i]);
      }
      merged.Merge(part);
    }
    EXPECT_EQ(serial.count, merged.count);
    EXPECT_EQ(serial.rows, merged.rows);
    EXPECT_EQ(serial.sum, merged.sum);
    EXPECT_EQ(serial.sum_sq, merged.sum_sq);
    EXPECT_EQ(serial.min, merged.min);
    EXPECT_EQ(serial.max, merged.max);
    for (AggKind kind : {AggKind::kSum, AggKind::kMean, AggKind::kMin,
                         AggKind::kMax, AggKind::kStd, AggKind::kCount}) {
      bool sn = false, mn = false;
      EXPECT_EQ(serial.Result(kind, &sn), merged.Result(kind, &mn));
      EXPECT_EQ(sn, mn);
    }
  }
}

TEST(AggStateTest, MergeNumericallyStableOnRealData) {
  // Arbitrary doubles: sum/sum_sq compose by addition (tolerance-checked);
  // min/max/count stay exact under any split, including empty segments.
  Rng rng(45);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.UniformDouble(-1e6, 1e6));
  AggState serial;
  for (double v : values) {
    serial.rows += 1;
    serial.Add(v);
  }
  AggState merged;
  merged.Merge(AggState());  // empty-segment merge is a no-op
  size_t i = 0;
  while (i < values.size()) {
    size_t len = static_cast<size_t>(rng.UniformInt(0, 400));
    AggState part;
    for (size_t j = i; j < std::min(values.size(), i + len); ++j) {
      part.rows += 1;
      part.Add(values[j]);
    }
    merged.Merge(part);
    i += len;
  }
  EXPECT_EQ(serial.count, merged.count);
  EXPECT_EQ(serial.min, merged.min);
  EXPECT_EQ(serial.max, merged.max);
  EXPECT_NEAR(serial.sum, merged.sum, 1e-9 * std::abs(serial.sum) + 1e-4);
  EXPECT_NEAR(serial.sum_sq, merged.sum_sq, 1e-10 * serial.sum_sq);
  bool sn = false, mn = false;
  EXPECT_NEAR(serial.Result(AggKind::kStd, &sn),
              merged.Result(AggKind::kStd, &mn), 1e-6);
  EXPECT_EQ(sn, mn);
}

TEST(JoinTest, InnerJoin) {
  auto left = MakeTable({{"k", I64({1, 2, 3})}, {"lv", Str({"a", "b", "c"})}});
  auto right = MakeTable({{"k", I64({2, 3, 4})}, {"rv", F64({20, 30, 40})}});
  auto out = HashJoin(left, right, "k", "k").ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2);
  EXPECT_EQ(out->GetColumn("lv").ValueOrDie()->GetView(0), "b");
  EXPECT_DOUBLE_EQ(out->GetColumn("rv").ValueOrDie()->float64_data()[1], 30.0);
}

TEST(JoinTest, LeftJoinEmitsNulls) {
  auto left = MakeTable({{"k", I64({1, 2})}, {"lv", I64({10, 20})}});
  auto right = MakeTable({{"k", I64({2})}, {"rv", I64({200})}});
  JoinOptions opts;
  opts.type = JoinType::kLeft;
  auto out = HashJoin(left, right, "k", "k", opts).ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2);
  EXPECT_TRUE(out->GetColumn("rv").ValueOrDie()->IsNull(0));
  EXPECT_EQ(out->GetColumn("rv").ValueOrDie()->int64_data()[1], 200);
}

TEST(JoinTest, DuplicateRightKeysReplicate) {
  auto left = MakeTable({{"k", I64({7})}, {"lv", I64({1})}});
  auto right = MakeTable({{"k", I64({7, 7})}, {"rv", I64({100, 200})}});
  auto out = HashJoin(left, right, "k", "k").ValueOrDie();
  EXPECT_EQ(out->num_rows(), 2);
}

TEST(JoinTest, NullKeysNeverMatch) {
  auto left = MakeTable({{"k", I64({1}, {false})}, {"lv", I64({1})}});
  auto right = MakeTable({{"k", I64({1}, {false})}, {"rv", I64({2})}});
  auto inner = HashJoin(left, right, "k", "k").ValueOrDie();
  EXPECT_EQ(inner->num_rows(), 0);
  JoinOptions opts;
  opts.type = JoinType::kLeft;
  auto outer = HashJoin(left, right, "k", "k", opts).ValueOrDie();
  EXPECT_EQ(outer->num_rows(), 1);
  EXPECT_TRUE(outer->GetColumn("rv").ValueOrDie()->IsNull(0));
}

TEST(JoinTest, CollidingNamesGetSuffix) {
  auto left = MakeTable({{"k", I64({1})}, {"v", I64({1})}});
  auto right = MakeTable({{"k", I64({1})}, {"v", I64({2})}});
  auto out = HashJoin(left, right, "k", "k").ValueOrDie();
  EXPECT_TRUE(out->schema()->Contains("v"));
  EXPECT_TRUE(out->schema()->Contains("v_r"));
}

TEST(JoinTest, ParallelMatchesSerialProperty) {
  Rng rng(21);
  col::Int64Builder lk, rk;
  for (int i = 0; i < 5000; ++i) lk.Append(rng.UniformInt(0, 500));
  for (int i = 0; i < 800; ++i) rk.Append(rng.UniformInt(0, 500));
  col::Int64Builder lid, rid;
  for (int i = 0; i < 5000; ++i) lid.Append(i);
  for (int i = 0; i < 800; ++i) rid.Append(i);
  auto left = MakeTable({{"k", lk.Finish().ValueOrDie()},
                         {"lid", lid.Finish().ValueOrDie()}});
  auto right = MakeTable({{"k", rk.Finish().ValueOrDie()},
                          {"rid", rid.Finish().ValueOrDie()}});
  auto serial = HashJoin(left, right, "k", "k").ValueOrDie();
  sim::ParallelOptions popts;
  popts.max_workers = 4;
  auto parallel =
      HashJoinParallel(left, right, "k", "k", {}, popts).ValueOrDie();
  test::ExpectTablesEqual(serial, parallel);  // probe order is preserved
}

TEST(DedupTest, KeepsFirstOccurrence) {
  auto t = MakeTable({{"a", I64({1, 2, 1, 3, 2})},
                      {"b", Str({"x", "y", "x", "z", "q"})}});
  auto all = DropDuplicates(t).ValueOrDie();
  EXPECT_EQ(all->num_rows(), 4);  // (2,"q") differs from (2,"y")
  auto on_a = DropDuplicates(t, {"a"}).ValueOrDie();
  EXPECT_EQ(on_a->num_rows(), 3);
  EXPECT_EQ(on_a->column(1)->GetView(1), "y");  // first occurrence kept
}

TEST(DedupTest, NullsAreEqualForDedup) {
  auto t = MakeTable({{"a", I64({1, 1}, {false, false})}});
  EXPECT_EQ(DropDuplicates(t).ValueOrDie()->num_rows(), 1);
}

TEST(UniqueTest, DistinctNonNull) {
  auto v = Str({"b", "a", "b", "c"}, {true, true, true, false});
  auto u = Unique(v).ValueOrDie();
  ASSERT_EQ(u->length(), 2);
  EXPECT_EQ(u->GetView(0), "b");
  EXPECT_EQ(u->GetView(1), "a");
}

TEST(DedupTest, ParallelMatchesSerialAcrossWorkerCounts) {
  Rng rng(61);
  col::Int64Builder ab;
  col::Int64Builder bb;
  const int64_t n = 20000;
  for (int64_t i = 0; i < n; ++i) {
    ab.AppendMaybe(rng.UniformInt(0, 60), !rng.Bernoulli(0.05));
    bb.Append(rng.UniformInt(0, 7));
  }
  auto t = MakeTable({{"a", ab.Finish().ValueOrDie()},
                      {"b", bb.Finish().ValueOrDie()}});
  auto serial = DropDuplicates(t).ValueOrDie();
  auto serial_a = DropDuplicates(t, {"a"}).ValueOrDie();
  for (int workers = 1; workers <= 8; ++workers) {
    sim::ParallelOptions opts;
    opts.max_workers = workers;
    auto parallel = DropDuplicatesParallel(t, {}, opts).ValueOrDie();
    test::ExpectTablesEqual(serial, parallel);  // same rows, same order
    auto parallel_a = DropDuplicatesParallel(t, {"a"}, opts).ValueOrDie();
    test::ExpectTablesEqual(serial_a, parallel_a);
  }
}

TEST(DedupTest, ParallelForcedHashCollisions) {
  Rng rng(62);
  col::Int64Builder ab;
  for (int64_t i = 0; i < 9000; ++i) ab.Append(rng.UniformInt(0, 25));
  auto t = MakeTable({{"a", ab.Finish().ValueOrDie()}});
  ScopedForcedHashCollisions forced;
  auto serial = DropDuplicates(t).ValueOrDie();
  sim::ParallelOptions opts;
  opts.max_workers = 4;
  auto parallel = DropDuplicatesParallel(t, {}, opts).ValueOrDie();
  test::ExpectTablesEqual(serial, parallel);
}

TEST(UniqueTest, ParallelMatchesSerial) {
  Rng rng(63);
  col::Float64Builder vb;
  const int64_t n = 20000;
  for (int64_t i = 0; i < n; ++i) {
    vb.AppendMaybe(static_cast<double>(rng.UniformInt(0, 300)) / 4.0,
                   !rng.Bernoulli(0.1));
  }
  auto v = vb.Finish().ValueOrDie();
  auto serial = Unique(v).ValueOrDie();
  for (int workers : {1, 3, 8}) {
    sim::ParallelOptions opts;
    opts.max_workers = workers;
    auto parallel = UniqueParallel(v, opts).ValueOrDie();
    ASSERT_EQ(serial->length(), parallel->length()) << "workers=" << workers;
    for (int64_t i = 0; i < serial->length(); ++i) {
      EXPECT_EQ(serial->float64_data()[i], parallel->float64_data()[i]);
    }
  }
}

TEST(JoinTest, ParallelMatchesSerialWorkerSweep) {
  Rng rng(64);
  col::Int64Builder lk, rk, lid, rid;
  const int64_t ln = 20000;
  for (int64_t i = 0; i < ln; ++i) {
    lk.AppendMaybe(rng.UniformInt(0, 900), !rng.Bernoulli(0.03));
    lid.Append(i);
  }
  for (int64_t i = 0; i < 1200; ++i) {
    rk.AppendMaybe(rng.UniformInt(0, 900), !rng.Bernoulli(0.03));
    rid.Append(i);
  }
  auto left = MakeTable({{"k", lk.Finish().ValueOrDie()},
                         {"lid", lid.Finish().ValueOrDie()}});
  auto right = MakeTable({{"k", rk.Finish().ValueOrDie()},
                          {"rid", rid.Finish().ValueOrDie()}});
  for (JoinType type : {JoinType::kInner, JoinType::kLeft}) {
    JoinOptions jopts;
    jopts.type = type;
    auto serial = HashJoin(left, right, "k", "k", jopts).ValueOrDie();
    for (int workers : {1, 2, 4, 8}) {
      sim::ParallelOptions popts;
      popts.max_workers = workers;
      auto parallel =
          HashJoinParallel(left, right, "k", "k", jopts, popts).ValueOrDie();
      test::ExpectTablesEqual(serial, parallel);
    }
  }
}

// --- dictionary-encoded (categorical) string keys -------------------------

/// The same logical table twice: `plain` carries the string key column as
/// kString, `dict` carries its DictEncode as kCategorical codes. Kernels
/// must produce value-identical results on both representations.
struct DictTables {
  TablePtr plain;
  TablePtr dict;
};

DictTables DictPropertyTables(uint64_t seed, int64_t n, int cardinality) {
  Rng rng(seed);
  col::StringBuilder sb;
  col::Float64Builder vb;
  for (int64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.04)) {
      sb.AppendNull();
    } else {
      sb.Append("team" + std::to_string(rng.UniformInt(0, cardinality)));
    }
    vb.AppendMaybe(rng.UniformDouble(-50, 50), !rng.Bernoulli(0.05));
  }
  auto s = sb.Finish().ValueOrDie();
  auto v = vb.Finish().ValueOrDie();
  auto cat = DictEncode(s).ValueOrDie();
  return {MakeTable({{"k", s}, {"v", v}}),
          MakeTable({{"k", cat}, {"v", v}})};
}

std::vector<AggSpec> DictAggs() {
  return {{"v", AggKind::kSum, "s"},  {"v", AggKind::kMean, "m"},
          {"v", AggKind::kMin, "lo"}, {"v", AggKind::kMax, "hi"},
          {"v", AggKind::kStd, "sd"}, {"v", AggKind::kCount, "n"}};
}

TEST(GroupByTest, DictKeysMatchStringKeysAcrossWorkerCounts) {
  auto tables = DictPropertyTables(71, 15000, 40);
  auto aggs = DictAggs();
  // Value-identical to the string-key group-by (code hashing routes through
  // the per-dictionary entry hashes, so grouping decisions cannot differ).
  auto from_strings = GroupBy(tables.plain, {"k"}, aggs).ValueOrDie();
  auto serial = GroupBy(tables.dict, {"k"}, aggs).ValueOrDie();
  test::ExpectTablesEqual(from_strings, serial);
  for (int workers = 1; workers <= 8; ++workers) {
    sim::ParallelOptions opts;
    opts.max_workers = workers;
    auto partitioned =
        GroupByPartitioned(tables.dict, {"k"}, aggs, opts).ValueOrDie();
    test::ExpectTablesEqual(serial, partitioned);
  }
}

TEST(GroupByTest, DictKeysForcedHashCollisionsWorkerSweep) {
  auto tables = DictPropertyTables(72, 6000, 17);
  auto aggs = DictAggs();
  ScopedForcedHashCollisions forced;
  auto serial = GroupBy(tables.dict, {"k"}, aggs).ValueOrDie();
  test::ExpectTablesEqual(GroupBy(tables.plain, {"k"}, aggs).ValueOrDie(),
                          serial);
  for (int workers = 1; workers <= 8; ++workers) {
    sim::ParallelOptions opts;
    opts.max_workers = workers;
    auto partitioned =
        GroupByPartitioned(tables.dict, {"k"}, aggs, opts).ValueOrDie();
    test::ExpectTablesEqual(serial, partitioned);
  }
}

TEST(DedupTest, DictKeysWorkerSweep) {
  auto tables = DictPropertyTables(73, 12000, 30);
  auto from_strings = DropDuplicates(tables.plain, {"k"}).ValueOrDie();
  auto serial = DropDuplicates(tables.dict, {"k"}).ValueOrDie();
  ASSERT_EQ(from_strings->num_rows(), serial->num_rows());
  for (int workers = 1; workers <= 8; ++workers) {
    sim::ParallelOptions opts;
    opts.max_workers = workers;
    auto parallel =
        DropDuplicatesParallel(tables.dict, {"k"}, opts).ValueOrDie();
    test::ExpectTablesEqual(serial, parallel);
  }
}

TEST(DedupTest, DictKeysForcedHashCollisions) {
  auto tables = DictPropertyTables(74, 5000, 12);
  ScopedForcedHashCollisions forced;
  auto serial = DropDuplicates(tables.dict, {"k"}).ValueOrDie();
  for (int workers : {1, 4, 8}) {
    sim::ParallelOptions opts;
    opts.max_workers = workers;
    auto parallel =
        DropDuplicatesParallel(tables.dict, {"k"}, opts).ValueOrDie();
    test::ExpectTablesEqual(serial, parallel);
  }
}

TEST(JoinTest, DictKeysMatchStringKeysWorkerSweep) {
  // Left and right get independent DictEncode dictionaries (different
  // first-appearance orders), so the cross-dictionary equality path is
  // exercised, not just same-dict code equality.
  auto left_t = DictPropertyTables(75, 8000, 50);
  Rng rng(76);
  col::StringBuilder rk;
  col::Int64Builder rid;
  for (int64_t i = 0; i < 400; ++i) {
    if (rng.Bernoulli(0.03)) {
      rk.AppendNull();
    } else {
      rk.Append("team" + std::to_string(rng.UniformInt(0, 50)));
    }
    rid.Append(i);
  }
  auto rks = rk.Finish().ValueOrDie();
  auto right_plain = MakeTable(
      {{"k", rks}, {"rid", rid.Finish().ValueOrDie()}});
  auto right_dict =
      MakeTable({{"k", DictEncode(rks).ValueOrDie()},
                 {"rid", right_plain->GetColumn("rid").ValueOrDie()}});
  for (JoinType type : {JoinType::kInner, JoinType::kLeft}) {
    JoinOptions jopts;
    jopts.type = type;
    auto from_strings =
        HashJoin(left_t.plain, right_plain, "k", "k", jopts).ValueOrDie();
    auto serial =
        HashJoin(left_t.dict, right_dict, "k", "k", jopts).ValueOrDie();
    test::ExpectTablesEqual(from_strings, serial);
    for (int workers : {1, 3, 8}) {
      sim::ParallelOptions popts;
      popts.max_workers = workers;
      auto parallel =
          HashJoinParallel(left_t.dict, right_dict, "k", "k", jopts, popts)
              .ValueOrDie();
      test::ExpectTablesEqual(serial, parallel);
    }
  }
}

TEST(SortTest, DictKeysMatchStringKeys) {
  // The rank cache must order codes exactly like the decoded strings, with
  // stable tie-breaking over the payload column preserved.
  auto tables = DictPropertyTables(77, 10000, 35);
  for (bool ascending : {true, false}) {
    auto from_strings =
        SortTable(tables.plain, {{"k", ascending}}).ValueOrDie();
    auto from_codes = SortTable(tables.dict, {{"k", ascending}}).ValueOrDie();
    test::ExpectTablesEqual(from_strings, from_codes);
  }
  auto multi_strings =
      SortTable(tables.plain, {{"k", true}, {"v", false}}).ValueOrDie();
  auto multi_codes =
      SortTable(tables.dict, {{"k", true}, {"v", false}}).ValueOrDie();
  test::ExpectTablesEqual(multi_strings, multi_codes);
}

}  // namespace
}  // namespace bento::kern
