#include <gtest/gtest.h>

#include <cstdio>

#include "engines/lazy_engine.h"
#include "engines/spark.h"
#include "engines/streaming_ops.h"
#include "frame/exec.h"
#include "kernels/encode.h"
#include "kernels/sort.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace bento::eng {
namespace {

using col::Scalar;
using col::TablePtr;
using col::TypeId;
using frame::Op;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

TablePtr RandomTable(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  col::Int64Builder k;
  col::Float64Builder v;
  col::StringBuilder s;
  for (int64_t i = 0; i < rows; ++i) {
    k.Append(rng.UniformInt(0, 25));
    v.AppendMaybe(rng.UniformDouble(0, 10), !rng.Bernoulli(0.2));
    s.Append(std::string(1, static_cast<char>('a' + rng.Uniform(5))));
  }
  return MakeTable({{"k", k.Finish().ValueOrDie()},
                    {"v", v.Finish().ValueOrDie()},
                    {"s", s.Finish().ValueOrDie()}});
}

TEST(TableChunkStreamTest, TailChunkCoversEveryRow) {
  auto t = RandomTable(10, 21);
  for (int64_t chunk_rows : {3, 5, 7, 9}) {
    SCOPED_TRACE(chunk_rows);
    TableChunkStream stream(t, chunk_rows);
    std::vector<TablePtr> chunks;
    int64_t rows = 0;
    while (true) {
      auto chunk = stream.Next().ValueOrDie();
      if (chunk == nullptr) break;
      EXPECT_LE(chunk->num_rows(), chunk_rows);
      rows += chunk->num_rows();
      chunks.push_back(chunk);
    }
    EXPECT_EQ(rows, 10);
    test::ExpectTablesEqual(t, col::ConcatTables(chunks).ValueOrDie());
  }
}

TEST(TableChunkStreamTest, WholeTableChunkIsPassThrough) {
  auto t = RandomTable(10, 22);
  for (int64_t chunk_rows : {int64_t{10}, int64_t{11}, int64_t{1} << 40}) {
    TableChunkStream stream(t, chunk_rows);
    // Covering chunk sizes hand back the table itself (no slice copy)...
    EXPECT_EQ(stream.Next().ValueOrDie().get(), t.get());
    // ...exactly once.
    EXPECT_EQ(stream.Next().ValueOrDie(), nullptr);
    EXPECT_EQ(stream.Next().ValueOrDie(), nullptr);
  }
}

TEST(TableChunkStreamTest, EmptyTableYieldsOneTypedChunk) {
  auto t = RandomTable(5, 23)->Slice(0, 0).ValueOrDie();
  TableChunkStream stream(t, 100);
  auto chunk = stream.Next().ValueOrDie();
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(chunk->num_rows(), 0);
  EXPECT_EQ(chunk->schema()->names(), t->schema()->names());
  EXPECT_EQ(stream.Next().ValueOrDie(), nullptr);
}

TEST(ConcatReleasingTest, MatchesPlainConcat) {
  auto t = RandomTable(5000, 1);
  std::vector<TablePtr> a, b;
  for (int64_t off = 0; off < 5000; off += 700) {
    int64_t len = std::min<int64_t>(700, 5000 - off);
    a.push_back(t->Slice(off, len).ValueOrDie());
    b.push_back(t->Slice(off, len).ValueOrDie());
  }
  auto plain = col::ConcatTables(a).ValueOrDie();
  auto releasing = col::ConcatTablesReleasing(&b).ValueOrDie();
  EXPECT_TRUE(b.empty());
  test::ExpectTablesEqual(plain, releasing);
}

TEST(ConcatReleasingTest, SingleTablePassThrough) {
  auto t = RandomTable(10, 2);
  std::vector<TablePtr> one = {t};
  auto out = col::ConcatTablesReleasing(&one).ValueOrDie();
  EXPECT_EQ(out.get(), t.get());
  std::vector<TablePtr> none;
  EXPECT_FALSE(col::ConcatTablesReleasing(&none).ok());
}

TEST(SpillTest, SpillStreamRoundTrip) {
  auto t = RandomTable(3000, 3);
  TableChunkStream stream(t, 500);
  auto path = SpillStreamToFile(&stream).ValueOrDie();
  auto back = io::BcfReader::Open(path).ValueOrDie()->ReadAll().ValueOrDie();
  test::ExpectTablesEqual(t, back);
  std::remove(path.c_str());
}

TEST(SpillTest, DistinctValuesFirstSeenOrder) {
  auto t = MakeTable({{"c", Str({"b", "a", "b", "c", "a"},
                                {true, true, true, true, false})}});
  TableChunkStream stream(t, 2);
  auto distinct = StreamDistinctValues(&stream, "c").ValueOrDie();
  EXPECT_EQ(distinct, (std::vector<std::string>{"b", "a", "c"}));
}

TEST(SpillTest, StreamColumnMean) {
  auto t = MakeTable({{"v", F64({1.0, 2.0, 0.0, 3.0},
                                {true, true, false, true})}});
  TableChunkStream stream(t, 3);
  EXPECT_DOUBLE_EQ(StreamColumnMean(&stream, "v").ValueOrDie(), 2.0);
}

TEST(ExternalSortToFileTest, MatchesInMemorySort) {
  auto t = RandomTable(4000, 7);
  std::vector<kern::SortKey> keys = {{"k", true}, {"v", true}};
  auto expected = kern::SortTable(t, keys).ValueOrDie();
  TableChunkStream stream(t, 333);
  auto path =
      ExternalSortToFile(&stream, keys, {}, /*run_rows=*/600).ValueOrDie();
  auto back = io::BcfReader::Open(path).ValueOrDie()->ReadAll().ValueOrDie();
  test::ExpectTablesEqual(expected, back);
  std::remove(path.c_str());
}

TEST(MappedStreamTest, AppliesPerChunk) {
  auto t = RandomTable(100, 9);
  auto inner = std::make_unique<TableChunkStream>(t, 30);
  MappedStream mapped(std::move(inner), [](TablePtr chunk) {
    return chunk->DropColumns({"s"});
  });
  int64_t rows = 0;
  while (true) {
    auto chunk = mapped.Next().ValueOrDie();
    if (chunk == nullptr) break;
    EXPECT_EQ(chunk->num_columns(), 2);
    rows += chunk->num_rows();
  }
  EXPECT_EQ(rows, 100);
}

TEST(EncodeFixedTest, GetDummiesWithCategoriesMatchesDiscovery) {
  auto t = MakeTable({{"c", Str({"x", "y", "x", "z"})}});
  auto discovered = kern::GetDummies(t, "c").ValueOrDie();
  auto fixed =
      kern::GetDummiesWithCategories(t, "c", {"x", "y", "z"}).ValueOrDie();
  test::ExpectTablesEqual(discovered, fixed);
  // A fixed list that misses a value leaves its rows all-zero.
  auto narrow = kern::GetDummiesWithCategories(t, "c", {"x"}).ValueOrDie();
  EXPECT_EQ(narrow->GetColumn("c_x").ValueOrDie()->int64_data()[3], 0);
}

TEST(EncodeFixedTest, CatCodesWithDict) {
  auto v = Str({"b", "a", "?"}, {true, true, true});
  auto codes = kern::CatCodesWithDict(v, {"a", "b"}).ValueOrDie();
  EXPECT_EQ(codes->int64_data()[0], 1);
  EXPECT_EQ(codes->int64_data()[1], 0);
  EXPECT_TRUE(codes->IsNull(2));  // unseen under a fixed dictionary
}

/// The two-pass streaming breakers must produce the same frames as the
/// in-memory path: run the same plan with spark under a tight budget
/// (forces streaming) and without (in-memory) and compare.
TEST(TwoPassBreakersTest, TightMemoryMatchesUnbounded) {
  auto t = RandomTable(20000, 11);

  std::vector<Op> plan = {
      Op::Query("k >= 1"),
      Op::GetDummies("s"),
      Op::FillNaMean("v"),
      Op::SortValues({{"k", true}, {"v", true}}),
      Op::Round("v", 3),
  };

  SparkSqlEngine engine;
  LazySource source;
  source.kind = LazySource::Kind::kTable;
  source.table = t;

  TablePtr unbounded = engine.Execute(source, plan).ValueOrDie();

  // Budget ~1.7x the OUTPUT (one-hot widens the frame): enough for the
  // result plus streaming chunks, well below the >2.3x that the in-memory
  // path (drain + sort input/indices/output) needs.
  sim::MachineSpec tight{"tight", 4,
                         static_cast<uint64_t>(unbounded->ByteSize() * 17 / 10),
                         std::nullopt};
  // The source table lives outside the session; only working memory counts.
  sim::Session session(tight);
  auto streamed = engine.Execute(source, plan);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  test::ExpectTablesEqual(unbounded, streamed.ValueOrDie());
}

TEST(TwoPassBreakersTest, MergeStreamsToo) {
  auto left = RandomTable(8000, 13);
  auto right = MakeTable({{"k", I64({0, 1, 2, 3, 4})},
                          {"label", Str({"a", "b", "c", "d", "e"})}});
  SparkSqlEngine engine;
  auto right_frame = engine.FromTable(right).ValueOrDie();

  std::vector<Op> plan = {
      Op::Merge(right_frame, "k", "k", kern::JoinType::kLeft),
      Op::StrLower("label"),
  };
  LazySource source;
  source.kind = LazySource::Kind::kTable;
  source.table = left;

  TablePtr unbounded = engine.Execute(source, plan).ValueOrDie();
  sim::MachineSpec tight{"tight", 4,
                         static_cast<uint64_t>(left->ByteSize() * 2),
                         std::nullopt};
  sim::Session session(tight);
  auto streamed = engine.Execute(source, plan);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  test::ExpectTablesEqual(unbounded, streamed.ValueOrDie());
}

TEST(StreamingActionsTest, MatchMaterializedActions) {
  auto t = RandomTable(10000, 17);
  SparkSqlEngine engine;
  LazySource source;
  source.kind = LazySource::Kind::kTable;
  source.table = t;
  std::vector<Op> plan = {Op::Query("k > 2")};

  // Reference: materialize then act.
  auto table = engine.Execute(source, plan).ValueOrDie();
  auto expected_isna =
      frame::ExecAction(table, Op::IsNa(), engine.ExecutionPolicy())
          .ValueOrDie();
  auto expected_search = frame::ExecAction(t, Op::SearchPattern("s", "a"),
                                           engine.ExecutionPolicy())
                             .ValueOrDie();

  // Streaming: via ExecuteAction.
  auto isna = engine.ExecuteAction(source, plan, Op::IsNa()).ValueOrDie();
  EXPECT_EQ(isna.counts, expected_isna.counts);
  auto search =
      engine.ExecuteAction(source, {}, Op::SearchPattern("s", "a")).ValueOrDie();
  EXPECT_EQ(search.count, expected_search.count);
  auto cols = engine.ExecuteAction(source, plan, Op::GetColumns()).ValueOrDie();
  EXPECT_EQ(cols.names, t->schema()->names());
}

TEST(ObjectStringModelTest, PandasChargesBoxingOverhead) {
  // 1000 rows x 1 string column x 57 bytes must appear in the pool while the
  // pandas frame is alive, and vanish when it dies.
  std::vector<std::string> values(1000, "abc");
  auto t = MakeTable({{"s", Str(values)}});

  sim::MemoryPool pool("measure", 0);
  uint64_t with_frame = 0;
  {
    sim::MemoryScope scope(&pool);
    auto engine = frame::CreateEngine("pandas").ValueOrDie();
    auto frame = engine->FromTable(t).ValueOrDie();
    with_frame = pool.bytes_allocated();
  }
  EXPECT_GE(with_frame, 1000u * 57u);
  EXPECT_EQ(pool.bytes_allocated(), 0u);

  // An Arrow-backed engine charges nothing extra.
  sim::MemoryPool pool2("measure2", 0);
  {
    sim::MemoryScope scope(&pool2);
    auto engine = frame::CreateEngine("polars").ValueOrDie();
    auto frame = engine->FromTable(t).ValueOrDie();
    EXPECT_LT(pool2.bytes_allocated(), 1000u * 57u);
  }
}

TEST(ScaledBatchRowsTest, ScalesWithCostScale) {
  // Default BENTO_SCALE in tests is 0.001 -> full-scale 128k shrinks to the
  // clamp floor.
  EXPECT_EQ(ScaledBatchRows(128 * 1024), 2048);
  EXPECT_EQ(ScaledBatchRows(128 * 1024, 100), 131);
}

}  // namespace
}  // namespace bento::eng
