// bento::obs unit + integration suite: metrics aggregation under
// contention, golden Chrome-trace export on a fake clock, virtual-time
// spans, zero-allocation disabled paths, span collection across real pool
// workers, the memory-timeline counter track, a full function-core runner
// trace validated against the schema in tests/trace_schema.h, histogram
// quantile properties, the fake-RAPL energy fixture, and the per-span
// resource sampler with its perf-unavailable fallback.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bento/pipeline.h"
#include "bento/runner.h"
#include "obs/energy.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "sim/machine.h"
#include "sim/parallel.h"
#include "sim/thread_pool.h"
#include "tests/test_util.h"
#include "tests/trace_schema.h"

// Process-wide allocation counter backing the disabled-path test: obs
// instrumentation must not allocate while tracing is off.
static std::atomic<uint64_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bento::obs {
namespace {

double g_fake_now = 0.0;
double FakeClock() { return g_fake_now; }

/// Tracing state is process-global; every test leaves it stopped.
class TraceTest : public ::testing::Test {
 protected:
  ~TraceTest() override {
    StopTracing();
    testing::SetClockForTest(nullptr);
  }
};

int CountEvents(const JsonValue& doc, const std::string& ph,
                const std::string& name = "") {
  int n = 0;
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") != ph) continue;
    if (!name.empty() && e.GetString("name") != name) continue;
    ++n;
  }
  return n;
}

const JsonValue* FindSpan(const JsonValue& doc, const std::string& name) {
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") == "X" && e.GetString("name") == name) {
      return &events.at(i);
    }
  }
  return nullptr;
}

TEST(MetricsTest, CounterGaugeAndRegistry) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.counter("obs_test.basic");
  // Find-or-create: the address is stable, so hot sites may cache it.
  ASSERT_EQ(c, reg.counter("obs_test.basic"));
  c->Reset();
  c->Add(41);
  c->Increment();
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(reg.CounterValue("obs_test.basic"), 42u);

  Gauge* g = reg.gauge("obs_test.hwm");
  g->Reset();
  g->UpdateMax(10);
  g->UpdateMax(7);  // lower: no change
  EXPECT_EQ(g->value(), 10);
  g->Set(3);
  EXPECT_EQ(g->value(), 3);

  c->Add(0);
  JsonValue snapshot = reg.ToJson();
  EXPECT_EQ(snapshot.Get("counters").GetInt("obs_test.basic"), 42);
  EXPECT_EQ(snapshot.Get("gauges").GetInt("obs_test.hwm"), 3);
}

TEST(MetricsTest, ConcurrentCounterAggregation) {
  Counter* c = MetricsRegistry::Global().counter("obs_test.concurrent");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      // Each thread resolves the counter itself: lookup must be
      // thread-safe and return the same instrument.
      Counter* mine = MetricsRegistry::Global().counter("obs_test.concurrent");
      for (int i = 0; i < kAdds; ++i) mine->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kAdds);
}

TEST_F(TraceTest, GoldenNestedSpansOnFakeClock) {
  g_fake_now = 100.0;
  testing::SetClockForTest(&FakeClock);
  StartTracing();
  {
    TraceSpan outer(Category::kStage, "stage.EDA");
    g_fake_now = 100.001;  // 1000us in
    {
      TraceSpan inner(Category::kKernel, "groupby");
      g_fake_now = 100.0015;  // inner: 500us
    }
    g_fake_now = 100.002;  // outer: 2000us
  }
  StopTracing();
  JsonValue doc = TraceToJson();

  const JsonValue* outer = FindSpan(doc, "stage.EDA");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->GetString("cat"), "stage");
  EXPECT_DOUBLE_EQ(outer->GetNumber("ts"), 0.0);
  EXPECT_NEAR(outer->GetNumber("dur"), 2000.0, 1e-6);
  EXPECT_NEAR(outer->Get("args").GetNumber("vdur_us"), 2000.0, 1e-6);

  const JsonValue* inner = FindSpan(doc, "groupby");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->GetString("cat"), "kernel");
  EXPECT_NEAR(inner->GetNumber("ts"), 1000.0, 1e-6);
  EXPECT_NEAR(inner->GetNumber("dur"), 500.0, 1e-6);

  // The golden document is schema-valid and the nesting is visible to the
  // same validator CI runs on real traces.
  EXPECT_OK(test::ValidateTraceDocument(doc, nullptr));
}

TEST_F(TraceTest, VirtualDurationSubtractsSessionCredits) {
  sim::Session session(sim::MachineSpec::Laptop());
  g_fake_now = 10.0;
  testing::SetClockForTest(&FakeClock);
  StartTracing();
  {
    TraceSpan span(Category::kKernel, "credited");
    g_fake_now = 10.004;                 // 4000us of wall time
    session.AddTimeCredit(0.003);        // 3000us overlapped away
  }
  {
    TraceSpan span(Category::kKernel, "over_credited");
    g_fake_now = 10.005;                 // 1000us of wall time
    session.AddTimeCredit(0.002);        // more credit than wall: clamp to 0
  }
  StopTracing();
  JsonValue doc = TraceToJson();

  const JsonValue* credited = FindSpan(doc, "credited");
  ASSERT_NE(credited, nullptr);
  EXPECT_NEAR(credited->GetNumber("dur"), 4000.0, 1e-6);
  EXPECT_NEAR(credited->Get("args").GetNumber("vdur_us"), 1000.0, 1e-6);

  const JsonValue* clamped = FindSpan(doc, "over_credited");
  ASSERT_NE(clamped, nullptr);
  EXPECT_DOUBLE_EQ(clamped->Get("args").GetNumber("vdur_us"), 0.0);
}

TEST_F(TraceTest, CounterTrackGolden) {
  g_fake_now = 5.0;
  testing::SetClockForTest(&FakeClock);
  StartTracing();
  EmitCounter("mem:test", 128.0);
  g_fake_now = 5.001;
  EmitCounter("mem:test", 64.0);
  StopTracing();
  JsonValue doc = TraceToJson();

  ASSERT_EQ(CountEvents(doc, "C", "mem:test"), 2);
  const JsonValue& events = doc.Get("traceEvents");
  std::vector<std::pair<double, double>> samples;  // (ts, value)
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") == "C" && e.GetString("name") == "mem:test") {
      samples.emplace_back(e.GetNumber("ts"), e.Get("args").GetNumber("value"));
    }
  }
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].first, 0.0);
  EXPECT_DOUBLE_EQ(samples[0].second, 128.0);
  EXPECT_NEAR(samples[1].first, 1000.0, 1e-6);
  EXPECT_DOUBLE_EQ(samples[1].second, 64.0);
}

TEST_F(TraceTest, SpansCollectedAcrossPoolWorkers) {
  StartTracing();
  sim::ThreadPool pool(4);
  std::atomic<int> ran{0};
  Status st = pool.ParallelFor(
      64,
      [&](int64_t) {
        BENTO_TRACE_SPAN(kKernel, "worker_body");
        ran.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      4, nullptr);
  ASSERT_OK(st);
  EXPECT_EQ(ran.load(), 64);
  StopTracing();
  JsonValue doc = TraceToJson();

  // Every body span arrived in the collector regardless of which worker
  // (or the caller, who participates) ran it.
  EXPECT_EQ(CountEvents(doc, "X", "worker_body"), 64);
  // Workers named their tracks; the names survive into the export.
  bool saw_worker_name = false;
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") == "M" &&
        e.Get("args").GetString("name").rfind("pool-worker-", 0) == 0) {
      saw_worker_name = true;
    }
  }
  EXPECT_TRUE(saw_worker_name);
  EXPECT_OK(test::ValidateTraceDocument(doc, nullptr));
}

TEST_F(TraceTest, DisabledPathAllocatesNothingAndRecordsNothing) {
  StopTracing();
  ASSERT_FALSE(TracingEnabled());
  Counter* counter = MetricsRegistry::Global().counter("obs_test.disabled");
  const int before_events = CountEvents(TraceToJson(), "X");

  const uint64_t allocs_before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    BENTO_TRACE_SPAN(kKernel, "never_recorded");
    BENTO_TRACE_SPAN_DYN(kEngine, std::string("expensive_") + "name");
    EmitCounter("mem:never", 1.0);
    counter->Increment();  // metrics stay live when tracing is off
  }
  const uint64_t allocs_after = g_allocations.load();

  EXPECT_EQ(allocs_after, allocs_before);
  EXPECT_EQ(CountEvents(TraceToJson(), "X"), before_events);
  EXPECT_GE(counter->value(), 1000u);
}

TEST_F(TraceTest, TraceEnvScopeOwnershipAndNesting) {
  const std::string path =
      "/tmp/bento_obs_scope_" + std::to_string(::getpid()) + ".json";
  {
    TraceEnvScope outer(path);
    ASSERT_TRUE(outer.owns());
    EXPECT_TRUE(TracingEnabled());
    {
      // A nested scope must not steal the trace or truncate the file.
      TraceEnvScope inner("/tmp/should_not_be_written.json");
      EXPECT_FALSE(inner.owns());
      BENTO_TRACE_SPAN(kKernel, "inside_nested_scope");
    }
    EXPECT_TRUE(TracingEnabled());
  }
  EXPECT_FALSE(TracingEnabled());

  auto doc = ReadJsonFile(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(CountEvents(doc.ValueOrDie(), "X", "inside_nested_scope"), 1);
  EXPECT_OK(test::ValidateTraceDocument(doc.ValueOrDie(), nullptr));
  std::remove(path.c_str());

  // Empty path and no BENTO_TRACE: completely inert.
  ::unsetenv("BENTO_TRACE");
  TraceEnvScope inert;
  EXPECT_FALSE(inert.owns());
  EXPECT_FALSE(TracingEnabled());
}

TEST_F(TraceTest, MemoryPoolEmitsTimelineAndMetrics) {
  sim::Session session(sim::MachineSpec::Laptop());
  StartTracing();
  ASSERT_OK(session.host_pool()->Reserve(1 << 20));
  session.host_pool()->Release(1 << 20);
  StopTracing();
  JsonValue doc = TraceToJson();

  // One sample at 1 MiB, one back at the starting level, on a "mem:" track.
  double max_seen = -1.0;
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") == "C" && e.GetString("name").rfind("mem:", 0) == 0) {
      max_seen = std::max(max_seen, e.Get("args").GetNumber("value"));
    }
  }
  EXPECT_GE(max_seen, static_cast<double>(1 << 20));

  // The registry tracked the traffic and the high-water mark too.
  const std::string pool_name = "host:" + session.spec().name;
  EXPECT_GE(MetricsRegistry::Global().CounterValue("mem." + pool_name +
                                                   ".reserved_bytes"),
            static_cast<uint64_t>(1 << 20));
  EXPECT_GE(MetricsRegistry::Global().GaugeValue("mem." + pool_name +
                                                 ".peak_bytes"),
            static_cast<int64_t>(1 << 20));
}

/// The acceptance-shaped integration test: a function-core Loan run with a
/// trace path produces a Chrome trace with ≥1 span per executed
/// preparator, stage ⊃ preparator ⊃ engine/kernel nesting, and a memory
/// counter track — checked by the same validator the CI trace job uses.
TEST_F(TraceTest, FunctionCoreLoanRunEmitsValidPipelineTrace) {
  const std::string dir =
      "/tmp/bento_obs_runner_" + std::to_string(::getpid());
  const std::string trace_path = dir + "/loan_trace.json";
  {
    run::Runner runner(dir, 0.001);
    auto pipeline = run::PipelineFor("loan").ValueOrDie();
    run::RunConfig config;
    config.engine_id = "pandas";
    config.mode = run::RunMode::kFunctionCore;
    config.trace_path = trace_path;
    auto report = runner.Run(config, pipeline, "loan");
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report.ValueOrDie().status.ok())
        << report.ValueOrDie().status.ToString();
    EXPECT_FALSE(TracingEnabled());  // scope closed with the run

    auto doc = ReadJsonFile(trace_path);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_OK(test::ValidatePipelineShape(
        doc.ValueOrDie(),
        static_cast<int>(report.ValueOrDie().ops.size())));

    // Function-core mode also filled the per-op peak column.
    bool any_peak = false;
    for (const auto& op : report.ValueOrDie().ops) {
      if (op.peak_bytes > 0) any_peak = true;
    }
    EXPECT_TRUE(any_peak);
    EXPECT_GT(report.ValueOrDie().peak_host_bytes, 0u);
  }
  std::string cmd = "rm -rf " + dir;
  (void)!system(cmd.c_str());
}

// --- histogram ---

TEST(HistogramTest, QuantilePropertyAgainstSortedReference) {
  // Deterministic long-tailed samples: an LCG driving an exponential-ish
  // spread across six decades, the span-duration regime.
  Histogram hist;
  std::vector<double> values;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double u = static_cast<double>(state >> 11) / 9007199254740992.0;
    const double v = std::pow(10.0, u * 6.0 - 1.0);  // [0.1, 1e5)
    values.push_back(v);
    hist.Record(v);
  }
  ASSERT_EQ(hist.count(), values.size());
  std::sort(values.begin(), values.end());

  const double relative_bound = std::pow(2.0, 1.0 / 8.0);
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}) {
    const size_t target = static_cast<size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double truth = values[std::max<size_t>(target, 1) - 1];
    const double estimate = hist.Quantile(q);
    // The documented guarantee: t <= e <= t * 2^(1/8).
    EXPECT_GE(estimate, truth) << "q=" << q;
    EXPECT_LE(estimate, truth * relative_bound) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(hist.min(), values.front());
  EXPECT_DOUBLE_EQ(hist.max(), values.back());
}

TEST(HistogramTest, EdgesUnderflowOverflowAndReset) {
  Histogram hist;
  hist.Record(0.0);     // underflow bucket (not positive)
  hist.Record(-5.0);    // underflow
  hist.Record(1e300);   // overflow bucket
  hist.Record(42.0);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kBuckets - 1);
  // A mid-range value maps to a bucket whose edge bounds it from above
  // within one sub-bucket ratio.
  const int idx = Histogram::BucketIndex(42.0);
  EXPECT_GE(Histogram::BucketUpperEdge(idx), 42.0);
  EXPECT_LE(Histogram::BucketUpperEdge(idx), 42.0 * std::pow(2.0, 0.125));
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    a.Record(i);
    combined.Record(i);
  }
  for (int i = 101; i <= 200; ++i) {
    b.Record(i);
    combined.Record(i);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), combined.Quantile(q));
  }
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kRecords = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kRecords; ++i) {
        hist.Record(static_cast<double>(t * kRecords + i + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads) * kRecords);
  const double n = static_cast<double>(kThreads) * kRecords;
  EXPECT_DOUBLE_EQ(hist.sum(), n * (n + 1) / 2);
}

TEST(MetricsTest, PrometheusDumpShapes) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.counter("prom.test_counter")->Reset();
  reg.counter("prom.test_counter")->Add(7);
  reg.gauge("prom.test_gauge")->Set(-3);
  Histogram* h = reg.histogram("prom.test_hist");
  h->Reset();
  for (int i = 1; i <= 100; ++i) h->Record(i);

  const std::string text = reg.DumpPrometheusText();
  EXPECT_NE(text.find("# TYPE bento_prom_test_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("bento_prom_test_counter 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bento_prom_test_gauge gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("bento_prom_test_gauge -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bento_prom_test_hist histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("bento_prom_test_hist_count 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 100\n"), std::string::npos);
  // Dots sanitize to underscores; nothing leaks the raw name.
  EXPECT_EQ(text.find("prom.test"), std::string::npos);
}

TEST(MetricsTest, SnapshotKeepsLargeCountersPositive) {
  Counter* c = MetricsRegistry::Global().counter("obs_test.huge");
  c->Reset();
  c->Add(1ull << 63);  // past int64 range
  JsonValue snapshot = MetricsRegistry::Global().ToJson();
  EXPECT_GT(snapshot.Get("counters").GetNumber("obs_test.huge"), 0.0);
  c->Reset();
}

// --- energy meter ---

/// Writes a fake RAPL tree under a temp dir and points an EnergyMeter at
/// it: package domains with controllable energy_uj counters, exercising
/// wrap-around and multi-package summation without hardware access.
class FakeRaplFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = "/tmp/bento_fake_rapl_" + std::to_string(::getpid());
    std::string cmd = "rm -rf " + root_;
    (void)!system(cmd.c_str());
    ::mkdir(root_.c_str(), 0755);
  }
  void TearDown() override {
    std::string cmd = "rm -rf " + root_;
    (void)!system(cmd.c_str());
  }

  void AddPackage(int n, uint64_t energy_uj, uint64_t max_range_uj) {
    const std::string dir = root_ + "/intel-rapl:" + std::to_string(n);
    ::mkdir(dir.c_str(), 0755);
    WriteValue(dir + "/energy_uj", energy_uj);
    if (max_range_uj > 0) {
      WriteValue(dir + "/max_energy_range_uj", max_range_uj);
    }
  }

  /// Subdomains (core/uncore) must be skipped — counting them would
  /// double-bill the package.
  void AddSubdomain(int pkg, int sub, uint64_t energy_uj) {
    const std::string dir = root_ + "/intel-rapl:" + std::to_string(pkg) +
                            ":" + std::to_string(sub);
    ::mkdir(dir.c_str(), 0755);
    WriteValue(dir + "/energy_uj", energy_uj);
  }

  void SetEnergy(int n, uint64_t energy_uj) {
    WriteValue(root_ + "/intel-rapl:" + std::to_string(n) + "/energy_uj",
               energy_uj);
  }

  std::string root_;

 private:
  static void WriteValue(const std::string& path, uint64_t v) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << path;
    std::fprintf(f, "%llu\n", static_cast<unsigned long long>(v));
    std::fclose(f);
  }
};

TEST_F(FakeRaplFixture, MultiPackageSumAndDeltas) {
  AddPackage(0, 1'000'000, 262'143'328'850);
  AddPackage(1, 5'000'000, 262'143'328'850);
  AddSubdomain(0, 0, 999'999'999);  // must not be scanned
  EnergyMeter meter(root_);
  ASSERT_TRUE(meter.has_rapl());
  EXPECT_EQ(meter.package_count(), 2);
  EXPECT_STREQ(meter.source(), "rapl");

  ASSERT_OK(meter.Begin());
  EXPECT_DOUBLE_EQ(meter.JoulesSince(), 0.0);
  SetEnergy(0, 1'500'000);  // +0.5 J
  SetEnergy(1, 5'250'000);  // +0.25 J
  EXPECT_NEAR(meter.JoulesSince(), 0.75, 1e-9);
  // Deltas accumulate across reads, not reset by reading.
  SetEnergy(0, 1'600'000);  // +0.1 J more
  EXPECT_NEAR(meter.JoulesSince(), 0.85, 1e-9);
}

TEST_F(FakeRaplFixture, CounterWrapAroundIsCorrected) {
  constexpr uint64_t kRange = 10'000'000;  // 10 J wrap range
  AddPackage(0, 9'900'000, kRange);
  EnergyMeter meter(root_);
  ASSERT_TRUE(meter.has_rapl());
  ASSERT_OK(meter.Begin());
  // Counter wraps: 9.9 J -> 0.3 J. True consumption = (10 - 9.9) + 0.3.
  SetEnergy(0, 300'000);
  EXPECT_NEAR(meter.JoulesSince(), 0.4, 1e-9);
}

TEST_F(FakeRaplFixture, WrapWithoutRangeFileTreatsRestartFromZero) {
  AddPackage(0, 7'000'000, 0);  // no max_energy_range_uj
  EnergyMeter meter(root_);
  ASSERT_OK(meter.Begin());
  SetEnergy(0, 2'000'000);  // went backwards with no wrap info
  EXPECT_NEAR(meter.JoulesSince(), 2.0, 1e-9);
}

TEST(EnergyMeterTest, EmptyRootFallsBackToModel) {
  EnergyMeter meter("/nonexistent/powercap/path");
  EXPECT_FALSE(meter.has_rapl());
  EXPECT_STREQ(meter.source(), "model");
  EXPECT_EQ(meter.package_count(), 0);
  // Begin/JoulesSince are clean no-ops in model mode.
  ASSERT_OK(meter.Begin());
  EXPECT_DOUBLE_EQ(meter.JoulesSince(), 0.0);
  // The cycles×watts model: joules = cycles / hz * watts.
  EXPECT_NEAR(meter.ModelJoules(meter.model_hz()), meter.model_watts(),
              1e-12);
  EXPECT_GT(meter.model_watts(), 0.0);
  EXPECT_GT(meter.model_hz(), 0.0);
}

// --- resource sampler ---

TEST(ResourceSamplerTest, InstallIsCleanNoOpWhenPerfUnavailable) {
  // BENTO_PERF=off forces the perf-unavailable path deterministically; the
  // sampler must fall back to the thread CPU clock and report OK. Install
  // state is thread-local, so a fresh thread sees the env.
  ::setenv("BENTO_PERF", "off", 1);
  Status install_status = Status::OK();
  SamplerBackend backend = SamplerBackend::kNone;
  ResourceUsage usage;
  std::thread probe([&] {
    install_status = InstallThreadSampler();
    backend = ThreadSamplerBackend();
    // Burn some CPU so the fallback clock registers nonzero time.
    volatile double sink = 0;
    for (int i = 0; i < 2'000'000; ++i) sink += i * 0.5;
    usage = ReadThreadUsage();
  });
  probe.join();
  ::unsetenv("BENTO_PERF");

  EXPECT_OK(install_status);
  EXPECT_EQ(backend, SamplerBackend::kTaskClock);
  EXPECT_FALSE(usage.perf);
  EXPECT_GT(usage.task_clock_ns, 0u);
  // The fallback synthesizes cycles from CPU time so energy attribution
  // always has a denominator.
  EXPECT_GT(usage.cycles, 0u);
}

TEST(ResourceSamplerTest, InstallSucceedsWithSomeBackend) {
  // Without the env override the sampler picks whatever the host offers —
  // perf where permitted, the clock fallback otherwise — but never fails.
  std::thread probe([] {
    EXPECT_OK(InstallThreadSampler());
    EXPECT_NE(ThreadSamplerBackend(), SamplerBackend::kNone);
    ResourceUsage a = ReadThreadUsage();
    volatile double sink = 0;
    for (int i = 0; i < 2'000'000; ++i) sink += i * 0.5;
    ResourceUsage b = ReadThreadUsage();
    // Counters are cumulative: monotone within a thread.
    EXPECT_GE(b.task_clock_ns, a.task_clock_ns);
    EXPECT_GE(b.cycles, a.cycles);
  });
  probe.join();
}

/// Sampling rides on tracing; every test leaves both off.
class ResourceReportTest : public ::testing::Test {
 protected:
  ~ResourceReportTest() override {
    DisableResourceSampling();
    StopTracing();
    testing::SetClockForTest(nullptr);
  }
};

TEST_F(ResourceReportTest, SpansFeedRollupsAndHistograms) {
  StartTracing();
  ResetResourceAggregation();
  EnableResourceSampling();
  {
    ResourceContextScope context("test/ctx");
    for (int i = 0; i < 10; ++i) {
      TraceSpan span(Category::kKernel, "rollup_target");
      volatile double sink = 0;
      for (int j = 0; j < 100'000; ++j) sink += j;
    }
  }
  DisableResourceSampling();
  ResourceReport report = SnapshotResourceReport();
  StopTracing();

  const ResourceReport::Row* row =
      report.Find("test/ctx", "kernel", "rollup_target");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->spans, 10u);
  EXPECT_GT(row->wall_us, 0.0);
  EXPECT_GT(row->cycles, 0u);
  EXPECT_GE(row->p99_us, row->p50_us);
  EXPECT_GE(row->joules, 0.0);
  EXPECT_FALSE(report.energy_source.empty());
  // Per-category duration histogram was fed as well.
  const Histogram* hist =
      MetricsRegistry::Global().FindHistogram("span.kernel.dur_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->count(), 10u);
  // Table and JSON render without issue.
  EXPECT_NE(report.FormatTable().find("rollup_target"), std::string::npos);
  EXPECT_TRUE(report.ToJson().Get("rows").is_array());
}

TEST_F(ResourceReportTest, SimulatedSessionChargesDeterministicCycles) {
  // Under a kSimulated session with a fake clock the charged cycles are a
  // pure function of virtual duration × model hz — identical across runs.
  sim::Session session(sim::MachineSpec::Laptop());
  session.set_execution_mode(sim::ExecutionMode::kSimulated);
  auto run_once = [&]() -> uint64_t {
    g_fake_now = 50.0;
    testing::SetClockForTest(&FakeClock);
    StartTracing();
    ResetResourceAggregation();
    EnableResourceSampling();
    {
      TraceSpan span(Category::kKernel, "sim_cycles");
      g_fake_now = 50.002;  // 2000 us of virtual work
    }
    DisableResourceSampling();
    ResourceReport report = SnapshotResourceReport();
    StopTracing();
    testing::SetClockForTest(nullptr);
    const ResourceReport::Row* row = report.Find("-", "kernel", "sim_cycles");
    return row != nullptr ? row->cycles : 0;
  };
  const uint64_t first = run_once();
  const uint64_t second = run_once();
  EXPECT_EQ(first, second);
  const uint64_t expected = static_cast<uint64_t>(
      2000.0 * EnergyMeter::Global().model_hz() * 1e-6);
  EXPECT_EQ(first, expected);
  // Model-mode energy is equally deterministic.
  EXPECT_DOUBLE_EQ(EnergyMeter::Global().ModelJoules(
                       static_cast<double>(first)),
                   static_cast<double>(first) /
                       EnergyMeter::Global().model_hz() *
                       EnergyMeter::Global().model_watts());
}

TEST_F(ResourceReportTest, DisabledSamplingKeepsZeroAllocPath) {
  // The PR 3 invariant extended: with tracing off AND sampling off, span
  // sites still allocate nothing and read no counters.
  StopTracing();
  DisableResourceSampling();
  const uint64_t allocs_before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    BENTO_TRACE_SPAN(kKernel, "never_sampled");
  }
  EXPECT_EQ(g_allocations.load(), allocs_before);
}

TEST_F(ResourceReportTest, ReportScopeHonorsEnvAndNesting) {
  ::unsetenv("BENTO_REPORT");
  {
    ResourceReportScope inert(false);
    EXPECT_FALSE(inert.owns());
    EXPECT_FALSE(ResourceSamplingEnabled());
  }
  {
    ResourceReportScope outer(true);
    EXPECT_TRUE(outer.owns());
    EXPECT_TRUE(ResourceSamplingEnabled());
    EXPECT_TRUE(TracingEnabled());
    {
      ResourceReportScope inner(true);  // nested: inert
      EXPECT_FALSE(inner.owns());
    }
    EXPECT_TRUE(ResourceSamplingEnabled());
  }
  EXPECT_FALSE(ResourceSamplingEnabled());
  EXPECT_FALSE(TracingEnabled());
}

TEST_F(ResourceReportTest, SampledRunnerTraceValidatesEnergySchema) {
  const std::string dir =
      "/tmp/bento_obs_energy_" + std::to_string(::getpid());
  const std::string trace_path = dir + "/loan_energy_trace.json";
  {
    run::Runner runner(dir, 0.001);
    auto pipeline = run::PipelineFor("loan").ValueOrDie();
    run::RunConfig config;
    config.engine_id = "pandas";
    config.mode = run::RunMode::kFunctionCore;
    config.trace_path = trace_path;
    config.collect_resources = true;
    auto report = runner.Run(config, pipeline, "loan");
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report.ValueOrDie().status.ok())
        << report.ValueOrDie().status.ToString();

    auto doc = ReadJsonFile(trace_path);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_OK(test::ValidateTraceDocument(doc.ValueOrDie(), nullptr));
    EXPECT_OK(test::ValidateEnergyTrack(doc.ValueOrDie()));
  }
  std::string cmd = "rm -rf " + dir;
  (void)!system(cmd.c_str());
}

}  // namespace
}  // namespace bento::obs
