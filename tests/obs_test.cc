// bento::obs unit + integration suite: metrics aggregation under
// contention, golden Chrome-trace export on a fake clock, virtual-time
// spans, zero-allocation disabled paths, span collection across real pool
// workers, the memory-timeline counter track, and a full function-core
// runner trace validated against the schema in tests/trace_schema.h.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bento/pipeline.h"
#include "bento/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/machine.h"
#include "sim/thread_pool.h"
#include "tests/test_util.h"
#include "tests/trace_schema.h"

// Process-wide allocation counter backing the disabled-path test: obs
// instrumentation must not allocate while tracing is off.
static std::atomic<uint64_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bento::obs {
namespace {

double g_fake_now = 0.0;
double FakeClock() { return g_fake_now; }

/// Tracing state is process-global; every test leaves it stopped.
class TraceTest : public ::testing::Test {
 protected:
  ~TraceTest() override {
    StopTracing();
    testing::SetClockForTest(nullptr);
  }
};

int CountEvents(const JsonValue& doc, const std::string& ph,
                const std::string& name = "") {
  int n = 0;
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") != ph) continue;
    if (!name.empty() && e.GetString("name") != name) continue;
    ++n;
  }
  return n;
}

const JsonValue* FindSpan(const JsonValue& doc, const std::string& name) {
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") == "X" && e.GetString("name") == name) {
      return &events.at(i);
    }
  }
  return nullptr;
}

TEST(MetricsTest, CounterGaugeAndRegistry) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.counter("obs_test.basic");
  // Find-or-create: the address is stable, so hot sites may cache it.
  ASSERT_EQ(c, reg.counter("obs_test.basic"));
  c->Reset();
  c->Add(41);
  c->Increment();
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(reg.CounterValue("obs_test.basic"), 42u);

  Gauge* g = reg.gauge("obs_test.hwm");
  g->Reset();
  g->UpdateMax(10);
  g->UpdateMax(7);  // lower: no change
  EXPECT_EQ(g->value(), 10);
  g->Set(3);
  EXPECT_EQ(g->value(), 3);

  c->Add(0);
  JsonValue snapshot = reg.ToJson();
  EXPECT_EQ(snapshot.Get("counters").GetInt("obs_test.basic"), 42);
  EXPECT_EQ(snapshot.Get("gauges").GetInt("obs_test.hwm"), 3);
}

TEST(MetricsTest, ConcurrentCounterAggregation) {
  Counter* c = MetricsRegistry::Global().counter("obs_test.concurrent");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      // Each thread resolves the counter itself: lookup must be
      // thread-safe and return the same instrument.
      Counter* mine = MetricsRegistry::Global().counter("obs_test.concurrent");
      for (int i = 0; i < kAdds; ++i) mine->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kAdds);
}

TEST_F(TraceTest, GoldenNestedSpansOnFakeClock) {
  g_fake_now = 100.0;
  testing::SetClockForTest(&FakeClock);
  StartTracing();
  {
    TraceSpan outer(Category::kStage, "stage.EDA");
    g_fake_now = 100.001;  // 1000us in
    {
      TraceSpan inner(Category::kKernel, "groupby");
      g_fake_now = 100.0015;  // inner: 500us
    }
    g_fake_now = 100.002;  // outer: 2000us
  }
  StopTracing();
  JsonValue doc = TraceToJson();

  const JsonValue* outer = FindSpan(doc, "stage.EDA");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->GetString("cat"), "stage");
  EXPECT_DOUBLE_EQ(outer->GetNumber("ts"), 0.0);
  EXPECT_NEAR(outer->GetNumber("dur"), 2000.0, 1e-6);
  EXPECT_NEAR(outer->Get("args").GetNumber("vdur_us"), 2000.0, 1e-6);

  const JsonValue* inner = FindSpan(doc, "groupby");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->GetString("cat"), "kernel");
  EXPECT_NEAR(inner->GetNumber("ts"), 1000.0, 1e-6);
  EXPECT_NEAR(inner->GetNumber("dur"), 500.0, 1e-6);

  // The golden document is schema-valid and the nesting is visible to the
  // same validator CI runs on real traces.
  EXPECT_OK(test::ValidateTraceDocument(doc, nullptr));
}

TEST_F(TraceTest, VirtualDurationSubtractsSessionCredits) {
  sim::Session session(sim::MachineSpec::Laptop());
  g_fake_now = 10.0;
  testing::SetClockForTest(&FakeClock);
  StartTracing();
  {
    TraceSpan span(Category::kKernel, "credited");
    g_fake_now = 10.004;                 // 4000us of wall time
    session.AddTimeCredit(0.003);        // 3000us overlapped away
  }
  {
    TraceSpan span(Category::kKernel, "over_credited");
    g_fake_now = 10.005;                 // 1000us of wall time
    session.AddTimeCredit(0.002);        // more credit than wall: clamp to 0
  }
  StopTracing();
  JsonValue doc = TraceToJson();

  const JsonValue* credited = FindSpan(doc, "credited");
  ASSERT_NE(credited, nullptr);
  EXPECT_NEAR(credited->GetNumber("dur"), 4000.0, 1e-6);
  EXPECT_NEAR(credited->Get("args").GetNumber("vdur_us"), 1000.0, 1e-6);

  const JsonValue* clamped = FindSpan(doc, "over_credited");
  ASSERT_NE(clamped, nullptr);
  EXPECT_DOUBLE_EQ(clamped->Get("args").GetNumber("vdur_us"), 0.0);
}

TEST_F(TraceTest, CounterTrackGolden) {
  g_fake_now = 5.0;
  testing::SetClockForTest(&FakeClock);
  StartTracing();
  EmitCounter("mem:test", 128.0);
  g_fake_now = 5.001;
  EmitCounter("mem:test", 64.0);
  StopTracing();
  JsonValue doc = TraceToJson();

  ASSERT_EQ(CountEvents(doc, "C", "mem:test"), 2);
  const JsonValue& events = doc.Get("traceEvents");
  std::vector<std::pair<double, double>> samples;  // (ts, value)
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") == "C" && e.GetString("name") == "mem:test") {
      samples.emplace_back(e.GetNumber("ts"), e.Get("args").GetNumber("value"));
    }
  }
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].first, 0.0);
  EXPECT_DOUBLE_EQ(samples[0].second, 128.0);
  EXPECT_NEAR(samples[1].first, 1000.0, 1e-6);
  EXPECT_DOUBLE_EQ(samples[1].second, 64.0);
}

TEST_F(TraceTest, SpansCollectedAcrossPoolWorkers) {
  StartTracing();
  sim::ThreadPool pool(4);
  std::atomic<int> ran{0};
  Status st = pool.ParallelFor(
      64,
      [&](int64_t) {
        BENTO_TRACE_SPAN(kKernel, "worker_body");
        ran.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      4, nullptr);
  ASSERT_OK(st);
  EXPECT_EQ(ran.load(), 64);
  StopTracing();
  JsonValue doc = TraceToJson();

  // Every body span arrived in the collector regardless of which worker
  // (or the caller, who participates) ran it.
  EXPECT_EQ(CountEvents(doc, "X", "worker_body"), 64);
  // Workers named their tracks; the names survive into the export.
  bool saw_worker_name = false;
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") == "M" &&
        e.Get("args").GetString("name").rfind("pool-worker-", 0) == 0) {
      saw_worker_name = true;
    }
  }
  EXPECT_TRUE(saw_worker_name);
  EXPECT_OK(test::ValidateTraceDocument(doc, nullptr));
}

TEST_F(TraceTest, DisabledPathAllocatesNothingAndRecordsNothing) {
  StopTracing();
  ASSERT_FALSE(TracingEnabled());
  Counter* counter = MetricsRegistry::Global().counter("obs_test.disabled");
  const int before_events = CountEvents(TraceToJson(), "X");

  const uint64_t allocs_before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    BENTO_TRACE_SPAN(kKernel, "never_recorded");
    BENTO_TRACE_SPAN_DYN(kEngine, std::string("expensive_") + "name");
    EmitCounter("mem:never", 1.0);
    counter->Increment();  // metrics stay live when tracing is off
  }
  const uint64_t allocs_after = g_allocations.load();

  EXPECT_EQ(allocs_after, allocs_before);
  EXPECT_EQ(CountEvents(TraceToJson(), "X"), before_events);
  EXPECT_GE(counter->value(), 1000u);
}

TEST_F(TraceTest, TraceEnvScopeOwnershipAndNesting) {
  const std::string path =
      "/tmp/bento_obs_scope_" + std::to_string(::getpid()) + ".json";
  {
    TraceEnvScope outer(path);
    ASSERT_TRUE(outer.owns());
    EXPECT_TRUE(TracingEnabled());
    {
      // A nested scope must not steal the trace or truncate the file.
      TraceEnvScope inner("/tmp/should_not_be_written.json");
      EXPECT_FALSE(inner.owns());
      BENTO_TRACE_SPAN(kKernel, "inside_nested_scope");
    }
    EXPECT_TRUE(TracingEnabled());
  }
  EXPECT_FALSE(TracingEnabled());

  auto doc = ReadJsonFile(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(CountEvents(doc.ValueOrDie(), "X", "inside_nested_scope"), 1);
  EXPECT_OK(test::ValidateTraceDocument(doc.ValueOrDie(), nullptr));
  std::remove(path.c_str());

  // Empty path and no BENTO_TRACE: completely inert.
  ::unsetenv("BENTO_TRACE");
  TraceEnvScope inert;
  EXPECT_FALSE(inert.owns());
  EXPECT_FALSE(TracingEnabled());
}

TEST_F(TraceTest, MemoryPoolEmitsTimelineAndMetrics) {
  sim::Session session(sim::MachineSpec::Laptop());
  StartTracing();
  ASSERT_OK(session.host_pool()->Reserve(1 << 20));
  session.host_pool()->Release(1 << 20);
  StopTracing();
  JsonValue doc = TraceToJson();

  // One sample at 1 MiB, one back at the starting level, on a "mem:" track.
  double max_seen = -1.0;
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") == "C" && e.GetString("name").rfind("mem:", 0) == 0) {
      max_seen = std::max(max_seen, e.Get("args").GetNumber("value"));
    }
  }
  EXPECT_GE(max_seen, static_cast<double>(1 << 20));

  // The registry tracked the traffic and the high-water mark too.
  const std::string pool_name = "host:" + session.spec().name;
  EXPECT_GE(MetricsRegistry::Global().CounterValue("mem." + pool_name +
                                                   ".reserved_bytes"),
            static_cast<uint64_t>(1 << 20));
  EXPECT_GE(MetricsRegistry::Global().GaugeValue("mem." + pool_name +
                                                 ".peak_bytes"),
            static_cast<int64_t>(1 << 20));
}

/// The acceptance-shaped integration test: a function-core Loan run with a
/// trace path produces a Chrome trace with ≥1 span per executed
/// preparator, stage ⊃ preparator ⊃ engine/kernel nesting, and a memory
/// counter track — checked by the same validator the CI trace job uses.
TEST_F(TraceTest, FunctionCoreLoanRunEmitsValidPipelineTrace) {
  const std::string dir =
      "/tmp/bento_obs_runner_" + std::to_string(::getpid());
  const std::string trace_path = dir + "/loan_trace.json";
  {
    run::Runner runner(dir, 0.001);
    auto pipeline = run::PipelineFor("loan").ValueOrDie();
    run::RunConfig config;
    config.engine_id = "pandas";
    config.mode = run::RunMode::kFunctionCore;
    config.trace_path = trace_path;
    auto report = runner.Run(config, pipeline, "loan");
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report.ValueOrDie().status.ok())
        << report.ValueOrDie().status.ToString();
    EXPECT_FALSE(TracingEnabled());  // scope closed with the run

    auto doc = ReadJsonFile(trace_path);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_OK(test::ValidatePipelineShape(
        doc.ValueOrDie(),
        static_cast<int>(report.ValueOrDie().ops.size())));

    // Function-core mode also filled the per-op peak column.
    bool any_peak = false;
    for (const auto& op : report.ValueOrDie().ops) {
      if (op.peak_bytes > 0) any_peak = true;
    }
    EXPECT_TRUE(any_peak);
    EXPECT_GT(report.ValueOrDie().peak_host_bytes, 0u);
  }
  std::string cmd = "rm -rf " + dir;
  (void)!system(cmd.c_str());
}

}  // namespace
}  // namespace bento::obs
