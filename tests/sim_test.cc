#include <gtest/gtest.h>

#include <cstring>

#include "sim/device.h"
#include "sim/machine.h"
#include "sim/memory.h"
#include "sim/parallel.h"
#include "sim/spill.h"

namespace bento::sim {
namespace {

volatile double benchmark_sink = 0;

TEST(MemoryPoolTest, TracksCurrentAndPeak) {
  MemoryPool pool("t", 0);
  ASSERT_TRUE(pool.Reserve(100).ok());
  ASSERT_TRUE(pool.Reserve(50).ok());
  EXPECT_EQ(pool.bytes_allocated(), 150u);
  EXPECT_EQ(pool.peak_bytes(), 150u);
  pool.Release(100);
  EXPECT_EQ(pool.bytes_allocated(), 50u);
  EXPECT_EQ(pool.peak_bytes(), 150u);
  pool.ResetPeak();
  EXPECT_EQ(pool.peak_bytes(), 50u);
}

TEST(MemoryPoolTest, BudgetEnforced) {
  MemoryPool pool("small", 128);
  ASSERT_TRUE(pool.Reserve(100).ok());
  Status st = pool.Reserve(100);
  EXPECT_TRUE(st.IsOutOfMemory());
  // Failed reservation must not leak into the accounting.
  EXPECT_EQ(pool.bytes_allocated(), 100u);
  pool.Release(100);
  EXPECT_TRUE(pool.Reserve(128).ok());
}

TEST(MemoryPoolTest, ScopeInstallsCurrent) {
  EXPECT_EQ(MemoryPool::Current(), MemoryPool::Default());
  MemoryPool pool("scoped", 0);
  {
    MemoryScope scope(&pool);
    EXPECT_EQ(MemoryPool::Current(), &pool);
    MemoryPool inner("inner", 0);
    {
      MemoryScope nested(&inner);
      EXPECT_EQ(MemoryPool::Current(), &inner);
    }
    EXPECT_EQ(MemoryPool::Current(), &pool);
  }
  EXPECT_EQ(MemoryPool::Current(), MemoryPool::Default());
}

TEST(MachineSpecTest, TableIvConfigs) {
  EXPECT_EQ(MachineSpec::Laptop().cores, 8);
  EXPECT_EQ(MachineSpec::Laptop().ram_bytes, 16ULL << 30);
  EXPECT_EQ(MachineSpec::Workstation().cores, 16);
  EXPECT_EQ(MachineSpec::Workstation().ram_bytes, 64ULL << 30);
  EXPECT_EQ(MachineSpec::Server().cores, 24);
  EXPECT_EQ(MachineSpec::Server().ram_bytes, 128ULL << 30);
  EXPECT_TRUE(MachineSpec::EvaluationHost().gpu.has_value());
}

TEST(MachineSpecTest, ScaledShrinksBudgets) {
  MachineSpec scaled = MachineSpec::EvaluationHost().Scaled(0.5);
  EXPECT_EQ(scaled.ram_bytes, 98ULL << 30);
  EXPECT_EQ(scaled.gpu->vram_bytes, 8ULL << 30);
  EXPECT_EQ(scaled.cores, 24);  // cores are not scaled
}

TEST(SessionTest, InstallsPoolAndRestores) {
  Session session(MachineSpec::Laptop());
  EXPECT_EQ(Session::Current(), &session);
  EXPECT_EQ(MemoryPool::Current(), session.host_pool());
  EXPECT_EQ(session.host_pool()->budget(), 16ULL << 30);
  EXPECT_EQ(session.device_pool(), nullptr);
  {
    Session inner(MachineSpec::Server());
    EXPECT_EQ(Session::Current(), &inner);
  }
  EXPECT_EQ(Session::Current(), &session);
}

TEST(MakespanTest, GreedyBalances) {
  // Four unit tasks on two workers: 2 time units.
  std::vector<double> tasks(4, 1.0);
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 2, SchedulePolicy::kGreedy), 2.0);
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 4, SchedulePolicy::kGreedy), 1.0);
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 1, SchedulePolicy::kGreedy), 4.0);
}

TEST(MakespanTest, GreedyHandlesSkew) {
  // Greedy list scheduling: long task overlaps the short ones.
  std::vector<double> tasks = {4.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(SimulateMakespan(tasks, 2, SchedulePolicy::kGreedy), 4.0);
}

TEST(MakespanTest, StaticBlocksPayForSkew) {
  // Static contiguous assignment puts the heavy block on one worker.
  std::vector<double> tasks = {3.0, 3.0, 0.1, 0.1};
  double greedy = SimulateMakespan(tasks, 2, SchedulePolicy::kGreedy);
  double stat = SimulateMakespan(tasks, 2, SchedulePolicy::kStaticBlocks);
  EXPECT_DOUBLE_EQ(greedy, 3.1);
  EXPECT_DOUBLE_EQ(stat, 6.0);
}

TEST(MakespanTest, DispatchOverheadSerializes) {
  std::vector<double> tasks(8, 0.0);
  double m =
      SimulateMakespan(tasks, 8, SchedulePolicy::kGreedy, /*dispatch=*/0.5);
  EXPECT_GE(m, 4.0);  // eight dispatches at 0.5s through one dispatcher
}

TEST(MakespanTest, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(SimulateMakespan({}, 4, SchedulePolicy::kGreedy), 0.0);
  EXPECT_DOUBLE_EQ(SimulateMakespan({2.0}, 0, SchedulePolicy::kGreedy), 2.0);
}

TEST(ParallelForTest, RunsAllTasksAndCreditsOverlap) {
  Session session(MachineSpec::Laptop());  // 8 cores
  std::vector<int> hits(16, 0);
  double before = session.credit_seconds();
  ASSERT_TRUE(ParallelFor(16, [&](int64_t i) {
                hits[static_cast<size_t>(i)] = 1;
                // Busy-wait a deterministic amount so overlap credit > 0.
                double x = 0;
                for (int k = 0; k < 20000; ++k) x += k;
                benchmark_sink += x;
                return Status::OK();
              }).ok());
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_GT(session.credit_seconds(), before);
}

TEST(ParallelForTest, FirstErrorAborts) {
  int ran = 0;
  Status st = ParallelFor(10, [&](int64_t i) {
    ++ran;
    if (i == 3) return Status::Invalid("stop");
    return Status::OK();
  });
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_EQ(ran, 4);
}

TEST(ParallelForTest, WorksWithoutSession) {
  int64_t sum = 0;
  ASSERT_TRUE(ParallelFor(5, [&](int64_t i) {
                sum += i;
                return Status::OK();
              }).ok());
  EXPECT_EQ(sum, 10);
}

TEST(VirtualTimerTest, CreditsReduceElapsed) {
  Session session(MachineSpec::Laptop());
  VirtualTimer timer;
  session.AddTimeCredit(100.0);  // pretend 100s of work overlapped away
  EXPECT_DOUBLE_EQ(timer.Elapsed(), 0.0);  // clamped at zero
}

TEST(VirtualTimerTest, PenaltiesIncreaseElapsed) {
  Session session(MachineSpec::Laptop());
  VirtualTimer timer;
  ChargePenalty(2.0);
  EXPECT_GE(timer.Elapsed(), 2.0);
}

TEST(SplitRangeTest, CoversRangeExactly) {
  auto chunks = SplitRange(100, 3, 1);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks.front().first, 0);
  EXPECT_EQ(chunks.back().second, 100);
  int64_t total = 0;
  for (auto [b, e] : chunks) total += e - b;
  EXPECT_EQ(total, 100);
}

TEST(SplitRangeTest, RespectsMinChunkSize) {
  auto chunks = SplitRange(100, 16, 40);
  EXPECT_LE(chunks.size(), 3u);
  EXPECT_TRUE(SplitRange(0, 4, 1).empty());
}

TEST(DeviceTest, KernelSpeedupCreditsTime) {
  MachineSpec spec = MachineSpec::Laptop();
  spec.gpu = GpuSpec{};
  Session session(spec);
  VirtualTimer timer;
  const double wall_start = NowSeconds();
  ASSERT_TRUE(DeviceKernel(KernelClass::kVector, []() {
                double x = 0;
                for (int k = 0; k < 20000000; ++k) x += k;
                benchmark_sink += x;
                return Status::OK();
              }).ok());
  const double wall = NowSeconds() - wall_start;
  // Virtual (device) time must be far below the host wall time of the same
  // kernel: speedup_vector is 64x.
  EXPECT_LT(timer.Elapsed(), wall / 2);
}

TEST(DeviceTest, TransfersChargeTime) {
  MachineSpec spec = MachineSpec::Laptop();
  spec.gpu = GpuSpec{};
  Session session(spec);
  VirtualTimer timer;
  DeviceTransfer(12ULL << 30);  // 12 GiB over ~12 GiB/s ~= 1 s
  EXPECT_NEAR(timer.Elapsed(), 1.0, 0.2);
}

TEST(DeviceTest, VramWallReturnsOoM) {
  MachineSpec spec = MachineSpec::Laptop();
  GpuSpec gpu;
  gpu.vram_bytes = 1024;  // managed oversubscription doubles the hard wall
  spec.gpu = gpu;
  Session session(spec);
  EXPECT_EQ(session.device_pool()->budget(), 2048u);
  DeviceAllocation alloc;
  ASSERT_TRUE(alloc.Grow(2000).ok());
  EXPECT_TRUE(alloc.Grow(100).IsOutOfMemory());
  alloc.Reset();
  EXPECT_EQ(session.device_pool()->bytes_allocated(), 0u);
}

TEST(DeviceTest, NoOpWithoutGpuSession) {
  // Outside any GPU session the device helpers degenerate gracefully.
  EXPECT_TRUE(DeviceKernel(KernelClass::kVector, []() {
                return Status::OK();
              }).ok());
  DeviceTransfer(1 << 20);
  EXPECT_TRUE(DeviceReserve(1 << 20).ok());
  DeviceFree(1 << 20);
}

TEST(SpillFileTest, WriteReadRoundTrip) {
  auto spill = SpillFile::Create().ValueOrDie();
  const char a[] = "hello spill";
  const char b[] = "second block";
  uint64_t off_a = spill->Write(a, sizeof(a)).ValueOrDie();
  uint64_t off_b = spill->Write(b, sizeof(b)).ValueOrDie();
  EXPECT_EQ(off_a, 0u);
  EXPECT_EQ(off_b, sizeof(a));
  char buf[32];
  ASSERT_TRUE(spill->Read(off_b, sizeof(b), buf).ok());
  EXPECT_STREQ(buf, b);
  ASSERT_TRUE(spill->Read(off_a, sizeof(a), buf).ok());
  EXPECT_STREQ(buf, a);
  EXPECT_EQ(spill->bytes_written(), sizeof(a) + sizeof(b));
}

TEST(SpillFileTest, FileRemovedOnDestruction) {
  std::string path;
  {
    auto spill = SpillFile::Create().ValueOrDie();
    path = spill->path();
    ASSERT_TRUE(spill->Write("x", 1).ok());
  }
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

}  // namespace
}  // namespace bento::sim
