#include <gtest/gtest.h>

#include <cmath>

#include "kernels/apply.h"
#include "kernels/arithmetic.h"
#include "kernels/cast.h"
#include "kernels/datetime.h"
#include "kernels/encode.h"
#include "kernels/pivot.h"
#include "kernels/stats.h"
#include "util/random.h"
#include "kernels/string_ops.h"
#include "tests/test_util.h"

namespace bento::kern {
namespace {

using col::Scalar;
using col::TypeId;
using test::Bools;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

// --- string ops ---

TEST(StringOpsTest, ContainsBothEngines) {
  auto v = Str({"hello world", "goodbye", "WORLD"}, {true, true, true});
  for (StringEngine eng : {StringEngine::kColumnar, StringEngine::kRowObjects}) {
    auto m = Contains(v, "world", true, eng).ValueOrDie();
    EXPECT_EQ(m->bool_data()[0], 1);
    EXPECT_EQ(m->bool_data()[1], 0);
    EXPECT_EQ(m->bool_data()[2], 0);
  }
  auto ci = Contains(v, "world", /*case_sensitive=*/false).ValueOrDie();
  EXPECT_EQ(ci->bool_data()[2], 1);
}

TEST(StringOpsTest, ContainsNullPropagates) {
  auto v = Str({"a"}, {false});
  auto m = Contains(v, "a").ValueOrDie();
  EXPECT_TRUE(m->IsNull(0));
  EXPECT_FALSE(Contains(I64({1}), "x").ok());
}

TEST(StringOpsTest, Lower) {
  auto v = Str({"AbC", "XYZ"}, {true, false});
  auto out = Lower(v).ValueOrDie();
  EXPECT_EQ(out->GetView(0), "abc");
  EXPECT_TRUE(out->IsNull(1));
}

TEST(StringOpsTest, ReplaceSubstring) {
  auto v = Str({"aXbXc", "none"});
  auto out = ReplaceSubstring(v, "X", "--").ValueOrDie();
  EXPECT_EQ(out->GetView(0), "a--b--c");
  EXPECT_EQ(out->GetView(1), "none");
  EXPECT_FALSE(ReplaceSubstring(v, "", "y").ok());
}

TEST(StringOpsTest, Length) {
  auto v = Str({"", "abc"}, {true, true});
  auto out = StringLength(v).ValueOrDie();
  EXPECT_EQ(out->int64_data()[0], 0);
  EXPECT_EQ(out->int64_data()[1], 3);
}

// Every string op accepts dictionary-encoded input and matches the plain
// string result row for row (categorical outputs compare decoded).
TEST(StringOpsTest, CategoricalInputMatchesPlainString) {
  auto plain = Str({"aXbXc", "US", "us", "", "none", "US"},
                   {true, true, true, true, false, true});
  auto dict = DictEncode(plain).ValueOrDie();
  ASSERT_EQ(dict->type(), TypeId::kCategorical);

  auto expect_rows_equal = [&](const col::ArrayPtr& a, const col::ArrayPtr& b) {
    ASSERT_EQ(a->length(), b->length());
    for (int64_t i = 0; i < a->length(); ++i) {
      EXPECT_EQ(a->ValueToString(i), b->ValueToString(i)) << "row " << i;
    }
  };

  expect_rows_equal(Lower(plain).ValueOrDie(), Lower(dict).ValueOrDie());
  expect_rows_equal(ReplaceSubstring(plain, "X", "--").ValueOrDie(),
                    ReplaceSubstring(dict, "X", "--").ValueOrDie());
  expect_rows_equal(StringLength(plain).ValueOrDie(),
                    StringLength(dict).ValueOrDie());
  expect_rows_equal(Contains(plain, "us", false).ValueOrDie(),
                    Contains(dict, "us", false).ValueOrDie());

  // Lowercasing merges "US"/"us" — the transformed dictionary must re-intern
  // to unique entries, not carry duplicates.
  auto lowered = Lower(dict).ValueOrDie();
  ASSERT_EQ(lowered->type(), TypeId::kCategorical);
  EXPECT_EQ(lowered->dictionary()->size(), 3u);  // {"axbxc", "us", ""}
}

// --- cast / replace ---

TEST(CastTest, NumericLadder) {
  auto i = I64({1, 0, -3});
  EXPECT_DOUBLE_EQ(
      Cast(i, TypeId::kFloat64).ValueOrDie()->float64_data()[2], -3.0);
  EXPECT_EQ(Cast(i, TypeId::kBool).ValueOrDie()->bool_data()[1], 0);
  auto f = F64({2.7});
  EXPECT_EQ(Cast(f, TypeId::kInt64).ValueOrDie()->int64_data()[0], 2);
}

TEST(CastTest, ToStringAndBack) {
  auto f = F64({1.5, 0.0}, {true, false});
  auto s = Cast(f, TypeId::kString).ValueOrDie();
  EXPECT_EQ(s->GetView(0), "1.5");
  EXPECT_TRUE(s->IsNull(1));
  auto back = Cast(s, TypeId::kFloat64).ValueOrDie();
  EXPECT_DOUBLE_EQ(back->float64_data()[0], 1.5);
  EXPECT_TRUE(back->IsNull(1));
}

TEST(CastTest, StringParseFailureSurfaces) {
  auto s = Str({"12", "oops"});
  EXPECT_FALSE(Cast(s, TypeId::kInt64).ok());
}

TEST(CastTest, NaNToIntBecomesNull) {
  auto f = F64({std::nan(""), 2.0});
  auto out = Cast(f, TypeId::kInt64).ValueOrDie();
  EXPECT_TRUE(out->IsNull(0));
  EXPECT_EQ(out->int64_data()[1], 2);
}

TEST(CastTest, DictionaryRoundTrip) {
  auto s = Str({"b", "a", "b"}, {true, true, true});
  auto cat = Cast(s, TypeId::kCategorical).ValueOrDie();
  EXPECT_EQ(cat->type(), TypeId::kCategorical);
  EXPECT_EQ(cat->dictionary()->size(), 2u);
  EXPECT_EQ(cat->codes_data()[0], cat->codes_data()[2]);
  auto back = Cast(cat, TypeId::kString).ValueOrDie();
  EXPECT_EQ(back->GetView(2), "b");
}

TEST(ReplaceValuesTest, NumericStringAndNullTargets) {
  auto v = I64({1, 2, 1});
  auto out = ReplaceValues(v, Scalar::Int(1), Scalar::Int(99)).ValueOrDie();
  EXPECT_EQ(out->int64_data()[0], 99);
  EXPECT_EQ(out->int64_data()[1], 2);

  auto s = Str({"M", "F"});
  auto so = ReplaceValues(s, Scalar::Str("M"), Scalar::Str("Male")).ValueOrDie();
  EXPECT_EQ(so->GetView(0), "Male");

  // from=null behaves like fillna; to=null nulls matches out.
  auto with_null = I64({5, 0}, {true, false});
  auto filled =
      ReplaceValues(with_null, Scalar::Null(), Scalar::Int(7)).ValueOrDie();
  EXPECT_EQ(filled->int64_data()[1], 7);
  auto nulled = ReplaceValues(v, Scalar::Int(2), Scalar::Null()).ValueOrDie();
  EXPECT_TRUE(nulled->IsNull(1));
}

// --- stats ---

TEST(StatsTest, Aggregates) {
  auto v = F64({1.0, 2.0, 3.0, 4.0}, {true, true, true, false});
  EXPECT_DOUBLE_EQ(Aggregate(v, AggKind::kSum).ValueOrDie().double_value(), 6.0);
  EXPECT_DOUBLE_EQ(Aggregate(v, AggKind::kMean).ValueOrDie().double_value(), 2.0);
  EXPECT_DOUBLE_EQ(Aggregate(v, AggKind::kMin).ValueOrDie().double_value(), 1.0);
  EXPECT_DOUBLE_EQ(Aggregate(v, AggKind::kMax).ValueOrDie().double_value(), 3.0);
  EXPECT_EQ(Aggregate(v, AggKind::kCount).ValueOrDie().int_value(), 3);
  EXPECT_NEAR(Aggregate(v, AggKind::kStd).ValueOrDie().double_value(), 1.0,
              1e-12);
}

TEST(StatsTest, EmptyColumnAggregatesToNull) {
  auto v = F64({1.0}, {false});
  EXPECT_TRUE(Aggregate(v, AggKind::kMean).ValueOrDie().is_null());
  EXPECT_EQ(Aggregate(v, AggKind::kCount).ValueOrDie().int_value(), 0);
}

TEST(StatsTest, ParallelMatchesSerial) {
  col::Float64Builder b;
  Rng rng;
  for (int i = 0; i < 50000; ++i) {
    b.AppendMaybe(rng.UniformDouble(0, 10), !rng.Bernoulli(0.05));
  }
  auto v = b.Finish().ValueOrDie();
  sim::ParallelOptions opts;
  opts.max_workers = 6;
  for (AggKind k : {AggKind::kSum, AggKind::kMean, AggKind::kMin,
                    AggKind::kMax, AggKind::kStd}) {
    double serial = Aggregate(v, k).ValueOrDie().double_value();
    double parallel = AggregateParallel(v, k, opts).ValueOrDie().double_value();
    EXPECT_NEAR(serial, parallel, 1e-6 * std::abs(serial) + 1e-9);
  }
  EXPECT_EQ(AggregateParallel(v, AggKind::kCount, opts).ValueOrDie().int_value(),
            Aggregate(v, AggKind::kCount).ValueOrDie().int_value());
}

TEST(StatsTest, QuantileInterpolates) {
  auto v = F64({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0).ValueOrDie(), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5).ValueOrDie(), 2.5);
  EXPECT_FALSE(Quantile(v, 1.5).ok());
  EXPECT_FALSE(Quantile(F64({1.0}, {false}), 0.5).ok());
}

TEST(StatsTest, DescribeShape) {
  auto t = MakeTable({{"x", F64({1.0, 2.0, 3.0})},
                      {"s", Str({"a", "b", "c"})},
                      {"y", I64({10, 20, 30})}});
  auto d = Describe(t).ValueOrDie();
  EXPECT_EQ(d->num_rows(), 2);  // only numeric columns
  EXPECT_EQ(d->num_columns(), 9);
  EXPECT_EQ(d->column(0)->GetView(0), "x");
  EXPECT_DOUBLE_EQ(d->GetColumn("mean").ValueOrDie()->float64_data()[1], 20.0);
  EXPECT_DOUBLE_EQ(d->GetColumn("50%").ValueOrDie()->float64_data()[0], 2.0);
}

// --- encode ---

TEST(EncodeTest, GetDummies) {
  auto t = MakeTable({{"c", Str({"x", "y", "x"}, {true, true, true})},
                      {"v", I64({1, 2, 3})}});
  auto out = GetDummies(t, "c").ValueOrDie();
  EXPECT_FALSE(out->schema()->Contains("c"));
  EXPECT_EQ(out->GetColumn("c_x").ValueOrDie()->int64_data()[0], 1);
  EXPECT_EQ(out->GetColumn("c_x").ValueOrDie()->int64_data()[1], 0);
  EXPECT_EQ(out->GetColumn("c_y").ValueOrDie()->int64_data()[1], 1);
}

TEST(EncodeTest, GetDummiesNullRowIsAllZero) {
  auto t = MakeTable({{"c", Str({"x", "y"}, {true, false})}});
  auto out = GetDummies(t, "c").ValueOrDie();
  EXPECT_EQ(out->GetColumn("c_x").ValueOrDie()->int64_data()[1], 0);
  EXPECT_EQ(out->num_columns(), 1);  // only "x" was seen
}

TEST(EncodeTest, CatCodes) {
  auto v = Str({"b", "a", "b"}, {true, true, true});
  auto codes = CatCodes(v).ValueOrDie();
  EXPECT_EQ(codes->type(), TypeId::kInt64);
  EXPECT_EQ(codes->int64_data()[0], 0);  // first-seen coding
  EXPECT_EQ(codes->int64_data()[1], 1);
  EXPECT_EQ(codes->int64_data()[2], 0);
  EXPECT_FALSE(CatCodes(I64({1})).ok());
}

// --- datetime ---

TEST(DatetimeTest, ParseFormats) {
  auto v = Str({"2015-07-04", "2015-07-04 12:30:45", "07/04/2015",
                "2015-07-04T01:02:03"});
  auto ts = ToDatetime(v).ValueOrDie();
  EXPECT_EQ(ts->type(), TypeId::kTimestamp);
  EXPECT_EQ(ts->null_count(), 0);
  EXPECT_EQ(ts->int64_data()[0],
            MakeTimestampMicros(2015, 7, 4));
  EXPECT_EQ(ts->int64_data()[1],
            MakeTimestampMicros(2015, 7, 4, 12, 30, 45));
  EXPECT_EQ(ts->int64_data()[2], ts->int64_data()[0]);
}

TEST(DatetimeTest, CoerceAndStrict) {
  auto v = Str({"2015-01-01", "garbage"});
  auto coerced = ToDatetime(v, /*coerce=*/true).ValueOrDie();
  EXPECT_TRUE(coerced->IsNull(1));
  EXPECT_FALSE(ToDatetime(v, /*coerce=*/false).ok());
}

TEST(DatetimeTest, FormatRoundTrip) {
  auto v = Str({"1999-12-31 23:59:59", "2020-02-29"});
  auto ts = ToDatetime(v).ValueOrDie();
  auto text = FormatDatetime(ts).ValueOrDie();
  EXPECT_EQ(text->GetView(0), "1999-12-31 23:59:59");
  EXPECT_EQ(text->GetView(1), "2020-02-29 00:00:00");
  auto date_only = FormatDatetime(ts, /*date_only=*/true).ValueOrDie();
  EXPECT_EQ(date_only->GetView(1), "2020-02-29");
}

TEST(DatetimeTest, Components) {
  auto ts = ToDatetime(Str({"2015-07-04 12:00:00"})).ValueOrDie();
  EXPECT_EQ(DatetimeComponent(ts, "year").ValueOrDie()->int64_data()[0], 2015);
  EXPECT_EQ(DatetimeComponent(ts, "month").ValueOrDie()->int64_data()[0], 7);
  EXPECT_EQ(DatetimeComponent(ts, "day").ValueOrDie()->int64_data()[0], 4);
  EXPECT_EQ(DatetimeComponent(ts, "hour").ValueOrDie()->int64_data()[0], 12);
  // 2015-07-04 was a Saturday (Mon=0 ... Sat=5).
  EXPECT_EQ(DatetimeComponent(ts, "weekday").ValueOrDie()->int64_data()[0], 5);
  EXPECT_FALSE(DatetimeComponent(ts, "era").ok());
}

// --- arithmetic ---

TEST(ArithmeticTest, BinaryOps) {
  auto a = F64({6.0, 8.0});
  auto b = F64({3.0, 0.0});
  EXPECT_DOUBLE_EQ(
      BinaryNumeric(a, BinaryOp::kAdd, b).ValueOrDie()->float64_data()[0], 9.0);
  EXPECT_DOUBLE_EQ(
      BinaryNumeric(a, BinaryOp::kDiv, b).ValueOrDie()->float64_data()[0], 2.0);
  // Division by zero yields null.
  EXPECT_TRUE(BinaryNumeric(a, BinaryOp::kDiv, b).ValueOrDie()->IsNull(1));
}

TEST(ArithmeticTest, IntStaysIntForClosedOps) {
  auto a = I64({2, 3});
  auto b = I64({5, 7});
  auto sum = BinaryNumeric(a, BinaryOp::kAdd, b).ValueOrDie();
  EXPECT_EQ(sum->type(), TypeId::kInt64);
  auto div = BinaryNumeric(a, BinaryOp::kDiv, b).ValueOrDie();
  EXPECT_EQ(div->type(), TypeId::kFloat64);
}

TEST(ArithmeticTest, ScalarVariant) {
  auto a = I64({10, 20});
  auto out = BinaryNumericScalar(a, BinaryOp::kMul, Scalar::Int(3)).ValueOrDie();
  EXPECT_EQ(out->type(), TypeId::kInt64);
  EXPECT_EQ(out->int64_data()[1], 60);
  auto powd =
      BinaryNumericScalar(a, BinaryOp::kPow, Scalar::Double(2.0)).ValueOrDie();
  EXPECT_DOUBLE_EQ(powd->float64_data()[0], 100.0);
}

TEST(ArithmeticTest, UnaryDomainErrorsAreNull) {
  auto v = F64({-1.0, 4.0});
  auto log = UnaryNumeric(v, UnaryOp::kLog).ValueOrDie();
  EXPECT_TRUE(log->IsNull(0));
  auto sqrt = UnaryNumeric(v, UnaryOp::kSqrt).ValueOrDie();
  EXPECT_TRUE(sqrt->IsNull(0));
  EXPECT_DOUBLE_EQ(sqrt->float64_data()[1], 2.0);
  auto neg = UnaryNumeric(I64({-5}), UnaryOp::kAbs).ValueOrDie();
  EXPECT_EQ(neg->int64_data()[0], 5);
}

TEST(ArithmeticTest, Round) {
  auto v = F64({1.2345, -1.675});
  auto r2 = Round(v, 2).ValueOrDie();
  EXPECT_DOUBLE_EQ(r2->float64_data()[0], 1.23);
  auto r0 = Round(v, 0).ValueOrDie();
  EXPECT_DOUBLE_EQ(r0->float64_data()[1], -2.0);
  auto ints = I64({3});
  EXPECT_EQ(Round(ints, 2).ValueOrDie().get(), ints.get());
  EXPECT_FALSE(Round(Str({"x"}), 1).ok());
}

// --- pivot ---

TEST(PivotTest, MeanByDefault) {
  auto t = MakeTable({{"season", Str({"S", "S", "W", "W", "S"})},
                      {"sport", Str({"run", "swim", "ski", "ski", "run"})},
                      {"w", F64({70, 60, 80, 90, 72})}});
  auto out = PivotTable(t, "season", "sport", "w").ValueOrDie();
  ASSERT_EQ(out->num_rows(), 2);
  EXPECT_DOUBLE_EQ(out->GetColumn("w_run").ValueOrDie()->float64_data()[0], 71.0);
  EXPECT_DOUBLE_EQ(out->GetColumn("w_ski").ValueOrDie()->float64_data()[1], 85.0);
  // Empty combination (W, run) is null.
  EXPECT_TRUE(out->GetColumn("w_run").ValueOrDie()->IsNull(1));
}

TEST(PivotTest, CountAndSum) {
  auto t = MakeTable({{"r", I64({1, 1, 2})},
                      {"c", Str({"a", "a", "b"})},
                      {"v", I64({5, 7, 9})}});
  auto count = PivotTable(t, "r", "c", "v", AggKind::kCount).ValueOrDie();
  EXPECT_DOUBLE_EQ(count->GetColumn("v_a").ValueOrDie()->float64_data()[0], 2.0);
  auto sum = PivotTable(t, "r", "c", "v", AggKind::kSum).ValueOrDie();
  EXPECT_DOUBLE_EQ(sum->GetColumn("v_a").ValueOrDie()->float64_data()[0], 12.0);
  EXPECT_FALSE(PivotTable(t, "r", "c", "c").ok());  // non-numeric values
}

// --- apply ---

TEST(ApplyTest, RowFunction) {
  auto t = MakeTable({{"a", I64({1, 2})}, {"b", I64({10, 20})}});
  RowFn fn = [](const col::Table& table, int64_t row) -> Result<Scalar> {
    return Scalar::Int(table.column(0)->int64_data()[row] +
                       table.column(1)->int64_data()[row]);
  };
  auto out = ApplyRows(t, fn, TypeId::kInt64).ValueOrDie();
  EXPECT_EQ(out->int64_data()[0], 11);
  EXPECT_EQ(out->int64_data()[1], 22);
}

TEST(ApplyTest, ParallelMatchesSerial) {
  col::Int64Builder b;
  for (int i = 0; i < 30000; ++i) b.Append(i);
  auto t = MakeTable({{"a", b.Finish().ValueOrDie()}});
  RowFn fn = [](const col::Table& table, int64_t row) -> Result<Scalar> {
    int64_t v = table.column(0)->int64_data()[row];
    return v % 7 == 0 ? Scalar::Null() : Scalar::Int(v * 2);
  };
  auto serial = ApplyRows(t, fn, TypeId::kInt64).ValueOrDie();
  sim::ParallelOptions opts;
  opts.max_workers = 5;
  auto parallel = ApplyRowsParallel(t, fn, TypeId::kInt64, opts).ValueOrDie();
  ASSERT_EQ(serial->length(), parallel->length());
  for (int64_t i = 0; i < serial->length(); ++i) {
    ASSERT_EQ(serial->IsNull(i), parallel->IsNull(i));
    if (!serial->IsNull(i)) {
      ASSERT_EQ(serial->int64_data()[i], parallel->int64_data()[i]);
    }
  }
}

TEST(ApplyTest, ErrorPropagates) {
  auto t = MakeTable({{"a", I64({1})}});
  RowFn fn = [](const col::Table&, int64_t) -> Result<Scalar> {
    return Status::Invalid("user function failed");
  };
  EXPECT_FALSE(ApplyRows(t, fn, TypeId::kInt64).ok());
}

}  // namespace
}  // namespace bento::kern
