#include "engines/pipeline_driver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engines/chunk_stream.h"
#include "obs/metrics.h"
#include "sim/machine.h"
#include "tests/test_util.h"
#include "util/random.h"

// Property suite for the morsel-driven pipeline stage and the background
// prefetch stage: claim-order delivery regardless of completion order,
// errors surfacing at their stream position, bounded in-flight chunks,
// clean early destruction, and prefetch buffers charging the MemoryPool so
// readahead obeys the session budget.

namespace bento::eng {
namespace {

using col::TablePtr;
using test::I64;
using test::MakeTable;

/// One chunk holding `values[i]` per row plus its index, so the reassembled
/// stream is checkable row by row.
TablePtr Chunk(const std::vector<int64_t>& values) {
  std::vector<int64_t> index(values.size());
  for (size_t i = 0; i < values.size(); ++i) index[i] = static_cast<int64_t>(i);
  return MakeTable({{"v", I64(values)}, {"i", I64(index)}});
}

/// Ragged chunk list: mixed sizes, empty chunks in the middle, empty tail.
std::vector<TablePtr> RaggedChunks(uint64_t seed, int n_chunks) {
  Rng rng(seed);
  std::vector<TablePtr> chunks;
  for (int c = 0; c < n_chunks; ++c) {
    int64_t rows = rng.UniformInt(0, 40);
    if (c == n_chunks - 1 || c == n_chunks / 2) rows = 0;  // empty mid + tail
    std::vector<int64_t> values;
    for (int64_t r = 0; r < rows; ++r) {
      values.push_back(rng.UniformInt(-1000, 1000));
    }
    chunks.push_back(Chunk(values));
  }
  return chunks;
}

/// The map under test: a real per-chunk transform (v -> v * 2 + seq tag)
/// with a completion-order scrambler — earlier chunks sleep longer, so with
/// several workers chunk k+1 routinely finishes before chunk k and the
/// reorder buffer must restore claim order.
ParallelPipelineDriver::MapFn ScrambledDouble() {
  return [](TablePtr chunk, int64_t seq) -> Result<TablePtr> {
    std::this_thread::sleep_for(
        std::chrono::microseconds(seq % 4 == 0 ? 800 : 50));
    BENTO_ASSIGN_OR_RETURN(auto v, chunk->GetColumn("v"));
    col::Int64Builder b;
    b.Reserve(v->length());
    for (int64_t i = 0; i < v->length(); ++i) {
      b.Append(v->int64_data()[i] * 2 + seq);
    }
    BENTO_ASSIGN_OR_RETURN(auto doubled, b.Finish());
    return chunk->SetColumn("v", std::move(doubled));
  };
}

TEST(ParallelPipelineDriverTest, OrderedSinkMatchesSerialAcrossWorkers) {
  const auto chunks = RaggedChunks(/*seed=*/7, /*n_chunks=*/24);

  // Serial reference: the same map applied inline in stream order.
  std::vector<TablePtr> expected;
  {
    auto map = ScrambledDouble();
    for (size_t c = 0; c < chunks.size(); ++c) {
      expected.push_back(
          map(chunks[c], static_cast<int64_t>(c)).ValueOrDie());
    }
  }

  for (int workers : {1, 2, 4, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    VectorChunkStream inner(chunks);
    PipelineOptions options;
    options.workers = workers;
    ParallelPipelineDriver driver(&inner, ScrambledDouble(), options);
    size_t out = 0;
    while (true) {
      auto chunk = driver.Next();
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (chunk.ValueOrDie() == nullptr) break;
      ASSERT_LT(out, expected.size());
      test::ExpectTablesEqual(expected[out], chunk.ValueOrDie());
      ++out;
    }
    EXPECT_EQ(out, expected.size());
    EXPECT_EQ(driver.chunks_claimed(),
              static_cast<int64_t>(chunks.size()));
    // Drained stream stays drained.
    auto again = driver.Next();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.ValueOrDie(), nullptr);
  }
}

TEST(ParallelPipelineDriverTest, ErrorSurfacesAtItsStreamPosition) {
  const auto chunks = RaggedChunks(/*seed=*/11, /*n_chunks=*/16);
  constexpr int64_t kBadSeq = 5;

  for (int workers : {1, 2, 4, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    VectorChunkStream inner(chunks);
    PipelineOptions options;
    options.workers = workers;
    ParallelPipelineDriver driver(
        &inner,
        [](TablePtr chunk, int64_t seq) -> Result<TablePtr> {
          std::this_thread::sleep_for(
              std::chrono::microseconds(seq == kBadSeq ? 500 : 20));
          if (seq == kBadSeq) return Status::Invalid("poisoned chunk");
          return chunk;
        },
        options);
    // Chunks before the poisoned one are delivered intact...
    for (int64_t seq = 0; seq < kBadSeq; ++seq) {
      auto chunk = driver.Next();
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      ASSERT_NE(chunk.ValueOrDie(), nullptr);
      test::ExpectTablesEqual(chunks[static_cast<size_t>(seq)],
                              chunk.ValueOrDie());
    }
    // ...and the failure arrives exactly where the serial loop would put it.
    auto bad = driver.Next();
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().ToString().find("poisoned chunk"), std::string::npos)
        << bad.status().ToString();
    // The stream is terminal after an error.
    auto after = driver.Next();
    ASSERT_FALSE(after.ok());
  }
}

TEST(ParallelPipelineDriverTest, EarlyDestructionJoinsWorkersCleanly) {
  for (int round = 0; round < 8; ++round) {
    const auto chunks = RaggedChunks(/*seed=*/100 + round, /*n_chunks=*/64);
    VectorChunkStream inner(chunks);
    PipelineOptions options;
    options.workers = 4;
    ParallelPipelineDriver driver(
        &inner,
        [](TablePtr chunk, int64_t) -> Result<TablePtr> {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          return chunk;
        },
        options);
    for (int k = 0; k <= round % 3; ++k) {
      auto chunk = driver.Next();
      ASSERT_TRUE(chunk.ok());
    }
    // Destructor must cancel in-flight claims and join without hanging.
  }
}

TEST(ParallelPipelineDriverTest, ConcurrentMapsNeverExceedWorkerCount) {
  const auto chunks = RaggedChunks(/*seed=*/31, /*n_chunks=*/48);
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    std::atomic<int> inflight{0};
    std::atomic<int> high_water{0};
    VectorChunkStream inner(chunks);
    PipelineOptions options;
    options.workers = workers;
    ParallelPipelineDriver driver(
        &inner,
        [&](TablePtr chunk, int64_t) -> Result<TablePtr> {
          const int now = inflight.fetch_add(1) + 1;
          int seen = high_water.load();
          while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          inflight.fetch_sub(1);
          return chunk;
        },
        options);
    while (true) {
      auto chunk = driver.Next();
      ASSERT_TRUE(chunk.ok());
      if (chunk.ValueOrDie() == nullptr) break;
    }
    EXPECT_GE(high_water.load(), 1);
    EXPECT_LE(high_water.load(), workers);
  }
}

/// Inner stream that allocates a fresh table per chunk (so buffer bytes are
/// charged to whatever pool is installed on the PULLING thread) after an
/// optional delay — the stand-in for a CSV parse / BCF decode.
class AllocatingStream : public ChunkStream {
 public:
  AllocatingStream(int n_chunks, int64_t rows, int delay_us)
      : n_chunks_(n_chunks), rows_(rows), delay_us_(delay_us) {}

  Result<TablePtr> Next() override {
    if (produced_ >= n_chunks_) return TablePtr(nullptr);
    if (delay_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
    }
    const int64_t base = static_cast<int64_t>(produced_) * rows_;
    col::Int64Builder b;
    b.Reserve(rows_);
    for (int64_t i = 0; i < rows_; ++i) b.Append(base + i);
    BENTO_ASSIGN_OR_RETURN(auto v, b.Finish());
    ++produced_;
    return MakeTable({{"v", std::move(v)}});
  }

 private:
  int n_chunks_;
  int64_t rows_;
  int delay_us_;
  int produced_ = 0;
};

TEST(PrefetchChunkStreamTest, PreservesContentAndCountsStalls) {
  static obs::Counter* stalls =
      obs::MetricsRegistry::Global().counter("pipeline.prefetch.stalls");
  const uint64_t stalls_before = stalls->value();

  // Producer slower than consumer: every pull should find the queue empty
  // at least sometimes, exercising the stall path.
  PrefetchChunkStream stream(
      std::make_unique<AllocatingStream>(/*n_chunks=*/20, /*rows=*/128,
                                         /*delay_us=*/300),
      /*depth=*/2);
  AllocatingStream reference(/*n_chunks=*/20, /*rows=*/128, /*delay_us=*/0);
  int chunks = 0;
  while (true) {
    auto got = stream.Next();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = reference.Next();
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got.ValueOrDie() == nullptr, want.ValueOrDie() == nullptr);
    if (got.ValueOrDie() == nullptr) break;
    test::ExpectTablesEqual(want.ValueOrDie(), got.ValueOrDie());
    ++chunks;
  }
  EXPECT_EQ(chunks, 20);
  EXPECT_GT(stalls->value(), stalls_before);
}

TEST(PrefetchChunkStreamTest, ChargesPoolAndBackpressureKeepsPeakUnderBudget) {
  // Each chunk is ~rows * 8 bytes of int64 data. Budget six chunks; a
  // depth-16 readahead without backpressure would blow straight through it
  // (Reserve fails hard over budget), so completing cleanly under the
  // budget proves both that prefetch buffers charge the session pool and
  // that the headroom rule throttles the producer.
  constexpr int64_t kRows = 64 * 1024;
  const uint64_t chunk_bytes = static_cast<uint64_t>(kRows) * 8;
  sim::MachineSpec tight{"tight", 4, chunk_bytes * 6, std::nullopt};
  sim::Session session(tight);

  PrefetchChunkStream stream(
      std::make_unique<AllocatingStream>(/*n_chunks=*/32, kRows,
                                         /*delay_us=*/0),
      /*depth=*/16);
  // Let the producer race ahead before consuming at all: readahead must
  // accumulate several charged chunks, but never more than the headroom
  // rule admits. Polling peak_bytes (instead of pacing the consumer with a
  // fixed sleep) keeps the test deterministic under sanitizers and on
  // single-core hosts, where the producer may need arbitrarily long per
  // chunk.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (session.host_pool()->peak_bytes() <= chunk_bytes &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  int64_t total_rows = 0;
  while (true) {
    auto chunk = stream.Next();
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (chunk.ValueOrDie() == nullptr) break;
    total_rows += chunk.ValueOrDie()->num_rows();
  }
  EXPECT_EQ(total_rows, 32 * kRows);
  EXPECT_GT(session.host_pool()->peak_bytes(), chunk_bytes)
      << "readahead must hold multiple charged chunks";
  EXPECT_LE(session.host_pool()->peak_bytes(), session.host_pool()->budget());
}

TEST(PrefetchChunkStreamTest, EarlyDestructionStopsProducer) {
  for (int round = 0; round < 4; ++round) {
    PrefetchChunkStream stream(
        std::make_unique<AllocatingStream>(/*n_chunks=*/64, /*rows=*/256,
                                           /*delay_us=*/100),
        /*depth=*/4);
    auto chunk = stream.Next();
    ASSERT_TRUE(chunk.ok());
    // Destructor cancels and joins the producer mid-stream.
  }
}

TEST(TableChunkStreamTest, AlignedSlicesChargeNoRowData) {
  sim::MachineSpec m{"m", 4, 1ULL << 30, std::nullopt};
  sim::Session session(m);

  // Nulls force validity bitmaps, strings force offset+chars buffers: the
  // full buffer menagerie must come back as views.
  Rng rng(55);
  col::Int64Builder a;
  col::Float64Builder b;
  col::StringBuilder s;
  for (int64_t i = 0; i < 4096; ++i) {
    a.AppendMaybe(rng.UniformInt(-100, 100), !rng.Bernoulli(0.1));
    b.AppendMaybe(static_cast<double>(i), !rng.Bernoulli(0.2));
    s.Append("row_" + std::to_string(i % 97));
  }
  auto table = MakeTable({{"a", a.Finish().ValueOrDie()},
                          {"b", b.Finish().ValueOrDie()},
                          {"s", s.Finish().ValueOrDie()}});

  const uint64_t before = session.host_pool()->bytes_allocated();
  {
    // 256 is byte-aligned (256 % 64 == 0): all buffers shared, zero charge.
    TableChunkStream stream(table, 256);
    std::vector<TablePtr> held;  // hold every chunk alive simultaneously
    while (true) {
      auto chunk = stream.Next().ValueOrDie();
      if (chunk == nullptr) break;
      held.push_back(std::move(chunk));
    }
    EXPECT_EQ(held.size(), 16u);
    EXPECT_EQ(session.host_pool()->bytes_allocated(), before)
        << "aligned slices must be zero-copy views";
  }

  {
    // A mid-byte chunk size may repack only the n/8-byte validity bitmaps —
    // never the row data (8-byte values, variable-width strings).
    TableChunkStream stream(table, 100);
    std::vector<TablePtr> held;
    while (true) {
      auto chunk = stream.Next().ValueOrDie();
      if (chunk == nullptr) break;
      held.push_back(std::move(chunk));
    }
    const uint64_t growth = session.host_pool()->bytes_allocated() - before;
    EXPECT_LT(growth, table->ByteSize() / 8)
        << "misaligned slices may repack validity only";
  }
}

/// End-to-end stage sanity: a parallel stage over a TableChunkStream with a
/// widening map stays bit-identical to serial while the source slices stay
/// zero-copy (the two properties composing).
TEST(ParallelPipelineDriverTest, StageOverTableSlicesMatchesSerial) {
  Rng rng(77);
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 10000; ++i) values.push_back(rng.UniformInt(0, 999));
  auto table = Chunk(values);

  auto run = [&](int workers) -> std::vector<TablePtr> {
    TableChunkStream source(table, 512);
    PipelineOptions options;
    options.workers = workers;
    ParallelPipelineDriver driver(&source, ScrambledDouble(), options);
    std::vector<TablePtr> out;
    while (true) {
      auto chunk = driver.Next().ValueOrDie();
      if (chunk == nullptr) break;
      out.push_back(std::move(chunk));
    }
    return out;
  };

  const auto serial = run(1);
  for (int workers : {2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const auto parallel = run(workers);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t c = 0; c < serial.size(); ++c) {
      test::ExpectTablesEqual(serial[c], parallel[c]);
    }
  }
}

}  // namespace
}  // namespace bento::eng
