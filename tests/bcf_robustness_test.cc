#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "io/bcf.h"
#include "io/compress.h"
#include "tests/test_util.h"
#include "util/random.h"

// Robustness of the BCF reader against damaged files — truncation, bad
// magic, corrupt row-group headers — and a differential lock that the mmap
// zero-copy path decodes every layout exactly like the buffered path.

namespace bento::io {
namespace {

using col::TablePtr;
using test::MakeTable;

class MmapEnvGuard {
 public:
  explicit MmapEnvGuard(const char* value) {
    if (value != nullptr) {
      setenv("BENTO_BCF_MMAP", value, 1);
    } else {
      unsetenv("BENTO_BCF_MMAP");
    }
  }
  ~MmapEnvGuard() { unsetenv("BENTO_BCF_MMAP"); }
};

std::string TempPath(const char* tag) {
  return "/tmp/bento_bcf_robust_" + std::to_string(::getpid()) + "_" + tag +
         ".bcf";
}

TablePtr SampleTable(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  col::Int64Builder i;
  col::Float64Builder f;
  col::StringBuilder s;
  col::BoolBuilder b;
  for (int64_t r = 0; r < rows; ++r) {
    i.AppendMaybe(rng.UniformInt(-5000, 5000), !rng.Bernoulli(0.1));
    f.AppendMaybe(rng.UniformDouble(-10, 10), !rng.Bernoulli(0.2));
    s.AppendMaybe("v" + std::to_string(rng.UniformInt(0, 30)),
                  !rng.Bernoulli(0.05));
    b.AppendMaybe(rng.Bernoulli(0.5), !rng.Bernoulli(0.1));
  }
  return MakeTable({{"i", i.Finish().ValueOrDie()},
                    {"f", f.Finish().ValueOrDie()},
                    {"s", s.Finish().ValueOrDie()},
                    {"b", b.Finish().ValueOrDie()}});
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(ftell(f)));
  fseek(f, 0, SEEK_SET);
  EXPECT_EQ(fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  fclose(f);
}

/// Splits a valid BCF image into (data pages, footer JSON); rebuilds a valid
/// image around a mutated footer so header-level corruption can be injected
/// without breaking the framing.
struct SplitFile {
  std::vector<uint8_t> data;  // "BCF1" + pages
  std::string footer;
};

SplitFile SplitBcf(const std::vector<uint8_t>& bytes) {
  SplitFile out;
  uint64_t footer_len = 0;
  std::memcpy(&footer_len, bytes.data() + bytes.size() - 12, 8);
  const size_t footer_at = bytes.size() - 12 - footer_len;
  out.data.assign(bytes.begin(), bytes.begin() + footer_at);
  out.footer.assign(bytes.begin() + footer_at,
                    bytes.begin() + footer_at + footer_len);
  return out;
}

std::vector<uint8_t> JoinBcf(const SplitFile& split) {
  std::vector<uint8_t> bytes = split.data;
  bytes.insert(bytes.end(), split.footer.begin(), split.footer.end());
  const uint64_t footer_len = split.footer.size();
  const size_t at = bytes.size();
  bytes.resize(at + 8);
  std::memcpy(bytes.data() + at, &footer_len, 8);
  const char magic[4] = {'B', 'C', 'F', '1'};
  bytes.insert(bytes.end(), magic, magic + 4);
  return bytes;
}

/// Replaces the digits following the first `"<key>":` with `digits`.
void PatchFooterInt(std::string* footer, const std::string& key,
                    const std::string& digits) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = footer->find(needle);
  ASSERT_NE(at, std::string::npos) << key;
  size_t end = at + needle.size();
  while (end < footer->size() &&
         (isdigit((*footer)[end]) || (*footer)[end] == '-')) {
    ++end;
  }
  footer->replace(at + needle.size(), end - (at + needle.size()), digits);
}

void ExpectOpenFailsBothModes(const std::string& path) {
  for (bool use_mmap : {false, true}) {
    BcfReadOptions options;
    options.use_mmap = use_mmap;
    auto reader = BcfReader::Open(path, options);
    EXPECT_FALSE(reader.ok()) << path << " mmap=" << use_mmap;
  }
}

class BcfRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = SampleTable(2000, 77);
    path_ = TempPath("base");
    BcfWriteOptions options;
    options.row_group_rows = 300;
    options.align_pages = true;
    options.compression = false;
    ASSERT_OK(WriteBcf(table_, path_, options));
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 32u);
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mutant_.c_str());
  }

  /// Writes `bytes` to the mutant path and returns it.
  const std::string& Mutant(const std::vector<uint8_t>& bytes) {
    mutant_ = TempPath("mutant");
    WriteFileBytes(mutant_, bytes);
    return mutant_;
  }

  TablePtr table_;
  std::string path_;
  std::string mutant_;
  std::vector<uint8_t> bytes_;
};

TEST_F(BcfRobustnessTest, TruncatedFilesRejectedCleanly) {
  // Every truncation class: below the minimum frame, inside the pages,
  // inside the footer, and one byte short of the tail magic.
  for (size_t keep :
       {size_t{0}, size_t{3}, size_t{15}, bytes_.size() / 2,
        bytes_.size() - 20, bytes_.size() - 1}) {
    SCOPED_TRACE(keep);
    ExpectOpenFailsBothModes(
        Mutant(std::vector<uint8_t>(bytes_.begin(),
                                    bytes_.begin() + keep)));
  }
}

TEST_F(BcfRobustnessTest, BadMagicRejected) {
  auto head = bytes_;
  head[0] = 'X';
  ExpectOpenFailsBothModes(Mutant(head));

  auto tail = bytes_;
  tail[tail.size() - 1] = 'X';
  ExpectOpenFailsBothModes(Mutant(tail));
}

TEST_F(BcfRobustnessTest, OversizedFooterLengthRejected) {
  auto bytes = bytes_;
  const uint64_t huge = bytes.size() * 16;
  std::memcpy(bytes.data() + bytes.size() - 12, &huge, 8);
  ExpectOpenFailsBothModes(Mutant(bytes));
}

TEST_F(BcfRobustnessTest, CorruptRowGroupHeaderRejected) {
  // Value-page offset pointing past the data region.
  {
    SplitFile split = SplitBcf(bytes_);
    PatchFooterInt(&split.footer, "do", "4009999999");
    ExpectOpenFailsBothModes(Mutant(JoinBcf(split)));
  }
  // Value-page size overflowing the data region.
  {
    SplitFile split = SplitBcf(bytes_);
    PatchFooterInt(&split.footer, "ds", "4009999999");
    ExpectOpenFailsBothModes(Mutant(JoinBcf(split)));
  }
  // Encoding id outside the enum.
  {
    SplitFile split = SplitBcf(bytes_);
    PatchFooterInt(&split.footer, "enc", "9");
    ExpectOpenFailsBothModes(Mutant(JoinBcf(split)));
  }
  // Footer that is not JSON at all.
  {
    SplitFile split = SplitBcf(bytes_);
    split.footer = std::string(split.footer.size(), '@');
    ExpectOpenFailsBothModes(Mutant(JoinBcf(split)));
  }
}

TEST_F(BcfRobustnessTest, MmapAndBufferedReadsAreIdentical) {
  // Sweep every layout class: aligned/unaligned pages x compressed/plain.
  // Aligned uncompressed pages take the zero-copy path; everything else
  // falls back to buffered decode inside the same reader.
  for (bool align : {false, true}) {
    for (bool compress : {false, true}) {
      SCOPED_TRACE("align=" + std::to_string(align) +
                   " compress=" + std::to_string(compress));
      const std::string path = TempPath("layout");
      BcfWriteOptions wopts;
      wopts.row_group_rows = 450;
      wopts.align_pages = align;
      wopts.compression = compress;
      ASSERT_OK(WriteBcf(table_, path, wopts));

      BcfReadOptions buffered;
      auto plain = BcfReader::Open(path, buffered).ValueOrDie();
      EXPECT_FALSE(plain->mmap_active());

      BcfReadOptions mapped;
      mapped.use_mmap = true;
      auto mm = BcfReader::Open(path, mapped).ValueOrDie();
      EXPECT_TRUE(mm->mmap_active());

      test::ExpectTablesEqual(plain->ReadAll().ValueOrDie(),
                              mm->ReadAll().ValueOrDie());
      test::ExpectTablesEqual(table_, mm->ReadAll().ValueOrDie());
      // Projected per-group reads agree too.
      for (int g = 0; g < mm->num_row_groups(); ++g) {
        test::ExpectTablesEqual(
            plain->ReadRowGroup(g, {"i", "s"}).ValueOrDie(),
            mm->ReadRowGroup(g, {"i", "s"}).ValueOrDie());
      }
      std::remove(path.c_str());
    }
  }
}

TEST_F(BcfRobustnessTest, DoneWithGroupKeepsDataReadable) {
  BcfReadOptions options;
  options.use_mmap = true;
  auto reader = BcfReader::Open(path_, options).ValueOrDie();
  ASSERT_TRUE(reader->mmap_active());
  ASSERT_GE(reader->num_row_groups(), 2);

  auto first = reader->ReadRowGroup(0).ValueOrDie();
  reader->DoneWithGroup(0);
  reader->DoneWithGroup(-1);   // out of range: no-op
  reader->DoneWithGroup(999);  // out of range: no-op
  // Dropped pages fault back in: the group re-reads bit-identically, and
  // zero-copy views handed out before the advise stay valid.
  auto again = reader->ReadRowGroup(0).ValueOrDie();
  test::ExpectTablesEqual(first, again);
  test::ExpectTablesEqual(first, reader->ReadRowGroup(0).ValueOrDie());
}

TEST_F(BcfRobustnessTest, ZeroCopyViewsOutliveTheReader) {
  BcfReadOptions options;
  options.use_mmap = true;
  TablePtr held;
  {
    auto reader = BcfReader::Open(path_, options).ValueOrDie();
    ASSERT_TRUE(reader->mmap_active());
    held = reader->ReadAll().ValueOrDie();
  }
  // The mapping is co-owned by the column buffers; destroying the reader
  // must not unmap bytes still referenced by `held`.
  test::ExpectTablesEqual(table_, held);
}

TEST(LzRegressionTest, WindowEdgeMatchRoundTrips) {
  // 64 KiB of random bytes repeated twice: thousands of positions in the
  // second copy match exactly one window back. A compressor that accepts
  // distance == 64 KiB wraps the 16-bit distance to 0 and the stream fails
  // to decode (hit in the wild by >64 KiB row-group pages).
  Rng rng(123);
  std::vector<uint8_t> half(64 * 1024);
  for (uint8_t& b : half) b = static_cast<uint8_t>(rng.Uniform(256));
  std::vector<uint8_t> data = half;
  data.insert(data.end(), half.begin(), half.end());

  auto packed = LzCompress(data.data(), data.size());
  auto unpacked =
      LzDecompress(packed.data(), packed.size(), data.size()).ValueOrDie();
  EXPECT_EQ(unpacked, data);
}

TEST_F(BcfRobustnessTest, MmapEnvOverridesOption) {
  {
    MmapEnvGuard guard("off");
    BcfReadOptions options;
    options.use_mmap = true;
    auto reader = BcfReader::Open(path_, options).ValueOrDie();
    EXPECT_FALSE(reader->mmap_active());
  }
  {
    MmapEnvGuard guard("1");
    auto reader = BcfReader::Open(path_).ValueOrDie();
    EXPECT_TRUE(reader->mmap_active());
    test::ExpectTablesEqual(table_, reader->ReadAll().ValueOrDie());
  }
}

}  // namespace
}  // namespace bento::io
