// Golden plan-snapshot tests for the rule-based optimizer: each rewrite
// rule gets a before/after Explain() comparison plus negative cases proving
// the rule does NOT fire when the rewrite would be unsound. Includes the
// regression for the predicate-pushdown soundness hole (a filter must not
// hop before a drop of a column it references — that would mask a
// KeyError the unoptimized plan raises).
#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "engines/lazy_engine.h"
#include "frame/engine.h"
#include "plan/logical_plan.h"
#include "plan/rules.h"
#include "sim/machine.h"
#include "tests/test_util.h"

namespace bento::plan {
namespace {

using col::Scalar;
using col::TypeId;
using frame::Op;
using frame::OpKind;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

/// Runs the full-policy driver (no engine context) and returns the explain
/// dump of the result.
std::string OptimizeAndExplain(std::vector<Op> ops) {
  LogicalPlan plan;
  plan.ops = std::move(ops);
  const RuleDriver driver{OptimizerPolicy{}};
  plan = driver.Run(std::move(plan), PlanContext{});
  return Explain(plan.ops);
}

TEST(ExplainTest, RendersOneOpPerLine) {
  EXPECT_EQ(Explain({Op::Query("age >= 20"), Op::Cast("year", TypeId::kFloat64),
                     Op::DropColumns({"games", "event"})}),
            "query[age >= 20]\n"
            "astype[year -> float64]\n"
            "drop[games, event]\n");
  EXPECT_EQ(Explain({Op::SortValues({{"height", true}, {"age", false}}),
                     Op::GroupByAgg({"team"}, {{"weight", kern::AggKind::kSum,
                                                "w"}})}),
            "sort[height asc, age desc]\n"
            "groupby[team | w = sum(weight)]\n");
}

// --- predicate pushdown ------------------------------------------------------

TEST(PredicatePushdownTest, FilterBubblesPastColumnMaps) {
  EXPECT_EQ(OptimizeAndExplain({Op::StrLower("team"), Op::Round("height", 1),
                                Op::Query("age >= 20")}),
            "query[age >= 20]\n"
            "lower[team]\n"
            "round[height, 1]\n");
}

TEST(PredicatePushdownTest, BlockedByColumnDependency) {
  // The filter reads the column the op rewrites: no hop.
  EXPECT_EQ(OptimizeAndExplain(
                {Op::Round("age", 0), Op::Query("age >= 20")}),
            "round[age, 0]\n"
            "query[age >= 20]\n");
}

TEST(PredicatePushdownTest, BlockedByCatCodes) {
  // Categorical codes depend on first appearance among remaining rows;
  // filtering first would change code assignment.
  EXPECT_EQ(OptimizeAndExplain({Op::CatCodes("team"), Op::Query("age >= 20")}),
            "catenc[team]\n"
            "query[age >= 20]\n");
}

// Regression: the seed optimizer let every filter hop before kDropColumns
// unconditionally, so `drop(c); query(c ...)` — a KeyError in the written
// plan — silently became `query(c ...); drop(c)` and succeeded.
TEST(PredicatePushdownTest, RegressionFilterMustNotCrossDropOfItsColumn) {
  EXPECT_EQ(OptimizeAndExplain(
                {Op::DropColumns({"games"}), Op::Query("games > 2000")}),
            "drop[games]\n"
            "query[games > 2000]\n");
  // Unrelated drops still commute — via projection pushdown pulling the
  // drop outermost (filters deliberately never hop drops themselves, so
  // the two rules cannot ping-pong).
  EXPECT_EQ(OptimizeAndExplain(
                {Op::Query("games > 2000"), Op::DropColumns({"event"})}),
            "drop[event]\n"
            "query[games > 2000]\n");
  EXPECT_EQ(OptimizeAndExplain(
                {Op::DropColumns({"event"}), Op::Query("games > 2000")}),
            "drop[event]\n"
            "query[games > 2000]\n");
}

TEST(QueryCanHopBeforeTest, DropColumnsIntersectionRule) {
  const Op query = Op::Query("games > 2000");
  const std::set<std::string> refs = QueryReferences(query);
  EXPECT_FALSE(QueryCanHopBefore(query, Op::DropColumns({"games"}), refs));
  EXPECT_FALSE(
      QueryCanHopBefore(query, Op::DropColumns({"event", "games"}), refs));
  EXPECT_TRUE(QueryCanHopBefore(query, Op::DropColumns({"event"}), refs));
}

// End-to-end: the lazy-optimized engine must raise the same KeyError the
// eager reference raises for a filter over a dropped column.
TEST(PredicatePushdownTest, RegressionDroppedColumnFilterStillErrors) {
  sim::Session session(sim::MachineSpec::Server());
  const col::TablePtr table = MakeTable(
      {{"games", I64({1896, 2016})}, {"height", F64({1.7, 1.9})}});
  for (const char* id : {"polars", "spark_sql", "pandas"}) {
    SCOPED_TRACE(id);
    ASSERT_OK_AND_ASSIGN(auto engine, frame::CreateEngine(id));
    ASSERT_OK_AND_ASSIGN(auto frame, engine->FromTable(table));
    ASSERT_OK_AND_ASSIGN(frame, frame->Apply(Op::DropColumns({"games"})));
    auto applied = frame->Apply(Op::Query("games > 1900"));
    const Status status =
        applied.ok() ? applied.ValueOrDie()->Collect().status()
                     : applied.status();
    EXPECT_TRUE(status.IsKeyError()) << status.ToString();
  }
}

// --- projection pushdown -----------------------------------------------------

TEST(ProjectionPushdownTest, DropBubblesPastUnrelatedOps) {
  EXPECT_EQ(OptimizeAndExplain(
                {Op::Round("height", 1), Op::DropColumns({"team"})}),
            "drop[team]\n"
            "round[height, 1]\n");
}

TEST(ProjectionPushdownTest, BlockedWhenOpTouchesDroppedColumn) {
  EXPECT_EQ(OptimizeAndExplain(
                {Op::Round("height", 1), Op::DropColumns({"height"})}),
            "round[height, 1]\n"
            "drop[height]\n");
}

// --- filter reordering over breakers ----------------------------------------

TEST(FilterReorderTest, KeyFilterHopsOverGroupBy) {
  EXPECT_EQ(OptimizeAndExplain(
                {Op::GroupByAgg({"team"}, {{"weight", kern::AggKind::kSum,
                                            "w"}}),
                 Op::Query("team == 'usa'")}),
            "query[team == 'usa']\n"
            "groupby[team | w = sum(weight)]\n");
}

TEST(FilterReorderTest, AggregateOutputFilterStaysPut) {
  // The filter reads the aggregate's output column, which does not exist
  // before the group-by.
  EXPECT_EQ(OptimizeAndExplain(
                {Op::GroupByAgg({"team"}, {{"weight", kern::AggKind::kSum,
                                            "w"}}),
                 Op::Query("w > 100")}),
            "groupby[team | w = sum(weight)]\n"
            "query[w > 100]\n");
  // Same with the default "<column>_<agg>" output name.
  EXPECT_EQ(OptimizeAndExplain(
                {Op::GroupByAgg({"team"}, {{"weight", kern::AggKind::kSum,
                                            ""}}),
                 Op::Query("weight_sum > 100")}),
            "groupby[team | weight_sum = sum(weight)]\n"
            "query[weight_sum > 100]\n");
}

TEST(FilterReorderTest, SharedKeyFilterHopsOverMerge) {
  sim::Session session(sim::MachineSpec::Server());
  ASSERT_OK_AND_ASSIGN(auto engine, frame::CreateEngine("polars"));
  const col::TablePtr regions =
      MakeTable({{"noc", Str({"USA", "GER"})}, {"region", Str({"a", "b"})}});
  ASSERT_OK_AND_ASSIGN(auto other, engine->FromTable(regions));

  EXPECT_EQ(OptimizeAndExplain({Op::Merge(other, "noc", "noc"),
                                Op::Query("noc == 'USA'")}),
            "query[noc == 'USA']\n"
            "merge[noc = noc, inner]\n");
  // Differently-named keys: the probe-side column name is ambiguous after
  // the join, so the filter stays put.
  EXPECT_EQ(OptimizeAndExplain({Op::Merge(other, "committee", "noc"),
                                Op::Query("committee == 'USA'")}),
            "merge[committee = noc, inner]\n"
            "query[committee == 'USA']\n");
  // A filter over a right-side payload column must not hop either.
  EXPECT_EQ(OptimizeAndExplain({Op::Merge(other, "noc", "noc"),
                                Op::Query("region == 'a'")}),
            "merge[noc = noc, inner]\n"
            "query[region == 'a']\n");
}

// --- preparator fusion -------------------------------------------------------

TEST(FusionTest, AdjacentFiltersCollapse) {
  EXPECT_EQ(OptimizeAndExplain(
                {Op::Query("age >= 20"), Op::Query("height < 2.0")}),
            "query[(age >= 20) and (height < 2.0)]\n");
}

TEST(FusionTest, SameColumnChainFuses) {
  EXPECT_EQ(OptimizeAndExplain({Op::FillNa("height", Scalar::Double(1.7)),
                                Op::Cast("height", TypeId::kFloat64),
                                Op::Round("height", 1)}),
            "fused[height: fillna; astype; round]\n");
}

TEST(FusionTest, DifferentColumnsDoNotFuse) {
  EXPECT_EQ(OptimizeAndExplain(
                {Op::Cast("height", TypeId::kFloat64), Op::StrLower("team")}),
            "astype[height -> float64]\n"
            "lower[team]\n");
}

TEST(FusionTest, BreakerInterruptsTheChain) {
  // A group-by between two maps over the same column keeps them apart
  // (fusion only collapses adjacent runs).
  EXPECT_EQ(OptimizeAndExplain(
                {Op::Round("weight", 1),
                 Op::GroupByAgg({"weight"}, {{"weight", kern::AggKind::kCount,
                                              "n"}}),
                 Op::Round("weight", 0)}),
            "round[weight, 1]\n"
            "groupby[weight | n = count(weight)]\n"
            "round[weight, 0]\n");
}

TEST(FusionTest, MeanFillDoesNotFuse) {
  // fillna-with-mean needs the whole-column mean; it stays a standalone op
  // (and a breaker for the streaming engines).
  EXPECT_EQ(OptimizeAndExplain(
                {Op::FillNaMean("height"), Op::Round("height", 1)}),
            "fillna[height = mean]\n"
            "round[height, 1]\n");
}

TEST(FusionTest, FusedChainExecutesLikeTheOriginal) {
  sim::Session session(sim::MachineSpec::Server());
  const col::TablePtr table = MakeTable(
      {{"v", F64({1.234, 5.678, 0.0}, {true, true, false})},
       {"k", I64({1, 2, 3})}});
  const std::vector<Op> ops = {Op::FillNa("v", Scalar::Double(9.0)),
                               Op::Round("v", 1)};
  for (const char* opt : {"polars", "polars_noopt"}) {
    SCOPED_TRACE(opt);
    ASSERT_OK_AND_ASSIGN(auto engine, frame::CreateEngine(opt));
    ASSERT_OK_AND_ASSIGN(auto frame, engine->FromTable(table));
    for (const Op& op : ops) {
      ASSERT_OK_AND_ASSIGN(frame, frame->Apply(op));
    }
    ASSERT_OK_AND_ASSIGN(auto got, frame->Collect());
    test::ExpectTablesEqual(
        MakeTable({{"v", F64({1.2, 5.7, 9.0})}, {"k", I64({1, 2, 3})}}), got);
  }
}

// --- dead / redundant op elimination ----------------------------------------

TEST(DeadOpTest, RepeatedDedupEliminated) {
  EXPECT_EQ(OptimizeAndExplain({Op::DropDuplicates(), Op::Query("age >= 20"),
                                Op::DropDuplicates()}),
            "dedup[*]\n"
            "query[age >= 20]\n");
  EXPECT_EQ(OptimizeAndExplain({Op::DropDuplicates({"noc", "season"}),
                                Op::DropDuplicates({"noc", "season"})}),
            "dedup[noc, season]\n");
}

TEST(DeadOpTest, DedupAfterGroupByEliminated) {
  // Group-by output is unique on its keys; a full-row dedup after it is a
  // no-op, as is a dedup on a superset of the keys drawn from the output.
  EXPECT_EQ(OptimizeAndExplain(
                {Op::GroupByAgg({"team"}, {{"weight", kern::AggKind::kSum,
                                            "w"}}),
                 Op::DropDuplicates()}),
            "groupby[team | w = sum(weight)]\n");
  EXPECT_EQ(OptimizeAndExplain(
                {Op::GroupByAgg({"team"}, {{"weight", kern::AggKind::kSum,
                                            "w"}}),
                 Op::DropDuplicates({"team", "w"})}),
            "groupby[team | w = sum(weight)]\n");
}

TEST(DeadOpTest, DedupSurvivesWhenNotProvenRedundant) {
  // Different subset: the second dedup may remove more rows.
  EXPECT_EQ(OptimizeAndExplain({Op::DropDuplicates({"noc"}),
                                Op::DropDuplicates({"season"})}),
            "dedup[noc]\n"
            "dedup[season]\n");
  // Value-changing op in between re-creates duplicates.
  EXPECT_EQ(OptimizeAndExplain({Op::DropDuplicates(), Op::Round("height", 0),
                                Op::DropDuplicates()}),
            "dedup[*]\n"
            "round[height, 0]\n"
            "dedup[*]\n");
  // Dedup referencing a column outside the group-by output must keep
  // raising its KeyError.
  EXPECT_EQ(OptimizeAndExplain(
                {Op::GroupByAgg({"team"}, {{"weight", kern::AggKind::kSum,
                                            "w"}}),
                 Op::DropDuplicates({"team", "height"})}),
            "groupby[team | w = sum(weight)]\n"
            "dedup[team, height]\n");
}

TEST(DeadOpTest, OverwrittenSortEliminated) {
  EXPECT_EQ(OptimizeAndExplain(
                {Op::SortValues({{"height", true}}), Op::Query("age >= 20"),
                 Op::SortValues({{"weight", true}, {"height", false}})}),
            "query[age >= 20]\n"
            "sort[weight asc, height desc]\n");
}

TEST(DeadOpTest, SortSurvivesWhenLaterSortHasFewerKeys) {
  // keys(A) ⊄ keys(B): A still orders B's ties.
  EXPECT_EQ(OptimizeAndExplain({Op::SortValues({{"height", true}}),
                                Op::SortValues({{"weight", true}})}),
            "sort[height asc]\n"
            "sort[weight asc]\n");
}

TEST(DeadOpTest, SortSurvivesWhenKeyColumnRewrittenBetween) {
  // Rounding the early key can collapse values the later sort then ties on
  // differently; the early sort still matters.
  EXPECT_EQ(OptimizeAndExplain(
                {Op::SortValues({{"height", true}}), Op::Round("height", 0),
                 Op::SortValues({{"weight", true}, {"height", true}})}),
            "sort[height asc]\n"
            "round[height, 0]\n"
            "sort[weight asc, height asc]\n");
}

TEST(DeadOpTest, AdjacentDisjointDropsMerge) {
  EXPECT_EQ(OptimizeAndExplain(
                {Op::DropColumns({"games"}), Op::DropColumns({"event"})}),
            "drop[games, event]\n");
  // Overlapping drops: the second op's KeyError must be preserved.
  EXPECT_EQ(OptimizeAndExplain(
                {Op::DropColumns({"games"}), Op::DropColumns({"games"})}),
            "drop[games]\n"
            "drop[games]\n");
}

// --- common-subplan elimination ---------------------------------------------

TEST(CommonSubplanTest, IdenticalMergeInputsShareOneFrame) {
  sim::Session session(sim::MachineSpec::Server());
  ASSERT_OK_AND_ASSIGN(auto engine, frame::CreateEngine("polars"));
  auto* lazy = dynamic_cast<eng::LazyEngineBase*>(engine.get());
  ASSERT_NE(lazy, nullptr);

  const col::TablePtr regions =
      MakeTable({{"noc", Str({"USA", "GER"})}, {"region", Str({"a", "b"})}});
  auto build_side = [&]() {
    auto frame = engine->FromTable(regions).ValueOrDie();
    return frame->Apply(Op::Query("noc == 'USA'")).ValueOrDie();
  };
  // Two structurally identical but distinct frames.
  auto left_input = build_side();
  auto right_input = build_side();
  ASSERT_NE(left_input.get(), right_input.get());

  std::vector<Op> optimized = lazy->Optimize(
      {Op::Merge(left_input, "noc", "noc"), Op::ApplyExpr("z", "height + 1"),
       Op::Merge(right_input, "noc", "noc")});
  ASSERT_EQ(optimized.size(), 3u);
  EXPECT_EQ(optimized[0].other.get(), optimized[2].other.get());
}

TEST(CommonSubplanTest, DifferentSubplansStayDistinct) {
  sim::Session session(sim::MachineSpec::Server());
  ASSERT_OK_AND_ASSIGN(auto engine, frame::CreateEngine("polars"));
  auto* lazy = dynamic_cast<eng::LazyEngineBase*>(engine.get());
  ASSERT_NE(lazy, nullptr);

  const col::TablePtr regions =
      MakeTable({{"noc", Str({"USA", "GER"})}, {"region", Str({"a", "b"})}});
  auto base = engine->FromTable(regions).ValueOrDie();
  auto filtered_a = base->Apply(Op::Query("noc == 'USA'")).ValueOrDie();
  auto filtered_b = base->Apply(Op::Query("noc == 'GER'")).ValueOrDie();

  std::vector<Op> optimized =
      lazy->Optimize({Op::Merge(filtered_a, "noc", "noc"),
                      Op::Merge(filtered_b, "noc", "noc")});
  ASSERT_EQ(optimized.size(), 2u);
  EXPECT_NE(optimized[0].other.get(), optimized[1].other.get());
}

// --- scan predicate extraction ----------------------------------------------

TEST(ScanPredicateTest, ExtractsNumericConjuncts) {
  auto preds = ExtractScanPredicates("age >= 20 and 2.0 > height");
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].column, "age");
  EXPECT_EQ(preds[0].cmp, io::ScanPredicate::Cmp::kGe);
  EXPECT_DOUBLE_EQ(preds[0].value, 20.0);
  EXPECT_EQ(preds[1].column, "height");
  EXPECT_EQ(preds[1].cmp, io::ScanPredicate::Cmp::kLt);
  EXPECT_DOUBLE_EQ(preds[1].value, 2.0);
}

TEST(ScanPredicateTest, SkipsNonPrunableShapes) {
  EXPECT_TRUE(ExtractScanPredicates("team == 'usa'").empty());
  EXPECT_TRUE(ExtractScanPredicates("age != 20").empty());
  EXPECT_TRUE(ExtractScanPredicates("age >= 20 or height < 2").empty());
  // The prunable half of a conjunction is still extracted.
  auto preds = ExtractScanPredicates("team == 'usa' and age == 30");
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].column, "age");
  EXPECT_EQ(preds[0].cmp, io::ScanPredicate::Cmp::kEq);
}

// --- policy gating -----------------------------------------------------------

TEST(PolicyTest, DisabledFamiliesDoNotFire) {
  OptimizerPolicy policy;
  policy.predicate_pushdown = false;
  policy.filter_reorder = false;
  LogicalPlan plan;
  plan.ops = {Op::StrLower("team"), Op::Query("age >= 20")};
  const RuleDriver driver(policy);
  plan = driver.Run(std::move(plan), PlanContext{});
  EXPECT_EQ(Explain(plan.ops),
            "lower[team]\n"
            "query[age >= 20]\n");
}

TEST(PolicyTest, NooptEngineRunsPlanAsWritten) {
  ASSERT_OK_AND_ASSIGN(auto engine, frame::CreateEngine("polars_noopt"));
  auto* lazy = dynamic_cast<eng::LazyEngineBase*>(engine.get());
  ASSERT_NE(lazy, nullptr);
  EXPECT_FALSE(lazy->optimizer_enabled());
  std::vector<Op> optimized =
      lazy->Optimize({Op::StrLower("team"), Op::Query("age >= 20")});
  ASSERT_EQ(optimized.size(), 2u);
  EXPECT_EQ(optimized[0].kind, OpKind::kStrLower);
  EXPECT_EQ(optimized[1].kind, OpKind::kQuery);
}

}  // namespace
}  // namespace bento::plan
