#ifndef BENTO_TESTS_TRACE_SCHEMA_H_
#define BENTO_TESTS_TRACE_SCHEMA_H_

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace bento::test {

/// What a Chrome trace_event document produced by obs::TraceToJson contained,
/// filled in by ValidateTraceDocument.
struct TraceStats {
  int span_count = 0;        ///< 'X' complete events
  int counter_samples = 0;   ///< 'C' counter samples
  int thread_metadata = 0;   ///< 'M' thread_name records
  int sampled_spans = 0;     ///< 'X' events carrying resource-counter args
  std::map<std::string, int> spans_by_category;
  std::set<std::string> counter_tracks;
  std::set<std::string> span_names;
};

namespace trace_schema_internal {

inline const std::set<std::string>& KnownCategories() {
  static const std::set<std::string> cats = {
      "io", "kernel", "engine", "stage", "preparator", "sim", "memory"};
  return cats;
}

/// One parsed 'X' event, for containment checks.
struct SpanRec {
  std::string name;
  std::string cat;
  int64_t tid = 0;
  double ts = 0.0;
  double dur = 0.0;
  bool Contains(const SpanRec& inner) const {
    // Timestamps are doubles rounded through JSON; allow 1us of slack.
    const double eps = 1.0;
    return inner.tid == tid && inner.ts >= ts - eps &&
           inner.ts + inner.dur <= ts + dur + eps;
  }
};

}  // namespace trace_schema_internal

/// Validates the structural schema of an obs trace document: a
/// {"traceEvents": [...]} object where every event is a well-formed 'X'
/// (complete span with a known category, non-negative dur, and a
/// non-negative virtual-duration arg), 'C' (counter sample with a numeric
/// value), or 'M' (thread_name metadata). Returns the first violation; on
/// success fills `stats` (which may be null).
inline Status ValidateTraceDocument(const JsonValue& doc, TraceStats* stats) {
  if (!doc.is_object()) return Status::Invalid("trace: root is not an object");
  const JsonValue& events = doc.Get("traceEvents");
  if (!events.is_array()) {
    return Status::Invalid("trace: missing traceEvents array");
  }
  TraceStats local;
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    const std::string where = "trace event " + std::to_string(i);
    if (!e.is_object()) return Status::Invalid(where, ": not an object");
    const std::string name = e.GetString("name");
    if (name.empty()) return Status::Invalid(where, ": empty name");
    const std::string ph = e.GetString("ph");
    if (!e.Get("pid").is_number() || !e.Get("tid").is_number()) {
      return Status::Invalid(where, " (", name, "): missing pid/tid");
    }
    if (ph == "M") {
      if (name != "thread_name" || !e.Get("args").Get("name").is_string()) {
        return Status::Invalid(where, ": malformed thread_name metadata");
      }
      ++local.thread_metadata;
      continue;
    }
    if (!e.Get("ts").is_number() || e.GetNumber("ts") < 0) {
      return Status::Invalid(where, " (", name, "): bad ts");
    }
    if (ph == "X") {
      const std::string cat = e.GetString("cat");
      if (trace_schema_internal::KnownCategories().count(cat) == 0) {
        return Status::Invalid(where, " (", name, "): unknown cat '", cat,
                               "'");
      }
      const double dur = e.GetNumber("dur", -1.0);
      if (dur < 0) return Status::Invalid(where, " (", name, "): bad dur");
      // vdur may exceed dur: negative time credits (modeled penalties such
      // as PCIe transfers or lazy-planning overheads) grow virtual time
      // beyond wall time. Only negative values are malformed.
      const JsonValue& vdur = e.Get("args").Get("vdur_us");
      if (!vdur.is_number() || vdur.number_value() < 0) {
        return Status::Invalid(where, " (", name,
                               "): vdur_us missing or negative");
      }
      // Resource-sampled spans carry the full counter-arg set; the fields
      // are all-or-nothing, numeric, and non-negative.
      if (!e.Get("args").Get("cycles").is_null()) {
        for (const char* field :
             {"cycles", "instructions", "cache_misses", "task_clock_us"}) {
          const JsonValue& v = e.Get("args").Get(field);
          if (!v.is_number() || v.number_value() < 0) {
            return Status::Invalid(where, " (", name, "): resource arg '",
                                   field, "' missing or negative");
          }
        }
        if (!e.Get("args").Get("perf").is_bool()) {
          return Status::Invalid(where, " (", name,
                                 "): sampled span without perf flag");
        }
        ++local.sampled_spans;
      }
      ++local.span_count;
      ++local.spans_by_category[cat];
      local.span_names.insert(name);
    } else if (ph == "C") {
      if (!e.Get("args").Get("value").is_number()) {
        return Status::Invalid(where, " (", name, "): counter without value");
      }
      ++local.counter_samples;
      local.counter_tracks.insert(name);
    } else {
      return Status::Invalid(where, " (", name, "): unknown phase '", ph,
                             "'");
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

/// Validates the pipeline shape a function-core runner trace must have:
/// at least one stage span, at least one preparator span nested inside a
/// stage span, at least one engine/kernel/io span nested inside a
/// preparator span, and a memory-timeline counter track ("mem:..."). When
/// `expected_preparators` > 0, also requires at least that many preparator
/// spans (one per executed preparator).
inline Status ValidatePipelineShape(const JsonValue& doc,
                                    int expected_preparators = 0) {
  using trace_schema_internal::SpanRec;
  TraceStats stats;
  Status st = ValidateTraceDocument(doc, &stats);
  if (!st.ok()) return st;

  std::vector<SpanRec> stages, preparators, leaves;
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") != "X") continue;
    SpanRec rec;
    rec.name = e.GetString("name");
    rec.cat = e.GetString("cat");
    rec.tid = e.GetInt("tid");
    rec.ts = e.GetNumber("ts");
    rec.dur = e.GetNumber("dur");
    if (rec.cat == "stage") {
      stages.push_back(rec);
    } else if (rec.cat == "preparator") {
      preparators.push_back(rec);
    } else if (rec.cat == "engine" || rec.cat == "kernel" ||
               rec.cat == "io") {
      leaves.push_back(rec);
    }
  }

  if (stages.empty()) return Status::Invalid("trace: no stage spans");
  if (preparators.empty()) {
    return Status::Invalid("trace: no preparator spans");
  }
  if (expected_preparators > 0 &&
      static_cast<int>(preparators.size()) < expected_preparators) {
    return Status::Invalid("trace: ", preparators.size(),
                           " preparator spans, expected at least ",
                           expected_preparators);
  }
  int nested_preparators = 0;
  for (const SpanRec& p : preparators) {
    for (const SpanRec& s : stages) {
      if (s.Contains(p)) {
        ++nested_preparators;
        break;
      }
    }
  }
  if (nested_preparators == 0) {
    return Status::Invalid("trace: no preparator span inside a stage span");
  }
  int nested_leaves = 0;
  for (const SpanRec& l : leaves) {
    for (const SpanRec& p : preparators) {
      if (p.Contains(l)) {
        ++nested_leaves;
        break;
      }
    }
  }
  if (nested_leaves == 0) {
    return Status::Invalid(
        "trace: no engine/kernel/io span inside a preparator span");
  }
  bool has_memory_track = false;
  for (const std::string& track : stats.counter_tracks) {
    if (track.rfind("mem:", 0) == 0) has_memory_track = true;
  }
  if (!has_memory_track) {
    return Status::Invalid("trace: no memory-timeline counter track (mem:*)");
  }
  return Status::OK();
}

/// Validates the shape a resource-sampled trace must have: at least one
/// span carrying counter args and an "energy:joules" counter track whose
/// samples are non-negative and non-decreasing (it reports a cumulative
/// estimate for the sampling window).
inline Status ValidateEnergyTrack(const JsonValue& doc) {
  TraceStats stats;
  Status st = ValidateTraceDocument(doc, &stats);
  if (!st.ok()) return st;
  if (stats.sampled_spans == 0) {
    return Status::Invalid("trace: no resource-sampled spans");
  }
  if (stats.counter_tracks.count("energy:joules") == 0) {
    return Status::Invalid("trace: no energy:joules counter track");
  }
  std::vector<std::pair<double, double>> samples;  // (ts, joules)
  const JsonValue& events = doc.Get("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.GetString("ph") != "C" || e.GetString("name") != "energy:joules") {
      continue;
    }
    samples.emplace_back(e.GetNumber("ts"), e.Get("args").GetNumber("value"));
  }
  // Buffers are exported per thread, so sort by timestamp before checking
  // the cumulative estimate is monotone.
  std::sort(samples.begin(), samples.end());
  double last = 0.0;
  for (const auto& [ts, v] : samples) {
    if (v < 0) return Status::Invalid("trace: negative energy sample");
    if (v + 1e-9 < last) {
      return Status::Invalid("trace: energy:joules track decreased (", last,
                             " -> ", v, ")");
    }
    last = v;
  }
  return Status::OK();
}

}  // namespace bento::test

#endif  // BENTO_TESTS_TRACE_SCHEMA_H_
