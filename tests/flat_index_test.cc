// Unit suite for the flat open-addressing hash layer (kernels/flat_index)
// plus hash-collision adversaries: every consumer kernel must produce
// byte-identical output when all keys share one 64-bit hash, because
// correctness is required to rest on the RowEquality / arena-equality
// fallback, never on hash distribution.
#include "kernels/flat_index.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "kernels/dedup.h"
#include "kernels/encode.h"
#include "kernels/groupby.h"
#include "kernels/join.h"
#include "kernels/pivot.h"
#include "kernels/row_hash.h"
#include "tests/test_util.h"

namespace bento::kern {
namespace {

using test::ExpectTablesEqual;
using test::I64;
using test::MakeTable;
using test::Str;

// --- Hash64 ---------------------------------------------------------------

TEST(Hash64Test, DeterministicAndLengthSensitive) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t len = 0; len <= data.size(); ++len) {
    EXPECT_EQ(Hash64(data.data(), len), Hash64(data.data(), len));
  }
  std::set<uint64_t> seen;
  for (size_t len = 0; len <= data.size(); ++len) {
    seen.insert(Hash64(data.data(), len));
  }
  EXPECT_EQ(seen.size(), data.size() + 1) << "prefix hashes must differ";
}

TEST(Hash64Test, ContentSensitiveAtEveryPosition) {
  // Flipping any single byte must change the hash (catches lane/tail bugs
  // around the 4/16/32-byte boundaries of the word-at-a-time loop).
  for (size_t len : {1u, 3u, 4u, 7u, 8u, 12u, 15u, 16u, 17u, 31u, 32u, 33u, 64u}) {
    std::string base(len, 'x');
    const uint64_t h = Hash64(base.data(), base.size());
    for (size_t i = 0; i < len; ++i) {
      std::string mod = base;
      mod[i] = 'y';
      EXPECT_NE(h, Hash64(mod.data(), mod.size()))
          << "len " << len << " byte " << i;
    }
  }
}

TEST(Hash64Test, WordHashSpreadsSequentialKeys) {
  // Sequential int64 keys (the common join-key shape) must not cluster:
  // check all 2^16 low-bit buckets get hit over 1M sequential keys.
  std::vector<int> buckets(1 << 16, 0);
  for (uint64_t v = 0; v < 1000000; ++v) {
    ++buckets[HashWord64(v) & 0xFFFF];
  }
  int empty = 0;
  for (int c : buckets) empty += c == 0;
  EXPECT_EQ(empty, 0);
}

// --- FlatIndex ------------------------------------------------------------

/// Build an index over int64 keys with the identity hash replaced by a
/// controllable per-row hash vector.
TEST(FlatIndexTest, BuildFindChains) {
  const std::vector<int64_t> keys = {7, 3, 7, 9, 3, 7};
  std::vector<uint64_t> hashes;
  for (int64_t k : keys) hashes.push_back(HashWord64(static_cast<uint64_t>(k)));
  auto equal_rows = [&](int64_t a, int64_t b) { return keys[a] == keys[b]; };

  FlatIndex index;
  index.Build(hashes, [](int64_t) { return true; }, equal_rows);
  EXPECT_EQ(index.num_keys(), 3);

  // Chain of key 7 in row order.
  std::vector<int64_t> chain;
  for (int64_t r = index.Find(HashWord64(7), [&](int64_t row) { return keys[row] == 7; });
       r != FlatIndex::kNone; r = index.Next(r)) {
    chain.push_back(r);
  }
  EXPECT_EQ(chain, (std::vector<int64_t>{0, 2, 5}));

  EXPECT_EQ(index.Find(HashWord64(1234), [&](int64_t) { return true; }),
            FlatIndex::kNone);
}

TEST(FlatIndexTest, KeepPredicateFiltersRows) {
  const std::vector<int64_t> keys = {1, 2, 1, 2};
  std::vector<uint64_t> hashes;
  for (int64_t k : keys) hashes.push_back(HashWord64(static_cast<uint64_t>(k)));
  FlatIndex index;
  index.Build(hashes, [](int64_t row) { return row != 2; },
              [&](int64_t a, int64_t b) { return keys[a] == keys[b]; });
  std::vector<int64_t> chain;
  for (int64_t r = index.Find(HashWord64(1), [&](int64_t row) { return keys[row] == 1; });
       r != FlatIndex::kNone; r = index.Next(r)) {
    chain.push_back(r);
  }
  EXPECT_EQ(chain, (std::vector<int64_t>{0}));
}

TEST(FlatIndexTest, AllKeysOneHashResolvedByEquality) {
  // Adversarial: every row hashes to 42; distinct keys must land in
  // distinct slots purely through the equality fallback.
  const int64_t n = 200;
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < n; ++i) keys.push_back(i % 50);
  std::vector<uint64_t> hashes(static_cast<size_t>(n), 42);
  auto equal_rows = [&](int64_t a, int64_t b) { return keys[a] == keys[b]; };

  FlatIndex index;
  index.Build(hashes, [](int64_t) { return true; }, equal_rows);
  EXPECT_EQ(index.num_keys(), 50);
  for (int64_t want = 0; want < 50; ++want) {
    std::vector<int64_t> chain;
    for (int64_t r = index.Find(42, [&](int64_t row) { return keys[row] == want; });
         r != FlatIndex::kNone; r = index.Next(r)) {
      chain.push_back(r);
    }
    ASSERT_EQ(chain.size(), 4u) << "key " << want;
    for (size_t c = 1; c < chain.size(); ++c) {
      EXPECT_LT(chain[c - 1], chain[c]) << "chain must stay in row order";
    }
  }
}

TEST(FlatIndexTest, PartitionedBuildMatchesSerial) {
  const int64_t n = 100000;
  std::vector<int64_t> keys;
  keys.reserve(n);
  for (int64_t i = 0; i < n; ++i) keys.push_back((i * 7919) % 1000);
  std::vector<uint64_t> hashes;
  hashes.reserve(n);
  for (int64_t k : keys) hashes.push_back(HashWord64(static_cast<uint64_t>(k)));
  auto equal_rows = [&](int64_t a, int64_t b) { return keys[a] == keys[b]; };

  FlatIndex serial;
  serial.Build(hashes, [](int64_t) { return true; }, equal_rows);

  sim::ParallelOptions options;
  options.max_workers = 4;
  FlatIndex parallel;
  ASSERT_TRUE(parallel
                  .BuildPartitioned(hashes, [](int64_t) { return true; },
                                    equal_rows, options)
                  .ok());
  EXPECT_GT(parallel.num_partitions(), 1);
  EXPECT_EQ(parallel.num_keys(), serial.num_keys());

  for (int64_t want = 0; want < 1000; ++want) {
    auto probe = [&](int64_t row) { return keys[row] == want; };
    const uint64_t h = HashWord64(static_cast<uint64_t>(want));
    int64_t a = serial.Find(h, probe);
    int64_t b = parallel.Find(h, probe);
    while (a != FlatIndex::kNone || b != FlatIndex::kNone) {
      ASSERT_EQ(a, b) << "chains diverge for key " << want;
      a = serial.Next(a);
      b = parallel.Next(b);
    }
  }
}

TEST(FlatIndexTest, PlanPartitionsRespectsFloors) {
  sim::ParallelOptions options;
  options.max_workers = 8;
  EXPECT_EQ(FlatIndex::PlanPartitions(1000, options), 1);  // too small
  EXPECT_EQ(FlatIndex::PlanPartitions(1 << 20, options), 8);
  options.max_workers = 1;
  EXPECT_EQ(FlatIndex::PlanPartitions(1 << 20, options), 1);
  options.max_workers = 6;  // non-power-of-two workers round up to pow2
  EXPECT_EQ(FlatIndex::PlanPartitions(1 << 20, options), 8);
  options.max_workers = 256;  // hard cap
  EXPECT_EQ(FlatIndex::PlanPartitions(100 << 20, options), 64);
}

// --- FlatGrouper ----------------------------------------------------------

TEST(FlatGrouperTest, DenseFirstSeenIds) {
  const std::vector<int64_t> keys = {5, 8, 5, 1, 8, 5};
  FlatGrouper grouper;
  auto equal_rows = [&](int64_t a, int64_t b) { return keys[a] == keys[b]; };
  std::vector<int64_t> ids;
  for (size_t i = 0; i < keys.size(); ++i) {
    ids.push_back(grouper.FindOrInsert(
        HashWord64(static_cast<uint64_t>(keys[i])), static_cast<int64_t>(i),
        equal_rows));
  }
  EXPECT_EQ(ids, (std::vector<int64_t>{0, 1, 0, 2, 1, 0}));
  EXPECT_EQ(grouper.num_groups(), 3);
  EXPECT_EQ(grouper.representatives(), (std::vector<int64_t>{0, 1, 3}));
}

TEST(FlatGrouperTest, GrowthKeepsGroupsStable) {
  // Insert enough distinct keys to force several doublings, with
  // duplicates interleaved; ids must stay dense and first-seen.
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 10000; ++i) {
    keys.push_back(i % 3000);
  }
  FlatGrouper grouper;
  auto equal_rows = [&](int64_t a, int64_t b) { return keys[a] == keys[b]; };
  for (size_t i = 0; i < keys.size(); ++i) {
    const int64_t id = grouper.FindOrInsert(
        HashWord64(static_cast<uint64_t>(keys[i])), static_cast<int64_t>(i),
        equal_rows);
    EXPECT_EQ(id, keys[i] % 3000);  // key k is the (k+1)-th distinct
  }
  EXPECT_EQ(grouper.num_groups(), 3000);
}

TEST(FlatGrouperTest, ConstantHashStillGroupsCorrectly) {
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 500; ++i) keys.push_back(i % 37);
  FlatGrouper grouper;
  auto equal_rows = [&](int64_t a, int64_t b) { return keys[a] == keys[b]; };
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(grouper.FindOrInsert(42, static_cast<int64_t>(i), equal_rows),
              keys[i]);
  }
  EXPECT_EQ(grouper.num_groups(), 37);
}

// --- StringInterner -------------------------------------------------------

TEST(StringInternerTest, InternAndHeterogeneousLookup) {
  StringInterner interner;
  EXPECT_EQ(interner.FindOrInsert("alpha"), 0);
  EXPECT_EQ(interner.FindOrInsert("beta"), 1);
  EXPECT_EQ(interner.FindOrInsert("alpha"), 0);
  EXPECT_EQ(interner.size(), 2);
  EXPECT_EQ(interner.View(1), "beta");

  std::string probe = "beta";
  EXPECT_EQ(interner.Find(std::string_view(probe)), 1);
  EXPECT_EQ(interner.Find("gamma"), StringInterner::kNone);
  EXPECT_EQ(interner.ToStrings(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(StringInternerTest, GrowthAndArenaReallocationSafe) {
  StringInterner interner;
  std::vector<std::string> inserted;
  for (int i = 0; i < 5000; ++i) {
    inserted.push_back("key_" + std::to_string(i) + std::string(i % 17, 'p'));
    ASSERT_EQ(interner.FindOrInsert(inserted.back()), i);
  }
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(interner.Find(inserted[static_cast<size_t>(i)]), i);
    ASSERT_EQ(interner.View(i), inserted[static_cast<size_t>(i)]);
  }
}

TEST(StringInternerTest, EmptyStringIsAKey) {
  StringInterner interner;
  EXPECT_EQ(interner.FindOrInsert(""), 0);
  EXPECT_EQ(interner.FindOrInsert("x"), 1);
  EXPECT_EQ(interner.Find(""), 0);
  EXPECT_EQ(interner.View(0), "");
}

// --- forced-collision kernel adversaries ----------------------------------

col::TablePtr AdversaryTable() {
  return MakeTable(
      {{"k", I64({3, 1, 3, 2, 1, 3, 4, 2}, {true, true, true, true, true, true,
                                            false, true})},
       {"s", Str({"a", "b", "a", "c", "b", "d", "a", "c"})},
       {"v", I64({10, 20, 30, 40, 50, 60, 70, 80})}});
}

TEST(ForcedCollisionTest, JoinUnchanged) {
  auto left = AdversaryTable();
  auto right = MakeTable({{"k", I64({1, 2, 3, 3})},
                          {"p", I64({100, 200, 300, 301})}});
  auto expected = HashJoin(left, right, "k", "k", {}).ValueOrDie();
  {
    ScopedForcedHashCollisions forced;
    auto collided = HashJoin(left, right, "k", "k", {}).ValueOrDie();
    ExpectTablesEqual(expected, collided);
  }
  // Left join with the parallel path, also under collisions.
  JoinOptions opts;
  opts.type = JoinType::kLeft;
  sim::ParallelOptions parallel;
  parallel.max_workers = 4;
  auto expected_left =
      HashJoinParallel(left, right, "k", "k", opts, parallel).ValueOrDie();
  {
    ScopedForcedHashCollisions forced;
    auto collided =
        HashJoinParallel(left, right, "k", "k", opts, parallel).ValueOrDie();
    ExpectTablesEqual(expected_left, collided);
  }
}

TEST(ForcedCollisionTest, GroupByUnchanged) {
  auto t = AdversaryTable();
  std::vector<AggSpec> aggs = {{"v", AggKind::kSum, "s"},
                               {"v", AggKind::kCount, "n"}};
  auto expected = GroupBy(t, {"k"}, aggs).ValueOrDie();
  ScopedForcedHashCollisions forced;
  auto collided = GroupBy(t, {"k"}, aggs).ValueOrDie();
  ExpectTablesEqual(expected, collided);
}

TEST(ForcedCollisionTest, DedupAndUniqueUnchanged) {
  auto t = AdversaryTable();
  auto expected = DropDuplicates(t, {"k", "s"}).ValueOrDie();
  auto values = t->GetColumn("k").ValueOrDie();
  auto expected_unique = Unique(values).ValueOrDie();
  ScopedForcedHashCollisions forced;
  ExpectTablesEqual(expected, DropDuplicates(t, {"k", "s"}).ValueOrDie());
  auto unique = Unique(values).ValueOrDie();
  ASSERT_EQ(unique->length(), expected_unique->length());
  for (int64_t i = 0; i < unique->length(); ++i) {
    EXPECT_EQ(unique->int64_data()[i], expected_unique->int64_data()[i]);
  }
  EXPECT_EQ(unique->null_count(), 0);
}

TEST(ForcedCollisionTest, EncodeAndPivotUnchanged) {
  auto t = AdversaryTable();
  auto expected_dummies = GetDummies(t, "s").ValueOrDie();
  auto expected_pivot =
      PivotTable(t, "k", "s", "v", AggKind::kSum).ValueOrDie();
  ScopedForcedHashCollisions forced;
  ExpectTablesEqual(expected_dummies, GetDummies(t, "s").ValueOrDie());
  ExpectTablesEqual(expected_pivot,
                    PivotTable(t, "k", "s", "v", AggKind::kSum).ValueOrDie());
}

}  // namespace
}  // namespace bento::kern
