#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "engines/spill_frames.h"
#include "engines/streaming_ops.h"
#include "kernels/groupby.h"
#include "kernels/sort.h"
#include "sim/spill.h"
#include "tests/test_util.h"
#include "util/random.h"

// Property tests for the spill layer: random round-trips through SpillFile
// and SpillFrameStore, spill-merge equivalence under skewed partition loads,
// and injected short-write/short-read faults that must surface as clean
// Status errors — never as corrupt frames or crashes.

namespace bento::eng {
namespace {

using col::TablePtr;
using kern::AggKind;
using kern::AggSpec;
using test::MakeTable;

/// Disarms the process-wide spill fuses even when an assertion bails out.
struct FaultGuard {
  ~FaultGuard() { sim::SpillFile::ClearFaults(); }
};

TablePtr RandomChunk(Rng* rng, int64_t rows) {
  col::Int64Builder a;
  col::Float64Builder b;
  col::StringBuilder c;
  for (int64_t i = 0; i < rows; ++i) {
    a.AppendMaybe(rng->UniformInt(-1000, 1000), !rng->Bernoulli(0.1));
    b.AppendMaybe(static_cast<double>(rng->UniformInt(0, 500)),
                  !rng->Bernoulli(0.2));
    c.AppendMaybe("s" + std::to_string(rng->UniformInt(0, 9)),
                  !rng->Bernoulli(0.05));
  }
  return MakeTable({{"a", a.Finish().ValueOrDie()},
                    {"b", b.Finish().ValueOrDie()},
                    {"c", c.Finish().ValueOrDie()}});
}

TEST(SpillFilePropertyTest, RandomBlocksRoundTripInAnyReadOrder) {
  Rng rng(1);
  auto spill = sim::SpillFile::Create().ValueOrDie();
  struct Block {
    uint64_t offset;
    std::vector<uint8_t> bytes;
  };
  std::vector<Block> blocks;
  uint64_t total = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> bytes(1 + rng.Uniform(4096));
    for (uint8_t& byte : bytes) {
      byte = static_cast<uint8_t>(rng.Uniform(256));
    }
    auto offset = spill->Write(bytes.data(), bytes.size()).ValueOrDie();
    EXPECT_EQ(offset, total);  // strictly appending
    total += bytes.size();
    blocks.push_back({offset, std::move(bytes)});
  }
  EXPECT_EQ(spill->bytes_written(), total);

  // Read back in a shuffled order, twice (reads must not disturb state).
  std::vector<size_t> order(blocks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t idx : order) {
      const Block& block = blocks[idx];
      std::vector<uint8_t> out(block.bytes.size());
      ASSERT_OK(spill->Read(block.offset, out.size(), out.data()));
      EXPECT_EQ(out, block.bytes) << "block " << idx << " pass " << pass;
    }
  }
}

TEST(SpillFilePropertyTest, InjectedShortWriteFailsCleanlyAndRearms) {
  FaultGuard guard;
  auto spill = sim::SpillFile::Create().ValueOrDie();
  std::vector<uint8_t> bytes(64, 0xAB);

  // Fuse allows exactly one more 64-byte write, then blows.
  sim::SpillFile::InjectFaults(/*write_bytes=*/64, /*read_bytes=*/UINT64_MAX);
  ASSERT_OK(spill->Write(bytes.data(), bytes.size()).status());
  auto blown = spill->Write(bytes.data(), bytes.size());
  ASSERT_FALSE(blown.ok());
  EXPECT_TRUE(blown.status().IsIOError()) << blown.status().ToString();
  EXPECT_NE(blown.status().ToString().find("injected short write"),
            std::string::npos)
      << blown.status().ToString();

  // Disarming restores service; earlier bytes are intact.
  sim::SpillFile::ClearFaults();
  ASSERT_OK(spill->Write(bytes.data(), bytes.size()).status());
  std::vector<uint8_t> out(64);
  ASSERT_OK(spill->Read(0, out.size(), out.data()));
  EXPECT_EQ(out, bytes);
}

TEST(SpillFilePropertyTest, InjectedShortReadFailsCleanly) {
  FaultGuard guard;
  auto spill = sim::SpillFile::Create().ValueOrDie();
  std::vector<uint8_t> bytes(128, 0x5C);
  ASSERT_OK(spill->Write(bytes.data(), bytes.size()).status());

  sim::SpillFile::InjectFaults(/*write_bytes=*/UINT64_MAX, /*read_bytes=*/64);
  std::vector<uint8_t> out(64);
  ASSERT_OK(spill->Read(0, 64, out.data()));
  Status blown = spill->Read(64, 64, out.data());
  ASSERT_FALSE(blown.ok());
  EXPECT_TRUE(blown.IsIOError()) << blown.ToString();
  EXPECT_NE(blown.ToString().find("injected short read"), std::string::npos)
      << blown.ToString();
  sim::SpillFile::ClearFaults();
  ASSERT_OK(spill->Read(64, 64, out.data()));
}

TEST(SpillFrameStoreTest, RandomFramesRoundTripPerPartition) {
  Rng rng(7);
  auto store = SpillFrameStore::Create(3).ValueOrDie();
  std::vector<std::vector<TablePtr>> appended(3);
  for (int i = 0; i < 30; ++i) {
    const int partition = static_cast<int>(rng.Uniform(3));
    auto chunk = RandomChunk(&rng, 1 + rng.UniformInt(0, 400));
    ASSERT_OK(store->Append(partition, chunk));
    appended[static_cast<size_t>(partition)].push_back(chunk);
  }
  EXPECT_GT(store->bytes_written(), 0u);

  for (int p = 0; p < 3; ++p) {
    SCOPED_TRACE(p);
    const auto& expected = appended[static_cast<size_t>(p)];
    auto frames = store->ReadPartition(p).ValueOrDie();
    ASSERT_EQ(frames.size(), expected.size());
    int64_t rows = 0;
    for (size_t i = 0; i < frames.size(); ++i) {
      test::ExpectTablesEqual(expected[i], frames[i]);  // append order
      rows += expected[i]->num_rows();
    }
    EXPECT_EQ(store->partition_rows(p), rows);
    EXPECT_EQ(store->partition_frames(p),
              static_cast<int64_t>(expected.size()));

    // The streaming cursor yields the same frames.
    auto stream = store->OpenPartition(p).ValueOrDie();
    for (const TablePtr& want : expected) {
      auto got = stream->Next().ValueOrDie();
      ASSERT_NE(got, nullptr);
      test::ExpectTablesEqual(want, got);
    }
    EXPECT_EQ(stream->Next().ValueOrDie(), nullptr);
  }
}

TEST(SpillFrameStoreTest, EmptyPartitionsAndSchemaRules) {
  Rng rng(9);
  auto store = SpillFrameStore::Create(1).ValueOrDie();
  auto chunk = RandomChunk(&rng, 50);

  // A schema-less partition streams nothing.
  const int bare = store->AddPartition();
  {
    auto stream = store->OpenPartition(bare).ValueOrDie();
    EXPECT_EQ(stream->Next().ValueOrDie(), nullptr);
  }

  // A zero-row append records the schema; the stream emits one typed empty
  // chunk (so downstream operators keep their column types).
  const int typed = store->AddPartition();
  ASSERT_OK(store->Append(typed, chunk->Slice(0, 0).ValueOrDie()));
  EXPECT_EQ(store->partition_frames(typed), 0);
  {
    auto stream = store->OpenPartition(typed).ValueOrDie();
    auto empty = stream->Next().ValueOrDie();
    ASSERT_NE(empty, nullptr);
    EXPECT_EQ(empty->num_rows(), 0);
    EXPECT_EQ(empty->schema()->names(), chunk->schema()->names());
    EXPECT_EQ(stream->Next().ValueOrDie(), nullptr);
  }

  // Appending a different schema to a committed partition is rejected.
  ASSERT_OK(store->Append(0, chunk));
  auto other = MakeTable({{"z", test::I64({1, 2, 3})}});
  EXPECT_FALSE(store->Append(0, other).ok());

  // Out-of-range partitions error instead of crashing.
  EXPECT_FALSE(store->Append(99, chunk).ok());
  EXPECT_FALSE(store->ReadPartition(-1).ok());
  EXPECT_FALSE(store->OpenPartition(99).ok());
  EXPECT_FALSE(SpillFrameStore::Create(-1).ok());
}

TEST(SpillFrameStoreTest, FaultsNeverSurfaceCorruptFrames) {
  FaultGuard guard;
  Rng rng(11);
  auto store = SpillFrameStore::Create(1).ValueOrDie();
  auto chunk = RandomChunk(&rng, 200);
  ASSERT_OK(store->Append(0, chunk));

  // Write fuse: the failed Append registers no frame, and the partition
  // still reads back exactly what was committed before the fault.
  sim::SpillFile::InjectFaults(/*write_bytes=*/16, /*read_bytes=*/UINT64_MAX);
  Status blown = store->Append(0, chunk);
  ASSERT_FALSE(blown.ok());
  EXPECT_TRUE(blown.IsIOError()) << blown.ToString();
  sim::SpillFile::ClearFaults();
  EXPECT_EQ(store->partition_frames(0), 1);
  auto frames = store->ReadPartition(0).ValueOrDie();
  ASSERT_EQ(frames.size(), 1u);
  test::ExpectTablesEqual(chunk, frames[0]);

  // Read fuse: a blown read is a clean error, and clearing it recovers.
  sim::SpillFile::InjectFaults(/*write_bytes=*/UINT64_MAX, /*read_bytes=*/8);
  auto bad = store->ReadPartition(0);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsIOError()) << bad.status().ToString();
  sim::SpillFile::ClearFaults();
  ASSERT_OK(store->ReadPartition(0).status());
}

/// Integer-valued table with a heavily skewed key: ~90% of rows share key 0,
/// so one spill partition carries almost all the data while others are near
/// empty (some genuinely empty at low partition counts).
TablePtr SkewedTable(int64_t rows, uint64_t seed, int64_t key_card) {
  Rng rng(seed);
  col::Int64Builder k;
  col::Float64Builder v;
  for (int64_t i = 0; i < rows; ++i) {
    k.Append(rng.Bernoulli(0.9) ? 0 : rng.UniformInt(1, key_card - 1));
    v.AppendMaybe(static_cast<double>(rng.UniformInt(0, 100)),
                  !rng.Bernoulli(0.1));
  }
  return MakeTable(
      {{"k", k.Finish().ValueOrDie()}, {"v", v.Finish().ValueOrDie()}});
}

TEST(SpillMergePropertyTest, GroupBySpillMergeMatchesUnderSkew) {
  std::vector<AggSpec> aggs = {{"v", AggKind::kSum, "v_sum"},
                               {"v", AggKind::kCount, "v_cnt"},
                               {"v", AggKind::kMin, "v_min"},
                               {"v", AggKind::kStd, "v_std"}};
  frame::ExecPolicy policy;
  for (uint64_t seed : {21, 22, 23}) {
    auto t = SkewedTable(5000, seed, /*key_card=*/200);
    auto eager = kern::GroupBy(t, {"k"}, aggs).ValueOrDie();
    for (int partitions : {2, 4, 32}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " partitions=" + std::to_string(partitions));
      StreamingGroupByOptions options;
      options.spill_partitions = partitions;
      options.spill_threshold_bytes = 0;
      TableChunkStream stream(t, 123);
      auto spilled =
          StreamingGroupBy(&stream, {"k"}, aggs, policy, options).ValueOrDie();
      test::ExpectTablesEqual(eager, spilled);
    }
  }
}

TEST(SpillMergePropertyTest, ExternalSortTinyRunsMatchInMemorySort) {
  Rng rng(31);
  // Heavy duplication in the key exercises merge stability: equal keys must
  // come out in input order, exactly as the in-memory stable sort emits them.
  col::Int64Builder k;
  col::Float64Builder v;
  for (int64_t i = 0; i < 4000; ++i) {
    k.Append(rng.UniformInt(0, 7));
    v.AppendMaybe(static_cast<double>(rng.UniformInt(0, 50)),
                  !rng.Bernoulli(0.1));
  }
  auto t = MakeTable(
      {{"k", k.Finish().ValueOrDie()}, {"v", v.Finish().ValueOrDie()}});
  std::vector<kern::SortKey> keys = {{"k", true}, {"v", false}};
  auto expected = kern::SortTable(t, keys).ValueOrDie();
  for (int64_t run_rows : {64, 555, 100000}) {
    SCOPED_TRACE(run_rows);
    TableChunkStream stream(t, 321);
    auto sorted = ExternalSort(&stream, keys, {}, run_rows).ValueOrDie();
    test::ExpectTablesEqual(expected, sorted);
  }
}

TEST(SpillMergePropertyTest, GroupBySpillWriteFaultAbortsCleanly) {
  FaultGuard guard;
  auto t = SkewedTable(3000, 41, /*key_card=*/100);
  StreamingGroupByOptions options;
  options.spill_threshold_bytes = 0;
  // Let a few frames through, then blow mid-spill.
  sim::SpillFile::InjectFaults(/*write_bytes=*/4096,
                               /*read_bytes=*/UINT64_MAX);
  TableChunkStream stream(t, 100);
  auto result = StreamingGroupBy(&stream, {"k"},
                                 {{"v", AggKind::kSum, "v_sum"}}, {}, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError()) << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("injected"), std::string::npos)
      << result.status().ToString();
}

TEST(SpillMergePropertyTest, ExternalSortReadFaultAbortsCleanly) {
  FaultGuard guard;
  auto t = SkewedTable(3000, 43, /*key_card=*/100);
  // Runs spill fine; the k-way merge's reads hit the fuse.
  sim::SpillFile::InjectFaults(/*write_bytes=*/UINT64_MAX,
                               /*read_bytes=*/2048);
  TableChunkStream stream(t, 300);
  auto result = ExternalSort(&stream, {{"k", true}}, {}, /*run_rows=*/200);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError()) << result.status().ToString();
}

}  // namespace
}  // namespace bento::eng
