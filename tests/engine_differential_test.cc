// Cross-engine differential suite: every registered engine, every
// preparator of the paper's Table II, on seeded generated data, in BOTH
// execution modes (simulated schedule vs real work-stealing threads).
//
// Two invariants are locked down:
//  1. Per engine, kReal execution is bit-identical to kSimulated — the
//     real backend must never change results, only wall time.
//  2. Per preparator, every engine agrees with the eager Pandas reference
//     on values (modulo documented policy differences: approximate
//     quantiles, group emission order, spark_pd's materialized index).
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "columnar/builder.h"
#include "datagen/datasets.h"
#include "frame/engine.h"
#include "kernels/encode.h"
#include "kernels/selection.h"
#include "obs/trace.h"
#include "sim/machine.h"
#include "sim/parallel.h"
#include "tests/test_util.h"

namespace bento::eng {
namespace {

using col::Scalar;
using col::TablePtr;
using col::TypeId;
using frame::ActionResult;
using frame::Op;
using frame::OpKind;

/// One preparator case. `build` receives the engine so kMerge can wrap the
/// regions table in an engine-owned frame.
struct OpCase {
  std::string name;
  std::function<Op(const frame::EnginePtr&, const TablePtr& regions)> build;
  /// Row order is engine-dependent (partitioned emission): compare sorted
  /// by these keys instead of positionally.
  std::vector<std::string> equivalence_keys;
  /// Result depends on the approx_quantile policy: restrict the
  /// cross-engine comparison to exact-quantile engines.
  bool quantile_sensitive = false;
};

/// The athlete table plus a parseable date column (the dataset itself has
/// none; loan/patrol/taxi carry the ToDatetime load in the pipelines).
TablePtr TestTable() {
  static const TablePtr table = [] {
    auto t = gen::GenerateDataset("athlete", 0.05, 7).ValueOrDie();
    auto year = t->GetColumn("year").ValueOrDie();
    col::StringBuilder dates;
    for (int64_t i = 0; i < year->length(); ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                    static_cast<int>(year->int64_data()[i]),
                    static_cast<int>(1 + i % 12), static_cast<int>(1 + i % 28));
      dates.Append(buf);
    }
    return t->SetColumn("when", dates.Finish().ValueOrDie()).ValueOrDie();
  }();
  return table;
}

TablePtr RegionsTable() {
  static const TablePtr table = gen::GenerateRegionsTable(7).ValueOrDie();
  return table;
}

/// `table` with the listed string columns dictionary-encoded (the shape a
/// CSV read with dictionary_encode_strings produces).
TablePtr DictEncodeColumns(TablePtr table,
                           const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    auto a = table->GetColumn(name).ValueOrDie();
    table =
        table->SetColumn(name, kern::DictEncode(a).ValueOrDie()).ValueOrDie();
  }
  return table;
}

TablePtr DictTestTable() {
  static const TablePtr table =
      DictEncodeColumns(TestTable(), {"sex", "team", "noc", "season"});
  return table;
}

TablePtr DictRegionsTable() {
  static const TablePtr table = DictEncodeColumns(RegionsTable(), {"noc"});
  return table;
}

/// All 27 preparators of frame::OpKind, instantiated against the athlete
/// schema (id, name, sex, age, height, weight, team, noc, games, year,
/// season, city, sport, event, medal, when).
std::vector<OpCase> AllOpCases() {
  auto plain = [](Op op) {
    return [op](const frame::EnginePtr&, const TablePtr&) { return op; };
  };
  std::vector<OpCase> cases;
  // EDA actions.
  cases.push_back({"isna", plain(Op::IsNa())});
  cases.push_back({"outliers", plain(Op::LocateOutliers("weight")), {},
                   /*quantile_sensitive=*/true});
  cases.push_back({"srchptn", plain(Op::SearchPattern("team", "a"))});
  cases.push_back({"columns", plain(Op::GetColumns())});
  cases.push_back({"dtypes", plain(Op::GetDtypes())});
  cases.push_back({"describe", plain(Op::Describe()), {},
                   /*quantile_sensitive=*/true});
  // Transforms.
  cases.push_back({"sort", plain(Op::SortValues({{"height", true}}))});
  cases.push_back({"query", plain(Op::Query("age >= 20"))});
  cases.push_back({"cast", plain(Op::Cast("year", TypeId::kFloat64))});
  cases.push_back({"drop", plain(Op::DropColumns({"games", "event"}))});
  cases.push_back({"rename", plain(Op::Rename({{"noc", "committee"}}))});
  cases.push_back({"pivot",
                   plain(Op::Pivot("season", "sex", "weight",
                                   kern::AggKind::kMean)),
                   {"season"}});
  cases.push_back(
      {"applyexpr", plain(Op::ApplyExpr("bmi", "weight / (height * height)"))});
  cases.push_back({"merge",
                   [](const frame::EnginePtr& engine, const TablePtr& regions) {
                     auto other = engine->FromTable(regions).ValueOrDie();
                     return Op::Merge(other, "noc", "noc",
                                      kern::JoinType::kInner);
                   }});
  cases.push_back({"dummies", plain(Op::GetDummies("season"))});
  cases.push_back({"catcodes", plain(Op::CatCodes("sex"))});
  cases.push_back({"groupby",
                   plain(Op::GroupByAgg({"team"},
                                        {{"weight", kern::AggKind::kSum, "w"},
                                         {"age", kern::AggKind::kMean, "m"},
                                         {"id", kern::AggKind::kCount, "n"}})),
                   {"team"}});
  cases.push_back({"todatetime", plain(Op::ToDatetime("when"))});
  // Cleaning.
  cases.push_back({"dropna", plain(Op::DropNa({"age", "height"}))});
  cases.push_back({"strlower", plain(Op::StrLower("team"))});
  cases.push_back({"round", plain(Op::Round("height", 1))});
  cases.push_back({"dedup", plain(Op::DropDuplicates({"noc", "season"}))});
  cases.push_back({"fillna", plain(Op::FillNa("age", Scalar::Double(0.0)))});
  cases.push_back({"fillna_mean", plain(Op::FillNaMean("weight"))});
  cases.push_back(
      {"replace", plain(Op::Replace("sex", Scalar::Str("M"), Scalar::Str("male")))});
  cases.push_back({"applyrow",
                   plain(Op::ApplyRow(
                       "heavy",
                       [](const col::Table& t, int64_t row) -> Result<Scalar> {
                         auto w = t.GetColumn("weight").ValueOrDie();
                         if (w->IsNull(row)) return Scalar::Null();
                         return Scalar::Bool(w->float64_data()[row] > 80.0);
                       },
                       TypeId::kBool))});
  return cases;
}

/// Outcome of one engine × op × mode run. `status` captures legitimate
/// NotImplemented outcomes; both modes and the cross-engine check must then
/// agree on the failure, too.
struct RunOutcome {
  Status status;
  bool is_action = false;
  TablePtr table;        // transform output (index column stripped)
  ActionResult action;   // action output
};

/// Removes spark_pd's materialized "__index__" from an EDA result so the
/// logical frame is what gets compared. PrepareSource appends the index as
/// the LAST column, so per-column vectors lose their tail entry; named
/// structures filter by name.
void StripIndexFromAction(ActionResult* a) {
  while (!a->names.empty() && a->names.back().rfind("__index__", 0) == 0) {
    a->names.pop_back();
    if (!a->types.empty()) a->types.pop_back();
    if (a->counts.size() > a->names.size()) a->counts.pop_back();
  }
  if (a->names.empty() && !a->counts.empty()) a->counts.pop_back();
  if (a->table != nullptr) {
    auto col = a->table->GetColumn("column");
    if (col.ok()) {
      col::BoolBuilder keep;
      auto names = col.ValueOrDie();
      for (int64_t i = 0; i < names->length(); ++i) {
        keep.Append(names->IsNull(i) ||
                    std::string(names->GetView(i)).rfind("__index__", 0) != 0);
      }
      a->table =
          kern::FilterTable(a->table, keep.Finish().ValueOrDie()).ValueOrDie();
    }
  }
}

RunOutcome RunOne(const std::string& engine_id, sim::ExecutionMode mode,
                  const OpCase& op_case, const TablePtr& source,
                  const TablePtr& regions) {
  sim::Session session(sim::MachineSpec::Server());
  session.set_execution_mode(mode);
  RunOutcome out;
  auto engine = frame::CreateEngine(engine_id).ValueOrDie();
  auto frame_r = engine->FromTable(source);
  if (!frame_r.ok()) {
    out.status = frame_r.status();
    return out;
  }
  Op op = op_case.build(engine, regions);
  out.is_action = frame::IsAction(op.kind);
  if (out.is_action) {
    auto action = frame_r.ValueOrDie()->RunAction(op);
    out.status = action.status();
    if (action.ok()) {
      out.action = std::move(action).ValueOrDie();
      if (engine_id == "spark_pd") StripIndexFromAction(&out.action);
    }
    return out;
  }
  auto applied = frame_r.ValueOrDie()->Apply(op);
  if (!applied.ok()) {
    out.status = applied.status();
    return out;
  }
  auto collected = applied.ValueOrDie()->Collect();
  out.status = collected.status();
  if (!collected.ok()) return out;
  out.table = std::move(collected).ValueOrDie();
  // spark_pd materializes its distributed default index; strip it (and the
  // suffixed copy a merge pulls in from the right side) so value
  // comparisons see the logical frame.
  std::vector<std::string> index_cols;
  for (const col::Field& f : out.table->schema()->fields()) {
    if (f.name.rfind("__index__", 0) == 0) index_cols.push_back(f.name);
  }
  if (!index_cols.empty()) {
    out.table = out.table->DropColumns(index_cols).ValueOrDie();
  }
  return out;
}

RunOutcome RunOne(const std::string& engine_id, sim::ExecutionMode mode,
                  const OpCase& op_case) {
  return RunOne(engine_id, mode, op_case, TestTable(), RegionsTable());
}

void ExpectActionsEqual(const ActionResult& a, const ActionResult& b) {
  EXPECT_EQ(a.names, b.names);
  EXPECT_EQ(a.types, b.types);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.lower_bound, b.lower_bound);
  EXPECT_DOUBLE_EQ(a.upper_bound, b.upper_bound);
  ASSERT_EQ(a.table == nullptr, b.table == nullptr);
  if (a.table != nullptr) test::ExpectTablesEqual(a.table, b.table);
}

class EngineDifferentialTest : public ::testing::TestWithParam<std::string> {};

// Invariant 1: real threads change wall time, never results.
TEST_P(EngineDifferentialTest, RealExecutionMatchesSimulated) {
  const std::string id = GetParam();
  for (const OpCase& c : AllOpCases()) {
    SCOPED_TRACE(c.name);
    RunOutcome sim_run = RunOne(id, sim::ExecutionMode::kSimulated, c);
    RunOutcome real_run = RunOne(id, sim::ExecutionMode::kReal, c);
    ASSERT_EQ(sim_run.status.code(), real_run.status.code())
        << sim_run.status.ToString() << " vs " << real_run.status.ToString();
    if (!sim_run.status.ok()) continue;  // same NotImplemented both ways
    if (sim_run.is_action) {
      ExpectActionsEqual(sim_run.action, real_run.action);
    } else {
      test::ExpectTablesEqual(sim_run.table, real_run.table);
    }
  }
}

// Invariant 3: obs tracing is an observer, never a participant — results
// with a trace collecting are bit-identical to results without, in both
// execution modes (spans and counters must not perturb engine logic).
// The full-sampling arm additionally turns on per-span resource counters
// and energy accounting: hardware-counter reads and joule attribution on
// every span exit must be equally invisible to engine results.
TEST_P(EngineDifferentialTest, TracingDoesNotChangeResults) {
  const std::string id = GetParam();
  for (const auto mode :
       {sim::ExecutionMode::kSimulated, sim::ExecutionMode::kReal}) {
    for (const OpCase& c : AllOpCases()) {
      SCOPED_TRACE(c.name);
      RunOutcome plain = RunOne(id, mode, c);

      obs::StartTracing();
      RunOutcome traced = RunOne(id, mode, c);
      obs::StopTracing();

      obs::StartTracing();
      obs::ResetResourceAggregation();
      obs::EnableResourceSampling();
      RunOutcome sampled = RunOne(id, mode, c);
      obs::DisableResourceSampling();
      obs::StopTracing();

      for (const RunOutcome* run : {&traced, &sampled}) {
        ASSERT_EQ(plain.status.code(), run->status.code())
            << plain.status.ToString() << " vs " << run->status.ToString();
        if (!plain.status.ok()) continue;
        if (plain.is_action) {
          ExpectActionsEqual(plain.action, run->action);
        } else {
          test::ExpectTablesEqual(plain.table, run->table);
        }
      }
    }
  }
}

// Invariant 2: every engine agrees with the eager Pandas reference.
TEST_P(EngineDifferentialTest, AgreesWithEagerReference) {
  const std::string id = GetParam();
  // The policy knob that legitimately changes values: approximate
  // quantiles (describe percentiles, outlier bounds).
  const bool approx_quantiles = id == "spark_sql" || id == "polars" ||
                                id == "cudf" || id == "vaex" ||
                                id == "datatable";
  for (const OpCase& c : AllOpCases()) {
    SCOPED_TRACE(c.name);
    RunOutcome expect = RunOne("pandas", sim::ExecutionMode::kSimulated, c);
    ASSERT_OK(expect.status);  // the reference supports every preparator
    RunOutcome got = RunOne(id, sim::ExecutionMode::kReal, c);
    if (!got.status.ok()) {
      // Engines may lack a preparator (Table II gaps), never crash.
      EXPECT_TRUE(got.status.IsNotImplemented()) << got.status.ToString();
      continue;
    }
    if (c.quantile_sensitive && approx_quantiles) continue;
    if (expect.is_action) {
      ExpectActionsEqual(expect.action, got.action);
    } else if (!c.equivalence_keys.empty()) {
      test::ExpectTablesEquivalent(expect.table, got.table,
                                   c.equivalence_keys);
    } else {
      test::ExpectTablesEqual(expect.table, got.table);
    }
  }
}

// Invariant 4: dictionary-encoded string columns are a representation, not
// a semantic — every preparator that touches an encoded column produces
// value-identical results to the plain-string run (categorical outputs
// compare decoded). Covers the CSV dictionary_encode_strings /
// BCF strings_as_categorical read paths end to end through each engine.
TEST_P(EngineDifferentialTest, DictEncodedStringsMatchPlain) {
  const std::string id = GetParam();
  auto plain_src = [](Op op) {
    return [op](const frame::EnginePtr&, const TablePtr&) { return op; };
  };
  std::vector<OpCase> cases;
  cases.push_back(
      {"sort_team", plain_src(Op::SortValues({{"team", true}, {"id", true}}))});
  cases.push_back({"groupby_team",
                   plain_src(Op::GroupByAgg(
                       {"team"}, {{"weight", kern::AggKind::kSum, "w"},
                                  {"age", kern::AggKind::kMean, "m"},
                                  {"id", kern::AggKind::kCount, "n"}})),
                   {"team"}});
  cases.push_back({"dedup", plain_src(Op::DropDuplicates({"noc", "season"}))});
  cases.push_back({"strlower", plain_src(Op::StrLower("team"))});
  cases.push_back({"srchptn", plain_src(Op::SearchPattern("team", "a"))});
  cases.push_back({"catcodes", plain_src(Op::CatCodes("sex"))});
  cases.push_back({"dummies", plain_src(Op::GetDummies("season"))});
  cases.push_back({"merge",
                   [](const frame::EnginePtr& engine, const TablePtr& regions) {
                     auto other = engine->FromTable(regions).ValueOrDie();
                     return Op::Merge(other, "noc", "noc",
                                      kern::JoinType::kInner);
                   }});
  cases.push_back({"isna", plain_src(Op::IsNa())});
  for (const OpCase& c : cases) {
    SCOPED_TRACE(c.name);
    RunOutcome plain = RunOne(id, sim::ExecutionMode::kReal, c, TestTable(),
                              RegionsTable());
    RunOutcome dict = RunOne(id, sim::ExecutionMode::kReal, c, DictTestTable(),
                             DictRegionsTable());
    ASSERT_EQ(plain.status.code(), dict.status.code())
        << plain.status.ToString() << " vs " << dict.status.ToString();
    if (!plain.status.ok()) continue;  // same NotImplemented both ways
    if (plain.is_action) {
      ExpectActionsEqual(plain.action, dict.action);
    } else if (!c.equivalence_keys.empty()) {
      test::ExpectTablesEquivalent(plain.table, dict.table,
                                   c.equivalence_keys);
    } else {
      test::ExpectTablesEqual(plain.table, dict.table);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineDifferentialTest,
                         ::testing::ValuesIn(frame::EngineIds()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace bento::eng
