#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>

#include "engines/lazy_engine.h"
#include "engines/polars.h"
#include "engines/spark.h"
#include "engines/streaming_ops.h"
#include "frame/engine.h"
#include "io/csv.h"
#include "kernels/dedup.h"
#include "kernels/groupby.h"
#include "kernels/pivot.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace bento::eng {
namespace {

using col::Scalar;
using col::TablePtr;
using col::TypeId;
using frame::Op;
using test::F64;
using test::I64;
using test::MakeTable;
using test::Str;

TablePtr SampleTable() {
  return MakeTable({
      {"k", I64({2, 1, 2, 3, 1})},
      {"v", F64({1.0, 2.0, 0.0, 4.0, 5.0}, {true, true, false, true, true})},
      {"s", Str({"Aa", "Bb", "Aa", "Cc", "Dd"})},
  });
}

/// The ops every engine must execute identically (shared kernels).
std::vector<Op> CommonPlan() {
  return {
      Op::Query("k >= 1"),
      Op::ApplyExpr("v2", "fillna(v, 0.0) * 2"),
      Op::StrLower("s"),
      Op::FillNa("v", Scalar::Double(-1.0)),
      Op::SortValues({{"k", true}, {"s", true}}),
      Op::Round("v2", 1),
      Op::Replace("s", Scalar::Str("aa"), Scalar::Str("ZZ")),
  };
}

TEST(RegistryTest, AllEnginesConstruct) {
  for (const std::string& id : frame::EngineIds()) {
    auto engine = frame::CreateEngine(id);
    ASSERT_TRUE(engine.ok()) << id;
    EXPECT_EQ(engine.ValueOrDie()->info().id, id);
  }
  EXPECT_FALSE(frame::CreateEngine("no_such_engine").ok());
}

TEST(RegistryTest, TableIFeatureBits) {
  auto get = [](const std::string& id) {
    return frame::CreateEngine(id).ValueOrDie()->info();
  };
  EXPECT_FALSE(get("pandas").multithreading);
  EXPECT_TRUE(get("polars").multithreading);
  EXPECT_TRUE(get("polars").lazy_evaluation);
  EXPECT_FALSE(get("cudf").lazy_evaluation);
  EXPECT_TRUE(get("cudf").gpu_acceleration);
  EXPECT_TRUE(get("spark_sql").cluster_deploy);
  EXPECT_FALSE(get("vaex").lazy_evaluation);  // only virtual columns
  EXPECT_EQ(get("datatable").paper_name, "DataTable");
}

TEST(CrossEngineTest, AllEnginesAgreeOnCommonPlan) {
  // The central equivalence property: every engine model must produce the
  // same dataframe for the same preparator sequence.
  TablePtr reference;
  for (const std::string& id : frame::EngineIds()) {
    SCOPED_TRACE(id);
    auto engine = frame::CreateEngine(id).ValueOrDie();
    auto frame = engine->FromTable(SampleTable()).ValueOrDie();
    for (const Op& op : CommonPlan()) {
      ASSERT_OK_AND_ASSIGN(frame, frame->Apply(op));
    }
    ASSERT_OK_AND_ASSIGN(auto result, frame->Collect());
    if (id == "spark_pd") {
      // SparkPD materializes its index column; strip it for comparison.
      ASSERT_OK_AND_ASSIGN(result, result->DropColumns({"__index__"}));
    }
    if (reference == nullptr) {
      reference = result;
    } else {
      test::ExpectTablesEqual(reference, result);
    }
  }
}

TEST(CrossEngineTest, ActionsAgree) {
  for (const std::string& id : frame::EngineIds()) {
    SCOPED_TRACE(id);
    auto engine = frame::CreateEngine(id).ValueOrDie();
    auto frame = engine->FromTable(SampleTable()).ValueOrDie();
    ASSERT_OK_AND_ASSIGN(auto isna, frame->RunAction(Op::IsNa()));
    std::vector<int64_t> expected = {0, 1, 0};
    if (id == "spark_pd") expected.push_back(0);  // index column
    EXPECT_EQ(isna.counts, expected);
    ASSERT_OK_AND_ASSIGN(auto search,
                         frame->RunAction(Op::SearchPattern("s", "A")));
    EXPECT_EQ(search.count, 2);
  }
}

TEST(CrossEngineTest, GroupByAgreesUpToOrder) {
  Op group = Op::GroupByAgg({"k"}, {{"v", kern::AggKind::kSum, "s"},
                                    {"v", kern::AggKind::kCount, "n"}});
  TablePtr reference;
  for (const std::string& id : frame::EngineIds()) {
    SCOPED_TRACE(id);
    auto engine = frame::CreateEngine(id).ValueOrDie();
    auto frame = engine->FromTable(SampleTable()).ValueOrDie();
    ASSERT_OK_AND_ASSIGN(frame, frame->Apply(group));
    ASSERT_OK_AND_ASSIGN(auto result, frame->Collect());
    if (reference == nullptr) {
      reference = result;
    } else {
      test::ExpectTablesEquivalent(reference, result, {"k"});
    }
  }
}

TEST(LazyEngineTest, LazyEqualsEager) {
  for (auto [lazy_id, eager_id] :
       {std::pair<std::string, std::string>{"polars", "polars_eager"},
        {"spark_sql", "spark_sql_eager"}}) {
    SCOPED_TRACE(lazy_id);
    auto lazy = frame::CreateEngine(lazy_id).ValueOrDie();
    auto eager = frame::CreateEngine(eager_id).ValueOrDie();
    auto lf = lazy->FromTable(SampleTable()).ValueOrDie();
    auto ef = eager->FromTable(SampleTable()).ValueOrDie();
    for (const Op& op : CommonPlan()) {
      ASSERT_OK_AND_ASSIGN(lf, lf->Apply(op));
      ASSERT_OK_AND_ASSIGN(ef, ef->Apply(op));
    }
    ASSERT_OK_AND_ASSIGN(auto lt, lf->Collect());
    ASSERT_OK_AND_ASSIGN(auto et, ef->Collect());
    test::ExpectTablesEqual(lt, et);
  }
}

TEST(LazyEngineTest, PredicatePushdownPreservesSemantics) {
  PolarsEngine engine;
  std::vector<Op> plan = {
      Op::StrLower("s"),
      Op::Round("v", 1),
      Op::Query("k > 1"),  // should bubble ahead of both
  };
  auto optimized = engine.Optimize(plan);
  EXPECT_EQ(optimized[0].kind, frame::OpKind::kQuery);

  // And the result matches the unoptimized execution.
  LazySource source;
  source.kind = LazySource::Kind::kTable;
  source.table = SampleTable();
  auto with = engine.Execute(source, plan).ValueOrDie();
  PolarsEngine no_pushdown;  // execute the pre-optimized plan directly
  auto frame = no_pushdown.FromTable(SampleTable()).ValueOrDie();
  for (const Op& op : plan) frame = frame->Apply(op).ValueOrDie();
  auto without = frame->Collect().ValueOrDie();
  test::ExpectTablesEqual(without, with);
}

TEST(LazyEngineTest, PushdownBlockedByDependency) {
  PolarsEngine engine;
  std::vector<Op> plan = {
      Op::ApplyExpr("w", "v * 2"),
      Op::Query("w > 1"),  // depends on w: must NOT hop over its definition
  };
  auto optimized = engine.Optimize(plan);
  EXPECT_EQ(optimized[0].kind, frame::OpKind::kApplyExpr);
  EXPECT_EQ(optimized[1].kind, frame::OpKind::kQuery);
}

TEST(LazyEngineTest, ProjectionPushdownMovesDrops) {
  PolarsEngine engine;
  std::vector<Op> plan = {
      Op::Round("v", 2),
      Op::DropColumns({"s"}),  // s untouched by round: hops to front
  };
  auto optimized = engine.Optimize(plan);
  EXPECT_EQ(optimized[0].kind, frame::OpKind::kDropColumns);
}

TEST(LazyEngineTest, IsStreamableClassification) {
  EXPECT_TRUE(IsStreamable(Op::Query("a > 1")));
  EXPECT_TRUE(IsStreamable(Op::StrLower("s")));
  EXPECT_TRUE(IsStreamable(Op::FillNa("v", Scalar::Double(0))));
  EXPECT_FALSE(IsStreamable(Op::FillNaMean("v")));
  EXPECT_FALSE(IsStreamable(Op::SortValues({{"k", true}})));
  EXPECT_FALSE(IsStreamable(Op::GetDummies("s")));
  EXPECT_FALSE(IsStreamable(Op::DropDuplicates()));
}

// --- streaming operators vs in-memory kernels ---

TablePtr RandomTable(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  col::Int64Builder k;
  col::Float64Builder v;
  col::StringBuilder s;
  for (int64_t i = 0; i < rows; ++i) {
    k.Append(rng.UniformInt(0, 40));
    v.AppendMaybe(rng.UniformDouble(0, 100), !rng.Bernoulli(0.1));
    s.Append(std::string(1, static_cast<char>('a' + rng.Uniform(6))));
  }
  return MakeTable({{"k", k.Finish().ValueOrDie()},
                    {"v", v.Finish().ValueOrDie()},
                    {"s", s.Finish().ValueOrDie()}});
}

TEST(StreamingOpsTest, GroupByMatchesKernel) {
  auto t = RandomTable(5000, 3);
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kSum, "sum"},
                                     {"v", kern::AggKind::kMean, "mean"},
                                     {"v", kern::AggKind::kStd, "std"},
                                     {"v", kern::AggKind::kCount, "n"},
                                     {"v", kern::AggKind::kMin, "lo"},
                                     {"v", kern::AggKind::kMax, "hi"}};
  auto expected = kern::GroupBy(t, {"k"}, aggs).ValueOrDie();
  TableChunkStream stream(t, 257);
  auto streaming = StreamingGroupBy(&stream, {"k"}, aggs, {}).ValueOrDie();
  ASSERT_EQ(expected->num_rows(), streaming->num_rows());
  // Compare after sorting by key; float agreement to 1e-9 relative.
  auto se = kern::SortTable(expected, {{"k", true}}).ValueOrDie();
  auto ss = kern::SortTable(streaming, {{"k", true}}).ValueOrDie();
  for (int64_t r = 0; r < se->num_rows(); ++r) {
    EXPECT_EQ(se->column(0)->int64_data()[r], ss->column(0)->int64_data()[r]);
    for (const char* name : {"sum", "mean", "std", "lo", "hi"}) {
      double a = se->GetColumn(name).ValueOrDie()->float64_data()[r];
      double b = ss->GetColumn(name).ValueOrDie()->float64_data()[r];
      EXPECT_NEAR(a, b, 1e-9 * (std::abs(a) + 1)) << name << " row " << r;
    }
    EXPECT_EQ(se->GetColumn("n").ValueOrDie()->int64_data()[r],
              ss->GetColumn("n").ValueOrDie()->int64_data()[r]);
  }
}

TEST(StreamingOpsTest, ExternalSortMatchesKernel) {
  auto t = RandomTable(3000, 11);
  std::vector<kern::SortKey> keys = {{"k", true}, {"v", false}};
  auto expected = kern::SortTable(t, keys).ValueOrDie();
  TableChunkStream stream(t, 200);
  auto external = ExternalSort(&stream, keys, {}, /*run_rows=*/512).ValueOrDie();
  test::ExpectTablesEqual(expected, external);
}

TEST(StreamingOpsTest, ExternalSortSingleRun) {
  auto t = RandomTable(100, 12);
  std::vector<kern::SortKey> keys = {{"v", true}};
  auto expected = kern::SortTable(t, keys).ValueOrDie();
  TableChunkStream stream(t, 50);
  auto external =
      ExternalSort(&stream, keys, {}, /*run_rows=*/100000).ValueOrDie();
  test::ExpectTablesEqual(expected, external);
}

TEST(StreamingOpsTest, DedupMatchesKernel) {
  auto t = RandomTable(2000, 17);
  auto expected = kern::DropDuplicates(t, {"k", "s"}).ValueOrDie();
  TableChunkStream stream(t, 111);
  auto streaming = StreamingDedup(&stream, {"k", "s"}).ValueOrDie();
  EXPECT_EQ(expected->num_rows(), streaming->num_rows());
  test::ExpectTablesEqual(expected, streaming);
}

TEST(StreamingOpsTest, PivotMatchesKernel) {
  auto t = RandomTable(2000, 23);
  auto expected =
      kern::PivotTable(t, "k", "s", "v", kern::AggKind::kMean).ValueOrDie();
  TableChunkStream stream(t, 173);
  Op op = Op::Pivot("k", "s", "v", kern::AggKind::kMean);
  auto streaming = StreamingPivot(&stream, op, {}).ValueOrDie();
  // Column order may differ (first-seen per execution order); compare by
  // aligned column names after sorting rows by the index.
  auto se = kern::SortTable(expected, {{"k", true}}).ValueOrDie();
  auto ss = kern::SortTable(streaming, {{"k", true}}).ValueOrDie();
  ASSERT_EQ(se->num_rows(), ss->num_rows());
  for (const std::string& name : se->schema()->names()) {
    if (name == "k") continue;
    // Streaming pivot names cells "__pivot_value_<v>"; map accordingly.
    std::string streaming_name = "__pivot_value_" + name.substr(2);
    auto a = se->GetColumn(name).ValueOrDie();
    auto b = ss->GetColumn(streaming_name);
    ASSERT_TRUE(b.ok()) << streaming_name;
    for (int64_t r = 0; r < se->num_rows(); ++r) {
      ASSERT_EQ(a->IsNull(r), b.ValueOrDie()->IsNull(r));
      if (!a->IsNull(r)) {
        EXPECT_NEAR(a->float64_data()[r], b.ValueOrDie()->float64_data()[r],
                    1e-9);
      }
    }
  }
}

// --- device engine behaviour ---

TEST(CudfEngineTest, DeviceMemoryWall) {
  // A machine whose VRAM cannot hold the frame: ingest must OoM.
  sim::MachineSpec spec = sim::MachineSpec::Server();
  sim::GpuSpec gpu;
  gpu.vram_bytes = 64;  // absurdly small device
  spec.gpu = gpu;
  sim::Session session(spec);

  auto engine = frame::CreateEngine("cudf").ValueOrDie();
  auto result = engine->FromTable(SampleTable());
  EXPECT_TRUE(result.status().IsOutOfMemory()) << result.status().ToString();
}

TEST(CudfEngineTest, WorksWithAdequateVram) {
  sim::MachineSpec spec = sim::MachineSpec::Server();
  spec.gpu = sim::GpuSpec{};
  sim::Session session(spec);
  auto engine = frame::CreateEngine("cudf").ValueOrDie();
  auto frame = engine->FromTable(SampleTable()).ValueOrDie();
  ASSERT_OK_AND_ASSIGN(frame, frame->Apply(Op::Query("k > 1")));
  ASSERT_OK_AND_ASSIGN(auto out, frame->Collect());
  EXPECT_EQ(out->num_rows(), 3);
  EXPECT_GT(session.device_pool()->bytes_allocated(), 0u);
}

// --- engine I/O paths ---

TEST(EngineIoTest, CsvRoundTripPerEngine) {
  std::string path = "/tmp/bento_engine_io_" + std::to_string(getpid()) + ".csv";
  auto t = SampleTable();
  for (const std::string& id : frame::EngineIds()) {
    SCOPED_TRACE(id);
    auto engine = frame::CreateEngine(id).ValueOrDie();
    auto frame = engine->FromTable(t).ValueOrDie();
    ASSERT_OK(engine->WriteCsv(frame, path));
    ASSERT_OK_AND_ASSIGN(auto back, engine->ReadCsv(path, {}));
    ASSERT_OK_AND_ASSIGN(auto table, back->Collect());
    if (id == "spark_pd") {
      ASSERT_OK_AND_ASSIGN(table, table->DropColumns({"__index__"}));
    }
    test::ExpectTablesEqual(t, table);
  }
  std::remove(path.c_str());
}

TEST(EngineIoTest, DataTableHasNoBcf) {
  std::string path = "/tmp/bento_engine_bcf_" + std::to_string(getpid()) + ".bcf";
  auto engine = frame::CreateEngine("datatable").ValueOrDie();
  auto frame = engine->FromTable(SampleTable()).ValueOrDie();
  EXPECT_TRUE(engine->WriteBcf(frame, path).IsNotImplemented());
  EXPECT_TRUE(engine->ReadBcf(path).status().IsNotImplemented());
}

TEST(EngineIoTest, BcfRoundTripForSupportingEngines) {
  std::string path = "/tmp/bento_engine_bcf2_" + std::to_string(getpid()) + ".bcf";
  auto t = SampleTable();
  for (const std::string& id : {"pandas", "polars", "spark_sql", "vaex",
                                "cudf"}) {
    SCOPED_TRACE(id);
    auto engine = frame::CreateEngine(id).ValueOrDie();
    auto frame = engine->FromTable(t).ValueOrDie();
    ASSERT_OK(engine->WriteBcf(frame, path));
    ASSERT_OK_AND_ASSIGN(auto back, engine->ReadBcf(path));
    ASSERT_OK_AND_ASSIGN(auto table, back->Collect());
    test::ExpectTablesEqual(t, table);
  }
  std::remove(path.c_str());
}

TEST(VaexEngineTest, CsvConvertsToColumnarStore) {
  std::string path = "/tmp/bento_vaex_" + std::to_string(getpid()) + ".csv";
  ASSERT_OK(io::WriteCsv(SampleTable(), path));
  auto engine = frame::CreateEngine("vaex").ValueOrDie();
  ASSERT_OK_AND_ASSIGN(auto frame, engine->ReadCsv(path, {}));
  ASSERT_OK_AND_ASSIGN(auto table, frame->Collect());
  EXPECT_EQ(table->num_rows(), 5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bento::eng
