#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "tests/test_util.h"

namespace bento::gen {
namespace {

TEST(ProfilesTest, FourDatasetsMatchTableIII) {
  ASSERT_EQ(DatasetProfiles().size(), 4u);
  auto athlete = GetProfile("athlete").ValueOrDie();
  EXPECT_EQ(athlete.base_rows, 200000);
  EXPECT_EQ(athlete.num_columns, 15);
  auto loan = GetProfile("loan").ValueOrDie();
  EXPECT_EQ(loan.num_columns, 151);
  EXPECT_EQ(loan.numeric_columns, 113);
  EXPECT_EQ(loan.string_columns, 38);
  auto patrol = GetProfile("patrol").ValueOrDie();
  EXPECT_EQ(patrol.base_rows, 27000000);
  EXPECT_EQ(patrol.bool_columns, 2);
  auto taxi = GetProfile("taxi").ValueOrDie();
  EXPECT_EQ(taxi.base_rows, 77000000);
  EXPECT_DOUBLE_EQ(taxi.null_fraction, 0.0);
  EXPECT_FALSE(GetProfile("nope").ok());
}

class GeneratorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorTest, MatchesProfile) {
  const std::string name = GetParam();
  auto profile = GetProfile(name).ValueOrDie();
  // A small but statistically meaningful sample.
  const double scale = 20000.0 / static_cast<double>(profile.base_rows);
  auto table = GenerateDataset(name, scale, 7).ValueOrDie();
  auto measured = MeasureProfile(table);

  EXPECT_NEAR(static_cast<double>(measured.rows), 20000.0, 1.0);
  EXPECT_EQ(measured.columns, profile.num_columns);
  EXPECT_EQ(measured.numeric, profile.numeric_columns);
  EXPECT_EQ(measured.strings, profile.string_columns);
  EXPECT_EQ(measured.bools, profile.bool_columns);
  // Null share within 5 percentage points of Table III.
  EXPECT_NEAR(measured.null_fraction, profile.null_fraction, 0.05);
  // String lengths within the published ranges.
  EXPECT_GE(measured.str_len_min, profile.str_len_min);
  EXPECT_LE(measured.str_len_max, profile.str_len_max);
}

TEST_P(GeneratorTest, DeterministicInSeed) {
  const std::string name = GetParam();
  auto a = GenerateDataset(name, 0.0005, 42).ValueOrDie();
  auto b = GenerateDataset(name, 0.0005, 42).ValueOrDie();
  test::ExpectTablesEqual(a, b);
  auto c = GenerateDataset(name, 0.0005, 43).ValueOrDie();
  // Different seed must actually change the data.
  bool any_diff = false;
  for (int col = 0; col < a->num_columns() && !any_diff; ++col) {
    for (int64_t r = 0; r < a->num_rows() && !any_diff; ++r) {
      any_diff = test::CellStr(*a->column(col), r) !=
                 test::CellStr(*c->column(col), r);
    }
  }
  EXPECT_TRUE(any_diff);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GeneratorTest,
                         ::testing::Values("athlete", "loan", "patrol",
                                           "taxi"));

TEST(GeneratorTest, ScaleControlsRows) {
  auto small = GenerateDataset("taxi", 0.00001).ValueOrDie();
  auto larger = GenerateDataset("taxi", 0.0001).ValueOrDie();
  EXPECT_GT(larger->num_rows(), small->num_rows());
  // Floor of 16 rows.
  auto tiny = GenerateDataset("athlete", 1e-9).ValueOrDie();
  EXPECT_GE(tiny->num_rows(), 16);
}

TEST(GeneratorTest, TaxiDatetimesParse) {
  auto taxi = GenerateDataset("taxi", 0.00002).ValueOrDie();
  auto pickup = taxi->GetColumn("pickup_datetime").ValueOrDie();
  ASSERT_EQ(pickup->type(), col::TypeId::kString);
  // Exactly the "YYYY-MM-DD HH:MM:SS" 19-char layout.
  for (int64_t i = 0; i < pickup->length(); ++i) {
    EXPECT_EQ(pickup->GetView(i).size(), 19u);
  }
}

TEST(GeneratorTest, RegionsTableJoinsWithAthlete) {
  auto regions = GenerateRegionsTable().ValueOrDie();
  EXPECT_EQ(regions->num_columns(), 2);
  EXPECT_GT(regions->num_rows(), 100);
  // Regions must cover the athlete noc vocabulary (same seed).
  auto athlete = GenerateDataset("athlete", 0.0005).ValueOrDie();
  auto noc = athlete->GetColumn("noc").ValueOrDie();
  auto region_noc = regions->GetColumn("noc").ValueOrDie();
  std::set<std::string> known;
  for (int64_t i = 0; i < region_noc->length(); ++i) {
    known.insert(std::string(region_noc->GetView(i)));
  }
  int64_t covered = 0;
  for (int64_t i = 0; i < noc->length(); ++i) {
    if (known.count(std::string(noc->GetView(i)))) ++covered;
  }
  EXPECT_EQ(covered, noc->length());
}

}  // namespace
}  // namespace bento::gen
