// Property tests for the portable SIMD kernel layer: every dispatcher in
// bento::simd must be bit-identical to an independently written reference
// loop, at whatever level is active. CI runs this binary twice — once with
// the host's best level (AVX2/NEON) and once under BENTO_SIMD=off — so the
// same references validate both the vector implementations and the scalar
// fallback.

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "simd/hash.h"
#include "simd/simd.h"

namespace bento::simd {
namespace {

constexpr uint64_t kNullTag = 0x9AE16A3B2F90404FULL;
constexpr uint64_t kHashSeed = 0x8445D61A4E774912ULL;

bool RefBit(const uint8_t* bits, int64_t i) {
  return (bits[i >> 3] >> (i & 7)) & 1;
}

std::vector<uint8_t> RandomBytes(int64_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint8_t> out(static_cast<size_t>(n));
  for (auto& b : out) b = static_cast<uint8_t>(rng());
  return out;
}

std::vector<uint8_t> RandomValidity(int64_t bits, uint64_t seed,
                                    double null_fraction) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<uint8_t> out(static_cast<size_t>((bits + 7) / 8), 0);
  for (int64_t i = 0; i < bits; ++i) {
    if (u(rng) >= null_fraction) {
      out[static_cast<size_t>(i >> 3)] |=
          static_cast<uint8_t>(1u << (i & 7));
    }
  }
  return out;
}

std::vector<double> RandomDoubles(int64_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-1e6, 1e6);
  std::uniform_int_distribution<int> special(0, 19);
  std::vector<double> out(static_cast<size_t>(n));
  for (auto& v : out) {
    switch (special(rng)) {
      case 0:
        v = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        v = -0.0;
        break;
      case 2:
        v = 0.0;
        break;
      case 3:
        v = std::numeric_limits<double>::infinity();
        break;
      case 4:
        v = -std::numeric_limits<double>::infinity();
        break;
      default:
        v = u(rng);
    }
  }
  return out;
}

std::vector<int64_t> RandomInts(int64_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> out(static_cast<size_t>(n));
  for (auto& v : out) v = static_cast<int64_t>(rng());
  return out;
}

// The sizes exercise remainders around every vector width (4/8/32 lanes).
const int64_t kSizes[] = {0, 1, 3, 7, 8, 31, 32, 33, 63, 64, 100, 255, 1000};

TEST(SimdPopcount, MatchesBitLoop) {
  for (int64_t n : kSizes) {
    auto bytes = RandomBytes((n + 7) / 8, 0x1234 + static_cast<uint64_t>(n));
    int64_t expected = 0;
    for (int64_t i = 0; i < n; ++i) expected += RefBit(bytes.data(), i);
    EXPECT_EQ(PopcountBits(bytes.data(), n), expected) << "n=" << n;
  }
}

TEST(SimdBytes, AndOrMatchReference) {
  for (int64_t n : kSizes) {
    auto a = RandomBytes(n, 1 + static_cast<uint64_t>(n));
    auto b = RandomBytes(n, 2 + static_cast<uint64_t>(n));
    std::vector<uint8_t> got(static_cast<size_t>(n));
    AndBytes(a.data(), b.data(), got.data(), n);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], static_cast<uint8_t>(a[i] & b[i])) << i;
    }
    OrBytes(a.data(), b.data(), got.data(), n);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], static_cast<uint8_t>(a[i] | b[i])) << i;
    }
  }
}

TEST(SimdBool, AndOrNotMatchReference) {
  for (int64_t n : kSizes) {
    // Mix of 0, 1, and arbitrary nonzero truthy bytes.
    auto a = RandomBytes(n, 3 + static_cast<uint64_t>(n));
    auto b = RandomBytes(n, 4 + static_cast<uint64_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      if (i % 3 == 0) a[static_cast<size_t>(i)] &= 1;
      if (i % 5 == 0) b[static_cast<size_t>(i)] &= 1;
    }
    std::vector<uint8_t> got(static_cast<size_t>(n));
    BoolAndBytes(a.data(), b.data(), got.data(), n);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], (a[i] != 0 && b[i] != 0) ? 1 : 0) << i;
    }
    BoolOrBytes(a.data(), b.data(), got.data(), n);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], (a[i] != 0 || b[i] != 0) ? 1 : 0) << i;
    }
    BoolNotBytes(a.data(), got.data(), n);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], a[i] == 0 ? 1 : 0) << i;
    }
  }
}

bool RefCmp(double a, Cmp op, double b) {
  switch (op) {
    case Cmp::kEq:
      return a == b;
    case Cmp::kNe:
      return a != b;
    case Cmp::kLt:
      return a < b;
    case Cmp::kLe:
      return a <= b;
    case Cmp::kGt:
      return a > b;
    case Cmp::kGe:
      return a >= b;
  }
  return false;
}

TEST(SimdCompare, F64AllOpsIncludingNaN) {
  const Cmp ops[] = {Cmp::kEq, Cmp::kNe, Cmp::kLt, Cmp::kLe, Cmp::kGt,
                     Cmp::kGe};
  for (int64_t n : kSizes) {
    auto data = RandomDoubles(n, 5 + static_cast<uint64_t>(n));
    // Plant exact matches so kEq has hits.
    for (int64_t i = 0; i < n; i += 7) data[static_cast<size_t>(i)] = 42.5;
    std::vector<uint8_t> got(static_cast<size_t>(n));
    for (Cmp op : ops) {
      CompareF64(data.data(), n, op, 42.5, got.data());
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], RefCmp(data[static_cast<size_t>(i)], op, 42.5) ? 1 : 0)
            << "op=" << static_cast<int>(op) << " i=" << i;
      }
    }
  }
}

TEST(SimdCompare, I64WidensToDouble) {
  const Cmp ops[] = {Cmp::kEq, Cmp::kNe, Cmp::kLt, Cmp::kLe, Cmp::kGt,
                     Cmp::kGe};
  for (int64_t n : kSizes) {
    auto data = RandomInts(n, 6 + static_cast<uint64_t>(n));
    for (int64_t i = 0; i < n; i += 5) data[static_cast<size_t>(i)] = 1000;
    std::vector<uint8_t> got(static_cast<size_t>(n));
    for (Cmp op : ops) {
      CompareI64(data.data(), n, op, 1000.0, got.data());
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i],
                  RefCmp(static_cast<double>(data[static_cast<size_t>(i)]), op,
                         1000.0)
                      ? 1
                      : 0)
            << "op=" << static_cast<int>(op) << " i=" << i;
      }
    }
  }
}

TEST(SimdMaskToIndices, MatchesReferenceWithAndWithoutValidity) {
  for (int64_t n : kSizes) {
    auto mask = RandomBytes(n, 7 + static_cast<uint64_t>(n));
    for (int64_t i = 0; i < n; ++i) mask[static_cast<size_t>(i)] &= 1;
    auto validity = RandomValidity(n, 8 + static_cast<uint64_t>(n), 0.3);
    for (const uint8_t* bits : {static_cast<const uint8_t*>(nullptr),
                                static_cast<const uint8_t*>(validity.data())}) {
      std::vector<int64_t> got(static_cast<size_t>(n) + 1, -1);
      const int64_t count = MaskToIndices(mask.data(), bits, n, got.data());
      std::vector<int64_t> expected;
      for (int64_t i = 0; i < n; ++i) {
        if (mask[static_cast<size_t>(i)] != 0 &&
            (bits == nullptr || RefBit(bits, i))) {
          expected.push_back(i);
        }
      }
      ASSERT_EQ(count, static_cast<int64_t>(expected.size())) << "n=" << n;
      for (size_t k = 0; k < expected.size(); ++k) {
        ASSERT_EQ(got[k], expected[k]) << "n=" << n << " k=" << k;
      }
    }
  }
}

/// Independent re-implementation of the striped moments spec: element at
/// relative position r accumulates into lane r & 3; lanes combine as
/// (l0 + l1) + (l2 + l3); min/max per lane with strict <, then a
/// lane-order scan.
MomentsPart RefMoments(const double* data, const uint8_t* validity,
                       int64_t begin, int64_t end) {
  double sum[4] = {0, 0, 0, 0};
  double sum_sq[4] = {0, 0, 0, 0};
  double mn[4], mx[4];
  for (int j = 0; j < 4; ++j) {
    mn[j] = std::numeric_limits<double>::infinity();
    mx[j] = -std::numeric_limits<double>::infinity();
  }
  int64_t count = 0;
  for (int64_t i = begin; i < end; ++i) {
    if (validity != nullptr && !RefBit(validity, i)) continue;
    const double v = data[i];
    if (std::isnan(v)) continue;
    const int lane = static_cast<int>((i - begin) & 3);
    sum[lane] += v;
    sum_sq[lane] += v * v;
    if (v < mn[lane]) mn[lane] = v;
    if (v > mx[lane]) mx[lane] = v;
    ++count;
  }
  MomentsPart m;
  m.count = count;
  if (count == 0) return m;
  m.sum = (sum[0] + sum[1]) + (sum[2] + sum[3]);
  m.sum_sq = (sum_sq[0] + sum_sq[1]) + (sum_sq[2] + sum_sq[3]);
  m.min = mn[0];
  m.max = mx[0];
  for (int j = 1; j < 4; ++j) {
    if (mn[j] < m.min) m.min = mn[j];
    if (mx[j] > m.max) m.max = mx[j];
  }
  return m;
}

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return bits;
}

TEST(SimdMoments, F64BitIdenticalToStripedReference) {
  for (int64_t n : kSizes) {
    auto data = RandomDoubles(n, 9 + static_cast<uint64_t>(n));
    auto validity = RandomValidity(n, 10 + static_cast<uint64_t>(n), 0.2);
    // Unaligned begins exercise the head-alignment fallbacks.
    for (int64_t begin : {int64_t{0}, std::min<int64_t>(3, n),
                          std::min<int64_t>(8, n), std::min<int64_t>(13, n)}) {
      for (const uint8_t* bits : {static_cast<const uint8_t*>(nullptr),
                                  static_cast<const uint8_t*>(validity.data())}) {
        MomentsPart got = MomentsF64(data.data(), bits, begin, n);
        MomentsPart want = RefMoments(data.data(), bits, begin, n);
        ASSERT_EQ(got.count, want.count) << "n=" << n << " b=" << begin;
        ASSERT_EQ(BitsOf(got.sum), BitsOf(want.sum)) << "n=" << n
                                                     << " b=" << begin;
        ASSERT_EQ(BitsOf(got.sum_sq), BitsOf(want.sum_sq)) << "n=" << n;
        if (want.count > 0) {
          ASSERT_EQ(BitsOf(got.min), BitsOf(want.min)) << "n=" << n;
          ASSERT_EQ(BitsOf(got.max), BitsOf(want.max)) << "n=" << n;
        }
      }
    }
  }
}

TEST(SimdMoments, I64BitIdenticalToStripedReference) {
  for (int64_t n : kSizes) {
    auto raw = RandomInts(n, 11 + static_cast<uint64_t>(n));
    // Keep magnitudes exactly representable so the int64->double widening
    // itself is deterministic across levels (it always is; this keeps the
    // reference conversion trivially comparable too).
    for (auto& v : raw) v %= (int64_t{1} << 40);
    std::vector<double> widened(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      widened[i] = static_cast<double>(raw[i]);
    }
    auto validity = RandomValidity(n, 12 + static_cast<uint64_t>(n), 0.2);
    for (const uint8_t* bits : {static_cast<const uint8_t*>(nullptr),
                                static_cast<const uint8_t*>(validity.data())}) {
      MomentsPart got = MomentsI64(raw.data(), bits, 0, n);
      MomentsPart want = RefMoments(widened.data(), bits, 0, n);
      ASSERT_EQ(got.count, want.count) << "n=" << n;
      ASSERT_EQ(BitsOf(got.sum), BitsOf(want.sum)) << "n=" << n;
      ASSERT_EQ(BitsOf(got.sum_sq), BitsOf(want.sum_sq)) << "n=" << n;
      if (want.count > 0) {
        ASSERT_EQ(BitsOf(got.min), BitsOf(want.min)) << "n=" << n;
        ASSERT_EQ(BitsOf(got.max), BitsOf(want.max)) << "n=" << n;
      }
    }
  }
}

// The hash-mix dispatchers must reproduce MixU64(h, HashWord64(w)) exactly.
// On AVX2 this validates the 4-lane 64x64->128 multiply emulation against
// the scalar Mum formula bit for bit.
TEST(SimdHashMix, U64MatchesScalarFormula) {
  for (int64_t n : kSizes) {
    auto words = RandomInts(n, 13 + static_cast<uint64_t>(n));
    auto validity = RandomValidity(n, 14 + static_cast<uint64_t>(n), 0.25);
    for (const uint8_t* bits : {static_cast<const uint8_t*>(nullptr),
                                static_cast<const uint8_t*>(validity.data())}) {
      for (int64_t begin : {int64_t{0}, std::min<int64_t>(5, n)}) {
        std::vector<uint64_t> got(static_cast<size_t>(n), kHashSeed);
        std::vector<uint64_t> want(static_cast<size_t>(n), kHashSeed);
        HashMixU64(got.data(), reinterpret_cast<const uint64_t*>(words.data()),
                   bits, begin, n, kNullTag);
        for (int64_t i = begin; i < n; ++i) {
          const uint64_t w = static_cast<uint64_t>(words[static_cast<size_t>(i)]);
          const uint64_t cell =
              bits == nullptr || RefBit(bits, i) ? HashWord64(w) : kNullTag;
          want[static_cast<size_t>(i)] =
              MixU64(want[static_cast<size_t>(i)], cell);
        }
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdHashMix, F64NormalizesZeroAndNaN) {
  for (int64_t n : kSizes) {
    auto values = RandomDoubles(n, 15 + static_cast<uint64_t>(n));
    auto validity = RandomValidity(n, 16 + static_cast<uint64_t>(n), 0.25);
    for (const uint8_t* bits : {static_cast<const uint8_t*>(nullptr),
                                static_cast<const uint8_t*>(validity.data())}) {
      std::vector<uint64_t> got(static_cast<size_t>(n), kHashSeed);
      std::vector<uint64_t> want(static_cast<size_t>(n), kHashSeed);
      HashMixF64(got.data(), values.data(), bits, 0, n, kNullTag);
      for (int64_t i = 0; i < n; ++i) {
        uint64_t cell;
        if (bits != nullptr && !RefBit(bits, i)) {
          cell = kNullTag;
        } else {
          double v = values[static_cast<size_t>(i)];
          if (v == 0.0) v = 0.0;  // -0.0 -> +0.0
          if (std::isnan(v)) {
            cell = kNullTag ^ 1;
          } else {
            cell = HashWord64(BitsOf(v));
          }
        }
        want[static_cast<size_t>(i)] =
            MixU64(want[static_cast<size_t>(i)], cell);
        ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdHashMix, CodesLookUpPerDictionaryHashes) {
  const char* entries[] = {"alpha", "beta", "gamma", "delta"};
  std::vector<uint64_t> code_hashes;
  for (const char* e : entries) {
    code_hashes.push_back(Hash64(e, std::strlen(e)));
  }
  for (int64_t n : kSizes) {
    std::mt19937_64 rng(17 + static_cast<uint64_t>(n));
    std::vector<int32_t> codes(static_cast<size_t>(n));
    for (auto& c : codes) c = static_cast<int32_t>(rng() % 4);
    auto validity = RandomValidity(n, 18 + static_cast<uint64_t>(n), 0.25);
    std::vector<uint64_t> got(static_cast<size_t>(n), kHashSeed);
    HashMixCodes(got.data(), codes.data(), validity.data(), 0, n,
                 code_hashes.data(), kNullTag);
    for (int64_t i = 0; i < n; ++i) {
      const uint64_t cell =
          RefBit(validity.data(), i)
              ? code_hashes[static_cast<size_t>(codes[static_cast<size_t>(i)])]
              : kNullTag;
      ASSERT_EQ(got[i], MixU64(kHashSeed, cell)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdHash, Hash64BasicProperties) {
  // Deterministic; length-sensitive; tail windows (1-3, 4-15, 16-47, 48+)
  // all reachable.
  const std::string base(64, 'x');
  std::vector<uint64_t> seen;
  for (size_t len : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                     size_t{8}, size_t{15}, size_t{16}, size_t{31},
                     size_t{47}, size_t{48}, size_t{64}}) {
    const uint64_t h1 = Hash64(base.data(), len);
    const uint64_t h2 = Hash64(base.data(), len);
    EXPECT_EQ(h1, h2);
    for (uint64_t prior : seen) EXPECT_NE(h1, prior) << "len=" << len;
    seen.push_back(h1);
  }
}

TEST(SimdLevel, NameIsStable) {
  const Level level = ActiveLevel();
  EXPECT_STREQ(LevelName(level), LevelName(ActiveLevel()));
  const char* v = std::getenv("BENTO_SIMD");
  if (v != nullptr && std::string_view(v) == "off") {
    EXPECT_EQ(level, Level::kScalar);
  }
}

}  // namespace
}  // namespace bento::simd
