#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace bento {

namespace {

/// BENTO_LOG accepts level names (debug, info, warning, error, fatal; any
/// case, "warn" works) or the numeric enum value. Unset or unrecognized
/// values keep the kWarning default.
int LevelFromEnv() {
  const char* env = std::getenv("BENTO_LOG");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kWarning);
  }
  std::string v;
  for (const char* p = env; *p; ++p) {
    v.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (v == "debug" || v == "0") return static_cast<int>(LogLevel::kDebug);
  if (v == "info" || v == "1") return static_cast<int>(LogLevel::kInfo);
  if (v == "warning" || v == "warn" || v == "2") {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (v == "error" || v == "3") return static_cast<int>(LogLevel::kError);
  if (v == "fatal" || v == "4") return static_cast<int>(LogLevel::kFatal);
  return static_cast<int>(LogLevel::kWarning);
}

// -1 = not yet initialized from the environment; resolved lazily so the
// first log site works regardless of static-init order.
std::atomic<int> g_min_level{-1};

int MinLevel() {
  int v = g_min_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = LevelFromEnv();
    g_min_level.store(v, std::memory_order_relaxed);
  }
  return v;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = static_cast<int>(level); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(MinLevel()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= MinLevel() ||
               level == LogLevel::kFatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace bento
