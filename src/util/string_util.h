#ifndef BENTO_UTIL_STRING_UTIL_H_
#define BENTO_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace bento {

/// \brief Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// \brief Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// \brief Removes ASCII whitespace from both ends.
std::string_view StrTrim(std::string_view s);

/// \brief ASCII lower-cased copy.
std::string AsciiToLower(std::string_view s);

/// \brief ASCII upper-cased copy.
std::string AsciiToUpper(std::string_view s);

/// \brief True if `hay` contains `needle` (plain substring search).
bool StrContains(std::string_view hay, std::string_view needle);

bool StrStartsWith(std::string_view s, std::string_view prefix);
bool StrEndsWith(std::string_view s, std::string_view suffix);

/// \brief Strict parse of the whole string; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);
Result<bool> ParseBool(std::string_view s);

/// \brief Formats a double the way the CSV writer needs it: shortest
/// round-trip representation without locale dependence.
std::string FormatDouble(double v);

/// \brief "1.5 GiB"-style human-readable byte count for reports.
std::string HumanBytes(uint64_t bytes);

/// \brief "%8.3f"-style fixed formatting helper for report tables.
std::string FormatFixed(double v, int precision);

}  // namespace bento

#endif  // BENTO_UTIL_STRING_UTIL_H_
