#ifndef BENTO_UTIL_JSON_H_
#define BENTO_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace bento {

/// \brief A minimal JSON document model used for pipeline specifications
/// (Bento configures pipelines through JSON files, as in the paper) and for
/// machine-readable benchmark reports.
///
/// Supports null, bool, number (stored as double, with integer accessor),
/// string, array, object. Object member order is preserved.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue Int(int64_t v) { return Number(static_cast<double>(v)); }
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  int64_t int_value() const { return static_cast<int64_t>(number_); }
  const std::string& string_value() const { return string_; }

  // Array access.
  size_t size() const { return array_.size(); }
  const JsonValue& at(size_t i) const { return array_[i]; }
  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  const std::vector<JsonValue>& items() const { return array_; }

  // Object access.
  bool Has(const std::string& key) const;
  /// Returns the member or a shared null value when absent.
  const JsonValue& Get(const std::string& key) const;
  void Set(const std::string& key, JsonValue v);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  // Typed getters with defaults, for ergonomic config reading.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0.0) const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// \brief Serializes to compact JSON; `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// \brief Parses a complete JSON document; rejects trailing garbage.
Result<JsonValue> ParseJson(std::string_view text);

/// \brief Reads and parses a JSON file.
Result<JsonValue> ReadJsonFile(const std::string& path);

}  // namespace bento

#endif  // BENTO_UTIL_JSON_H_
