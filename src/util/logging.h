#ifndef BENTO_UTIL_LOGGING_H_
#define BENTO_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "util/status.h"

namespace bento {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Process-wide minimum level for emitted log lines.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it (to stderr) on destruction.
/// Fatal severity aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

struct LogMessageVoidify {
  // Lowest-precedence operator so the macro's ternary can discard the stream.
  void operator&(LogMessage&) {}
};

}  // namespace internal

#define BENTO_LOG_INTERNAL(level) \
  ::bento::internal::LogMessage(::bento::LogLevel::level, __FILE__, __LINE__)

#define BENTO_LOG(severity) BENTO_LOG_INTERNAL(k##severity)

/// Invariant check, active in all build types; aborts with a message.
#define BENTO_CHECK(cond)                                         \
  (cond) ? (void)0                                                \
         : ::bento::internal::LogMessageVoidify() &               \
               BENTO_LOG_INTERNAL(kFatal) << "Check failed: " #cond " "

#define BENTO_CHECK_OK(expr)                                        \
  do {                                                              \
    ::bento::Status _st = (expr);                                   \
    BENTO_CHECK(_st.ok()) << _st.ToString();                        \
  } while (false)

#define BENTO_DCHECK(cond) BENTO_CHECK(cond)

}  // namespace bento

#endif  // BENTO_UTIL_LOGGING_H_
