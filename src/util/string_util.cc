#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace bento {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StrContains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

bool StrStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool StrEndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StrTrim(s);
  if (s.empty()) return Status::Invalid("empty string is not an integer");
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::Invalid("not an integer: '", std::string(s), "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = StrTrim(s);
  if (s.empty()) return Status::Invalid("empty string is not a number");
  // std::from_chars for double is supported by GCC 11+.
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::Invalid("not a number: '", std::string(s), "'");
  }
  return value;
}

Result<bool> ParseBool(std::string_view s) {
  std::string lower = AsciiToLower(StrTrim(s));
  if (lower == "true" || lower == "1" || lower == "t" || lower == "yes") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "f" || lower == "no") {
    return false;
  }
  return Status::Invalid("not a boolean: '", std::string(s), "'");
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Shortest representation that round-trips: try increasing precision.
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::from_chars(buf, buf + std::strlen(buf), back);
    if (back == v) break;
  }
  return buf;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatFixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace bento
