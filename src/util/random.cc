#include "util/random.h"

#include <cmath>

namespace bento {

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return Uniform(n);
  // Inverse-CDF on the continuous approximation of the Zipf distribution:
  // P(X <= x) ~ (x^(1-s) - 1) / (n^(1-s) - 1) for s != 1.
  const double u = UniformDouble();
  if (std::abs(s - 1.0) < 1e-9) {
    const double x = std::exp(u * std::log(static_cast<double>(n)));
    uint64_t r = static_cast<uint64_t>(x) - 1;
    return r >= n ? n - 1 : r;
  }
  const double t = 1.0 - s;
  const double x =
      std::pow(u * (std::pow(static_cast<double>(n), t) - 1.0) + 1.0, 1.0 / t);
  uint64_t r = static_cast<uint64_t>(x) - 1;
  return r >= n ? n - 1 : r;
}

std::string Rng::AsciiString(int min_len, int max_len) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-";
  const int len = static_cast<int>(UniformInt(min_len, max_len));
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out.push_back(kAlphabet[Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

}  // namespace bento
