#ifndef BENTO_UTIL_STATUS_H_
#define BENTO_UTIL_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace bento {

/// \brief Machine-readable category of a failure.
///
/// Mirrors the Arrow/RocksDB idiom: library code never throws across API
/// boundaries; every fallible operation returns a Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalid,         ///< malformed argument or input data
  kTypeError,       ///< operation applied to an incompatible data type
  kKeyError,        ///< unknown column / key
  kIndexError,      ///< out-of-bounds row or position
  kOutOfMemory,     ///< memory budget of the simulated machine exceeded
  kIOError,         ///< file system / format error
  kNotImplemented,  ///< preparator not supported by this engine
  kCancelled,       ///< execution aborted
  kUnknown,
};

/// \brief Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: OK or a code plus message.
///
/// Cheap to pass by value: the OK state carries no allocation; error state
/// holds a heap string. Copyable and movable.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(msg)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  template <typename... Args>
  static Status Invalid(Args&&... args) {
    return FromArgs(StatusCode::kInvalid, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status TypeError(Args&&... args) {
    return FromArgs(StatusCode::kTypeError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status KeyError(Args&&... args) {
    return FromArgs(StatusCode::kKeyError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IndexError(Args&&... args) {
    return FromArgs(StatusCode::kIndexError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfMemory(Args&&... args) {
    return FromArgs(StatusCode::kOutOfMemory, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return FromArgs(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return FromArgs(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Cancelled(Args&&... args) {
    return FromArgs(StatusCode::kCancelled, std::forward<Args>(args)...);
  }

  bool ok() const { return state_ == nullptr; }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsInvalid() const { return code() == StatusCode::kInvalid; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }

  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  template <typename... Args>
  static Status FromArgs(StatusCode code, Args&&... args) {
    std::ostringstream oss;
    (oss << ... << args);
    return Status(code, oss.str());
  }

  std::shared_ptr<State> state_;  // nullptr means OK
};

/// Propagates a non-OK Status to the caller.
#define BENTO_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::bento::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

#define BENTO_CONCAT_IMPL(x, y) x##y
#define BENTO_CONCAT(x, y) BENTO_CONCAT_IMPL(x, y)

}  // namespace bento

#endif  // BENTO_UTIL_STATUS_H_
