#ifndef BENTO_UTIL_RANDOM_H_
#define BENTO_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace bento {

/// \brief Deterministic, fast PRNG (xoshiro256**) used by the dataset
/// generators and property tests. Seeded runs are fully reproducible across
/// platforms, which std::mt19937 distributions are not.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + UniformDouble() * (hi - lo);
  }

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-distributed rank in [0, n) with skew `s` (s=0 is uniform).
  /// Approximate inverse-CDF sampling; adequate for workload generation.
  uint64_t Zipf(uint64_t n, double s);

  /// Random ASCII string with length uniform in [min_len, max_len].
  std::string AsciiString(int min_len, int max_len);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bento

#endif  // BENTO_UTIL_RANDOM_H_
