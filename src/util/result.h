#ifndef BENTO_UTIL_RESULT_H_
#define BENTO_UTIL_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace bento {

/// \brief Either a value of type T or an error Status.
///
/// The canonical return type of fallible value-producing functions:
///
///   Result<std::shared_ptr<Table>> ReadCsv(const std::string& path);
///
/// Use BENTO_ASSIGN_OR_RETURN to unwrap in Status/Result-returning code.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value and from a Status keeps call sites
  /// natural (`return table;` / `return Status::IOError(...)`).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    if (std::get<Status>(var_).ok()) {
      // A Result must be either a value or an error; OK-without-value is a bug.
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(var_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  /// Precondition: ok(). Aborts otherwise (programming error).
  const T& ValueOrDie() const& {
    if (!ok()) Abort();
    return std::get<T>(var_);
  }
  T& ValueOrDie() & {
    if (!ok()) Abort();
    return std::get<T>(var_);
  }
  T&& ValueOrDie() && {
    if (!ok()) Abort();
    return std::move(std::get<T>(var_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  T MoveValueUnsafe() { return std::move(std::get<T>(var_)); }

 private:
  [[noreturn]] void Abort() const {
    BENTO_LOG(Fatal) << "Result::ValueOrDie on error: "
                     << std::get<Status>(var_).ToString();
    std::abort();  // unreachable: Fatal aborts after flushing
  }

  std::variant<Status, T> var_;
};

/// Unwraps a Result into `lhs`, or returns its Status from the enclosing
/// function. `lhs` may be a declaration (`auto x`) or an existing lvalue.
#define BENTO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie();

#define BENTO_ASSIGN_OR_RETURN(lhs, rexpr) \
  BENTO_ASSIGN_OR_RETURN_IMPL(BENTO_CONCAT(_bento_res_, __COUNTER__), lhs, rexpr)

}  // namespace bento

#endif  // BENTO_UTIL_RESULT_H_
