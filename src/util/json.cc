#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace bento {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::Has(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  static const JsonValue kNull;
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return kNull;
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue& v = Get(key);
  return v.is_string() ? v.string_value() : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue& v = Get(key);
  return v.is_number() ? v.number_value() : fallback;
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue& v = Get(key);
  return v.is_number() ? v.int_value() : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue& v = Get(key);
  return v.is_bool() ? v.bool_value() : fallback;
}

namespace {

void EscapeStringTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Indent(std::string* out, int indent, int depth) {
  if (indent > 0) {
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber: {
      if (number_ == static_cast<double>(static_cast<int64_t>(number_)) &&
          std::abs(number_) < 9.0e15) {
        out->append(std::to_string(static_cast<int64_t>(number_)));
      } else {
        out->append(FormatDouble(number_));
      }
      break;
    }
    case Type::kString:
      EscapeStringTo(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) Indent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        EscapeStringTo(object_[i].first, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) Indent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    BENTO_RETURN_NOT_OK(ParseValue(&v));
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::Invalid("trailing characters at offset ", pos_);
    }
    return v;
  }

 private:
  Status ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Status::Invalid("unexpected end of JSON");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        BENTO_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Status::Invalid("bad literal at offset ", pos_);
    }
    pos_ += lit.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    double v = 0.0;
    auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
      return Status::Invalid("bad number at offset ", start);
    }
    *out = JsonValue::Number(v);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::Invalid("bad \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Status::Invalid("bad \\u escape");
              }
            }
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Status::Invalid("bad escape '\\", std::string(1, esc), "'");
        }
      } else {
        out->push_back(c);
      }
    }
    return Status::Invalid("unterminated string");
  }

  Status ParseArray(JsonValue* out) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      JsonValue item;
      BENTO_RETURN_NOT_OK(ParseValue(&item));
      out->Append(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return Status::Invalid("unterminated array");
      char c = text_[pos_++];
      if (c == ']') return Status::OK();
      if (c != ',') return Status::Invalid("expected ',' in array at ", pos_ - 1);
    }
  }

  Status ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::Invalid("expected object key at offset ", pos_);
      }
      std::string key;
      BENTO_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::Invalid("expected ':' at offset ", pos_);
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      BENTO_RETURN_NOT_OK(ParseValue(&value));
      out->Set(key, std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Status::Invalid("unterminated object");
      char c = text_[pos_++];
      if (c == '}') return Status::OK();
      if (c != ',') {
        return Status::Invalid("expected ',' in object at ", pos_ - 1);
      }
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open ", path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseJson(ss.str());
}

}  // namespace bento
