#include "util/status.h"

namespace bento {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalid:
      return "Invalid";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kKeyError:
      return "KeyError";
    case StatusCode::kIndexError:
      return "IndexError";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace bento
