#ifndef BENTO_OBS_METRICS_H_
#define BENTO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/histogram.h"
#include "util/json.h"

namespace bento::obs {

/// \brief Monotonic counter. Increments are relaxed atomic adds, cheap
/// enough for per-task/per-build sites; hot loops should accumulate locally
/// and Add() once per batch (the FlatIndex build-stats pattern).
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-value / high-water gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` when larger (high-water-mark semantics).
  void UpdateMax(int64_t v) {
    int64_t prev = value_.load(std::memory_order_relaxed);
    while (v > prev &&
           !value_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Process-wide registry of named counters and gauges.
///
/// Lookup is a mutex-guarded map; instruments are created on first use and
/// their addresses are stable for the process lifetime, so hot sites cache
/// the pointer in a function-local static and pay only the atomic add.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Find-or-create; the returned pointer never invalidates.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Value of a counter/gauge, or 0 when it was never created.
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  /// The named histogram, or nullptr when it was never created.
  const Histogram* FindHistogram(std::string_view name) const;

  /// Flat snapshot: {"counters": {...}, "gauges": {...}, "histograms":
  /// {...}}. Sections and names are emitted in sorted order; counter values
  /// go through an unsigned-safe number path (no int64 cast, so values past
  /// 2^63 cannot flip negative — byte counters get there on long-lived
  /// service processes).
  JsonValue ToJson() const;

  /// \brief Plain-text dump in the Prometheus exposition format, the body a
  /// service front-end serves at /metrics: `# TYPE` headers, sanitized
  /// `bento_`-prefixed names, histograms as cumulative `_bucket{le=...}`
  /// series plus `_sum`/`_count`.
  std::string DumpPrometheusText() const;

  /// Zeroes every instrument (between benchmark repetitions / tests).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace bento::obs

#endif  // BENTO_OBS_METRICS_H_
