#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/energy.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace bento::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

namespace {

double SteadyClockSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

std::atomic<double (*)()> g_clock{&SteadyClockSeconds};
std::atomic<double (*)()> g_credit_hook{nullptr};

double Now() { return g_clock.load(std::memory_order_relaxed)(); }

double CurrentCredit() {
  double (*hook)() = g_credit_hook.load(std::memory_order_relaxed);
  return hook != nullptr ? hook() : 0.0;
}

/// One buffered event: a complete span ('X') or a counter sample ('C').
struct TraceEvent {
  const char* static_name = nullptr;
  std::string name;  // used when static_name == nullptr
  Category cat = Category::kKernel;
  char phase = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;   // X only
  double vdur_us = 0.0;  // X only: virtual (credit-adjusted) duration
  double value = 0.0;    // C only
  bool sampled = false;  // X only: res holds counter deltas
  ResourceUsage res;     // X only: per-span resource deltas

  std::string_view Name() const {
    return static_name != nullptr ? std::string_view(static_name)
                                  : std::string_view(name);
  }
};

/// Per-thread event buffer. The owning thread appends under `mu` (always
/// uncontended except during an export), the collector drains under the
/// same mutex, so exports while workers are mid-span are race-free.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
  std::string thread_name;
};

class Collector {
 public:
  static Collector& Get() {
    // Leaked: thread buffers registered from pool workers must stay valid
    // through static destruction.
    static Collector* collector = new Collector();
    return *collector;
  }

  ThreadBuffer* BufferForThisThread() {
    thread_local std::shared_ptr<ThreadBuffer> t_buffer;
    if (t_buffer == nullptr) {
      t_buffer = std::make_shared<ThreadBuffer>();
      std::lock_guard<std::mutex> lk(mu_);
      t_buffer->tid = next_tid_++;
      buffers_.push_back(t_buffer);
    }
    return t_buffer.get();
  }

  void Clear() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& buffer : buffers_) {
      std::lock_guard<std::mutex> blk(buffer->mu);
      buffer->events.clear();
    }
    start_wall_.store(Now(), std::memory_order_relaxed);
  }

  double start_wall() const {
    return start_wall_.load(std::memory_order_relaxed);
  }

  /// Snapshot of every buffer's events plus track metadata.
  struct Snapshot {
    struct Track {
      uint32_t tid;
      std::string name;
      std::vector<TraceEvent> events;
    };
    std::vector<Track> tracks;
  };

  Snapshot Take() {
    Snapshot snap;
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& buffer : buffers_) {
      std::lock_guard<std::mutex> blk(buffer->mu);
      Snapshot::Track track;
      track.tid = buffer->tid;
      track.name = buffer->thread_name;
      track.events = buffer->events;
      snap.tracks.push_back(std::move(track));
    }
    return snap;
  }

 private:
  std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  uint32_t next_tid_ = 0;
  std::atomic<double> start_wall_{0.0};
};

void Append(TraceEvent event) {
  ThreadBuffer* buffer = Collector::Get().BufferForThisThread();
  std::lock_guard<std::mutex> lk(buffer->mu);
  buffer->events.push_back(std::move(event));
}

}  // namespace

const char* CategoryName(Category cat) {
  switch (cat) {
    case Category::kIo:
      return "io";
    case Category::kKernel:
      return "kernel";
    case Category::kEngine:
      return "engine";
    case Category::kStage:
      return "stage";
    case Category::kPreparator:
      return "preparator";
    case Category::kSim:
      return "sim";
    case Category::kMemory:
      return "memory";
  }
  return "?";
}

void StartTracing() {
  Collector::Get().Clear();
  internal::g_tracing_enabled.store(true, std::memory_order_release);
}

void StopTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_release);
}

void SetCurrentThreadName(std::string name) {
  ThreadBuffer* buffer = Collector::Get().BufferForThisThread();
  std::lock_guard<std::mutex> lk(buffer->mu);
  buffer->thread_name = std::move(name);
}

void EmitCounter(std::string_view track, double value) {
  if (!TracingEnabled()) return;
  TraceEvent event;
  event.name.assign(track.data(), track.size());
  event.cat = Category::kMemory;
  event.phase = 'C';
  event.ts_us = (Now() - Collector::Get().start_wall()) * 1e6;
  event.value = value;
  Append(std::move(event));
}

void SetVirtualCreditHook(double (*hook)()) {
  g_credit_hook.store(hook, std::memory_order_relaxed);
}

void TraceSpan::Begin(Category cat, const char* static_name) {
  active_ = true;
  cat_ = cat;
  static_name_ = static_name;
  if (ResourceSamplingEnabled()) {
    sampled_ = true;
    res_start_ = ReadThreadUsage();
  }
  credit_start_ = CurrentCredit();
  wall_start_ = Now();
}

void TraceSpan::End() {
  const double wall_end = Now();
  const double credit_delta = CurrentCredit() - credit_start_;
  TraceEvent event;
  event.static_name = static_name_;
  event.cat = cat_;
  event.phase = 'X';
  event.ts_us = (wall_start_ - Collector::Get().start_wall()) * 1e6;
  event.dur_us = (wall_end - wall_start_) * 1e6;
  double vdur_us = event.dur_us - credit_delta * 1e6;
  event.vdur_us = vdur_us > 0.0 ? vdur_us : 0.0;
  if (sampled_) {
    const double sim_hz = CurrentSimCycleHz();
    if (sim_hz > 0.0) {
      // Simulated execution charges deterministic virtual cycles derived
      // from the credit-adjusted duration, so kSimulated rollups are
      // bit-stable under fake clocks and independent of host counters.
      event.res.cycles =
          static_cast<uint64_t>(event.vdur_us * sim_hz * 1e-6);
      event.res.task_clock_ns = static_cast<uint64_t>(event.vdur_us * 1e3);
      event.res.instructions = 0;
      event.res.cache_misses = 0;
      event.res.perf = false;
    } else {
      const ResourceUsage now = ReadThreadUsage();
      event.res.cycles = now.cycles - res_start_.cycles;
      event.res.instructions = now.instructions - res_start_.instructions;
      event.res.cache_misses = now.cache_misses - res_start_.cache_misses;
      event.res.task_clock_ns = now.task_clock_ns - res_start_.task_clock_ns;
      event.res.perf = now.perf;
    }
    event.sampled = true;
    // Attribute before dyn_name_ is moved into the event below.
    AttributeSpan(cat_,
                  static_name_ != nullptr ? std::string_view(static_name_)
                                          : std::string_view(dyn_name_),
                  event.dur_us, event.vdur_us, event.res);
  }
  if (static_name_ == nullptr) event.name = std::move(dyn_name_);
  Append(std::move(event));
  if (sampled_ &&
      (cat_ == Category::kStage || cat_ == Category::kPreparator)) {
    // Energy counter track: a running joules estimate sampled at the end of
    // coarse spans renders as a Perfetto counter lane next to memory.
    EmitCounter("energy:joules", CurrentJoulesEstimate());
  }
}

JsonValue TraceToJson() {
  Collector::Snapshot snap = Collector::Get().Take();

  JsonValue events = JsonValue::Array();
  for (const auto& track : snap.tracks) {
    if (!track.name.empty()) {
      JsonValue meta = JsonValue::Object();
      meta.Set("name", JsonValue::Str("thread_name"));
      meta.Set("ph", JsonValue::Str("M"));
      meta.Set("pid", JsonValue::Int(1));
      meta.Set("tid", JsonValue::Int(track.tid));
      JsonValue args = JsonValue::Object();
      args.Set("name", JsonValue::Str(track.name));
      meta.Set("args", std::move(args));
      events.Append(std::move(meta));
    }
    for (const TraceEvent& e : track.events) {
      JsonValue j = JsonValue::Object();
      j.Set("name", JsonValue::Str(std::string(e.Name())));
      j.Set("ph", JsonValue::Str(std::string(1, e.phase)));
      j.Set("pid", JsonValue::Int(1));
      j.Set("tid", JsonValue::Int(track.tid));
      j.Set("ts", JsonValue::Number(e.ts_us));
      if (e.phase == 'X') {
        j.Set("cat", JsonValue::Str(CategoryName(e.cat)));
        j.Set("dur", JsonValue::Number(e.dur_us));
        JsonValue args = JsonValue::Object();
        args.Set("vdur_us", JsonValue::Number(e.vdur_us));
        if (e.sampled) {
          args.Set("cycles",
                   JsonValue::Number(static_cast<double>(e.res.cycles)));
          args.Set("instructions",
                   JsonValue::Number(static_cast<double>(e.res.instructions)));
          args.Set("cache_misses",
                   JsonValue::Number(static_cast<double>(e.res.cache_misses)));
          args.Set("task_clock_us",
                   JsonValue::Number(
                       static_cast<double>(e.res.task_clock_ns) * 1e-3));
          args.Set("perf", JsonValue::Bool(e.res.perf));
        }
        j.Set("args", std::move(args));
      } else {
        JsonValue args = JsonValue::Object();
        args.Set("value", JsonValue::Number(e.value));
        j.Set("args", std::move(args));
      }
      events.Append(std::move(j));
    }
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("displayTimeUnit", JsonValue::Str("ms"));
  doc.Set("traceEvents", std::move(events));
  doc.Set("metrics", MetricsRegistry::Global().ToJson());
  return doc;
}

Status WriteTrace(const std::string& path) {
  const std::string text = TraceToJson().Dump(0);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output ", path, " for writing");
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return Status::OK();
}

TraceEnvScope::TraceEnvScope(std::string path) : path_(std::move(path)) {
  if (path_.empty()) {
    const char* env = std::getenv("BENTO_TRACE");
    if (env != nullptr) path_ = env;
  }
  if (path_.empty()) return;
  if (TracingEnabled()) {
    // An enclosing scope owns the trace; this one is a passive observer.
    path_.clear();
    return;
  }
  StartTracing();
  owns_ = true;
}

TraceEnvScope::~TraceEnvScope() {
  if (!owns_) return;
  StopTracing();
  Status st = WriteTrace(path_);
  if (!st.ok()) {
    BENTO_LOG(Error) << "failed to write trace: " << st.ToString();
  } else {
    BENTO_LOG(Info) << "trace written to " << path_;
  }
}

namespace testing {

void SetClockForTest(double (*clock)()) {
  g_clock.store(clock != nullptr ? clock : &SteadyClockSeconds,
                std::memory_order_relaxed);
}

}  // namespace testing

}  // namespace bento::obs
