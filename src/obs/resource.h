#ifndef BENTO_OBS_RESOURCE_H_
#define BENTO_OBS_RESOURCE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace bento::obs {

enum class Category;  // obs/trace.h

/// \brief Cumulative per-thread resource counters since sampler install.
///
/// `perf` is true when cycles/instructions/cache_misses come from live
/// hardware counters (perf_event_open); in the fallback backend the thread
/// CPU clock supplies task_clock_ns and cycles are synthesized as
/// task_clock × model_hz so downstream energy attribution always has a
/// cycle denominator.
struct ResourceUsage {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_misses = 0;
  uint64_t task_clock_ns = 0;
  bool perf = false;
};

/// Which counter source backs the calling thread's sampler.
enum class SamplerBackend {
  kNone,       ///< not installed yet
  kPerf,       ///< perf_event_open hardware counter group
  kTaskClock,  ///< CLOCK_THREAD_CPUTIME_ID fallback (containers, macOS,
               ///< BENTO_PERF=off)
};

/// \brief Opens this thread's counters (idempotent). perf unavailability —
/// no /proc/sys/kernel/perf_event_paranoid access, seccomp, macOS,
/// BENTO_PERF=off — is a clean no-op: the thread falls back to the CPU-time
/// backend and OK is returned. Only a broken fallback clock reports an
/// error.
Status InstallThreadSampler();

SamplerBackend ThreadSamplerBackend();

/// Current cumulative counters for this thread (auto-installs the sampler).
ResourceUsage ReadThreadUsage();

namespace internal {
/// Gates the per-span counter reads, separately from tracing: a plain
/// --trace run pays no perf/clock syscalls.
extern std::atomic<bool> g_sampling_enabled;
}  // namespace internal

inline bool ResourceSamplingEnabled() {
  return internal::g_sampling_enabled.load(std::memory_order_relaxed);
}

/// Turns span-exit resource attribution on/off. Sampling rides on tracing:
/// spans only run while TracingEnabled(), so callers that want attribution
/// without a trace file still call StartTracing (ResourceReportScope does).
void EnableResourceSampling();
void DisableResourceSampling();

/// \brief Hook returning the simulated cycle frequency (Hz) when the
/// calling thread executes under an ExecutionMode::kSimulated session, 0
/// otherwise. Installed by sim::Session (like the virtual-credit hook) so
/// simulated runs charge deterministic virtual cycles — vdur × hz — instead
/// of host counters, keeping kSimulated bit-deterministic under fake clocks.
void SetSimCycleHzHook(double (*hook)());
double CurrentSimCycleHz();

/// \brief Thread-local attribution label ("dataset/engine") captured into
/// rollup keys, so one process aggregating many runs can split its report
/// by run. Restores the previous label on destruction.
class ResourceContextScope {
 public:
  explicit ResourceContextScope(std::string context);
  ~ResourceContextScope();

  ResourceContextScope(const ResourceContextScope&) = delete;
  ResourceContextScope& operator=(const ResourceContextScope&) = delete;

 private:
  std::string previous_;
};

const std::string& CurrentResourceContext();

/// \brief Span-exit attribution sink (called by TraceSpan::End while
/// sampling): adds the span's wall/virtual duration and counter deltas to
/// the rollup keyed by (context, category, name) and to the per-category
/// duration histogram `span.<category>.dur_us` in the MetricsRegistry.
void AttributeSpan(Category cat, std::string_view name, double dur_us,
                   double vdur_us, const ResourceUsage& delta);

/// \brief Cumulative joules attributed so far in the current sampling
/// window: the RAPL delta when available, else the cycles×watts model over
/// all attributed cycles. Backs the "energy:joules" counter track.
double CurrentJoulesEstimate();

/// \brief Aggregated resource rollups with energy attribution.
struct ResourceReport {
  struct Row {
    std::string context;   ///< ResourceContextScope label ("-" when none)
    std::string category;  ///< span category name
    std::string name;      ///< span name
    uint64_t spans = 0;
    double wall_us = 0.0;
    double vdur_us = 0.0;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t cache_misses = 0;
    uint64_t task_clock_ns = 0;
    bool perf = false;     ///< any contribution from live hardware counters
    double joules = 0.0;   ///< energy share (see energy_source)
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
  };

  std::vector<Row> rows;  ///< sorted by cycles, largest first
  double total_joules = 0.0;
  std::string energy_source;  ///< "rapl" | "model"
  double model_watts = 0.0;
  double model_hz = 0.0;

  /// First row matching (context, category, name), or nullptr.
  const Row* Find(std::string_view context, std::string_view category,
                  std::string_view name) const;

  /// Fixed-width text table (the --report output).
  std::string FormatTable() const;

  JsonValue ToJson() const;
};

/// Clears every rollup and (re)snapshots the energy meter, starting a new
/// measurement window.
void ResetResourceAggregation();

/// \brief Snapshot of the rollups with energy distributed: RAPL joules are
/// split across rows proportionally by cycles (task-clock share when no
/// cycles were recorded at all); in model mode each row gets
/// ModelJoules(row.cycles) directly.
ResourceReport SnapshotResourceReport();

/// \brief RAII activation for binaries (--report / BENTO_REPORT): starts
/// tracing when no enclosing scope owns it, enables sampling, resets the
/// aggregation window, and on destruction prints the report table to
/// stdout. Inert when `requested` is false and BENTO_REPORT is unset, or
/// when an enclosing scope is already reporting.
class ResourceReportScope {
 public:
  explicit ResourceReportScope(bool requested);
  ~ResourceReportScope();

  ResourceReportScope(const ResourceReportScope&) = delete;
  ResourceReportScope& operator=(const ResourceReportScope&) = delete;

  bool owns() const { return owns_; }

 private:
  bool owns_ = false;
  bool owns_tracing_ = false;
};

}  // namespace bento::obs

#endif  // BENTO_OBS_RESOURCE_H_
