#include "obs/energy.h"

#include <dirent.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bento::obs {

namespace {

/// Reads a sysfs-style file containing one unsigned decimal number.
bool ReadUint64File(const std::string& path, uint64_t* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  unsigned long long v = 0;
  const bool ok = std::fscanf(f, "%llu", &v) == 1;
  std::fclose(f);
  if (ok) *out = static_cast<uint64_t>(v);
  return ok;
}

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const double v = std::atof(env);
  return v > 0 ? v : fallback;
}

}  // namespace

EnergyMeter::EnergyMeter(std::string rapl_root) {
  model_watts_ = EnvDouble("BENTO_WATTS", model_watts_);
  model_hz_ = EnvDouble("BENTO_MODEL_HZ", model_hz_);
  if (rapl_root.empty()) {
    const char* env = std::getenv("BENTO_RAPL_PATH");
    rapl_root = env != nullptr && env[0] != '\0' ? env : "/sys/class/powercap";
  }
  Scan(rapl_root);
}

EnergyMeter& EnergyMeter::Global() {
  // Leaked: reports may be formatted during static destruction.
  static EnergyMeter* meter = new EnergyMeter();
  return *meter;
}

void EnergyMeter::Scan(const std::string& root) {
  DIR* dir = ::opendir(root.c_str());
  if (dir == nullptr) return;
  while (dirent* entry = ::readdir(dir)) {
    const char* name = entry->d_name;
    // Top-level package domains only ("intel-rapl:0"); subdomains
    // ("intel-rapl:0:1", core/uncore/dram) would double-count the package.
    if (std::strncmp(name, "intel-rapl:", 11) != 0) continue;
    if (std::strchr(name + 11, ':') != nullptr) continue;
    Package pkg;
    pkg.energy_path = root + "/" + name + "/energy_uj";
    uint64_t probe = 0;
    if (!ReadUint64File(pkg.energy_path, &probe)) continue;
    (void)ReadUint64File(root + "/" + name + "/max_energy_range_uj",
                         &pkg.max_range_uj);
    packages_.push_back(std::move(pkg));
  }
  ::closedir(dir);
}

Status EnergyMeter::Begin() {
  std::lock_guard<std::mutex> lk(mu_);
  begun_ = false;
  for (Package& pkg : packages_) {
    if (!ReadUint64File(pkg.energy_path, &pkg.last_uj)) {
      return Status::IOError("cannot read RAPL counter ", pkg.energy_path);
    }
    pkg.accumulated_uj = 0;
  }
  begun_ = true;
  return Status::OK();
}

double EnergyMeter::JoulesSince() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!begun_ || packages_.empty()) return 0.0;
  uint64_t total_uj = 0;
  for (Package& pkg : packages_) {
    uint64_t now = 0;
    if (ReadUint64File(pkg.energy_path, &now)) {
      if (now >= pkg.last_uj) {
        pkg.accumulated_uj += now - pkg.last_uj;
      } else if (pkg.max_range_uj > pkg.last_uj) {
        // Counter wrapped at max_energy_range_uj.
        pkg.accumulated_uj += pkg.max_range_uj - pkg.last_uj + now;
      } else {
        // No usable range file: treat the wrap as a restart from zero.
        pkg.accumulated_uj += now;
      }
      pkg.last_uj = now;
    }
    total_uj += pkg.accumulated_uj;
  }
  return static_cast<double>(total_uj) * 1e-6;
}

}  // namespace bento::obs
