#ifndef BENTO_OBS_TRACE_H_
#define BENTO_OBS_TRACE_H_

#include <atomic>
#include <string>
#include <string_view>

#include "obs/resource.h"
#include "util/json.h"
#include "util/status.h"

namespace bento::obs {

/// \brief Span taxonomy: which layer of the stack a trace span belongs to.
///
/// The nesting the runner produces is stage ⊃ preparator ⊃ engine ⊃ kernel,
/// with io spans under the I/O stage and sim spans (parallel fan-outs, pool
/// tasks, modeled transfers) wherever the simulator does work. Memory
/// timelines are counter tracks, not spans.
enum class Category {
  kIo,          ///< file ingest/egest (csv, bcf, spill)
  kKernel,      ///< shared compute kernels (join, group-by, sort, ...)
  kEngine,      ///< engine dispatch + execution-core op application
  kStage,       ///< pipeline stages (IO/EDA/DT/DC) from the runner
  kPreparator,  ///< one Table-II preparator as the runner times it
  kSim,         ///< simulator machinery: ParallelFor, pool tasks, transfers
  kMemory,      ///< memory-timeline counter samples
};

const char* CategoryName(Category cat);

namespace internal {

/// The single runtime toggle: one relaxed atomic load gates every
/// instrumentation site, so a disabled build path costs one predictable
/// branch and performs no allocation.
extern std::atomic<bool> g_tracing_enabled;

}  // namespace internal

/// \brief True while a trace is being collected. Relaxed load: callers use
/// it only to skip instrumentation work, never for synchronization.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// \brief Clears previously collected events and starts collecting.
void StartTracing();

/// \brief Stops collecting. Already-buffered events survive until the next
/// StartTracing and can still be exported.
void StopTracing();

/// \brief Chrome trace_event document ({"traceEvents": [...]}) of every
/// buffered event plus a snapshot of the MetricsRegistry. Loadable in
/// chrome://tracing and Perfetto.
JsonValue TraceToJson();

/// \brief Serializes TraceToJson() to `path`.
Status WriteTrace(const std::string& path);

/// \brief Names the calling thread's track in exported traces (the thread
/// pool labels its workers). Cheap; callable before tracing starts.
void SetCurrentThreadName(std::string name);

/// \brief Emits one counter sample (Chrome "C" phase) on the calling
/// thread's track — the memory-timeline mechanism. No-op when disabled.
void EmitCounter(std::string_view track, double value);

/// \brief Installs the virtual-time hook: returns the calling thread's
/// accumulated sim time credits in seconds. Installed once by sim::Session
/// so spans can report virtual durations without obs depending on sim.
void SetVirtualCreditHook(double (*hook)());

/// \brief RAII span. When tracing is disabled, construction is a single
/// branch and allocates nothing. Records wall duration and virtual duration
/// (wall minus sim time credits accrued inside the span, so simulated
/// parallel overlap shrinks it and modeled penalties grow it). While
/// resource sampling is also enabled (see obs/resource.h), the span
/// additionally charges the thread's hardware-counter deltas — cycles,
/// instructions, cache misses, task clock — to itself on scope exit and
/// feeds the per-category duration histograms and resource rollups.
class TraceSpan {
 public:
  TraceSpan(Category cat, const char* name) {
    if (TracingEnabled()) Begin(cat, name);
  }
  /// Dynamic-name spans: callers must only build the name when tracing is
  /// enabled (see BENTO_TRACE_SPAN_DYN); an empty name deactivates the span.
  TraceSpan(Category cat, std::string name) {
    if (TracingEnabled() && !name.empty()) {
      dyn_name_ = std::move(name);
      Begin(cat, nullptr);
    }
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(Category cat, const char* static_name);
  void End();

  bool active_ = false;
  bool sampled_ = false;
  Category cat_ = Category::kKernel;
  const char* static_name_ = nullptr;
  std::string dyn_name_;
  double wall_start_ = 0.0;
  double credit_start_ = 0.0;
  ResourceUsage res_start_;
};

/// \brief RAII trace session bound to an output file. Resolves the path
/// from the constructor argument or, when empty, the BENTO_TRACE environment
/// variable; inert when neither is set or when an enclosing scope already
/// owns the trace (so a per-run scope inside a per-process scope is a
/// no-op and the outer scope writes one combined file).
class TraceEnvScope {
 public:
  explicit TraceEnvScope(std::string path = "");
  ~TraceEnvScope();

  TraceEnvScope(const TraceEnvScope&) = delete;
  TraceEnvScope& operator=(const TraceEnvScope&) = delete;

  bool owns() const { return owns_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  bool owns_ = false;
};

namespace testing {

/// \brief Replaces the trace clock (seconds; nullptr restores the steady
/// clock). Exported timestamps become deterministic for golden tests.
void SetClockForTest(double (*clock)());

}  // namespace testing

}  // namespace bento::obs

#define BENTO_OBS_CONCAT_(a, b) a##b
#define BENTO_OBS_CONCAT(a, b) BENTO_OBS_CONCAT_(a, b)

// Compile-time kill switch: -DBENTO_OBS_DISABLED removes every span site
// from the binary; the runtime atomic handles the common enabled/disabled
// case with one branch.
#if defined(BENTO_OBS_DISABLED)
#define BENTO_TRACE_SPAN(category, name)
#define BENTO_TRACE_SPAN_DYN(category, name_expr)
#else
/// Scoped span with a static (string-literal or otherwise immortal) name.
#define BENTO_TRACE_SPAN(category, name)                             \
  ::bento::obs::TraceSpan BENTO_OBS_CONCAT(bento_trace_, __LINE__)(  \
      ::bento::obs::Category::category, name)
/// Scoped span whose name expression is evaluated only when tracing.
#define BENTO_TRACE_SPAN_DYN(category, name_expr)                    \
  ::bento::obs::TraceSpan BENTO_OBS_CONCAT(bento_trace_, __LINE__)(  \
      ::bento::obs::Category::category,                              \
      ::bento::obs::TracingEnabled() ? std::string(name_expr)        \
                                     : std::string())
#endif

#endif  // BENTO_OBS_TRACE_H_
