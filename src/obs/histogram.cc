#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace bento::obs {

namespace {

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// CAS-loop accumulate of a double stored as bits. `combine` must be
/// monotone in its first argument for min/max; for sums it is plain +.
template <typename Combine>
void AtomicCombine(std::atomic<uint64_t>* cell, double v, Combine combine) {
  uint64_t prev = cell->load(std::memory_order_relaxed);
  for (;;) {
    const double updated = combine(BitsToDouble(prev), v);
    if (cell->compare_exchange_weak(prev, DoubleToBits(updated),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN land in underflow
  const double log2v = std::log2(v);
  const int idx = static_cast<int>(std::floor(
                      (log2v - kMinOctave) * kSubBucketsPerOctave)) +
                  1;
  if (idx < 1) return 0;
  if (idx > kBuckets - 1) return kBuckets - 1;
  return idx;
}

double Histogram::BucketUpperEdge(int i) {
  if (i <= 0) return std::exp2(static_cast<double>(kMinOctave));
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::exp2(kMinOctave +
                   static_cast<double>(i) / kSubBucketsPerOctave);
}

void Histogram::Record(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicCombine(&sum_bits_, v, [](double a, double b) { return a + b; });
  if (!has_extrema_.load(std::memory_order_relaxed)) {
    // First writer seeds both extrema; a racing second Record may combine
    // against the seed, which is harmless (min/max are idempotent).
    uint64_t bits = DoubleToBits(v);
    min_bits_.store(bits, std::memory_order_relaxed);
    max_bits_.store(bits, std::memory_order_relaxed);
    has_extrema_.store(true, std::memory_order_release);
    return;
  }
  AtomicCombine(&min_bits_, v, [](double a, double b) { return std::min(a, b); });
  AtomicCombine(&max_bits_, v, [](double a, double b) { return std::max(a, b); });
}

double Histogram::sum() const {
  return BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::min() const {
  return has_extrema_.load(std::memory_order_acquire)
             ? BitsToDouble(min_bits_.load(std::memory_order_relaxed))
             : 0.0;
}

double Histogram::max() const {
  return has_extrema_.load(std::memory_order_acquire)
             ? BitsToDouble(max_bits_.load(std::memory_order_relaxed))
             : 0.0;
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (target < 1) target = 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      return std::clamp(BucketUpperEdge(i), min(), max());
    }
  }
  return max();
}

void Histogram::MergeFrom(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  const uint64_t n = other.count();
  if (n == 0) return;
  count_.fetch_add(n, std::memory_order_relaxed);
  AtomicCombine(&sum_bits_, other.sum(),
                [](double a, double b) { return a + b; });
  const double other_min = other.min();
  const double other_max = other.max();
  if (!has_extrema_.load(std::memory_order_relaxed)) {
    min_bits_.store(DoubleToBits(other_min), std::memory_order_relaxed);
    max_bits_.store(DoubleToBits(other_max), std::memory_order_relaxed);
    has_extrema_.store(true, std::memory_order_release);
  } else {
    AtomicCombine(&min_bits_, other_min,
                  [](double a, double b) { return std::min(a, b); });
    AtomicCombine(&max_bits_, other_max,
                  [](double a, double b) { return std::max(a, b); });
  }
}

void Histogram::Reset() {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(0, std::memory_order_relaxed);
  max_bits_.store(0, std::memory_order_relaxed);
  has_extrema_.store(false, std::memory_order_relaxed);
}

JsonValue Histogram::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("count", JsonValue::Number(static_cast<double>(count())));
  doc.Set("sum", JsonValue::Number(sum()));
  doc.Set("min", JsonValue::Number(min()));
  doc.Set("max", JsonValue::Number(max()));
  doc.Set("p50", JsonValue::Number(Quantile(0.50)));
  doc.Set("p90", JsonValue::Number(Quantile(0.90)));
  doc.Set("p95", JsonValue::Number(Quantile(0.95)));
  doc.Set("p99", JsonValue::Number(Quantile(0.99)));
  return doc;
}

}  // namespace bento::obs
