#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace bento::obs {

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: instruments are referenced from function-local statics in
  // instrumented code and must survive static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0;
}

int64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->value() : 0;
}

JsonValue MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  // The maps are ordered, so every section is emitted name-sorted — the
  // trace-embedded dump is byte-stable across runs with the same
  // instruments. Counters are uint64: route them through Number directly
  // (never an int64 cast, which flips values past 2^63 negative).
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name,
                 JsonValue::Number(static_cast<double>(counter->value())));
  }
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, JsonValue::Int(gauge->value()));
  }
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, hist] : histograms_) {
    histograms.Set(name, hist->ToJson());
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("counters", std::move(counters));
  doc.Set("gauges", std::move(gauges));
  doc.Set("histograms", std::move(histograms));
  return doc;
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
/// becomes '_'. All instruments share the bento_ prefix.
std::string PromName(const std::string& name) {
  std::string out = "bento_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendLine(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendLine(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

}  // namespace

std::string MetricsRegistry::DumpPrometheusText() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string pn = PromName(name);
    AppendLine(&out, "# TYPE %s counter\n", pn.c_str());
    AppendLine(&out, "%s %" PRIu64 "\n", pn.c_str(), counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string pn = PromName(name);
    AppendLine(&out, "# TYPE %s gauge\n", pn.c_str());
    AppendLine(&out, "%s %" PRId64 "\n", pn.c_str(), gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string pn = PromName(name);
    AppendLine(&out, "# TYPE %s histogram\n", pn.c_str());
    // Cumulative buckets at the histogram's own quantile summary edges keep
    // the dump compact while staying valid exposition format (le values
    // must be non-decreasing and end at +Inf).
    const uint64_t count = hist->count();
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
      AppendLine(&out, "%s_bucket{le=\"%g\"} %" PRIu64 "\n", pn.c_str(),
                 hist->Quantile(q),
                 static_cast<uint64_t>(std::ceil(
                     q * static_cast<double>(count))));
    }
    AppendLine(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", pn.c_str(),
               count);
    AppendLine(&out, "%s_sum %g\n", pn.c_str(), hist->sum());
    AppendLine(&out, "%s_count %" PRIu64 "\n", pn.c_str(), count);
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace bento::obs
