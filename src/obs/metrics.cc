#include "obs/metrics.h"

namespace bento::obs {

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: instruments are referenced from function-local statics in
  // instrumented code and must survive static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0;
}

int64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->value() : 0;
}

JsonValue MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, JsonValue::Int(static_cast<int64_t>(counter->value())));
  }
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, JsonValue::Int(gauge->value()));
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("counters", std::move(counters));
  doc.Set("gauges", std::move(gauges));
  return doc;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
}

}  // namespace bento::obs
