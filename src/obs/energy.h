#ifndef BENTO_OBS_ENERGY_H_
#define BENTO_OBS_ENERGY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace bento::obs {

/// \brief Package-level energy meter: RAPL when the sysfs interface is
/// readable, a calibrated cycles×watts model otherwise.
///
/// RAPL mode sums the `energy_uj` counters of every top-level
/// `intel-rapl:<n>` package domain under the powercap root (default
/// `/sys/class/powercap`, overridable with BENTO_RAPL_PATH — the test
/// fixture points it at a temp directory). Counters wrap at
/// `max_energy_range_uj`; deltas are wrap-corrected per package and summed
/// across packages.
///
/// Model mode converts attributed CPU cycles into joules:
/// `joules = cycles / model_hz * model_watts`. The constants are calibrated
/// for a mainstream mobile/desktop part (3 GHz, 15 W package power under
/// single-socket dataframe load — the regime of the two energy studies in
/// PAPERS.md) and overridable with BENTO_WATTS and BENTO_MODEL_HZ.
class EnergyMeter {
 public:
  /// Scans `rapl_root` for package domains; model mode when none usable.
  /// An empty root resolves BENTO_RAPL_PATH, then /sys/class/powercap.
  explicit EnergyMeter(std::string rapl_root = "");

  /// Process-wide meter (leaked; scans once at first use).
  static EnergyMeter& Global();

  /// True when at least one RAPL package counter is readable.
  bool has_rapl() const { return !packages_.empty(); }
  /// "rapl" or "model" — the label carried into reports and bench JSON.
  const char* source() const { return has_rapl() ? "rapl" : "model"; }
  int package_count() const { return static_cast<int>(packages_.size()); }

  double model_watts() const { return model_watts_; }
  double model_hz() const { return model_hz_; }
  /// The cycles×watts model: joules a cycle count corresponds to.
  double ModelJoules(double cycles) const {
    return cycles / model_hz_ * model_watts_;
  }

  /// Snapshots the package counters; JoulesSince() measures from here.
  /// No-op in model mode. Returns the first read failure (meter then
  /// behaves as model mode for this window).
  Status Begin();

  /// Wrap-corrected joules across all packages since Begin(). Returns 0 in
  /// model mode or before Begin().
  double JoulesSince();

 private:
  struct Package {
    std::string energy_path;
    uint64_t max_range_uj = 0;  ///< 0: wrap correction unavailable
    uint64_t last_uj = 0;
    uint64_t accumulated_uj = 0;
  };

  void Scan(const std::string& root);

  mutable std::mutex mu_;  ///< guards the per-package wrap-tracking state
  std::vector<Package> packages_;
  bool begun_ = false;
  double model_watts_ = 15.0;
  double model_hz_ = 3.0e9;
};

}  // namespace bento::obs

#endif  // BENTO_OBS_ENERGY_H_
