#include "obs/resource.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>

#include "obs/energy.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace bento::obs {

namespace internal {
std::atomic<bool> g_sampling_enabled{false};
}  // namespace internal

namespace {

std::atomic<double (*)()> g_sim_hz_hook{nullptr};

bool PerfDisabledByEnv() {
  static const bool disabled = [] {
    const char* env = std::getenv("BENTO_PERF");
    return env != nullptr && std::strcmp(env, "off") == 0;
  }();
  return disabled;
}

/// Per-thread counter state. The perf backend opens one counter group
/// (cycles leader + instructions + cache-misses + task-clock) read with a
/// single syscall; the fallback backend reads the thread CPU clock.
struct ThreadSampler {
  SamplerBackend backend = SamplerBackend::kNone;
#if defined(__linux__)
  int group_fd = -1;
#endif

  ~ThreadSampler() {
#if defined(__linux__)
    if (group_fd >= 0) ::close(group_fd);
#endif
  }
};

thread_local ThreadSampler t_sampler;

#if defined(__linux__)

int OpenPerfCounter(uint32_t type, uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;  // unprivileged-friendly (paranoid level 2)
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(::syscall(SYS_perf_event_open, &attr, 0, -1,
                                    group_fd, 0));
}

/// Tries to build the full hardware group; tears everything down on any
/// failure so the thread falls back cleanly.
bool TryOpenPerfGroup(ThreadSampler* sampler) {
  const int leader =
      OpenPerfCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader < 0) return false;
  const int instructions =
      OpenPerfCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, leader);
  const int cache_misses =
      OpenPerfCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, leader);
  const int task_clock =
      OpenPerfCounter(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, leader);
  if (instructions < 0 || cache_misses < 0 || task_clock < 0 ||
      ::ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ::ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    if (instructions >= 0) ::close(instructions);
    if (cache_misses >= 0) ::close(cache_misses);
    if (task_clock >= 0) ::close(task_clock);
    ::close(leader);
    return false;
  }
  // The sibling fds are owned by the group; the leader fd suffices for
  // group reads, but the siblings must stay open for their counters to
  // keep counting — intentionally leaked to thread exit (the fds die with
  // the thread; ThreadSampler closes the leader).
  sampler->group_fd = leader;
  return true;
}

#endif  // __linux__

uint64_t ThreadCpuNs() {
  timespec ts;
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

Status InstallLocked(ThreadSampler* sampler) {
  if (sampler->backend != SamplerBackend::kNone) return Status::OK();
#if defined(__linux__)
  if (!PerfDisabledByEnv() && TryOpenPerfGroup(sampler)) {
    sampler->backend = SamplerBackend::kPerf;
    return Status::OK();
  }
#endif
  timespec probe;
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &probe) != 0) {
    return Status::IOError("thread CPU clock unavailable");
  }
  sampler->backend = SamplerBackend::kTaskClock;
  return Status::OK();
}

// --- aggregation ---

struct RollupEntry {
  uint64_t spans = 0;
  double wall_us = 0.0;
  double vdur_us = 0.0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_misses = 0;
  uint64_t task_clock_ns = 0;
  bool perf = false;
  std::unique_ptr<Histogram> dur_hist = std::make_unique<Histogram>();
};

struct Aggregator {
  std::mutex mu;
  // Key: context \x1f category \x1f name (unit separator never appears in
  // span names).
  std::map<std::string, RollupEntry> entries;
  std::atomic<uint64_t> total_cycles{0};

  static Aggregator& Get() {
    // Leaked: span exits on pool workers may outlive static destruction.
    static Aggregator* agg = new Aggregator();
    return *agg;
  }
};

thread_local std::string t_resource_context;

const std::string& EmptyContext() {
  static const std::string empty;
  return empty;
}

}  // namespace

Status InstallThreadSampler() { return InstallLocked(&t_sampler); }

SamplerBackend ThreadSamplerBackend() { return t_sampler.backend; }

ResourceUsage ReadThreadUsage() {
  ThreadSampler* sampler = &t_sampler;
  if (sampler->backend == SamplerBackend::kNone) {
    if (!InstallLocked(sampler).ok()) return ResourceUsage{};
  }
  ResourceUsage usage;
#if defined(__linux__)
  if (sampler->backend == SamplerBackend::kPerf) {
    // PERF_FORMAT_GROUP layout: { nr, values[nr] } in open order.
    uint64_t buf[1 + 4] = {};
    const ssize_t n = ::read(sampler->group_fd, buf, sizeof(buf));
    if (n >= static_cast<ssize_t>(5 * sizeof(uint64_t)) && buf[0] == 4) {
      usage.cycles = buf[1];
      usage.instructions = buf[2];
      usage.cache_misses = buf[3];
      usage.task_clock_ns = buf[4];
      usage.perf = true;
      return usage;
    }
    // A failing group read degrades to the clock fallback below.
  }
#endif
  usage.task_clock_ns = ThreadCpuNs();
  // Synthesize cycles from CPU time so energy attribution always has a
  // cycle denominator ("task-clock share" fallback).
  usage.cycles = static_cast<uint64_t>(
      static_cast<double>(usage.task_clock_ns) * 1e-9 *
      EnergyMeter::Global().model_hz());
  return usage;
}

void EnableResourceSampling() {
  (void)InstallThreadSampler();
  internal::g_sampling_enabled.store(true, std::memory_order_release);
}

void DisableResourceSampling() {
  internal::g_sampling_enabled.store(false, std::memory_order_release);
}

void SetSimCycleHzHook(double (*hook)()) {
  g_sim_hz_hook.store(hook, std::memory_order_relaxed);
}

double CurrentSimCycleHz() {
  double (*hook)() = g_sim_hz_hook.load(std::memory_order_relaxed);
  return hook != nullptr ? hook() : 0.0;
}

ResourceContextScope::ResourceContextScope(std::string context) {
  previous_ = std::move(t_resource_context);
  t_resource_context = std::move(context);
}

ResourceContextScope::~ResourceContextScope() {
  t_resource_context = std::move(previous_);
}

const std::string& CurrentResourceContext() {
  return t_resource_context.empty() ? EmptyContext() : t_resource_context;
}

void AttributeSpan(Category cat, std::string_view name, double dur_us,
                   double vdur_us, const ResourceUsage& delta) {
  // Per-category duration histogram (find-or-create is cached per call
  // site would need the category; one registry lookup per span exit is
  // fine at sampling granularity).
  MetricsRegistry::Global()
      .histogram(std::string("span.") + CategoryName(cat) + ".dur_us")
      ->Record(dur_us);

  Aggregator& agg = Aggregator::Get();
  agg.total_cycles.fetch_add(delta.cycles, std::memory_order_relaxed);
  std::string key;
  const std::string& context = CurrentResourceContext();
  key.reserve(context.size() + name.size() + 16);
  key.append(context.empty() ? "-" : context);
  key.push_back('\x1f');
  key.append(CategoryName(cat));
  key.push_back('\x1f');
  key.append(name);
  std::lock_guard<std::mutex> lk(agg.mu);
  RollupEntry& entry = agg.entries[key];
  entry.spans += 1;
  entry.wall_us += dur_us;
  entry.vdur_us += vdur_us;
  entry.cycles += delta.cycles;
  entry.instructions += delta.instructions;
  entry.cache_misses += delta.cache_misses;
  entry.task_clock_ns += delta.task_clock_ns;
  entry.perf = entry.perf || delta.perf;
  entry.dur_hist->Record(dur_us);
}

double CurrentJoulesEstimate() {
  EnergyMeter& meter = EnergyMeter::Global();
  if (meter.has_rapl()) return meter.JoulesSince();
  return meter.ModelJoules(static_cast<double>(
      Aggregator::Get().total_cycles.load(std::memory_order_relaxed)));
}

void ResetResourceAggregation() {
  Aggregator& agg = Aggregator::Get();
  {
    std::lock_guard<std::mutex> lk(agg.mu);
    agg.entries.clear();
  }
  agg.total_cycles.store(0, std::memory_order_relaxed);
  (void)EnergyMeter::Global().Begin();
}

const ResourceReport::Row* ResourceReport::Find(std::string_view context,
                                                std::string_view category,
                                                std::string_view name) const {
  for (const Row& row : rows) {
    if (row.context == context && row.category == category &&
        row.name == name) {
      return &row;
    }
  }
  return nullptr;
}

ResourceReport SnapshotResourceReport() {
  ResourceReport report;
  EnergyMeter& meter = EnergyMeter::Global();
  report.energy_source = meter.source();
  report.model_watts = meter.model_watts();
  report.model_hz = meter.model_hz();

  Aggregator& agg = Aggregator::Get();
  std::lock_guard<std::mutex> lk(agg.mu);
  uint64_t total_cycles = 0;
  uint64_t total_task_clock = 0;
  for (const auto& [key, entry] : agg.entries) {
    total_cycles += entry.cycles;
    total_task_clock += entry.task_clock_ns;
  }

  const bool rapl = meter.has_rapl();
  const double measured = rapl ? meter.JoulesSince() : 0.0;
  report.total_joules =
      rapl ? measured : meter.ModelJoules(static_cast<double>(total_cycles));

  for (const auto& [key, entry] : agg.entries) {
    ResourceReport::Row row;
    const size_t sep1 = key.find('\x1f');
    const size_t sep2 = key.find('\x1f', sep1 + 1);
    row.context = key.substr(0, sep1);
    row.category = key.substr(sep1 + 1, sep2 - sep1 - 1);
    row.name = key.substr(sep2 + 1);
    row.spans = entry.spans;
    row.wall_us = entry.wall_us;
    row.vdur_us = entry.vdur_us;
    row.cycles = entry.cycles;
    row.instructions = entry.instructions;
    row.cache_misses = entry.cache_misses;
    row.task_clock_ns = entry.task_clock_ns;
    row.perf = entry.perf;
    if (rapl) {
      // Distribute the measured total proportionally by cycles; when no
      // cycles were recorded anywhere, fall back to task-clock share.
      if (total_cycles > 0) {
        row.joules = measured * static_cast<double>(entry.cycles) /
                     static_cast<double>(total_cycles);
      } else if (total_task_clock > 0) {
        row.joules = measured * static_cast<double>(entry.task_clock_ns) /
                     static_cast<double>(total_task_clock);
      }
    } else {
      row.joules = meter.ModelJoules(static_cast<double>(entry.cycles));
    }
    row.p50_us = entry.dur_hist->Quantile(0.50);
    row.p95_us = entry.dur_hist->Quantile(0.95);
    row.p99_us = entry.dur_hist->Quantile(0.99);
    report.rows.push_back(std::move(row));
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const ResourceReport::Row& a, const ResourceReport::Row& b) {
              if (a.cycles != b.cycles) return a.cycles > b.cycles;
              if (a.context != b.context) return a.context < b.context;
              if (a.category != b.category) return a.category < b.category;
              return a.name < b.name;
            });
  return report;
}

namespace {

std::string FormatCount(uint64_t v) {
  char buf[32];
  if (v >= 10'000'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fG", static_cast<double>(v) * 1e-9);
  } else if (v >= 10'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(v) * 1e-6);
  } else if (v >= 10'000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(v) * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  }
  return buf;
}

std::string FormatUs(double us) {
  char buf[32];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fs", us * 1e-6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", us * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", us);
  }
  return buf;
}

std::string FormatJoules(double j) {
  char buf[32];
  if (j >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fJ", j);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fmJ", j * 1e3);
  }
  return buf;
}

}  // namespace

std::string ResourceReport::FormatTable() const {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "resource report — energy source: %s (%.1f W model @ %.2f "
                "GHz), total %.3f J\n",
                energy_source.c_str(), model_watts, model_hz * 1e-9,
                total_joules);
  out += line;
  std::snprintf(line, sizeof(line), "%-24s %-10s %-26s %7s %10s %10s %10s %10s %8s %8s %8s %9s\n",
                "context", "category", "span", "count", "wall", "p50", "p95",
                "p99", "cycles", "instr", "miss", "energy");
  out += line;
  for (const Row& row : rows) {
    std::snprintf(line, sizeof(line),
                  "%-24s %-10s %-26s %7" PRIu64
                  " %10s %10s %10s %10s %8s %8s %8s %9s\n",
                  row.context.c_str(), row.category.c_str(),
                  row.name.c_str(), row.spans, FormatUs(row.wall_us).c_str(),
                  FormatUs(row.p50_us).c_str(), FormatUs(row.p95_us).c_str(),
                  FormatUs(row.p99_us).c_str(), FormatCount(row.cycles).c_str(),
                  FormatCount(row.instructions).c_str(),
                  FormatCount(row.cache_misses).c_str(),
                  FormatJoules(row.joules).c_str());
    out += line;
  }
  if (rows.empty()) out += "(no sampled spans)\n";
  return out;
}

JsonValue ResourceReport::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("energy_source", JsonValue::Str(energy_source));
  doc.Set("total_joules", JsonValue::Number(total_joules));
  doc.Set("model_watts", JsonValue::Number(model_watts));
  doc.Set("model_hz", JsonValue::Number(model_hz));
  JsonValue rows_json = JsonValue::Array();
  for (const Row& row : rows) {
    JsonValue r = JsonValue::Object();
    r.Set("context", JsonValue::Str(row.context));
    r.Set("category", JsonValue::Str(row.category));
    r.Set("name", JsonValue::Str(row.name));
    r.Set("spans", JsonValue::Number(static_cast<double>(row.spans)));
    r.Set("wall_us", JsonValue::Number(row.wall_us));
    r.Set("vdur_us", JsonValue::Number(row.vdur_us));
    r.Set("cycles", JsonValue::Number(static_cast<double>(row.cycles)));
    r.Set("instructions",
          JsonValue::Number(static_cast<double>(row.instructions)));
    r.Set("cache_misses",
          JsonValue::Number(static_cast<double>(row.cache_misses)));
    r.Set("task_clock_ns",
          JsonValue::Number(static_cast<double>(row.task_clock_ns)));
    r.Set("perf", JsonValue::Bool(row.perf));
    r.Set("joules", JsonValue::Number(row.joules));
    r.Set("p50_us", JsonValue::Number(row.p50_us));
    r.Set("p95_us", JsonValue::Number(row.p95_us));
    r.Set("p99_us", JsonValue::Number(row.p99_us));
    rows_json.Append(std::move(r));
  }
  doc.Set("rows", std::move(rows_json));
  return doc;
}

namespace {
std::atomic<bool> g_report_scope_active{false};
}  // namespace

ResourceReportScope::ResourceReportScope(bool requested) {
  if (!requested) {
    const char* env = std::getenv("BENTO_REPORT");
    requested = env != nullptr && env[0] != '\0' &&
                std::strcmp(env, "0") != 0;
  }
  if (!requested) return;
  bool expected = false;
  if (!g_report_scope_active.compare_exchange_strong(expected, true)) {
    return;  // an enclosing scope is already reporting
  }
  owns_ = true;
  if (!TracingEnabled()) {
    StartTracing();
    owns_tracing_ = true;
  }
  ResetResourceAggregation();
  EnableResourceSampling();
}

ResourceReportScope::~ResourceReportScope() {
  if (!owns_) return;
  DisableResourceSampling();
  ResourceReport report = SnapshotResourceReport();
  if (owns_tracing_) StopTracing();
  g_report_scope_active.store(false, std::memory_order_release);
  std::fputs(report.FormatTable().c_str(), stdout);
}

}  // namespace bento::obs
