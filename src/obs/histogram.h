#ifndef BENTO_OBS_HISTOGRAM_H_
#define BENTO_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>

#include "util/json.h"

namespace bento::obs {

/// \brief Log-bucketed histogram for span durations and other positive
/// long-tailed quantities.
///
/// Buckets are geometric with 8 sub-buckets per octave (bucket edges grow by
/// 2^(1/8) ≈ 1.09), covering [2^-10, 2^40) ≈ [1e-3, 1e12] with underflow and
/// overflow buckets at the ends — wide enough for microsecond span
/// durations from sub-microsecond kernels to hour-long pipelines at ≤9%
/// relative quantile error. Record() is a relaxed atomic increment, so one
/// instance is safely shared across threads and per-thread instances merge
/// losslessly with MergeFrom (bucket layout is identical by construction).
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 8;
  static constexpr int kMinOctave = -10;
  static constexpr int kMaxOctave = 40;
  /// Index 0 is the underflow bucket (v < 2^kMinOctave, including v <= 0 and
  /// NaN); the last index is the overflow bucket (v >= 2^kMaxOctave).
  static constexpr int kBuckets =
      (kMaxOctave - kMinOctave) * kSubBucketsPerOctave + 2;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation (relaxed atomics; safe from any thread).
  void Record(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  /// Smallest / largest recorded value; 0 when empty.
  double min() const;
  double max() const;

  /// \brief Quantile estimate: the smallest bucket upper edge whose
  /// cumulative count reaches ceil(q * count), clamped into [min(), max()].
  /// For positive observations the estimate `e` of the true quantile `t`
  /// (defined as sorted[ceil(q*n)-1]) satisfies t <= e <= t * 2^(1/8).
  /// Returns 0 when empty; `q` is clamped into [0, 1].
  double Quantile(double q) const;

  /// Adds every bucket/count/sum of `other` into this histogram.
  void MergeFrom(const Histogram& other);

  void Reset();

  /// {"count": n, "sum": s, "min": ..., "max": ..., "p50": ..., "p90": ...,
  ///  "p95": ..., "p99": ...} — the summary embedded in metrics snapshots.
  JsonValue ToJson() const;

  /// Maps a value to its bucket index (exposed for the property tests).
  static int BucketIndex(double v);
  /// Upper edge of bucket `i` (the overflow bucket reports +inf).
  static double BucketUpperEdge(int i);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  /// Sum/min/max are doubles stored as bit patterns and updated by CAS.
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> min_bits_{0};
  std::atomic<uint64_t> max_bits_{0};
  std::atomic<bool> has_extrema_{false};
};

}  // namespace bento::obs

#endif  // BENTO_OBS_HISTOGRAM_H_
