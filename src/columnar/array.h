#ifndef BENTO_COLUMNAR_ARRAY_H_
#define BENTO_COLUMNAR_ARRAY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/bitmap.h"
#include "columnar/buffer.h"
#include "columnar/datatype.h"
#include "columnar/scalar.h"
#include "util/result.h"

namespace bento::col {

class Array;
using ArrayPtr = std::shared_ptr<Array>;

/// Shared dictionary of a categorical column.
using Dictionary = std::shared_ptr<const std::vector<std::string>>;

/// \brief An immutable column of values with an optional validity bitmap.
///
/// Physical layouts:
///  - kInt64 / kTimestamp: int64 data buffer
///  - kFloat64:            double data buffer
///  - kBool:               one uint8 per value
///  - kString:             int64 offsets buffer (length+1) + chars buffer
///  - kCategorical:        int32 codes buffer + shared dictionary
///
/// The null count is cached after first computation; engines that model
/// Arrow-backed libraries (Pandas2/Polars/CuDF) use the O(1) metadata path
/// while the Pandas-model engine recomputes by scanning — reproducing the
/// paper's isna gap.
class Array {
 public:
  static constexpr int64_t kUnknownNullCount = -1;

  static Result<ArrayPtr> MakeFixed(TypeId type, int64_t length, BufferPtr data,
                                    BufferPtr validity,
                                    int64_t null_count = kUnknownNullCount);
  static Result<ArrayPtr> MakeString(int64_t length, BufferPtr offsets,
                                     BufferPtr chars, BufferPtr validity,
                                     int64_t null_count = kUnknownNullCount);
  static Result<ArrayPtr> MakeCategorical(int64_t length, BufferPtr codes,
                                          Dictionary dictionary,
                                          BufferPtr validity,
                                          int64_t null_count = kUnknownNullCount);

  /// All-null array of the given type and length.
  static Result<ArrayPtr> MakeAllNull(TypeId type, int64_t length);

  TypeId type() const { return type_; }
  int64_t length() const { return length_; }

  /// O(1) if cached; otherwise popcounts the bitmap and caches.
  int64_t null_count() const;
  /// Returns kUnknownNullCount when not yet computed (no scan performed).
  int64_t cached_null_count() const {
    return null_count_.load(std::memory_order_relaxed);
  }
  bool MayHaveNulls() const { return validity_ != nullptr && null_count() > 0; }

  const uint8_t* validity_bits() const {
    return validity_ != nullptr ? validity_->data() : nullptr;
  }
  const BufferPtr& validity_buffer() const { return validity_; }
  const BufferPtr& data_buffer() const { return data_; }
  const BufferPtr& offsets_buffer() const { return offsets_; }

  bool IsValid(int64_t i) const {
    return validity_ == nullptr || BitIsSet(validity_->data(), i);
  }
  bool IsNull(int64_t i) const { return !IsValid(i); }

  const int64_t* int64_data() const { return data_->data_as<int64_t>(); }
  const double* float64_data() const { return data_->data_as<double>(); }
  const uint8_t* bool_data() const { return data_->data(); }
  const int32_t* codes_data() const { return data_->data_as<int32_t>(); }
  const int64_t* offsets_data() const { return offsets_->data_as<int64_t>(); }
  const char* chars_data() const {
    return reinterpret_cast<const char*>(data_->data());
  }

  const Dictionary& dictionary() const { return dictionary_; }

  /// Valid only for kString. Undefined for null slots.
  std::string_view GetView(int64_t i) const {
    const int64_t* off = offsets_data();
    return std::string_view(chars_data() + off[i],
                            static_cast<size_t>(off[i + 1] - off[i]));
  }

  /// Human-readable scalar at `i` ("null" for nulls) for printing.
  std::string ValueToString(int64_t i) const;

  /// Boxed value at `i` (categorical boxes the dictionary string).
  Scalar GetScalar(int64_t i) const;

  /// Zero-copy view of rows [offset, offset+length); the validity bitmap is
  /// re-packed (copied) when offset is not byte-aligned.
  Result<ArrayPtr> Slice(int64_t offset, int64_t length) const;

  /// Total tracked bytes of this array's buffers (for transfer models).
  uint64_t ByteSize() const;

 private:
  Array() = default;

  TypeId type_ = TypeId::kInt64;
  int64_t length_ = 0;
  // Lazily-computed cache; atomic because arrays are shared across the real
  // execution backend's worker threads (the recomputation is idempotent).
  mutable std::atomic<int64_t> null_count_{kUnknownNullCount};
  BufferPtr data_;
  BufferPtr offsets_;   // strings only
  BufferPtr validity_;  // nullptr = all valid
  Dictionary dictionary_;
};

}  // namespace bento::col

#endif  // BENTO_COLUMNAR_ARRAY_H_
