#include "columnar/array.h"

#include <cinttypes>
#include <cstdio>

#include "util/string_util.h"

namespace bento::col {

namespace {

Status CheckValidity(const BufferPtr& validity, int64_t length) {
  if (validity != nullptr &&
      validity->size() < static_cast<uint64_t>(BitmapBytes(length))) {
    return Status::Invalid("validity bitmap too small for length ", length);
  }
  return Status::OK();
}

}  // namespace

Result<ArrayPtr> Array::MakeFixed(TypeId type, int64_t length, BufferPtr data,
                                  BufferPtr validity, int64_t null_count) {
  if (type == TypeId::kString) {
    return Status::Invalid("MakeFixed cannot build string arrays");
  }
  const uint64_t needed =
      static_cast<uint64_t>(length) * static_cast<uint64_t>(ByteWidth(type));
  if (length > 0 && (data == nullptr || data->size() < needed)) {
    return Status::Invalid("data buffer too small: need ", needed, " bytes");
  }
  BENTO_RETURN_NOT_OK(CheckValidity(validity, length));
  auto a = std::shared_ptr<Array>(new Array());
  a->type_ = type;
  a->length_ = length;
  a->data_ = std::move(data);
  a->validity_ = std::move(validity);
  a->null_count_ = a->validity_ == nullptr ? 0 : null_count;
  return a;
}

Result<ArrayPtr> Array::MakeString(int64_t length, BufferPtr offsets,
                                   BufferPtr chars, BufferPtr validity,
                                   int64_t null_count) {
  if (offsets == nullptr ||
      offsets->size() < static_cast<uint64_t>(length + 1) * sizeof(int64_t)) {
    return Status::Invalid("offsets buffer too small for ", length, " strings");
  }
  BENTO_RETURN_NOT_OK(CheckValidity(validity, length));
  auto a = std::shared_ptr<Array>(new Array());
  a->type_ = TypeId::kString;
  a->length_ = length;
  a->offsets_ = std::move(offsets);
  a->data_ = chars != nullptr ? std::move(chars) : Buffer::Wrap("", 0);
  a->validity_ = std::move(validity);
  a->null_count_ = a->validity_ == nullptr ? 0 : null_count;
  return a;
}

Result<ArrayPtr> Array::MakeCategorical(int64_t length, BufferPtr codes,
                                        Dictionary dictionary,
                                        BufferPtr validity,
                                        int64_t null_count) {
  if (length > 0 && (codes == nullptr ||
                     codes->size() < static_cast<uint64_t>(length) * 4)) {
    return Status::Invalid("codes buffer too small");
  }
  BENTO_RETURN_NOT_OK(CheckValidity(validity, length));
  auto a = std::shared_ptr<Array>(new Array());
  a->type_ = TypeId::kCategorical;
  a->length_ = length;
  a->data_ = std::move(codes);
  a->dictionary_ = std::move(dictionary);
  a->validity_ = std::move(validity);
  a->null_count_ = a->validity_ == nullptr ? 0 : null_count;
  return a;
}

Result<ArrayPtr> Array::MakeAllNull(TypeId type, int64_t length) {
  BENTO_ASSIGN_OR_RETURN(auto validity, AllocateBitmap(length, false));
  if (type == TypeId::kString) {
    BENTO_ASSIGN_OR_RETURN(
        auto offsets,
        Buffer::Allocate(static_cast<uint64_t>(length + 1) * sizeof(int64_t)));
    return MakeString(length, std::move(offsets), nullptr, std::move(validity),
                      length);
  }
  BENTO_ASSIGN_OR_RETURN(
      auto data, Buffer::Allocate(static_cast<uint64_t>(length) *
                                  static_cast<uint64_t>(ByteWidth(type))));
  if (type == TypeId::kCategorical) {
    return MakeCategorical(length, std::move(data),
                           std::make_shared<std::vector<std::string>>(),
                           std::move(validity), length);
  }
  return MakeFixed(type, length, std::move(data), std::move(validity), length);
}

int64_t Array::null_count() const {
  int64_t cached = null_count_.load(std::memory_order_relaxed);
  if (cached == kUnknownNullCount) {
    cached = validity_ == nullptr
                 ? 0
                 : length_ - CountSetBits(validity_->data(), length_);
    null_count_.store(cached, std::memory_order_relaxed);
  }
  return cached;
}

std::string Array::ValueToString(int64_t i) const {
  if (IsNull(i)) return "null";
  switch (type_) {
    case TypeId::kInt64:
      return std::to_string(int64_data()[i]);
    case TypeId::kFloat64:
      return FormatDouble(float64_data()[i]);
    case TypeId::kBool:
      return bool_data()[i] != 0 ? "true" : "false";
    case TypeId::kString:
      return std::string(GetView(i));
    case TypeId::kTimestamp: {
      // ISO-8601 seconds resolution for display.
      int64_t micros = int64_data()[i];
      time_t secs = static_cast<time_t>(micros / 1000000);
      struct tm tm_utc;
      gmtime_r(&secs, &tm_utc);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                    tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                    tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec);
      return buf;
    }
    case TypeId::kCategorical: {
      int32_t code = codes_data()[i];
      if (dictionary_ != nullptr && code >= 0 &&
          static_cast<size_t>(code) < dictionary_->size()) {
        return (*dictionary_)[static_cast<size_t>(code)];
      }
      return std::to_string(code);
    }
  }
  return "?";
}

Scalar Array::GetScalar(int64_t i) const {
  if (IsNull(i)) return Scalar::Null();
  switch (type_) {
    case TypeId::kInt64:
      return Scalar::Int(int64_data()[i]);
    case TypeId::kFloat64:
      return Scalar::Double(float64_data()[i]);
    case TypeId::kBool:
      return Scalar::Bool(bool_data()[i] != 0);
    case TypeId::kString:
      return Scalar::Str(std::string(GetView(i)));
    case TypeId::kTimestamp:
      return Scalar::Timestamp(int64_data()[i]);
    case TypeId::kCategorical:
      return Scalar::Str(
          (*dictionary_)[static_cast<size_t>(codes_data()[i])]);
  }
  return Scalar::Null();
}

Result<ArrayPtr> Array::Slice(int64_t offset, int64_t length) const {
  if (offset < 0 || length < 0 || offset + length > length_) {
    return Status::IndexError("slice [", offset, ", ", offset + length,
                              ") out of bounds for length ", length_);
  }

  // Validity: zero-copy only at byte alignment; otherwise repack.
  BufferPtr validity;
  int64_t null_count = kUnknownNullCount;
  if (validity_ != nullptr) {
    if ((offset & 7) == 0) {
      validity = Buffer::Slice(validity_, static_cast<uint64_t>(offset >> 3),
                               static_cast<uint64_t>(BitmapBytes(length)));
    } else {
      BENTO_ASSIGN_OR_RETURN(auto packed, AllocateBitmap(length, false));
      uint8_t* bits = packed->mutable_data();
      for (int64_t i = 0; i < length; ++i) {
        if (BitIsSet(validity_->data(), offset + i)) SetBit(bits, i);
      }
      validity = std::move(packed);
    }
  } else {
    null_count = 0;
  }

  auto slice_fixed = [&](int width) -> BufferPtr {
    return Buffer::Slice(data_,
                         static_cast<uint64_t>(offset) * static_cast<uint64_t>(width),
                         static_cast<uint64_t>(length) * static_cast<uint64_t>(width));
  };

  switch (type_) {
    case TypeId::kString: {
      BufferPtr offsets = Buffer::Slice(
          offsets_, static_cast<uint64_t>(offset) * sizeof(int64_t),
          static_cast<uint64_t>(length + 1) * sizeof(int64_t));
      // chars buffer is shared whole; offsets are absolute positions.
      return MakeString(length, std::move(offsets), data_, std::move(validity),
                        null_count);
    }
    case TypeId::kCategorical: {
      return MakeCategorical(length, slice_fixed(4), dictionary_,
                             std::move(validity), null_count);
    }
    default:
      return MakeFixed(type_, length, slice_fixed(ByteWidth(type_)),
                       std::move(validity), null_count);
  }
}

uint64_t Array::ByteSize() const {
  uint64_t total = 0;
  if (data_ != nullptr) total += data_->size();
  if (offsets_ != nullptr) total += offsets_->size();
  if (validity_ != nullptr) total += validity_->size();
  return total;
}

}  // namespace bento::col
