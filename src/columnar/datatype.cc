#include "columnar/datatype.h"

namespace bento::col {

const char* TypeName(TypeId id) {
  switch (id) {
    case TypeId::kInt64:
      return "int64";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kBool:
      return "bool";
    case TypeId::kString:
      return "string";
    case TypeId::kTimestamp:
      return "timestamp";
    case TypeId::kCategorical:
      return "categorical";
  }
  return "unknown";
}

int ByteWidth(TypeId id) {
  switch (id) {
    case TypeId::kInt64:
    case TypeId::kFloat64:
    case TypeId::kTimestamp:
      return 8;
    case TypeId::kBool:
      return 1;
    case TypeId::kCategorical:
      return 4;
    case TypeId::kString:
      return 8;  // offset entry width
  }
  return 8;
}

}  // namespace bento::col
