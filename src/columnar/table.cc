#include "columnar/table.h"

#include <unordered_map>

#include "columnar/builder.h"

namespace bento::col {

Result<TablePtr> Table::Make(SchemaPtr schema, std::vector<ArrayPtr> columns) {
  if (schema == nullptr) return Status::Invalid("null schema");
  if (static_cast<size_t>(schema->num_fields()) != columns.size()) {
    return Status::Invalid("schema has ", schema->num_fields(),
                           " fields but ", columns.size(), " columns given");
  }
  int64_t rows = columns.empty() ? 0 : columns[0]->length();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr) return Status::Invalid("null column at ", i);
    if (columns[i]->length() != rows) {
      return Status::Invalid("column ", schema->field(static_cast<int>(i)).name,
                             " has length ", columns[i]->length(),
                             ", expected ", rows);
    }
    if (columns[i]->type() != schema->field(static_cast<int>(i)).type) {
      return Status::TypeError(
          "column ", schema->field(static_cast<int>(i)).name, " has type ",
          TypeName(columns[i]->type()), ", schema says ",
          TypeName(schema->field(static_cast<int>(i)).type));
    }
  }
  return TablePtr(new Table(std::move(schema), std::move(columns), rows));
}

Result<TablePtr> Table::MakeEmpty(SchemaPtr schema) {
  std::vector<ArrayPtr> columns;
  for (const Field& f : schema->fields()) {
    BENTO_ASSIGN_OR_RETURN(auto a, Array::MakeAllNull(f.type, 0));
    columns.push_back(std::move(a));
  }
  return Make(std::move(schema), std::move(columns));
}

Result<ArrayPtr> Table::GetColumn(const std::string& name) const {
  int i = schema_->IndexOf(name);
  if (i < 0) return Status::KeyError("no column named '", name, "'");
  return columns_[static_cast<size_t>(i)];
}

Result<TablePtr> Table::SetColumn(const std::string& name,
                                  ArrayPtr column) const {
  if (column->length() != num_rows_ && num_columns() > 0) {
    return Status::Invalid("replacement column length ", column->length(),
                           " != table rows ", num_rows_);
  }
  std::vector<Field> fields = schema_->fields();
  std::vector<ArrayPtr> columns = columns_;
  int i = schema_->IndexOf(name);
  if (i >= 0) {
    fields[static_cast<size_t>(i)].type = column->type();
    columns[static_cast<size_t>(i)] = std::move(column);
  } else {
    fields.push_back(Field{name, column->type()});
    columns.push_back(std::move(column));
  }
  return Make(std::make_shared<Schema>(std::move(fields)), std::move(columns));
}

Result<TablePtr> Table::DropColumns(const std::vector<std::string>& names) const {
  std::vector<bool> drop(columns_.size(), false);
  for (const std::string& name : names) {
    int i = schema_->IndexOf(name);
    if (i < 0) return Status::KeyError("no column named '", name, "'");
    drop[static_cast<size_t>(i)] = true;
  }
  std::vector<Field> fields;
  std::vector<ArrayPtr> columns;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!drop[i]) {
      fields.push_back(schema_->field(static_cast<int>(i)));
      columns.push_back(columns_[i]);
    }
  }
  return Make(std::make_shared<Schema>(std::move(fields)), std::move(columns));
}

Result<TablePtr> Table::SelectColumns(
    const std::vector<std::string>& names) const {
  std::vector<Field> fields;
  std::vector<ArrayPtr> columns;
  for (const std::string& name : names) {
    int i = schema_->IndexOf(name);
    if (i < 0) return Status::KeyError("no column named '", name, "'");
    fields.push_back(schema_->field(i));
    columns.push_back(columns_[static_cast<size_t>(i)]);
  }
  return Make(std::make_shared<Schema>(std::move(fields)), std::move(columns));
}

Result<TablePtr> Table::RenameColumns(
    const std::vector<std::pair<std::string, std::string>>& renames) const {
  std::vector<Field> fields = schema_->fields();
  for (const auto& [old_name, new_name] : renames) {
    int i = schema_->IndexOf(old_name);
    if (i < 0) return Status::KeyError("no column named '", old_name, "'");
    fields[static_cast<size_t>(i)].name = new_name;
  }
  return Make(std::make_shared<Schema>(std::move(fields)), columns_);
}

Result<TablePtr> Table::Slice(int64_t offset, int64_t length) const {
  std::vector<ArrayPtr> columns;
  columns.reserve(columns_.size());
  for (const ArrayPtr& c : columns_) {
    BENTO_ASSIGN_OR_RETURN(auto sliced, c->Slice(offset, length));
    columns.push_back(std::move(sliced));
  }
  return Make(schema_, std::move(columns));
}

uint64_t Table::ByteSize() const {
  uint64_t total = 0;
  for (const ArrayPtr& c : columns_) total += c->ByteSize();
  return total;
}

std::string Table::ToString(int64_t max_rows) const {
  std::string out = schema_->ToString();
  out += "\n";
  int64_t shown = std::min(max_rows, num_rows_);
  for (int64_t r = 0; r < shown; ++r) {
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) out += " | ";
      out += columns_[static_cast<size_t>(c)]->ValueToString(r);
    }
    out += "\n";
  }
  if (shown < num_rows_) {
    out += "... (" + std::to_string(num_rows_) + " rows total)\n";
  }
  return out;
}

namespace {

Result<ArrayPtr> ConcatArrays(const std::vector<ArrayPtr>& arrays, TypeId type) {
  switch (type) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      FixedBuilder<int64_t, TypeId::kInt64> b;
      for (const auto& a : arrays) {
        for (int64_t i = 0; i < a->length(); ++i) {
          b.AppendMaybe(a->int64_data()[i], a->IsValid(i));
        }
      }
      BENTO_ASSIGN_OR_RETURN(auto out, b.Finish());
      if (type == TypeId::kTimestamp) {
        return Array::MakeFixed(type, out->length(), out->data_buffer(),
                                out->validity_buffer(), out->cached_null_count());
      }
      return out;
    }
    case TypeId::kFloat64: {
      Float64Builder b;
      for (const auto& a : arrays) {
        for (int64_t i = 0; i < a->length(); ++i) {
          b.AppendMaybe(a->float64_data()[i], a->IsValid(i));
        }
      }
      return b.Finish();
    }
    case TypeId::kBool: {
      BoolBuilder b;
      for (const auto& a : arrays) {
        for (int64_t i = 0; i < a->length(); ++i) {
          b.AppendMaybe(a->bool_data()[i] != 0, a->IsValid(i));
        }
      }
      return b.Finish();
    }
    case TypeId::kString: {
      StringBuilder b;
      for (const auto& a : arrays) {
        for (int64_t i = 0; i < a->length(); ++i) {
          b.AppendMaybe(a->IsValid(i) ? a->GetView(i) : std::string_view(),
                        a->IsValid(i));
        }
      }
      return b.Finish();
    }
    case TypeId::kCategorical: {
      // Merge dictionaries by value.
      auto merged = std::make_shared<std::vector<std::string>>();
      std::unordered_map<std::string, int32_t> lookup;
      CategoricalBuilder b;
      for (const auto& a : arrays) {
        const auto& dict = a->dictionary();
        std::vector<int32_t> remap(dict != nullptr ? dict->size() : 0, -1);
        if (dict != nullptr) {
          for (size_t k = 0; k < dict->size(); ++k) {
            auto [it, inserted] = lookup.emplace(
                (*dict)[k], static_cast<int32_t>(merged->size()));
            if (inserted) merged->push_back((*dict)[k]);
            remap[k] = it->second;
          }
        }
        for (int64_t i = 0; i < a->length(); ++i) {
          if (a->IsValid(i)) {
            b.Append(remap[static_cast<size_t>(a->codes_data()[i])]);
          } else {
            b.AppendNull();
          }
        }
      }
      return b.Finish(std::move(merged));
    }
  }
  return Status::Invalid("unknown type in concat");
}

}  // namespace

Result<TablePtr> ConcatTables(const std::vector<TablePtr>& tables) {
  if (tables.empty()) return Status::Invalid("cannot concat zero tables");
  const SchemaPtr& schema = tables[0]->schema();
  for (const auto& t : tables) {
    if (!(*t->schema() == *schema)) {
      return Status::Invalid("schema mismatch in ConcatTables");
    }
  }
  if (tables.size() == 1) return tables[0];
  std::vector<ArrayPtr> out_columns;
  for (int c = 0; c < schema->num_fields(); ++c) {
    std::vector<ArrayPtr> parts;
    parts.reserve(tables.size());
    for (const auto& t : tables) parts.push_back(t->column(c));
    BENTO_ASSIGN_OR_RETURN(
        auto merged, ConcatArrays(parts, schema->field(c).type));
    out_columns.push_back(std::move(merged));
  }
  return Table::Make(schema, std::move(out_columns));
}

Result<TablePtr> ConcatTablesReleasing(std::vector<TablePtr>* tables) {
  if (tables->empty()) return Status::Invalid("cannot concat zero tables");
  const SchemaPtr schema = (*tables)[0]->schema();
  for (const auto& t : *tables) {
    if (!(*t->schema() == *schema)) {
      return Status::Invalid("schema mismatch in ConcatTables");
    }
  }
  if (tables->size() == 1) {
    TablePtr only = std::move((*tables)[0]);
    tables->clear();
    return only;
  }

  // Re-shape into per-column array lists, dropping the table handles so
  // each column's buffers can be released individually once merged.
  const int n_cols = schema->num_fields();
  std::vector<std::vector<ArrayPtr>> by_column(static_cast<size_t>(n_cols));
  for (auto& t : *tables) {
    for (int c = 0; c < n_cols; ++c) {
      by_column[static_cast<size_t>(c)].push_back(t->column(c));
    }
    t.reset();
  }
  tables->clear();

  std::vector<ArrayPtr> out_columns;
  for (int c = 0; c < n_cols; ++c) {
    BENTO_ASSIGN_OR_RETURN(
        auto merged,
        ConcatArrays(by_column[static_cast<size_t>(c)], schema->field(c).type));
    out_columns.push_back(std::move(merged));
    by_column[static_cast<size_t>(c)].clear();  // free the consumed sources
  }
  return Table::Make(schema, std::move(out_columns));
}

}  // namespace bento::col
