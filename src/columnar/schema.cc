#include "columnar/schema.h"

namespace bento::col {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Result<Field> Schema::GetField(const std::string& name) const {
  int i = IndexOf(name);
  if (i < 0) return Status::KeyError("no column named '", name, "'");
  return fields_[static_cast<size_t>(i)];
}

std::vector<std::string> Schema::names() const {
  std::vector<std::string> out;
  out.reserve(fields_.size());
  for (const Field& f : fields_) out.push_back(f.name);
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += TypeName(fields_[i].type);
  }
  return out;
}

}  // namespace bento::col
