#ifndef BENTO_COLUMNAR_DATATYPE_H_
#define BENTO_COLUMNAR_DATATYPE_H_

#include <cstdint>
#include <string>

namespace bento::col {

/// \brief Physical/logical column types supported by the dataframe layer.
///
/// Timestamps are stored as int64 microseconds since the Unix epoch;
/// kCategorical is a dictionary-encoded string column (int32 codes into a
/// per-column dictionary), produced by the `cat.codes` preparator.
enum class TypeId : uint8_t {
  kInt64 = 0,
  kFloat64 = 1,
  kBool = 2,
  kString = 3,
  kTimestamp = 4,
  kCategorical = 5,
};

/// \brief Stable lower-case name ("int64", "float64", ...).
const char* TypeName(TypeId id);

/// \brief Fixed byte width of a value slot; strings report the offset-entry
/// width (8) since their payload is variable.
int ByteWidth(TypeId id);

inline bool IsNumeric(TypeId id) {
  return id == TypeId::kInt64 || id == TypeId::kFloat64;
}

inline bool IsFixedWidth(TypeId id) { return id != TypeId::kString; }

}  // namespace bento::col

#endif  // BENTO_COLUMNAR_DATATYPE_H_
