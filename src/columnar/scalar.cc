#include "columnar/scalar.h"

#include "util/string_util.h"

namespace bento::col {

std::string Scalar::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble:
      return FormatDouble(double_);
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kString:
      return string_;
    case Kind::kTimestamp:
      return std::to_string(int_) + "us";
  }
  return "?";
}

bool Scalar::operator==(const Scalar& other) const {
  if (kind_ != other.kind_) {
    // Numeric kinds compare by value across int/double.
    if (is_numeric() && other.is_numeric()) {
      return AsDouble().ValueOrDie() == other.AsDouble().ValueOrDie();
    }
    return false;
  }
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kInt:
    case Kind::kTimestamp:
      return int_ == other.int_;
    case Kind::kDouble:
      return double_ == other.double_;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kString:
      return string_ == other.string_;
  }
  return false;
}

}  // namespace bento::col
