#ifndef BENTO_COLUMNAR_BUFFER_H_
#define BENTO_COLUMNAR_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <memory>

#include "sim/memory.h"
#include "util/result.h"

namespace bento::col {

/// \brief A contiguous, pool-tracked byte allocation.
///
/// Every buffer charges its capacity against the sim::MemoryPool that was
/// current at allocation time and releases it on destruction, which is how
/// engine memory behaviour (materialization peaks, OoM, spill benefits)
/// becomes observable to the machine simulator. Buffers co-own the pool's
/// accounting state, so one that outlives its session still releases
/// safely.
class Buffer {
 public:
  ~Buffer();

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  /// Allocates `size` zero-initialized bytes from the current pool.
  static Result<std::shared_ptr<Buffer>> Allocate(uint64_t size);

  /// Wraps external memory the buffer does not own (e.g. an mmap'ed file
  /// region for the Vaex/DataTable engines); nothing is charged or freed.
  static std::shared_ptr<Buffer> Wrap(const void* data, uint64_t size);

  /// Wrap() plus a keep-alive: `owner` (e.g. the mmap region object backing
  /// `data`) stays alive for the lifetime of the buffer and every slice of
  /// it. File-backed bytes are pageable, so nothing is charged to any pool —
  /// the Vaex property that lets columns bigger than RAM exist.
  static std::shared_ptr<Buffer> WrapOwned(const void* data, uint64_t size,
                                           std::shared_ptr<void> owner);

  /// Copies `size` bytes into a newly allocated buffer.
  static Result<std::shared_ptr<Buffer>> CopyOf(const void* data,
                                                uint64_t size);

  /// Zero-copy view of `parent`'s bytes [offset, offset+size); keeps
  /// `parent` alive for the lifetime of the view.
  static std::shared_ptr<Buffer> Slice(const std::shared_ptr<Buffer>& parent,
                                       uint64_t offset, uint64_t size);

  uint8_t* mutable_data() { return data_; }
  const uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }
  bool owns_memory() const { return owned_; }

  template <typename T>
  T* mutable_data_as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* data_as() const {
    return reinterpret_cast<const T*>(data_);
  }

 private:
  Buffer(uint8_t* data, uint64_t size, bool owned,
         std::shared_ptr<sim::MemoryPool::State> pool)
      : data_(data), size_(size), owned_(owned), pool_(std::move(pool)) {}

  uint8_t* data_;
  uint64_t size_;
  bool owned_;
  // Shared accounting state (nullptr for wrapped buffers); keeping it alive
  // makes the destructor's Release safe even after the pool is gone.
  std::shared_ptr<sim::MemoryPool::State> pool_;
  std::shared_ptr<Buffer> parent_;  // keep-alive for sliced views
  std::shared_ptr<void> owner_;     // keep-alive for wrapped regions (mmap)
};

using BufferPtr = std::shared_ptr<Buffer>;

}  // namespace bento::col

#endif  // BENTO_COLUMNAR_BUFFER_H_
