#include "columnar/bitmap.h"

#include <cstring>

#include "simd/simd.h"

namespace bento::col {

int64_t CountSetBits(const uint8_t* bitmap, int64_t length) {
  if (bitmap == nullptr) return length;
  // One shared word-wise popcount body: Array::null_count(), the validity
  // kernels, and the SIMD layer all count through simd::PopcountBits.
  return simd::PopcountBits(bitmap, length);
}

Result<BufferPtr> AllocateBitmap(int64_t bits, bool value) {
  BENTO_ASSIGN_OR_RETURN(auto buf,
                         Buffer::Allocate(static_cast<uint64_t>(BitmapBytes(bits))));
  if (value && bits > 0) {
    std::memset(buf->mutable_data(), 0xFF, static_cast<size_t>(buf->size()));
    // Clear the trailing padding bits so CountSetBits stays exact when
    // callers scan whole bytes.
    for (int64_t i = bits; i < BitmapBytes(bits) * 8; ++i) {
      ClearBit(buf->mutable_data(), i);
    }
  }
  return buf;
}

namespace {

/// Clears the padding bits of the last byte so whole-byte scans stay exact.
void ClearTrailingBits(uint8_t* bitmap, int64_t bits) {
  for (int64_t i = bits; i < BitmapBytes(bits) * 8; ++i) ClearBit(bitmap, i);
}

}  // namespace

Result<BufferPtr> BitmapAnd(const uint8_t* a, const uint8_t* b, int64_t bits) {
  const int64_t nbytes = BitmapBytes(bits);
  if (a == nullptr && b == nullptr) return AllocateBitmap(bits, true);
  BENTO_ASSIGN_OR_RETURN(auto out,
                         Buffer::Allocate(static_cast<uint64_t>(nbytes)));
  uint8_t* dst = out->mutable_data();
  if (a == nullptr || b == nullptr) {
    std::memcpy(dst, a != nullptr ? a : b, static_cast<size_t>(nbytes));
  } else {
    simd::AndBytes(a, b, dst, nbytes);
  }
  ClearTrailingBits(dst, bits);
  return out;
}

Result<BufferPtr> BitmapOr(const uint8_t* a, const uint8_t* b, int64_t bits) {
  // A null input means "all valid", which saturates the OR.
  if (a == nullptr || b == nullptr) return AllocateBitmap(bits, true);
  const int64_t nbytes = BitmapBytes(bits);
  BENTO_ASSIGN_OR_RETURN(auto out,
                         Buffer::Allocate(static_cast<uint64_t>(nbytes)));
  uint8_t* dst = out->mutable_data();
  simd::OrBytes(a, b, dst, nbytes);
  ClearTrailingBits(dst, bits);
  return out;
}

}  // namespace bento::col
