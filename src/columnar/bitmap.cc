#include "columnar/bitmap.h"

#include <bit>
#include <cstring>

namespace bento::col {

int64_t CountSetBits(const uint8_t* bitmap, int64_t length) {
  if (bitmap == nullptr) return length;
  int64_t count = 0;
  int64_t full_bytes = length >> 3;
  // Word-at-a-time popcount over the aligned middle.
  int64_t i = 0;
  for (; i + 8 <= full_bytes; i += 8) {
    uint64_t word;
    std::memcpy(&word, bitmap + i, 8);
    count += std::popcount(word);
  }
  for (; i < full_bytes; ++i) {
    count += std::popcount(static_cast<unsigned>(bitmap[i]));
  }
  for (int64_t bit = full_bytes << 3; bit < length; ++bit) {
    count += BitIsSet(bitmap, bit) ? 1 : 0;
  }
  return count;
}

Result<BufferPtr> AllocateBitmap(int64_t bits, bool value) {
  BENTO_ASSIGN_OR_RETURN(auto buf,
                         Buffer::Allocate(static_cast<uint64_t>(BitmapBytes(bits))));
  if (value && bits > 0) {
    std::memset(buf->mutable_data(), 0xFF, static_cast<size_t>(buf->size()));
    // Clear the trailing padding bits so CountSetBits stays exact when
    // callers scan whole bytes.
    for (int64_t i = bits; i < BitmapBytes(bits) * 8; ++i) {
      ClearBit(buf->mutable_data(), i);
    }
  }
  return buf;
}

Result<BufferPtr> BitmapAnd(const uint8_t* a, const uint8_t* b, int64_t bits) {
  BENTO_ASSIGN_OR_RETURN(auto out, AllocateBitmap(bits, true));
  uint8_t* dst = out->mutable_data();
  const int64_t nbytes = BitmapBytes(bits);
  for (int64_t i = 0; i < nbytes; ++i) {
    uint8_t av = a != nullptr ? a[i] : 0xFF;
    uint8_t bv = b != nullptr ? b[i] : 0xFF;
    dst[i] = static_cast<uint8_t>(dst[i] & av & bv);
  }
  return out;
}

}  // namespace bento::col
