#ifndef BENTO_COLUMNAR_TABLE_H_
#define BENTO_COLUMNAR_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/array.h"
#include "columnar/schema.h"

namespace bento::col {

class Table;
using TablePtr = std::shared_ptr<Table>;

/// \brief An immutable collection of equal-length columns with a schema.
///
/// The single unit of data exchanged between kernels and engines; streaming
/// engines process sequences of Table batches.
class Table {
 public:
  static Result<TablePtr> Make(SchemaPtr schema, std::vector<ArrayPtr> columns);

  /// Empty table with the given schema (0 rows).
  static Result<TablePtr> MakeEmpty(SchemaPtr schema);

  const SchemaPtr& schema() const { return schema_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }

  const ArrayPtr& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<ArrayPtr>& columns() const { return columns_; }

  Result<ArrayPtr> GetColumn(const std::string& name) const;

  /// New table with column `name` replaced (or appended when absent).
  Result<TablePtr> SetColumn(const std::string& name, ArrayPtr column) const;

  /// New table without the listed columns; unknown names are a KeyError.
  Result<TablePtr> DropColumns(const std::vector<std::string>& names) const;

  /// New table with only the listed columns, in the listed order.
  Result<TablePtr> SelectColumns(const std::vector<std::string>& names) const;

  /// New table with columns renamed according to (old, new) pairs.
  Result<TablePtr> RenameColumns(
      const std::vector<std::pair<std::string, std::string>>& renames) const;

  /// Zero-copy row slice.
  Result<TablePtr> Slice(int64_t offset, int64_t length) const;

  /// Sum of tracked bytes of all columns.
  uint64_t ByteSize() const;

  /// Pretty-prints up to `max_rows` rows (for examples and debugging).
  std::string ToString(int64_t max_rows = 10) const;

 private:
  Table(SchemaPtr schema, std::vector<ArrayPtr> columns, int64_t num_rows)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        num_rows_(num_rows) {}

  SchemaPtr schema_;
  std::vector<ArrayPtr> columns_;
  int64_t num_rows_;
};

/// \brief Concatenates row-wise; all tables must share the schema.
Result<TablePtr> ConcatTables(const std::vector<TablePtr>& tables);

/// \brief Memory-bounded concatenation: consumes `tables`, releasing each
/// source column's buffers as soon as it has been merged, so peak memory is
/// one full copy plus one column instead of two full copies. `tables` is
/// cleared. Used by the streaming engines' final materialization.
Result<TablePtr> ConcatTablesReleasing(std::vector<TablePtr>* tables);

}  // namespace bento::col

#endif  // BENTO_COLUMNAR_TABLE_H_
