#ifndef BENTO_COLUMNAR_SCALAR_H_
#define BENTO_COLUMNAR_SCALAR_H_

#include <cstdint>
#include <string>

#include "columnar/datatype.h"
#include "util/result.h"

namespace bento::col {

/// \brief A single (possibly null) value crossing kernel boundaries:
/// fill values, replace targets, literals in expressions, aggregate results.
class Scalar {
 public:
  enum class Kind { kNull, kInt, kDouble, kBool, kString, kTimestamp };

  Scalar() : kind_(Kind::kNull) {}

  static Scalar Null() { return Scalar(); }
  static Scalar Int(int64_t v) {
    Scalar s;
    s.kind_ = Kind::kInt;
    s.int_ = v;
    return s;
  }
  static Scalar Double(double v) {
    Scalar s;
    s.kind_ = Kind::kDouble;
    s.double_ = v;
    return s;
  }
  static Scalar Bool(bool v) {
    Scalar s;
    s.kind_ = Kind::kBool;
    s.bool_ = v;
    return s;
  }
  static Scalar Str(std::string v) {
    Scalar s;
    s.kind_ = Kind::kString;
    s.string_ = std::move(v);
    return s;
  }
  static Scalar Timestamp(int64_t micros) {
    Scalar s;
    s.kind_ = Kind::kTimestamp;
    s.int_ = micros;
    return s;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_numeric() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  bool bool_value() const { return bool_; }
  const std::string& string_value() const { return string_; }

  /// Numeric widening view; fails for non-numeric kinds.
  Result<double> AsDouble() const {
    switch (kind_) {
      case Kind::kInt:
      case Kind::kTimestamp:
        return static_cast<double>(int_);
      case Kind::kDouble:
        return double_;
      case Kind::kBool:
        return bool_ ? 1.0 : 0.0;
      default:
        return Status::TypeError("scalar is not numeric");
    }
  }

  Result<int64_t> AsInt() const {
    switch (kind_) {
      case Kind::kInt:
      case Kind::kTimestamp:
        return int_;
      case Kind::kDouble:
        return static_cast<int64_t>(double_);
      case Kind::kBool:
        return static_cast<int64_t>(bool_);
      default:
        return Status::TypeError("scalar is not numeric");
    }
  }

  std::string ToString() const;

  bool operator==(const Scalar& other) const;

 private:
  Kind kind_;
  int64_t int_ = 0;
  double double_ = 0.0;
  bool bool_ = false;
  std::string string_;
};

}  // namespace bento::col

#endif  // BENTO_COLUMNAR_SCALAR_H_
