#ifndef BENTO_COLUMNAR_BUILDER_H_
#define BENTO_COLUMNAR_BUILDER_H_

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/array.h"

namespace bento::col {

/// \brief Growable staging area for one column; Finish() produces an
/// immutable Array backed by pool-tracked buffers.
///
/// Builders stage into std::vector (untracked scratch) and charge the pool
/// once at Finish(); the dominant allocations in engine code paths are the
/// finished arrays, which is what the memory model needs to observe.
template <typename T, TypeId kType>
class FixedBuilder {
 public:
  void Reserve(int64_t n) {
    values_.reserve(static_cast<size_t>(n));
    validity_.reserve(static_cast<size_t>(n));
  }

  void Append(T value) {
    values_.push_back(value);
    validity_.push_back(1);
  }

  void AppendNull() {
    values_.push_back(T{});
    validity_.push_back(0);
    ++null_count_;
  }

  void AppendMaybe(T value, bool valid) {
    if (valid) {
      Append(value);
    } else {
      AppendNull();
    }
  }

  int64_t length() const { return static_cast<int64_t>(values_.size()); }
  int64_t null_count() const { return null_count_; }

  Result<ArrayPtr> Finish() {
    const int64_t n = length();
    BENTO_ASSIGN_OR_RETURN(auto data,
                           Buffer::CopyOf(values_.data(), n * sizeof(T)));
    BufferPtr validity;
    if (null_count_ > 0) {
      BENTO_ASSIGN_OR_RETURN(validity, AllocateBitmap(n, false));
      uint8_t* bits = validity->mutable_data();
      for (int64_t i = 0; i < n; ++i) {
        if (validity_[static_cast<size_t>(i)]) SetBit(bits, i);
      }
    }
    auto result = Array::MakeFixed(kType, n, std::move(data),
                                   std::move(validity), null_count_);
    values_.clear();
    validity_.clear();
    null_count_ = 0;
    return result;
  }

 private:
  std::vector<T> values_;
  std::vector<uint8_t> validity_;
  int64_t null_count_ = 0;
};

using Int64Builder = FixedBuilder<int64_t, TypeId::kInt64>;
using Float64Builder = FixedBuilder<double, TypeId::kFloat64>;
using TimestampBuilder = FixedBuilder<int64_t, TypeId::kTimestamp>;

class BoolBuilder : public FixedBuilder<uint8_t, TypeId::kBool> {
 public:
  void Append(bool v) { FixedBuilder::Append(v ? 1 : 0); }
  void AppendMaybe(bool v, bool valid) {
    FixedBuilder::AppendMaybe(v ? 1 : 0, valid);
  }
};

class StringBuilder {
 public:
  void Reserve(int64_t n) {
    offsets_.reserve(static_cast<size_t>(n) + 1);
    validity_.reserve(static_cast<size_t>(n));
  }

  void Append(std::string_view value) {
    chars_.append(value);
    offsets_.push_back(static_cast<int64_t>(chars_.size()));
    validity_.push_back(1);
  }

  void AppendNull() {
    offsets_.push_back(static_cast<int64_t>(chars_.size()));
    validity_.push_back(0);
    ++null_count_;
  }

  void AppendMaybe(std::string_view value, bool valid) {
    if (valid) {
      Append(value);
    } else {
      AppendNull();
    }
  }

  int64_t length() const { return static_cast<int64_t>(validity_.size()); }
  int64_t null_count() const { return null_count_; }

  Result<ArrayPtr> Finish();

 private:
  std::string chars_;
  std::vector<int64_t> offsets_ = {0};
  std::vector<uint8_t> validity_;
  int64_t null_count_ = 0;
};

class CategoricalBuilder {
 public:
  /// Appends a code into `dictionary` (codes are validated at Finish).
  void Append(int32_t code) {
    codes_.push_back(code);
    validity_.push_back(1);
  }
  void AppendNull() {
    codes_.push_back(-1);
    validity_.push_back(0);
    ++null_count_;
  }

  int64_t length() const { return static_cast<int64_t>(codes_.size()); }

  Result<ArrayPtr> Finish(Dictionary dictionary);

 private:
  std::vector<int32_t> codes_;
  std::vector<uint8_t> validity_;
  int64_t null_count_ = 0;
};

}  // namespace bento::col

#endif  // BENTO_COLUMNAR_BUILDER_H_
