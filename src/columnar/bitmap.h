#ifndef BENTO_COLUMNAR_BITMAP_H_
#define BENTO_COLUMNAR_BITMAP_H_

#include <cstdint>

#include "columnar/buffer.h"

namespace bento::col {

/// Bit-packed validity helpers (1 = valid, LSB-first within a byte), the
/// Arrow convention. All functions tolerate bitmap == nullptr as "all valid".

inline bool BitIsSet(const uint8_t* bitmap, int64_t i) {
  return (bitmap[i >> 3] >> (i & 7)) & 1;
}

inline void SetBit(uint8_t* bitmap, int64_t i) {
  bitmap[i >> 3] = static_cast<uint8_t>(bitmap[i >> 3] | (1u << (i & 7)));
}

inline void ClearBit(uint8_t* bitmap, int64_t i) {
  bitmap[i >> 3] = static_cast<uint8_t>(bitmap[i >> 3] & ~(1u << (i & 7)));
}

inline void SetBitTo(uint8_t* bitmap, int64_t i, bool value) {
  if (value) {
    SetBit(bitmap, i);
  } else {
    ClearBit(bitmap, i);
  }
}

inline int64_t BitmapBytes(int64_t bits) { return (bits + 7) >> 3; }

/// \brief Number of set bits in the first `length` bits.
int64_t CountSetBits(const uint8_t* bitmap, int64_t length);

/// \brief Allocates a bitmap of `bits` bits, all set to `value`.
Result<BufferPtr> AllocateBitmap(int64_t bits, bool value);

/// \brief out[i] = a[i] & b[i] over `bits` bits; either input may be null
/// ("all valid").
Result<BufferPtr> BitmapAnd(const uint8_t* a, const uint8_t* b, int64_t bits);

/// \brief out[i] = a[i] | b[i] over `bits` bits; either input may be null
/// ("all valid"), which saturates the result to all-set.
Result<BufferPtr> BitmapOr(const uint8_t* a, const uint8_t* b, int64_t bits);

}  // namespace bento::col

#endif  // BENTO_COLUMNAR_BITMAP_H_
