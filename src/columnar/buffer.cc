#include "columnar/buffer.h"

#include <cstdlib>

namespace bento::col {

Buffer::~Buffer() {
  if (owned_) {
    std::free(data_);
    if (pool_ != nullptr) pool_->Release(size_);
  }
}

Result<std::shared_ptr<Buffer>> Buffer::Allocate(uint64_t size) {
  sim::MemoryPool* pool = sim::MemoryPool::Current();
  BENTO_RETURN_NOT_OK(pool->Reserve(size));
  uint8_t* data = nullptr;
  if (size > 0) {
    data = static_cast<uint8_t*>(std::calloc(1, size));
    if (data == nullptr) {
      pool->Release(size);
      return Status::OutOfMemory("host allocation of ", size, " bytes failed");
    }
  }
  return std::shared_ptr<Buffer>(
      new Buffer(data, size, /*owned=*/true, pool->state()));
}

std::shared_ptr<Buffer> Buffer::Wrap(const void* data, uint64_t size) {
  return std::shared_ptr<Buffer>(
      new Buffer(const_cast<uint8_t*>(static_cast<const uint8_t*>(data)), size,
                 /*owned=*/false, nullptr));
}

std::shared_ptr<Buffer> Buffer::WrapOwned(const void* data, uint64_t size,
                                          std::shared_ptr<void> owner) {
  auto buf = Wrap(data, size);
  buf->owner_ = std::move(owner);
  return buf;
}

std::shared_ptr<Buffer> Buffer::Slice(const std::shared_ptr<Buffer>& parent,
                                      uint64_t offset, uint64_t size) {
  auto view = std::shared_ptr<Buffer>(
      new Buffer(const_cast<uint8_t*>(parent->data()) + offset, size,
                 /*owned=*/false, nullptr));
  view->parent_ = parent;
  return view;
}

Result<std::shared_ptr<Buffer>> Buffer::CopyOf(const void* data,
                                               uint64_t size) {
  BENTO_ASSIGN_OR_RETURN(auto buf, Allocate(size));
  if (size > 0) std::memcpy(buf->mutable_data(), data, size);
  return buf;
}

}  // namespace bento::col
