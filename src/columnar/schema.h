#ifndef BENTO_COLUMNAR_SCHEMA_H_
#define BENTO_COLUMNAR_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/datatype.h"
#include "util/result.h"

namespace bento::col {

/// \brief A named, typed column descriptor.
struct Field {
  std::string name;
  TypeId type;

  bool operator==(const Field& other) const = default;
};

/// \brief Ordered column descriptors with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of `name`, or -1.
  int IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const { return IndexOf(name) >= 0; }

  Result<Field> GetField(const std::string& name) const;

  std::vector<std::string> names() const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace bento::col

#endif  // BENTO_COLUMNAR_SCHEMA_H_
