#include "columnar/builder.h"

namespace bento::col {

Result<ArrayPtr> StringBuilder::Finish() {
  const int64_t n = length();
  BENTO_ASSIGN_OR_RETURN(
      auto offsets,
      Buffer::CopyOf(offsets_.data(), offsets_.size() * sizeof(int64_t)));
  BENTO_ASSIGN_OR_RETURN(auto chars,
                         Buffer::CopyOf(chars_.data(), chars_.size()));
  BufferPtr validity;
  if (null_count_ > 0) {
    BENTO_ASSIGN_OR_RETURN(validity, AllocateBitmap(n, false));
    uint8_t* bits = validity->mutable_data();
    for (int64_t i = 0; i < n; ++i) {
      if (validity_[static_cast<size_t>(i)]) SetBit(bits, i);
    }
  }
  auto result = Array::MakeString(n, std::move(offsets), std::move(chars),
                                  std::move(validity), null_count_);
  chars_.clear();
  offsets_.assign(1, 0);
  validity_.clear();
  null_count_ = 0;
  return result;
}

Result<ArrayPtr> CategoricalBuilder::Finish(Dictionary dictionary) {
  const int64_t n = length();
  const int32_t dict_size =
      dictionary != nullptr ? static_cast<int32_t>(dictionary->size()) : 0;
  for (int64_t i = 0; i < n; ++i) {
    if (validity_[static_cast<size_t>(i)] &&
        (codes_[static_cast<size_t>(i)] < 0 ||
         codes_[static_cast<size_t>(i)] >= dict_size)) {
      return Status::Invalid("categorical code ", codes_[static_cast<size_t>(i)],
                             " outside dictionary of size ", dict_size);
    }
  }
  BENTO_ASSIGN_OR_RETURN(
      auto codes, Buffer::CopyOf(codes_.data(), codes_.size() * sizeof(int32_t)));
  BufferPtr validity;
  if (null_count_ > 0) {
    BENTO_ASSIGN_OR_RETURN(validity, AllocateBitmap(n, false));
    uint8_t* bits = validity->mutable_data();
    for (int64_t i = 0; i < n; ++i) {
      if (validity_[static_cast<size_t>(i)]) SetBit(bits, i);
    }
  }
  auto result = Array::MakeCategorical(n, std::move(codes), std::move(dictionary),
                                       std::move(validity), null_count_);
  codes_.clear();
  validity_.clear();
  null_count_ = 0;
  return result;
}

}  // namespace bento::col
