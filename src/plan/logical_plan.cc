#include "plan/logical_plan.h"

#include "expr/parser.h"

namespace bento::plan {

using frame::Op;
using frame::OpKind;

namespace {

using kern::AggName;

std::string JoinList(const std::vector<std::string>& names) {
  if (names.empty()) return "*";
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

}  // namespace

std::string OpSummary(const Op& op) {
  std::string s = frame::OpKindName(op.kind);
  s += "[";
  switch (op.kind) {
    case OpKind::kQuery:
    case OpKind::kSearchPattern:
      s += op.text;
      break;
    case OpKind::kSortValues:
      for (size_t i = 0; i < op.sort_keys.size(); ++i) {
        if (i > 0) s += ", ";
        s += op.sort_keys[i].column;
        s += op.sort_keys[i].ascending ? " asc" : " desc";
      }
      break;
    case OpKind::kCast:
      s += op.column;
      s += " -> ";
      s += col::TypeName(op.type);
      break;
    case OpKind::kDropColumns:
    case OpKind::kDropNa:
    case OpKind::kDropDuplicates:
      s += JoinList(op.columns);
      break;
    case OpKind::kRename:
      for (size_t i = 0; i < op.renames.size(); ++i) {
        if (i > 0) s += ", ";
        s += op.renames[i].first;
        s += " -> ";
        s += op.renames[i].second;
      }
      break;
    case OpKind::kApplyExpr:
      s += op.new_name;
      s += " = ";
      s += op.text;
      break;
    case OpKind::kMerge:
      s += op.left_key;
      s += " = ";
      s += op.right_key;
      s += op.join_type == kern::JoinType::kLeft ? ", left" : ", inner";
      break;
    case OpKind::kGroupByAgg: {
      s += JoinList(op.columns);
      s += " | ";
      for (size_t i = 0; i < op.aggs.size(); ++i) {
        if (i > 0) s += ", ";
        const kern::AggSpec& a = op.aggs[i];
        s += a.output_name.empty() ? a.column + "_" + AggName(a.kind)
                                   : a.output_name;
        s += " = ";
        s += AggName(a.kind);
        s += "(";
        s += a.column;
        s += ")";
      }
      break;
    }
    case OpKind::kPivot:
      s += op.pivot_index;
      s += " x ";
      s += op.pivot_columns;
      s += " : ";
      s += AggName(op.pivot_agg);
      s += "(";
      s += op.pivot_values;
      s += ")";
      break;
    case OpKind::kRound:
      s += op.column;
      s += ", ";
      s += std::to_string(op.decimals);
      break;
    case OpKind::kFillNa:
      s += op.column;
      s += " = ";
      s += op.fill_with_mean ? std::string("mean") : op.scalar_a.ToString();
      break;
    case OpKind::kReplace:
      s += op.column;
      s += ": ";
      s += op.scalar_a.ToString();
      s += " -> ";
      s += op.scalar_b.ToString();
      break;
    case OpKind::kApplyRow:
      s += op.new_name;
      break;
    case OpKind::kFusedColumn: {
      s += op.column;
      s += ": ";
      for (size_t i = 0; i < op.fused.size(); ++i) {
        if (i > 0) s += "; ";
        s += frame::OpKindName(op.fused[i].kind);
      }
      break;
    }
    default:
      // Single-column ops (lower, catenc, onehot, chdate, outlier) and
      // column-less actions.
      s += op.column;
      break;
  }
  s += "]";
  return s;
}

std::string Explain(const std::vector<Op>& ops) {
  std::string out;
  for (const Op& op : ops) {
    out += OpSummary(op);
    out += "\n";
  }
  return out;
}

bool OpColumnFootprint(const Op& op, std::set<std::string>* touched) {
  switch (op.kind) {
    case OpKind::kCast:
    case OpKind::kStrLower:
    case OpKind::kRound:
    case OpKind::kFillNa:
    case OpKind::kReplace:
    case OpKind::kToDatetime:
    case OpKind::kCatCodes:
    case OpKind::kFusedColumn:
      touched->insert(op.column);
      return true;
    case OpKind::kApplyExpr: {
      auto parsed = expr::ParseExpr(op.text);
      if (!parsed.ok()) return false;
      parsed.ValueOrDie()->CollectColumns(touched);
      touched->insert(op.new_name);
      return true;
    }
    case OpKind::kDropColumns:
      touched->insert(op.columns.begin(), op.columns.end());
      return true;
    case OpKind::kSortValues:
      for (const auto& key : op.sort_keys) touched->insert(key.column);
      return true;
    case OpKind::kDropNa:
      if (op.columns.empty()) return false;  // inspects every column
      touched->insert(op.columns.begin(), op.columns.end());
      return true;
    default:
      return false;
  }
}

std::set<std::string> QueryReferences(const Op& query) {
  std::set<std::string> refs;
  auto parsed = expr::ParseExpr(query.text);
  if (parsed.ok()) parsed.ValueOrDie()->CollectColumns(&refs);
  return refs;
}

bool Intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  for (const std::string& x : a) {
    if (b.count(x) > 0) return true;
  }
  return false;
}

bool IsOrderObliviousRowOp(const Op& op) {
  switch (op.kind) {
    // Per-row maps: each output row is a function of its input row alone
    // (fillna-with-mean additionally reads the column multiset, which is
    // also order-independent). Row filters keep a row based on its own
    // values and preserve relative order.
    case OpKind::kQuery:
    case OpKind::kDropNa:
    case OpKind::kCast:
    case OpKind::kStrLower:
    case OpKind::kRound:
    case OpKind::kReplace:
    case OpKind::kToDatetime:
    case OpKind::kFillNa:
    case OpKind::kApplyExpr:
    case OpKind::kApplyRow:
      return true;
    case OpKind::kFusedColumn:
      for (const Op& step : op.fused) {
        if (!IsOrderObliviousRowOp(step)) return false;
      }
      return true;
    // Everything else either reorders rows (sort), keeps first-seen rows
    // (dedup, groupby emission order), renames/drops columns a later sort
    // key may reference, or multiplies rows (merge, dummies widen is fine
    // but stay conservative).
    default:
      return false;
  }
}

}  // namespace bento::plan
