#ifndef BENTO_PLAN_RULES_H_
#define BENTO_PLAN_RULES_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/bcf.h"
#include "plan/logical_plan.h"

namespace bento::frame {
class DataFrame;
}  // namespace bento::frame

namespace bento::plan {

/// \brief Per-engine optimizer policy: which rewrite families the engine
/// model applies. Defaults mirror the full rule set; engines that model
/// fewer optimizations (SparkPD's reduced Catalyst surface) clear flags.
struct OptimizerPolicy {
  bool predicate_pushdown = true;
  bool projection_pushdown = true;
  /// Binding of leading drops / filters into the physical scan (CSV column
  /// skipping, BCF zone-map row-group skipping). Consumed by the executor,
  /// not by a plan-to-plan rule.
  bool scan_pushdown = true;
  bool fusion = true;
  bool dead_op_elimination = true;
  bool common_subplan_elimination = true;
  bool filter_reorder = true;
};

/// \brief Engine-supplied context for rules that need to look outside the
/// op sequence itself.
struct PlanContext {
  /// Stable lineage signature of a merge right-side frame, or nullopt when
  /// the frame is opaque (non-lazy engine, row_fn in the subplan, already
  /// materialized from an unknown table). Equal signatures must imply
  /// value-identical Collect() results.
  std::function<std::optional<std::string>(
      const std::shared_ptr<frame::DataFrame>&)>
      subplan_signature;
};

/// \brief One answer-preserving plan rewrite. Apply() returns true when it
/// changed the plan; the driver re-runs the rule set until a full pass
/// changes nothing.
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;
  virtual const char* name() const = 0;
  virtual bool Apply(LogicalPlan* plan, const PlanContext& ctx) const = 0;
};

/// \brief Fixed-point driver over the rule catalog selected by `policy`.
/// Each rule application emits a plan.rewrite.<rule> counter and runs under
/// a per-rule trace span.
class RuleDriver {
 public:
  explicit RuleDriver(const OptimizerPolicy& policy);

  LogicalPlan Run(LogicalPlan plan, const PlanContext& ctx) const;

  const std::vector<std::unique_ptr<RewriteRule>>& rules() const {
    return rules_;
  }

 private:
  std::vector<std::unique_ptr<RewriteRule>> rules_;
};

/// \brief True when a kQuery with references `refs` may hop before `prev`
/// without changing results (or error behaviour). The soundness core of
/// predicate pushdown, exposed for tests.
bool QueryCanHopBefore(const frame::Op& query, const frame::Op& prev,
                       const std::set<std::string>& refs);

/// \brief Splits a query predicate into top-level AND conjuncts of the form
/// `column <cmp> numeric-literal` (either operand order) for zone-map
/// row-group skipping. Conjuncts that don't fit the shape are simply not
/// extracted; the full predicate always stays in the plan as the residual
/// filter, so extraction is an accelerator, never a semantics carrier.
std::vector<io::ScanPredicate> ExtractScanPredicates(const std::string& query);

}  // namespace bento::plan

#endif  // BENTO_PLAN_RULES_H_
