#ifndef BENTO_PLAN_LOGICAL_PLAN_H_
#define BENTO_PLAN_LOGICAL_PLAN_H_

#include <set>
#include <string>
#include <vector>

#include "frame/op.h"

namespace bento::plan {

/// \brief A logical plan: the ordered transform sequence a lazy frame
/// accumulated between its source and the forcing action. Rewrite rules
/// mutate `ops` in place; the executor runs whatever remains.
struct LogicalPlan {
  std::vector<frame::Op> ops;
};

/// \brief One-line rendering of a single op for plan dumps and golden
/// tests, e.g. "query[age >= 20]" or "fused[v: fillna; astype; round]".
std::string OpSummary(const frame::Op& op);

/// \brief Multi-line plan dump (one OpSummary per line, source to sink).
/// This is the `--explain` text form; golden plan-snapshot tests compare
/// these strings before/after optimization.
std::string Explain(const std::vector<frame::Op>& ops);

// --- column-footprint analysis shared by the rewrite rules -----------------

/// \brief Columns `op` reads or writes. Returns false when the op touches
/// the whole row (opaque to column analysis); `touched` is then meaningless.
bool OpColumnFootprint(const frame::Op& op, std::set<std::string>* touched);

/// \brief Columns referenced by a kQuery predicate (empty on parse failure).
std::set<std::string> QueryReferences(const frame::Op& query);

/// \brief True when the two sets share at least one element.
bool Intersects(const std::set<std::string>& a, const std::set<std::string>& b);

/// \brief True when `op` is a pure per-row map or filter: it neither
/// reorders rows nor depends on row order, so it commutes with sorting for
/// the purpose of redundant-sort elimination.
bool IsOrderObliviousRowOp(const frame::Op& op);

}  // namespace bento::plan

#endif  // BENTO_PLAN_LOGICAL_PLAN_H_
