#include "plan/rules.h"

#include <algorithm>

#include "expr/parser.h"
#include "kernels/groupby.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bento::plan {

using frame::Op;
using frame::OpKind;

bool QueryCanHopBefore(const Op& query, const Op& prev,
                       const std::set<std::string>& refs) {
  (void)query;
  switch (prev.kind) {
    case OpKind::kSortValues:
      return true;  // content-based filter commutes with reordering
    case OpKind::kDropNa:
      return true;  // two row filters commute
    case OpKind::kCast:
    case OpKind::kStrLower:
    case OpKind::kRound:
    case OpKind::kToDatetime:
    case OpKind::kReplace:
      return refs.count(prev.column) == 0;
    case OpKind::kFillNa:
      // fillna changes null rows; safe only when the filter ignores the
      // column entirely (and fillna-with-mean depends on the row set the
      // filter would change).
      return !prev.fill_with_mean && refs.count(prev.column) == 0;
    case OpKind::kFusedColumn:
      if (refs.count(prev.column) > 0) return false;
      for (const Op& step : prev.fused) {
        // A fused mean-fill or categorical encode reads global column
        // state; hopping the filter before it changes that state.
        if (step.kind == OpKind::kFillNa && step.fill_with_mean) return false;
        if (step.kind == OpKind::kCatCodes) return false;
      }
      return true;
    case OpKind::kApplyExpr:
      return refs.count(prev.new_name) == 0;
    case OpKind::kApplyRow:
      return refs.count(prev.new_name) == 0;
    case OpKind::kDropColumns: {
      // Sound only when the filter ignores every dropped column: a filter
      // referencing a dropped column must keep erroring after the drop,
      // not silently succeed ahead of it.
      std::set<std::string> dropped(prev.columns.begin(), prev.columns.end());
      return !Intersects(refs, dropped);
    }
    default:
      return false;
  }
}

namespace {

/// Columns `op` overwrites or creates (the write half of the footprint).
/// Only meaningful for order-oblivious row ops; empty for filters.
std::set<std::string> WrittenColumns(const Op& op) {
  switch (op.kind) {
    case OpKind::kCast:
    case OpKind::kStrLower:
    case OpKind::kRound:
    case OpKind::kReplace:
    case OpKind::kToDatetime:
    case OpKind::kFillNa:
    case OpKind::kCatCodes:
    case OpKind::kFusedColumn:
      return {op.column};
    case OpKind::kApplyExpr:
    case OpKind::kApplyRow:
      return {op.new_name};
    default:
      return {};
  }
}

// --- predicate pushdown ----------------------------------------------------

class PredicatePushdownRule : public RewriteRule {
 public:
  const char* name() const override { return "predicate_pushdown"; }

  bool Apply(LogicalPlan* plan, const PlanContext&) const override {
    bool changed = false;
    auto& ops = plan->ops;
    // Bubble each filter toward the source through ops it commutes with.
    for (size_t i = 1; i < ops.size(); ++i) {
      if (ops[i].kind != OpKind::kQuery) continue;
      std::set<std::string> refs = QueryReferences(ops[i]);
      size_t j = i;
      // Filters never hop column drops even when sound: drops stay
      // outermost so the executor can bind them into the scan, and
      // projection pushdown moving drops the other way would otherwise
      // ping-pong with this rule forever.
      while (j > 0 && ops[j - 1].kind != OpKind::kDropColumns &&
             QueryCanHopBefore(ops[j], ops[j - 1], refs)) {
        std::swap(ops[j], ops[j - 1]);
        --j;
        changed = true;
      }
    }
    return changed;
  }
};

// --- projection pushdown ---------------------------------------------------

class ProjectionPushdownRule : public RewriteRule {
 public:
  const char* name() const override { return "projection_pushdown"; }

  bool Apply(LogicalPlan* plan, const PlanContext&) const override {
    bool changed = false;
    auto& ops = plan->ops;
    // Pull column drops toward the source past ops that don't touch the
    // dropped columns.
    for (size_t i = 1; i < ops.size(); ++i) {
      if (ops[i].kind != OpKind::kDropColumns) continue;
      std::set<std::string> dropped(ops[i].columns.begin(),
                                    ops[i].columns.end());
      size_t j = i;
      while (j > 0) {
        const Op& prev = ops[j - 1];
        // Adjacent drops are MergeAdjacentDrops' job; swapping two disjoint
        // drops would oscillate across passes.
        if (prev.kind == OpKind::kDropColumns) break;
        if (prev.kind == OpKind::kQuery) {
          if (Intersects(QueryReferences(prev), dropped)) break;
        } else {
          std::set<std::string> touched;
          if (!OpColumnFootprint(prev, &touched)) break;
          if (Intersects(touched, dropped)) break;
        }
        std::swap(ops[j], ops[j - 1]);
        --j;
        changed = true;
      }
    }
    return changed;
  }
};

// --- filter-before-join / group-by reordering ------------------------------

/// Hops a filter over the breaker immediately before it when the predicate
/// only reads columns the breaker passes through unchanged: group-by keys
/// (key values are constant per group, so filtering groups after equals
/// filtering member rows before) and the shared join key of an inner/left
/// merge (every output row carries its probe row's key). Predicate
/// pushdown then continues the bubble toward the source.
class FilterReorderRule : public RewriteRule {
 public:
  const char* name() const override { return "filter_reorder"; }

  bool Apply(LogicalPlan* plan, const PlanContext&) const override {
    bool changed = false;
    auto& ops = plan->ops;
    for (size_t i = 1; i < ops.size(); ++i) {
      if (ops[i].kind != OpKind::kQuery) continue;
      const Op& prev = ops[i - 1];
      std::set<std::string> refs = QueryReferences(ops[i]);
      if (refs.empty()) continue;  // unparseable or constant predicate
      bool hop = false;
      if (prev.kind == OpKind::kGroupByAgg) {
        std::set<std::string> keys(prev.columns.begin(), prev.columns.end());
        std::set<std::string> outs;
        for (const kern::AggSpec& a : prev.aggs) {
          outs.insert(kern::DefaultAggName(a));
        }
        hop = Subset(refs, keys) && !Intersects(refs, outs);
      } else if (prev.kind == OpKind::kMerge &&
                 prev.left_key == prev.right_key) {
        // Same-named key: the output key column is the probe side's value
        // for inner and left joins, so a key-only filter commutes.
        hop = refs.size() == 1 && refs.count(prev.left_key) == 1;
      }
      if (hop) {
        std::swap(ops[i], ops[i - 1]);
        changed = true;
      }
    }
    return changed;
  }

 private:
  static bool Subset(const std::set<std::string>& a,
                     const std::set<std::string>& b) {
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
  }
};

// --- preparator fusion -----------------------------------------------------

/// True when `op` is a single-column value map that FusedColumn can chain:
/// one GetColumn, kernel sequence, one SetColumn. fillna-with-mean and the
/// dictionary ops stay fusible because the fused op executes them against
/// the same whole-column state a separate op would see (the fused op is
/// only streamable when every step is — see IsStreamable).
bool IsFusibleColumnStep(const Op& op) {
  switch (op.kind) {
    case OpKind::kCast:
    case OpKind::kStrLower:
    case OpKind::kRound:
    case OpKind::kReplace:
    case OpKind::kToDatetime:
    case OpKind::kCatCodes:
      return true;
    case OpKind::kFillNa:
      return !op.fill_with_mean;
    default:
      return false;
  }
}

class FusionRule : public RewriteRule {
 public:
  const char* name() const override { return "fusion"; }

  bool Apply(LogicalPlan* plan, const PlanContext&) const override {
    bool changed = FuseAdjacentFilters(plan);
    changed = FuseColumnChains(plan) || changed;
    return changed;
  }

 private:
  /// query(a); query(b)  ==>  query((a) and (b)) — one mask evaluation and
  /// one filter pass instead of two.
  static bool FuseAdjacentFilters(LogicalPlan* plan) {
    auto& ops = plan->ops;
    bool changed = false;
    for (size_t i = 0; i + 1 < ops.size();) {
      if (ops[i].kind == OpKind::kQuery && ops[i + 1].kind == OpKind::kQuery) {
        ops[i].text = "(" + ops[i].text + ") and (" + ops[i + 1].text + ")";
        ops.erase(ops.begin() + static_cast<ptrdiff_t>(i) + 1);
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  /// Runs of >= 2 adjacent single-column maps over the same column collapse
  /// into one kFusedColumn op: one GetColumn / SetColumn and one table
  /// rebuild for the whole chain.
  static bool FuseColumnChains(LogicalPlan* plan) {
    auto& ops = plan->ops;
    bool changed = false;
    for (size_t i = 0; i < ops.size();) {
      if (!FusibleHead(ops[i])) {
        ++i;
        continue;
      }
      const std::string& column = ops[i].column;
      size_t j = i + 1;
      while (j < ops.size() && FusibleHead(ops[j]) && ops[j].column == column) {
        ++j;
      }
      if (j - i < 2) {
        ++i;
        continue;
      }
      std::vector<Op> steps;
      for (size_t k = i; k < j; ++k) {
        if (ops[k].kind == OpKind::kFusedColumn) {
          steps.insert(steps.end(), ops[k].fused.begin(), ops[k].fused.end());
        } else {
          steps.push_back(ops[k]);
        }
      }
      Op fused = Op::FusedColumn(column, std::move(steps));
      ops[i] = std::move(fused);
      ops.erase(ops.begin() + static_cast<ptrdiff_t>(i) + 1,
                ops.begin() + static_cast<ptrdiff_t>(j));
      changed = true;
      ++i;
    }
    return changed;
  }

  static bool FusibleHead(const Op& op) {
    return IsFusibleColumnStep(op) || op.kind == OpKind::kFusedColumn;
  }
};

// --- dead / redundant op elimination ---------------------------------------

class DeadOpEliminationRule : public RewriteRule {
 public:
  const char* name() const override { return "dead_op_elimination"; }

  bool Apply(LogicalPlan* plan, const PlanContext&) const override {
    bool changed = EliminateRedundantDedups(plan);
    changed = EliminateOverwrittenSorts(plan) || changed;
    changed = MergeAdjacentDrops(plan) || changed;
    return changed;
  }

 private:
  /// A dedup is dead when an earlier dedup/group-by already guarantees
  /// uniqueness on a subset of its effective key set and only
  /// uniqueness-preserving ops (filters, sorts) run in between. The later
  /// dedup is only removed when its own column references are provably
  /// valid (no references at all, or exactly the earlier provider's), so
  /// elimination can never mask a KeyError the original plan raised.
  static bool EliminateRedundantDedups(LogicalPlan* plan) {
    auto& ops = plan->ops;
    bool changed = false;
    for (size_t j = 0; j < ops.size();) {
      if (ops[j].kind != OpKind::kDropDuplicates || !ProvenDead(ops, j)) {
        ++j;
        continue;
      }
      ops.erase(ops.begin() + static_cast<ptrdiff_t>(j));
      changed = true;
    }
    return changed;
  }

  static bool ProvenDead(const std::vector<Op>& ops, size_t j) {
    const std::set<std::string> subset(ops[j].columns.begin(),
                                       ops[j].columns.end());
    const bool all_columns = subset.empty();
    for (size_t i = j; i-- > 0;) {
      const Op& prev = ops[i];
      if (prev.kind == OpKind::kQuery || prev.kind == OpKind::kDropNa ||
          prev.kind == OpKind::kSortValues) {
        continue;  // filters / reorders preserve row uniqueness
      }
      if (prev.kind == OpKind::kDropDuplicates) {
        std::set<std::string> provider(prev.columns.begin(),
                                       prev.columns.end());
        if (provider.empty()) {
          // Unique on every column; any later dedup whose references are
          // known-valid is dead. Only the no-reference form qualifies.
          return all_columns;
        }
        if (all_columns) return true;  // superset of provider, no refs
        return subset == provider;     // identical dedup repeated
      }
      if (prev.kind == OpKind::kGroupByAgg) {
        std::set<std::string> keys(prev.columns.begin(), prev.columns.end());
        std::set<std::string> produced = keys;
        for (const kern::AggSpec& a : prev.aggs) {
          produced.insert(kern::DefaultAggName(a));
        }
        if (all_columns) return true;  // output rows unique on keys
        // Need keys ⊆ subset (uniqueness transfers) and every referenced
        // column to exist in the group-by output (no masked KeyError).
        return std::includes(subset.begin(), subset.end(), keys.begin(),
                             keys.end()) &&
               std::includes(produced.begin(), produced.end(), subset.begin(),
                             subset.end());
      }
      return false;  // value-changing / row-multiplying op: stop the scan
    }
    return false;
  }

  /// sort(A) ... sort(B) with keys(A) ⊆ keys(B): the earlier sort only
  /// pre-orders rows inside B's tie groups, and stability means those
  /// groups end in original relative order either way — provided nothing in
  /// between reorders rows, depends on row order, or rewrites one of A's
  /// key columns (a rewrite could split A-ties that B then re-breaks
  /// differently).
  static bool EliminateOverwrittenSorts(LogicalPlan* plan) {
    auto& ops = plan->ops;
    bool changed = false;
    for (size_t i = 0; i < ops.size();) {
      if (ops[i].kind != OpKind::kSortValues) {
        ++i;
        continue;
      }
      std::set<std::string> early_keys;
      for (const kern::SortKey& k : ops[i].sort_keys) {
        early_keys.insert(k.column);
      }
      bool dead = false;
      for (size_t j = i + 1; j < ops.size(); ++j) {
        if (ops[j].kind == OpKind::kSortValues) {
          std::set<std::string> late_keys;
          for (const kern::SortKey& k : ops[j].sort_keys) {
            late_keys.insert(k.column);
          }
          dead = std::includes(late_keys.begin(), late_keys.end(),
                               early_keys.begin(), early_keys.end());
          break;
        }
        if (!IsOrderObliviousRowOp(ops[j]) ||
            Intersects(WrittenColumns(ops[j]), early_keys)) {
          break;
        }
      }
      if (dead) {
        ops.erase(ops.begin() + static_cast<ptrdiff_t>(i));
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  /// drop(A); drop(B) ==> drop(A + B) when the sets are disjoint (an
  /// overlap means the original second drop errors on an already-removed
  /// column, which the merged form must not hide).
  static bool MergeAdjacentDrops(LogicalPlan* plan) {
    auto& ops = plan->ops;
    bool changed = false;
    for (size_t i = 0; i + 1 < ops.size();) {
      if (ops[i].kind != OpKind::kDropColumns ||
          ops[i + 1].kind != OpKind::kDropColumns) {
        ++i;
        continue;
      }
      std::set<std::string> first(ops[i].columns.begin(),
                                  ops[i].columns.end());
      std::set<std::string> second(ops[i + 1].columns.begin(),
                                   ops[i + 1].columns.end());
      if (Intersects(first, second)) {
        ++i;
        continue;
      }
      ops[i].columns.insert(ops[i].columns.end(), ops[i + 1].columns.begin(),
                            ops[i + 1].columns.end());
      ops.erase(ops.begin() + static_cast<ptrdiff_t>(i) + 1);
      changed = true;
    }
    return changed;
  }
};

// --- common-subplan elimination across join inputs -------------------------

/// Two merges whose right sides have identical lineage signatures share one
/// frame object, so the subplan collects once (the lazy frame caches its
/// materialized result) instead of once per join.
class CommonSubplanRule : public RewriteRule {
 public:
  const char* name() const override { return "common_subplan"; }

  bool Apply(LogicalPlan* plan, const PlanContext& ctx) const override {
    if (!ctx.subplan_signature) return false;
    auto& ops = plan->ops;
    bool changed = false;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind != OpKind::kMerge || ops[i].other == nullptr) continue;
      std::optional<std::string> sig_i;
      bool sig_i_computed = false;
      for (size_t j = i + 1; j < ops.size(); ++j) {
        if (ops[j].kind != OpKind::kMerge || ops[j].other == nullptr) continue;
        if (ops[j].other == ops[i].other) continue;  // already shared
        if (!sig_i_computed) {
          sig_i = ctx.subplan_signature(ops[i].other);
          sig_i_computed = true;
        }
        if (!sig_i.has_value()) break;  // opaque subplan: nothing to share
        std::optional<std::string> sig_j = ctx.subplan_signature(ops[j].other);
        if (sig_j.has_value() && *sig_j == *sig_i) {
          ops[j].other = ops[i].other;
          changed = true;
        }
      }
    }
    return changed;
  }
};

}  // namespace

// --- driver ----------------------------------------------------------------

RuleDriver::RuleDriver(const OptimizerPolicy& policy) {
  // Reorder first so the pushdown bubble sees filters already hoisted over
  // breakers; fusion and elimination run on the settled op order.
  if (policy.filter_reorder) {
    rules_.push_back(std::make_unique<FilterReorderRule>());
  }
  if (policy.predicate_pushdown) {
    rules_.push_back(std::make_unique<PredicatePushdownRule>());
  }
  if (policy.projection_pushdown) {
    rules_.push_back(std::make_unique<ProjectionPushdownRule>());
  }
  if (policy.dead_op_elimination) {
    rules_.push_back(std::make_unique<DeadOpEliminationRule>());
  }
  if (policy.fusion) {
    rules_.push_back(std::make_unique<FusionRule>());
  }
  if (policy.common_subplan_elimination) {
    rules_.push_back(std::make_unique<CommonSubplanRule>());
  }
}

LogicalPlan RuleDriver::Run(LogicalPlan plan, const PlanContext& ctx) const {
  // Every rule strictly reduces op count, shares a pointer, or moves an op
  // toward the source, so a fixed point exists; the pass cap is a backstop.
  constexpr int kMaxPasses = 16;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool changed = false;
    for (const auto& rule : rules_) {
      BENTO_TRACE_SPAN_DYN(kEngine, std::string("plan.rule.") + rule->name());
      if (rule->Apply(&plan, ctx)) {
        obs::MetricsRegistry::Global()
            .counter(std::string("plan.rewrite.") + rule->name())
            ->Increment();
        changed = true;
      }
    }
    if (!changed) break;
  }
  return plan;
}

// --- scan predicate extraction ---------------------------------------------

namespace {

void CollectConjuncts(const expr::ExprPtr& e,
                      std::vector<io::ScanPredicate>* out) {
  if (e == nullptr || e->kind() != expr::Expr::Kind::kBinary) return;
  if (e->bin_op() == expr::BinOpKind::kAnd) {
    CollectConjuncts(e->left(), out);
    CollectConjuncts(e->right(), out);
    return;
  }
  const expr::ExprPtr& l = e->left();
  const expr::ExprPtr& r = e->right();
  auto numeric_literal = [](const expr::ExprPtr& x) {
    return x->kind() == expr::Expr::Kind::kLiteral && x->literal().is_numeric();
  };
  auto column = [](const expr::ExprPtr& x) {
    return x->kind() == expr::Expr::Kind::kColumn;
  };
  io::ScanPredicate pred;
  bool flipped;
  if (column(l) && numeric_literal(r)) {
    flipped = false;
    pred.column = l->column_name();
    pred.value = r->literal().AsDouble().ValueOrDie();
  } else if (numeric_literal(l) && column(r)) {
    flipped = true;  // "5 < x" is "x > 5"
    pred.column = r->column_name();
    pred.value = l->literal().AsDouble().ValueOrDie();
  } else {
    return;
  }
  switch (e->bin_op()) {
    case expr::BinOpKind::kLt:
      pred.cmp = flipped ? io::ScanPredicate::Cmp::kGt
                         : io::ScanPredicate::Cmp::kLt;
      break;
    case expr::BinOpKind::kLe:
      pred.cmp = flipped ? io::ScanPredicate::Cmp::kGe
                         : io::ScanPredicate::Cmp::kLe;
      break;
    case expr::BinOpKind::kGt:
      pred.cmp = flipped ? io::ScanPredicate::Cmp::kLt
                         : io::ScanPredicate::Cmp::kGt;
      break;
    case expr::BinOpKind::kGe:
      pred.cmp = flipped ? io::ScanPredicate::Cmp::kLe
                         : io::ScanPredicate::Cmp::kGe;
      break;
    case expr::BinOpKind::kEq:
      pred.cmp = io::ScanPredicate::Cmp::kEq;
      break;
    default:
      return;  // !=, or, arithmetic: not zone-map prunable
  }
  out->push_back(std::move(pred));
}

}  // namespace

std::vector<io::ScanPredicate> ExtractScanPredicates(const std::string& query) {
  std::vector<io::ScanPredicate> preds;
  auto parsed = expr::ParseExpr(query);
  if (parsed.ok()) CollectConjuncts(parsed.ValueOrDie(), &preds);
  return preds;
}

}  // namespace bento::plan
