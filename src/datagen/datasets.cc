#include "datagen/datasets.h"

#include <algorithm>
#include <cmath>

#include "columnar/builder.h"
#include "util/random.h"
#include "util/string_util.h"

namespace bento::gen {

namespace {

using col::ArrayPtr;
using col::Field;
using col::TablePtr;
using col::TypeId;

constexpr const char* kMonths[] = {"01", "02", "03", "04", "05", "06",
                                   "07", "08", "09", "10", "11", "12"};

std::string RandomDate(Rng* rng, int year_lo, int year_hi) {
  int year = static_cast<int>(rng->UniformInt(year_lo, year_hi));
  const char* month = kMonths[rng->Uniform(12)];
  int day = static_cast<int>(rng->UniformInt(1, 28));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%s-%02d", year, month, day);
  return buf;
}

std::string RandomDateTime(Rng* rng, int year_lo, int year_hi) {
  std::string date = RandomDate(rng, year_lo, year_hi);
  char buf[16];
  std::snprintf(buf, sizeof(buf), " %02d:%02d:%02d",
                static_cast<int>(rng->Uniform(24)),
                static_cast<int>(rng->Uniform(60)),
                static_cast<int>(rng->Uniform(60)));
  return date + buf;
}

/// Picks from a fixed vocabulary with Zipf skew (realistic categoricals).
std::string PickCategory(Rng* rng, const std::vector<std::string>& vocab,
                         double skew = 0.8) {
  return vocab[rng->Zipf(vocab.size(), skew)];
}

std::vector<std::string> MakeVocab(Rng* rng, int n, int len_lo, int len_hi) {
  std::vector<std::string> vocab;
  vocab.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) vocab.push_back(rng->AsciiString(len_lo, len_hi));
  return vocab;
}

/// The NOC country-code vocabulary, derived from the seed independently of
/// other draws so the athlete table and the regions lookup always agree.
std::vector<std::string> NocVocab(uint64_t seed) {
  Rng rng(seed ^ 0x4E4F43ULL);  // "NOC"
  return MakeVocab(&rng, 230, 3, 3);
}

struct Builder {
  std::vector<Field> fields;
  std::vector<ArrayPtr> columns;

  Status Add(std::string name, Result<ArrayPtr> column) {
    BENTO_ASSIGN_OR_RETURN(auto c, std::move(column));
    fields.push_back(Field{std::move(name), c->type()});
    columns.push_back(std::move(c));
    return Status::OK();
  }

  Result<TablePtr> Finish() {
    return col::Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                            std::move(columns));
  }
};

Result<ArrayPtr> NumericColumn(Rng* rng, int64_t rows, double mean,
                               double stddev, double null_p) {
  col::Float64Builder b;
  b.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    if (null_p > 0 && rng->Bernoulli(null_p)) {
      b.AppendNull();
    } else {
      // Two-decimal values, like the money/rate/measurement columns of the
      // source datasets; also keeps CSV bytes-per-row realistic.
      b.Append(std::round(rng->Normal(mean, stddev) * 100.0) / 100.0);
    }
  }
  return b.Finish();
}

Result<ArrayPtr> IntColumn(Rng* rng, int64_t rows, int64_t lo, int64_t hi,
                           double null_p = 0.0) {
  col::Int64Builder b;
  b.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    if (null_p > 0 && rng->Bernoulli(null_p)) {
      b.AppendNull();
    } else {
      b.Append(rng->UniformInt(lo, hi));
    }
  }
  return b.Finish();
}

Result<ArrayPtr> CategoryColumn(Rng* rng, int64_t rows,
                                const std::vector<std::string>& vocab,
                                double null_p, double skew = 0.8) {
  col::StringBuilder b;
  b.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    if (null_p > 0 && rng->Bernoulli(null_p)) {
      b.AppendNull();
    } else {
      b.Append(PickCategory(rng, vocab, skew));
    }
  }
  return b.Finish();
}

/// Free-text with realistically skewed lengths: most values are short,
/// a `long_p` tail stretches to `len_hi` (matching the published length
/// *ranges* without inflating the average bytes per row).
Result<ArrayPtr> FreeTextColumn(Rng* rng, int64_t rows, int len_lo, int len_hi,
                                double null_p, double long_p = 0.03) {
  const int short_hi = std::min(len_hi, len_lo + 48);
  col::StringBuilder b;
  b.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    if (null_p > 0 && rng->Bernoulli(null_p)) {
      b.AppendNull();
    } else if (len_hi > short_hi && rng->Bernoulli(long_p)) {
      b.Append(rng->AsciiString(short_hi, len_hi));
    } else {
      b.Append(rng->AsciiString(len_lo, short_hi));
    }
  }
  return b.Finish();
}

Result<ArrayPtr> BoolColumn(Rng* rng, int64_t rows, double true_p,
                            double null_p = 0.0) {
  col::BoolBuilder b;
  b.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    if (null_p > 0 && rng->Bernoulli(null_p)) {
      b.AppendNull();
    } else {
      b.Append(rng->Bernoulli(true_p));
    }
  }
  return b.Finish();
}

Result<ArrayPtr> DateColumn(Rng* rng, int64_t rows, int ylo, int yhi,
                            bool with_time, double null_p = 0.0) {
  col::StringBuilder b;
  b.Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    if (null_p > 0 && rng->Bernoulli(null_p)) {
      b.AppendNull();
    } else {
      b.Append(with_time ? RandomDateTime(rng, ylo, yhi)
                         : RandomDate(rng, ylo, yhi));
    }
  }
  return b.Finish();
}

int64_t ScaledRows(const DatasetProfile& p, double scale) {
  int64_t rows = static_cast<int64_t>(std::llround(
      static_cast<double>(p.base_rows) * scale));
  return std::max<int64_t>(rows, 16);
}

// ---------------------------------------------------------------------------
// Athlete: 120 years of Olympic results. 15 columns, 0.2M rows, mixed
// numeric/string, 9% nulls concentrated in age/height/weight/medal.
// ---------------------------------------------------------------------------
Result<TablePtr> GenerateAthlete(const DatasetProfile& p, double scale,
                                 uint64_t seed) {
  Rng rng(seed);
  const int64_t rows = ScaledRows(p, scale);

  auto names = MakeVocab(&rng, 2000, 8, 30);
  auto nocs = NocVocab(seed);
  const std::vector<std::string> teams = {
      "United States", "Soviet Union", "Germany",  "Italy",  "France",
      "Great Britain", "China",        "Norway",   "Sweden", "Canada",
      "Australia",     "Japan",        "Hungary"};
  const std::vector<std::string> seasons = {"Summer", "Winter"};
  auto cities = MakeVocab(&rng, 50, 4, 16);
  auto sports = MakeVocab(&rng, 60, 4, 24);
  auto events = MakeVocab(&rng, 700, 10, 108);
  const std::vector<std::string> medals = {"Gold", "Silver", "Bronze"};

  Builder t;
  BENTO_RETURN_NOT_OK(t.Add("id", IntColumn(&rng, rows, 1, 135000)));
  BENTO_RETURN_NOT_OK(t.Add("name", CategoryColumn(&rng, rows, names, 0.0)));
  BENTO_RETURN_NOT_OK(
      t.Add("sex", CategoryColumn(&rng, rows, {"M", "F"}, 0.0, 0.3)));
  BENTO_RETURN_NOT_OK(t.Add("age", NumericColumn(&rng, rows, 25.5, 6.0, 0.03)));
  BENTO_RETURN_NOT_OK(
      t.Add("height", NumericColumn(&rng, rows, 175.0, 10.0, 0.22)));
  BENTO_RETURN_NOT_OK(
      t.Add("weight", NumericColumn(&rng, rows, 70.7, 14.0, 0.23)));
  BENTO_RETURN_NOT_OK(t.Add("team", CategoryColumn(&rng, rows, teams, 0.0)));
  BENTO_RETURN_NOT_OK(t.Add("noc", CategoryColumn(&rng, rows, nocs, 0.0, 0.6)));
  BENTO_RETURN_NOT_OK(
      t.Add("games", FreeTextColumn(&rng, rows, 11, 18, 0.0)));
  BENTO_RETURN_NOT_OK(t.Add("year", IntColumn(&rng, rows, 1896, 2016)));
  BENTO_RETURN_NOT_OK(
      t.Add("season", CategoryColumn(&rng, rows, seasons, 0.0, 0.3)));
  BENTO_RETURN_NOT_OK(t.Add("city", CategoryColumn(&rng, rows, cities, 0.0)));
  BENTO_RETURN_NOT_OK(t.Add("sport", CategoryColumn(&rng, rows, sports, 0.0)));
  BENTO_RETURN_NOT_OK(t.Add("event", CategoryColumn(&rng, rows, events, 0.0)));
  // ~85% of athletes win nothing: the medal column is mostly null.
  BENTO_RETURN_NOT_OK(
      t.Add("medal", CategoryColumn(&rng, rows, medals, 0.85, 0.2)));
  return t.Finish();
}

// ---------------------------------------------------------------------------
// Loan: LendingClub applications. 151 columns (113 numeric, 38 string),
// 2M rows, 31% nulls, free text up to ~4k characters.
// ---------------------------------------------------------------------------
Result<TablePtr> GenerateLoan(const DatasetProfile& p, double scale,
                              uint64_t seed) {
  Rng rng(seed);
  const int64_t rows = ScaledRows(p, scale);

  Builder t;
  // Named columns the pipeline touches.
  BENTO_RETURN_NOT_OK(
      t.Add("loan_amnt", NumericColumn(&rng, rows, 15000.0, 8500.0, 0.0)));
  BENTO_RETURN_NOT_OK(
      t.Add("int_rate", NumericColumn(&rng, rows, 13.1, 4.5, 0.02)));
  BENTO_RETURN_NOT_OK(
      t.Add("annual_inc", NumericColumn(&rng, rows, 77000.0, 64000.0, 0.05)));
  BENTO_RETURN_NOT_OK(t.Add("dti", NumericColumn(&rng, rows, 18.0, 8.0, 0.12)));
  BENTO_RETURN_NOT_OK(t.Add(
      "grade",
      CategoryColumn(&rng, rows, {"A", "B", "C", "D", "E", "F", "G"}, 0.0, 0.5)));
  BENTO_RETURN_NOT_OK(t.Add(
      "sub_grade", CategoryColumn(&rng, rows, MakeVocab(&rng, 35, 2, 2), 0.0)));
  BENTO_RETURN_NOT_OK(t.Add(
      "term",
      CategoryColumn(&rng, rows, {" 36 months", " 60 months"}, 0.0, 0.3)));
  BENTO_RETURN_NOT_OK(t.Add(
      "emp_title", CategoryColumn(&rng, rows, MakeVocab(&rng, 5000, 3, 40),
                                  0.07)));
  BENTO_RETURN_NOT_OK(t.Add(
      "emp_length",
      CategoryColumn(&rng, rows,
                     {"< 1 year", "1 year", "2 years", "3 years", "5 years",
                      "10+ years"},
                     0.06, 0.4)));
  BENTO_RETURN_NOT_OK(t.Add("issue_d", DateColumn(&rng, rows, 2007, 2018,
                                                  /*with_time=*/false)));
  BENTO_RETURN_NOT_OK(t.Add(
      "purpose",
      CategoryColumn(&rng, rows,
                     {"debt_consolidation", "credit_card", "home_improvement",
                      "major_purchase", "medical", "car", "vacation", "other"},
                     0.0, 0.7)));
  // The long free-text description column (string lengths up to ~3988).
  BENTO_RETURN_NOT_OK(t.Add("desc", FreeTextColumn(&rng, rows, 1, 3988, 0.72)));

  // Filler columns to reach the 113/38 split; heavy nulls (the LendingClub
  // dump is extremely sparse in its derived columns).
  const int named_numeric = 4;
  const int named_string = 8;
  for (int c = 0; c < p.numeric_columns - named_numeric; ++c) {
    // Alternate between moderately and extremely sparse numeric columns to
    // land the 31% overall null share.
    const double null_p = (c % 4 == 0) ? 0.70 : 0.20;
    BENTO_RETURN_NOT_OK(t.Add("num_" + std::to_string(c),
                              NumericColumn(&rng, rows, 100.0, 40.0, null_p)));
  }
  auto filler_vocab = MakeVocab(&rng, 64, 2, 24);
  for (int c = 0; c < p.string_columns - named_string; ++c) {
    BENTO_RETURN_NOT_OK(
        t.Add("str_" + std::to_string(c),
              CategoryColumn(&rng, rows, filler_vocab, 0.28)));
  }
  return t.Finish();
}

// ---------------------------------------------------------------------------
// Patrol: Stanford open policing traffic stops. 34 columns dominated by
// strings (27 str / 5 num / 2 bool), 27M rows, 22% nulls.
// ---------------------------------------------------------------------------
Result<TablePtr> GeneratePatrol(const DatasetProfile& p, double scale,
                                uint64_t seed) {
  Rng rng(seed);
  const int64_t rows = ScaledRows(p, scale);

  Builder t;
  BENTO_RETURN_NOT_OK(t.Add("stop_date", DateColumn(&rng, rows, 2005, 2016,
                                                    /*with_time=*/false)));
  BENTO_RETURN_NOT_OK(t.Add(
      "stop_time", FreeTextColumn(&rng, rows, 5, 5, 0.05)));
  BENTO_RETURN_NOT_OK(t.Add(
      "county_name", CategoryColumn(&rng, rows, MakeVocab(&rng, 58, 4, 24),
                                    0.55)));
  BENTO_RETURN_NOT_OK(t.Add(
      "driver_gender", CategoryColumn(&rng, rows, {"M", "F"}, 0.12, 0.3)));
  BENTO_RETURN_NOT_OK(
      t.Add("driver_age", NumericColumn(&rng, rows, 36.0, 13.0, 0.13)));
  BENTO_RETURN_NOT_OK(t.Add(
      "driver_race",
      CategoryColumn(&rng, rows,
                     {"White", "Hispanic", "Black", "Asian", "Other"}, 0.1,
                     0.6)));
  // Long raw-violation text: the expensive-to-filter large_utf8 column.
  BENTO_RETURN_NOT_OK(
      t.Add("violation_raw", FreeTextColumn(&rng, rows, 12, 2293, 0.08)));
  BENTO_RETURN_NOT_OK(t.Add(
      "violation",
      CategoryColumn(&rng, rows,
                     {"Speeding", "Moving violation", "Equipment",
                      "License/Registration", "DUI", "Seat belt", "Other"},
                     0.08, 0.7)));
  BENTO_RETURN_NOT_OK(t.Add("search_conducted", BoolColumn(&rng, rows, 0.04)));
  BENTO_RETURN_NOT_OK(t.Add(
      "search_type", CategoryColumn(&rng, rows,
                                    {"Incident to Arrest", "Probable Cause",
                                     "Inventory", "Protective Frisk"},
                                    0.96)));
  BENTO_RETURN_NOT_OK(t.Add(
      "stop_outcome",
      CategoryColumn(&rng, rows,
                     {"Citation", "Warning", "Arrest", "No action"}, 0.08,
                     0.6)));
  BENTO_RETURN_NOT_OK(t.Add("is_arrested", BoolColumn(&rng, rows, 0.03, 0.08)));
  BENTO_RETURN_NOT_OK(t.Add(
      "stop_duration",
      CategoryColumn(&rng, rows, {"0-15 Min", "16-30 Min", "30+ Min"}, 0.08,
                     0.4)));
  BENTO_RETURN_NOT_OK(t.Add("fine", NumericColumn(&rng, rows, 120.0, 80.0,
                                                  0.4)));
  BENTO_RETURN_NOT_OK(
      t.Add("officer_id", IntColumn(&rng, rows, 1000, 99999)));
  BENTO_RETURN_NOT_OK(
      t.Add("lat", NumericColumn(&rng, rows, 36.7, 2.0, 0.3)));
  BENTO_RETURN_NOT_OK(
      t.Add("lon", NumericColumn(&rng, rows, -119.4, 2.0, 0.3)));

  // Filler string columns (high-null categorical annotations) to reach 27
  // string columns.
  const int named_string = 10;
  auto filler_vocab = MakeVocab(&rng, 40, 2, 32);
  for (int c = 0; c < p.string_columns - named_string; ++c) {
    BENTO_RETURN_NOT_OK(t.Add("ann_" + std::to_string(c),
                              CategoryColumn(&rng, rows, filler_vocab, 0.24)));
  }
  return t.Finish();
}

// ---------------------------------------------------------------------------
// Taxi: NYC taxi trips 2015. 18 columns, dense numerics, zero nulls,
// short strings (datetimes of length 19).
// ---------------------------------------------------------------------------
Result<TablePtr> GenerateTaxi(const DatasetProfile& p, double scale,
                              uint64_t seed) {
  Rng rng(seed);
  const int64_t rows = ScaledRows(p, scale);

  Builder t;
  BENTO_RETURN_NOT_OK(t.Add("vendor_id", IntColumn(&rng, rows, 1, 2)));
  BENTO_RETURN_NOT_OK(t.Add("pickup_datetime",
                            DateColumn(&rng, rows, 2015, 2015, true)));
  BENTO_RETURN_NOT_OK(t.Add("dropoff_datetime",
                            DateColumn(&rng, rows, 2015, 2015, true)));
  BENTO_RETURN_NOT_OK(t.Add("passenger_count", IntColumn(&rng, rows, 1, 6)));
  BENTO_RETURN_NOT_OK(
      t.Add("pickup_longitude", NumericColumn(&rng, rows, -73.97, 0.05, 0.0)));
  BENTO_RETURN_NOT_OK(
      t.Add("pickup_latitude", NumericColumn(&rng, rows, 40.75, 0.04, 0.0)));
  BENTO_RETURN_NOT_OK(
      t.Add("dropoff_longitude", NumericColumn(&rng, rows, -73.97, 0.06, 0.0)));
  BENTO_RETURN_NOT_OK(
      t.Add("dropoff_latitude", NumericColumn(&rng, rows, 40.75, 0.05, 0.0)));
  BENTO_RETURN_NOT_OK(t.Add(
      "store_and_fwd_flag", CategoryColumn(&rng, rows, {"N", "Y"}, 0.0, 1.2)));
  BENTO_RETURN_NOT_OK(
      t.Add("trip_distance", NumericColumn(&rng, rows, 3.0, 2.2, 0.0)));
  BENTO_RETURN_NOT_OK(
      t.Add("fare_amount", NumericColumn(&rng, rows, 12.5, 6.0, 0.0)));
  BENTO_RETURN_NOT_OK(
      t.Add("tip_amount", NumericColumn(&rng, rows, 1.8, 1.4, 0.0)));
  BENTO_RETURN_NOT_OK(
      t.Add("tolls_amount", NumericColumn(&rng, rows, 0.3, 0.9, 0.0)));
  BENTO_RETURN_NOT_OK(
      t.Add("total_amount", NumericColumn(&rng, rows, 15.2, 7.0, 0.0)));
  BENTO_RETURN_NOT_OK(
      t.Add("trip_duration", NumericColumn(&rng, rows, 950.0, 500.0, 0.0)));
  BENTO_RETURN_NOT_OK(t.Add("rate_code", IntColumn(&rng, rows, 1, 6)));
  BENTO_RETURN_NOT_OK(t.Add("payment_type", IntColumn(&rng, rows, 1, 4)));
  BENTO_RETURN_NOT_OK(
      t.Add("extra", NumericColumn(&rng, rows, 0.3, 0.4, 0.0)));
  return t.Finish();
}

}  // namespace

const std::vector<DatasetProfile>& DatasetProfiles() {
  static const std::vector<DatasetProfile>* profiles =
      new std::vector<DatasetProfile>{
          {"athlete", 200000, 15, 5, 10, 0, 0.09, 1, 108, 0.03},
          {"loan", 2000000, 151, 113, 38, 0, 0.31, 1, 3988, 1.6},
          {"patrol", 27000000, 34, 5, 27, 2, 0.22, 1, 2293, 6.7},
          {"taxi", 77000000, 18, 15, 3, 0, 0.0, 1, 19, 10.9},
      };
  return *profiles;
}

Result<DatasetProfile> GetProfile(const std::string& name) {
  for (const DatasetProfile& p : DatasetProfiles()) {
    if (p.name == name) return p;
  }
  return Status::KeyError("unknown dataset '", name, "'");
}

Result<col::TablePtr> GenerateDataset(const std::string& name, double scale,
                                      uint64_t seed) {
  BENTO_ASSIGN_OR_RETURN(DatasetProfile profile, GetProfile(name));
  if (name == "athlete") return GenerateAthlete(profile, scale, seed);
  if (name == "loan") return GenerateLoan(profile, scale, seed);
  if (name == "patrol") return GeneratePatrol(profile, scale, seed);
  if (name == "taxi") return GenerateTaxi(profile, scale, seed);
  return Status::KeyError("unknown dataset '", name, "'");
}

Result<col::TablePtr> GenerateRegionsTable(uint64_t seed) {
  Rng rng(seed);
  auto nocs = NocVocab(seed);
  col::StringBuilder noc_col;
  col::StringBuilder region_col;
  for (const std::string& noc : nocs) {
    noc_col.Append(noc);
    region_col.Append(rng.AsciiString(4, 20));
  }
  Builder t;
  BENTO_RETURN_NOT_OK(t.Add("noc", noc_col.Finish()));
  BENTO_RETURN_NOT_OK(t.Add("region", region_col.Finish()));
  return t.Finish();
}

MeasuredProfile MeasureProfile(const col::TablePtr& table) {
  MeasuredProfile m;
  m.rows = table->num_rows();
  m.columns = table->num_columns();
  m.str_len_min = INT64_MAX;
  int64_t null_cells = 0;
  for (const auto& c : table->columns()) {
    switch (c->type()) {
      case TypeId::kInt64:
      case TypeId::kFloat64:
      case TypeId::kTimestamp:
        ++m.numeric;
        break;
      case TypeId::kBool:
        ++m.bools;
        break;
      default:
        ++m.strings;
    }
    null_cells += c->null_count();
    if (c->type() == TypeId::kString) {
      for (int64_t i = 0; i < c->length(); ++i) {
        if (c->IsNull(i)) continue;
        int64_t len = static_cast<int64_t>(c->GetView(i).size());
        m.str_len_min = std::min(m.str_len_min, len);
        m.str_len_max = std::max(m.str_len_max, len);
      }
    }
  }
  if (m.str_len_min == INT64_MAX) m.str_len_min = 0;
  const double cells =
      static_cast<double>(m.rows) * static_cast<double>(m.columns);
  m.null_fraction = cells > 0 ? static_cast<double>(null_cells) / cells : 0.0;
  return m;
}

}  // namespace bento::gen
