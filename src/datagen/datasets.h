#ifndef BENTO_DATAGEN_DATASETS_H_
#define BENTO_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/table.h"

namespace bento::gen {

/// \brief Statistical profile of one evaluation dataset (paper Table III).
struct DatasetProfile {
  std::string name;
  int64_t base_rows;      ///< full-size row count from the paper
  int num_columns;        ///< total column count
  int numeric_columns;
  int string_columns;
  int bool_columns;
  double null_fraction;   ///< overall share of null cells
  int str_len_min;
  int str_len_max;
  double csv_gb;          ///< full-size CSV size from the paper
};

/// \brief Profiles of the four datasets: athlete, loan, patrol, taxi.
const std::vector<DatasetProfile>& DatasetProfiles();

Result<DatasetProfile> GetProfile(const std::string& name);

/// \brief Generates a synthetic table reproducing `name`'s profile at
/// `scale` of its full row count (scale 1.0 = the paper's size). Columns
/// carry the semantics the pipelines need (dates as strings, categorical
/// codes, heavy-null columns, etc.). Deterministic in `seed`.
Result<col::TablePtr> GenerateDataset(const std::string& name, double scale,
                                      uint64_t seed = 42);

/// \brief The NOC->region lookup the Athlete pipeline merges against
/// (the Kaggle notebook's second input file).
Result<col::TablePtr> GenerateRegionsTable(uint64_t seed = 42);

/// \brief Measured profile of a generated table (for the Table III bench):
/// rows, columns, type mix, observed null fraction, string length range.
struct MeasuredProfile {
  int64_t rows = 0;
  int columns = 0;
  int numeric = 0;
  int strings = 0;
  int bools = 0;
  double null_fraction = 0.0;
  int64_t str_len_min = 0;
  int64_t str_len_max = 0;
};

MeasuredProfile MeasureProfile(const col::TablePtr& table);

}  // namespace bento::gen

#endif  // BENTO_DATAGEN_DATASETS_H_
