#ifndef BENTO_SIMD_HASH_H_
#define BENTO_SIMD_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace bento::simd {

/// Scalar hashing primitives shared by the kernel layer (flat_index,
/// row_hash) and the vectorized hash-mix kernels in simd.cc. The vector
/// implementations emulate these bit for bit; simd_kernels_test locks the
/// equivalence down. Keeping the one true definition here means a constant
/// tweak cannot silently fork the scalar and SIMD hash spaces.

inline uint64_t Load64(const void* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline uint32_t Load32(const void* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

/// 64x64 -> 128 multiply folded to 64 bits: the wyhash "mum" mixer.
inline uint64_t Mum(uint64_t a, uint64_t b) {
  __uint128_t r = static_cast<__uint128_t>(a) * b;
  return static_cast<uint64_t>(r) ^ static_cast<uint64_t>(r >> 64);
}

inline constexpr uint64_t kWySecret0 = 0x2D358DCCAA6C78A5ULL;
inline constexpr uint64_t kWySecret1 = 0x8BB84B93962EACC9ULL;
inline constexpr uint64_t kWySecret2 = 0x4B33A62ED433D4A3ULL;

/// \brief 64-bit hash of one machine word (the fixed-width column fast
/// path: int64 / double bit patterns, categorical dictionary ids). Two
/// chained mum rounds: one round leaves visible structure in the low bits
/// on sequential keys, which linear probing punishes.
inline uint64_t HashWord64(uint64_t v) {
  return Mum(v ^ kWySecret0, Mum(v ^ kWySecret1, kWySecret2));
}

/// \brief Word-at-a-time 64-bit hash of an arbitrary byte range
/// (wyhash-style: two 64-bit lanes, 128-bit multiply mixing). Replaces the
/// byte-at-a-time FNV-1a previously used for row hashing: ~8x fewer data
/// dependencies on string keys, same-or-better distribution.
inline uint64_t Hash64(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t seed = kWySecret0 ^ Mum(static_cast<uint64_t>(len), kWySecret1);
  uint64_t a = 0, b = 0;
  if (len >= 16) {
    uint64_t see1 = seed;
    size_t i = len;
    while (i >= 32) {
      seed = Mum(Load64(p) ^ kWySecret1, Load64(p + 8) ^ seed);
      see1 = Mum(Load64(p + 16) ^ kWySecret2, Load64(p + 24) ^ see1);
      p += 32;
      i -= 32;
    }
    seed ^= see1;
    while (i > 16) {
      seed = Mum(Load64(p) ^ kWySecret1, Load64(p + 8) ^ seed);
      p += 16;
      i -= 16;
    }
    // Final (possibly overlapping) 16 bytes.
    a = Load64(p + i - 16);
    b = Load64(p + i - 8);
  } else if (len >= 4) {
    a = (static_cast<uint64_t>(Load32(p)) << 32) |
        Load32(p + (len >> 3) * 4);
    b = (static_cast<uint64_t>(Load32(p + len - 4)) << 32) |
        Load32(p + len - 4 - (len >> 3) * 4);
  } else if (len > 0) {
    // 1..3 bytes: first, middle, last.
    a = (static_cast<uint64_t>(p[0]) << 16) |
        (static_cast<uint64_t>(p[len >> 1]) << 8) | p[len - 1];
    b = 0;
  }
  return Mum(kWySecret1 ^ static_cast<uint64_t>(len),
             Mum(a ^ kWySecret2, b ^ seed));
}

inline uint64_t Hash64(std::string_view s) { return Hash64(s.data(), s.size()); }

/// \brief Hash combiner used for multi-column row hashing: a 128-bit-free
/// variant of the Murmur3 finalizer. `MixU64(h, cell_hash)` folds one
/// column's cell hash into the running row hash.
inline uint64_t MixU64(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

}  // namespace bento::simd

#endif  // BENTO_SIMD_HASH_H_
