#ifndef BENTO_SIMD_SIMD_H_
#define BENTO_SIMD_SIMD_H_

#include <cstdint>

namespace bento::simd {

/// \brief Portable SIMD kernel layer.
///
/// Each operation has exactly one semantic definition — the scalar kernel
/// body in simd.cc — and optional vector implementations (AVX2 on x86,
/// NEON on aarch64) that reproduce it bit for bit. The active level is
/// selected once at process start from runtime CPU detection, and the
/// `BENTO_SIMD=off` environment toggle forces the scalar fallback so
/// SIMD-vs-scalar identity is directly testable (simd_kernels_test runs
/// both; CI runs the whole suite under BENTO_SIMD=off).
///
/// Layering: this library depends on nothing else in the repo. Callers
/// (columnar bitmaps, kernels) route their hot inner loops here; cold and
/// semantic-heavy paths stay in the calling layer.
enum class Level {
  kScalar,
  kNeon,
  kAvx2,
};

/// Runtime-selected level: AVX2 when the CPU supports it, NEON on aarch64,
/// scalar otherwise or when BENTO_SIMD is set to off/0/false/scalar.
Level ActiveLevel();

const char* LevelName(Level level);

// ---------------------------------------------------------------------------
// Bitmap kernels (LSB-first, Arrow convention)
// ---------------------------------------------------------------------------

/// \brief Number of set bits in the first `num_bits` bits of `bitmap`.
/// The word-wise popcount helper shared by Array::null_count() and the
/// validity-bitmap kernels. `bitmap` must not be null.
int64_t PopcountBits(const uint8_t* bitmap, int64_t num_bits);

/// \brief out[i] = a[i] & b[i] over `num_bytes` bytes.
void AndBytes(const uint8_t* a, const uint8_t* b, uint8_t* out,
              int64_t num_bytes);

/// \brief out[i] = a[i] | b[i] over `num_bytes` bytes.
void OrBytes(const uint8_t* a, const uint8_t* b, uint8_t* out,
             int64_t num_bytes);

// ---------------------------------------------------------------------------
// Byte-wise boolean kernels (one uint8 per value, the kBool layout)
// ---------------------------------------------------------------------------

/// \brief out[i] = (a[i] != 0 && b[i] != 0) ? 1 : 0.
void BoolAndBytes(const uint8_t* a, const uint8_t* b, uint8_t* out, int64_t n);

/// \brief out[i] = (a[i] != 0 || b[i] != 0) ? 1 : 0.
void BoolOrBytes(const uint8_t* a, const uint8_t* b, uint8_t* out, int64_t n);

/// \brief out[i] = (values[i] == 0) ? 1 : 0.
void BoolNotBytes(const uint8_t* values, uint8_t* out, int64_t n);

// ---------------------------------------------------------------------------
// Comparison kernels: column vs scalar, writing one 0/1 byte per row
// ---------------------------------------------------------------------------

enum class Cmp { kEq, kNe, kLt, kLe, kGt, kGe };

/// \brief out[i] = (data[i] <op> rhs) ? 1 : 0 with IEEE double semantics
/// (every op except kNe is false on NaN; kNe is true on NaN) — exactly the
/// C++ comparison operators.
void CompareF64(const double* data, int64_t n, Cmp op, double rhs,
                uint8_t* out);

/// \brief out[i] = (double(data[i]) <op> rhs) ? 1 : 0 — the int64-column
/// compare path, which widens each element to double first (matching the
/// scalar kernel in kernels/compare.cc).
void CompareI64(const int64_t* data, int64_t n, Cmp op, double rhs,
                uint8_t* out);

// ---------------------------------------------------------------------------
// Filter mask -> selected row indices
// ---------------------------------------------------------------------------

/// \brief Appends to `out` every row i in [0, n) where mask[i] != 0 and
/// (validity == nullptr or validity bit i is set), in ascending order.
/// `out` must have room for n entries; returns the number written.
int64_t MaskToIndices(const uint8_t* mask, const uint8_t* validity, int64_t n,
                      int64_t* out);

// ---------------------------------------------------------------------------
// Moments aggregation (sum / sum of squares / min / max / count)
// ---------------------------------------------------------------------------

/// \brief Partial moments over one range. Summation uses a fixed 4-lane
/// striped order (element i accumulates into lane i & 3, lanes combine as
/// (l0+l1)+(l2+l3)) so every level — scalar fallback included — produces
/// the identical floating-point result. min/max follow the strict
/// `if (v < m) m = v` rule per lane, so NaNs never win and the first seen
/// value survives ties (signed-zero behaviour matches the scalar rule).
struct MomentsPart {
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;
  double max = 0.0;
  int64_t count = 0;  // valid, non-NaN elements
};

/// \brief Moments of data[begin, end). `validity` may be null (all valid);
/// bit i of `validity` corresponds to data[i]. NaNs are skipped.
MomentsPart MomentsF64(const double* data, const uint8_t* validity,
                       int64_t begin, int64_t end);

/// \brief Moments of double(data[i]) for i in [begin, end).
MomentsPart MomentsI64(const int64_t* data, const uint8_t* validity,
                       int64_t begin, int64_t end);

// ---------------------------------------------------------------------------
// Row-hash mixing (see simd/hash.h for the scalar definitions)
// ---------------------------------------------------------------------------

/// \brief hashes[i] = MixU64(hashes[i], cell) for i in [begin, end), where
/// cell = HashWord64(words[i]) when valid and `null_tag` when the validity
/// bit is clear. `validity` may be null (all valid).
void HashMixU64(uint64_t* hashes, const uint64_t* words,
                const uint8_t* validity, int64_t begin, int64_t end,
                uint64_t null_tag);

/// \brief Float64-column hash mixing: cell = HashWord64(bits(v)) with -0.0
/// normalized to +0.0, NaN hashing to null_tag ^ 1, and nulls to null_tag.
void HashMixF64(uint64_t* hashes, const double* values,
                const uint8_t* validity, int64_t begin, int64_t end,
                uint64_t null_tag);

/// \brief Dictionary-code hash mixing: cell = code_hashes[codes[i]] when
/// valid (a per-dictionary table of the entry-string hashes) else null_tag.
/// Keeps categorical cell hashes identical to hashing the decoded string.
void HashMixCodes(uint64_t* hashes, const int32_t* codes,
                  const uint8_t* validity, int64_t begin, int64_t end,
                  const uint64_t* code_hashes, uint64_t null_tag);

}  // namespace bento::simd

#endif  // BENTO_SIMD_SIMD_H_
