#include "simd/simd.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "simd/hash.h"

#if defined(__x86_64__) || defined(_M_X64)
#define BENTO_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define BENTO_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace bento::simd {

namespace {

// ---------------------------------------------------------------------------
// Level selection
// ---------------------------------------------------------------------------

bool EnvForcesScalar() {
  const char* v = std::getenv("BENTO_SIMD");
  if (v == nullptr) return false;
  char buf[8] = {};
  for (int i = 0; i < 7 && v[i] != '\0'; ++i) {
    buf[i] = v[i] >= 'A' && v[i] <= 'Z' ? static_cast<char>(v[i] + 32) : v[i];
  }
  return std::strcmp(buf, "off") == 0 || std::strcmp(buf, "0") == 0 ||
         std::strcmp(buf, "false") == 0 || std::strcmp(buf, "scalar") == 0;
}

Level DetectLevel() {
  if (EnvForcesScalar()) return Level::kScalar;
#if BENTO_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
#if BENTO_SIMD_NEON
  return Level::kNeon;  // NEON is baseline on aarch64
#endif
  return Level::kScalar;
}

#if BENTO_SIMD_X86
/// int64 -> double lane conversion needs AVX-512DQ; checked separately so
/// plain-AVX2 machines still vectorize everything else.
bool HasAvx512Dq() {
  static const bool has =
      __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl");
  return has;
}
#endif

inline bool ValidityBit(const uint8_t* validity, int64_t i) {
  return (validity[i >> 3] >> (i & 7)) & 1;
}

inline bool ApplyCmp(double a, Cmp op, double b) {
  switch (op) {
    case Cmp::kEq:
      return a == b;
    case Cmp::kNe:
      return a != b;
    case Cmp::kLt:
      return a < b;
    case Cmp::kLe:
      return a <= b;
    case Cmp::kGt:
      return a > b;
    case Cmp::kGe:
      return a >= b;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Scalar kernel bodies — the semantic definition every level reproduces
// ---------------------------------------------------------------------------

namespace sc {

int64_t PopcountBits(const uint8_t* bitmap, int64_t num_bits) {
  int64_t count = 0;
  const int64_t full_bytes = num_bits >> 3;
  int64_t i = 0;
  for (; i + 8 <= full_bytes; i += 8) {
    uint64_t word;
    std::memcpy(&word, bitmap + i, 8);
    count += std::popcount(word);
  }
  for (; i < full_bytes; ++i) {
    count += std::popcount(static_cast<unsigned>(bitmap[i]));
  }
  for (int64_t bit = full_bytes << 3; bit < num_bits; ++bit) {
    count += (bitmap[bit >> 3] >> (bit & 7)) & 1;
  }
  return count;
}

void AndBytes(const uint8_t* a, const uint8_t* b, uint8_t* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(a[i] & b[i]);
}

void OrBytes(const uint8_t* a, const uint8_t* b, uint8_t* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(a[i] | b[i]);
}

void BoolAndBytes(const uint8_t* a, const uint8_t* b, uint8_t* out,
                  int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = (a[i] != 0 && b[i] != 0) ? 1 : 0;
  }
}

void BoolOrBytes(const uint8_t* a, const uint8_t* b, uint8_t* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = (a[i] != 0 || b[i] != 0) ? 1 : 0;
  }
}

void BoolNotBytes(const uint8_t* values, uint8_t* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = values[i] == 0 ? 1 : 0;
}

void CompareF64(const double* data, int64_t n, Cmp op, double rhs,
                uint8_t* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = ApplyCmp(data[i], op, rhs) ? 1 : 0;
}

void CompareI64(const int64_t* data, int64_t n, Cmp op, double rhs,
                uint8_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = ApplyCmp(static_cast<double>(data[i]), op, rhs) ? 1 : 0;
  }
}

int64_t MaskToIndices(const uint8_t* mask, const uint8_t* validity, int64_t n,
                      int64_t* out) {
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (mask[i] != 0 && (validity == nullptr || ValidityBit(validity, i))) {
      out[count++] = i;
    }
  }
  return count;
}

/// Four-lane striped accumulator: the one moments algorithm. Element at
/// relative position r contributes to lane r & 3; lanes combine as
/// (l0+l1)+(l2+l3) for sums and a lane-order scan for min/max. Vector
/// implementations reproduce exactly this association order.
struct LaneAcc {
  double sum[4] = {0.0, 0.0, 0.0, 0.0};
  double sum_sq[4] = {0.0, 0.0, 0.0, 0.0};
  double mn[4];
  double mx[4];
  int64_t count = 0;

  LaneAcc() {
    for (int j = 0; j < 4; ++j) {
      mn[j] = std::numeric_limits<double>::infinity();
      mx[j] = -std::numeric_limits<double>::infinity();
    }
  }

  inline void Add(int64_t rel, double v) {
    const int lane = static_cast<int>(rel & 3);
    sum[lane] += v;
    sum_sq[lane] += v * v;
    if (v < mn[lane]) mn[lane] = v;
    if (v > mx[lane]) mx[lane] = v;
    ++count;
  }

  MomentsPart Finish() const {
    MomentsPart m;
    m.count = count;
    if (count == 0) return m;
    m.sum = (sum[0] + sum[1]) + (sum[2] + sum[3]);
    m.sum_sq = (sum_sq[0] + sum_sq[1]) + (sum_sq[2] + sum_sq[3]);
    m.min = mn[0];
    m.max = mx[0];
    for (int j = 1; j < 4; ++j) {
      if (mn[j] < m.min) m.min = mn[j];
      if (mx[j] > m.max) m.max = mx[j];
    }
    return m;
  }
};

MomentsPart MomentsF64(const double* data, const uint8_t* validity,
                       int64_t begin, int64_t end) {
  LaneAcc acc;
  for (int64_t i = begin; i < end; ++i) {
    if (validity != nullptr && !ValidityBit(validity, i)) continue;
    const double v = data[i];
    if (std::isnan(v)) continue;
    acc.Add(i - begin, v);
  }
  return acc.Finish();
}

MomentsPart MomentsI64(const int64_t* data, const uint8_t* validity,
                       int64_t begin, int64_t end) {
  LaneAcc acc;
  for (int64_t i = begin; i < end; ++i) {
    if (validity != nullptr && !ValidityBit(validity, i)) continue;
    acc.Add(i - begin, static_cast<double>(data[i]));
  }
  return acc.Finish();
}

void HashMixU64(uint64_t* hashes, const uint64_t* words,
                const uint8_t* validity, int64_t begin, int64_t end,
                uint64_t null_tag) {
  for (int64_t i = begin; i < end; ++i) {
    const uint64_t cell = validity == nullptr || ValidityBit(validity, i)
                              ? HashWord64(words[i])
                              : null_tag;
    hashes[i] = MixU64(hashes[i], cell);
  }
}

inline uint64_t HashCellF64(double v, uint64_t null_tag) {
  if (v == 0.0) v = 0.0;  // normalize -0.0
  if (std::isnan(v)) return null_tag ^ 1;
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return HashWord64(bits);
}

void HashMixF64(uint64_t* hashes, const double* values,
                const uint8_t* validity, int64_t begin, int64_t end,
                uint64_t null_tag) {
  for (int64_t i = begin; i < end; ++i) {
    const uint64_t cell = validity == nullptr || ValidityBit(validity, i)
                              ? HashCellF64(values[i], null_tag)
                              : null_tag;
    hashes[i] = MixU64(hashes[i], cell);
  }
}

void HashMixCodes(uint64_t* hashes, const int32_t* codes,
                  const uint8_t* validity, int64_t begin, int64_t end,
                  const uint64_t* code_hashes, uint64_t null_tag) {
  for (int64_t i = begin; i < end; ++i) {
    const uint64_t cell = validity == nullptr || ValidityBit(validity, i)
                              ? code_hashes[codes[i]]
                              : null_tag;
    hashes[i] = MixU64(hashes[i], cell);
  }
}

}  // namespace sc

// ---------------------------------------------------------------------------
// AVX2 implementations (x86). Function-level target attributes keep the
// rest of the build free of -mavx2, so the binary still runs (through the
// scalar path) on pre-AVX2 machines.
// ---------------------------------------------------------------------------

#if BENTO_SIMD_X86

namespace avx2 {

__attribute__((target("avx2"))) int64_t PopcountBits(const uint8_t* bitmap,
                                                     int64_t num_bits) {
  const int64_t full_bytes = num_bits >> 3;
  int64_t count = 0;
  int64_t i = 0;
  // Nibble-LUT vertical popcount, 32 bytes per step, accumulated through
  // SAD into four u64 lanes.
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nibble = _mm256_set1_epi8(0x0F);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  for (; i + 32 <= full_bytes; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bitmap + i));
    const __m256i lo = _mm256_and_si256(v, low_nibble);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_nibble);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  count = static_cast<int64_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < full_bytes; ++i) {
    count += std::popcount(static_cast<unsigned>(bitmap[i]));
  }
  for (int64_t bit = full_bytes << 3; bit < num_bits; ++bit) {
    count += (bitmap[bit >> 3] >> (bit & 7)) & 1;
  }
  return count;
}

__attribute__((target("avx2"))) void AndBytes(const uint8_t* a,
                                              const uint8_t* b, uint8_t* out,
                                              int64_t n) {
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) out[i] = static_cast<uint8_t>(a[i] & b[i]);
}

__attribute__((target("avx2"))) void OrBytes(const uint8_t* a,
                                             const uint8_t* b, uint8_t* out,
                                             int64_t n) {
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) out[i] = static_cast<uint8_t>(a[i] | b[i]);
}

__attribute__((target("avx2"))) void BoolAndBytes(const uint8_t* a,
                                                  const uint8_t* b,
                                                  uint8_t* out, int64_t n) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i az = _mm256_cmpeq_epi8(va, zero);
    const __m256i bz = _mm256_cmpeq_epi8(vb, zero);
    const __m256i res =
        _mm256_andnot_si256(_mm256_or_si256(az, bz), one);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), res);
  }
  for (; i < n; ++i) out[i] = (a[i] != 0 && b[i] != 0) ? 1 : 0;
}

__attribute__((target("avx2"))) void BoolOrBytes(const uint8_t* a,
                                                 const uint8_t* b,
                                                 uint8_t* out, int64_t n) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i nz = _mm256_cmpeq_epi8(_mm256_or_si256(va, vb), zero);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_andnot_si256(nz, one));
  }
  for (; i < n; ++i) out[i] = (a[i] != 0 || b[i] != 0) ? 1 : 0;
}

__attribute__((target("avx2"))) void BoolNotBytes(const uint8_t* values,
                                                  uint8_t* out, int64_t n) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(_mm256_cmpeq_epi8(v, zero), one));
  }
  for (; i < n; ++i) out[i] = values[i] == 0 ? 1 : 0;
}

/// 4-bit compare mask -> four 0/1 output bytes, little-endian (byte j is
/// mask bit j).
constexpr uint32_t kMask4ToBytes[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u,
};

template <int kPred>
__attribute__((target("avx2"))) void CompareF64Pred(const double* data,
                                                    int64_t n, Cmp op,
                                                    double rhs, uint8_t* out) {
  const __m256d vrhs = _mm256_set1_pd(rhs);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(data + i);
    const int m = _mm256_movemask_pd(_mm256_cmp_pd(v, vrhs, kPred));
    std::memcpy(out + i, &kMask4ToBytes[m], 4);
  }
  for (; i < n; ++i) out[i] = ApplyCmp(data[i], op, rhs) ? 1 : 0;
}

__attribute__((target("avx2"))) void CompareF64(const double* data, int64_t n,
                                                Cmp op, double rhs,
                                                uint8_t* out) {
  switch (op) {
    case Cmp::kEq:
      CompareF64Pred<_CMP_EQ_OQ>(data, n, op, rhs, out);
      return;
    case Cmp::kNe:
      CompareF64Pred<_CMP_NEQ_UQ>(data, n, op, rhs, out);
      return;
    case Cmp::kLt:
      CompareF64Pred<_CMP_LT_OQ>(data, n, op, rhs, out);
      return;
    case Cmp::kLe:
      CompareF64Pred<_CMP_LE_OQ>(data, n, op, rhs, out);
      return;
    case Cmp::kGt:
      CompareF64Pred<_CMP_GT_OQ>(data, n, op, rhs, out);
      return;
    case Cmp::kGe:
      CompareF64Pred<_CMP_GE_OQ>(data, n, op, rhs, out);
      return;
  }
}

template <int kPred>
__attribute__((target("avx2,avx512dq,avx512vl"))) void CompareI64Pred(
    const int64_t* data, int64_t n, Cmp op, double rhs, uint8_t* out) {
  const __m256d vrhs = _mm256_set1_pd(rhs);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i raw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256d v = _mm256_cvtepi64_pd(raw);
    const int m = _mm256_movemask_pd(_mm256_cmp_pd(v, vrhs, kPred));
    std::memcpy(out + i, &kMask4ToBytes[m], 4);
  }
  for (; i < n; ++i) {
    out[i] = ApplyCmp(static_cast<double>(data[i]), op, rhs) ? 1 : 0;
  }
}

__attribute__((target("avx2,avx512dq,avx512vl"))) void CompareI64(
    const int64_t* data, int64_t n, Cmp op, double rhs, uint8_t* out) {
  switch (op) {
    case Cmp::kEq:
      CompareI64Pred<_CMP_EQ_OQ>(data, n, op, rhs, out);
      return;
    case Cmp::kNe:
      CompareI64Pred<_CMP_NEQ_UQ>(data, n, op, rhs, out);
      return;
    case Cmp::kLt:
      CompareI64Pred<_CMP_LT_OQ>(data, n, op, rhs, out);
      return;
    case Cmp::kLe:
      CompareI64Pred<_CMP_LE_OQ>(data, n, op, rhs, out);
      return;
    case Cmp::kGt:
      CompareI64Pred<_CMP_GT_OQ>(data, n, op, rhs, out);
      return;
    case Cmp::kGe:
      CompareI64Pred<_CMP_GE_OQ>(data, n, op, rhs, out);
      return;
  }
}

__attribute__((target("avx2"))) int64_t MaskToIndices(const uint8_t* mask,
                                                      const uint8_t* validity,
                                                      int64_t n,
                                                      int64_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  int64_t count = 0;
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    uint32_t m = ~static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    if (validity != nullptr) {
      uint32_t bits;
      std::memcpy(&bits, validity + (i >> 3), 4);
      m &= bits;
    }
    while (m != 0) {
      const int j = std::countr_zero(m);
      out[count++] = i + j;
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    if (mask[i] != 0 && (validity == nullptr || ValidityBit(validity, i))) {
      out[count++] = i;
    }
  }
  return count;
}

// --- moments -----------------------------------------------------------

/// Shared lane-combine: identical to sc::LaneAcc::Finish over the four
/// vector lanes (lane j = element rel & 3).
inline MomentsPart CombineLanes(const double sum[4], const double sum_sq[4],
                                const double mn[4], const double mx[4],
                                int64_t count) {
  MomentsPart m;
  m.count = count;
  if (count == 0) return m;
  m.sum = (sum[0] + sum[1]) + (sum[2] + sum[3]);
  m.sum_sq = (sum_sq[0] + sum_sq[1]) + (sum_sq[2] + sum_sq[3]);
  m.min = mn[0];
  m.max = mx[0];
  for (int j = 1; j < 4; ++j) {
    if (mn[j] < m.min) m.min = mn[j];
    if (mx[j] > m.max) m.max = mx[j];
  }
  return m;
}

/// Running vector-lane accumulators of a moments pass. Every element —
/// full blocks, partial validity nibbles, and tails — flows through the
/// same four lane chains in index order, so the floating-point addition
/// order is exactly sc::LaneAcc's. (A separate scalar spillover accumulator
/// would reorder additions whenever full and partial blocks interleave.)
/// Dropped lanes (null / NaN / past-the-end) contribute the exact additive
/// identities instead: -0.0 to sum (x + -0.0 == x bitwise for every x),
/// its square +0.0 to sum_sq (which is never -0.0), and +inf / -inf
/// candidates that lose every min/max comparison.
struct MomentsAcc {
  __m256d vsum;
  __m256d vsumsq;
  __m256d vmin;
  __m256d vmax;
  int64_t count;
};

__attribute__((target("avx2"))) inline void MomentsAccInit(MomentsAcc* acc) {
  acc->vsum = _mm256_setzero_pd();
  acc->vsumsq = _mm256_setzero_pd();
  acc->vmin = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  acc->vmax = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  acc->count = 0;
}

/// One 4-lane step. `keep` lanes (all-ones bit patterns) participate; NaN
/// lanes are additionally dropped, matching the scalar skip rule.
__attribute__((target("avx2"))) inline void MomentsStep(MomentsAcc* acc,
                                                        __m256d v,
                                                        __m256d keep) {
  keep = _mm256_and_pd(keep, _mm256_cmp_pd(v, v, _CMP_ORD_Q));
  const __m256d vm = _mm256_blendv_pd(_mm256_set1_pd(-0.0), v, keep);
  acc->vsum = _mm256_add_pd(acc->vsum, vm);
  // The register barrier keeps fp-contract=fast from fusing the square into
  // an FMA: single rounding would drift 1 ULP from the scalar two-step spec.
  __m256d sq = _mm256_mul_pd(vm, vm);
  asm("" : "+x"(sq));
  acc->vsumsq = _mm256_add_pd(acc->vsumsq, sq);
  const __m256d mn_c = _mm256_blendv_pd(
      _mm256_set1_pd(std::numeric_limits<double>::infinity()), v, keep);
  const __m256d mx_c = _mm256_blendv_pd(
      _mm256_set1_pd(-std::numeric_limits<double>::infinity()), v, keep);
  acc->vmin = _mm256_blendv_pd(acc->vmin, mn_c,
                               _mm256_cmp_pd(mn_c, acc->vmin, _CMP_LT_OQ));
  acc->vmax = _mm256_blendv_pd(acc->vmax, mx_c,
                               _mm256_cmp_pd(mx_c, acc->vmax, _CMP_GT_OQ));
  acc->count +=
      std::popcount(static_cast<unsigned>(_mm256_movemask_pd(keep) & 0xF));
}

/// Lane-mask vector from 4 validity bits (bit j selects lane j).
__attribute__((target("avx2"))) inline __m256d LaneMask4(unsigned bits) {
  return _mm256_castsi256_pd(
      _mm256_set_epi64x(-static_cast<int64_t>((bits >> 3) & 1),
                        -static_cast<int64_t>((bits >> 2) & 1),
                        -static_cast<int64_t>((bits >> 1) & 1),
                        -static_cast<int64_t>(bits & 1)));
}

__attribute__((target("avx2"))) inline MomentsPart MomentsAccFinish(
    const MomentsAcc& acc) {
  alignas(32) double v_sum[4], v_sumsq[4], v_mn[4], v_mx[4];
  _mm256_storeu_pd(v_sum, acc.vsum);
  _mm256_storeu_pd(v_sumsq, acc.vsumsq);
  _mm256_storeu_pd(v_mn, acc.vmin);
  _mm256_storeu_pd(v_mx, acc.vmax);
  return CombineLanes(v_sum, v_sumsq, v_mn, v_mx, acc.count);
}

__attribute__((target("avx2"))) MomentsPart MomentsF64(const double* data,
                                                       const uint8_t* validity,
                                                       int64_t begin,
                                                       int64_t end) {
  if (end - begin <= 0) return MomentsPart{};
  // Bitmap nibbles only line up with vector blocks when begin is 8-aligned;
  // the parallel moments path hands us arbitrary splits, which fall back.
  if (validity != nullptr && (begin & 7) != 0) {
    return sc::MomentsF64(data, validity, begin, end);
  }
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  MomentsAcc acc;
  MomentsAccInit(&acc);
  int64_t i = begin;
  for (; i + 4 <= end; i += 4) {
    if (validity == nullptr) {
      MomentsStep(&acc, _mm256_loadu_pd(data + i), all);
      continue;
    }
    // begin is 8-aligned, so each 4-lane block reads one nibble.
    const unsigned bits = (validity[i >> 3] >> (i & 7)) & 0xF;
    if (bits == 0) continue;  // all-null block: nothing to add
    MomentsStep(&acc, _mm256_loadu_pd(data + i),
                bits == 0xF ? all : LaneMask4(bits));
  }
  if (i < end) {
    // Tail (< 4 rows): gather into a padded block so the tail joins the
    // same lane chains as everything before it.
    alignas(32) double buf[4] = {0.0, 0.0, 0.0, 0.0};
    unsigned bits = 0;
    for (int64_t k = i; k < end; ++k) {
      buf[k - i] = data[k];
      if (validity == nullptr || ValidityBit(validity, k)) {
        bits |= 1u << (k - i);
      }
    }
    if (bits != 0) MomentsStep(&acc, _mm256_load_pd(buf), LaneMask4(bits));
  }
  return MomentsAccFinish(acc);
}

__attribute__((target("avx2,avx512dq,avx512vl"))) MomentsPart MomentsI64(
    const int64_t* data, const uint8_t* validity, int64_t begin, int64_t end) {
  if (end - begin <= 0) return MomentsPart{};
  if (validity != nullptr && (begin & 7) != 0) {
    return sc::MomentsI64(data, validity, begin, end);
  }
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  MomentsAcc acc;
  MomentsAccInit(&acc);
  int64_t i = begin;
  for (; i + 4 <= end; i += 4) {
    __m256d keep = all;
    if (validity != nullptr) {
      const unsigned bits = (validity[i >> 3] >> (i & 7)) & 0xF;
      if (bits == 0) continue;
      if (bits != 0xF) keep = LaneMask4(bits);
    }
    const __m256i raw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    MomentsStep(&acc, _mm256_cvtepi64_pd(raw), keep);
  }
  if (i < end) {
    alignas(32) int64_t buf[4] = {0, 0, 0, 0};
    unsigned bits = 0;
    for (int64_t k = i; k < end; ++k) {
      buf[k - i] = data[k];
      if (validity == nullptr || ValidityBit(validity, k)) {
        bits |= 1u << (k - i);
      }
    }
    if (bits != 0) {
      const __m256i raw =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
      MomentsStep(&acc, _mm256_cvtepi64_pd(raw), LaneMask4(bits));
    }
  }
  return MomentsAccFinish(acc);
}

// --- hash mixing -------------------------------------------------------

/// Low 64 bits of a 64x64 multiply per lane.
__attribute__((target("avx2"))) inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i mid =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32));
}

/// Full 64x64 -> 128 multiply, folded lo ^ hi: the vector twin of
/// simd::Mum. Schoolbook 32-bit limbs with explicit carry propagation.
__attribute__((target("avx2"))) inline __m256i Mum256(__m256i a, __m256i b) {
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i a1 = _mm256_srli_epi64(a, 32);
  const __m256i b1 = _mm256_srli_epi64(b, 32);
  const __m256i a0b0 = _mm256_mul_epu32(a, b);
  const __m256i a1b0 = _mm256_mul_epu32(a1, b);
  const __m256i a0b1 = _mm256_mul_epu32(a, b1);
  const __m256i a1b1 = _mm256_mul_epu32(a1, b1);
  const __m256i mid1 = _mm256_add_epi64(a1b0, _mm256_srli_epi64(a0b0, 32));
  const __m256i mid2 = _mm256_add_epi64(a0b1, _mm256_and_si256(mid1, lo32));
  const __m256i hi = _mm256_add_epi64(
      _mm256_add_epi64(a1b1, _mm256_srli_epi64(mid1, 32)),
      _mm256_srli_epi64(mid2, 32));
  const __m256i lo = _mm256_or_si256(_mm256_slli_epi64(mid2, 32),
                                     _mm256_and_si256(a0b0, lo32));
  return _mm256_xor_si256(lo, hi);
}

__attribute__((target("avx2"))) inline __m256i HashWord64x4(__m256i v) {
  const __m256i s0 = _mm256_set1_epi64x(static_cast<int64_t>(kWySecret0));
  const __m256i s1 = _mm256_set1_epi64x(static_cast<int64_t>(kWySecret1));
  const __m256i s2 = _mm256_set1_epi64x(static_cast<int64_t>(kWySecret2));
  return Mum256(_mm256_xor_si256(v, s0),
                Mum256(_mm256_xor_si256(v, s1), s2));
}

__attribute__((target("avx2"))) inline __m256i Mix256(__m256i h, __m256i v) {
  const __m256i golden =
      _mm256_set1_epi64x(static_cast<int64_t>(0x9E3779B97F4A7C15ULL));
  const __m256i mult =
      _mm256_set1_epi64x(static_cast<int64_t>(0xFF51AFD7ED558CCDULL));
  h = _mm256_xor_si256(
      h, _mm256_add_epi64(
             _mm256_add_epi64(v, golden),
             _mm256_add_epi64(_mm256_slli_epi64(h, 6),
                              _mm256_srli_epi64(h, 2))));
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
  h = MulLo64(h, mult);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
  return h;
}

__attribute__((target("avx2"))) inline void HashMixU64Block4(
    uint64_t* hashes, const uint64_t* words) {
  const __m256i w =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words));
  __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes));
  h = Mix256(h, HashWord64x4(w));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes), h);
}

__attribute__((target("avx2"))) void HashMixU64(uint64_t* hashes,
                                                const uint64_t* words,
                                                const uint8_t* validity,
                                                int64_t begin, int64_t end,
                                                uint64_t null_tag) {
  if (validity != nullptr && (begin & 7) != 0) {
    sc::HashMixU64(hashes, words, validity, begin, end, null_tag);
    return;
  }
  int64_t i = begin;
  if (validity == nullptr) {
    for (; i + 4 <= end; i += 4) HashMixU64Block4(hashes + i, words + i);
  } else {
    for (; i + 8 <= end; i += 8) {
      if (validity[i >> 3] != 0xFF) {
        sc::HashMixU64(hashes, words, validity, i, i + 8, null_tag);
        continue;
      }
      HashMixU64Block4(hashes + i, words + i);
      HashMixU64Block4(hashes + i + 4, words + i + 4);
    }
  }
  if (i < end) sc::HashMixU64(hashes, words, validity, i, end, null_tag);
}

__attribute__((target("avx2"))) inline void HashMixF64Block4(
    uint64_t* hashes, const double* values, uint64_t null_tag) {
  const __m256d v = _mm256_loadu_pd(values);
  __m256i bits =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values));
  // ±0.0 lanes -> +0.0 bit pattern (all-zero word).
  const __m256i is_zero = _mm256_castpd_si256(
      _mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_EQ_OQ));
  bits = _mm256_andnot_si256(is_zero, bits);
  const __m256i is_nan =
      _mm256_castpd_si256(_mm256_cmp_pd(v, v, _CMP_UNORD_Q));
  __m256i cell = HashWord64x4(bits);
  cell = _mm256_blendv_epi8(
      cell, _mm256_set1_epi64x(static_cast<int64_t>(null_tag ^ 1)), is_nan);
  __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes));
  h = Mix256(h, cell);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes), h);
}

__attribute__((target("avx2"))) void HashMixF64(uint64_t* hashes,
                                                const double* values,
                                                const uint8_t* validity,
                                                int64_t begin, int64_t end,
                                                uint64_t null_tag) {
  if (validity != nullptr && (begin & 7) != 0) {
    sc::HashMixF64(hashes, values, validity, begin, end, null_tag);
    return;
  }
  int64_t i = begin;
  if (validity == nullptr) {
    for (; i + 4 <= end; i += 4) {
      HashMixF64Block4(hashes + i, values + i, null_tag);
    }
  } else {
    for (; i + 8 <= end; i += 8) {
      if (validity[i >> 3] != 0xFF) {
        sc::HashMixF64(hashes, values, validity, i, i + 8, null_tag);
        continue;
      }
      HashMixF64Block4(hashes + i, values + i, null_tag);
      HashMixF64Block4(hashes + i + 4, values + i + 4, null_tag);
    }
  }
  if (i < end) sc::HashMixF64(hashes, values, validity, i, end, null_tag);
}

}  // namespace avx2

#endif  // BENTO_SIMD_X86

// ---------------------------------------------------------------------------
// NEON implementations (aarch64). Baseline on every aarch64 core, so no
// runtime detection beyond the BENTO_SIMD toggle. Only the byte-parallel
// kernels are vectorized; the rest share the scalar bodies.
// ---------------------------------------------------------------------------

#if BENTO_SIMD_NEON

namespace neon {

int64_t PopcountBits(const uint8_t* bitmap, int64_t num_bits) {
  const int64_t full_bytes = num_bits >> 3;
  int64_t count = 0;
  int64_t i = 0;
  for (; i + 16 <= full_bytes; i += 16) {
    const uint8x16_t v = vld1q_u8(bitmap + i);
    count += vaddvq_u8(vcntq_u8(v));
  }
  for (; i < full_bytes; ++i) {
    count += std::popcount(static_cast<unsigned>(bitmap[i]));
  }
  for (int64_t bit = full_bytes << 3; bit < num_bits; ++bit) {
    count += (bitmap[bit >> 3] >> (bit & 7)) & 1;
  }
  return count;
}

void AndBytes(const uint8_t* a, const uint8_t* b, uint8_t* out, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(out + i, vandq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<uint8_t>(a[i] & b[i]);
}

void OrBytes(const uint8_t* a, const uint8_t* b, uint8_t* out, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(out + i, vorrq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<uint8_t>(a[i] | b[i]);
}

void BoolAndBytes(const uint8_t* a, const uint8_t* b, uint8_t* out,
                  int64_t n) {
  const uint8x16_t one = vdupq_n_u8(1);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t nz =
        vandq_u8(vtstq_u8(vld1q_u8(a + i), vld1q_u8(a + i)),
                 vtstq_u8(vld1q_u8(b + i), vld1q_u8(b + i)));
    vst1q_u8(out + i, vandq_u8(nz, one));
  }
  for (; i < n; ++i) out[i] = (a[i] != 0 && b[i] != 0) ? 1 : 0;
}

void BoolOrBytes(const uint8_t* a, const uint8_t* b, uint8_t* out, int64_t n) {
  const uint8x16_t one = vdupq_n_u8(1);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vorrq_u8(vld1q_u8(a + i), vld1q_u8(b + i));
    vst1q_u8(out + i, vandq_u8(vtstq_u8(v, v), one));
  }
  for (; i < n; ++i) out[i] = (a[i] != 0 || b[i] != 0) ? 1 : 0;
}

void BoolNotBytes(const uint8_t* values, uint8_t* out, int64_t n) {
  const uint8x16_t one = vdupq_n_u8(1);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(values + i);
    vst1q_u8(out + i, vandq_u8(vmvnq_u8(vtstq_u8(v, v)), one));
  }
  for (; i < n; ++i) out[i] = values[i] == 0 ? 1 : 0;
}

void CompareF64(const double* data, int64_t n, Cmp op, double rhs,
                uint8_t* out) {
  const float64x2_t vrhs = vdupq_n_f64(rhs);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(data + i);
    uint64x2_t m;
    switch (op) {
      case Cmp::kEq:
        m = vceqq_f64(v, vrhs);
        break;
      case Cmp::kNe:
        m = vreinterpretq_u64_u32(
            vmvnq_u32(vreinterpretq_u32_u64(vceqq_f64(v, vrhs))));
        break;
      case Cmp::kLt:
        m = vcltq_f64(v, vrhs);
        break;
      case Cmp::kLe:
        m = vcleq_f64(v, vrhs);
        break;
      case Cmp::kGt:
        m = vcgtq_f64(v, vrhs);
        break;
      case Cmp::kGe:
        m = vcgeq_f64(v, vrhs);
        break;
    }
    out[i] = vgetq_lane_u64(m, 0) != 0 ? 1 : 0;
    out[i + 1] = vgetq_lane_u64(m, 1) != 0 ? 1 : 0;
  }
  for (; i < n; ++i) out[i] = ApplyCmp(data[i], op, rhs) ? 1 : 0;
}

}  // namespace neon

#endif  // BENTO_SIMD_NEON

}  // namespace

Level ActiveLevel() {
  static const Level level = DetectLevel();
  return level;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

int64_t PopcountBits(const uint8_t* bitmap, int64_t num_bits) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    return avx2::PopcountBits(bitmap, num_bits);
  }
#endif
#if BENTO_SIMD_NEON
  if (ActiveLevel() == Level::kNeon) {
    return neon::PopcountBits(bitmap, num_bits);
  }
#endif
  return sc::PopcountBits(bitmap, num_bits);
}

void AndBytes(const uint8_t* a, const uint8_t* b, uint8_t* out,
              int64_t num_bytes) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    avx2::AndBytes(a, b, out, num_bytes);
    return;
  }
#endif
#if BENTO_SIMD_NEON
  if (ActiveLevel() == Level::kNeon) {
    neon::AndBytes(a, b, out, num_bytes);
    return;
  }
#endif
  sc::AndBytes(a, b, out, num_bytes);
}

void OrBytes(const uint8_t* a, const uint8_t* b, uint8_t* out,
             int64_t num_bytes) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    avx2::OrBytes(a, b, out, num_bytes);
    return;
  }
#endif
#if BENTO_SIMD_NEON
  if (ActiveLevel() == Level::kNeon) {
    neon::OrBytes(a, b, out, num_bytes);
    return;
  }
#endif
  sc::OrBytes(a, b, out, num_bytes);
}

void BoolAndBytes(const uint8_t* a, const uint8_t* b, uint8_t* out,
                  int64_t n) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    avx2::BoolAndBytes(a, b, out, n);
    return;
  }
#endif
#if BENTO_SIMD_NEON
  if (ActiveLevel() == Level::kNeon) {
    neon::BoolAndBytes(a, b, out, n);
    return;
  }
#endif
  sc::BoolAndBytes(a, b, out, n);
}

void BoolOrBytes(const uint8_t* a, const uint8_t* b, uint8_t* out, int64_t n) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    avx2::BoolOrBytes(a, b, out, n);
    return;
  }
#endif
#if BENTO_SIMD_NEON
  if (ActiveLevel() == Level::kNeon) {
    neon::BoolOrBytes(a, b, out, n);
    return;
  }
#endif
  sc::BoolOrBytes(a, b, out, n);
}

void BoolNotBytes(const uint8_t* values, uint8_t* out, int64_t n) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    avx2::BoolNotBytes(values, out, n);
    return;
  }
#endif
#if BENTO_SIMD_NEON
  if (ActiveLevel() == Level::kNeon) {
    neon::BoolNotBytes(values, out, n);
    return;
  }
#endif
  sc::BoolNotBytes(values, out, n);
}

void CompareF64(const double* data, int64_t n, Cmp op, double rhs,
                uint8_t* out) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    avx2::CompareF64(data, n, op, rhs, out);
    return;
  }
#endif
#if BENTO_SIMD_NEON
  if (ActiveLevel() == Level::kNeon) {
    neon::CompareF64(data, n, op, rhs, out);
    return;
  }
#endif
  sc::CompareF64(data, n, op, rhs, out);
}

void CompareI64(const int64_t* data, int64_t n, Cmp op, double rhs,
                uint8_t* out) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2 && HasAvx512Dq()) {
    avx2::CompareI64(data, n, op, rhs, out);
    return;
  }
#endif
  sc::CompareI64(data, n, op, rhs, out);
}

int64_t MaskToIndices(const uint8_t* mask, const uint8_t* validity, int64_t n,
                      int64_t* out) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    return avx2::MaskToIndices(mask, validity, n, out);
  }
#endif
  return sc::MaskToIndices(mask, validity, n, out);
}

MomentsPart MomentsF64(const double* data, const uint8_t* validity,
                       int64_t begin, int64_t end) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    return avx2::MomentsF64(data, validity, begin, end);
  }
#endif
  return sc::MomentsF64(data, validity, begin, end);
}

MomentsPart MomentsI64(const int64_t* data, const uint8_t* validity,
                       int64_t begin, int64_t end) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2 && HasAvx512Dq()) {
    return avx2::MomentsI64(data, validity, begin, end);
  }
#endif
  return sc::MomentsI64(data, validity, begin, end);
}

void HashMixU64(uint64_t* hashes, const uint64_t* words,
                const uint8_t* validity, int64_t begin, int64_t end,
                uint64_t null_tag) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    avx2::HashMixU64(hashes, words, validity, begin, end, null_tag);
    return;
  }
#endif
  sc::HashMixU64(hashes, words, validity, begin, end, null_tag);
}

void HashMixF64(uint64_t* hashes, const double* values,
                const uint8_t* validity, int64_t begin, int64_t end,
                uint64_t null_tag) {
#if BENTO_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    avx2::HashMixF64(hashes, values, validity, begin, end, null_tag);
    return;
  }
#endif
  sc::HashMixF64(hashes, values, validity, begin, end, null_tag);
}

void HashMixCodes(uint64_t* hashes, const int32_t* codes,
                  const uint8_t* validity, int64_t begin, int64_t end,
                  const uint64_t* code_hashes, uint64_t null_tag) {
  // Table lookups gather-dominate; the scalar body is the fast path on
  // every level (the win over raw strings is the per-code memoization).
  sc::HashMixCodes(hashes, codes, validity, begin, end, code_hashes, null_tag);
}

}  // namespace bento::simd
