#include "engines/spill_frames.h"

#include <cstring>

#include "columnar/bitmap.h"
#include "io/encoding.h"
#include "obs/metrics.h"

namespace bento::eng {

namespace {

/// Fixed-size per-column frame header. Plain-old bytes so a frame is one
/// contiguous Write: header block, then each column's validity bitmap and
/// encoded value page back to back.
struct ColumnHeader {
  uint8_t type = 0;
  uint8_t encoding = 0;
  int64_t null_count = 0;
  uint64_t validity_size = 0;
  uint64_t data_size = 0;
};

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + 8);
  std::memcpy(out->data() + at, &v, 8);
}

Status GetU64(const std::vector<uint8_t>& buf, size_t* pos, uint64_t* out) {
  if (*pos + 8 > buf.size()) return Status::IOError("truncated spill frame");
  std::memcpy(out, buf.data() + *pos, 8);
  *pos += 8;
  return Status::OK();
}

}  // namespace

class SpillFrameStore::PartitionStream : public ChunkStream {
 public:
  PartitionStream(SpillFrameStore* store, int partition)
      : store_(store), partition_(partition) {}

  Result<col::TablePtr> Next() override {
    const Partition& part =
        store_->parts_[static_cast<size_t>(partition_)];
    if (index_ >= part.frames.size()) {
      if (index_ == 0 && part.schema != nullptr) {
        // Schema known but no frames: one empty chunk, like TableChunkStream.
        ++index_;
        return col::Table::MakeEmpty(part.schema);
      }
      return col::TablePtr(nullptr);
    }
    return store_->ReadFrame(part, part.frames[index_++]);
  }

 private:
  SpillFrameStore* store_;
  int partition_;
  size_t index_ = 0;
};

Result<std::unique_ptr<SpillFrameStore>> SpillFrameStore::Create(
    int partitions) {
  if (partitions < 0) return Status::Invalid("negative partition count");
  BENTO_ASSIGN_OR_RETURN(auto file, sim::SpillFile::Create());
  auto store =
      std::unique_ptr<SpillFrameStore>(new SpillFrameStore(std::move(file)));
  store->parts_.resize(static_cast<size_t>(partitions));
  return store;
}

Status SpillFrameStore::Append(int partition, const col::TablePtr& chunk) {
  if (partition < 0 || partition >= partitions()) {
    return Status::IndexError("spill partition ", partition, " out of range");
  }
  Partition& part = parts_[static_cast<size_t>(partition)];
  if (part.schema == nullptr) {
    part.schema = chunk->schema();
  } else if (!(*part.schema == *chunk->schema())) {
    return Status::Invalid("spill partition schema mismatch");
  }
  if (chunk->num_rows() == 0) return Status::OK();

  // Encode every column first so the header block can lead the frame.
  std::vector<ColumnHeader> headers;
  std::vector<col::BufferPtr> validities;
  std::vector<std::vector<uint8_t>> pages;
  for (int c = 0; c < chunk->num_columns(); ++c) {
    const col::ArrayPtr& column = chunk->column(c);
    ColumnHeader h;
    h.type = static_cast<uint8_t>(column->type());
    h.null_count = column->null_count();
    col::BufferPtr bits;
    if (h.null_count > 0) {
      // Repack so the frame is self-contained (slices may be bit-offset).
      BENTO_ASSIGN_OR_RETURN(bits,
                             col::AllocateBitmap(column->length(), false));
      for (int64_t i = 0; i < column->length(); ++i) {
        if (column->IsValid(i)) col::SetBit(bits->mutable_data(), i);
      }
      h.validity_size = bits->size();
    }
    const io::Encoding enc = io::ChooseEncoding(column);
    h.encoding = static_cast<uint8_t>(enc);
    BENTO_ASSIGN_OR_RETURN(auto page, io::EncodeArray(column, enc));
    h.data_size = page.size();
    headers.push_back(h);
    validities.push_back(std::move(bits));
    pages.push_back(std::move(page));
  }

  std::vector<uint8_t> frame;
  PutU64(static_cast<uint64_t>(chunk->num_columns()), &frame);
  PutU64(static_cast<uint64_t>(chunk->num_rows()), &frame);
  for (const ColumnHeader& h : headers) {
    frame.push_back(h.type);
    frame.push_back(h.encoding);
    PutU64(static_cast<uint64_t>(h.null_count), &frame);
    PutU64(h.validity_size, &frame);
    PutU64(h.data_size, &frame);
  }
  for (size_t c = 0; c < headers.size(); ++c) {
    if (validities[c] != nullptr) {
      frame.insert(frame.end(), validities[c]->data(),
                   validities[c]->data() + validities[c]->size());
    }
    frame.insert(frame.end(), pages[c].begin(), pages[c].end());
  }

  BENTO_ASSIGN_OR_RETURN(uint64_t offset,
                         file_->Write(frame.data(), frame.size()));
  static obs::Counter* frames =
      obs::MetricsRegistry::Global().counter("spill.frames");
  frames->Increment();
  part.frames.push_back(FrameRef{offset, frame.size(), chunk->num_rows()});
  part.rows += chunk->num_rows();
  return Status::OK();
}

Result<col::TablePtr> SpillFrameStore::ReadFrame(const Partition& part,
                                                 const FrameRef& ref) {
  std::vector<uint8_t> frame(ref.size);
  BENTO_RETURN_NOT_OK(file_->Read(ref.offset, ref.size, frame.data()));

  size_t pos = 0;
  uint64_t n_cols = 0, n_rows = 0;
  BENTO_RETURN_NOT_OK(GetU64(frame, &pos, &n_cols));
  BENTO_RETURN_NOT_OK(GetU64(frame, &pos, &n_rows));
  if (n_cols != static_cast<uint64_t>(part.schema->num_fields()) ||
      n_rows != static_cast<uint64_t>(ref.rows)) {
    return Status::IOError("corrupt spill frame header");
  }
  std::vector<ColumnHeader> headers(n_cols);
  for (ColumnHeader& h : headers) {
    if (pos + 2 > frame.size()) return Status::IOError("truncated spill frame");
    h.type = frame[pos++];
    h.encoding = frame[pos++];
    uint64_t nc = 0;
    BENTO_RETURN_NOT_OK(GetU64(frame, &pos, &nc));
    h.null_count = static_cast<int64_t>(nc);
    BENTO_RETURN_NOT_OK(GetU64(frame, &pos, &h.validity_size));
    BENTO_RETURN_NOT_OK(GetU64(frame, &pos, &h.data_size));
  }

  std::vector<col::ArrayPtr> columns;
  for (uint64_t c = 0; c < n_cols; ++c) {
    const ColumnHeader& h = headers[c];
    if (pos + h.validity_size + h.data_size > frame.size()) {
      return Status::IOError("truncated spill frame");
    }
    col::BufferPtr validity;
    if (h.validity_size > 0) {
      BENTO_ASSIGN_OR_RETURN(
          validity, col::Buffer::CopyOf(frame.data() + pos, h.validity_size));
      pos += h.validity_size;
    }
    BENTO_ASSIGN_OR_RETURN(
        auto array,
        io::DecodeArray(static_cast<col::TypeId>(h.type),
                        static_cast<io::Encoding>(h.encoding),
                        frame.data() + pos, h.data_size,
                        static_cast<int64_t>(n_rows), std::move(validity),
                        h.null_count));
    pos += h.data_size;
    columns.push_back(std::move(array));
  }
  return col::Table::Make(part.schema, std::move(columns));
}

Result<std::vector<col::TablePtr>> SpillFrameStore::ReadPartition(
    int partition) {
  if (partition < 0 || partition >= partitions()) {
    return Status::IndexError("spill partition ", partition, " out of range");
  }
  const Partition& part = parts_[static_cast<size_t>(partition)];
  std::vector<col::TablePtr> chunks;
  for (const FrameRef& ref : part.frames) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, ReadFrame(part, ref));
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

Result<std::unique_ptr<ChunkStream>> SpillFrameStore::OpenPartition(
    int partition) {
  if (partition < 0 || partition >= partitions()) {
    return Status::IndexError("spill partition ", partition, " out of range");
  }
  return std::unique_ptr<ChunkStream>(
      std::make_unique<PartitionStream>(this, partition));
}

int64_t SpillFrameStore::partition_rows(int partition) const {
  if (partition < 0 || partition >= partitions()) return 0;
  return parts_[static_cast<size_t>(partition)].rows;
}

int64_t SpillFrameStore::partition_frames(int partition) const {
  if (partition < 0 || partition >= partitions()) return 0;
  return static_cast<int64_t>(
      parts_[static_cast<size_t>(partition)].frames.size());
}

}  // namespace bento::eng
