#ifndef BENTO_ENGINES_EAGER_ENGINE_H_
#define BENTO_ENGINES_EAGER_ENGINE_H_

#include <memory>
#include <string>

#include "frame/capabilities.h"
#include "frame/engine.h"
#include "frame/exec.h"

namespace bento::eng {

class EagerEngineBase;

/// \brief Materialized-table frame used by all eager engines: every Apply
/// executes immediately and the handle owns the full result.
class EagerFrame : public frame::DataFrame {
 public:
  EagerFrame(col::TablePtr table, const EagerEngineBase* engine);

  Result<Ptr> Apply(const frame::Op& op) override;
  Result<frame::ActionResult> RunAction(const frame::Op& op) override;
  Result<col::TablePtr> Collect() override { return table_; }

  const col::TablePtr& table() const { return table_; }

 private:
  col::TablePtr table_;
  const EagerEngineBase* engine_;
  std::shared_ptr<const frame::Engine> engine_keepalive_;
};

/// \brief Base for eager engines: shared I/O entry points plus hooks
/// subclasses override to express their execution model.
class EagerEngineBase : public frame::Engine {
 public:
  Result<frame::DataFrame::Ptr> ReadCsv(
      const std::string& path, const io::CsvReadOptions& options) override;
  Result<frame::DataFrame::Ptr> ReadBcf(const std::string& path) override;
  Status WriteCsv(const frame::DataFrame::Ptr& frame,
                  const std::string& path) override;
  Status WriteBcf(const frame::DataFrame::Ptr& frame,
                  const std::string& path) override;
  Result<frame::DataFrame::Ptr> FromTable(col::TablePtr table) override;

  /// Policy used for ops this engine supports natively (or renamed).
  virtual frame::ExecPolicy NativePolicy() const = 0;

  /// Policy for Table-II "emulated" preparators: by default the native
  /// policy without parallelism (hand-rolled fallbacks are single-threaded).
  virtual frame::ExecPolicy EmulatedPolicy() const;

  /// Executes one transform; subclasses wrap for device/offload semantics.
  virtual Result<col::TablePtr> RunTransform(const col::TablePtr& table,
                                             const frame::Op& op,
                                             const frame::ExecPolicy& policy) const;
  virtual Result<frame::ActionResult> RunAction(
      const col::TablePtr& table, const frame::Op& op,
      const frame::ExecPolicy& policy) const;

  /// Resolves the policy for `op` from the capability matrix.
  frame::ExecPolicy PolicyFor(const frame::Op& op) const;

  /// Bytes of per-value boxing overhead for string columns (the NumPy
  /// object-dtype model: a PyObject header plus a pointer per cell). Charged
  /// against the machine budget for every string cell a frame holds — the
  /// mechanism behind Pandas' early OoM on the string-heavy datasets.
  /// Arrow-backed engines return 0.
  virtual int64_t ObjectStringBytes() const { return 0; }

 protected:
  /// CSV ingestion hook (DataTable overrides with the mmap reader).
  virtual Result<col::TablePtr> DoReadCsv(const std::string& path,
                                          const io::CsvReadOptions& options) const;
  virtual Status DoWriteCsv(const col::TablePtr& table,
                            const std::string& path) const;
  /// BCF hooks; DataTable overrides with NotImplemented (no Parquet).
  virtual Result<col::TablePtr> DoReadBcf(const std::string& path) const;
  virtual Status DoWriteBcf(const col::TablePtr& table,
                            const std::string& path) const;

  /// Post-ingest hook (CuDF charges the host->device transfer here).
  virtual Result<col::TablePtr> AfterIngest(col::TablePtr table) const {
    return table;
  }
};

}  // namespace bento::eng

#endif  // BENTO_ENGINES_EAGER_ENGINE_H_
