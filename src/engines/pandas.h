#ifndef BENTO_ENGINES_PANDAS_H_
#define BENTO_ENGINES_PANDAS_H_

#include "engines/eager_engine.h"

namespace bento::eng {

/// \brief Model of Pandas 1.x: eager, single-threaded, sentinel-null
/// (isna re-scans values), Python-object strings, defensive copies after
/// every transform, boxed per-cell overhead on row-wise apply.
class PandasEngine : public EagerEngineBase {
 public:
  const frame::EngineInfo& info() const override;
  frame::ExecPolicy NativePolicy() const override;
  int64_t ObjectStringBytes() const override { return 57; }  // PyObject + ptr
};

/// \brief Model of Pandas 2.x: same orchestration, but Arrow-backed string
/// storage (columnar string kernels). Null probing still scans — the
/// paper's finding that Pandas2 improves only slightly over Pandas.
class Pandas2Engine : public EagerEngineBase {
 public:
  const frame::EngineInfo& info() const override;
  frame::ExecPolicy NativePolicy() const override;
  // The 2.0.0 default dtype backend still boxes strings as objects.
  int64_t ObjectStringBytes() const override { return 57; }
};

}  // namespace bento::eng

#endif  // BENTO_ENGINES_PANDAS_H_
