#include "frame/engine.h"

#include "engines/cudf.h"
#include "engines/datatable.h"
#include "engines/lazy_engine.h"
#include "engines/modin.h"
#include "engines/pandas.h"
#include "engines/polars.h"
#include "engines/spark.h"
#include "engines/vaex.h"

namespace bento::frame {

Result<EnginePtr> CreateEngine(const std::string& id) {
  using namespace bento::eng;  // NOLINT(build/namespaces): factory only
  if (id == "pandas") return EnginePtr(std::make_shared<PandasEngine>());
  if (id == "pandas2") return EnginePtr(std::make_shared<Pandas2Engine>());
  if (id == "spark_pd") return EnginePtr(std::make_shared<SparkPdEngine>());
  if (id == "spark_sql") return EnginePtr(std::make_shared<SparkSqlEngine>());
  if (id == "modin_dask") return EnginePtr(std::make_shared<ModinDaskEngine>());
  if (id == "modin_ray") return EnginePtr(std::make_shared<ModinRayEngine>());
  if (id == "polars") return EnginePtr(std::make_shared<PolarsEngine>());
  if (id == "cudf") return EnginePtr(std::make_shared<CudfEngine>());
  if (id == "vaex") return EnginePtr(std::make_shared<VaexEngine>());
  if (id == "datatable") return EnginePtr(std::make_shared<DataTableEngine>());
  // Eager variants of the lazy engines, for the Fig. 7 comparison.
  if (id == "polars_eager") {
    return EnginePtr(std::make_shared<PolarsEngine>(false));
  }
  if (id == "spark_sql_eager") {
    return EnginePtr(std::make_shared<SparkSqlEngine>(false));
  }
  if (id == "spark_pd_eager") {
    return EnginePtr(std::make_shared<SparkPdEngine>(false));
  }
  // Optimizer-off variants of the lazy engines: plans run exactly as
  // written. The A/B baseline for the plan-rewrite benchmarks and the
  // reference arm of the differential plan fuzzer.
  if (id == "polars_noopt" || id == "spark_sql_noopt" ||
      id == "spark_pd_noopt" || id == "vaex_noopt") {
    BENTO_ASSIGN_OR_RETURN(EnginePtr inner,
                           CreateEngine(id.substr(0, id.size() - 6)));
    auto* lazy = dynamic_cast<eng::LazyEngineBase*>(inner.get());
    if (lazy == nullptr) return Status::Invalid("'", id, "' is not lazy");
    lazy->set_optimizer_enabled(false);
    return inner;
  }
  return Status::KeyError("unknown engine '", id, "'");
}

std::vector<std::string> EngineIds() {
  return {"pandas",     "pandas2", "spark_pd", "spark_sql", "modin_dask",
          "modin_ray",  "polars",  "cudf",     "vaex",      "datatable"};
}

}  // namespace bento::frame
