#ifndef BENTO_ENGINES_STREAMING_OPS_H_
#define BENTO_ENGINES_STREAMING_OPS_H_

#include <vector>

#include "engines/chunk_stream.h"
#include "frame/exec.h"
#include "kernels/common.h"

namespace bento::eng {

/// Out-of-core / bounded-memory implementations of the pipeline-breaking
/// operators, used by the SparkSQL-model engine. These consume a ChunkStream
/// and keep peak memory at O(groups), O(run), or O(distinct) instead of
/// O(dataset) — the property that lets SparkSQL finish the largest datasets
/// on the laptop configuration (Table V).

/// \brief Partial-aggregation group-by: per-chunk local aggregation into
/// decomposed partials (sum/count/min/max/sumsq), periodic compaction, exact
/// final merge. Peak memory O(#groups).
Result<col::TablePtr> StreamingGroupBy(ChunkStream* input,
                                       const std::vector<std::string>& keys,
                                       const std::vector<kern::AggSpec>& aggs,
                                       const frame::ExecPolicy& policy);

/// \brief External merge sort: sorted runs of `run_rows` rows spill to
/// temporary BCF files; a cursor-based k-way merge re-streams them. Peak
/// memory O(run + output).
Result<col::TablePtr> ExternalSort(ChunkStream* input,
                                   const std::vector<kern::SortKey>& keys,
                                   const frame::ExecPolicy& policy,
                                   int64_t run_rows = 256 * 1024);

/// \brief Fully out-of-core variant: the merged output is written to a
/// temporary BCF file (Spark's shuffle-file shape) instead of materialized;
/// peak memory O(run). Returns the temp file path (caller owns/deletes).
Result<std::string> ExternalSortToFile(ChunkStream* input,
                                       const std::vector<kern::SortKey>& keys,
                                       const frame::ExecPolicy& policy,
                                       int64_t run_rows = 256 * 1024);

/// \brief Streaming deduplication on 64-bit row hashes over `subset`
/// columns. Peak memory O(#distinct hashes). Hash collisions would drop a
/// non-duplicate row (probability ~ n^2 / 2^64, negligible at benchmarked
/// scales; the trade Spark's partial dedup makes too).
Result<col::TablePtr> StreamingDedup(ChunkStream* input,
                                     const std::vector<std::string>& subset);

/// \brief Streaming pivot: decomposed group-by on (index, columns) followed
/// by a small in-memory pivot of the aggregated result.
Result<col::TablePtr> StreamingPivot(ChunkStream* input,
                                     const frame::Op& op,
                                     const frame::ExecPolicy& policy);

/// \brief Drains a stream into one table (concat of its chunks).
Result<col::TablePtr> DrainStream(ChunkStream* input);

/// \brief Spills a stream to a temporary BCF file (bounded memory); the
/// first half of the two-pass streaming operators. Caller owns the file.
Result<std::string> SpillStreamToFile(ChunkStream* input);

/// \brief First-seen-order distinct non-null values of `column` over a
/// stream (category/dictionary discovery pass).
Result<std::vector<std::string>> StreamDistinctValues(ChunkStream* input,
                                                      const std::string& column);

/// \brief Streaming mean of a numeric column (fillna-with-mean pass 1).
Result<double> StreamColumnMean(ChunkStream* input, const std::string& column);

}  // namespace bento::eng

#endif  // BENTO_ENGINES_STREAMING_OPS_H_
