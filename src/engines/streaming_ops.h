#ifndef BENTO_ENGINES_STREAMING_OPS_H_
#define BENTO_ENGINES_STREAMING_OPS_H_

#include <string>
#include <vector>

#include "engines/chunk_stream.h"
#include "engines/pipeline_driver.h"
#include "frame/exec.h"
#include "kernels/common.h"
#include "kernels/join.h"
#include "sim/parallel.h"

namespace bento::eng {

/// Out-of-core / bounded-memory implementations of the pipeline-breaking
/// operators, used by the SparkSQL-model engine. These consume a ChunkStream
/// and keep peak memory at O(groups), O(run), or O(distinct) instead of
/// O(dataset) — the property that lets SparkSQL finish the largest datasets
/// on the laptop configuration (Table V).

/// \brief Spill controls for the bounded-memory group-by.
struct StreamingGroupByOptions {
  /// Hash partitions the spilled partial state fans out to.
  int spill_partitions = 16;
  /// Spill once the in-memory partial state exceeds this many bytes.
  /// Negative (default) derives the threshold from the session budget
  /// (budget/8); 0 forces spill from the first chunk (tests); a huge value
  /// keeps everything in memory.
  int64_t spill_threshold_bytes = -1;
  /// Parallel-pipeline shape for the per-chunk partial aggregation (the
  /// fused transforms + local GroupBy map). The serial fold that merges
  /// partials, compacts and spills always runs on the calling thread in
  /// stream order, so the result is bit-identical for any worker count.
  PipelineOptions pipeline;
  /// Fused upstream transform run applied to every chunk before the partial
  /// aggregation (set by the executor in parallel mode so transforms and
  /// aggregation ride one pipeline stage instead of nesting two).
  MappedStream::MapFn pre_map;
  /// When set, receives the number of chunks claimed from the input (for
  /// per-chunk virtual-time overheads charged by the driver thread).
  int64_t* chunks_claimed = nullptr;
};

/// \brief Pipeline controls for the streaming dedup (same contract as the
/// group-by: hashing parallelizes per chunk, the first-seen filter stays
/// serial in stream order).
struct StreamingDedupOptions {
  PipelineOptions pipeline;
  MappedStream::MapFn pre_map;
  int64_t* chunks_claimed = nullptr;
};

/// \brief Partial-aggregation group-by: per-chunk local aggregation into
/// decomposed partials (sum/count/min/max/sumsq), periodic compaction, exact
/// final merge. Peak memory O(#groups) — and when even the group state
/// outgrows the budget, partials hash-partition to a SpillFrameStore and
/// merge per partition, restoring the stream's first-seen group order
/// through a hidden min-row-index column. Bit-identical to the in-memory
/// path in both modes.
Result<col::TablePtr> StreamingGroupBy(
    ChunkStream* input, const std::vector<std::string>& keys,
    const std::vector<kern::AggSpec>& aggs, const frame::ExecPolicy& policy,
    const StreamingGroupByOptions& options = {});

/// \brief External merge sort: sorted runs of `run_rows` rows spill to
/// temporary BCF files; a cursor-based k-way merge re-streams them. Peak
/// memory O(run + output).
Result<col::TablePtr> ExternalSort(ChunkStream* input,
                                   const std::vector<kern::SortKey>& keys,
                                   const frame::ExecPolicy& policy,
                                   int64_t run_rows = 256 * 1024);

/// \brief Fully out-of-core variant: the merged output is written to a
/// temporary BCF file (Spark's shuffle-file shape) instead of materialized;
/// peak memory O(run). Returns the temp file path (caller owns/deletes).
Result<std::string> ExternalSortToFile(ChunkStream* input,
                                       const std::vector<kern::SortKey>& keys,
                                       const frame::ExecPolicy& policy,
                                       int64_t run_rows = 256 * 1024);

/// \brief Streaming deduplication on 64-bit row hashes over `subset`
/// columns. Peak memory O(#distinct hashes). Hash collisions would drop a
/// non-duplicate row (probability ~ n^2 / 2^64, negligible at benchmarked
/// scales; the trade Spark's partial dedup makes too).
Result<col::TablePtr> StreamingDedup(ChunkStream* input,
                                     const std::vector<std::string>& subset,
                                     const StreamingDedupOptions& options = {});

/// \brief Streaming pivot: decomposed group-by on (index, columns) followed
/// by a small in-memory pivot of the aggregated result.
Result<col::TablePtr> StreamingPivot(ChunkStream* input,
                                     const frame::Op& op,
                                     const frame::ExecPolicy& policy,
                                     const StreamingGroupByOptions& options = {});

/// \brief Grace hash join: both sides hash-partition on their key into a
/// SpillFrameStore, then each partition joins independently — peak memory is
/// O(build/P + chunk + output) instead of O(build). Output rows are restored
/// to exact probe-stream order (HashJoin semantics) via a hidden row-index
/// column, so the result is bit-identical to HashJoin(probe, build).
Result<col::TablePtr> GraceHashJoin(ChunkStream* probe,
                                    const col::TablePtr& build,
                                    const std::string& left_key,
                                    const std::string& right_key,
                                    const kern::JoinOptions& options,
                                    int partitions = 16);

/// \brief Drains a stream into one table (concat of its chunks).
Result<col::TablePtr> DrainStream(ChunkStream* input);

/// \brief Drains a stream into a FILE-BACKED table: results larger than
/// `inline_limit_bytes` spill to a temp BCF chunk-at-a-time, get compacted
/// into a single mappable row group (one column resident at a time), and
/// come back as zero-copy mmap views. The returned frame's buffers are
/// pageable file bytes, so a frame nearly the size of the memory budget
/// charges (almost) nothing against the MemoryPool — the property that
/// lets streaming engines hold full-dataset frames at stage boundaries on
/// the laptop model. Results at or under the limit concat in memory and
/// skip the round-trip. The temp files are unlinked before returning; the
/// mapping keeps the bytes reachable until the last view dies.
struct MaterializeOptions {
  /// Columns compacted concurrently during the mapped materialization's
  /// compaction pass. The pass produces a bounded window of this many
  /// columns in parallel ahead of the (serial, schema-ordered) writer, so
  /// peak memory is O(window columns), never the frame; <= 1 keeps the
  /// fully serial column-at-a-time pass. The window shrinks automatically
  /// when the pool's headroom cannot hold it.
  int compact_workers = 1;
  /// Backend for the window's column tasks (the pipeline's policy: kReal
  /// engages the thread pool, kSimulated credits the modeled overlap).
  sim::ParallelOptions parallel_options;
};

Result<col::TablePtr> MaterializeStreamMapped(
    ChunkStream* input, uint64_t inline_limit_bytes,
    const MaterializeOptions& options = {});

/// \brief Spills a stream to a temporary BCF file (bounded memory); the
/// first half of the two-pass streaming operators. Caller owns the file.
Result<std::string> SpillStreamToFile(ChunkStream* input);

/// \brief First-seen-order distinct non-null values of `column` over a
/// stream (category/dictionary discovery pass).
Result<std::vector<std::string>> StreamDistinctValues(ChunkStream* input,
                                                      const std::string& column);

/// \brief Streaming mean of a numeric column (fillna-with-mean pass 1).
Result<double> StreamColumnMean(ChunkStream* input, const std::string& column);

}  // namespace bento::eng

#endif  // BENTO_ENGINES_STREAMING_OPS_H_
