#include "engines/pipeline_driver.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "sim/parallel.h"
#include "sim/thread_pool.h"

namespace bento::eng {

PipelineOptions ResolvePipelineOptions(const frame::ExecPolicy& policy) {
  PipelineOptions out;  // serial defaults
  if (const char* env = std::getenv("BENTO_PIPELINE")) {
    if (std::string(env) == "off" || std::string(env) == "0") return out;
  }
  if (!policy.parallel) return out;
  if (sim::WouldUseRealExecution(policy.parallel_options)) {
    int workers = std::min(sim::ResolveWorkers(policy.parallel_options),
                           sim::ThreadPool::HardwareParallelism());
    if (const char* env = std::getenv("BENTO_PIPELINE_WORKERS")) {
      const long long v = std::atoll(env);
      // The sweep override is exact (not clamped to physical cores): the
      // bit-identity tests run 8 workers on any host.
      if (v > 0) workers = static_cast<int>(std::min<long long>(v, 64));
    }
    out.workers = std::max(1, workers);
    if (out.workers > 1) out.prefetch_depth = 2;
    return out;
  }
  // Simulated session: model the same chunk-parallel schedule in virtual
  // time. The driver runs serially, measures each chunk map, and credits
  // the overlap the session machine's cores would achieve — ParallelFor's
  // simulated-mode accounting lifted to pipeline stages, so the pipeline
  // speedup shows on any host, including single-core runners. Never from a
  // pool worker (nested stages would double-credit), and never without a
  // session (no virtual clock to credit). No prefetch thread either: work
  // done off the consumer thread is invisible to its VirtualTimer.
  sim::Session* session = sim::Session::Current();
  if (session == nullptr || sim::ThreadPool::OnWorkerThread()) return out;
  int workers = std::min(sim::ResolveWorkers(policy.parallel_options),
                         session->cores());
  if (const char* env = std::getenv("BENTO_PIPELINE_WORKERS")) {
    const long long v = std::atoll(env);
    // Exact override: the A/B benches pin 1 vs 4 modeled workers.
    if (v > 0) workers = static_cast<int>(std::min<long long>(v, 64));
  }
  out.workers = std::max(1, workers);
  out.simulate = out.workers > 1;
  out.schedule = policy.parallel_options.policy;
  out.per_task_dispatch_s = policy.parallel_options.per_task_dispatch_s;
  return out;
}

// ---------------------------------------------------------------------------
// ParallelPipelineDriver
// ---------------------------------------------------------------------------

ParallelPipelineDriver::ParallelPipelineDriver(ChunkStream* inner, MapFn map,
                                                 const PipelineOptions& options)
    : inner_(inner),
      map_(std::move(map)),
      options_(options),
      pool_(sim::MemoryPool::Current()) {
  if (!options_.threaded()) return;
  capacity_ = options_.workers + std::max(options_.readahead, 0);
  active_workers_ = options_.workers;
  threads_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ParallelPipelineDriver::~ParallelPipelineDriver() {
  SettleModeledCredit();  // no-op unless simulate; safety for partial drains
  {
    std::lock_guard<std::mutex> lk(mu_);
    cancelled_ = true;
  }
  cv_room_.notify_all();
  cv_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

Result<col::TablePtr> ParallelPipelineDriver::Claim(int64_t* seq) {
  std::lock_guard<std::mutex> claim(claim_mu_);
  if (claim_stopped_) return col::TablePtr(nullptr);
  const double t0 = options_.simulate ? sim::NowSeconds() : 0.0;
  auto pulled = inner_->Next();
  if (options_.simulate) sim_io_seconds_.push_back(sim::NowSeconds() - t0);
  if (!pulled.ok()) {
    claim_stopped_ = true;
    *seq = next_claim_seq_++;
    claimed_count_.fetch_add(1, std::memory_order_relaxed);
    return pulled;
  }
  if (pulled.ValueOrDie() == nullptr) {
    claim_stopped_ = true;
    return pulled;
  }
  *seq = next_claim_seq_++;
  claimed_count_.fetch_add(1, std::memory_order_relaxed);
  return pulled;
}

void ParallelPipelineDriver::WorkerLoop(int index) {
  obs::SetCurrentThreadName("pipeline-worker-" + std::to_string(index));
  (void)obs::InstallThreadSampler();
  sim::MemoryScope scope(pool_);
  static obs::Gauge* inflight_gauge =
      obs::MetricsRegistry::Global().gauge("pipeline.chunks.inflight");
  static obs::Counter* chunk_counter =
      obs::MetricsRegistry::Global().counter("pipeline.chunks");

  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_room_.wait(lk, [&] {
        return cancelled_ || done_claiming_ || inflight_ < capacity_;
      });
      if (cancelled_ || done_claiming_) break;
      ++inflight_;
      inflight_gauge->UpdateMax(static_cast<int64_t>(inflight_));
    }

    int64_t seq = -1;
    auto pulled = Claim(&seq);
    const bool end = pulled.ok() && pulled.ValueOrDie() == nullptr;
    if (end) {
      std::lock_guard<std::mutex> lk(mu_);
      --inflight_;  // reservation unused: nothing was claimed
      done_claiming_ = true;
      cv_ready_.notify_all();
      cv_room_.notify_all();
      break;
    }

    Result<col::TablePtr> out = std::move(pulled);
    if (out.ok()) {
      chunk_counter->Increment();
      BENTO_TRACE_SPAN(kEngine, "pipeline.chunk");
      out = map_(out.MoveValueUnsafe(), seq);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ready_.emplace(seq, std::move(out));
      cv_ready_.notify_all();
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  if (--active_workers_ == 0) cv_ready_.notify_all();
}

void ParallelPipelineDriver::SettleModeledCredit() {
  if (!options_.simulate || sim_credited_ || sim_map_seconds_.empty()) return;
  sim_credited_ = true;
  sim::Session* session = sim::Session::Current();
  if (session == nullptr) return;
  double sum_map = 0.0;
  for (double d : sim_map_seconds_) sum_map += d;
  double sum_io = 0.0;
  for (double d : sim_io_seconds_) sum_io += d;
  // Two-stage pipeline model matching the real executor's shape: a prefetch
  // producer pulls chunks sequentially while `workers` map them. Completion
  // is bounded below by either stage being saturated — all I/O plus the last
  // map's tail, or the map makespan plus the first chunk's fill — and the
  // credit is the overlap relative to the fully serial claim+map loop the
  // driver actually ran.
  const double map_makespan =
      sim::SimulateMakespan(sim_map_seconds_, options_.workers,
                            options_.schedule, options_.per_task_dispatch_s);
  const double io_fill = sim_io_seconds_.empty() ? 0.0 : sim_io_seconds_.front();
  const double map_tail = sim_map_seconds_.back();
  const double modeled =
      std::max(sum_io + map_tail, map_makespan + io_fill);
  const double serial = sum_io + sum_map;
  if (serial > modeled) session->AddTimeCredit(serial - modeled);
}

Result<col::TablePtr> ParallelPipelineDriver::Next() {
  if (!options_.threaded()) {
    // Inline serial mode: this IS the plain streaming loop — same claim,
    // same map, same delivery order, zero threads. Errors latch the stream
    // terminal, matching the parallel mode's contract. In modeled mode the
    // only addition is a stopwatch around the map; the overlap credit for
    // the whole stage settles once at end of stream.
    if (terminal_) return terminal_error_;
    int64_t seq = -1;
    Result<col::TablePtr> out = Claim(&seq);
    if (out.ok() && out.ValueOrDie() != nullptr) {
      if (options_.simulate) {
        static obs::Counter* chunk_counter =
            obs::MetricsRegistry::Global().counter("pipeline.chunks");
        chunk_counter->Increment();
        BENTO_TRACE_SPAN(kEngine, "pipeline.chunk");
        const double t0 = sim::NowSeconds();
        out = map_(out.MoveValueUnsafe(), seq);
        sim_map_seconds_.push_back(sim::NowSeconds() - t0);
      } else {
        out = map_(out.MoveValueUnsafe(), seq);
      }
    } else if (out.ok()) {
      SettleModeledCredit();  // end of stream: grant the stage's overlap
    }
    if (!out.ok()) {
      terminal_ = true;
      terminal_error_ = out.status();
    }
    return out;
  }

  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (terminal_) return terminal_error_;
    auto it = ready_.find(next_out_seq_);
    if (it != ready_.end()) {
      Result<col::TablePtr> r = std::move(it->second);
      ready_.erase(it);
      --inflight_;
      ++next_out_seq_;
      cv_room_.notify_all();
      if (!r.ok()) {
        // Deliver the failure at its stream position (exactly where the
        // serial loop would have) and stop the stage.
        terminal_ = true;
        terminal_error_ = r.status();
        cancelled_ = true;
        cv_room_.notify_all();
      }
      return r;
    }
    if (done_claiming_ && active_workers_ == 0) return col::TablePtr(nullptr);
    cv_ready_.wait(lk);
  }
}

// ---------------------------------------------------------------------------
// PrefetchChunkStream
// ---------------------------------------------------------------------------

PrefetchChunkStream::PrefetchChunkStream(std::unique_ptr<ChunkStream> inner,
                                         int depth)
    : inner_(std::move(inner)),
      depth_(std::max(depth, 1)),
      pool_(sim::MemoryPool::Current()) {
  producer_ = std::thread([this] { ProducerLoop(); });
}

PrefetchChunkStream::~PrefetchChunkStream() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    cancelled_ = true;
  }
  cv_consumed_.notify_all();
  cv_produced_.notify_all();
  producer_.join();
}

void PrefetchChunkStream::ProducerLoop() {
  obs::SetCurrentThreadName("pipeline-prefetch");
  (void)obs::InstallThreadSampler();
  sim::MemoryScope scope(pool_);

  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      // Sleep while the queue is full, or while budget headroom has shrunk
      // below two chunks' worth — but never with an empty queue (the
      // consumer is about to free memory by draining it, so stalling then
      // would deadlock the pipeline against its own readahead). The wait
      // re-checks on a short tick too: headroom can grow from releases on
      // threads that never touch this queue.
      auto has_room = [&] {
        if (cancelled_) return true;
        if (queue_.size() >= static_cast<size_t>(depth_)) return false;
        if (queue_.empty()) return true;
        const uint64_t headroom = pool_->HeadroomBytes();
        return headroom == UINT64_MAX || headroom > 2 * last_chunk_bytes_;
      };
      while (!has_room()) {
        cv_consumed_.wait_for(lk, std::chrono::milliseconds(1));
      }
      if (cancelled_) return;
    }

    Result<col::TablePtr> pulled = col::TablePtr(nullptr);
    {
      BENTO_TRACE_SPAN(kIo, "pipeline.prefetch");
      pulled = inner_->Next();
    }
    std::lock_guard<std::mutex> lk(mu_);
    const bool end =
        !pulled.ok() || pulled.ValueOrDie() == nullptr;
    if (pulled.ok() && pulled.ValueOrDie() != nullptr) {
      last_chunk_bytes_ = OwnedChunkBytes(pulled.ValueOrDie());
    }
    queue_.push_back(std::move(pulled));
    cv_produced_.notify_all();
    if (end) {
      finished_ = true;
      return;
    }
  }
}

Result<col::TablePtr> PrefetchChunkStream::Next() {
  static obs::Counter* stalls =
      obs::MetricsRegistry::Global().counter("pipeline.prefetch.stalls");
  std::unique_lock<std::mutex> lk(mu_);
  if (queue_.empty() && !finished_) {
    // The consumer outran the prefetcher: compute is waiting on I/O.
    stalls->Increment();
  }
  cv_produced_.wait(lk, [&] { return !queue_.empty() || finished_; });
  if (queue_.empty()) return col::TablePtr(nullptr);  // finished, drained
  Result<col::TablePtr> r = std::move(queue_.front());
  queue_.pop_front();
  cv_consumed_.notify_all();
  return r;
}

}  // namespace bento::eng
