#ifndef BENTO_ENGINES_PIPELINE_DRIVER_H_
#define BENTO_ENGINES_PIPELINE_DRIVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engines/chunk_stream.h"
#include "frame/exec.h"
#include "sim/memory.h"
#include "sim/parallel.h"

namespace bento::eng {

/// \brief Shape of the morsel-driven parallel streaming executor.
///
/// `workers <= 1` is the serial mode: every stage runs inline on the calling
/// thread with no extra threads, no queues and no reordering — byte-for-byte
/// the behaviour of the pre-pipeline streaming loop. `workers > 1` turns a
/// transform stage into a ParallelPipelineDriver and wraps file-backed
/// sources in a PrefetchChunkStream.
struct PipelineOptions {
  /// Compute workers concurrently claiming chunks. <= 1 means inline serial.
  int workers = 1;
  /// Extra in-flight chunks beyond `workers` the reorder buffer may hold
  /// (absorbs completion skew so a slow chunk does not idle every worker).
  int readahead = 2;
  /// Decoded chunks the background prefetch stage may buffer ahead of the
  /// consumer; 0 disables the prefetch thread.
  int prefetch_depth = 0;
  /// Model the schedule instead of running it: chunks execute serially
  /// inline while each map's wall time is measured, and on completion the
  /// active Session is credited the overlap `workers` would achieve
  /// (ParallelFor's simulated-mode accounting, lifted to pipeline stages).
  /// Virtual time then reflects the simulated machine's pipeline speedup on
  /// any host — including single-core CI runners where real threads cannot
  /// overlap at all.
  bool simulate = false;
  /// Schedule model used for the simulated makespan.
  sim::SchedulePolicy schedule = sim::SchedulePolicy::kGreedy;
  double per_task_dispatch_s = 0.0;

  bool parallel() const { return workers > 1; }
  /// Real worker threads (as opposed to serial or modeled execution).
  bool threaded() const { return workers > 1 && !simulate; }
};

/// \brief Resolves the pipeline shape for one plan execution.
///
/// Engages only when the engine asked for chunk-parallel kernels
/// (`policy.parallel`). With real execution (`sim::WouldUseRealExecution`)
/// the stage runs on actual worker threads clamped to the physical core
/// count, plus a background prefetch thread. Inside a *simulated* session
/// the same pipeline runs in modeled form (`simulate`): serial execution,
/// measured chunk maps, and a virtual-time credit for the overlap the
/// session machine's cores would achieve — so pipeline scaling shows in
/// virtual time host-independently. Without any session the pipeline stays
/// off in simulated mode (there is no clock to credit). Environment
/// overrides (read per call, so benches and tests can sweep without
/// rebuilding engines):
///   BENTO_PIPELINE=off         kill switch, forces serial streaming
///   BENTO_PIPELINE_WORKERS=N   pins the worker count (N=1 forces the
///                              serial baseline)
PipelineOptions ResolvePipelineOptions(const frame::ExecPolicy& policy);

/// \brief Order-preserving parallel transform stage: N dedicated workers
/// concurrently claim sequence-numbered chunks from `inner` and run `map`
/// on each; `Next()` reassembles results in claim order.
///
/// Claims are serialized (one worker at a time pulls `inner->Next()` and
/// takes the next sequence number), maps run concurrently without locks,
/// and finished chunks park in a bounded reorder buffer until the consumer
/// reaches their sequence number. At most `workers + readahead` chunks are
/// in flight; a worker that gets ahead blocks until the consumer drains —
/// which is always possible, because the chunk the consumer waits for is
/// itself held by some worker (deadlock-free by construction). Errors are
/// delivered at their position in the sequence, exactly where the serial
/// loop would have surfaced them.
///
/// Output is bit-identical to running `map` serially per chunk in stream
/// order for ANY worker count: the map itself is pure per-chunk work, and
/// delivery order is the claim order. Workers install the constructing
/// thread's MemoryPool so every allocation still charges the session
/// budget.
///
/// With `options.workers <= 1` no threads are created and `Next()` runs
/// claim + map inline — the degenerate case IS the serial streaming loop.
class ParallelPipelineDriver : public ChunkStream {
 public:
  /// Pure per-chunk transform; `seq` is the chunk's 0-based claim index
  /// (breaker sinks fold it into their hidden first-seen-order column).
  using MapFn =
      std::function<Result<col::TablePtr>(col::TablePtr chunk, int64_t seq)>;

  ParallelPipelineDriver(ChunkStream* inner, MapFn map,
                          const PipelineOptions& options);
  ~ParallelPipelineDriver() override;

  /// Next mapped chunk in claim order, or nullptr at end of stream.
  Result<col::TablePtr> Next() override;

  /// Chunks claimed from the inner stream so far (stable once the stream is
  /// drained; drives per-chunk virtual-time overheads charged by the
  /// driver thread).
  int64_t chunks_claimed() const {
    return claimed_count_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop(int index);
  /// Serial claim of the next chunk + sequence number. Returns nullptr at
  /// end of stream.
  Result<col::TablePtr> Claim(int64_t* seq);
  /// Modeled mode: grants the session the overlap credit for the measured
  /// chunk maps, once (end of stream or destruction, whichever is first).
  void SettleModeledCredit();

  ChunkStream* inner_;
  MapFn map_;
  PipelineOptions options_;
  sim::MemoryPool* pool_;  // consumer-thread pool, installed on workers
  int capacity_ = 0;       // max chunks in flight (claimed, not consumed)

  // Claim serialization (kept apart from mu_ so a long inner->Next() —
  // a CSV parse — never blocks the consumer from popping ready chunks).
  std::mutex claim_mu_;
  int64_t next_claim_seq_ = 0;  // guarded by claim_mu_
  bool claim_stopped_ = false;  // end-of-stream or claim error; claim_mu_

  // Reorder buffer + lifecycle.
  std::mutex mu_;
  std::condition_variable cv_ready_;  // consumer waits for next_out_seq_
  std::condition_variable cv_room_;   // workers wait for in-flight room
  std::map<int64_t, Result<col::TablePtr>> ready_;  // guarded by mu_
  int64_t next_out_seq_ = 0;                        // guarded by mu_
  int inflight_ = 0;                                // guarded by mu_
  int active_workers_ = 0;                          // guarded by mu_
  bool done_claiming_ = false;                      // guarded by mu_
  bool cancelled_ = false;                          // guarded by mu_
  Status terminal_error_;                           // guarded by mu_
  bool terminal_ = false;                           // guarded by mu_

  std::atomic<int64_t> claimed_count_{0};
  std::vector<std::thread> threads_;

  // Modeled (simulate) mode: measured wall seconds of each chunk map and of
  // each claim (the source pull the real pipeline hides behind prefetch).
  std::vector<double> sim_map_seconds_;
  std::vector<double> sim_io_seconds_;
  bool sim_credited_ = false;
};

/// \brief Background I/O prefetch stage: a dedicated producer thread pulls
/// (parses, decompresses, maps) chunks from `inner` into a bounded queue so
/// ingest overlaps with compute.
///
/// The producer installs the constructing thread's MemoryPool, so decoded
/// buffers charge the session budget the moment they exist — readahead can
/// never hold more memory than the budget admits. Backpressure is two-fold:
/// the producer sleeps while the queue is full, and also while pool headroom
/// has shrunk below twice the last chunk's footprint (unless the queue is
/// empty, which keeps the pipeline live: the consumer is about to free
/// memory by taking that chunk). Order is trivially preserved (one producer,
/// FIFO queue). Emits `pipeline.prefetch` spans around each pull and counts
/// consumer-side waits in `pipeline.prefetch.stalls`.
class PrefetchChunkStream : public ChunkStream {
 public:
  PrefetchChunkStream(std::unique_ptr<ChunkStream> inner, int depth);
  ~PrefetchChunkStream() override;

  Result<col::TablePtr> Next() override;

 private:
  void ProducerLoop();

  std::unique_ptr<ChunkStream> inner_;
  int depth_;
  sim::MemoryPool* pool_;

  std::mutex mu_;
  std::condition_variable cv_produced_;
  std::condition_variable cv_consumed_;
  std::deque<Result<col::TablePtr>> queue_;  // guarded by mu_
  uint64_t last_chunk_bytes_ = 0;            // guarded by mu_
  bool finished_ = false;                    // guarded by mu_
  bool cancelled_ = false;                   // guarded by mu_
  std::thread producer_;
};

}  // namespace bento::eng

#endif  // BENTO_ENGINES_PIPELINE_DRIVER_H_
