#ifndef BENTO_ENGINES_LAZY_ENGINE_H_
#define BENTO_ENGINES_LAZY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "engines/chunk_stream.h"
#include "frame/capabilities.h"
#include "frame/engine.h"
#include "frame/exec.h"
#include "plan/rules.h"

namespace bento::eng {

class LazyEngineBase;

/// \brief Scales a full-size batch row count by the experiment's dataset
/// scale (sim::CostScale) so streaming granularity keeps the same
/// data-fraction at every scale; clamped below at `min_rows`.
int64_t ScaledBatchRows(int64_t full_scale_rows, int64_t min_rows = 2048);

/// \brief Where a lazy plan reads from.
struct LazySource {
  enum class Kind { kTable, kCsv, kBcf };
  Kind kind = Kind::kTable;
  col::TablePtr table;
  std::string path;
  io::CsvReadOptions csv_options;
  /// Temp-file sources (Vaex's converted store) are unlinked when the last
  /// plan referencing them dies.
  std::shared_ptr<void> owned_resource;
};

/// \brief Plan-carrying frame used by the lazy engines. Transforms append
/// to the logical plan; Collect() / actions optimize and execute it.
/// In eager mode (the Polars/Spark "forced" configuration of Fig. 7) every
/// Apply executes immediately.
class LazyFrame : public frame::DataFrame,
                  public std::enable_shared_from_this<LazyFrame> {
 public:
  LazyFrame(LazySource source, std::vector<frame::Op> plan,
            const LazyEngineBase* engine);

  Result<Ptr> Apply(const frame::Op& op) override;
  Result<frame::ActionResult> RunAction(const frame::Op& op) override;
  Result<col::TablePtr> Collect() override;

  const std::vector<frame::Op>& plan() const { return plan_; }
  const LazySource& source() const { return source_; }

 private:
  LazySource source_;
  std::vector<frame::Op> plan_;
  const LazyEngineBase* engine_;
  std::shared_ptr<const frame::Engine> engine_keepalive_;
  col::TablePtr cache_;  // materialized result of this plan
};

/// \brief Base of the lazy/streaming engines (Polars, SparkSQL, SparkPD,
/// Vaex). Provides plan optimization (projection & predicate pushdown) and
/// a streaming executor; subclasses configure policies and breaker
/// strategies.
class LazyEngineBase : public frame::Engine {
 public:
  Result<frame::DataFrame::Ptr> ReadCsv(
      const std::string& path, const io::CsvReadOptions& options) override;
  Result<frame::DataFrame::Ptr> ReadBcf(const std::string& path) override;
  Status WriteCsv(const frame::DataFrame::Ptr& frame,
                  const std::string& path) override;
  Status WriteBcf(const frame::DataFrame::Ptr& frame,
                  const std::string& path) override;
  Result<frame::DataFrame::Ptr> FromTable(col::TablePtr table) override;

  /// Executes an optimized plan against a source. Public for tests.
  Result<col::TablePtr> Execute(const LazySource& source,
                                const std::vector<frame::Op>& plan) const;

  /// Executes an action against a plan without materializing the frame when
  /// the plan is fully streamable (isna / search counts accumulate per
  /// chunk; quantile-based actions stream twice). Falls back to
  /// Execute + ExecAction for plans with breakers. Public for tests.
  Result<frame::ActionResult> ExecuteAction(const LazySource& source,
                                            const std::vector<frame::Op>& plan,
                                            const frame::Op& action) const;

  /// True when plans accumulate (default); eager variants return false.
  virtual bool lazy() const { return true; }

  /// Kernel policy during execution.
  virtual frame::ExecPolicy ExecutionPolicy() const = 0;

  // --- optimizer toggles ---
  virtual bool EnableProjectionPushdown() const { return true; }
  virtual bool EnablePredicatePushdown() const { return true; }

  /// Rule families this engine model applies. The default maps the two
  /// legacy toggles onto the full catalog (filter reordering rides the
  /// predicate-pushdown toggle: both model the same Catalyst/Polars
  /// filter-placement machinery). Override for finer-grained models.
  virtual plan::OptimizerPolicy PlanPolicy() const;

  /// Master switch: when false, plans execute exactly as written (the
  /// `_noopt` registry variants used as the A/B baseline in Fig. 7 runs).
  void set_optimizer_enabled(bool enabled) { optimizer_enabled_ = enabled; }
  bool optimizer_enabled() const { return optimizer_enabled_; }

  // --- execution shape ---
  virtual int64_t ChunkRows() const { return ScaledBatchRows(128 * 1024); }
  /// Fixed virtual-time cost charged once per plan execution (plan
  /// compilation / JVM dispatch overheads).
  virtual double PlanOverheadSeconds() const { return 0.0; }
  /// Fixed virtual-time cost charged per streamed chunk (expression-graph
  /// dispatch overheads; Vaex sets this).
  virtual double PerChunkOverheadSeconds() const { return 0.0; }
  /// When true, pipeline breakers use the bounded-memory streaming
  /// implementations (partial aggregation with spill, external sort, grace
  /// join) instead of materialize-then-execute. The SparkSQL model, also
  /// adopted by the Vaex and Polars streaming paths.
  virtual bool StreamsBreakers() const { return false; }

  /// When true, BCF sources are served through mmap with zero-copy plain
  /// pages (the Vaex memory model: file-backed columns charge nothing
  /// against the RAM budget).
  virtual bool MapsBcfSource() const { return false; }

  /// Extra virtual-time cost of running action `op` against `table`;
  /// Vaex charges its per-row expression-graph dispatch here (the paper's
  /// "much less efficient row-wise" finding). Default: none.
  virtual double ActionPenaltySeconds(const frame::Op& op,
                                      const col::TablePtr& table) const {
    return 0.0;
  }

  /// Ingest hook: Vaex converts CSV sources into a temp BCF store; SparkPD
  /// attaches its index column.
  virtual Result<LazySource> PrepareSource(LazySource source) const {
    return source;
  }

  /// Runs the rewrite-rule driver over `plan` under this engine's
  /// PlanPolicy(); identity when the optimizer is disabled. Exposed for
  /// tests and plan display. Set BENTO_EXPLAIN=1 to dump the plan before
  /// and after to stderr.
  std::vector<frame::Op> Optimize(std::vector<frame::Op> plan) const;

  /// Scan-level bindings the executor pushed into the source read: columns
  /// the scan never materializes and zone-map predicates that prune BCF row
  /// groups. The residual plan still re-checks every filter.
  struct ScanSpec {
    std::vector<std::string> drop_columns;
    std::vector<io::ScanPredicate> predicates;
  };

 protected:
  /// Opens the chunk stream for a source, applying the parts of `scan` the
  /// format supports (CSV: column skipping; BCF: column projection and
  /// row-group skipping; tables: column selection).
  Result<std::unique_ptr<ChunkStream>> OpenStream(const LazySource& source,
                                                  const ScanSpec& scan) const;

 private:
  bool optimizer_enabled_ = true;
};

/// \brief True when `op` can run chunk-at-a-time without global state.
bool IsStreamable(const frame::Op& op);

}  // namespace bento::eng

#endif  // BENTO_ENGINES_LAZY_ENGINE_H_
