#ifndef BENTO_ENGINES_SPILL_FRAMES_H_
#define BENTO_ENGINES_SPILL_FRAMES_H_

#include <memory>
#include <vector>

#include "engines/chunk_stream.h"
#include "sim/spill.h"

namespace bento::eng {

/// \brief Partitioned table-frame store over one sim::SpillFile: the shared
/// spill layer of the out-of-core breakers (group-by partial-state spill,
/// grace-join build/probe partitions, external-sort runs).
///
/// Each Append serializes a table chunk into a single self-describing frame
/// (per-column type / encoding / validity header + encoded pages) and writes
/// it with one SpillFile::Write, so spilled bytes are charged to the spill
/// counters, never to a MemoryPool — spilling converts tracked RAM into
/// untracked disk. Frames within a partition read back in append order, and
/// every partition keeps its own schema (a store can hold probe and build
/// sides at once). The backing file is unlinked when the store dies.
class SpillFrameStore {
 public:
  /// `partitions` may be 0 when the count is discovered as data arrives
  /// (external-sort runs); grow with AddPartition.
  static Result<std::unique_ptr<SpillFrameStore>> Create(int partitions);

  /// Adds one empty partition, returning its id.
  int AddPartition() {
    parts_.emplace_back();
    return static_cast<int>(parts_.size()) - 1;
  }

  SpillFrameStore(const SpillFrameStore&) = delete;
  SpillFrameStore& operator=(const SpillFrameStore&) = delete;

  /// Serializes `chunk` as one frame of `partition`. Zero-row chunks still
  /// record the partition's schema (so empty partitions round-trip typed).
  Status Append(int partition, const col::TablePtr& chunk);

  /// All frames of a partition, decoded, in append order.
  Result<std::vector<col::TablePtr>> ReadPartition(int partition);

  /// Streaming cursor over a partition (one frame per Next). The store must
  /// outlive the stream. An empty partition with a known schema emits one
  /// zero-row chunk; one with no schema ends immediately.
  Result<std::unique_ptr<ChunkStream>> OpenPartition(int partition);

  int partitions() const { return static_cast<int>(parts_.size()); }
  int64_t partition_rows(int partition) const;
  int64_t partition_frames(int partition) const;
  uint64_t bytes_written() const { return file_->bytes_written(); }

 private:
  struct FrameRef {
    uint64_t offset = 0;
    uint64_t size = 0;
    int64_t rows = 0;
  };
  struct Partition {
    col::SchemaPtr schema;
    std::vector<FrameRef> frames;
    int64_t rows = 0;
  };
  class PartitionStream;

  explicit SpillFrameStore(std::unique_ptr<sim::SpillFile> file)
      : file_(std::move(file)) {}

  Result<col::TablePtr> ReadFrame(const Partition& part, const FrameRef& ref);

  std::unique_ptr<sim::SpillFile> file_;
  std::vector<Partition> parts_;
};

}  // namespace bento::eng

#endif  // BENTO_ENGINES_SPILL_FRAMES_H_
