#ifndef BENTO_ENGINES_POLARS_H_
#define BENTO_ENGINES_POLARS_H_

#include "engines/lazy_engine.h"

namespace bento::eng {

/// \brief Model of Polars: expression plans with projection/predicate
/// pushdown, streaming batched execution, morsel-parallel kernels, and
/// Arrow null-count metadata fast paths. Construct with lazy=false for the
/// eager comparison mode of Fig. 7.
class PolarsEngine : public LazyEngineBase {
 public:
  explicit PolarsEngine(bool lazy = true) : lazy_(lazy) {}

  const frame::EngineInfo& info() const override;
  bool lazy() const override { return lazy_; }
  frame::ExecPolicy ExecutionPolicy() const override;
  int64_t ChunkRows() const override {
    return ScaledBatchRows(128 * 1024);
  }
  double PlanOverheadSeconds() const override {
    // ~0.2 s of plan optimization at full scale.
    return 0.2 * sim::CostScale();
  }
  /// The lazy configuration maps onto Polars' streaming engine, whose
  /// breakers spill when memory is tight; eager mode materializes.
  bool StreamsBreakers() const override { return lazy_; }

 private:
  bool lazy_;
};

}  // namespace bento::eng

#endif  // BENTO_ENGINES_POLARS_H_
