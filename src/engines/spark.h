#ifndef BENTO_ENGINES_SPARK_H_
#define BENTO_ENGINES_SPARK_H_

#include "engines/lazy_engine.h"

namespace bento::eng {

/// \brief Model of Spark SQL in standalone mode: Catalyst-like rule
/// optimization, whole-stage chunked execution, and bounded-memory breakers
/// (partial aggregation, external merge sort, streaming dedup) — the
/// combination that makes it the only engine finishing the largest dataset
/// on the laptop configuration (Table V). A fixed per-plan overhead models
/// JVM/Catalyst dispatch, which the paper observes erasing the lazy gains
/// on small inputs.
class SparkSqlEngine : public LazyEngineBase {
 public:
  explicit SparkSqlEngine(bool lazy = true) : lazy_(lazy) {}

  const frame::EngineInfo& info() const override;
  bool lazy() const override { return lazy_; }
  frame::ExecPolicy ExecutionPolicy() const override;
  bool StreamsBreakers() const override { return true; }
  int64_t ChunkRows() const override {
    return ScaledBatchRows(128 * 1024);
  }
  double PlanOverheadSeconds() const override {
    // ~10 s of JVM/Catalyst fixed overhead at full scale.
    return 10.0 * sim::CostScale();
  }

 private:
  bool lazy_;
};

/// \brief Model of Pandas-on-Spark (Koalas): the Spark runtime behind a
/// Pandas API. Attaches a materialized index column at ingest, copies
/// intermediate results (opportunistic evaluation), and applies fewer
/// optimizer rules — faster than Pandas, heavier than SparkSQL.
class SparkPdEngine : public LazyEngineBase {
 public:
  explicit SparkPdEngine(bool lazy = true) : lazy_(lazy) {}

  const frame::EngineInfo& info() const override;
  bool lazy() const override { return lazy_; }
  frame::ExecPolicy ExecutionPolicy() const override;
  bool EnablePredicatePushdown() const override { return false; }
  int64_t ChunkRows() const override {
    return ScaledBatchRows(128 * 1024);
  }
  double PlanOverheadSeconds() const override {
    return 10.0 * sim::CostScale();
  }

  Result<LazySource> PrepareSource(LazySource source) const override;

 private:
  bool lazy_;
};

}  // namespace bento::eng

#endif  // BENTO_ENGINES_SPARK_H_
