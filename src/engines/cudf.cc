#include "engines/cudf.h"

#include "engines/chunk_stream.h"
#include "io/bcf.h"

namespace bento::eng {

using frame::ActionResult;
using frame::ExecPolicy;
using frame::Op;
using frame::OpKind;

namespace {

/// Installs the session's device pool as the allocation target, so buffers
/// created during CuDF operations live (and are budgeted) in simulated
/// device memory instead of host RAM. No-op without a GPU session.
class DeviceMemoryScope {
 public:
  DeviceMemoryScope()
      : scope_(sim::Session::Current() != nullptr &&
                       sim::Session::Current()->device_pool() != nullptr
                   ? std::make_unique<sim::MemoryScope>(
                         sim::Session::Current()->device_pool())
                   : nullptr) {}

 private:
  std::unique_ptr<sim::MemoryScope> scope_;
};

}  // namespace

const frame::EngineInfo& CudfEngine::info() const {
  static const frame::EngineInfo* info = new frame::EngineInfo{
      .id = "cudf",
      .paper_name = "CuDF",
      .multithreading = false,
      .gpu_acceleration = true,
      .resource_optimization = true,
      .lazy_evaluation = false,
      .cluster_deploy = false,
      .native_language = "C/C++ (CUDA)",
      .license = "Apache 2.0",
      .modeled_version = "22.12.0",
      .requirements = "CUDA",
  };
  return *info;
}

frame::ExecPolicy CudfEngine::NativePolicy() const {
  ExecPolicy policy;
  policy.null_probe = kern::NullProbe::kMetadata;
  policy.string_engine = kern::StringEngine::kColumnar;
  policy.parallel = false;  // parallelism is modeled by the device speedups
  policy.approx_quantile = true;
  policy.row_apply_object_bytes = 0;
  return policy;
}

sim::KernelClass CudfEngine::KernelClassFor(const Op& op) {
  switch (op.kind) {
    case OpKind::kSortValues:
    case OpKind::kDropDuplicates:
    case OpKind::kGroupByAgg:
    case OpKind::kMerge:
    case OpKind::kPivot:
      return sim::KernelClass::kSort;
    case OpKind::kSearchPattern:
    case OpKind::kStrLower:
    case OpKind::kGetDummies:
    case OpKind::kCatCodes:
    case OpKind::kToDatetime:
    case OpKind::kReplace:
      return sim::KernelClass::kString;
    case OpKind::kApplyRow:
      return sim::KernelClass::kScalar;  // UDF boundary: GPUs do not help
    case OpKind::kGetColumns:
    case OpKind::kGetDtypes:
      return sim::KernelClass::kScalar;
    default:
      return sim::KernelClass::kVector;
  }
}

Result<col::TablePtr> CudfEngine::RunTransform(const col::TablePtr& table,
                                               const Op& op,
                                               const ExecPolicy& policy) const {
  DeviceMemoryScope device_scope;
  Result<col::TablePtr> result = Status::Invalid("not run");
  BENTO_RETURN_NOT_OK(sim::DeviceKernel(KernelClassFor(op), [&]() -> Status {
    result = frame::ExecTransform(table, op, policy);
    return result.ok() ? Status::OK() : result.status();
  }));
  return result;
}

Result<ActionResult> CudfEngine::RunAction(const col::TablePtr& table,
                                           const Op& op,
                                           const ExecPolicy& policy) const {
  DeviceMemoryScope device_scope;
  Result<ActionResult> result = Status::Invalid("not run");
  BENTO_RETURN_NOT_OK(sim::DeviceKernel(KernelClassFor(op), [&]() -> Status {
    result = frame::ExecAction(table, op, policy);
    return result.ok() ? Status::OK() : result.status();
  }));
  return result;
}

Result<col::TablePtr> CudfEngine::DoReadCsv(
    const std::string& path, const io::CsvReadOptions& options) const {
  // CuDF parses CSV in bounded host chunks and lands columns directly on
  // the device: host memory stays O(chunk); the assembled table (and the
  // transient chunk copies) live in device memory.
  io::CsvReadOptions chunked = options;
  chunked.chunk_rows = 64 * 1024;
  BENTO_ASSIGN_OR_RETURN(auto reader, io::CsvChunkReader::Open(path, chunked));
  std::vector<col::TablePtr> device_chunks;
  uint64_t moved = 0;
  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, reader->Next());
    if (chunk == nullptr) break;
    DeviceMemoryScope device_scope;
    BENTO_ASSIGN_OR_RETURN(auto on_device, frame::DeepCopyTable(chunk));
    moved += on_device->ByteSize();
    device_chunks.push_back(std::move(on_device));
  }
  sim::DeviceTransfer(moved);
  if (device_chunks.empty()) {
    BENTO_ASSIGN_OR_RETURN(auto empty, col::Table::MakeEmpty(reader->schema()));
    return empty;
  }
  DeviceMemoryScope device_scope;
  return col::ConcatTables(device_chunks);
}

Result<col::TablePtr> CudfEngine::AfterIngest(col::TablePtr table) const {
  // Tables arriving from host memory (FromTable / BCF read) copy across
  // PCIe onto the device.
  if (sim::Session::Current() == nullptr ||
      sim::Session::Current()->device_pool() == nullptr) {
    return table;
  }
  if (sim::Session::Current()->device_pool() ==
      sim::MemoryPool::Current()) {
    return table;  // already device-resident (chunked CSV path)
  }
  sim::DeviceTransfer(table->ByteSize());
  DeviceMemoryScope device_scope;
  return frame::DeepCopyTable(table);
}

Status CudfEngine::WriteCsv(const frame::DataFrame::Ptr& frame,
                            const std::string& path) {
  BENTO_ASSIGN_OR_RETURN(auto table, frame->Collect());
  // CuDF stringifies the whole frame in device memory before copying it
  // out; the staging buffer is what blows the device-memory wall on the
  // largest dataset (Fig. 6d).
  sim::DeviceAllocation staging;
  BENTO_RETURN_NOT_OK(staging.Grow(table->ByteSize() * 2));
  sim::DeviceTransfer(table->ByteSize() * 2);  // device -> host text
  return io::WriteCsv(table, path);
}

Status CudfEngine::WriteBcf(const frame::DataFrame::Ptr& frame,
                            const std::string& path) {
  BENTO_ASSIGN_OR_RETURN(auto table, frame->Collect());
  // Columnar writes stream column chunks: staging is one column at a time.
  uint64_t max_column = 0;
  for (const auto& c : table->columns()) {
    max_column = std::max(max_column, c->ByteSize());
  }
  sim::DeviceAllocation staging;
  BENTO_RETURN_NOT_OK(staging.Grow(max_column));
  sim::DeviceTransfer(table->ByteSize());
  return io::WriteBcf(table, path);
}

}  // namespace bento::eng
