#include "engines/pandas.h"

namespace bento::eng {

const frame::EngineInfo& PandasEngine::info() const {
  static const frame::EngineInfo* info = new frame::EngineInfo{
      .id = "pandas",
      .paper_name = "Pandas",
      .multithreading = false,
      .gpu_acceleration = false,
      .resource_optimization = false,
      .lazy_evaluation = false,
      .cluster_deploy = false,
      .native_language = "Python",
      .license = "3-Clause BSD",
      .modeled_version = "1.5.1",
      .requirements = "",
  };
  return *info;
}

frame::ExecPolicy PandasEngine::NativePolicy() const {
  frame::ExecPolicy policy;
  policy.null_probe = kern::NullProbe::kScan;
  policy.string_engine = kern::StringEngine::kRowObjects;
  policy.parallel = false;
  policy.row_apply_object_bytes = 32;    // boxed cells in each row Series
  policy.row_apply_series_bytes = 8192;  // the Series object + churn per row
  policy.copy_outputs = true;            // eager intermediate materialization
  return policy;
}

const frame::EngineInfo& Pandas2Engine::info() const {
  static const frame::EngineInfo* info = new frame::EngineInfo{
      .id = "pandas2",
      .paper_name = "Pandas2",
      .multithreading = false,
      .gpu_acceleration = false,
      .resource_optimization = false,
      .lazy_evaluation = false,
      .cluster_deploy = false,
      .native_language = "Python",
      .license = "3-Clause BSD",
      .modeled_version = "2.0.0",
      .requirements = "",
  };
  return *info;
}

frame::ExecPolicy Pandas2Engine::NativePolicy() const {
  frame::ExecPolicy policy;
  policy.null_probe = kern::NullProbe::kScan;  // NumPy default backend
  policy.string_engine = kern::StringEngine::kColumnar;  // Arrow strings
  policy.parallel = false;
  policy.row_apply_object_bytes = 32;
  policy.row_apply_series_bytes = 8192;
  policy.copy_outputs = true;
  return policy;
}

}  // namespace bento::eng
