#ifndef BENTO_ENGINES_VAEX_H_
#define BENTO_ENGINES_VAEX_H_

#include "engines/lazy_engine.h"

namespace bento::eng {

/// \brief Model of Vaex: CSV sources convert once into an on-disk columnar
/// store (the HDF5-conversion pass) that is then streamed zero-copy-style,
/// so peak RAM stays O(chunk); column-wise expressions are virtual columns
/// evaluated lazily per chunk. Row-wise inspections (isna, outliers) go
/// through the value-scanning probe plus a per-chunk expression-graph
/// dispatch overhead — the paper's "much less efficient row-wise" finding.
class VaexEngine : public LazyEngineBase {
 public:
  const frame::EngineInfo& info() const override;
  frame::ExecPolicy ExecutionPolicy() const override;
  int64_t ChunkRows() const override {
    return ScaledBatchRows(64 * 1024, 1024);
  }
  double PerChunkOverheadSeconds() const override { return 300e-6; }
  /// Vaex memory-maps its converted store and keeps peak RAM O(chunk): the
  /// out-of-core configuration the paper credits with finishing every
  /// full-scale dataset on the laptop.
  bool StreamsBreakers() const override { return true; }
  bool MapsBcfSource() const override { return true; }

  Result<LazySource> PrepareSource(LazySource source) const override;
  double ActionPenaltySeconds(const frame::Op& op,
                              const col::TablePtr& table) const override;
};

}  // namespace bento::eng

#endif  // BENTO_ENGINES_VAEX_H_
