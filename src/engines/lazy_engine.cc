#include "engines/lazy_engine.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <set>

#include "engines/streaming_ops.h"
#include "kernels/encode.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "kernels/join.h"
#include "kernels/null_ops.h"
#include "plan/logical_plan.h"

namespace bento::eng {

using frame::ActionResult;
using frame::ExecPolicy;
using frame::Op;
using frame::OpKind;

int64_t ScaledBatchRows(int64_t full_scale_rows, int64_t min_rows) {
  // BENTO_CHUNK_ROWS pins the batch size outright (read per call, so tests
  // can sweep chunk sizes — including degenerate ones below the usual
  // minimum — without rebuilding engines).
  if (const char* env = std::getenv("BENTO_CHUNK_ROWS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<int64_t>(v);
  }
  const double scaled = static_cast<double>(full_scale_rows) * sim::CostScale();
  const int64_t rows = static_cast<int64_t>(scaled);
  return rows < min_rows ? min_rows : rows;
}

bool IsStreamable(const Op& op) {
  switch (op.kind) {
    case OpKind::kQuery:
    case OpKind::kCast:
    case OpKind::kDropColumns:
    case OpKind::kRename:
    case OpKind::kApplyExpr:
    case OpKind::kToDatetime:
    case OpKind::kDropNa:
    case OpKind::kStrLower:
    case OpKind::kRound:
    case OpKind::kReplace:
    case OpKind::kApplyRow:
      return true;
    case OpKind::kFillNa:
      return !op.fill_with_mean;  // global mean needs a full pass
    case OpKind::kFusedColumn:
      // A fused chain streams only if every component step does (a chain
      // holding catcodes needs the global dictionary pass).
      for (const Op& step : op.fused) {
        if (!IsStreamable(step)) return false;
      }
      return true;
    default:
      return false;
  }
}

namespace {

/// Stable lineage signature for common-subplan elimination: equal strings
/// must imply value-identical Collect() results. Opaque frames (non-lazy,
/// row_fn anywhere in the lineage, already-fused plans) return nullopt.
std::optional<std::string> LazySubplanSignature(
    const std::shared_ptr<frame::DataFrame>& df) {
  auto* lazy = dynamic_cast<LazyFrame*>(df.get());
  if (lazy == nullptr) return std::nullopt;
  std::string sig;
  const LazySource& src = lazy->source();
  switch (src.kind) {
    case LazySource::Kind::kTable: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "tbl:%p",
                    static_cast<const void*>(src.table.get()));
      sig += buf;
      break;
    }
    case LazySource::Kind::kCsv:
      sig += "csv:" + src.path;
      for (const std::string& d : src.csv_options.drop_columns) {
        sig += "!" + d;
      }
      break;
    case LazySource::Kind::kBcf:
      sig += "bcf:" + src.path;
      break;
  }
  for (const Op& op : lazy->plan()) {
    switch (op.kind) {
      case OpKind::kApplyRow:
      case OpKind::kFusedColumn:
        return std::nullopt;  // row_fn is opaque; fused args aren't rendered
      case OpKind::kMerge: {
        auto inner = LazySubplanSignature(op.other);
        if (!inner.has_value()) return std::nullopt;
        sig += "|merge(" + *inner + ";" + op.left_key + "=" + op.right_key +
               ";" + (op.join_type == kern::JoinType::kInner ? "i" : "l") + ")";
        break;
      }
      default:
        sig += "|" + plan::OpSummary(op);
        // The display string collapses scalar kinds (Int(0) and Double(0)
        // both render "0"); tag them so the signature doesn't.
        if (op.kind == OpKind::kFillNa || op.kind == OpKind::kReplace) {
          sig += "#" + std::to_string(static_cast<int>(op.scalar_a.kind())) +
                 "," + std::to_string(static_cast<int>(op.scalar_b.kind()));
        }
    }
  }
  return sig;
}

}  // namespace

plan::OptimizerPolicy LazyEngineBase::PlanPolicy() const {
  plan::OptimizerPolicy policy;
  policy.predicate_pushdown = EnablePredicatePushdown();
  policy.projection_pushdown = EnableProjectionPushdown();
  policy.filter_reorder = policy.predicate_pushdown;
  return policy;
}

std::vector<Op> LazyEngineBase::Optimize(std::vector<Op> ops) const {
  if (!optimizer_enabled_) return ops;
  plan::LogicalPlan lp;
  lp.ops = std::move(ops);
  plan::PlanContext ctx;
  ctx.subplan_signature = LazySubplanSignature;
  const plan::RuleDriver driver(PlanPolicy());
  const bool explain = std::getenv("BENTO_EXPLAIN") != nullptr;
  std::string before;
  if (explain) before = plan::Explain(lp.ops);
  lp = driver.Run(std::move(lp), ctx);
  if (explain) {
    std::fprintf(stderr,
                 "== %s: plan before ==\n%s== %s: plan after ==\n%s",
                 info().id.c_str(), before.c_str(), info().id.c_str(),
                 plan::Explain(lp.ops).c_str());
  }
  return std::move(lp.ops);
}

Result<std::unique_ptr<ChunkStream>> LazyEngineBase::OpenStream(
    const LazySource& source, const ScanSpec& scan) const {
  switch (source.kind) {
    case LazySource::Kind::kTable: {
      col::TablePtr table = source.table;
      if (!scan.drop_columns.empty()) {
        // Same semantics as the drop op this replaces, KeyError included.
        BENTO_ASSIGN_OR_RETURN(table, table->DropColumns(scan.drop_columns));
      }
      return std::unique_ptr<ChunkStream>(
          std::make_unique<TableChunkStream>(table, ChunkRows()));
    }
    case LazySource::Kind::kCsv: {
      io::CsvReadOptions options = source.csv_options;
      options.chunk_rows = ChunkRows();
      options.drop_columns.insert(options.drop_columns.end(),
                                  scan.drop_columns.begin(),
                                  scan.drop_columns.end());
      BENTO_ASSIGN_OR_RETURN(auto stream,
                             CsvChunkStream::Open(source.path, options));
      return std::unique_ptr<ChunkStream>(std::move(stream));
    }
    case LazySource::Kind::kBcf: {
      std::vector<std::string> keep;
      if (!scan.drop_columns.empty()) {
        BENTO_ASSIGN_OR_RETURN(auto reader, io::BcfReader::Open(source.path));
        std::set<std::string> dropped(scan.drop_columns.begin(),
                                      scan.drop_columns.end());
        for (const std::string& name : scan.drop_columns) {
          if (reader->schema()->IndexOf(name) < 0) {
            return Status::KeyError("no column named '", name, "'");
          }
        }
        for (const col::Field& f : reader->schema()->fields()) {
          if (dropped.count(f.name) == 0) keep.push_back(f.name);
        }
        if (keep.empty()) {
          // Every column dropped: an empty keep-list means "all" to the
          // reader, so emit the degenerate zero-width frame directly.
          BENTO_ASSIGN_OR_RETURN(
              auto empty, col::Table::MakeEmpty(std::make_shared<col::Schema>(
                              std::vector<col::Field>{})));
          return std::unique_ptr<ChunkStream>(
              std::make_unique<TableChunkStream>(std::move(empty),
                                                 ChunkRows()));
        }
      }
      io::BcfReadOptions ropts;
      ropts.use_mmap = MapsBcfSource();
      BENTO_ASSIGN_OR_RETURN(
          auto stream, BcfChunkStream::Open(source.path, std::move(keep),
                                            scan.predicates, ropts));
      return std::unique_ptr<ChunkStream>(std::move(stream));
    }
  }
  return Status::Invalid("bad source");
}

namespace {

/// Applies a run of streamable ops to every chunk of an inner stream.
class TransformingStream : public ChunkStream {
 public:
  TransformingStream(ChunkStream* inner, const Op* ops, size_t n_ops,
                     const ExecPolicy* policy, double per_chunk_penalty)
      : inner_(inner),
        ops_(ops),
        n_ops_(n_ops),
        policy_(policy),
        per_chunk_penalty_(per_chunk_penalty) {}

  Result<col::TablePtr> Next() override {
    BENTO_ASSIGN_OR_RETURN(auto chunk, inner_->Next());
    if (chunk == nullptr) return chunk;
    static obs::Counter* chunks =
        obs::MetricsRegistry::Global().counter("lazy.stream_chunks");
    chunks->Increment();
    static obs::Counter* rows =
        obs::MetricsRegistry::Global().counter("lazy.stream_rows");
    rows->Add(static_cast<uint64_t>(chunk->num_rows()));
    for (size_t k = 0; k < n_ops_; ++k) {
      BENTO_ASSIGN_OR_RETURN(chunk,
                             frame::ExecTransform(chunk, ops_[k], *policy_));
    }
    if (per_chunk_penalty_ > 0) sim::ChargePenalty(per_chunk_penalty_);
    return chunk;
  }

 private:
  ChunkStream* inner_;
  const Op* ops_;
  size_t n_ops_;
  const ExecPolicy* policy_;
  double per_chunk_penalty_;
};

}  // namespace

namespace {

/// Rough byte size of a source (file size for file-backed sources).
uint64_t EstimateSourceBytes(const LazySource& source) {
  switch (source.kind) {
    case LazySource::Kind::kTable:
      return source.table != nullptr ? source.table->ByteSize() : 0;
    case LazySource::Kind::kCsv:
    case LazySource::Kind::kBcf: {
      std::FILE* f = std::fopen(source.path.c_str(), "rb");
      if (f == nullptr) return 0;
      std::fseek(f, 0, SEEK_END);
      long size = std::ftell(f);
      std::fclose(f);
      return size > 0 ? static_cast<uint64_t>(size) : 0;
    }
  }
  return 0;
}

/// Spark-like spill policy: go out-of-core only under memory pressure
/// (several working copies would not fit the machine budget); otherwise the
/// in-memory operators are faster.
bool MemoryTight(const LazySource& source) {
  sim::Session* session = sim::Session::Current();
  if (session == nullptr || session->host_pool()->budget() == 0) return false;
  const uint64_t budget = session->host_pool()->budget();
  // Conservative: transforms can widen frames well past the source size.
  return EstimateSourceBytes(source) * 5 > budget;
}

}  // namespace

namespace {

/// Owns a spill file produced mid-plan and removes it when done.
struct TempSpill {
  std::string path;
  ~TempSpill() {
    if (!path.empty()) std::remove(path.c_str());
  }
};

}  // namespace

Result<col::TablePtr> LazyEngineBase::Execute(
    const LazySource& source, const std::vector<Op>& plan) const {
  BENTO_TRACE_SPAN_DYN(kEngine, info().id + ".execute");
  if (PlanOverheadSeconds() > 0) sim::ChargePenalty(PlanOverheadSeconds());
  std::vector<Op> ops = Optimize(plan);
  const ExecPolicy policy = ExecutionPolicy();

  // Morsel-driven pipeline shape for this execution (serial unless the
  // engine runs chunk-parallel kernels AND real execution is engaged). In
  // parallel mode every pipeline worker owns a whole chunk, so the
  // per-kernel morsel fan-out is switched off for work running ON workers —
  // chunk-level parallelism replaces it; nesting both would oversubscribe
  // the machine. Kernels invoked from the consumer thread (breaker merges,
  // whole-table tail ops) keep the full policy.
  const PipelineOptions pipe = ResolvePipelineOptions(policy);
  ExecPolicy worker_policy = policy;
  if (pipe.parallel()) worker_policy.parallel = false;

  // Bind the plan's leading ops into the physical scan: a leading drop
  // becomes a column-skipping read (the scan never materializes those
  // columns), and a leading filter over a BCF source contributes zone-map
  // predicates that prune whole row groups. The filter itself stays in the
  // plan — statistics only prune, the residual query still decides rows.
  ScanSpec scan;
  size_t start = 0;
  if (optimizer_enabled_) {
    const plan::OptimizerPolicy flags = PlanPolicy();
    if (flags.scan_pushdown && flags.projection_pushdown && !ops.empty() &&
        ops[0].kind == OpKind::kDropColumns) {
      scan.drop_columns = ops[0].columns;
      start = 1;
      static obs::Counter* bound =
          obs::MetricsRegistry::Global().counter("plan.rewrite.scan_projection");
      bound->Increment();
    }
    if (flags.scan_pushdown && flags.predicate_pushdown &&
        source.kind == LazySource::Kind::kBcf && start < ops.size() &&
        ops[start].kind == OpKind::kQuery) {
      scan.predicates = plan::ExtractScanPredicates(ops[start].text);
      if (!scan.predicates.empty()) {
        static obs::Counter* bound = obs::MetricsRegistry::Global().counter(
            "plan.rewrite.scan_predicates");
        bound->Increment();
      }
    }
  }

  // Nothing to do: chaining from a materialized frame with an empty plan
  // (common in per-op modes) must not re-chunk and re-concat the table —
  // that would double its footprint for no work.
  if (start >= ops.size() && source.kind == LazySource::Kind::kTable &&
      scan.drop_columns.empty() && source.table != nullptr) {
    return source.table;
  }

  BENTO_ASSIGN_OR_RETURN(auto stream, OpenStream(source, scan));

  // Background ingest: file-backed sources parse/decode ahead of compute on
  // a dedicated producer thread (in-memory tables chunk into zero-copy
  // slices; buffering views would add nothing).
  auto wrap_prefetch = [&pipe](std::unique_ptr<ChunkStream> s) {
    if (pipe.parallel() && pipe.prefetch_depth > 0) {
      s = std::make_unique<PrefetchChunkStream>(std::move(s),
                                                pipe.prefetch_depth);
    }
    return s;
  };
  if (source.kind != LazySource::Kind::kTable) {
    stream = wrap_prefetch(std::move(stream));
  }

  const bool stream_breakers = StreamsBreakers() && MemoryTight(source);

  // Under memory pressure a streaming engine materializes results
  // file-backed: anything bigger than a slice of the remaining budget
  // spills, compacts, and comes back as zero-copy mmap views that charge
  // nothing while resident (the Vaex memory-mapped frame / Spark on-disk
  // stage-output model).
  auto drain = [&](ChunkStream* s) -> Result<col::TablePtr> {
    if (stream_breakers) {
      sim::Session* session = sim::Session::Current();
      const uint64_t headroom =
          session != nullptr ? session->host_pool()->HeadroomBytes()
                             : UINT64_MAX;
      if (headroom != UINT64_MAX) {
        // The pipeline's worker budget also governs the materializer's
        // compaction pass, so the 1-vs-N worker A/B covers the whole drain.
        MaterializeOptions mat;
        if (pipe.parallel()) {
          mat.compact_workers = pipe.workers;
          mat.parallel_options = policy.parallel_options;
        }
        return MaterializeStreamMapped(s, headroom / 4, mat);
      }
    }
    return DrainStream(s);
  };

  // Streaming loop: breakers either stream (bounded memory) and hand the
  // pipeline a new stream, or materialize and hand it a table stream.
  col::TablePtr current;          // set when the plan ends or must materialize
  col::TablePtr stage_table;      // keep-alive for TableChunkStream sources
  std::vector<std::shared_ptr<TempSpill>> spills;
  size_t i = start;

  // A breaker's residual per-chunk map (two-pass encode, probe-side join):
  // in parallel mode it is carried into the NEXT stage's worker map instead
  // of wrapping the stream, so the encode/probe work runs on all pipeline
  // workers rather than serially inside the next stage's chunk claim.
  MappedStream::MapFn pending_map;

  while (current == nullptr) {
    // Maximal streamable run [i, j).
    size_t j = i;
    while (j < ops.size() && IsStreamable(ops[j])) ++j;

    // The run as a pure per-chunk map (parallel mode). Counters mirror the
    // serial TransformingStream; the per-chunk virtual-time overhead is
    // charged by the consumer thread once the stage's chunk count is known
    // (session clocks are consumer-thread state).
    MappedStream::MapFn chunk_map;
    if (pipe.parallel()) {
      chunk_map = [run_ops = ops.data() + i, n_run = j - i, &worker_policy,
                   carried = std::move(pending_map)](
                      col::TablePtr chunk) -> Result<col::TablePtr> {
        static obs::Counter* chunks =
            obs::MetricsRegistry::Global().counter("lazy.stream_chunks");
        chunks->Increment();
        static obs::Counter* rows =
            obs::MetricsRegistry::Global().counter("lazy.stream_rows");
        rows->Add(static_cast<uint64_t>(chunk->num_rows()));
        if (carried) {
          BENTO_ASSIGN_OR_RETURN(chunk, carried(std::move(chunk)));
        }
        for (size_t k = 0; k < n_run; ++k) {
          BENTO_ASSIGN_OR_RETURN(
              chunk, frame::ExecTransform(chunk, run_ops[k], worker_policy));
        }
        return chunk;
      };
      pending_map = nullptr;  // consumed (moved-from) by this stage's map
    }

    // A breaker with its own pipelined fold takes the raw stream plus the
    // run as a fused pre-map: transforms and partial aggregation ride ONE
    // parallel stage instead of nesting two drivers (whose workers would
    // otherwise steal chunks from each other).
    const bool fuse_into_breaker =
        pipe.parallel() && stream_breakers && j < ops.size() &&
        (ops[j].kind == OpKind::kGroupByAgg || ops[j].kind == OpKind::kPivot ||
         ops[j].kind == OpKind::kDropDuplicates);

    std::unique_ptr<TransformingStream> transformed;
    std::unique_ptr<ParallelPipelineDriver> par_stage;
    ChunkStream* run_stream = stream.get();
    if (!fuse_into_breaker) {
      if (pipe.parallel()) {
        par_stage = std::make_unique<ParallelPipelineDriver>(
            stream.get(),
            [chunk_map](col::TablePtr chunk, int64_t) {
              return chunk_map(std::move(chunk));
            },
            pipe);
        run_stream = par_stage.get();
      } else {
        transformed = std::make_unique<TransformingStream>(
            stream.get(), ops.data() + i, j - i, &policy,
            PerChunkOverheadSeconds());
        run_stream = transformed.get();
      }
    }

    // Per-chunk modeled overhead the pipeline workers could not charge.
    auto charge_chunks = [this](int64_t chunks) {
      const double penalty = PerChunkOverheadSeconds();
      if (penalty > 0 && chunks > 0) {
        sim::ChargePenalty(penalty * static_cast<double>(chunks));
      }
    };
    // Joins the stage's workers — nothing may still hold the old stream
    // when `stream` is replaced below — and settles its chunk accounting.
    auto close_stage = [&]() {
      if (par_stage == nullptr) return;
      const int64_t chunks = par_stage->chunks_claimed();
      par_stage.reset();
      charge_chunks(chunks);
    };

    if (j >= ops.size()) {
      BENTO_ASSIGN_OR_RETURN(current, drain(run_stream));
      close_stage();
      i = j;
      break;
    }
    const Op& breaker = ops[j];
    if (stream_breakers) {
      switch (breaker.kind) {
        case OpKind::kGroupByAgg: {
          StreamingGroupByOptions gb_options;
          int64_t fused_chunks = 0;
          if (fuse_into_breaker) {
            gb_options.pipeline = pipe;
            gb_options.pre_map = chunk_map;
            gb_options.chunks_claimed = &fused_chunks;
          }
          BENTO_ASSIGN_OR_RETURN(
              stage_table, StreamingGroupBy(run_stream, breaker.columns,
                                            breaker.aggs, policy, gb_options));
          charge_chunks(fused_chunks);
          close_stage();
          stream = std::make_unique<TableChunkStream>(stage_table, ChunkRows());
          i = j + 1;
          continue;
        }
        case OpKind::kPivot: {
          StreamingGroupByOptions gb_options;
          int64_t fused_chunks = 0;
          if (fuse_into_breaker) {
            gb_options.pipeline = pipe;
            gb_options.pre_map = chunk_map;
            gb_options.chunks_claimed = &fused_chunks;
          }
          BENTO_ASSIGN_OR_RETURN(
              stage_table,
              StreamingPivot(run_stream, breaker, policy, gb_options));
          charge_chunks(fused_chunks);
          close_stage();
          stream = std::make_unique<TableChunkStream>(stage_table, ChunkRows());
          i = j + 1;
          continue;
        }
        case OpKind::kDropDuplicates: {
          StreamingDedupOptions dd_options;
          int64_t fused_chunks = 0;
          if (fuse_into_breaker) {
            dd_options.pipeline = pipe;
            dd_options.pre_map = chunk_map;
            dd_options.chunks_claimed = &fused_chunks;
          }
          BENTO_ASSIGN_OR_RETURN(
              stage_table,
              StreamingDedup(run_stream, breaker.columns, dd_options));
          charge_chunks(fused_chunks);
          close_stage();
          stream = std::make_unique<TableChunkStream>(stage_table, ChunkRows());
          i = j + 1;
          continue;
        }
        case OpKind::kSortValues: {
          // Sorted output spills to a shuffle-style temp file and the plan
          // keeps streaming from disk: memory stays O(run + chunk).
          BENTO_ASSIGN_OR_RETURN(
              std::string path,
              ExternalSortToFile(run_stream, breaker.sort_keys, policy,
                                 std::max<int64_t>(ChunkRows() * 4, 64 * 1024)));
          close_stage();
          auto spill = std::make_shared<TempSpill>();
          spill->path = path;
          spills.push_back(spill);
          stage_table.reset();
          BENTO_ASSIGN_OR_RETURN(auto bcf_stream, BcfChunkStream::Open(path));
          stream = wrap_prefetch(std::move(bcf_stream));
          i = j + 1;
          continue;
        }
        case OpKind::kGetDummies:
        case OpKind::kCatCodes:
        case OpKind::kFillNa: {
          // Two-pass streaming: spill the transformed stream, derive the
          // global state (categories / dictionary / mean) from a first pass
          // over the spill, then keep streaming with a per-chunk map.
          if (breaker.kind == OpKind::kFillNa && !breaker.fill_with_mean) {
            break;  // plain fillna is already streamable
          }
          BENTO_ASSIGN_OR_RETURN(std::string path,
                                 SpillStreamToFile(run_stream));
          close_stage();
          auto spill = std::make_shared<TempSpill>();
          spill->path = path;
          spills.push_back(spill);
          stage_table.reset();

          MappedStream::MapFn map_fn;
          if (breaker.kind == OpKind::kGetDummies) {
            BENTO_ASSIGN_OR_RETURN(auto pass1_raw, BcfChunkStream::Open(path));
            auto pass1 = wrap_prefetch(std::move(pass1_raw));
            BENTO_ASSIGN_OR_RETURN(
                auto categories,
                StreamDistinctValues(pass1.get(), breaker.column));
            map_fn = [column = breaker.column,
                      categories = std::move(categories)](col::TablePtr chunk) {
              return kern::GetDummiesWithCategories(chunk, column, categories);
            };
          } else if (breaker.kind == OpKind::kCatCodes) {
            BENTO_ASSIGN_OR_RETURN(auto pass1_raw, BcfChunkStream::Open(path));
            auto pass1 = wrap_prefetch(std::move(pass1_raw));
            BENTO_ASSIGN_OR_RETURN(
                auto dict, StreamDistinctValues(pass1.get(), breaker.column));
            map_fn = [column = breaker.column, dict = std::move(dict)](
                         col::TablePtr chunk) -> Result<col::TablePtr> {
              BENTO_ASSIGN_OR_RETURN(auto values, chunk->GetColumn(column));
              BENTO_ASSIGN_OR_RETURN(auto codes,
                                     kern::CatCodesWithDict(values, dict));
              return chunk->SetColumn(column, codes);
            };
          } else {  // fillna with mean
            BENTO_ASSIGN_OR_RETURN(auto pass1_raw, BcfChunkStream::Open(path));
            auto pass1 = wrap_prefetch(std::move(pass1_raw));
            BENTO_ASSIGN_OR_RETURN(double mean,
                                   StreamColumnMean(pass1.get(), breaker.column));
            map_fn = [column = breaker.column,
                      mean](col::TablePtr chunk) -> Result<col::TablePtr> {
              BENTO_ASSIGN_OR_RETURN(auto values, chunk->GetColumn(column));
              col::Scalar fill = values->type() == col::TypeId::kInt64
                                     ? col::Scalar::Int(static_cast<int64_t>(mean))
                                     : col::Scalar::Double(mean);
              BENTO_ASSIGN_OR_RETURN(auto filled, kern::FillNull(values, fill));
              return chunk->SetColumn(column, filled);
            };
          }
          BENTO_ASSIGN_OR_RETURN(auto pass2, BcfChunkStream::Open(path));
          if (pipe.parallel()) {
            // Defer the encode map to the next stage's workers; the stream
            // itself is just the background-prefetched spill scan.
            pending_map = std::move(map_fn);
            stream = wrap_prefetch(std::move(pass2));
          } else {
            stream = wrap_prefetch(std::make_unique<MappedStream>(
                std::move(pass2), std::move(map_fn)));
          }
          i = j + 1;
          continue;
        }
        case OpKind::kMerge: {
          // Probe-streaming join: materialize the (small) build side once,
          // join each probe chunk independently.
          if (breaker.other == nullptr) {
            return Status::Invalid("merge without right side");
          }
          BENTO_ASSIGN_OR_RETURN(auto right, breaker.other->Collect());
          // A build side that would eat a large slice of the remaining
          // budget (its hash table costs a few multiples of the table)
          // takes the grace path: both sides hash-partition to spill and
          // join partition-by-partition.
          sim::Session* session = sim::Session::Current();
          const uint64_t headroom =
              session != nullptr ? session->host_pool()->HeadroomBytes()
                                 : UINT64_MAX;
          if (headroom != UINT64_MAX && right->ByteSize() * 3 > headroom) {
            kern::JoinOptions jopts;
            jopts.type = breaker.join_type;
            BENTO_ASSIGN_OR_RETURN(
                stage_table,
                GraceHashJoin(run_stream, right, breaker.left_key,
                              breaker.right_key, jopts));
            close_stage();
            stream =
                std::make_unique<TableChunkStream>(stage_table, ChunkRows());
            i = j + 1;
            continue;
          }
          // Drain into a temp spill so the probe side never materializes.
          BENTO_ASSIGN_OR_RETURN(std::string path,
                                 SpillStreamToFile(run_stream));
          close_stage();
          auto spill = std::make_shared<TempSpill>();
          spill->path = path;
          spills.push_back(spill);
          stage_table.reset();
          MappedStream::MapFn map_fn =
              [right, breaker](col::TablePtr chunk) -> Result<col::TablePtr> {
            kern::JoinOptions jopts;
            jopts.type = breaker.join_type;
            return kern::HashJoin(chunk, right, breaker.left_key,
                                  breaker.right_key, jopts);
          };
          BENTO_ASSIGN_OR_RETURN(auto pass, BcfChunkStream::Open(path));
          if (pipe.parallel()) {
            pending_map = std::move(map_fn);  // probe joins ride the workers
            stream = wrap_prefetch(std::move(pass));
          } else {
            stream = wrap_prefetch(std::make_unique<MappedStream>(
                std::move(pass), std::move(map_fn)));
          }
          i = j + 1;
          continue;
        }
        default:
          break;  // fall through to materialize
      }
    }
    // Materialize-then-execute breaker; subsequent ops go whole-table.
    BENTO_ASSIGN_OR_RETURN(current, drain(run_stream));
    close_stage();
    BENTO_ASSIGN_OR_RETURN(current,
                           frame::ExecTransform(current, breaker, policy));
    i = j + 1;
  }

  // Whole-table execution of the remainder.
  for (; i < ops.size(); ++i) {
    BENTO_ASSIGN_OR_RETURN(current,
                           frame::ExecTransform(current, ops[i], policy));
  }
  return current;
}

Result<ActionResult> LazyEngineBase::ExecuteAction(
    const LazySource& source, const std::vector<Op>& plan,
    const Op& action) const {
  BENTO_TRACE_SPAN_DYN(kEngine, info().id + ".execute_action");
  const ExecPolicy policy = ExecutionPolicy();

  bool fully_streamable = true;
  for (const Op& op : plan) {
    if (!IsStreamable(op)) {
      fully_streamable = false;
      break;
    }
  }
  // Quantile-based actions need multi-pass streaming; only the counting
  // actions stream in one pass here. Everything else materializes.
  const bool streaming_action =
      action.kind == OpKind::kIsNa || action.kind == OpKind::kSearchPattern ||
      action.kind == OpKind::kGetColumns || action.kind == OpKind::kGetDtypes;
  if (!fully_streamable || !streaming_action) {
    BENTO_ASSIGN_OR_RETURN(auto table, Execute(source, plan));
    const double penalty = ActionPenaltySeconds(action, table);
    if (penalty > 0) sim::ChargePenalty(penalty);
    return frame::ExecAction(table, action, policy);
  }

  if (PlanOverheadSeconds() > 0) sim::ChargePenalty(PlanOverheadSeconds());
  std::vector<Op> ops = Optimize(plan);

  // Same pipeline shape as Execute: transforms run on workers (chunk-level
  // parallelism, so the per-kernel fan-out is off), the action fold stays
  // on the calling thread in stream order.
  const PipelineOptions pipe = ResolvePipelineOptions(policy);
  ExecPolicy worker_policy = policy;
  if (pipe.parallel()) worker_policy.parallel = false;
  BENTO_ASSIGN_OR_RETURN(auto stream, OpenStream(source, ScanSpec{}));
  if (pipe.parallel() && pipe.prefetch_depth > 0 &&
      source.kind != LazySource::Kind::kTable) {
    stream = std::make_unique<PrefetchChunkStream>(std::move(stream),
                                                   pipe.prefetch_depth);
  }
  std::unique_ptr<ChunkStream> transformed;
  ParallelPipelineDriver* par_stage = nullptr;
  if (pipe.parallel()) {
    auto stage = std::make_unique<ParallelPipelineDriver>(
        stream.get(),
        [run_ops = ops.data(), n_run = ops.size(), &worker_policy](
            col::TablePtr chunk, int64_t) -> Result<col::TablePtr> {
          for (size_t k = 0; k < n_run; ++k) {
            BENTO_ASSIGN_OR_RETURN(
                chunk, frame::ExecTransform(chunk, run_ops[k], worker_policy));
          }
          return chunk;
        },
        pipe);
    par_stage = stage.get();
    transformed = std::move(stage);
  } else {
    transformed = std::make_unique<TransformingStream>(
        stream.get(), ops.data(), ops.size(), &policy,
        PerChunkOverheadSeconds());
  }

  ActionResult result;
  bool first = true;
  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, transformed->Next());
    if (chunk == nullptr) break;
    const double penalty = ActionPenaltySeconds(action, chunk);
    if (penalty > 0) sim::ChargePenalty(penalty);
    BENTO_ASSIGN_OR_RETURN(auto partial,
                           frame::ExecAction(chunk, action, policy));
    if (first) {
      result = partial;
      first = false;
      if (action.kind == OpKind::kGetColumns ||
          action.kind == OpKind::kGetDtypes) {
        break;  // schema-only actions need one chunk
      }
      continue;
    }
    if (action.kind == OpKind::kIsNa) {
      for (size_t c = 0; c < result.counts.size() && c < partial.counts.size();
           ++c) {
        result.counts[c] += partial.counts[c];
      }
    } else if (action.kind == OpKind::kSearchPattern) {
      result.count += partial.count;
    }
  }
  if (par_stage != nullptr) {
    const double per_chunk = PerChunkOverheadSeconds();
    if (per_chunk > 0 && par_stage->chunks_claimed() > 0) {
      sim::ChargePenalty(per_chunk *
                         static_cast<double>(par_stage->chunks_claimed()));
    }
  }
  if (first) return Status::Invalid("action over an empty stream");
  return result;
}

LazyFrame::LazyFrame(LazySource source, std::vector<frame::Op> plan,
                     const LazyEngineBase* engine)
    : source_(std::move(source)),
      plan_(std::move(plan)),
      engine_(engine),
      // Null for stack-allocated engines: the caller owns the lifetime then.
      engine_keepalive_(engine->weak_from_this().lock()) {}

Result<frame::DataFrame::Ptr> LazyFrame::Apply(const Op& op) {
  if (engine_->lazy()) {
    // If this plan was already forced (an action or an explicit Collect
    // materialized it), chain from the cached result instead of replaying
    // the whole lineage from the source — the caching real lazy engines
    // apply at forced boundaries.
    if (cache_ != nullptr) {
      LazySource cached;
      cached.kind = LazySource::Kind::kTable;
      cached.table = cache_;
      cached.owned_resource = source_.owned_resource;
      return std::static_pointer_cast<frame::DataFrame>(
          std::make_shared<LazyFrame>(std::move(cached), std::vector<Op>{op},
                                      engine_));
    }
    std::vector<Op> next = plan_;
    next.push_back(op);
    return std::static_pointer_cast<frame::DataFrame>(
        std::make_shared<LazyFrame>(source_, std::move(next), engine_));
  }
  // Eager mode: run everything now and hold the materialized result.
  BENTO_ASSIGN_OR_RETURN(auto table, Collect());
  BENTO_ASSIGN_OR_RETURN(
      auto result, frame::ExecTransform(table, op, engine_->ExecutionPolicy()));
  LazySource source;
  source.kind = LazySource::Kind::kTable;
  source.table = std::move(result);
  return std::static_pointer_cast<frame::DataFrame>(
      std::make_shared<LazyFrame>(std::move(source), std::vector<Op>{},
                                  engine_));
}

Result<ActionResult> LazyFrame::RunAction(const Op& op) {
  if (engine_->lazy() && cache_ == nullptr &&
      source_.kind != LazySource::Kind::kTable) {
    // Lineage semantics: actions re-stream the plan without materializing
    // the frame (and without populating the cache) — the memory behaviour
    // behind the streaming engines' small minimum configurations.
    BENTO_ASSIGN_OR_RETURN(auto result, engine_->ExecuteAction(source_, plan_, op));
    return result;
  }
  BENTO_ASSIGN_OR_RETURN(auto table, Collect());
  const double penalty = engine_->ActionPenaltySeconds(op, table);
  if (penalty > 0) sim::ChargePenalty(penalty);
  return frame::ExecAction(table, op, engine_->ExecutionPolicy());
}

Result<col::TablePtr> LazyFrame::Collect() {
  if (cache_ != nullptr) return cache_;
  if (source_.kind == LazySource::Kind::kTable && plan_.empty()) {
    cache_ = source_.table;
    return cache_;
  }
  BENTO_ASSIGN_OR_RETURN(cache_, engine_->Execute(source_, plan_));
  return cache_;
}

Result<frame::DataFrame::Ptr> LazyEngineBase::ReadCsv(
    const std::string& path, const io::CsvReadOptions& options) {
  LazySource source;
  source.kind = LazySource::Kind::kCsv;
  source.path = path;
  source.csv_options = options;
  BENTO_ASSIGN_OR_RETURN(source, PrepareSource(std::move(source)));
  auto frame =
      std::make_shared<LazyFrame>(std::move(source), std::vector<Op>{}, this);
  if (!lazy()) {
    // Eager mode ingests immediately.
    BENTO_RETURN_NOT_OK(frame->Collect().status());
  }
  return std::static_pointer_cast<frame::DataFrame>(frame);
}

Result<frame::DataFrame::Ptr> LazyEngineBase::ReadBcf(const std::string& path) {
  LazySource source;
  source.kind = LazySource::Kind::kBcf;
  source.path = path;
  BENTO_ASSIGN_OR_RETURN(source, PrepareSource(std::move(source)));
  auto frame =
      std::make_shared<LazyFrame>(std::move(source), std::vector<Op>{}, this);
  if (!lazy()) {
    BENTO_RETURN_NOT_OK(frame->Collect().status());
  }
  return std::static_pointer_cast<frame::DataFrame>(frame);
}

Status LazyEngineBase::WriteCsv(const frame::DataFrame::Ptr& frame,
                                const std::string& path) {
  BENTO_ASSIGN_OR_RETURN(auto table, frame->Collect());
  if (ExecutionPolicy().parallel) {
    return io::WriteCsvParallel(table, path, {},
                                ExecutionPolicy().parallel_options);
  }
  return io::WriteCsv(table, path);
}

Status LazyEngineBase::WriteBcf(const frame::DataFrame::Ptr& frame,
                                const std::string& path) {
  BENTO_ASSIGN_OR_RETURN(auto table, frame->Collect());
  return io::WriteBcf(table, path);
}

Result<frame::DataFrame::Ptr> LazyEngineBase::FromTable(col::TablePtr table) {
  LazySource source;
  source.kind = LazySource::Kind::kTable;
  source.table = std::move(table);
  BENTO_ASSIGN_OR_RETURN(source, PrepareSource(std::move(source)));
  return std::static_pointer_cast<frame::DataFrame>(
      std::make_shared<LazyFrame>(std::move(source), std::vector<Op>{}, this));
}

}  // namespace bento::eng
