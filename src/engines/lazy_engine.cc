#include "engines/lazy_engine.h"

#include <cstdio>
#include <set>

#include "engines/streaming_ops.h"
#include "kernels/encode.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "kernels/join.h"
#include "kernels/null_ops.h"
#include "expr/parser.h"

namespace bento::eng {

using frame::ActionResult;
using frame::ExecPolicy;
using frame::Op;
using frame::OpKind;

int64_t ScaledBatchRows(int64_t full_scale_rows, int64_t min_rows) {
  const double scaled = static_cast<double>(full_scale_rows) * sim::CostScale();
  const int64_t rows = static_cast<int64_t>(scaled);
  return rows < min_rows ? min_rows : rows;
}

bool IsStreamable(const Op& op) {
  switch (op.kind) {
    case OpKind::kQuery:
    case OpKind::kCast:
    case OpKind::kDropColumns:
    case OpKind::kRename:
    case OpKind::kApplyExpr:
    case OpKind::kToDatetime:
    case OpKind::kDropNa:
    case OpKind::kStrLower:
    case OpKind::kRound:
    case OpKind::kReplace:
    case OpKind::kApplyRow:
      return true;
    case OpKind::kFillNa:
      return !op.fill_with_mean;  // global mean needs a full pass
    default:
      return false;
  }
}

namespace {

/// Columns an op reads or writes (false when the op touches the whole row,
/// i.e. is opaque to column analysis).
bool OpColumnFootprint(const Op& op, std::set<std::string>* touched) {
  switch (op.kind) {
    case OpKind::kCast:
    case OpKind::kStrLower:
    case OpKind::kRound:
    case OpKind::kFillNa:
    case OpKind::kReplace:
    case OpKind::kToDatetime:
      touched->insert(op.column);
      return true;
    case OpKind::kApplyExpr: {
      auto parsed = expr::ParseExpr(op.text);
      if (!parsed.ok()) return false;
      parsed.ValueOrDie()->CollectColumns(touched);
      touched->insert(op.new_name);
      return true;
    }
    case OpKind::kDropColumns:
      touched->insert(op.columns.begin(), op.columns.end());
      return true;
    case OpKind::kSortValues:
      for (const auto& key : op.sort_keys) touched->insert(key.column);
      return true;
    case OpKind::kDropNa:
      if (op.columns.empty()) return false;  // inspects every column
      touched->insert(op.columns.begin(), op.columns.end());
      return true;
    default:
      return false;
  }
}

std::set<std::string> QueryReferences(const Op& query) {
  std::set<std::string> refs;
  auto parsed = expr::ParseExpr(query.text);
  if (parsed.ok()) parsed.ValueOrDie()->CollectColumns(&refs);
  return refs;
}

bool Intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  for (const std::string& x : a) {
    if (b.count(x) > 0) return true;
  }
  return false;
}

/// Can `query` (a kQuery op) hop before `prev`? Sound rules only: the swap
/// must preserve both results.
bool QueryCanHopBefore(const Op& query, const Op& prev,
                       const std::set<std::string>& refs) {
  switch (prev.kind) {
    case OpKind::kSortValues:
      return true;  // content-based filter commutes with reordering
    case OpKind::kDropNa:
      return true;  // two row filters commute
    case OpKind::kCast:
    case OpKind::kStrLower:
    case OpKind::kRound:
    case OpKind::kToDatetime:
    case OpKind::kReplace:
      return refs.count(prev.column) == 0;
    case OpKind::kFillNa:
      // fillna changes null rows; safe only when the filter ignores the
      // column entirely (and fillna-with-mean depends on the row set the
      // filter would change).
      return !prev.fill_with_mean && refs.count(prev.column) == 0;
    case OpKind::kApplyExpr:
      return refs.count(prev.new_name) == 0;
    case OpKind::kApplyRow:
      return refs.count(prev.new_name) == 0;
    case OpKind::kDropColumns:
      // Filter first, then drop: always fine (the filter's columns exist
      // before the drop; if the drop removed one of them the original plan
      // was invalid anyway).
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<Op> LazyEngineBase::Optimize(std::vector<Op> plan) const {
  if (EnablePredicatePushdown()) {
    // Bubble each filter toward the source through ops it commutes with.
    for (size_t i = 1; i < plan.size(); ++i) {
      if (plan[i].kind != OpKind::kQuery) continue;
      std::set<std::string> refs = QueryReferences(plan[i]);
      size_t j = i;
      while (j > 0 && QueryCanHopBefore(plan[j], plan[j - 1], refs)) {
        std::swap(plan[j], plan[j - 1]);
        --j;
      }
    }
  }
  if (EnableProjectionPushdown()) {
    // Pull column drops toward the source past ops that don't touch the
    // dropped columns.
    for (size_t i = 1; i < plan.size(); ++i) {
      if (plan[i].kind != OpKind::kDropColumns) continue;
      std::set<std::string> dropped(plan[i].columns.begin(),
                                    plan[i].columns.end());
      size_t j = i;
      while (j > 0) {
        const Op& prev = plan[j - 1];
        if (prev.kind == OpKind::kQuery) {
          if (Intersects(QueryReferences(prev), dropped)) break;
        } else {
          std::set<std::string> touched;
          if (!OpColumnFootprint(prev, &touched)) break;
          if (Intersects(touched, dropped)) break;
        }
        std::swap(plan[j], plan[j - 1]);
        --j;
      }
    }
  }
  return plan;
}

Result<std::unique_ptr<ChunkStream>> LazyEngineBase::OpenStream(
    const LazySource& source,
    const std::vector<std::string>& projection) const {
  switch (source.kind) {
    case LazySource::Kind::kTable: {
      col::TablePtr table = source.table;
      if (!projection.empty()) {
        // Complement-projection: keep everything except what the pushed
        // drop removed — `projection` is the keep list.
        BENTO_ASSIGN_OR_RETURN(table, table->SelectColumns(projection));
      }
      return std::unique_ptr<ChunkStream>(
          std::make_unique<TableChunkStream>(table, ChunkRows()));
    }
    case LazySource::Kind::kCsv: {
      io::CsvReadOptions options = source.csv_options;
      options.chunk_rows = ChunkRows();
      BENTO_ASSIGN_OR_RETURN(auto stream,
                             CsvChunkStream::Open(source.path, options));
      return std::unique_ptr<ChunkStream>(std::move(stream));
    }
    case LazySource::Kind::kBcf: {
      BENTO_ASSIGN_OR_RETURN(auto stream,
                             BcfChunkStream::Open(source.path, projection));
      return std::unique_ptr<ChunkStream>(std::move(stream));
    }
  }
  return Status::Invalid("bad source");
}

namespace {

/// Applies a run of streamable ops to every chunk of an inner stream.
class TransformingStream : public ChunkStream {
 public:
  TransformingStream(ChunkStream* inner, const Op* ops, size_t n_ops,
                     const ExecPolicy* policy, double per_chunk_penalty)
      : inner_(inner),
        ops_(ops),
        n_ops_(n_ops),
        policy_(policy),
        per_chunk_penalty_(per_chunk_penalty) {}

  Result<col::TablePtr> Next() override {
    BENTO_ASSIGN_OR_RETURN(auto chunk, inner_->Next());
    if (chunk == nullptr) return chunk;
    static obs::Counter* chunks =
        obs::MetricsRegistry::Global().counter("lazy.stream_chunks");
    chunks->Increment();
    static obs::Counter* rows =
        obs::MetricsRegistry::Global().counter("lazy.stream_rows");
    rows->Add(static_cast<uint64_t>(chunk->num_rows()));
    for (size_t k = 0; k < n_ops_; ++k) {
      BENTO_ASSIGN_OR_RETURN(chunk,
                             frame::ExecTransform(chunk, ops_[k], *policy_));
    }
    if (per_chunk_penalty_ > 0) sim::ChargePenalty(per_chunk_penalty_);
    return chunk;
  }

 private:
  ChunkStream* inner_;
  const Op* ops_;
  size_t n_ops_;
  const ExecPolicy* policy_;
  double per_chunk_penalty_;
};

}  // namespace

namespace {

/// Rough byte size of a source (file size for file-backed sources).
uint64_t EstimateSourceBytes(const LazySource& source) {
  switch (source.kind) {
    case LazySource::Kind::kTable:
      return source.table != nullptr ? source.table->ByteSize() : 0;
    case LazySource::Kind::kCsv:
    case LazySource::Kind::kBcf: {
      std::FILE* f = std::fopen(source.path.c_str(), "rb");
      if (f == nullptr) return 0;
      std::fseek(f, 0, SEEK_END);
      long size = std::ftell(f);
      std::fclose(f);
      return size > 0 ? static_cast<uint64_t>(size) : 0;
    }
  }
  return 0;
}

/// Spark-like spill policy: go out-of-core only under memory pressure
/// (several working copies would not fit the machine budget); otherwise the
/// in-memory operators are faster.
bool MemoryTight(const LazySource& source) {
  sim::Session* session = sim::Session::Current();
  if (session == nullptr || session->host_pool()->budget() == 0) return false;
  const uint64_t budget = session->host_pool()->budget();
  // Conservative: transforms can widen frames well past the source size.
  return EstimateSourceBytes(source) * 5 > budget;
}

}  // namespace

namespace {

/// Owns a spill file produced mid-plan and removes it when done.
struct TempSpill {
  std::string path;
  ~TempSpill() {
    if (!path.empty()) std::remove(path.c_str());
  }
};

}  // namespace

Result<col::TablePtr> LazyEngineBase::Execute(
    const LazySource& source, const std::vector<Op>& plan) const {
  BENTO_TRACE_SPAN_DYN(kEngine, info().id + ".execute");
  if (PlanOverheadSeconds() > 0) sim::ChargePenalty(PlanOverheadSeconds());
  std::vector<Op> ops = Optimize(plan);
  const ExecPolicy policy = ExecutionPolicy();

  // Translate a leading column drop into a real projection when the source
  // format can skip bytes (BCF).
  std::vector<std::string> projection;
  size_t start = 0;
  if (!ops.empty() && ops[0].kind == OpKind::kDropColumns &&
      source.kind == LazySource::Kind::kBcf && EnableProjectionPushdown()) {
    BENTO_ASSIGN_OR_RETURN(auto reader, io::BcfReader::Open(source.path));
    std::set<std::string> dropped(ops[0].columns.begin(), ops[0].columns.end());
    for (const col::Field& f : reader->schema()->fields()) {
      if (dropped.count(f.name) == 0) projection.push_back(f.name);
    }
    start = 1;
  }

  BENTO_ASSIGN_OR_RETURN(auto stream, OpenStream(source, projection));
  const bool stream_breakers = StreamsBreakers() && MemoryTight(source);

  // Streaming loop: breakers either stream (bounded memory) and hand the
  // pipeline a new stream, or materialize and hand it a table stream.
  col::TablePtr current;          // set when the plan ends or must materialize
  col::TablePtr stage_table;      // keep-alive for TableChunkStream sources
  std::vector<std::shared_ptr<TempSpill>> spills;
  size_t i = start;

  while (current == nullptr) {
    // Maximal streamable run [i, j).
    size_t j = i;
    while (j < ops.size() && IsStreamable(ops[j])) ++j;
    auto transformed = std::make_unique<TransformingStream>(
        stream.get(), ops.data() + i, j - i, &policy,
        PerChunkOverheadSeconds());
    if (j >= ops.size()) {
      BENTO_ASSIGN_OR_RETURN(current, DrainStream(transformed.get()));
      i = j;
      break;
    }
    const Op& breaker = ops[j];
    if (stream_breakers) {
      switch (breaker.kind) {
        case OpKind::kGroupByAgg: {
          BENTO_ASSIGN_OR_RETURN(
              stage_table, StreamingGroupBy(transformed.get(), breaker.columns,
                                            breaker.aggs, policy));
          stream = std::make_unique<TableChunkStream>(stage_table, ChunkRows());
          i = j + 1;
          continue;
        }
        case OpKind::kPivot: {
          BENTO_ASSIGN_OR_RETURN(
              stage_table, StreamingPivot(transformed.get(), breaker, policy));
          stream = std::make_unique<TableChunkStream>(stage_table, ChunkRows());
          i = j + 1;
          continue;
        }
        case OpKind::kDropDuplicates: {
          BENTO_ASSIGN_OR_RETURN(
              stage_table, StreamingDedup(transformed.get(), breaker.columns));
          stream = std::make_unique<TableChunkStream>(stage_table, ChunkRows());
          i = j + 1;
          continue;
        }
        case OpKind::kSortValues: {
          // Sorted output spills to a shuffle-style temp file and the plan
          // keeps streaming from disk: memory stays O(run + chunk).
          BENTO_ASSIGN_OR_RETURN(
              std::string path,
              ExternalSortToFile(transformed.get(), breaker.sort_keys, policy,
                                 std::max<int64_t>(ChunkRows() * 4, 64 * 1024)));
          auto spill = std::make_shared<TempSpill>();
          spill->path = path;
          spills.push_back(spill);
          stage_table.reset();
          BENTO_ASSIGN_OR_RETURN(auto bcf_stream, BcfChunkStream::Open(path));
          stream = std::move(bcf_stream);
          i = j + 1;
          continue;
        }
        case OpKind::kGetDummies:
        case OpKind::kCatCodes:
        case OpKind::kFillNa: {
          // Two-pass streaming: spill the transformed stream, derive the
          // global state (categories / dictionary / mean) from a first pass
          // over the spill, then keep streaming with a per-chunk map.
          if (breaker.kind == OpKind::kFillNa && !breaker.fill_with_mean) {
            break;  // plain fillna is already streamable
          }
          BENTO_ASSIGN_OR_RETURN(std::string path,
                                 SpillStreamToFile(transformed.get()));
          auto spill = std::make_shared<TempSpill>();
          spill->path = path;
          spills.push_back(spill);
          stage_table.reset();

          MappedStream::MapFn map_fn;
          if (breaker.kind == OpKind::kGetDummies) {
            BENTO_ASSIGN_OR_RETURN(auto pass1, BcfChunkStream::Open(path));
            BENTO_ASSIGN_OR_RETURN(
                auto categories,
                StreamDistinctValues(pass1.get(), breaker.column));
            map_fn = [column = breaker.column,
                      categories = std::move(categories)](col::TablePtr chunk) {
              return kern::GetDummiesWithCategories(chunk, column, categories);
            };
          } else if (breaker.kind == OpKind::kCatCodes) {
            BENTO_ASSIGN_OR_RETURN(auto pass1, BcfChunkStream::Open(path));
            BENTO_ASSIGN_OR_RETURN(
                auto dict, StreamDistinctValues(pass1.get(), breaker.column));
            map_fn = [column = breaker.column, dict = std::move(dict)](
                         col::TablePtr chunk) -> Result<col::TablePtr> {
              BENTO_ASSIGN_OR_RETURN(auto values, chunk->GetColumn(column));
              BENTO_ASSIGN_OR_RETURN(auto codes,
                                     kern::CatCodesWithDict(values, dict));
              return chunk->SetColumn(column, codes);
            };
          } else {  // fillna with mean
            BENTO_ASSIGN_OR_RETURN(auto pass1, BcfChunkStream::Open(path));
            BENTO_ASSIGN_OR_RETURN(double mean,
                                   StreamColumnMean(pass1.get(), breaker.column));
            map_fn = [column = breaker.column,
                      mean](col::TablePtr chunk) -> Result<col::TablePtr> {
              BENTO_ASSIGN_OR_RETURN(auto values, chunk->GetColumn(column));
              col::Scalar fill = values->type() == col::TypeId::kInt64
                                     ? col::Scalar::Int(static_cast<int64_t>(mean))
                                     : col::Scalar::Double(mean);
              BENTO_ASSIGN_OR_RETURN(auto filled, kern::FillNull(values, fill));
              return chunk->SetColumn(column, filled);
            };
          }
          BENTO_ASSIGN_OR_RETURN(auto pass2, BcfChunkStream::Open(path));
          stream = std::make_unique<MappedStream>(std::move(pass2),
                                                  std::move(map_fn));
          i = j + 1;
          continue;
        }
        case OpKind::kMerge: {
          // Probe-streaming join: materialize the (small) build side once,
          // join each probe chunk independently.
          if (breaker.other == nullptr) {
            return Status::Invalid("merge without right side");
          }
          BENTO_ASSIGN_OR_RETURN(auto right, breaker.other->Collect());
          // Drain into a temp spill so the probe side never materializes.
          BENTO_ASSIGN_OR_RETURN(std::string path,
                                 SpillStreamToFile(transformed.get()));
          auto spill = std::make_shared<TempSpill>();
          spill->path = path;
          spills.push_back(spill);
          stage_table.reset();
          MappedStream::MapFn map_fn =
              [right, breaker](col::TablePtr chunk) -> Result<col::TablePtr> {
            kern::JoinOptions jopts;
            jopts.type = breaker.join_type;
            return kern::HashJoin(chunk, right, breaker.left_key,
                                  breaker.right_key, jopts);
          };
          BENTO_ASSIGN_OR_RETURN(auto pass, BcfChunkStream::Open(path));
          stream = std::make_unique<MappedStream>(std::move(pass),
                                                  std::move(map_fn));
          i = j + 1;
          continue;
        }
        default:
          break;  // fall through to materialize
      }
    }
    // Materialize-then-execute breaker; subsequent ops go whole-table.
    BENTO_ASSIGN_OR_RETURN(current, DrainStream(transformed.get()));
    BENTO_ASSIGN_OR_RETURN(current,
                           frame::ExecTransform(current, breaker, policy));
    i = j + 1;
  }

  // Whole-table execution of the remainder.
  for (; i < ops.size(); ++i) {
    BENTO_ASSIGN_OR_RETURN(current,
                           frame::ExecTransform(current, ops[i], policy));
  }
  return current;
}

Result<ActionResult> LazyEngineBase::ExecuteAction(
    const LazySource& source, const std::vector<Op>& plan,
    const Op& action) const {
  BENTO_TRACE_SPAN_DYN(kEngine, info().id + ".execute_action");
  const ExecPolicy policy = ExecutionPolicy();

  bool fully_streamable = true;
  for (const Op& op : plan) {
    if (!IsStreamable(op)) {
      fully_streamable = false;
      break;
    }
  }
  // Quantile-based actions need multi-pass streaming; only the counting
  // actions stream in one pass here. Everything else materializes.
  const bool streaming_action =
      action.kind == OpKind::kIsNa || action.kind == OpKind::kSearchPattern ||
      action.kind == OpKind::kGetColumns || action.kind == OpKind::kGetDtypes;
  if (!fully_streamable || !streaming_action) {
    BENTO_ASSIGN_OR_RETURN(auto table, Execute(source, plan));
    const double penalty = ActionPenaltySeconds(action, table);
    if (penalty > 0) sim::ChargePenalty(penalty);
    return frame::ExecAction(table, action, policy);
  }

  if (PlanOverheadSeconds() > 0) sim::ChargePenalty(PlanOverheadSeconds());
  std::vector<Op> ops = Optimize(plan);
  BENTO_ASSIGN_OR_RETURN(auto stream, OpenStream(source, {}));
  TransformingStream transformed(stream.get(), ops.data(), ops.size(), &policy,
                                 PerChunkOverheadSeconds());

  ActionResult result;
  bool first = true;
  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, transformed.Next());
    if (chunk == nullptr) break;
    const double penalty = ActionPenaltySeconds(action, chunk);
    if (penalty > 0) sim::ChargePenalty(penalty);
    BENTO_ASSIGN_OR_RETURN(auto partial,
                           frame::ExecAction(chunk, action, policy));
    if (first) {
      result = partial;
      first = false;
      if (action.kind == OpKind::kGetColumns ||
          action.kind == OpKind::kGetDtypes) {
        break;  // schema-only actions need one chunk
      }
      continue;
    }
    if (action.kind == OpKind::kIsNa) {
      for (size_t c = 0; c < result.counts.size() && c < partial.counts.size();
           ++c) {
        result.counts[c] += partial.counts[c];
      }
    } else if (action.kind == OpKind::kSearchPattern) {
      result.count += partial.count;
    }
  }
  if (first) return Status::Invalid("action over an empty stream");
  return result;
}

LazyFrame::LazyFrame(LazySource source, std::vector<frame::Op> plan,
                     const LazyEngineBase* engine)
    : source_(std::move(source)),
      plan_(std::move(plan)),
      engine_(engine),
      // Null for stack-allocated engines: the caller owns the lifetime then.
      engine_keepalive_(engine->weak_from_this().lock()) {}

Result<frame::DataFrame::Ptr> LazyFrame::Apply(const Op& op) {
  if (engine_->lazy()) {
    // If this plan was already forced (an action or an explicit Collect
    // materialized it), chain from the cached result instead of replaying
    // the whole lineage from the source — the caching real lazy engines
    // apply at forced boundaries.
    if (cache_ != nullptr) {
      LazySource cached;
      cached.kind = LazySource::Kind::kTable;
      cached.table = cache_;
      cached.owned_resource = source_.owned_resource;
      return std::static_pointer_cast<frame::DataFrame>(
          std::make_shared<LazyFrame>(std::move(cached), std::vector<Op>{op},
                                      engine_));
    }
    std::vector<Op> next = plan_;
    next.push_back(op);
    return std::static_pointer_cast<frame::DataFrame>(
        std::make_shared<LazyFrame>(source_, std::move(next), engine_));
  }
  // Eager mode: run everything now and hold the materialized result.
  BENTO_ASSIGN_OR_RETURN(auto table, Collect());
  BENTO_ASSIGN_OR_RETURN(
      auto result, frame::ExecTransform(table, op, engine_->ExecutionPolicy()));
  LazySource source;
  source.kind = LazySource::Kind::kTable;
  source.table = std::move(result);
  return std::static_pointer_cast<frame::DataFrame>(
      std::make_shared<LazyFrame>(std::move(source), std::vector<Op>{},
                                  engine_));
}

Result<ActionResult> LazyFrame::RunAction(const Op& op) {
  if (engine_->lazy() && cache_ == nullptr &&
      source_.kind != LazySource::Kind::kTable) {
    // Lineage semantics: actions re-stream the plan without materializing
    // the frame (and without populating the cache) — the memory behaviour
    // behind the streaming engines' small minimum configurations.
    BENTO_ASSIGN_OR_RETURN(auto result, engine_->ExecuteAction(source_, plan_, op));
    return result;
  }
  BENTO_ASSIGN_OR_RETURN(auto table, Collect());
  const double penalty = engine_->ActionPenaltySeconds(op, table);
  if (penalty > 0) sim::ChargePenalty(penalty);
  return frame::ExecAction(table, op, engine_->ExecutionPolicy());
}

Result<col::TablePtr> LazyFrame::Collect() {
  if (cache_ != nullptr) return cache_;
  if (source_.kind == LazySource::Kind::kTable && plan_.empty()) {
    cache_ = source_.table;
    return cache_;
  }
  BENTO_ASSIGN_OR_RETURN(cache_, engine_->Execute(source_, plan_));
  return cache_;
}

Result<frame::DataFrame::Ptr> LazyEngineBase::ReadCsv(
    const std::string& path, const io::CsvReadOptions& options) {
  LazySource source;
  source.kind = LazySource::Kind::kCsv;
  source.path = path;
  source.csv_options = options;
  BENTO_ASSIGN_OR_RETURN(source, PrepareSource(std::move(source)));
  auto frame =
      std::make_shared<LazyFrame>(std::move(source), std::vector<Op>{}, this);
  if (!lazy()) {
    // Eager mode ingests immediately.
    BENTO_RETURN_NOT_OK(frame->Collect().status());
  }
  return std::static_pointer_cast<frame::DataFrame>(frame);
}

Result<frame::DataFrame::Ptr> LazyEngineBase::ReadBcf(const std::string& path) {
  LazySource source;
  source.kind = LazySource::Kind::kBcf;
  source.path = path;
  BENTO_ASSIGN_OR_RETURN(source, PrepareSource(std::move(source)));
  auto frame =
      std::make_shared<LazyFrame>(std::move(source), std::vector<Op>{}, this);
  if (!lazy()) {
    BENTO_RETURN_NOT_OK(frame->Collect().status());
  }
  return std::static_pointer_cast<frame::DataFrame>(frame);
}

Status LazyEngineBase::WriteCsv(const frame::DataFrame::Ptr& frame,
                                const std::string& path) {
  BENTO_ASSIGN_OR_RETURN(auto table, frame->Collect());
  if (ExecutionPolicy().parallel) {
    return io::WriteCsvParallel(table, path, {},
                                ExecutionPolicy().parallel_options);
  }
  return io::WriteCsv(table, path);
}

Status LazyEngineBase::WriteBcf(const frame::DataFrame::Ptr& frame,
                                const std::string& path) {
  BENTO_ASSIGN_OR_RETURN(auto table, frame->Collect());
  return io::WriteBcf(table, path);
}

Result<frame::DataFrame::Ptr> LazyEngineBase::FromTable(col::TablePtr table) {
  LazySource source;
  source.kind = LazySource::Kind::kTable;
  source.table = std::move(table);
  BENTO_ASSIGN_OR_RETURN(source, PrepareSource(std::move(source)));
  return std::static_pointer_cast<frame::DataFrame>(
      std::make_shared<LazyFrame>(std::move(source), std::vector<Op>{}, this));
}

}  // namespace bento::eng
