#include "engines/eager_engine.h"

#include "io/bcf.h"
#include "obs/trace.h"

namespace bento::eng {

using frame::ActionResult;
using frame::ExecPolicy;
using frame::Op;

namespace {

/// Holds a table plus a tracked reservation modeling object-dtype boxing of
/// its string cells; released when the last reference dies. Co-owns the
/// pool's accounting state: the holder may outlive the session whose pool
/// charged it (results escaping a run).
struct BoxedStringHolder {
  col::TablePtr table;
  std::shared_ptr<sim::MemoryPool::State> pool;
  uint64_t bytes = 0;

  ~BoxedStringHolder() {
    if (pool != nullptr && bytes > 0) pool->Release(bytes);
  }
};

Result<col::TablePtr> WithObjectStringCharge(col::TablePtr table,
                                             int64_t per_value_bytes) {
  if (per_value_bytes <= 0 || table == nullptr) return table;
  uint64_t cells = 0;
  for (const col::Field& f : table->schema()->fields()) {
    if (f.type == col::TypeId::kString) {
      cells += static_cast<uint64_t>(table->num_rows());
    }
  }
  const uint64_t bytes = cells * static_cast<uint64_t>(per_value_bytes);
  if (bytes == 0) return table;
  auto holder = std::make_shared<BoxedStringHolder>();
  holder->pool = sim::MemoryPool::Current()->state();
  BENTO_RETURN_NOT_OK(holder->pool->Reserve(bytes));
  holder->bytes = bytes;
  holder->table = std::move(table);
  // Aliasing pointer: exposes the table, owns the charge.
  return col::TablePtr(holder, holder->table.get());
}

}  // namespace

EagerFrame::EagerFrame(col::TablePtr table, const EagerEngineBase* engine)
    : table_(std::move(table)),
      engine_(engine),
      // Null for stack-allocated engines: the caller owns the lifetime then.
      engine_keepalive_(engine->weak_from_this().lock()) {}

Result<frame::DataFrame::Ptr> EagerFrame::Apply(const Op& op) {
  BENTO_TRACE_SPAN_DYN(kEngine, engine_->info().id + ".apply");
  ExecPolicy policy = engine_->PolicyFor(op);
  BENTO_ASSIGN_OR_RETURN(auto result,
                         engine_->RunTransform(table_, op, policy));
  BENTO_ASSIGN_OR_RETURN(
      result, WithObjectStringCharge(std::move(result),
                                     engine_->ObjectStringBytes()));
  return frame::DataFrame::Ptr(
      std::make_shared<EagerFrame>(std::move(result), engine_));
}

Result<ActionResult> EagerFrame::RunAction(const Op& op) {
  BENTO_TRACE_SPAN_DYN(kEngine, engine_->info().id + ".action");
  ExecPolicy policy = engine_->PolicyFor(op);
  return engine_->RunAction(table_, op, policy);
}

ExecPolicy EagerEngineBase::EmulatedPolicy() const {
  ExecPolicy policy = NativePolicy();
  policy.parallel = false;  // hand-rolled fallbacks are single-threaded
  return policy;
}

Result<col::TablePtr> EagerEngineBase::RunTransform(
    const col::TablePtr& table, const Op& op, const ExecPolicy& policy) const {
  return frame::ExecTransform(table, op, policy);
}

Result<ActionResult> EagerEngineBase::RunAction(const col::TablePtr& table,
                                                const Op& op,
                                                const ExecPolicy& policy) const {
  return frame::ExecAction(table, op, policy);
}

ExecPolicy EagerEngineBase::PolicyFor(const Op& op) const {
  auto support = frame::GetSupport(info().id, frame::OpKindName(op.kind));
  if (support.ok() && support.ValueOrDie() == frame::Support::kEmulated) {
    return EmulatedPolicy();
  }
  return NativePolicy();
}

Result<col::TablePtr> EagerEngineBase::DoReadCsv(
    const std::string& path, const io::CsvReadOptions& options) const {
  return io::ReadCsv(path, options);
}

Status EagerEngineBase::DoWriteCsv(const col::TablePtr& table,
                                   const std::string& path) const {
  return io::WriteCsv(table, path);
}

Result<col::TablePtr> EagerEngineBase::DoReadBcf(const std::string& path) const {
  BENTO_ASSIGN_OR_RETURN(auto reader, io::BcfReader::Open(path));
  return reader->ReadAll();
}

Status EagerEngineBase::DoWriteBcf(const col::TablePtr& table,
                                   const std::string& path) const {
  return io::WriteBcf(table, path);
}

Result<frame::DataFrame::Ptr> EagerEngineBase::ReadCsv(
    const std::string& path, const io::CsvReadOptions& options) {
  BENTO_ASSIGN_OR_RETURN(auto table, DoReadCsv(path, options));
  BENTO_ASSIGN_OR_RETURN(table, AfterIngest(std::move(table)));
  BENTO_ASSIGN_OR_RETURN(
      table, WithObjectStringCharge(std::move(table), ObjectStringBytes()));
  return frame::DataFrame::Ptr(
      std::make_shared<EagerFrame>(std::move(table), this));
}

Result<frame::DataFrame::Ptr> EagerEngineBase::ReadBcf(const std::string& path) {
  BENTO_ASSIGN_OR_RETURN(auto table, DoReadBcf(path));
  BENTO_ASSIGN_OR_RETURN(table, AfterIngest(std::move(table)));
  BENTO_ASSIGN_OR_RETURN(
      table, WithObjectStringCharge(std::move(table), ObjectStringBytes()));
  return frame::DataFrame::Ptr(
      std::make_shared<EagerFrame>(std::move(table), this));
}

Status EagerEngineBase::WriteCsv(const frame::DataFrame::Ptr& frame,
                                 const std::string& path) {
  BENTO_ASSIGN_OR_RETURN(auto table, frame->Collect());
  return DoWriteCsv(table, path);
}

Status EagerEngineBase::WriteBcf(const frame::DataFrame::Ptr& frame,
                                 const std::string& path) {
  BENTO_ASSIGN_OR_RETURN(auto table, frame->Collect());
  return DoWriteBcf(table, path);
}

Result<frame::DataFrame::Ptr> EagerEngineBase::FromTable(col::TablePtr table) {
  BENTO_ASSIGN_OR_RETURN(table, AfterIngest(std::move(table)));
  BENTO_ASSIGN_OR_RETURN(
      table, WithObjectStringCharge(std::move(table), ObjectStringBytes()));
  return frame::DataFrame::Ptr(
      std::make_shared<EagerFrame>(std::move(table), this));
}

}  // namespace bento::eng
