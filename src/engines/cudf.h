#ifndef BENTO_ENGINES_CUDF_H_
#define BENTO_ENGINES_CUDF_H_

#include "engines/eager_engine.h"
#include "sim/device.h"

namespace bento::eng {

/// \brief Model of RAPIDS CuDF on the simulated accelerator: every
/// preparator runs as device kernels (vector kernels get the largest
/// simulated speedups, string kernels moderate ones), data lives in the
/// capacity-limited device pool (the 16 GB wall behind Table V's "needs a
/// GPU" rows and the CSV-write OoM of Fig. 6d), host<->device transfers are
/// charged at ingest and collect, and there is no query optimizer — each op
/// fully materializes on device.
class CudfEngine : public EagerEngineBase {
 public:
  const frame::EngineInfo& info() const override;
  frame::ExecPolicy NativePolicy() const override;

  Result<col::TablePtr> RunTransform(const col::TablePtr& table,
                                     const frame::Op& op,
                                     const frame::ExecPolicy& policy) const override;
  Result<frame::ActionResult> RunAction(
      const col::TablePtr& table, const frame::Op& op,
      const frame::ExecPolicy& policy) const override;

  Status WriteCsv(const frame::DataFrame::Ptr& frame,
                  const std::string& path) override;
  Status WriteBcf(const frame::DataFrame::Ptr& frame,
                  const std::string& path) override;

 protected:
  Result<col::TablePtr> DoReadCsv(const std::string& path,
                                  const io::CsvReadOptions& options) const override;
  Result<col::TablePtr> AfterIngest(col::TablePtr table) const override;

 private:
  static sim::KernelClass KernelClassFor(const frame::Op& op);
};

}  // namespace bento::eng

#endif  // BENTO_ENGINES_CUDF_H_
