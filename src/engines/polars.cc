#include "engines/polars.h"

namespace bento::eng {

const frame::EngineInfo& PolarsEngine::info() const {
  static const frame::EngineInfo* info = new frame::EngineInfo{
      .id = "polars",
      .paper_name = "Polars",
      .multithreading = true,
      .gpu_acceleration = false,
      .resource_optimization = true,
      .lazy_evaluation = true,
      .cluster_deploy = false,
      .native_language = "Rust",
      .license = "MIT",
      .modeled_version = "0.15.1",
      .requirements = "",
  };
  return *info;
}

frame::ExecPolicy PolarsEngine::ExecutionPolicy() const {
  frame::ExecPolicy policy;
  policy.null_probe = kern::NullProbe::kMetadata;  // Arrow validity metadata
  policy.string_engine = kern::StringEngine::kColumnar;
  policy.parallel = true;  // morsel-driven parallelism
  // Rayon's work stealing is exactly the real backend's discipline.
  policy.parallel_options.mode = sim::ExecutionMode::kReal;
  policy.approx_quantile = true;
  policy.row_apply_object_bytes = 8;  // typed closures, no boxing
  return policy;
}

}  // namespace bento::eng
