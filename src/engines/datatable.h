#ifndef BENTO_ENGINES_DATATABLE_H_
#define BENTO_ENGINES_DATATABLE_H_

#include "engines/eager_engine.h"

namespace bento::eng {

/// \brief Model of H2O DataTable: memory-mapped pointer-walking CSV
/// ingestion (the paper's fastest reader), multithreaded native kernels for
/// sort/group/join/strings, no Parquet support, and a long tail of
/// preparators that Table II marks as hand-emulated (single-threaded here).
class DataTableEngine : public EagerEngineBase {
 public:
  const frame::EngineInfo& info() const override;
  frame::ExecPolicy NativePolicy() const override;

 protected:
  Result<col::TablePtr> DoReadCsv(const std::string& path,
                                  const io::CsvReadOptions& options) const override;
  Status DoWriteCsv(const col::TablePtr& table,
                    const std::string& path) const override;
  Result<col::TablePtr> DoReadBcf(const std::string& path) const override;
  Status DoWriteBcf(const col::TablePtr& table,
                    const std::string& path) const override;
};

}  // namespace bento::eng

#endif  // BENTO_ENGINES_DATATABLE_H_
