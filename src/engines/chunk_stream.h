#ifndef BENTO_ENGINES_CHUNK_STREAM_H_
#define BENTO_ENGINES_CHUNK_STREAM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "io/bcf.h"
#include "io/csv.h"

namespace bento::eng {

/// \brief Pull-based stream of table batches: the execution backbone of the
/// streaming engines (Polars lazy streaming, Vaex chunked evaluation, the
/// Spark whole-stage pipeline).
class ChunkStream {
 public:
  virtual ~ChunkStream() = default;

  /// Next batch, or nullptr at end of stream.
  virtual Result<col::TablePtr> Next() = 0;
};

/// \brief Slices an in-memory table into fixed-size batches.
///
/// Chunks are zero-copy slice VIEWS over the parent table's buffers: fixed
/// width data and string chars/offsets are shared outright, and validity
/// bitmaps are shared whenever the slice offset is byte-aligned (the default
/// chunk sizes are multiples of 64, so streaming a table allocates no new
/// row data — only O(columns) view headers). A chunk size that lands
/// mid-byte repacks just the validity bitmap (n/8 bytes). The pool-charge
/// test in pipeline_driver_test locks this in.
class TableChunkStream : public ChunkStream {
 public:
  TableChunkStream(col::TablePtr table, int64_t chunk_rows)
      : table_(std::move(table)),
        chunk_rows_(chunk_rows > 0 ? chunk_rows : 64 * 1024) {}

  Result<col::TablePtr> Next() override;

 private:
  col::TablePtr table_;
  int64_t chunk_rows_;
  int64_t position_ = 0;
};

/// \brief Streams batches from a CSV file.
class CsvChunkStream : public ChunkStream {
 public:
  static Result<std::unique_ptr<CsvChunkStream>> Open(
      const std::string& path, const io::CsvReadOptions& options);

  Result<col::TablePtr> Next() override { return reader_->Next(); }

 private:
  explicit CsvChunkStream(std::unique_ptr<io::CsvChunkReader> reader)
      : reader_(std::move(reader)) {}
  std::unique_ptr<io::CsvChunkReader> reader_;
};

/// \brief Streams row groups from a BCF file with column projection and
/// zone-map row-group skipping: groups whose statistics prove no row can
/// satisfy every `predicate` are never read. The residual filter still runs
/// downstream, so predicates only prune, never decide.
class BcfChunkStream : public ChunkStream {
 public:
  static Result<std::unique_ptr<BcfChunkStream>> Open(
      const std::string& path, std::vector<std::string> projection = {},
      std::vector<io::ScanPredicate> predicates = {},
      const io::BcfReadOptions& options = {});

  Result<col::TablePtr> Next() override;

 private:
  BcfChunkStream(std::unique_ptr<io::BcfReader> reader,
                 std::vector<std::string> projection,
                 std::vector<io::ScanPredicate> predicates)
      : reader_(std::move(reader)),
        projection_(std::move(projection)),
        predicates_(std::move(predicates)) {}

  std::unique_ptr<io::BcfReader> reader_;
  std::vector<std::string> projection_;
  std::vector<io::ScanPredicate> predicates_;
  int group_ = 0;
  int last_delivered_ = -1;  // previous group, madvise'd cold on advance
  bool delivered_any_ = false;
};

/// \brief Applies a per-chunk transformation to an inner stream (the
/// second pass of two-pass streaming operators).
class MappedStream : public ChunkStream {
 public:
  using MapFn = std::function<Result<col::TablePtr>(col::TablePtr)>;

  MappedStream(std::unique_ptr<ChunkStream> inner, MapFn fn)
      : inner_(std::move(inner)), fn_(std::move(fn)) {}

  Result<col::TablePtr> Next() override {
    BENTO_ASSIGN_OR_RETURN(auto chunk, inner_->Next());
    if (chunk == nullptr) return chunk;
    return fn_(std::move(chunk));
  }

 private:
  std::unique_ptr<ChunkStream> inner_;
  MapFn fn_;
};

/// \brief Bytes a chunk would occupy if copied out. Slices of a larger
/// table share whole buffers (a string slice keeps the full chars buffer),
/// so Table::ByteSize() wildly overcounts string-heavy slices — bad when
/// the count decides spill thresholds or prefetch backpressure.
uint64_t OwnedChunkBytes(const col::TablePtr& t);

/// \brief Streams a fixed list of pre-built batches (tests / partials).
class VectorChunkStream : public ChunkStream {
 public:
  explicit VectorChunkStream(std::vector<col::TablePtr> chunks)
      : chunks_(std::move(chunks)) {}

  Result<col::TablePtr> Next() override {
    if (index_ >= chunks_.size()) return col::TablePtr(nullptr);
    return chunks_[index_++];
  }

 private:
  std::vector<col::TablePtr> chunks_;
  size_t index_ = 0;
};

}  // namespace bento::eng

#endif  // BENTO_ENGINES_CHUNK_STREAM_H_
