#include "engines/datatable.h"

namespace bento::eng {

const frame::EngineInfo& DataTableEngine::info() const {
  static const frame::EngineInfo* info = new frame::EngineInfo{
      .id = "datatable",
      .paper_name = "DataTable",
      .multithreading = true,
      .gpu_acceleration = false,
      .resource_optimization = true,
      .lazy_evaluation = false,
      .cluster_deploy = false,
      .native_language = "C++/Python",
      .license = "Mozilla Public 2.0",
      .modeled_version = "1.0.0",
      .requirements = "",
  };
  return *info;
}

frame::ExecPolicy DataTableEngine::NativePolicy() const {
  frame::ExecPolicy policy;
  policy.null_probe = kern::NullProbe::kMetadata;
  policy.string_engine = kern::StringEngine::kColumnar;
  policy.parallel = true;
  // datatable's native OpenMP-style threading maps onto the real backend.
  policy.parallel_options.mode = sim::ExecutionMode::kReal;
  policy.row_apply_object_bytes = 0;  // native-C row access
  policy.approx_quantile = true;
  return policy;
}

Result<col::TablePtr> DataTableEngine::DoReadCsv(
    const std::string& path, const io::CsvReadOptions& options) const {
  return io::ReadCsvMmap(path, options, NativePolicy().parallel_options);
}

Status DataTableEngine::DoWriteCsv(const col::TablePtr& table,
                                   const std::string& path) const {
  return io::WriteCsvParallel(table, path);
}

Result<col::TablePtr> DataTableEngine::DoReadBcf(const std::string& path) const {
  return Status::NotImplemented("DataTable does not support the Parquet/BCF "
                                "format (paper Table I)");
}

Status DataTableEngine::DoWriteBcf(const col::TablePtr& table,
                                   const std::string& path) const {
  return Status::NotImplemented("DataTable does not support the Parquet/BCF "
                                "format (paper Table I)");
}

}  // namespace bento::eng
