#include "engines/spark.h"

#include "columnar/builder.h"

namespace bento::eng {

const frame::EngineInfo& SparkSqlEngine::info() const {
  static const frame::EngineInfo* info = new frame::EngineInfo{
      .id = "spark_sql",
      .paper_name = "SparkSQL",
      .multithreading = true,
      .gpu_acceleration = false,
      .resource_optimization = true,
      .lazy_evaluation = true,
      .cluster_deploy = true,
      .native_language = "Scala",
      .license = "Apache 2.0",
      .modeled_version = "3.4.1",
      .requirements = "SparkContext",
  };
  return *info;
}

frame::ExecPolicy SparkSqlEngine::ExecutionPolicy() const {
  frame::ExecPolicy policy;
  policy.null_probe = kern::NullProbe::kMetadata;
  policy.string_engine = kern::StringEngine::kColumnar;
  policy.parallel = true;
  policy.parallel_options.mode = sim::ExecutionMode::kReal;  // local[*] tasks
  policy.approx_quantile = true;  // approxQuantile is the Spark idiom
  policy.row_apply_object_bytes = 16;  // serialized UDF boundary
  return policy;
}

const frame::EngineInfo& SparkPdEngine::info() const {
  static const frame::EngineInfo* info = new frame::EngineInfo{
      .id = "spark_pd",
      .paper_name = "SparkPD",
      .multithreading = true,
      .gpu_acceleration = false,
      .resource_optimization = true,
      .lazy_evaluation = true,
      .cluster_deploy = true,
      .native_language = "Scala",
      .license = "Apache 2.0",
      .modeled_version = "3.4.1",
      .requirements = "SparkContext",
  };
  return *info;
}

frame::ExecPolicy SparkPdEngine::ExecutionPolicy() const {
  frame::ExecPolicy policy;
  policy.null_probe = kern::NullProbe::kMetadata;
  policy.string_engine = kern::StringEngine::kColumnar;
  policy.parallel = true;
  policy.parallel_options.mode = sim::ExecutionMode::kReal;  // local[*] tasks
  policy.row_apply_object_bytes = 32;  // Pandas UDF boxing over Arrow batches
  // Opportunistic evaluation materializes intermediate Pandas-like results.
  policy.copy_outputs = true;
  return policy;
}

Result<LazySource> SparkPdEngine::PrepareSource(LazySource source) const {
  // Koalas attaches a distributed default index to give Spark frames Pandas
  // semantics; for in-memory sources we materialize it (file sources pay
  // the equivalent through copy_outputs during execution).
  if (source.kind != LazySource::Kind::kTable) return source;
  col::Int64Builder b;
  b.Reserve(source.table->num_rows());
  for (int64_t i = 0; i < source.table->num_rows(); ++i) b.Append(i);
  BENTO_ASSIGN_OR_RETURN(auto index, b.Finish());
  BENTO_ASSIGN_OR_RETURN(source.table,
                         source.table->SetColumn("__index__", index));
  return source;
}

}  // namespace bento::eng
