#include "engines/streaming_ops.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <functional>
#include <cstdio>
#include <limits>
#include <queue>
#include <unordered_set>

#include "columnar/builder.h"
#include "engines/spill_frames.h"
#include "kernels/apply.h"
#include "kernels/groupby.h"
#include "kernels/join.h"
#include "kernels/pivot.h"
#include "kernels/row_hash.h"
#include "kernels/selection.h"
#include "kernels/sort.h"
#include "kernels/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bento::eng {

using col::TablePtr;
using frame::ExecPolicy;
using kern::AggKind;
using kern::AggSpec;

namespace {

/// Decomposed partial-aggregation plan for one requested aggregation.
struct DecomposedAgg {
  AggSpec request;                // what the caller asked for
  std::vector<AggSpec> partials;  // partial columns computed per chunk
  std::vector<AggSpec> merges;    // how partial columns merge
};

std::vector<DecomposedAgg> DecomposeAggs(const std::vector<AggSpec>& aggs) {
  std::vector<DecomposedAgg> out;
  int tag = 0;
  for (const AggSpec& spec : aggs) {
    DecomposedAgg d;
    d.request = spec;
    auto add = [&](AggKind kind, const char* suffix,
                   AggKind merge_kind) {
      std::string name =
          "__p" + std::to_string(tag) + "_" + suffix;
      d.partials.push_back(AggSpec{spec.column, kind, name});
      d.merges.push_back(AggSpec{name, merge_kind, name});
    };
    switch (spec.kind) {
      case AggKind::kSum:
        add(AggKind::kSum, "sum", AggKind::kSum);
        break;
      case AggKind::kCount:
        add(AggKind::kCount, "cnt", AggKind::kSum);
        break;
      case AggKind::kMin:
        add(AggKind::kMin, "min", AggKind::kMin);
        break;
      case AggKind::kMax:
        add(AggKind::kMax, "max", AggKind::kMax);
        break;
      case AggKind::kMean:
        add(AggKind::kSum, "sum", AggKind::kSum);
        add(AggKind::kCount, "cnt", AggKind::kSum);
        break;
      case AggKind::kStd:
      case AggKind::kSumSq:
        add(AggKind::kSum, "sum", AggKind::kSum);
        add(AggKind::kCount, "cnt", AggKind::kSum);
        add(AggKind::kSumSq, "sumsq", AggKind::kSum);
        break;
    }
    ++tag;
    out.push_back(std::move(d));
  }
  return out;
}

double NumericCell(const col::Array& a, int64_t i) {
  switch (a.type()) {
    case col::TypeId::kFloat64:
      return a.float64_data()[i];
    case col::TypeId::kBool:
      return a.bool_data()[i] != 0 ? 1.0 : 0.0;
    default:
      return static_cast<double>(a.int64_data()[i]);
  }
}

/// Finalizes the merged decomposed columns into the requested outputs.
Result<TablePtr> FinalizeAggs(const TablePtr& merged,
                              const std::vector<std::string>& keys,
                              const std::vector<DecomposedAgg>& decomposed) {
  BENTO_ASSIGN_OR_RETURN(auto out, merged->SelectColumns(keys));
  const int64_t n = merged->num_rows();
  for (const DecomposedAgg& d : decomposed) {
    const std::string out_name = kern::DefaultAggName(d.request);
    if (d.request.kind == AggKind::kCount) {
      BENTO_ASSIGN_OR_RETURN(auto cnt, merged->GetColumn(d.partials[0].output_name));
      col::Int64Builder b;
      b.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        b.AppendMaybe(cnt->IsValid(i)
                          ? static_cast<int64_t>(NumericCell(*cnt, i))
                          : 0,
                      cnt->IsValid(i));
      }
      BENTO_ASSIGN_OR_RETURN(auto arr, b.Finish());
      BENTO_ASSIGN_OR_RETURN(out, out->SetColumn(out_name, arr));
      continue;
    }

    col::Float64Builder b;
    b.Reserve(n);
    switch (d.request.kind) {
      case AggKind::kSum:
      case AggKind::kMin:
      case AggKind::kMax:
      case AggKind::kSumSq: {
        BENTO_ASSIGN_OR_RETURN(auto v,
                               merged->GetColumn(d.partials[0].output_name));
        // SumSq merges via three partials; its value is the third.
        if (d.request.kind == AggKind::kSumSq) {
          BENTO_ASSIGN_OR_RETURN(v, merged->GetColumn(d.partials[2].output_name));
        }
        for (int64_t i = 0; i < n; ++i) {
          b.AppendMaybe(v->IsValid(i) ? NumericCell(*v, i) : 0.0, v->IsValid(i));
        }
        break;
      }
      case AggKind::kMean: {
        BENTO_ASSIGN_OR_RETURN(auto sum,
                               merged->GetColumn(d.partials[0].output_name));
        BENTO_ASSIGN_OR_RETURN(auto cnt,
                               merged->GetColumn(d.partials[1].output_name));
        for (int64_t i = 0; i < n; ++i) {
          const double c = cnt->IsValid(i) ? NumericCell(*cnt, i) : 0.0;
          if (c <= 0.0 || !sum->IsValid(i)) {
            b.AppendNull();
          } else {
            b.Append(NumericCell(*sum, i) / c);
          }
        }
        break;
      }
      case AggKind::kStd: {
        BENTO_ASSIGN_OR_RETURN(auto sum,
                               merged->GetColumn(d.partials[0].output_name));
        BENTO_ASSIGN_OR_RETURN(auto cnt,
                               merged->GetColumn(d.partials[1].output_name));
        BENTO_ASSIGN_OR_RETURN(auto sumsq,
                               merged->GetColumn(d.partials[2].output_name));
        for (int64_t i = 0; i < n; ++i) {
          const double c = cnt->IsValid(i) ? NumericCell(*cnt, i) : 0.0;
          if (c < 2.0 || !sum->IsValid(i) || !sumsq->IsValid(i)) {
            b.AppendNull();
          } else {
            const double s = NumericCell(*sum, i);
            const double ss = NumericCell(*sumsq, i);
            double var = (ss - s * s / c) / (c - 1.0);
            b.Append(var > 0.0 ? std::sqrt(var) : 0.0);
          }
        }
        break;
      }
      case AggKind::kCount:
        break;  // handled above
    }
    BENTO_ASSIGN_OR_RETURN(auto arr, b.Finish());
    BENTO_ASSIGN_OR_RETURN(out, out->SetColumn(out_name, arr));
  }
  return out;
}

/// Hidden column carrying each row's stream position. Aggregated with min
/// it names a group's first-seen position, which is exactly the order
/// kern::GroupBy emits groups in — so spilled partitions can be stitched
/// back into the order the in-memory path would have produced.
constexpr const char* kSeqColumn = "__seq";

/// Sequence values are (chunk_seq << 32) + row_in_chunk: strictly
/// increasing in (chunk, row) stream order for any chunking, which is all
/// the consumers need (min-per-group, stable ArgSort — only the ORDER of
/// the values matters, never their magnitudes). Unlike a global row
/// counter, a chunk can compute its values knowing nothing about earlier
/// chunks' post-filter row counts — the property that lets pipeline workers
/// attach the column concurrently yet bit-identically to the serial pass.
constexpr int kSeqChunkShift = 32;

Result<TablePtr> AttachSeqColumn(const TablePtr& chunk, int64_t chunk_seq) {
  if (chunk->num_rows() >= (int64_t{1} << kSeqChunkShift)) {
    return Status::Invalid("chunk too large for the sequence column (",
                           chunk->num_rows(), " rows)");
  }
  const int64_t base = chunk_seq << kSeqChunkShift;
  col::Int64Builder b;
  b.Reserve(chunk->num_rows());
  for (int64_t i = 0; i < chunk->num_rows(); ++i) b.Append(base + i);
  BENTO_ASSIGN_OR_RETURN(auto seq, b.Finish());
  return chunk->SetColumn(kSeqColumn, std::move(seq));
}

/// Splits `table` into `partitions` row subsets by key hash. Rows with equal
/// keys (nulls included — they hash to a fixed tag) always land in the same
/// partition, and relative row order is preserved within each.
Result<std::vector<TablePtr>> HashPartitionTable(
    const TablePtr& table, const std::vector<std::string>& keys,
    int partitions) {
  BENTO_ASSIGN_OR_RETURN(auto hashes, kern::HashRows(table, keys));
  std::vector<TablePtr> out;
  for (int p = 0; p < partitions; ++p) {
    col::BoolBuilder mask;
    mask.Reserve(table->num_rows());
    for (int64_t i = 0; i < table->num_rows(); ++i) {
      mask.Append(hashes[static_cast<size_t>(i)] %
                      static_cast<uint64_t>(partitions) ==
                  static_cast<uint64_t>(p));
    }
    BENTO_ASSIGN_OR_RETURN(auto m, mask.Finish());
    BENTO_ASSIGN_OR_RETURN(auto part, kern::FilterTable(table, m));
    out.push_back(std::move(part));
  }
  return out;
}

/// Reorders `table` ascending by the hidden sequence column and drops it.
Result<TablePtr> RestoreSeqOrder(const TablePtr& table) {
  BENTO_ASSIGN_OR_RETURN(
      auto indices, kern::ArgSort(table, {kern::SortKey{kSeqColumn, true}}));
  BENTO_ASSIGN_OR_RETURN(auto sorted, kern::TakeTable(table, indices));
  return sorted->DropColumns({kSeqColumn});
}

}  // namespace

Result<TablePtr> StreamingGroupBy(ChunkStream* input,
                                  const std::vector<std::string>& keys,
                                  const std::vector<AggSpec>& aggs,
                                  const ExecPolicy& policy,
                                  const StreamingGroupByOptions& options) {
  auto decomposed = DecomposeAggs(aggs);
  std::vector<AggSpec> partial_specs;
  std::vector<AggSpec> merge_specs;
  for (const DecomposedAgg& d : decomposed) {
    partial_specs.insert(partial_specs.end(), d.partials.begin(),
                         d.partials.end());
    merge_specs.insert(merge_specs.end(), d.merges.begin(), d.merges.end());
  }

  // Partial count columns decode as int64 but merge through kSum (float64);
  // normalize them to float64 so compacted and fresh partials share a schema.
  auto normalize = [&](TablePtr partial) -> Result<TablePtr> {
    for (const kern::AggSpec& spec : partial_specs) {
      if (spec.kind != AggKind::kCount) continue;
      BENTO_ASSIGN_OR_RETURN(auto column, partial->GetColumn(spec.output_name));
      if (column->type() == col::TypeId::kInt64) {
        col::Float64Builder b;
        b.Reserve(column->length());
        for (int64_t i = 0; i < column->length(); ++i) {
          b.AppendMaybe(static_cast<double>(column->int64_data()[i]),
                        column->IsValid(i));
        }
        BENTO_ASSIGN_OR_RETURN(auto as_float, b.Finish());
        BENTO_ASSIGN_OR_RETURN(partial,
                               partial->SetColumn(spec.output_name, as_float));
      }
    }
    return partial;
  };

  // The first-seen-order column rides along in every mode so spill can
  // engage mid-stream; FinalizeAggs drops it (it only selects keys+outputs).
  partial_specs.push_back(AggSpec{kSeqColumn, AggKind::kMin, kSeqColumn});
  merge_specs.push_back(AggSpec{kSeqColumn, AggKind::kMin, kSeqColumn});

  int64_t spill_threshold = options.spill_threshold_bytes;
  if (spill_threshold < 0) {
    spill_threshold = std::numeric_limits<int64_t>::max();
    sim::Session* session = sim::Session::Current();
    if (session != nullptr && session->host_pool()->budget() > 0) {
      spill_threshold =
          static_cast<int64_t>(session->host_pool()->budget() / 8);
    }
  }
  const int n_partitions = std::max(options.spill_partitions, 1);

  std::unique_ptr<SpillFrameStore> store;  // non-null once spilling
  auto spill_partial = [&](const TablePtr& partial) -> Status {
    BENTO_ASSIGN_OR_RETURN(auto parts,
                           HashPartitionTable(partial, keys, n_partitions));
    for (int p = 0; p < n_partitions; ++p) {
      BENTO_RETURN_NOT_OK(store->Append(p, parts[static_cast<size_t>(p)]));
    }
    return Status::OK();
  };

  // Per-chunk partial aggregation as a pure map: the fused upstream
  // transforms (parallel mode), the hidden first-seen-order column, the
  // local GroupBy and the count normalization. With pipeline workers the
  // map runs concurrently across chunks; the fold below consumes partials
  // strictly in stream order through the same serial merge code either
  // way, so the result is bit-identical for any worker count.
  auto partial_map = [&keys, &partial_specs, &normalize,
                      pre_map = options.pre_map](
                         TablePtr chunk, int64_t seq) -> Result<TablePtr> {
    if (pre_map) {
      BENTO_ASSIGN_OR_RETURN(chunk, pre_map(std::move(chunk)));
    }
    if (chunk->num_rows() == 0) return chunk;  // fold skips empty partials
    BENTO_ASSIGN_OR_RETURN(chunk, AttachSeqColumn(chunk, seq));
    BENTO_ASSIGN_OR_RETURN(auto partial,
                           kern::GroupBy(chunk, keys, partial_specs));
    return normalize(std::move(partial));
  };
  ParallelPipelineDriver partial_stream(input, partial_map, options.pipeline);

  std::vector<TablePtr> partials;
  int64_t partial_bytes = 0;
  constexpr size_t kCompactEvery = 16;
  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto partial, partial_stream.Next());
    if (partial == nullptr) break;
    if (partial->num_rows() == 0) continue;
    if (store != nullptr) {
      BENTO_RETURN_NOT_OK(spill_partial(partial));
      continue;
    }
    partial_bytes += static_cast<int64_t>(partial->ByteSize());
    partials.push_back(std::move(partial));
    if (partial_bytes >= spill_threshold) {
      // The group state itself no longer fits: compact what we hold, fan it
      // out to hash partitions on disk, and spill every later partial.
      static obs::Counter* spilled =
          obs::MetricsRegistry::Global().counter("groupby.spill_engaged");
      spilled->Increment();
      BENTO_ASSIGN_OR_RETURN(auto concat, col::ConcatTablesReleasing(&partials));
      BENTO_ASSIGN_OR_RETURN(auto compacted,
                             kern::GroupBy(concat, keys, merge_specs));
      concat.reset();
      BENTO_ASSIGN_OR_RETURN(store, SpillFrameStore::Create(n_partitions));
      BENTO_RETURN_NOT_OK(spill_partial(compacted));
      partial_bytes = 0;
      continue;
    }
    if (partials.size() >= kCompactEvery) {
      BENTO_ASSIGN_OR_RETURN(auto concat, col::ConcatTables(partials));
      BENTO_ASSIGN_OR_RETURN(auto compacted,
                             kern::GroupBy(concat, keys, merge_specs));
      partials.clear();
      partial_bytes = static_cast<int64_t>(compacted->ByteSize());
      partials.push_back(std::move(compacted));
    }
  }
  if (options.chunks_claimed != nullptr) {
    *options.chunks_claimed = partial_stream.chunks_claimed();
  }

  if (store != nullptr) {
    // Per-partition exact merge; a group's partials all share one partition
    // (hash of its key), so merging partitions independently is exact. The
    // hidden min-sequence column then restores global first-seen order.
    BENTO_TRACE_SPAN(kEngine, "groupby.spill_merge");
    std::vector<TablePtr> merged_parts;
    for (int p = 0; p < n_partitions; ++p) {
      BENTO_ASSIGN_OR_RETURN(auto chunks, store->ReadPartition(p));
      if (chunks.empty()) continue;
      BENTO_ASSIGN_OR_RETURN(auto concat, col::ConcatTablesReleasing(&chunks));
      if (concat->num_rows() == 0) continue;
      BENTO_ASSIGN_OR_RETURN(auto merged,
                             kern::GroupBy(concat, keys, merge_specs));
      merged_parts.push_back(std::move(merged));
    }
    store.reset();
    if (merged_parts.empty()) {
      return Status::Invalid("streaming group-by over an empty stream");
    }
    BENTO_ASSIGN_OR_RETURN(auto all, col::ConcatTablesReleasing(&merged_parts));
    BENTO_ASSIGN_OR_RETURN(
        auto indices, kern::ArgSort(all, {kern::SortKey{kSeqColumn, true}}));
    BENTO_ASSIGN_OR_RETURN(auto ordered, kern::TakeTable(all, indices));
    return FinalizeAggs(ordered, keys, decomposed);
  }

  if (partials.empty()) {
    return Status::Invalid("streaming group-by over an empty stream");
  }
  BENTO_ASSIGN_OR_RETURN(auto concat, col::ConcatTables(partials));
  BENTO_ASSIGN_OR_RETURN(auto merged, kern::GroupBy(concat, keys, merge_specs));
  return FinalizeAggs(merged, keys, decomposed);
}

namespace {

Result<std::string> TempBcfPath() {
  static std::atomic<uint64_t> counter{0};
  const char* tmp = std::getenv("TMPDIR");
  std::string base = tmp != nullptr ? tmp : "/tmp";
  return base + "/bento_run_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".bcf";
}

/// Cursor over one spilled sorted run (a SpillFrameStore partition).
struct RunCursor {
  std::unique_ptr<ChunkStream> stream;
  TablePtr chunk;
  int64_t row = 0;

  Status Advance() {
    ++row;
    if (chunk != nullptr && row < chunk->num_rows()) return Status::OK();
    row = 0;
    chunk = nullptr;
    while (true) {
      BENTO_ASSIGN_OR_RETURN(auto next, stream->Next());
      if (next == nullptr) return Status::OK();  // exhausted: chunk stays null
      if (next->num_rows() > 0) {
        chunk = std::move(next);
        return Status::OK();
      }
    }
  }

  bool exhausted() const { return chunk == nullptr; }
};

}  // namespace

namespace {

/// Shared core of the external sort: sorted runs spill to temp BCF files;
/// the k-way merge emits ordered output chunks to `sink`.
Status ExternalSortImpl(ChunkStream* input,
                        const std::vector<kern::SortKey>& keys,
                        const ExecPolicy& policy, int64_t run_rows,
                        const std::function<Status(TablePtr)>& sink) {
  // Phase 1: build sorted runs, spilling each as one partition of a shared
  // SpillFrameStore. Runs are bounded both by rows and by bytes (one run
  // plus its sorted copy must fit comfortably inside the machine budget).
  uint64_t run_budget_bytes = 64ULL << 20;
  if (sim::Session::Current() != nullptr &&
      sim::Session::Current()->host_pool()->budget() > 0) {
    run_budget_bytes = std::max<uint64_t>(
        sim::Session::Current()->host_pool()->budget() / 8, 128 << 10);
  }
  // The store outlives the cursors below (declaration order matters).
  BENTO_ASSIGN_OR_RETURN(auto store, SpillFrameStore::Create(0));
  std::vector<std::unique_ptr<RunCursor>> runs;
  std::vector<TablePtr> pending;
  int64_t pending_rows = 0;
  uint64_t pending_bytes = 0;
  col::SchemaPtr schema;

  auto flush_run = [&]() -> Status {
    if (pending.empty()) return Status::OK();
    BENTO_ASSIGN_OR_RETURN(auto run_table, col::ConcatTablesReleasing(&pending));
    pending_rows = 0;
    pending_bytes = 0;
    TablePtr sorted;
    if (policy.parallel) {
      BENTO_ASSIGN_OR_RETURN(
          auto indices,
          kern::ArgSortParallel(run_table, keys, policy.parallel_options));
      BENTO_ASSIGN_OR_RETURN(sorted, kern::TakeTable(run_table, indices));
    } else {
      BENTO_ASSIGN_OR_RETURN(sorted, kern::SortTable(run_table, keys));
    }
    run_table.reset();
    const int partition = store->AddPartition();
    // During the k-way merge every run keeps one frame resident, so frames
    // are bounded in BYTES (a small fraction of the run budget), not rows —
    // N cursors together must stay well under a single run's footprint.
    const uint64_t row_bytes = std::max<uint64_t>(
        1, sorted->ByteSize() / static_cast<uint64_t>(
                                    std::max<int64_t>(sorted->num_rows(), 1)));
    const int64_t run_frame_rows = std::clamp<int64_t>(
        static_cast<int64_t>(run_budget_bytes / 64 / row_bytes), 64, 8192);
    for (int64_t begin = 0; begin < sorted->num_rows();
         begin += run_frame_rows) {
      const int64_t n = std::min(run_frame_rows, sorted->num_rows() - begin);
      BENTO_ASSIGN_OR_RETURN(auto frame, sorted->Slice(begin, n));
      BENTO_RETURN_NOT_OK(store->Append(partition, frame));
    }
    sorted.reset();
    auto cursor = std::make_unique<RunCursor>();
    BENTO_ASSIGN_OR_RETURN(cursor->stream, store->OpenPartition(partition));
    cursor->row = -1;
    BENTO_RETURN_NOT_OK(cursor->Advance());
    runs.push_back(std::move(cursor));
    return Status::OK();
  };

  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, input->Next());
    if (chunk == nullptr) break;
    if (schema == nullptr) schema = chunk->schema();
    if (chunk->num_rows() == 0) continue;
    pending_rows += chunk->num_rows();
    pending_bytes += OwnedChunkBytes(chunk);
    pending.push_back(std::move(chunk));
    if (pending_rows >= run_rows || pending_bytes >= run_budget_bytes) {
      BENTO_RETURN_NOT_OK(flush_run());
    }
  }
  BENTO_RETURN_NOT_OK(flush_run());

  if (runs.empty()) {
    if (schema == nullptr) {
      return Status::Invalid("external sort over an empty stream");
    }
    BENTO_ASSIGN_OR_RETURN(auto empty, col::Table::MakeEmpty(schema));
    return sink(empty);
  }
  if (runs.size() == 1) {
    // Single run: stream it back whole.
    while (!runs[0]->exhausted()) {
      TablePtr chunk = runs[0]->chunk;
      runs[0]->chunk = nullptr;
      runs[0]->row = -1;
      BENTO_RETURN_NOT_OK(sink(std::move(chunk)));
      BENTO_RETURN_NOT_OK(runs[0]->Advance());
    }
    return Status::OK();
  }

  // Phase 2: cursor-based k-way merge, assembling output in chunks.
  auto cmp_runs = [&](size_t a, size_t b) -> Result<int> {
    return kern::CompareTableRows(runs[a]->chunk, runs[a]->row, runs[b]->chunk,
                                  runs[b]->row, keys);
  };

  std::vector<std::unique_ptr<kern::ScalarColumnAssembler>> assemblers;
  const col::SchemaPtr out_schema = runs[0]->chunk->schema();
  auto reset_assemblers = [&]() {
    assemblers.clear();
    for (const col::Field& f : out_schema->fields()) {
      // Categorical round-trips as string through the assembler.
      col::TypeId t = f.type == col::TypeId::kCategorical
                          ? col::TypeId::kString
                          : f.type;
      assemblers.push_back(std::make_unique<kern::ScalarColumnAssembler>(t));
    }
  };
  reset_assemblers();
  int64_t assembled = 0;
  constexpr int64_t kOutChunk = 8192;  // bounds merge-phase staging

  auto flush_output = [&]() -> Status {
    if (assembled == 0) return Status::OK();
    std::vector<col::Field> fields;
    std::vector<col::ArrayPtr> columns;
    for (int c = 0; c < out_schema->num_fields(); ++c) {
      BENTO_ASSIGN_OR_RETURN(auto arr, assemblers[static_cast<size_t>(c)]->Finish());
      col::Field f = out_schema->field(c);
      if (f.type == col::TypeId::kCategorical) f.type = col::TypeId::kString;
      fields.push_back(f);
      columns.push_back(std::move(arr));
    }
    BENTO_ASSIGN_OR_RETURN(
        auto chunk, col::Table::Make(
                        std::make_shared<col::Schema>(std::move(fields)),
                        std::move(columns)));
    BENTO_RETURN_NOT_OK(sink(std::move(chunk)));
    reset_assemblers();
    assembled = 0;
    return Status::OK();
  };

  while (true) {
    // Pick the smallest head among non-exhausted runs.
    int best = -1;
    for (size_t r = 0; r < runs.size(); ++r) {
      if (runs[r]->exhausted()) continue;
      if (best < 0) {
        best = static_cast<int>(r);
        continue;
      }
      BENTO_ASSIGN_OR_RETURN(int c, cmp_runs(r, static_cast<size_t>(best)));
      if (c < 0) best = static_cast<int>(r);
    }
    if (best < 0) break;
    RunCursor& cursor = *runs[static_cast<size_t>(best)];
    for (int c = 0; c < out_schema->num_fields(); ++c) {
      BENTO_RETURN_NOT_OK(assemblers[static_cast<size_t>(c)]->Append(
          cursor.chunk->column(c)->GetScalar(cursor.row)));
    }
    ++assembled;
    if (assembled >= kOutChunk) BENTO_RETURN_NOT_OK(flush_output());
    BENTO_RETURN_NOT_OK(cursor.Advance());
  }
  return flush_output();
}

}  // namespace

Result<TablePtr> ExternalSort(ChunkStream* input,
                              const std::vector<kern::SortKey>& keys,
                              const ExecPolicy& policy, int64_t run_rows) {
  std::vector<TablePtr> output_chunks;
  BENTO_RETURN_NOT_OK(ExternalSortImpl(input, keys, policy, run_rows,
                                       [&](TablePtr chunk) {
                                         output_chunks.push_back(
                                             std::move(chunk));
                                         return Status::OK();
                                       }));
  if (output_chunks.empty()) {
    return Status::Invalid("external sort produced no output");
  }
  return col::ConcatTablesReleasing(&output_chunks);
}

Result<std::string> ExternalSortToFile(ChunkStream* input,
                                       const std::vector<kern::SortKey>& keys,
                                       const ExecPolicy& policy,
                                       int64_t run_rows) {
  BENTO_ASSIGN_OR_RETURN(std::string path, TempBcfPath());
  io::BcfWriteOptions wopts;
  wopts.row_group_rows = 64 * 1024;
  wopts.compression = false;
  BENTO_ASSIGN_OR_RETURN(auto writer, io::BcfWriter::Open(path, wopts));
  Status st = ExternalSortImpl(input, keys, policy, run_rows,
                               [&](TablePtr chunk) {
                                 return writer->Append(chunk);
                               });
  if (!st.ok()) {
    std::remove(path.c_str());
    return st;
  }
  BENTO_RETURN_NOT_OK(writer->Finish());
  return path;
}

Result<TablePtr> StreamingDedup(ChunkStream* input,
                                const std::vector<std::string>& subset,
                                const StreamingDedupOptions& options) {
  // Hidden per-row hash column attached by the (parallelizable) map stage;
  // the serial fold below pops it and applies the first-seen filter in
  // strict stream order, so the kept rows are identical for any worker
  // count.
  constexpr const char* kHashColumn = "__dedup_hash";
  auto hash_map = [&subset, pre_map = options.pre_map](
                      TablePtr chunk, int64_t) -> Result<TablePtr> {
    if (pre_map) {
      BENTO_ASSIGN_OR_RETURN(chunk, pre_map(std::move(chunk)));
    }
    if (chunk->num_rows() == 0) return chunk;
    BENTO_ASSIGN_OR_RETURN(auto hashes, kern::HashRows(chunk, subset));
    col::Int64Builder b;
    b.Reserve(chunk->num_rows());
    for (int64_t i = 0; i < chunk->num_rows(); ++i) {
      b.Append(static_cast<int64_t>(hashes[static_cast<size_t>(i)]));
    }
    BENTO_ASSIGN_OR_RETURN(auto column, b.Finish());
    return chunk->SetColumn(kHashColumn, std::move(column));
  };
  ParallelPipelineDriver hashed_stream(input, hash_map, options.pipeline);

  std::unordered_set<uint64_t> seen;
  std::vector<TablePtr> kept;
  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, hashed_stream.Next());
    if (chunk == nullptr) break;
    if (chunk->num_rows() == 0) continue;
    BENTO_ASSIGN_OR_RETURN(auto hash_column, chunk->GetColumn(kHashColumn));
    const int64_t* hashes = hash_column->int64_data();
    BENTO_ASSIGN_OR_RETURN(chunk, chunk->DropColumns({kHashColumn}));
    col::BoolBuilder keep;
    keep.Reserve(chunk->num_rows());
    for (int64_t i = 0; i < chunk->num_rows(); ++i) {
      keep.Append(seen.insert(static_cast<uint64_t>(hashes[i])).second);
    }
    BENTO_ASSIGN_OR_RETURN(auto mask, keep.Finish());
    BENTO_ASSIGN_OR_RETURN(auto filtered, kern::FilterTable(chunk, mask));
    if (filtered->num_rows() > 0) kept.push_back(std::move(filtered));
  }
  if (options.chunks_claimed != nullptr) {
    *options.chunks_claimed = hashed_stream.chunks_claimed();
  }
  if (kept.empty()) {
    return Status::Invalid("streaming dedup over an empty stream");
  }
  return col::ConcatTablesReleasing(&kept);
}

Result<TablePtr> StreamingPivot(ChunkStream* input, const frame::Op& op,
                                const ExecPolicy& policy,
                                const StreamingGroupByOptions& options) {
  // Aggregate down to one row per (index, columns) pair, then pivot the
  // small result in memory.
  std::vector<AggSpec> aggs = {
      AggSpec{op.pivot_values, op.pivot_agg, "__pivot_value"}};
  BENTO_ASSIGN_OR_RETURN(
      auto grouped,
      StreamingGroupBy(input, {op.pivot_index, op.pivot_columns}, aggs,
                       policy, options));
  // Cell groups are unique, so any decomposable agg of the single value
  // reproduces it; the output column names match the kernel's convention.
  return kern::PivotTable(grouped, op.pivot_index, op.pivot_columns,
                          "__pivot_value",
                          op.pivot_agg == kern::AggKind::kCount
                              ? kern::AggKind::kSum
                              : kern::AggKind::kMean);
}

Result<TablePtr> GraceHashJoin(ChunkStream* probe, const TablePtr& build,
                               const std::string& left_key,
                               const std::string& right_key,
                               const kern::JoinOptions& options,
                               int partitions) {
  BENTO_TRACE_SPAN(kEngine, "join.grace");
  static obs::Counter* grace_joins =
      obs::MetricsRegistry::Global().counter("join.grace_runs");
  grace_joins->Increment();
  const int P = std::max(partitions, 1);
  // One store, two halves: build partitions in [0, P), probe in [P, 2P).
  BENTO_ASSIGN_OR_RETURN(auto store, SpillFrameStore::Create(2 * P));

  {
    // Partitioning the build side lets each per-partition hash table hold
    // ~1/P of it; the full build table never needs a hash table at once.
    BENTO_ASSIGN_OR_RETURN(auto parts,
                           HashPartitionTable(build, {right_key}, P));
    for (int p = 0; p < P; ++p) {
      BENTO_RETURN_NOT_OK(store->Append(p, parts[static_cast<size_t>(p)]));
    }
  }

  int64_t chunk_seq = 0;
  TablePtr typed_empty_probe;  // zero-row probe chunk, for schema fallbacks
  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, probe->Next());
    if (chunk == nullptr) break;
    BENTO_ASSIGN_OR_RETURN(auto with_seq, AttachSeqColumn(chunk, chunk_seq++));
    if (typed_empty_probe == nullptr) {
      BENTO_ASSIGN_OR_RETURN(typed_empty_probe, with_seq->Slice(0, 0));
    }
    if (chunk->num_rows() == 0) continue;
    BENTO_ASSIGN_OR_RETURN(auto parts,
                           HashPartitionTable(with_seq, {left_key}, P));
    for (int p = 0; p < P; ++p) {
      BENTO_RETURN_NOT_OK(
          store->Append(P + p, parts[static_cast<size_t>(p)]));
    }
  }
  if (typed_empty_probe == nullptr) {
    return Status::Invalid("grace join over an empty stream");
  }

  std::vector<TablePtr> joined;
  for (int p = 0; p < P; ++p) {
    BENTO_ASSIGN_OR_RETURN(auto build_chunks, store->ReadPartition(p));
    TablePtr build_part;
    if (build_chunks.empty()) {
      BENTO_ASSIGN_OR_RETURN(build_part, build->Slice(0, 0));
    } else {
      BENTO_ASSIGN_OR_RETURN(build_part,
                             col::ConcatTablesReleasing(&build_chunks));
    }
    // Probe frames join one at a time, so per-partition memory stays at
    // O(build/P + frame + matches).
    BENTO_ASSIGN_OR_RETURN(auto probe_stream, store->OpenPartition(P + p));
    while (true) {
      BENTO_ASSIGN_OR_RETURN(auto frame, probe_stream->Next());
      if (frame == nullptr) break;
      if (frame->num_rows() == 0) continue;
      BENTO_ASSIGN_OR_RETURN(auto out, kern::HashJoin(frame, build_part,
                                                      left_key, right_key,
                                                      options));
      if (out->num_rows() > 0) joined.push_back(std::move(out));
    }
  }
  store.reset();

  if (joined.empty()) {
    // Nothing matched (or the probe was all-empty): produce the join's
    // output schema exactly as the one-shot HashJoin would.
    BENTO_ASSIGN_OR_RETURN(
        auto out, kern::HashJoin(typed_empty_probe, build, left_key,
                                 right_key, options));
    return out->DropColumns({kSeqColumn});
  }
  BENTO_ASSIGN_OR_RETURN(auto all, col::ConcatTablesReleasing(&joined));
  // ArgSort is stable, so a probe row's multiple matches (equal __seq) keep
  // their build-order — the exact row order HashJoin(probe, build) emits.
  return RestoreSeqOrder(all);
}

Result<TablePtr> DrainStream(ChunkStream* input) {
  std::vector<TablePtr> chunks;
  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, input->Next());
    if (chunk == nullptr) break;
    chunks.push_back(std::move(chunk));
  }
  if (chunks.empty()) return Status::Invalid("drained an empty stream");
  // Releasing concat keeps the peak at one copy plus one column.
  return col::ConcatTablesReleasing(&chunks);
}

Result<TablePtr> MaterializeStreamMapped(ChunkStream* input,
                                         uint64_t inline_limit_bytes,
                                         const MaterializeOptions& options) {
  BENTO_TRACE_SPAN(kIo, "materialize.mapped");
  static obs::Counter* mapped_frames =
      obs::MetricsRegistry::Global().counter("lazy.mapped_materializations");

  // Buffer small results in memory: the file round-trip only pays for
  // frames that would otherwise occupy a big slice of the budget.
  std::vector<TablePtr> pending;
  uint64_t pending_bytes = 0;
  bool exhausted = false;
  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, input->Next());
    if (chunk == nullptr) {
      exhausted = true;
      break;
    }
    pending_bytes += OwnedChunkBytes(chunk);
    pending.push_back(std::move(chunk));
    if (pending_bytes > inline_limit_bytes) break;
  }
  if (exhausted) {
    if (pending.empty()) return Status::Invalid("drained an empty stream");
    return col::ConcatTablesReleasing(&pending);
  }

  // Pass 1: spill the stream chunk-at-a-time, one row group per chunk.
  BENTO_ASSIGN_OR_RETURN(std::string spill_path, TempBcfPath());
  auto spill = [&]() -> Status {
    io::BcfWriteOptions wopts;
    wopts.row_group_rows = 0;  // one group per appended chunk
    wopts.compression = false;
    BENTO_ASSIGN_OR_RETURN(auto writer, io::BcfWriter::Open(spill_path, wopts));
    for (TablePtr& buffered : pending) {
      BENTO_RETURN_NOT_OK(writer->Append(buffered));
      buffered.reset();
    }
    pending.clear();
    while (true) {
      BENTO_ASSIGN_OR_RETURN(auto chunk, input->Next());
      if (chunk == nullptr) break;
      BENTO_RETURN_NOT_OK(writer->Append(chunk));
    }
    return writer->Finish();
  };
  Status st = spill();
  if (!st.ok()) {
    std::remove(spill_path.c_str());
    return st;
  }

  // Pass 2: compact into ONE mappable row group. Column-at-a-time, so the
  // peak is a single column (plus its chunk parts), never the frame.
  BENTO_ASSIGN_OR_RETURN(std::string mapped_path, TempBcfPath());
  auto compact = [&]() -> Status {
    BENTO_TRACE_SPAN(kIo, "materialize.compact");
    BENTO_ASSIGN_OR_RETURN(auto src, io::BcfReader::Open(spill_path));
    io::BcfWriteOptions wopts;
    wopts.compression = false;
    wopts.align_pages = true;
    wopts.mappable = true;
    BENTO_ASSIGN_OR_RETURN(auto dst, io::BcfWriter::Open(mapped_path, wopts));
    const col::SchemaPtr schema = src->schema();
    const int num_cols = schema->num_fields();

    // One column's worth of reassembly (all row groups of one column,
    // concatenated). Readers are per-call when parallel — a shared reader
    // would race on its cursor.
    auto produce_column = [&](io::BcfReader* reader,
                              int c) -> Result<col::ArrayPtr> {
      std::vector<col::TablePtr> parts;
      parts.reserve(static_cast<size_t>(reader->num_row_groups()));
      for (int g = 0; g < reader->num_row_groups(); ++g) {
        BENTO_ASSIGN_OR_RETURN(
            auto part, reader->ReadRowGroup(g, {schema->field(c).name}));
        parts.push_back(std::move(part));
      }
      BENTO_ASSIGN_OR_RETURN(auto column, col::ConcatTablesReleasing(&parts));
      return column->column(0);
    };

    // Parallel compaction: a bounded window of columns is reassembled
    // concurrently ahead of the serial, schema-ordered writer. Peak memory
    // is the window, never the frame; the window shrinks to whatever the
    // pool's remaining headroom can hold (per-column estimate from the
    // spill's own byte count, doubled for the concat's transient parts).
    int window = options.compact_workers;
    if (window > 1 && num_cols > 1) {
      sim::Session* session = sim::Session::Current();
      const uint64_t headroom =
          session != nullptr ? session->host_pool()->HeadroomBytes()
                             : UINT64_MAX;
      if (headroom != UINT64_MAX) {
        struct stat file_info;
        const uint64_t spill_bytes =
            ::stat(spill_path.c_str(), &file_info) == 0
                ? static_cast<uint64_t>(file_info.st_size)
                : pending_bytes;
        const uint64_t per_column =
            2 * (spill_bytes / static_cast<uint64_t>(num_cols) + 1);
        const uint64_t fit = (headroom / 2) / per_column;
        window = static_cast<int>(std::min<uint64_t>(
            static_cast<uint64_t>(window), std::max<uint64_t>(1, fit)));
      }
      window = std::min(window, num_cols);
    }
    if (window <= 1) {
      // Serial column-at-a-time pass (the bounded-memory baseline).
      BENTO_RETURN_NOT_OK(dst->AppendColumnGroup(
          schema, src->num_rows(), [&](int c) -> Result<col::ArrayPtr> {
            return produce_column(src.get(), c);
          }));
      return dst->Finish();
    }

    // One long-lived reader per window slot: task k of every refill uses
    // slot k exclusively, so no cursor is shared, and the (metadata-heavy)
    // open cost is paid once per slot, not once per column.
    std::vector<std::unique_ptr<io::BcfReader>> readers(
        static_cast<size_t>(window));
    for (auto& reader : readers) {
      BENTO_ASSIGN_OR_RETURN(reader, io::BcfReader::Open(spill_path));
    }
    std::vector<col::ArrayPtr> produced;
    int produced_base = 0;
    sim::ParallelOptions popts = options.parallel_options;
    popts.max_workers = window;
    BENTO_RETURN_NOT_OK(dst->AppendColumnGroup(
        schema, src->num_rows(), [&](int c) -> Result<col::ArrayPtr> {
          if (c >= produced_base + static_cast<int>(produced.size())) {
            // The writer consumed the window; refill it in parallel.
            produced_base = c;
            const int count = std::min(window, num_cols - c);
            produced.assign(static_cast<size_t>(count), nullptr);
            BENTO_RETURN_NOT_OK(sim::ParallelFor(
                count,
                [&](int64_t k) -> Status {
                  BENTO_ASSIGN_OR_RETURN(
                      produced[static_cast<size_t>(k)],
                      produce_column(readers[static_cast<size_t>(k)].get(),
                                     c + static_cast<int>(k)));
                  return Status::OK();
                },
                popts));
          }
          return std::move(produced[static_cast<size_t>(c - produced_base)]);
        }));
    return dst->Finish();
  };
  st = compact();
  std::remove(spill_path.c_str());
  if (!st.ok()) {
    std::remove(mapped_path.c_str());
    return st;
  }

  // Pass 3: map the compacted frame back. Unlink immediately — the mapping
  // (or the reader's open descriptor under BENTO_BCF_MMAP=off) keeps the
  // bytes reachable until the last view is released.
  io::BcfReadOptions ropts;
  ropts.use_mmap = true;
  auto reader = io::BcfReader::Open(mapped_path, ropts);
  std::remove(mapped_path.c_str());
  if (!reader.ok()) return reader.status();
  mapped_frames->Increment();
  return reader.ValueOrDie()->ReadRowGroup(0);
}


Result<std::string> SpillStreamToFile(ChunkStream* input) {
  BENTO_TRACE_SPAN(kIo, "spill.stream");
  BENTO_ASSIGN_OR_RETURN(std::string path, TempBcfPath());
  io::BcfWriteOptions wopts;
  wopts.row_group_rows = 4096;  // pass-2 readers stream small batches
  wopts.compression = false;
  BENTO_ASSIGN_OR_RETURN(auto writer, io::BcfWriter::Open(path, wopts));
  bool any = false;
  Status st;
  while (true) {
    auto chunk = input->Next();
    if (!chunk.ok()) {
      st = chunk.status();
      break;
    }
    if (chunk.ValueOrDie() == nullptr) break;
    st = writer->Append(chunk.ValueOrDie());
    if (!st.ok()) break;
    any = true;
  }
  if (st.ok() && !any) st = Status::Invalid("spilled an empty stream");
  if (st.ok()) st = writer->Finish();
  if (!st.ok()) {
    std::remove(path.c_str());
    return st;
  }
  return path;
}

Result<std::vector<std::string>> StreamDistinctValues(
    ChunkStream* input, const std::string& column) {
  BENTO_TRACE_SPAN(kEngine, "twopass.distinct");
  std::vector<std::string> values;
  std::unordered_set<std::string> seen;
  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, input->Next());
    if (chunk == nullptr) break;
    BENTO_ASSIGN_OR_RETURN(auto c, chunk->GetColumn(column));
    for (int64_t i = 0; i < c->length(); ++i) {
      if (c->IsNull(i)) continue;
      std::string v = c->ValueToString(i);
      if (seen.insert(v).second) values.push_back(std::move(v));
    }
  }
  return values;
}

Result<double> StreamColumnMean(ChunkStream* input, const std::string& column) {
  double sum = 0.0;
  int64_t count = 0;
  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, input->Next());
    if (chunk == nullptr) break;
    BENTO_ASSIGN_OR_RETURN(auto c, chunk->GetColumn(column));
    BENTO_ASSIGN_OR_RETURN(auto s, kern::Aggregate(c, AggKind::kSum));
    BENTO_ASSIGN_OR_RETURN(auto n, kern::Aggregate(c, AggKind::kCount));
    if (!s.is_null()) sum += s.double_value();
    count += n.int_value();
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace bento::eng
