#ifndef BENTO_ENGINES_MODIN_H_
#define BENTO_ENGINES_MODIN_H_

#include "engines/eager_engine.h"

namespace bento::eng {

/// \brief Model of Modin: eager Pandas API with partition-parallel core
/// operators. Preparators outside the core-operator set "default to
/// pandas": the frame is materialized into a Pandas-model copy, the op runs
/// single-threaded with object-model costs, and the result is re-partitioned
/// — the round-trip the paper blames for Modin's sort being up to 100x
/// slower than SparkSQL.
///
/// The two engines differ only in scheduler policy, per the paper's
/// explanation: Dask's centralized scheduler pre-assigns task blocks and
/// pays a per-task dispatch latency; Ray's bottom-up scheduler behaves like
/// work stealing.
class ModinEngineBase : public EagerEngineBase {
 public:
  frame::ExecPolicy NativePolicy() const override;
  frame::ExecPolicy EmulatedPolicy() const override;
  // Modin adopts the Pandas data format as its storage layer (Section II).
  int64_t ObjectStringBytes() const override { return 57; }

  Result<col::TablePtr> RunTransform(const col::TablePtr& table,
                                     const frame::Op& op,
                                     const frame::ExecPolicy& policy) const override;

 protected:
  virtual sim::ParallelOptions SchedulerOptions() const = 0;

 private:
  /// Ops Modin's core operators cannot express (handled via to-pandas).
  static bool DefaultsToPandas(frame::OpKind kind);
};

class ModinDaskEngine : public ModinEngineBase {
 public:
  const frame::EngineInfo& info() const override;

 protected:
  sim::ParallelOptions SchedulerOptions() const override;
};

class ModinRayEngine : public ModinEngineBase {
 public:
  const frame::EngineInfo& info() const override;

 protected:
  sim::ParallelOptions SchedulerOptions() const override;
};

}  // namespace bento::eng

#endif  // BENTO_ENGINES_MODIN_H_
