#include "engines/modin.h"

namespace bento::eng {

using frame::ExecPolicy;
using frame::Op;
using frame::OpKind;

ExecPolicy ModinEngineBase::NativePolicy() const {
  ExecPolicy policy;
  policy.null_probe = kern::NullProbe::kMetadata;
  policy.string_engine = kern::StringEngine::kColumnar;
  policy.parallel = true;
  policy.parallel_options = SchedulerOptions();
  policy.row_apply_object_bytes = 16;  // per-partition batching amortizes boxing
  return policy;
}

ExecPolicy ModinEngineBase::EmulatedPolicy() const {
  // "Default to pandas": single-threaded with the object-model costs.
  ExecPolicy policy;
  policy.null_probe = kern::NullProbe::kScan;
  policy.string_engine = kern::StringEngine::kRowObjects;
  policy.parallel = false;
  policy.row_apply_object_bytes = 32;
  policy.row_apply_series_bytes = 8192;
  policy.copy_outputs = true;
  return policy;
}

bool ModinEngineBase::DefaultsToPandas(OpKind kind) {
  switch (kind) {
    case OpKind::kSortValues:      // the paper calls this conversion out
    case OpKind::kDropDuplicates:
    case OpKind::kPivot:
      return true;
    default:
      return false;
  }
}

Result<col::TablePtr> ModinEngineBase::RunTransform(
    const col::TablePtr& table, const Op& op, const ExecPolicy& policy) const {
  if (!DefaultsToPandas(op.kind)) {
    return EagerEngineBase::RunTransform(table, op, policy);
  }
  // Gather: materialize the partitioned frame into one Pandas-model copy...
  BENTO_ASSIGN_OR_RETURN(auto gathered, frame::DeepCopyTable(table));
  // ...run the op single-threaded...
  BENTO_ASSIGN_OR_RETURN(auto result,
                         frame::ExecTransform(gathered, op, EmulatedPolicy()));
  // ...and scatter back into partitions (another copy).
  return frame::DeepCopyTable(result);
}

const frame::EngineInfo& ModinDaskEngine::info() const {
  static const frame::EngineInfo* info = new frame::EngineInfo{
      .id = "modin_dask",
      .paper_name = "ModinD",
      .multithreading = true,
      .gpu_acceleration = false,
      .resource_optimization = true,
      .lazy_evaluation = false,
      .cluster_deploy = true,
      .native_language = "Python",
      .license = "Apache 2.0",
      .modeled_version = "0.16.2",
      .requirements = "Dask",
  };
  return *info;
}

sim::ParallelOptions ModinDaskEngine::SchedulerOptions() const {
  sim::ParallelOptions options;
  options.policy = sim::SchedulePolicy::kStaticBlocks;  // centralized scheduler
  options.per_task_dispatch_s = 200e-6;
  options.mode = sim::ExecutionMode::kReal;  // Dask worker threads
  return options;
}

const frame::EngineInfo& ModinRayEngine::info() const {
  static const frame::EngineInfo* info = new frame::EngineInfo{
      .id = "modin_ray",
      .paper_name = "ModinR",
      .multithreading = true,
      .gpu_acceleration = false,
      .resource_optimization = true,
      .lazy_evaluation = false,
      .cluster_deploy = true,
      .native_language = "Python",
      .license = "Apache 2.0",
      .modeled_version = "0.16.2",
      .requirements = "Ray",
  };
  return *info;
}

sim::ParallelOptions ModinRayEngine::SchedulerOptions() const {
  sim::ParallelOptions options;
  options.policy = sim::SchedulePolicy::kGreedy;  // bottom-up scheduling
  options.per_task_dispatch_s = 50e-6;
  options.mode = sim::ExecutionMode::kReal;  // Ray's work-stealing scheduler
  return options;
}

}  // namespace bento::eng
