#include "engines/vaex.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace bento::eng {

namespace {

/// Deletes the converted store when the last plan referencing it dies.
struct TempFileOwner {
  explicit TempFileOwner(std::string p) : path(std::move(p)) {}
  TempFileOwner(const TempFileOwner&) = delete;
  TempFileOwner& operator=(const TempFileOwner&) = delete;
  ~TempFileOwner() { std::remove(path.c_str()); }

  std::string path;
};

std::string TempStorePath() {
  static std::atomic<uint64_t> counter{0};
  const char* tmp = std::getenv("TMPDIR");
  std::string base = tmp != nullptr ? tmp : "/tmp";
  return base + "/bento_vaex_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".bcf";
}

}  // namespace

const frame::EngineInfo& VaexEngine::info() const {
  static const frame::EngineInfo* info = new frame::EngineInfo{
      .id = "vaex",
      .paper_name = "Vaex",
      .multithreading = true,
      .gpu_acceleration = false,
      .resource_optimization = true,
      .lazy_evaluation = false,  // only virtual columns are lazy (Table I)
      .cluster_deploy = false,
      .native_language = "C/Python",
      .license = "MIT",
      .modeled_version = "4.16.0",
      .requirements = "",
  };
  return *info;
}

frame::ExecPolicy VaexEngine::ExecutionPolicy() const {
  frame::ExecPolicy policy;
  // Row-wise probes re-evaluate values through the expression engine.
  policy.null_probe = kern::NullProbe::kScan;
  policy.string_engine = kern::StringEngine::kColumnar;  // columnar strength
  policy.parallel = true;
  // Vaex's multithreaded C kernels opt into the real backend too.
  policy.parallel_options.mode = sim::ExecutionMode::kReal;
  policy.approx_quantile = true;  // vaex statistics are streaming
  policy.row_apply_object_bytes = 16;
  return policy;
}

double VaexEngine::ActionPenaltySeconds(const frame::Op& op,
                                        const col::TablePtr& table) const {
  // Row-wise inspections run value-by-value through the Python expression
  // graph; ~0.3us of dispatch per visited cell (calibrated so Vaex lands
  // ~100x behind Pandas at isna on Patrol, the paper~s figure). Column-wise operations
  // (srchptn, sort, stats) take the vectorized path and pay nothing.
  constexpr double kPerCellSeconds = 0.3e-6;
  switch (op.kind) {
    case frame::OpKind::kIsNa:
      return kPerCellSeconds * static_cast<double>(table->num_rows()) *
             static_cast<double>(table->num_columns());
    case frame::OpKind::kLocateOutliers:
      return kPerCellSeconds * static_cast<double>(table->num_rows());
    default:
      return 0.0;
  }
}

Result<LazySource> VaexEngine::PrepareSource(LazySource source) const {
  if (source.kind != LazySource::Kind::kCsv) return source;
  // One-time conversion of the CSV into the on-disk columnar store,
  // streamed chunk by chunk so the conversion itself is memory-bounded.
  io::CsvReadOptions options = source.csv_options;
  options.chunk_rows = ChunkRows();
  BENTO_ASSIGN_OR_RETURN(auto reader,
                         io::CsvChunkReader::Open(source.path, options));
  const std::string store_path = TempStorePath();
  io::BcfWriteOptions wopts;
  wopts.row_group_rows = ChunkRows();
  wopts.compression = false;  // mmap store favors direct layout
  wopts.align_pages = true;   // 8-byte pages so mapped reads are zero-copy
  wopts.mappable = true;      // plain/strview pages: strings map too
  BENTO_ASSIGN_OR_RETURN(auto writer, io::BcfWriter::Open(store_path, wopts));
  bool wrote_any = false;
  while (true) {
    BENTO_ASSIGN_OR_RETURN(auto chunk, reader->Next());
    if (chunk == nullptr) break;
    BENTO_RETURN_NOT_OK(writer->Append(chunk));
    wrote_any = true;
  }
  if (!wrote_any) {
    BENTO_ASSIGN_OR_RETURN(auto empty, col::Table::MakeEmpty(reader->schema()));
    BENTO_RETURN_NOT_OK(writer->Append(empty));
  }
  BENTO_RETURN_NOT_OK(writer->Finish());

  LazySource converted;
  converted.kind = LazySource::Kind::kBcf;
  converted.path = store_path;
  converted.owned_resource = std::make_shared<TempFileOwner>(store_path);
  return converted;
}

}  // namespace bento::eng
