#include "engines/chunk_stream.h"

namespace bento::eng {

Result<col::TablePtr> TableChunkStream::Next() {
  if (position_ >= table_->num_rows()) {
    // Emit one empty chunk for empty tables so schemas propagate.
    if (table_->num_rows() == 0 && position_ == 0) {
      position_ = 1;
      return table_;
    }
    return col::TablePtr(nullptr);
  }
  const int64_t n = std::min(chunk_rows_, table_->num_rows() - position_);
  BENTO_ASSIGN_OR_RETURN(auto chunk, table_->Slice(position_, n));
  position_ += n;
  return chunk;
}

Result<std::unique_ptr<CsvChunkStream>> CsvChunkStream::Open(
    const std::string& path, const io::CsvReadOptions& options) {
  BENTO_ASSIGN_OR_RETURN(auto reader, io::CsvChunkReader::Open(path, options));
  return std::unique_ptr<CsvChunkStream>(new CsvChunkStream(std::move(reader)));
}

Result<std::unique_ptr<BcfChunkStream>> BcfChunkStream::Open(
    const std::string& path, std::vector<std::string> projection) {
  BENTO_ASSIGN_OR_RETURN(auto reader, io::BcfReader::Open(path));
  return std::unique_ptr<BcfChunkStream>(
      new BcfChunkStream(std::move(reader), std::move(projection)));
}

Result<col::TablePtr> BcfChunkStream::Next() {
  if (group_ >= reader_->num_row_groups()) return col::TablePtr(nullptr);
  return reader_->ReadRowGroup(group_++, projection_);
}

}  // namespace bento::eng
