#include "engines/chunk_stream.h"

#include "obs/metrics.h"

namespace bento::eng {

Result<col::TablePtr> TableChunkStream::Next() {
  const int64_t total = table_->num_rows();
  if (position_ == 0 && chunk_rows_ >= total) {
    // One-shot stream: covers empty tables (a single zero-row chunk so the
    // schema still propagates downstream) and chunk sizes at or beyond the
    // table, where slicing would only add a needless view layer.
    position_ = total > 0 ? total : 1;
    return table_;
  }
  if (position_ >= total) return col::TablePtr(nullptr);
  const int64_t n = std::min(chunk_rows_, total - position_);
  BENTO_ASSIGN_OR_RETURN(auto chunk, table_->Slice(position_, n));
  position_ += n;
  return chunk;
}

Result<std::unique_ptr<CsvChunkStream>> CsvChunkStream::Open(
    const std::string& path, const io::CsvReadOptions& options) {
  BENTO_ASSIGN_OR_RETURN(auto reader, io::CsvChunkReader::Open(path, options));
  return std::unique_ptr<CsvChunkStream>(new CsvChunkStream(std::move(reader)));
}

Result<std::unique_ptr<BcfChunkStream>> BcfChunkStream::Open(
    const std::string& path, std::vector<std::string> projection,
    std::vector<io::ScanPredicate> predicates,
    const io::BcfReadOptions& options) {
  BENTO_ASSIGN_OR_RETURN(auto reader, io::BcfReader::Open(path, options));
  return std::unique_ptr<BcfChunkStream>(new BcfChunkStream(
      std::move(reader), std::move(projection), std::move(predicates)));
}

Result<col::TablePtr> BcfChunkStream::Next() {
  static obs::Counter* groups_skipped =
      obs::MetricsRegistry::Global().counter("io.bcf.groups_skipped");
  while (group_ < reader_->num_row_groups()) {
    const int group = group_++;
    bool may_match = true;
    for (const io::ScanPredicate& pred : predicates_) {
      if (!reader_->GroupMayMatch(group, pred)) {
        may_match = false;
        break;
      }
    }
    if (!may_match) {
      groups_skipped->Increment();
      continue;
    }
    // Streaming consumes groups front to back; tell the kernel the pages
    // behind us are cold so an mmap'ed scan larger than RAM never pins more
    // than ~one group of page cache. No-op for buffered readers.
    if (last_delivered_ >= 0) reader_->DoneWithGroup(last_delivered_);
    last_delivered_ = group;
    delivered_any_ = true;
    return reader_->ReadRowGroup(group, projection_);
  }
  if (!delivered_any_) {
    // Every group was pruned (or the file is empty): emit one empty chunk so
    // downstream consumers still see the projected schema.
    delivered_any_ = true;
    std::vector<col::Field> fields;
    if (projection_.empty()) {
      fields = reader_->schema()->fields();
    } else {
      for (const std::string& name : projection_) {
        int c = reader_->schema()->IndexOf(name);
        if (c < 0) return Status::KeyError("no column named '", name, "'");
        fields.push_back(reader_->schema()->fields()[static_cast<size_t>(c)]);
      }
    }
    return col::Table::MakeEmpty(
        std::make_shared<col::Schema>(std::move(fields)));
  }
  return col::TablePtr(nullptr);
}

uint64_t OwnedChunkBytes(const col::TablePtr& t) {
  uint64_t total = 0;
  for (int c = 0; c < t->num_columns(); ++c) {
    const col::ArrayPtr& a = t->column(c);
    const int64_t n = a->length();
    total += static_cast<uint64_t>((n + 7) / 8);  // validity upper bound
    switch (a->type()) {
      case col::TypeId::kString: {
        const int64_t* off = a->offsets_data();
        total += static_cast<uint64_t>(n + 1) * 8 +
                 static_cast<uint64_t>(off[n] - off[0]);
        break;
      }
      case col::TypeId::kCategorical:
        total += static_cast<uint64_t>(n) * 4;
        break;
      default:
        total += static_cast<uint64_t>(n) *
                 static_cast<uint64_t>(col::ByteWidth(a->type()));
    }
  }
  return total;
}

}  // namespace bento::eng
