#ifndef BENTO_FRAME_DATAFRAME_H_
#define BENTO_FRAME_DATAFRAME_H_

#include <memory>

#include "columnar/table.h"
#include "frame/op.h"

namespace bento::frame {

/// \brief An engine-owned dataframe handle: the unit the Bento pipeline
/// runner threads through a sequence of preparators.
///
/// Eager engines hold a materialized Table (or partitions of one); lazy
/// engines hold a logical plan that Collect()/actions force. Handles are
/// immutable: Apply returns a new handle.
class DataFrame {
 public:
  using Ptr = std::shared_ptr<DataFrame>;

  virtual ~DataFrame() = default;

  /// Applies a transform preparator; `op.kind` must not be an action.
  virtual Result<Ptr> Apply(const Op& op) = 0;

  /// Runs an action preparator (EDA inspection). Lazy engines force their
  /// pending plan first.
  virtual Result<ActionResult> RunAction(const Op& op) = 0;

  /// Forces execution and returns the materialized table.
  virtual Result<col::TablePtr> Collect() = 0;

  /// Row count (forces execution on lazy engines).
  virtual Result<int64_t> NumRows() {
    BENTO_ASSIGN_OR_RETURN(auto table, Collect());
    return table->num_rows();
  }
};

}  // namespace bento::frame

#endif  // BENTO_FRAME_DATAFRAME_H_
