#include "frame/capabilities.h"

namespace bento::frame {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kIO:
      return "I/O";
    case Stage::kEDA:
      return "EDA";
    case Stage::kDT:
      return "DT";
    case Stage::kDC:
      return "DC";
  }
  return "?";
}

const char* SupportMark(Support s) {
  switch (s) {
    case Support::kFull:
      return "++";
    case Support::kRenamed:
      return "+";
    case Support::kEmulated:
      return "o";
  }
  return "?";
}

const std::vector<std::string>& CapabilityEngineOrder() {
  static const std::vector<std::string>* order = new std::vector<std::string>{
      "spark_pd", "spark_sql", "modin", "polars", "cudf", "vaex", "datatable"};
  return *order;
}

namespace {

constexpr Support F = Support::kFull;
constexpr Support R = Support::kRenamed;
constexpr Support E = Support::kEmulated;

}  // namespace

const std::vector<CapabilityRow>& CapabilityMatrix() {
  // Transcription of the paper's Table II; column order is
  // SparkPD, SparkSQL, Modin, Polars, CuDF, Vaex, DataTable
  // (Pandas itself defines the reference interface and is implicitly Full).
  static const std::vector<CapabilityRow>* matrix = new std::vector<
      CapabilityRow>{
      {Stage::kIO, "load dataframe", "read_csv", "read_csv",
       {F, R, F, F, F, R, R}},
      {Stage::kIO, "output dataframe", "to_csv", "to_csv",
       {F, R, F, R, F, R, F}},
      {Stage::kEDA, "locate missing values", "isna", "isna",
       {F, E, F, R, F, E, R}},
      {Stage::kEDA, "locate outliers", "percentile", "outlier",
       {R, R, F, R, F, R, E}},
      {Stage::kEDA, "search by pattern", "str.contains", "srchptn",
       {F, R, F, R, F, R, F}},
      {Stage::kEDA, "sort values", "sort", "sort",
       {F, R, F, R, F, F, F}},
      {Stage::kEDA, "get columns list", "columns", "gcols",
       {F, R, F, F, F, R, R}},
      {Stage::kEDA, "get columns types", "dtypes", "dtypes",
       {F, R, F, F, F, F, R}},
      {Stage::kEDA, "get dataframe statistics", "describe", "stats",
       {F, R, F, R, F, R, E}},
      {Stage::kEDA, "query columns", "query", "query",
       {F, R, F, R, F, R, E}},
      {Stage::kDT, "cast columns types", "astype", "astype",
       {F, R, F, R, F, R, E}},
      {Stage::kDT, "delete columns", "drop", "drop",
       {F, R, F, F, F, E, E}},
      {Stage::kDT, "rename columns", "rename", "rename",
       {F, E, F, R, F, R, E}},
      {Stage::kDT, "pivot", "pivot_table", "pivot",
       {R, R, F, R, F, E, E}},
      {Stage::kDT, "calculate column using expressions", "apply columnwise",
       "apply", {R, E, F, R, E, R, E}},
      {Stage::kDT, "join dataframes", "merge", "merge",
       {F, E, F, R, F, E, E}},
      {Stage::kDT, "one hot encoding", "get_dummies", "onehot",
       {R, E, F, F, R, R, E}},
      {Stage::kDT, "categorical encoding", "cat.codes", "catenc",
       {R, R, F, R, F, R, E}},
      {Stage::kDT, "group dataframe", "groupby", "groupby",
       {F, R, F, F, F, R, F}},
      {Stage::kDT, "change date & time format", "to_datetime", "chdate",
       {R, R, F, E, F, E, E}},
      {Stage::kDC, "delete empty and invalid rows", "dropna", "dropna",
       {F, R, F, R, F, R, E}},
      {Stage::kDC, "set content case", "str.lower", "lower",
       {F, R, F, R, F, R, F}},
      {Stage::kDC, "normalize numeric values", "round", "round",
       {R, R, F, F, R, R, E}},
      {Stage::kDC, "deduplicate rows", "drop_duplicates", "dedup",
       {R, R, F, R, F, E, E}},
      {Stage::kDC, "fill empty cells", "fillna", "fillna",
       {F, R, F, E, F, R, E}},
      {Stage::kDC, "replace values occurrences", "replace", "replace",
       {R, R, F, E, F, R, E}},
      {Stage::kDC, "edit & replace cell data", "apply rowise", "applyrow",
       {R, E, F, R, F, R, F}},
  };
  return *matrix;
}

Result<Support> GetSupport(const std::string& engine_id,
                           const std::string& op_name) {
  if (engine_id == "pandas" || engine_id == "pandas2") return Support::kFull;
  // Modin variants share a column; so do the Spark APIs with their own ids.
  std::string column = engine_id;
  if (engine_id == "modin_dask" || engine_id == "modin_ray") column = "modin";
  const auto& order = CapabilityEngineOrder();
  int c = -1;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == column) c = static_cast<int>(i);
  }
  if (c < 0) return Status::KeyError("unknown engine '", engine_id, "'");
  for (const CapabilityRow& row : CapabilityMatrix()) {
    if (row.op_name == op_name) return row.support[static_cast<size_t>(c)];
  }
  return Status::KeyError("unknown preparator '", op_name, "'");
}

}  // namespace bento::frame
