#include "frame/exec.h"

#include <cmath>

#include "columnar/builder.h"
#include "expr/eval.h"
#include "obs/trace.h"
#include "expr/parser.h"
#include "frame/dataframe.h"
#include "kernels/arithmetic.h"
#include "kernels/cast.h"
#include "kernels/compare.h"
#include "kernels/datetime.h"
#include "kernels/dedup.h"
#include "kernels/encode.h"
#include "kernels/groupby.h"
#include "kernels/join.h"
#include "kernels/pivot.h"
#include "kernels/selection.h"
#include "kernels/sort.h"
#include "kernels/stats.h"

namespace bento::frame {

namespace {

using col::ArrayPtr;
using col::TablePtr;

/// RAII staging charge modeling boxed per-cell overhead of object-model
/// row iteration.
class StagingCharge {
 public:
  static Result<StagingCharge> Reserve(int64_t bytes) {
    StagingCharge charge;
    if (bytes > 0) {
      charge.pool_ = sim::MemoryPool::Current()->state();
      BENTO_RETURN_NOT_OK(charge.pool_->Reserve(static_cast<uint64_t>(bytes)));
      charge.bytes_ = static_cast<uint64_t>(bytes);
    }
    return charge;
  }

  StagingCharge() = default;
  StagingCharge(StagingCharge&& o) noexcept
      : pool_(o.pool_), bytes_(o.bytes_) {
    o.pool_ = nullptr;
    o.bytes_ = 0;
  }
  StagingCharge& operator=(StagingCharge&& o) noexcept {
    Release();
    pool_ = o.pool_;
    bytes_ = o.bytes_;
    o.pool_ = nullptr;
    o.bytes_ = 0;
    return *this;
  }
  StagingCharge(const StagingCharge&) = delete;
  StagingCharge& operator=(const StagingCharge&) = delete;
  ~StagingCharge() { Release(); }

 private:
  void Release() {
    if (pool_ != nullptr && bytes_ > 0) pool_->Release(bytes_);
    pool_ = nullptr;
    bytes_ = 0;
  }

  // Shared accounting state, kept alive past the owning pool (same
  // rationale as col::Buffer).
  std::shared_ptr<sim::MemoryPool::State> pool_;
  uint64_t bytes_ = 0;
};

Result<TablePtr> MaybeCopy(Result<TablePtr> result, const ExecPolicy& policy) {
  if (!result.ok() || !policy.copy_outputs) return result;
  return DeepCopyTable(result.ValueOrDie());
}

Result<TablePtr> DoSort(const TablePtr& table, const Op& op,
                        const ExecPolicy& policy) {
  if (policy.parallel) {
    BENTO_ASSIGN_OR_RETURN(
        auto indices,
        kern::ArgSortParallel(table, op.sort_keys, policy.parallel_options));
    return kern::TakeTableParallel(table, indices, policy.parallel_options);
  }
  return kern::SortTable(table, op.sort_keys);
}

Result<TablePtr> DoQuery(const TablePtr& table, const Op& op) {
  BENTO_ASSIGN_OR_RETURN(auto expr, expr::ParseExpr(op.text));
  BENTO_ASSIGN_OR_RETURN(auto mask, expr::Evaluate(expr, table));
  if (mask->type() != col::TypeId::kBool) {
    return Status::TypeError("query predicate must be boolean: ", op.text);
  }
  return kern::FilterTable(table, mask);
}

Result<TablePtr> DoApplyExpr(const TablePtr& table, const Op& op) {
  BENTO_ASSIGN_OR_RETURN(auto expr, expr::ParseExpr(op.text));
  BENTO_ASSIGN_OR_RETURN(auto values, expr::Evaluate(expr, table));
  return table->SetColumn(op.new_name, values);
}

Result<TablePtr> DoApplyRow(const TablePtr& table, const Op& op,
                            const ExecPolicy& policy) {
  if (!op.row_fn) return Status::Invalid("apply row op without a function");
  // Stage the boxed-object overhead: per-cell boxing plus a per-row Series
  // materialization, held while the untyped iteration runs. Outside
  // isolated (function-core) measurement the interpreter has time to
  // reclaim most of the churn between preparators — the paper's
  // observation that stage-level Pandas runs avoid the apply OoM.
  int64_t series_bytes = policy.row_apply_series_bytes;
  if (sim::Session::Current() == nullptr ||
      !sim::Session::Current()->isolated_measurement()) {
    series_bytes /= 4;
  }
  BENTO_ASSIGN_OR_RETURN(
      auto staging,
      StagingCharge::Reserve(
          table->num_rows() *
          (policy.row_apply_object_bytes * table->num_columns() +
           series_bytes)));
  ArrayPtr result;
  if (policy.parallel) {
    BENTO_ASSIGN_OR_RETURN(
        result, kern::ApplyRowsParallel(table, op.row_fn, op.row_fn_type,
                                        policy.parallel_options));
  } else {
    BENTO_ASSIGN_OR_RETURN(result,
                           kern::ApplyRows(table, op.row_fn, op.row_fn_type));
  }
  return table->SetColumn(op.new_name, result);
}

Result<TablePtr> DoMerge(const TablePtr& table, const Op& op,
                         const ExecPolicy& policy) {
  if (op.other == nullptr) return Status::Invalid("merge without right side");
  BENTO_ASSIGN_OR_RETURN(auto right, op.other->Collect());
  kern::JoinOptions jopts;
  jopts.type = op.join_type;
  if (policy.parallel) {
    return kern::HashJoinParallel(table, right, op.left_key, op.right_key,
                                  jopts, policy.parallel_options);
  }
  return kern::HashJoin(table, right, op.left_key, op.right_key, jopts);
}

Result<TablePtr> DoGroupBy(const TablePtr& table, const Op& op,
                           const ExecPolicy& policy) {
  if (policy.parallel) {
    return kern::GroupByPartitioned(table, op.columns, op.aggs,
                                    policy.parallel_options);
  }
  return kern::GroupBy(table, op.columns, op.aggs);
}

Result<TablePtr> ReplaceColumn(
    const TablePtr& table, const std::string& name,
    const std::function<Result<ArrayPtr>(const ArrayPtr&)>& fn) {
  BENTO_ASSIGN_OR_RETURN(auto column, table->GetColumn(name));
  BENTO_ASSIGN_OR_RETURN(auto replaced, fn(column));
  return table->SetColumn(name, replaced);
}

/// One component of a kFusedColumn chain: the single-column kernel the
/// standalone op would have dispatched, minus the per-op table rebuild.
Result<ArrayPtr> ApplyFusedStep(const ArrayPtr& column, const Op& step,
                                const ExecPolicy& policy) {
  switch (step.kind) {
    case OpKind::kCast:
      return kern::Cast(column, step.type);
    case OpKind::kStrLower:
      return kern::Lower(column, policy.string_engine);
    case OpKind::kRound:
      return kern::Round(column, step.decimals);
    case OpKind::kReplace:
      return kern::ReplaceValues(column, step.scalar_a, step.scalar_b);
    case OpKind::kToDatetime:
      return kern::ToDatetime(column);
    case OpKind::kCatCodes:
      return kern::CatCodes(column);
    case OpKind::kFillNa:
      if (step.fill_with_mean) return kern::FillNullWithMean(column);
      return kern::FillNull(column, step.scalar_a);
    default:
      return Status::Invalid("op '", OpKindName(step.kind),
                             "' cannot run inside a fused column chain");
  }
}

}  // namespace

Result<col::TablePtr> DeepCopyTable(const col::TablePtr& table) {
  std::vector<ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(table->num_columns()));
  for (const ArrayPtr& c : table->columns()) {
    col::BufferPtr data, offsets, validity;
    if (c->data_buffer() != nullptr) {
      BENTO_ASSIGN_OR_RETURN(data, col::Buffer::CopyOf(c->data_buffer()->data(),
                                                       c->data_buffer()->size()));
    }
    if (c->offsets_buffer() != nullptr) {
      BENTO_ASSIGN_OR_RETURN(
          offsets, col::Buffer::CopyOf(c->offsets_buffer()->data(),
                                       c->offsets_buffer()->size()));
    }
    if (c->validity_buffer() != nullptr) {
      BENTO_ASSIGN_OR_RETURN(
          validity, col::Buffer::CopyOf(c->validity_buffer()->data(),
                                        c->validity_buffer()->size()));
    }
    ArrayPtr copy;
    switch (c->type()) {
      case col::TypeId::kString: {
        BENTO_ASSIGN_OR_RETURN(
            copy, col::Array::MakeString(c->length(), std::move(offsets),
                                         std::move(data), std::move(validity),
                                         c->cached_null_count()));
        break;
      }
      case col::TypeId::kCategorical: {
        BENTO_ASSIGN_OR_RETURN(
            copy, col::Array::MakeCategorical(
                      c->length(), std::move(data), c->dictionary(),
                      std::move(validity), c->cached_null_count()));
        break;
      }
      default: {
        BENTO_ASSIGN_OR_RETURN(
            copy, col::Array::MakeFixed(c->type(), c->length(), std::move(data),
                                        std::move(validity),
                                        c->cached_null_count()));
      }
    }
    columns.push_back(std::move(copy));
  }
  return col::Table::Make(table->schema(), std::move(columns));
}

Result<col::TablePtr> ExecTransform(const col::TablePtr& table, const Op& op,
                                    const ExecPolicy& policy) {
  BENTO_TRACE_SPAN(kEngine, OpKindName(op.kind));
  switch (op.kind) {
    case OpKind::kSortValues:
      return MaybeCopy(DoSort(table, op, policy), policy);
    case OpKind::kQuery:
      return MaybeCopy(DoQuery(table, op), policy);
    case OpKind::kCast:
      return MaybeCopy(ReplaceColumn(table, op.column,
                                     [&](const ArrayPtr& c) {
                                       return kern::Cast(c, op.type);
                                     }),
                       policy);
    case OpKind::kDropColumns:
      return table->DropColumns(op.columns);
    case OpKind::kRename:
      return table->RenameColumns(op.renames);
    case OpKind::kPivot:
      return kern::PivotTable(table, op.pivot_index, op.pivot_columns,
                              op.pivot_values, op.pivot_agg);
    case OpKind::kApplyExpr:
      return MaybeCopy(DoApplyExpr(table, op), policy);
    case OpKind::kMerge:
      return MaybeCopy(DoMerge(table, op, policy), policy);
    case OpKind::kGetDummies:
      return MaybeCopy(kern::GetDummies(table, op.column), policy);
    case OpKind::kCatCodes:
      return MaybeCopy(ReplaceColumn(table, op.column, kern::CatCodes), policy);
    case OpKind::kGroupByAgg:
      return DoGroupBy(table, op, policy);
    case OpKind::kToDatetime:
      return MaybeCopy(ReplaceColumn(table, op.column,
                                     [](const ArrayPtr& c) {
                                       return kern::ToDatetime(c);
                                     }),
                       policy);
    case OpKind::kDropNa:
      return MaybeCopy(kern::DropNullRows(table, op.columns), policy);
    case OpKind::kStrLower:
      return MaybeCopy(ReplaceColumn(table, op.column,
                                     [&](const ArrayPtr& c) {
                                       return kern::Lower(c,
                                                          policy.string_engine);
                                     }),
                       policy);
    case OpKind::kRound:
      return MaybeCopy(ReplaceColumn(table, op.column,
                                     [&](const ArrayPtr& c) {
                                       return kern::Round(c, op.decimals);
                                     }),
                       policy);
    case OpKind::kDropDuplicates:
      if (policy.parallel) {
        return MaybeCopy(kern::DropDuplicatesParallel(table, op.columns,
                                                      policy.parallel_options),
                         policy);
      }
      return MaybeCopy(kern::DropDuplicates(table, op.columns), policy);
    case OpKind::kFillNa:
      return MaybeCopy(
          ReplaceColumn(table, op.column,
                        [&](const ArrayPtr& c) -> Result<ArrayPtr> {
                          if (op.fill_with_mean) {
                            return kern::FillNullWithMean(c);
                          }
                          return kern::FillNull(c, op.scalar_a);
                        }),
          policy);
    case OpKind::kReplace:
      return MaybeCopy(ReplaceColumn(table, op.column,
                                     [&](const ArrayPtr& c) {
                                       return kern::ReplaceValues(
                                           c, op.scalar_a, op.scalar_b);
                                     }),
                       policy);
    case OpKind::kApplyRow:
      return MaybeCopy(DoApplyRow(table, op, policy), policy);
    case OpKind::kFusedColumn:
      return MaybeCopy(
          ReplaceColumn(table, op.column,
                        [&](const ArrayPtr& c) -> Result<ArrayPtr> {
                          ArrayPtr current = c;
                          for (const Op& step : op.fused) {
                            BENTO_ASSIGN_OR_RETURN(
                                current, ApplyFusedStep(current, step, policy));
                          }
                          return current;
                        }),
          policy);
    default:
      return Status::Invalid("op '", OpKindName(op.kind),
                             "' is an action, not a transform");
  }
}

Result<ActionResult> ExecAction(const col::TablePtr& table, const Op& op,
                                const ExecPolicy& policy) {
  BENTO_TRACE_SPAN(kEngine, OpKindName(op.kind));
  ActionResult result;
  switch (op.kind) {
    case OpKind::kIsNa: {
      BENTO_ASSIGN_OR_RETURN(result.counts,
                             kern::NullCounts(table, policy.null_probe));
      return result;
    }
    case OpKind::kLocateOutliers: {
      BENTO_ASSIGN_OR_RETURN(auto column, table->GetColumn(op.column));
      if (policy.approx_quantile) {
        BENTO_ASSIGN_OR_RETURN(result.lower_bound,
                               kern::QuantileApprox(column, op.lower_q));
        BENTO_ASSIGN_OR_RETURN(result.upper_bound,
                               kern::QuantileApprox(column, op.upper_q));
      } else {
        BENTO_ASSIGN_OR_RETURN(result.lower_bound,
                               kern::Quantile(column, op.lower_q));
        BENTO_ASSIGN_OR_RETURN(result.upper_bound,
                               kern::Quantile(column, op.upper_q));
      }
      // Count rows outside the bounds.
      BENTO_ASSIGN_OR_RETURN(
          auto low_mask,
          kern::CompareScalar(column, kern::CompareOp::kLt,
                              col::Scalar::Double(result.lower_bound)));
      BENTO_ASSIGN_OR_RETURN(
          auto high_mask,
          kern::CompareScalar(column, kern::CompareOp::kGt,
                              col::Scalar::Double(result.upper_bound)));
      BENTO_ASSIGN_OR_RETURN(auto outliers,
                             kern::BooleanOr(low_mask, high_mask));
      int64_t count = 0;
      const uint8_t* data = outliers->bool_data();
      for (int64_t i = 0; i < outliers->length(); ++i) {
        if (outliers->IsValid(i) && data[i] != 0) ++count;
      }
      result.count = count;
      return result;
    }
    case OpKind::kSearchPattern: {
      BENTO_ASSIGN_OR_RETURN(auto column, table->GetColumn(op.column));
      BENTO_ASSIGN_OR_RETURN(
          auto mask, kern::Contains(column, op.text, /*case_sensitive=*/true,
                                    policy.string_engine));
      int64_t count = 0;
      const uint8_t* data = mask->bool_data();
      for (int64_t i = 0; i < mask->length(); ++i) {
        if (mask->IsValid(i) && data[i] != 0) ++count;
      }
      result.count = count;
      return result;
    }
    case OpKind::kGetColumns: {
      result.names = table->schema()->names();
      return result;
    }
    case OpKind::kGetDtypes: {
      for (const col::Field& f : table->schema()->fields()) {
        result.names.push_back(f.name);
        result.types.push_back(f.type);
      }
      return result;
    }
    case OpKind::kDescribe: {
      if (policy.parallel) {
        BENTO_ASSIGN_OR_RETURN(
            result.table,
            kern::DescribeParallel(table, policy.approx_quantile,
                                   policy.parallel_options));
      } else {
        BENTO_ASSIGN_OR_RETURN(result.table,
                               kern::Describe(table, policy.approx_quantile));
      }
      return result;
    }
    default:
      return Status::Invalid("op '", OpKindName(op.kind),
                             "' is a transform, not an action");
  }
}

}  // namespace bento::frame
