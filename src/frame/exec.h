#ifndef BENTO_FRAME_EXEC_H_
#define BENTO_FRAME_EXEC_H_

#include "frame/op.h"
#include "kernels/null_ops.h"
#include "kernels/string_ops.h"
#include "sim/parallel.h"

namespace bento::frame {

/// \brief Knobs that differentiate how engines execute the shared kernels.
///
/// The engines of this repo mostly differ not in *what* a preparator
/// computes but in *how*: null probing strategy, string representation,
/// degree and policy of parallelism, and memory side effects. ExecPolicy
/// captures those axes so one execution core serves every eager engine.
struct ExecPolicy {
  kern::NullProbe null_probe = kern::NullProbe::kMetadata;
  kern::StringEngine string_engine = kern::StringEngine::kColumnar;
  /// Use chunk/partition-parallel kernel variants.
  bool parallel = false;
  sim::ParallelOptions parallel_options;
  /// Bytes of boxed per-cell overhead staged during row-wise apply (the
  /// Python-object model; 0 disables). Charged to the current memory pool
  /// for the duration of the op — the mechanism behind the paper's Pandas
  /// OoM on `apply` (Fig. 4).
  int64_t row_apply_object_bytes = 0;
  /// Additional per-row staging (the materialized Series object each
  /// Pandas `apply(axis=1)` call constructs, plus allocator churn).
  int64_t row_apply_series_bytes = 0;
  /// Percentiles via the single-pass histogram estimate instead of the
  /// copy-and-sort exact path (the optimized engines' approach).
  bool approx_quantile = false;
  /// Materialize a defensive copy of the output table after every
  /// transform (the eager Pandas chained-assignment model): doubles the
  /// transient footprint, which the lazy engines avoid.
  bool copy_outputs = false;
};

/// \brief Executes one transform preparator on a materialized table.
Result<col::TablePtr> ExecTransform(const col::TablePtr& table, const Op& op,
                                    const ExecPolicy& policy);

/// \brief Executes one action preparator on a materialized table.
Result<ActionResult> ExecAction(const col::TablePtr& table, const Op& op,
                                const ExecPolicy& policy);

/// \brief Deep copy of a table into freshly allocated (tracked) buffers.
Result<col::TablePtr> DeepCopyTable(const col::TablePtr& table);

}  // namespace bento::frame

#endif  // BENTO_FRAME_EXEC_H_
