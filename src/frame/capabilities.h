#ifndef BENTO_FRAME_CAPABILITIES_H_
#define BENTO_FRAME_CAPABILITIES_H_

#include <string>
#include <vector>

#include "frame/op.h"

namespace bento::frame {

/// \brief Pipeline stages of the paper (Section III-B).
enum class Stage { kIO, kEDA, kDT, kDC };

const char* StageName(Stage stage);

/// \brief Pandas-API compatibility level of one preparator in one library
/// (the paper's Table II legend).
enum class Support {
  kFull,      ///< interface fully matches Pandas (✓✓)
  kRenamed,   ///< available under a different interface (✓)
  kEmulated,  ///< missing from the API; implemented by the Bento authors (○)
};

const char* SupportMark(Support s);  // "++", "+", "o"

/// \brief One row of Table II.
struct CapabilityRow {
  Stage stage;
  std::string preparator;   ///< descriptive name ("locate missing values")
  std::string pandas_api;   ///< Pandas spelling ("isna")
  std::string op_name;      ///< OpKindName ("isna"), or "read_csv"/"to_csv"
  /// Support per engine id, in the order of CapabilityEngineOrder().
  std::vector<Support> support;
};

/// \brief Engine ids of the Table II columns (Pandas first).
const std::vector<std::string>& CapabilityEngineOrder();

/// \brief The transcribed Table II.
const std::vector<CapabilityRow>& CapabilityMatrix();

/// \brief Support of `engine_id` for `op_name`; Pandas-family ids report
/// full support.
Result<Support> GetSupport(const std::string& engine_id,
                           const std::string& op_name);

}  // namespace bento::frame

#endif  // BENTO_FRAME_CAPABILITIES_H_
