#ifndef BENTO_FRAME_OP_H_
#define BENTO_FRAME_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/scalar.h"
#include "kernels/apply.h"
#include "kernels/common.h"

namespace bento::frame {

class DataFrame;

/// \brief The 27 preparators of the paper's Table II (I/O lives on Engine).
///
/// Transforms produce a new frame; actions (EDA inspections) produce an
/// ActionResult and leave the frame unchanged. Lazy engines record
/// transforms into a logical plan and force it at actions / Collect().
enum class OpKind {
  // --- EDA (actions except kSortValues / kQuery) ---
  kIsNa,            ///< locate missing values: per-column null counts
  kLocateOutliers,  ///< percentile bounds + count of rows outside them
  kSearchPattern,   ///< str.contains: number of matching rows
  kSortValues,      ///< sort (transform)
  kGetColumns,      ///< column list
  kGetDtypes,       ///< column types
  kDescribe,        ///< summary statistics table
  kQuery,           ///< filter rows by a predicate string (transform)
  // --- Data transformation ---
  kCast,            ///< astype
  kDropColumns,     ///< drop
  kRename,          ///< rename
  kPivot,           ///< pivot_table (transform: result replaces frame)
  kApplyExpr,       ///< calculate column using expressions (column-wise apply)
  kMerge,           ///< join dataframes
  kGetDummies,      ///< one-hot encoding
  kCatCodes,        ///< categorical encoding
  kGroupByAgg,      ///< group dataframe (transform: aggregated frame)
  kToDatetime,      ///< change date & time format
  // --- Data cleaning ---
  kDropNa,          ///< delete empty and invalid rows
  kStrLower,        ///< set content case
  kRound,           ///< normalize numeric values
  kDropDuplicates,  ///< deduplicate rows
  kFillNa,          ///< fill empty cells
  kReplace,         ///< replace values occurrences
  kApplyRow,        ///< edit & replace cell data (row-wise apply)
  // --- optimizer-synthesized (never produced by the user-facing API) ---
  kFusedColumn,     ///< chain of single-column maps run in one pass
};

/// \brief True for EDA inspections that return data instead of a new frame.
bool IsAction(OpKind kind);

/// \brief Stable snake_case name ("isna", "sort", ...), used by pipeline
/// JSON specs and reports.
const char* OpKindName(OpKind kind);

/// \brief One preparator application. A tagged union: each kind reads the
/// fields its factory sets. Build with the factories below.
struct Op {
  OpKind kind = OpKind::kIsNa;

  std::string column;                    // primary column
  std::vector<std::string> columns;      // subset / keys / drop list
  std::string text;                      // pattern / query / expression
  std::string new_name;                  // new column name
  std::vector<std::pair<std::string, std::string>> renames;
  std::vector<kern::SortKey> sort_keys;
  std::vector<kern::AggSpec> aggs;
  col::Scalar scalar_a;                  // fill value / replace-from
  col::Scalar scalar_b;                  // replace-to
  bool fill_with_mean = false;
  int decimals = 2;
  double lower_q = 0.01;
  double upper_q = 0.99;
  col::TypeId type = col::TypeId::kFloat64;
  kern::AggKind pivot_agg = kern::AggKind::kMean;
  std::string pivot_index, pivot_columns, pivot_values;
  kern::JoinType join_type = kern::JoinType::kInner;
  std::string left_key, right_key;
  std::shared_ptr<DataFrame> other;      // merge right side
  kern::RowFn row_fn;                    // row-wise apply body
  col::TypeId row_fn_type = col::TypeId::kFloat64;
  std::vector<Op> fused;                 // kFusedColumn component steps

  // --- factories ---
  static Op IsNa();
  static Op LocateOutliers(std::string column, double lower_q = 0.01,
                           double upper_q = 0.99);
  static Op SearchPattern(std::string column, std::string pattern);
  static Op SortValues(std::vector<kern::SortKey> keys);
  static Op GetColumns();
  static Op GetDtypes();
  static Op Describe();
  static Op Query(std::string predicate);
  static Op Cast(std::string column, col::TypeId type);
  static Op DropColumns(std::vector<std::string> columns);
  static Op Rename(std::vector<std::pair<std::string, std::string>> renames);
  static Op Pivot(std::string index, std::string columns, std::string values,
                  kern::AggKind agg = kern::AggKind::kMean);
  static Op ApplyExpr(std::string new_name, std::string expression);
  static Op Merge(std::shared_ptr<DataFrame> other, std::string left_key,
                  std::string right_key,
                  kern::JoinType type = kern::JoinType::kInner);
  static Op GetDummies(std::string column);
  static Op CatCodes(std::string column);
  static Op GroupByAgg(std::vector<std::string> keys,
                       std::vector<kern::AggSpec> aggs);
  static Op ToDatetime(std::string column);
  static Op DropNa(std::vector<std::string> subset = {});
  static Op StrLower(std::string column);
  static Op Round(std::string column, int decimals);
  static Op DropDuplicates(std::vector<std::string> subset = {});
  static Op FillNa(std::string column, col::Scalar value);
  static Op FillNaMean(std::string column);
  static Op Replace(std::string column, col::Scalar from, col::Scalar to);
  static Op ApplyRow(std::string new_name, kern::RowFn fn,
                     col::TypeId out_type);
  /// Optimizer-only: runs `steps` (single-column maps over `column`) as one
  /// GetColumn -> kernel chain -> SetColumn pass. Built by the fusion rule.
  static Op FusedColumn(std::string column, std::vector<Op> steps);
};

/// \brief Output of an action preparator.
struct ActionResult {
  col::TablePtr table;                    // describe output
  std::vector<std::string> names;         // column list / dtype names
  std::vector<col::TypeId> types;         // dtypes
  std::vector<int64_t> counts;            // isna per-column counts
  int64_t count = 0;                      // pattern hits / outlier rows
  double lower_bound = 0.0;               // outlier bounds
  double upper_bound = 0.0;
};

}  // namespace bento::frame

#endif  // BENTO_FRAME_OP_H_
