#ifndef BENTO_FRAME_ENGINE_H_
#define BENTO_FRAME_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "frame/dataframe.h"
#include "io/csv.h"

namespace bento::frame {

/// \brief Static description of an engine: the rows of the paper's Table I.
struct EngineInfo {
  std::string id;          ///< registry key, e.g. "polars"
  std::string paper_name;  ///< display name, e.g. "Polars"
  bool multithreading = false;
  bool gpu_acceleration = false;
  bool resource_optimization = false;
  bool lazy_evaluation = false;
  bool cluster_deploy = false;
  std::string native_language;
  std::string license;
  std::string modeled_version;  ///< version of the library being modeled
  std::string requirements;     ///< extra runtime requirements ("CUDA", ...)
};

/// \brief A dataframe implementation: I/O entry points plus a DataFrame
/// factory. One Engine instance per evaluated library model.
///
/// Frames created by a heap-managed engine (CreateEngine) keep their engine
/// alive; frames from a stack-allocated engine borrow it, and the caller
/// must keep the engine in scope.
class Engine : public std::enable_shared_from_this<Engine> {
 public:
  virtual ~Engine() = default;

  virtual const EngineInfo& info() const = 0;

  /// I/O preparators (the paper's Figures 5 and 6).
  virtual Result<DataFrame::Ptr> ReadCsv(const std::string& path,
                                         const io::CsvReadOptions& options = {}) = 0;
  /// BCF is this repo's Parquet; engines without Parquet support
  /// (DataTable) return NotImplemented.
  virtual Result<DataFrame::Ptr> ReadBcf(const std::string& path) = 0;

  virtual Status WriteCsv(const DataFrame::Ptr& frame,
                          const std::string& path) = 0;
  virtual Status WriteBcf(const DataFrame::Ptr& frame,
                          const std::string& path) = 0;

  /// Wraps an in-memory table (tests, examples, generated data).
  virtual Result<DataFrame::Ptr> FromTable(col::TablePtr table) = 0;
};

using EnginePtr = std::shared_ptr<Engine>;

/// \brief Creates an engine by id. Known ids: pandas, pandas2, spark_pd,
/// spark_sql, modin_dask, modin_ray, polars, cudf, vaex, datatable.
Result<EnginePtr> CreateEngine(const std::string& id);

/// \brief All registry ids, in the paper's presentation order.
std::vector<std::string> EngineIds();

}  // namespace bento::frame

#endif  // BENTO_FRAME_ENGINE_H_
