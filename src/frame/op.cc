#include "frame/op.h"

namespace bento::frame {

bool IsAction(OpKind kind) {
  switch (kind) {
    case OpKind::kIsNa:
    case OpKind::kLocateOutliers:
    case OpKind::kSearchPattern:
    case OpKind::kGetColumns:
    case OpKind::kGetDtypes:
    case OpKind::kDescribe:
      return true;
    default:
      return false;
  }
}

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kIsNa:
      return "isna";
    case OpKind::kLocateOutliers:
      return "outlier";
    case OpKind::kSearchPattern:
      return "srchptn";
    case OpKind::kSortValues:
      return "sort";
    case OpKind::kGetColumns:
      return "gcols";
    case OpKind::kGetDtypes:
      return "dtypes";
    case OpKind::kDescribe:
      return "stats";
    case OpKind::kQuery:
      return "query";
    case OpKind::kCast:
      return "astype";
    case OpKind::kDropColumns:
      return "drop";
    case OpKind::kRename:
      return "rename";
    case OpKind::kPivot:
      return "pivot";
    case OpKind::kApplyExpr:
      return "apply";
    case OpKind::kMerge:
      return "merge";
    case OpKind::kGetDummies:
      return "onehot";
    case OpKind::kCatCodes:
      return "catenc";
    case OpKind::kGroupByAgg:
      return "groupby";
    case OpKind::kToDatetime:
      return "chdate";
    case OpKind::kDropNa:
      return "dropna";
    case OpKind::kStrLower:
      return "lower";
    case OpKind::kRound:
      return "round";
    case OpKind::kDropDuplicates:
      return "dedup";
    case OpKind::kFillNa:
      return "fillna";
    case OpKind::kReplace:
      return "replace";
    case OpKind::kApplyRow:
      return "applyrow";
    case OpKind::kFusedColumn:
      return "fused";
  }
  return "?";
}

Op Op::IsNa() {
  Op op;
  op.kind = OpKind::kIsNa;
  return op;
}

Op Op::LocateOutliers(std::string column, double lower_q, double upper_q) {
  Op op;
  op.kind = OpKind::kLocateOutliers;
  op.column = std::move(column);
  op.lower_q = lower_q;
  op.upper_q = upper_q;
  return op;
}

Op Op::SearchPattern(std::string column, std::string pattern) {
  Op op;
  op.kind = OpKind::kSearchPattern;
  op.column = std::move(column);
  op.text = std::move(pattern);
  return op;
}

Op Op::SortValues(std::vector<kern::SortKey> keys) {
  Op op;
  op.kind = OpKind::kSortValues;
  op.sort_keys = std::move(keys);
  return op;
}

Op Op::GetColumns() {
  Op op;
  op.kind = OpKind::kGetColumns;
  return op;
}

Op Op::GetDtypes() {
  Op op;
  op.kind = OpKind::kGetDtypes;
  return op;
}

Op Op::Describe() {
  Op op;
  op.kind = OpKind::kDescribe;
  return op;
}

Op Op::Query(std::string predicate) {
  Op op;
  op.kind = OpKind::kQuery;
  op.text = std::move(predicate);
  return op;
}

Op Op::Cast(std::string column, col::TypeId type) {
  Op op;
  op.kind = OpKind::kCast;
  op.column = std::move(column);
  op.type = type;
  return op;
}

Op Op::DropColumns(std::vector<std::string> columns) {
  Op op;
  op.kind = OpKind::kDropColumns;
  op.columns = std::move(columns);
  return op;
}

Op Op::Rename(std::vector<std::pair<std::string, std::string>> renames) {
  Op op;
  op.kind = OpKind::kRename;
  op.renames = std::move(renames);
  return op;
}

Op Op::Pivot(std::string index, std::string columns, std::string values,
             kern::AggKind agg) {
  Op op;
  op.kind = OpKind::kPivot;
  op.pivot_index = std::move(index);
  op.pivot_columns = std::move(columns);
  op.pivot_values = std::move(values);
  op.pivot_agg = agg;
  return op;
}

Op Op::ApplyExpr(std::string new_name, std::string expression) {
  Op op;
  op.kind = OpKind::kApplyExpr;
  op.new_name = std::move(new_name);
  op.text = std::move(expression);
  return op;
}

Op Op::Merge(std::shared_ptr<DataFrame> other, std::string left_key,
             std::string right_key, kern::JoinType type) {
  Op op;
  op.kind = OpKind::kMerge;
  op.other = std::move(other);
  op.left_key = std::move(left_key);
  op.right_key = std::move(right_key);
  op.join_type = type;
  return op;
}

Op Op::GetDummies(std::string column) {
  Op op;
  op.kind = OpKind::kGetDummies;
  op.column = std::move(column);
  return op;
}

Op Op::CatCodes(std::string column) {
  Op op;
  op.kind = OpKind::kCatCodes;
  op.column = std::move(column);
  return op;
}

Op Op::GroupByAgg(std::vector<std::string> keys,
                  std::vector<kern::AggSpec> aggs) {
  Op op;
  op.kind = OpKind::kGroupByAgg;
  op.columns = std::move(keys);
  op.aggs = std::move(aggs);
  return op;
}

Op Op::ToDatetime(std::string column) {
  Op op;
  op.kind = OpKind::kToDatetime;
  op.column = std::move(column);
  return op;
}

Op Op::DropNa(std::vector<std::string> subset) {
  Op op;
  op.kind = OpKind::kDropNa;
  op.columns = std::move(subset);
  return op;
}

Op Op::StrLower(std::string column) {
  Op op;
  op.kind = OpKind::kStrLower;
  op.column = std::move(column);
  return op;
}

Op Op::Round(std::string column, int decimals) {
  Op op;
  op.kind = OpKind::kRound;
  op.column = std::move(column);
  op.decimals = decimals;
  return op;
}

Op Op::DropDuplicates(std::vector<std::string> subset) {
  Op op;
  op.kind = OpKind::kDropDuplicates;
  op.columns = std::move(subset);
  return op;
}

Op Op::FillNa(std::string column, col::Scalar value) {
  Op op;
  op.kind = OpKind::kFillNa;
  op.column = std::move(column);
  op.scalar_a = std::move(value);
  return op;
}

Op Op::FillNaMean(std::string column) {
  Op op;
  op.kind = OpKind::kFillNa;
  op.column = std::move(column);
  op.fill_with_mean = true;
  return op;
}

Op Op::Replace(std::string column, col::Scalar from, col::Scalar to) {
  Op op;
  op.kind = OpKind::kReplace;
  op.column = std::move(column);
  op.scalar_a = std::move(from);
  op.scalar_b = std::move(to);
  return op;
}

Op Op::ApplyRow(std::string new_name, kern::RowFn fn, col::TypeId out_type) {
  Op op;
  op.kind = OpKind::kApplyRow;
  op.new_name = std::move(new_name);
  op.row_fn = std::move(fn);
  op.row_fn_type = out_type;
  return op;
}

Op Op::FusedColumn(std::string column, std::vector<Op> steps) {
  Op op;
  op.kind = OpKind::kFusedColumn;
  op.column = std::move(column);
  op.fused = std::move(steps);
  return op;
}

}  // namespace bento::frame
