#ifndef BENTO_EXPR_EVAL_H_
#define BENTO_EXPR_EVAL_H_

#include "columnar/table.h"
#include "expr/expr.h"

namespace bento::expr {

/// \brief Vectorized evaluation of `expr` against the columns of `table`;
/// literals broadcast. One result value per row.
Result<col::ArrayPtr> Evaluate(const ExprPtr& expr, const col::TablePtr& table);

}  // namespace bento::expr

#endif  // BENTO_EXPR_EVAL_H_
