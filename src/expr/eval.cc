#include "expr/eval.h"

#include "columnar/builder.h"
#include "kernels/arithmetic.h"
#include "kernels/compare.h"
#include "kernels/datetime.h"
#include "kernels/null_ops.h"
#include "kernels/string_ops.h"

namespace bento::expr {

namespace {

using col::ArrayPtr;
using col::Scalar;
using col::TablePtr;
using col::TypeId;

Result<ArrayPtr> BroadcastLiteral(const Scalar& value, int64_t length) {
  switch (value.kind()) {
    case Scalar::Kind::kNull:
      return col::Array::MakeAllNull(TypeId::kFloat64, length);
    case Scalar::Kind::kInt: {
      col::Int64Builder b;
      b.Reserve(length);
      for (int64_t i = 0; i < length; ++i) b.Append(value.int_value());
      return b.Finish();
    }
    case Scalar::Kind::kDouble: {
      col::Float64Builder b;
      b.Reserve(length);
      for (int64_t i = 0; i < length; ++i) b.Append(value.double_value());
      return b.Finish();
    }
    case Scalar::Kind::kBool: {
      col::BoolBuilder b;
      b.Reserve(length);
      for (int64_t i = 0; i < length; ++i) b.Append(value.bool_value());
      return b.Finish();
    }
    case Scalar::Kind::kString: {
      col::StringBuilder b;
      b.Reserve(length);
      for (int64_t i = 0; i < length; ++i) b.Append(value.string_value());
      return b.Finish();
    }
    case Scalar::Kind::kTimestamp: {
      col::TimestampBuilder b;
      b.Reserve(length);
      for (int64_t i = 0; i < length; ++i) b.Append(value.int_value());
      return b.Finish();
    }
  }
  return Status::Invalid("bad literal");
}

kern::BinaryOp ToKernelArith(BinOpKind op) {
  switch (op) {
    case BinOpKind::kAdd:
      return kern::BinaryOp::kAdd;
    case BinOpKind::kSub:
      return kern::BinaryOp::kSub;
    case BinOpKind::kMul:
      return kern::BinaryOp::kMul;
    case BinOpKind::kDiv:
      return kern::BinaryOp::kDiv;
    case BinOpKind::kMod:
      return kern::BinaryOp::kMod;
    default:
      return kern::BinaryOp::kPow;
  }
}

kern::CompareOp ToKernelCompare(BinOpKind op) {
  switch (op) {
    case BinOpKind::kEq:
      return kern::CompareOp::kEq;
    case BinOpKind::kNe:
      return kern::CompareOp::kNe;
    case BinOpKind::kLt:
      return kern::CompareOp::kLt;
    case BinOpKind::kLe:
      return kern::CompareOp::kLe;
    case BinOpKind::kGt:
      return kern::CompareOp::kGt;
    default:
      return kern::CompareOp::kGe;
  }
}

Result<Scalar> LiteralOf(const ExprPtr& e) {
  if (e->kind() != Expr::Kind::kLiteral) {
    return Status::Invalid("expected literal argument, got ", e->ToString());
  }
  return e->literal();
}

Result<ArrayPtr> EvalCall(const Expr& expr, const TablePtr& table);

Result<ArrayPtr> EvalImpl(const Expr& expr, const TablePtr& table) {
  switch (expr.kind()) {
    case Expr::Kind::kColumn:
      return table->GetColumn(expr.column_name());
    case Expr::Kind::kLiteral:
      return BroadcastLiteral(expr.literal(), table->num_rows());
    case Expr::Kind::kUnary: {
      BENTO_ASSIGN_OR_RETURN(auto v, EvalImpl(*expr.operand(), table));
      if (expr.un_op() == UnOpKind::kNot) return kern::BooleanNot(v);
      return kern::UnaryNumeric(v, kern::UnaryOp::kNeg);
    }
    case Expr::Kind::kBinary: {
      const BinOpKind op = expr.bin_op();
      // Literal RHS gets the scalar kernels (no broadcast materialization).
      if (IsComparison(op) && expr.right()->kind() == Expr::Kind::kLiteral) {
        BENTO_ASSIGN_OR_RETURN(auto l, EvalImpl(*expr.left(), table));
        return kern::CompareScalar(l, ToKernelCompare(op),
                                   expr.right()->literal());
      }
      if (IsArithmetic(op) && expr.right()->kind() == Expr::Kind::kLiteral) {
        BENTO_ASSIGN_OR_RETURN(auto l, EvalImpl(*expr.left(), table));
        return kern::BinaryNumericScalar(l, ToKernelArith(op),
                                         expr.right()->literal());
      }
      BENTO_ASSIGN_OR_RETURN(auto l, EvalImpl(*expr.left(), table));
      BENTO_ASSIGN_OR_RETURN(auto r, EvalImpl(*expr.right(), table));
      if (op == BinOpKind::kAnd) return kern::BooleanAnd(l, r);
      if (op == BinOpKind::kOr) return kern::BooleanOr(l, r);
      if (IsComparison(op)) {
        return kern::CompareArrays(l, ToKernelCompare(op), r);
      }
      return kern::BinaryNumeric(l, ToKernelArith(op), r);
    }
    case Expr::Kind::kCall:
      return EvalCall(expr, table);
  }
  return Status::Invalid("bad expression");
}

Result<ArrayPtr> EvalCall(const Expr& expr, const TablePtr& table) {
  const std::string& fn = expr.fn_name();
  const auto& args = expr.args();
  auto arity = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::Invalid(fn, " expects ", n, " arguments, got ",
                             args.size());
    }
    return Status::OK();
  };

  if (fn == "abs" || fn == "log" || fn == "log1p" || fn == "exp" ||
      fn == "sqrt") {
    BENTO_RETURN_NOT_OK(arity(1));
    BENTO_ASSIGN_OR_RETURN(auto v, EvalImpl(*args[0], table));
    kern::UnaryOp op = fn == "abs"     ? kern::UnaryOp::kAbs
                       : fn == "log"   ? kern::UnaryOp::kLog
                       : fn == "log1p" ? kern::UnaryOp::kLog1p
                       : fn == "exp"   ? kern::UnaryOp::kExp
                                       : kern::UnaryOp::kSqrt;
    return kern::UnaryNumeric(v, op);
  }
  if (fn == "round") {
    if (args.size() != 1 && args.size() != 2) {
      return Status::Invalid("round expects 1 or 2 arguments");
    }
    BENTO_ASSIGN_OR_RETURN(auto v, EvalImpl(*args[0], table));
    int decimals = 0;
    if (args.size() == 2) {
      BENTO_ASSIGN_OR_RETURN(Scalar k, LiteralOf(args[1]));
      BENTO_ASSIGN_OR_RETURN(int64_t ki, k.AsInt());
      decimals = static_cast<int>(ki);
    }
    return kern::Round(v, decimals);
  }
  if (fn == "lower") {
    BENTO_RETURN_NOT_OK(arity(1));
    BENTO_ASSIGN_OR_RETURN(auto v, EvalImpl(*args[0], table));
    return kern::Lower(v);
  }
  if (fn == "length") {
    BENTO_RETURN_NOT_OK(arity(1));
    BENTO_ASSIGN_OR_RETURN(auto v, EvalImpl(*args[0], table));
    return kern::StringLength(v);
  }
  if (fn == "contains") {
    BENTO_RETURN_NOT_OK(arity(2));
    BENTO_ASSIGN_OR_RETURN(auto v, EvalImpl(*args[0], table));
    BENTO_ASSIGN_OR_RETURN(Scalar pat, LiteralOf(args[1]));
    if (pat.kind() != Scalar::Kind::kString) {
      return Status::TypeError("contains pattern must be a string literal");
    }
    return kern::Contains(v, pat.string_value());
  }
  if (fn == "isnull") {
    BENTO_RETURN_NOT_OK(arity(1));
    BENTO_ASSIGN_OR_RETURN(auto v, EvalImpl(*args[0], table));
    return kern::IsNull(v, kern::NullProbe::kMetadata);
  }
  if (fn == "fillna") {
    BENTO_RETURN_NOT_OK(arity(2));
    BENTO_ASSIGN_OR_RETURN(auto v, EvalImpl(*args[0], table));
    BENTO_ASSIGN_OR_RETURN(Scalar fill, LiteralOf(args[1]));
    return kern::FillNull(v, fill);
  }
  if (fn == "year" || fn == "month" || fn == "day" || fn == "hour" ||
      fn == "weekday") {
    BENTO_RETURN_NOT_OK(arity(1));
    BENTO_ASSIGN_OR_RETURN(auto v, EvalImpl(*args[0], table));
    return kern::DatetimeComponent(v, fn);
  }
  return Status::NotImplemented("unknown function '", fn, "'");
}

}  // namespace

Result<ArrayPtr> Evaluate(const ExprPtr& expr, const TablePtr& table) {
  if (expr == nullptr) return Status::Invalid("null expression");
  return EvalImpl(*expr, table);
}

}  // namespace bento::expr
