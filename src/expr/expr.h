#ifndef BENTO_EXPR_EXPR_H_
#define BENTO_EXPR_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "columnar/scalar.h"
#include "columnar/schema.h"

namespace bento::expr {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class BinOpKind {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kPow,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnOpKind { kNeg, kNot };

/// \brief Scalar-expression AST shared by the lazy engines (Polars plans,
/// Spark logical plans, Vaex virtual columns) and by the `query` / `apply`
/// preparators.
///
/// Nodes are immutable and shared; build with the factory functions below.
class Expr {
 public:
  enum class Kind { kColumn, kLiteral, kBinary, kUnary, kCall };

  static ExprPtr Column(std::string name);
  static ExprPtr Literal(col::Scalar value);
  static ExprPtr Binary(BinOpKind op, ExprPtr left, ExprPtr right);
  static ExprPtr Unary(UnOpKind op, ExprPtr operand);
  /// Known functions: abs, log, log1p, exp, sqrt, round(x, k), lower(s),
  /// length(s), contains(s, "pat"), isnull(x), fillna(x, v), year(ts),
  /// month(ts), day(ts), hour(ts), weekday(ts).
  static ExprPtr Call(std::string fn, std::vector<ExprPtr> args);

  Kind kind() const { return kind_; }
  const std::string& column_name() const { return name_; }
  const col::Scalar& literal() const { return literal_; }
  BinOpKind bin_op() const { return bin_op_; }
  UnOpKind un_op() const { return un_op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  const ExprPtr& operand() const { return left_; }
  const std::string& fn_name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

  /// Adds every referenced column name to `out` (projection pushdown input).
  void CollectColumns(std::set<std::string>* out) const;

  /// Infix rendering for plan display ("(a + 1) > 2").
  std::string ToString() const;

  /// Result type of this expression over `schema`; type errors surface here.
  Result<col::TypeId> InferType(const col::Schema& schema) const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kLiteral;
  std::string name_;       // column name or function name
  col::Scalar literal_;
  BinOpKind bin_op_ = BinOpKind::kAdd;
  UnOpKind un_op_ = UnOpKind::kNeg;
  ExprPtr left_;
  ExprPtr right_;
  std::vector<ExprPtr> args_;
};

const char* BinOpName(BinOpKind op);
bool IsComparison(BinOpKind op);
bool IsArithmetic(BinOpKind op);

}  // namespace bento::expr

#endif  // BENTO_EXPR_EXPR_H_
