#include "expr/expr.h"

namespace bento::expr {

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kColumn;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(col::Scalar value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

ExprPtr Expr::Binary(BinOpKind op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kBinary;
  e->bin_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Unary(UnOpKind op, ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kUnary;
  e->un_op_ = op;
  e->left_ = std::move(operand);
  return e;
}

ExprPtr Expr::Call(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kCall;
  e->name_ = std::move(fn);
  e->args_ = std::move(args);
  return e;
}

void Expr::CollectColumns(std::set<std::string>* out) const {
  switch (kind_) {
    case Kind::kColumn:
      out->insert(name_);
      break;
    case Kind::kLiteral:
      break;
    case Kind::kBinary:
      left_->CollectColumns(out);
      right_->CollectColumns(out);
      break;
    case Kind::kUnary:
      left_->CollectColumns(out);
      break;
    case Kind::kCall:
      for (const ExprPtr& a : args_) a->CollectColumns(out);
      break;
  }
}

const char* BinOpName(BinOpKind op) {
  switch (op) {
    case BinOpKind::kAdd:
      return "+";
    case BinOpKind::kSub:
      return "-";
    case BinOpKind::kMul:
      return "*";
    case BinOpKind::kDiv:
      return "/";
    case BinOpKind::kMod:
      return "%";
    case BinOpKind::kPow:
      return "**";
    case BinOpKind::kEq:
      return "==";
    case BinOpKind::kNe:
      return "!=";
    case BinOpKind::kLt:
      return "<";
    case BinOpKind::kLe:
      return "<=";
    case BinOpKind::kGt:
      return ">";
    case BinOpKind::kGe:
      return ">=";
    case BinOpKind::kAnd:
      return "and";
    case BinOpKind::kOr:
      return "or";
  }
  return "?";
}

bool IsComparison(BinOpKind op) {
  switch (op) {
    case BinOpKind::kEq:
    case BinOpKind::kNe:
    case BinOpKind::kLt:
    case BinOpKind::kLe:
    case BinOpKind::kGt:
    case BinOpKind::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinOpKind op) {
  switch (op) {
    case BinOpKind::kAdd:
    case BinOpKind::kSub:
    case BinOpKind::kMul:
    case BinOpKind::kDiv:
    case BinOpKind::kMod:
    case BinOpKind::kPow:
      return true;
    default:
      return false;
  }
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return name_;
    case Kind::kLiteral:
      return literal_.kind() == col::Scalar::Kind::kString
                 ? "'" + literal_.ToString() + "'"
                 : literal_.ToString();
    case Kind::kBinary:
      return "(" + left_->ToString() + " " + BinOpName(bin_op_) + " " +
             right_->ToString() + ")";
    case Kind::kUnary:
      return un_op_ == UnOpKind::kNeg ? "(-" + left_->ToString() + ")"
                                      : "(not " + left_->ToString() + ")";
    case Kind::kCall: {
      std::string out = name_ + "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out += ", ";
        out += args_[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

Result<col::TypeId> Expr::InferType(const col::Schema& schema) const {
  using col::TypeId;
  switch (kind_) {
    case Kind::kColumn: {
      BENTO_ASSIGN_OR_RETURN(auto field, schema.GetField(name_));
      return field.type;
    }
    case Kind::kLiteral:
      switch (literal_.kind()) {
        case col::Scalar::Kind::kInt:
          return TypeId::kInt64;
        case col::Scalar::Kind::kDouble:
          return TypeId::kFloat64;
        case col::Scalar::Kind::kBool:
          return TypeId::kBool;
        case col::Scalar::Kind::kString:
          return TypeId::kString;
        case col::Scalar::Kind::kTimestamp:
          return TypeId::kTimestamp;
        case col::Scalar::Kind::kNull:
          return TypeId::kFloat64;  // typeless null defaults to float
      }
      return TypeId::kFloat64;
    case Kind::kBinary: {
      BENTO_ASSIGN_OR_RETURN(TypeId lt, left_->InferType(schema));
      BENTO_ASSIGN_OR_RETURN(TypeId rt, right_->InferType(schema));
      if (IsComparison(bin_op_) || bin_op_ == BinOpKind::kAnd ||
          bin_op_ == BinOpKind::kOr) {
        return TypeId::kBool;
      }
      if (!col::IsNumeric(lt) && lt != TypeId::kBool) {
        return Status::TypeError("arithmetic on ", col::TypeName(lt));
      }
      if (!col::IsNumeric(rt) && rt != TypeId::kBool) {
        return Status::TypeError("arithmetic on ", col::TypeName(rt));
      }
      if (lt == TypeId::kInt64 && rt == TypeId::kInt64 &&
          (bin_op_ == BinOpKind::kAdd || bin_op_ == BinOpKind::kSub ||
           bin_op_ == BinOpKind::kMul)) {
        return TypeId::kInt64;
      }
      return TypeId::kFloat64;
    }
    case Kind::kUnary: {
      BENTO_ASSIGN_OR_RETURN(TypeId t, left_->InferType(schema));
      if (un_op_ == UnOpKind::kNot) return TypeId::kBool;
      return t == TypeId::kInt64 ? TypeId::kInt64 : TypeId::kFloat64;
    }
    case Kind::kCall: {
      if (name_ == "lower") return TypeId::kString;
      if (name_ == "contains" || name_ == "isnull") return TypeId::kBool;
      if (name_ == "length" || name_ == "year" || name_ == "month" ||
          name_ == "day" || name_ == "hour" || name_ == "weekday") {
        return TypeId::kInt64;
      }
      if (name_ == "abs" || name_ == "round" || name_ == "fillna") {
        if (args_.empty()) return Status::Invalid(name_, " needs arguments");
        return args_[0]->InferType(schema);
      }
      // log / log1p / exp / sqrt
      return TypeId::kFloat64;
    }
  }
  return Status::Invalid("bad expression");
}

}  // namespace bento::expr
