#include "expr/parser.h"

#include <cctype>
#include <charconv>

namespace bento::expr {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<ExprPtr> Parse() {
    BENTO_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::Invalid("unexpected trailing input at offset ", pos_,
                             " in expression: ", std::string(text_));
    }
    return e;
  }

 private:
  Result<ExprPtr> ParseOr() {
    BENTO_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (true) {
      SkipWs();
      if (ConsumeWord("or") || Consume("||") || ConsumeSingle('|')) {
        BENTO_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
        left = Expr::Binary(BinOpKind::kOr, left, right);
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseAnd() {
    BENTO_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (true) {
      SkipWs();
      if (ConsumeWord("and") || Consume("&&") || ConsumeSingle('&')) {
        BENTO_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
        left = Expr::Binary(BinOpKind::kAnd, left, right);
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseNot() {
    SkipWs();
    if (ConsumeWord("not") || (Peek() == '!' && PeekAt(1) != '=')) {
      if (Peek() == '!') ++pos_;
      BENTO_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Expr::Unary(UnOpKind::kNot, e);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    BENTO_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    SkipWs();
    BinOpKind op;
    if (Consume("==")) {
      op = BinOpKind::kEq;
    } else if (Consume("!=")) {
      op = BinOpKind::kNe;
    } else if (Consume("<=")) {
      op = BinOpKind::kLe;
    } else if (Consume(">=")) {
      op = BinOpKind::kGe;
    } else if (Peek() == '<') {
      ++pos_;
      op = BinOpKind::kLt;
    } else if (Peek() == '>') {
      ++pos_;
      op = BinOpKind::kGt;
    } else {
      return left;
    }
    BENTO_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return Expr::Binary(op, left, right);
  }

  Result<ExprPtr> ParseAdditive() {
    BENTO_ASSIGN_OR_RETURN(ExprPtr left, ParseTerm());
    while (true) {
      SkipWs();
      char c = Peek();
      if (c == '+' || c == '-') {
        ++pos_;
        BENTO_ASSIGN_OR_RETURN(ExprPtr right, ParseTerm());
        left = Expr::Binary(c == '+' ? BinOpKind::kAdd : BinOpKind::kSub, left,
                            right);
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseTerm() {
    BENTO_ASSIGN_OR_RETURN(ExprPtr left, ParsePower());
    while (true) {
      SkipWs();
      char c = Peek();
      if (c == '*' && PeekAt(1) != '*') {
        ++pos_;
        BENTO_ASSIGN_OR_RETURN(ExprPtr right, ParsePower());
        left = Expr::Binary(BinOpKind::kMul, left, right);
      } else if (c == '/') {
        ++pos_;
        BENTO_ASSIGN_OR_RETURN(ExprPtr right, ParsePower());
        left = Expr::Binary(BinOpKind::kDiv, left, right);
      } else if (c == '%') {
        ++pos_;
        BENTO_ASSIGN_OR_RETURN(ExprPtr right, ParsePower());
        left = Expr::Binary(BinOpKind::kMod, left, right);
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParsePower() {
    BENTO_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    SkipWs();
    if (Consume("**")) {
      BENTO_ASSIGN_OR_RETURN(ExprPtr right, ParsePower());  // right-assoc
      return Expr::Binary(BinOpKind::kPow, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    SkipWs();
    if (Peek() == '-') {
      ++pos_;
      BENTO_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      // Fold negative numeric literals.
      if (e->kind() == Expr::Kind::kLiteral && e->literal().is_numeric()) {
        if (e->literal().kind() == col::Scalar::Kind::kInt) {
          return Expr::Literal(col::Scalar::Int(-e->literal().int_value()));
        }
        return Expr::Literal(col::Scalar::Double(-e->literal().double_value()));
      }
      return Expr::Unary(UnOpKind::kNeg, e);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    SkipWs();
    char c = Peek();
    if (c == '\0') return Status::Invalid("unexpected end of expression");
    if (c == '(') {
      ++pos_;
      BENTO_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
      SkipWs();
      if (Peek() != ')') return Status::Invalid("expected ')' at ", pos_);
      ++pos_;
      return e;
    }
    if (c == '\'' || c == '"') return ParseString(c);
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return ParseNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ParseIdentifier();
    }
    return Status::Invalid("unexpected character '", std::string(1, c),
                           "' at offset ", pos_);
  }

  Result<ExprPtr> ParseString(char quote) {
    ++pos_;
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      value.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return Status::Invalid("unterminated string");
    ++pos_;
    return Expr::Literal(col::Scalar::Str(std::move(value)));
  }

  Result<ExprPtr> ParseNumber() {
    size_t start = pos_;
    bool is_float = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_float = true;
        ++pos_;
        if ((c == 'e' || c == 'E') && pos_ < text_.size() &&
            (text_[pos_] == '+' || text_[pos_] == '-')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    std::string_view tok = text_.substr(start, pos_ - start);
    if (is_float) {
      double v = 0.0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec != std::errc() || p != tok.data() + tok.size()) {
        return Status::Invalid("bad number '", std::string(tok), "'");
      }
      return Expr::Literal(col::Scalar::Double(v));
    }
    int64_t v = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      return Status::Invalid("bad number '", std::string(tok), "'");
    }
    return Expr::Literal(col::Scalar::Int(v));
  }

  Result<ExprPtr> ParseIdentifier() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.')) {
      ++pos_;
    }
    std::string name(text_.substr(start, pos_ - start));
    if (name == "true" || name == "True") {
      return Expr::Literal(col::Scalar::Bool(true));
    }
    if (name == "false" || name == "False") {
      return Expr::Literal(col::Scalar::Bool(false));
    }
    if (name == "null" || name == "None" || name == "nan" || name == "NaN") {
      return Expr::Literal(col::Scalar::Null());
    }
    SkipWs();
    if (Peek() == '(') {
      ++pos_;
      std::vector<ExprPtr> args;
      SkipWs();
      if (Peek() == ')') {
        ++pos_;
        return Expr::Call(std::move(name), std::move(args));
      }
      while (true) {
        BENTO_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
        args.push_back(std::move(arg));
        SkipWs();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        if (Peek() == ')') {
          ++pos_;
          break;
        }
        return Status::Invalid("expected ',' or ')' in call at ", pos_);
      }
      return Expr::Call(std::move(name), std::move(args));
    }
    return Expr::Column(std::move(name));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char PeekAt(size_t k) const {
    return pos_ + k < text_.size() ? text_[pos_ + k] : '\0';
  }

  bool Consume(std::string_view tok) {
    if (text_.substr(pos_, tok.size()) == tok) {
      pos_ += tok.size();
      return true;
    }
    return false;
  }

  /// Consumes `c` only when not doubled (so "|" doesn't eat half of "||").
  bool ConsumeSingle(char c) {
    if (Peek() == c && PeekAt(1) != c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consumes a keyword followed by a non-identifier character.
  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseExpr(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace bento::expr
