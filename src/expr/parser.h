#ifndef BENTO_EXPR_PARSER_H_
#define BENTO_EXPR_PARSER_H_

#include <string_view>

#include "expr/expr.h"

namespace bento::expr {

/// \brief Parses a Pandas-`query`-style expression string into an AST.
///
/// Grammar (precedence climbing, loosest first):
///   or_expr    := and_expr (("or" | "||" | "|") and_expr)*
///   and_expr   := not_expr (("and" | "&&" | "&") not_expr)*
///   not_expr   := ("not" | "!") not_expr | comparison
///   comparison := additive (("=="|"!="|"<"|"<="|">"|">=") additive)?
///   additive   := term (("+"|"-") term)*
///   term       := power (("*"|"/"|"%") power)*
///   power      := unary ("**" power)?
///   unary      := "-" unary | primary
///   primary    := number | 'string' | "string" | true | false | null
///              | identifier | identifier "(" args ")" | "(" or_expr ")"
///
/// Identifiers are column names unless followed by "(", in which case they
/// are function calls (see Expr::Call for the function inventory).
Result<ExprPtr> ParseExpr(std::string_view text);

}  // namespace bento::expr

#endif  // BENTO_EXPR_PARSER_H_
