#include "io/encoding.h"

#include <cstring>
#include <unordered_map>

#include "columnar/builder.h"

namespace bento::io {

using col::Array;
using col::ArrayPtr;
using col::TypeId;

void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

Result<uint64_t> GetVarint(const uint8_t* data, size_t size, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < size) {
    uint8_t b = data[(*pos)++];
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) break;
  }
  return Status::IOError("corrupt varint");
}

namespace {

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

Result<uint32_t> GetU32(const uint8_t* data, size_t size, size_t* pos) {
  if (*pos + 4 > size) return Status::IOError("corrupt u32");
  uint32_t v;
  std::memcpy(&v, data + *pos, 4);
  *pos += 4;
  return v;
}

Result<std::vector<uint8_t>> EncodePlain(const ArrayPtr& a) {
  std::vector<uint8_t> out;
  if (a->type() == TypeId::kString) {
    for (int64_t i = 0; i < a->length(); ++i) {
      std::string_view v = a->IsValid(i) ? a->GetView(i) : std::string_view();
      PutU32(static_cast<uint32_t>(v.size()), &out);
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  }
  const size_t nbytes = static_cast<size_t>(a->length()) *
                        static_cast<size_t>(col::ByteWidth(a->type()));
  out.resize(nbytes);
  if (nbytes > 0) std::memcpy(out.data(), a->data_buffer()->data(), nbytes);
  return out;
}

Result<std::vector<uint8_t>> EncodeDelta(const ArrayPtr& a) {
  if (a->type() != TypeId::kInt64 && a->type() != TypeId::kTimestamp) {
    return Status::Invalid("DELTA encoding requires int64/timestamp");
  }
  std::vector<uint8_t> out;
  out.reserve(static_cast<size_t>(a->length()) * 2);
  const int64_t* data = a->int64_data();
  int64_t prev = 0;
  for (int64_t i = 0; i < a->length(); ++i) {
    int64_t v = a->IsValid(i) ? data[i] : prev;  // nulls carry previous value
    PutVarint(ZigZag(v - prev), &out);
    prev = v;
  }
  return out;
}

Result<std::vector<uint8_t>> EncodeRle(const ArrayPtr& a) {
  if (a->type() != TypeId::kBool) {
    return Status::Invalid("RLE encoding requires bool");
  }
  std::vector<uint8_t> out;
  const uint8_t* data = a->bool_data();
  int64_t i = 0;
  while (i < a->length()) {
    const uint8_t v = a->IsValid(i) ? (data[i] != 0 ? 1 : 0) : 0;
    int64_t run = 1;
    while (i + run < a->length()) {
      const uint8_t w =
          a->IsValid(i + run) ? (data[i + run] != 0 ? 1 : 0) : 0;
      if (w != v) break;
      ++run;
    }
    PutVarint(static_cast<uint64_t>(run), &out);
    out.push_back(v);
    i += run;
  }
  return out;
}

/// STRVIEW page: (n+1) little-endian int64 offsets rebased to zero, then the
/// concatenated character bytes. Null slots repeat the previous offset. This
/// is exactly the StringArray buffer pair, so aligned uncompressed pages can
/// be wrapped instead of decoded.
Result<std::vector<uint8_t>> EncodeStrView(const ArrayPtr& a) {
  if (a->type() != TypeId::kString) {
    return Status::Invalid("STRVIEW encoding requires string");
  }
  const int64_t n = a->length();
  uint64_t char_bytes = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (a->IsValid(i)) char_bytes += a->GetView(i).size();
  }
  std::vector<uint8_t> out(static_cast<size_t>(n + 1) * 8 + char_bytes);
  uint8_t* offsets = out.data();
  uint8_t* chars = out.data() + static_cast<size_t>(n + 1) * 8;
  int64_t off = 0;
  for (int64_t i = 0; i < n; ++i) {
    std::memcpy(offsets + i * 8, &off, 8);
    if (a->IsValid(i)) {
      std::string_view v = a->GetView(i);
      std::memcpy(chars + off, v.data(), v.size());
      off += static_cast<int64_t>(v.size());
    }
  }
  std::memcpy(offsets + n * 8, &off, 8);
  return out;
}

Result<std::vector<uint8_t>> EncodeDict(const ArrayPtr& a) {
  std::vector<std::string_view> dict;
  std::vector<uint32_t> codes(static_cast<size_t>(a->length()), 0);

  if (a->type() == TypeId::kCategorical) {
    const auto& d = *a->dictionary();
    dict.reserve(d.size());
    for (const std::string& s : d) dict.emplace_back(s);
    for (int64_t i = 0; i < a->length(); ++i) {
      codes[static_cast<size_t>(i)] =
          a->IsValid(i) ? static_cast<uint32_t>(a->codes_data()[i]) : 0;
    }
  } else if (a->type() == TypeId::kString) {
    std::unordered_map<std::string_view, uint32_t> lookup;
    for (int64_t i = 0; i < a->length(); ++i) {
      if (!a->IsValid(i)) continue;
      std::string_view v = a->GetView(i);
      auto [it, inserted] =
          lookup.emplace(v, static_cast<uint32_t>(dict.size()));
      if (inserted) dict.push_back(v);
      codes[static_cast<size_t>(i)] = it->second;
    }
  } else {
    return Status::Invalid("DICT encoding requires string/categorical");
  }

  std::vector<uint8_t> out;
  PutU32(static_cast<uint32_t>(dict.size()), &out);
  for (std::string_view v : dict) {
    PutU32(static_cast<uint32_t>(v.size()), &out);
    out.insert(out.end(), v.begin(), v.end());
  }
  for (uint32_t c : codes) PutU32(c, &out);
  return out;
}

}  // namespace

Encoding ChooseEncoding(const ArrayPtr& values) {
  switch (values->type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return Encoding::kDelta;
    case TypeId::kBool:
      return Encoding::kRle;
    case TypeId::kCategorical:
      return Encoding::kDict;
    case TypeId::kString: {
      // Sample cardinality on a prefix; dictionary-encode when repetitive.
      const int64_t sample = std::min<int64_t>(values->length(), 1024);
      std::unordered_map<std::string_view, int> seen;
      for (int64_t i = 0; i < sample; ++i) {
        if (values->IsValid(i)) seen.emplace(values->GetView(i), 0);
      }
      if (sample > 16 &&
          static_cast<int64_t>(seen.size()) * 4 < sample) {
        return Encoding::kDict;
      }
      return Encoding::kStrView;
    }
    case TypeId::kFloat64:
      return Encoding::kPlain;
  }
  return Encoding::kPlain;
}

Encoding MappableEncoding(const ArrayPtr& values) {
  switch (values->type()) {
    case TypeId::kString:
      return Encoding::kStrView;
    case TypeId::kCategorical:
      return Encoding::kDict;
    default:
      return Encoding::kPlain;
  }
}

Result<std::vector<uint8_t>> EncodeArray(const ArrayPtr& values,
                                         Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return EncodePlain(values);
    case Encoding::kDelta:
      return EncodeDelta(values);
    case Encoding::kDict:
      return EncodeDict(values);
    case Encoding::kRle:
      return EncodeRle(values);
    case Encoding::kStrView:
      return EncodeStrView(values);
  }
  return Status::Invalid("unknown encoding");
}

Status CheckStrViewOffsets(const uint8_t* data, size_t size, int64_t length) {
  const size_t offsets_bytes = static_cast<size_t>(length + 1) * 8;
  if (size < offsets_bytes) return Status::IOError("corrupt string page");
  const size_t char_bytes = size - offsets_bytes;
  int64_t prev = 0;
  for (int64_t i = 0; i <= length; ++i) {
    int64_t off;
    std::memcpy(&off, data + static_cast<size_t>(i) * 8, 8);
    if (off < prev || (i == 0 && off != 0) ||
        off > static_cast<int64_t>(char_bytes)) {
      return Status::IOError("corrupt string page");
    }
    prev = off;
  }
  return Status::OK();
}

namespace {

Result<ArrayPtr> DecodePlain(TypeId type, const uint8_t* data, size_t size,
                             int64_t length, col::BufferPtr validity,
                             int64_t null_count) {
  if (type == TypeId::kString) {
    col::StringBuilder b;
    b.Reserve(length);
    size_t pos = 0;
    const uint8_t* bits = validity != nullptr ? validity->data() : nullptr;
    for (int64_t i = 0; i < length; ++i) {
      BENTO_ASSIGN_OR_RETURN(uint32_t len, GetU32(data, size, &pos));
      if (pos + len > size) return Status::IOError("corrupt string page");
      const bool valid = bits == nullptr || col::BitIsSet(bits, i);
      b.AppendMaybe(
          std::string_view(reinterpret_cast<const char*>(data + pos), len),
          valid);
      pos += len;
    }
    return b.Finish();
  }
  const size_t expected = static_cast<size_t>(length) *
                          static_cast<size_t>(col::ByteWidth(type));
  if (size < expected) return Status::IOError("short fixed-width page");
  BENTO_ASSIGN_OR_RETURN(auto buf, col::Buffer::CopyOf(data, expected));
  return Array::MakeFixed(type, length, std::move(buf), std::move(validity),
                          null_count);
}

Result<ArrayPtr> DecodeDelta(TypeId type, const uint8_t* data, size_t size,
                             int64_t length, col::BufferPtr validity,
                             int64_t null_count) {
  BENTO_ASSIGN_OR_RETURN(
      auto buf, col::Buffer::Allocate(static_cast<uint64_t>(length) * 8));
  int64_t* out = buf->mutable_data_as<int64_t>();
  size_t pos = 0;
  int64_t prev = 0;
  for (int64_t i = 0; i < length; ++i) {
    BENTO_ASSIGN_OR_RETURN(uint64_t zz, GetVarint(data, size, &pos));
    prev += UnZigZag(zz);
    out[i] = prev;
  }
  return Array::MakeFixed(type, length, std::move(buf), std::move(validity),
                          null_count);
}

Result<ArrayPtr> DecodeRle(const uint8_t* data, size_t size, int64_t length,
                           col::BufferPtr validity, int64_t null_count) {
  BENTO_ASSIGN_OR_RETURN(
      auto buf, col::Buffer::Allocate(static_cast<uint64_t>(length)));
  uint8_t* out = buf->mutable_data();
  size_t pos = 0;
  int64_t emitted = 0;
  while (emitted < length) {
    BENTO_ASSIGN_OR_RETURN(uint64_t run, GetVarint(data, size, &pos));
    if (pos >= size) return Status::IOError("corrupt RLE page");
    const uint8_t v = data[pos++];
    if (emitted + static_cast<int64_t>(run) > length) {
      return Status::IOError("RLE overrun");
    }
    std::memset(out + emitted, v, run);
    emitted += static_cast<int64_t>(run);
  }
  return Array::MakeFixed(TypeId::kBool, length, std::move(buf),
                          std::move(validity), null_count);
}

Result<ArrayPtr> DecodeDict(TypeId type, const uint8_t* data, size_t size,
                            int64_t length, col::BufferPtr validity,
                            int64_t null_count) {
  size_t pos = 0;
  BENTO_ASSIGN_OR_RETURN(uint32_t dict_size, GetU32(data, size, &pos));
  auto dict = std::make_shared<std::vector<std::string>>();
  dict->reserve(dict_size);
  for (uint32_t k = 0; k < dict_size; ++k) {
    BENTO_ASSIGN_OR_RETURN(uint32_t len, GetU32(data, size, &pos));
    if (pos + len > size) return Status::IOError("corrupt dictionary");
    dict->emplace_back(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
  }

  if (type == TypeId::kCategorical) {
    BENTO_ASSIGN_OR_RETURN(
        auto codes, col::Buffer::Allocate(static_cast<uint64_t>(length) * 4));
    int32_t* out = codes->mutable_data_as<int32_t>();
    for (int64_t i = 0; i < length; ++i) {
      BENTO_ASSIGN_OR_RETURN(uint32_t c, GetU32(data, size, &pos));
      if (c >= dict_size &&
          !(validity != nullptr && !col::BitIsSet(validity->data(), i))) {
        return Status::IOError("dictionary code out of range");
      }
      out[i] = static_cast<int32_t>(c);
    }
    return Array::MakeCategorical(length, std::move(codes), std::move(dict),
                                  std::move(validity), null_count);
  }

  // Decode into plain strings.
  col::StringBuilder b;
  b.Reserve(length);
  const uint8_t* bits = validity != nullptr ? validity->data() : nullptr;
  for (int64_t i = 0; i < length; ++i) {
    BENTO_ASSIGN_OR_RETURN(uint32_t c, GetU32(data, size, &pos));
    const bool valid = bits == nullptr || col::BitIsSet(bits, i);
    if (!valid) {
      b.AppendNull();
    } else {
      if (c >= dict_size) return Status::IOError("dictionary code out of range");
      b.Append((*dict)[c]);
    }
  }
  return b.Finish();
}

Result<ArrayPtr> DecodeStrView(TypeId type, const uint8_t* data, size_t size,
                               int64_t length, col::BufferPtr validity,
                               int64_t null_count) {
  if (type != TypeId::kString) {
    return Status::IOError("STRVIEW page for non-string column");
  }
  BENTO_RETURN_NOT_OK(CheckStrViewOffsets(data, size, length));
  const size_t offsets_bytes = static_cast<size_t>(length + 1) * 8;
  int64_t char_bytes;
  std::memcpy(&char_bytes, data + static_cast<size_t>(length) * 8, 8);
  BENTO_ASSIGN_OR_RETURN(auto offsets,
                         col::Buffer::CopyOf(data, offsets_bytes));
  BENTO_ASSIGN_OR_RETURN(
      auto chars, col::Buffer::CopyOf(data + offsets_bytes,
                                      static_cast<size_t>(char_bytes)));
  return Array::MakeString(length, std::move(offsets), std::move(chars),
                           std::move(validity), null_count);
}

}  // namespace

Result<ArrayPtr> DecodeArray(TypeId type, Encoding encoding,
                             const uint8_t* data, size_t size, int64_t length,
                             col::BufferPtr validity, int64_t null_count) {
  switch (encoding) {
    case Encoding::kPlain:
      return DecodePlain(type, data, size, length, std::move(validity),
                         null_count);
    case Encoding::kDelta:
      return DecodeDelta(type, data, size, length, std::move(validity),
                         null_count);
    case Encoding::kDict:
      return DecodeDict(type, data, size, length, std::move(validity),
                        null_count);
    case Encoding::kRle:
      return DecodeRle(data, size, length, std::move(validity), null_count);
    case Encoding::kStrView:
      return DecodeStrView(type, data, size, length, std::move(validity),
                           null_count);
  }
  return Status::Invalid("unknown encoding");
}

}  // namespace bento::io
