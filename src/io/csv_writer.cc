#include <cstdio>

#include "io/csv.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace bento::io {

namespace {

bool NeedsQuoting(std::string_view v, char delimiter) {
  for (char c : v) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string_view v, char delimiter, std::string* out) {
  if (!NeedsQuoting(v, delimiter)) {
    out->append(v);
    return;
  }
  out->push_back('"');
  for (char c : v) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendCell(const col::Array& column, int64_t row, char delimiter,
                std::string* out) {
  if (column.IsNull(row)) return;  // nulls serialize as empty fields
  switch (column.type()) {
    case col::TypeId::kInt64:
      out->append(std::to_string(column.int64_data()[row]));
      break;
    case col::TypeId::kFloat64:
      out->append(FormatDouble(column.float64_data()[row]));
      break;
    case col::TypeId::kBool:
      out->append(column.bool_data()[row] != 0 ? "true" : "false");
      break;
    case col::TypeId::kString: {
      std::string_view v = column.GetView(row);
      if (v.empty()) {
        // Disambiguate the empty string from null (a bare empty field).
        out->append("\"\"");
      } else {
        AppendField(v, delimiter, out);
      }
      break;
    }
    default:
      AppendField(column.ValueToString(row), delimiter, out);
  }
}

std::string StringifyRows(const col::Table& table, int64_t begin, int64_t end,
                          char delimiter) {
  std::string out;
  out.reserve(static_cast<size_t>(end - begin) * 32);
  for (int64_t r = begin; r < end; ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(delimiter);
      AppendCell(*table.column(c), r, delimiter, &out);
    }
    out.push_back('\n');
  }
  return out;
}

std::string HeaderLine(const col::Table& table, char delimiter) {
  std::string out;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out.push_back(delimiter);
    AppendField(table.schema()->field(c).name, delimiter, &out);
  }
  out.push_back('\n');
  return out;
}

Status WriteAll(std::FILE* f, const std::string& data) {
  if (!data.empty() && std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
    return Status::IOError("short CSV write");
  }
  static obs::Counter* bytes_written =
      obs::MetricsRegistry::Global().counter("io.csv.bytes_written");
  bytes_written->Add(data.size());
  return Status::OK();
}

}  // namespace

Status WriteCsv(const col::TablePtr& table, const std::string& path,
                const CsvWriteOptions& options) {
  BENTO_TRACE_SPAN(kIo, "csv.write");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create ", path);
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  if (options.header) {
    BENTO_RETURN_NOT_OK(WriteAll(f, HeaderLine(*table, options.delimiter)));
  }
  // Stringify in modest blocks to bound the staging memory.
  constexpr int64_t kBlockRows = 64 * 1024;
  for (int64_t begin = 0; begin < table->num_rows(); begin += kBlockRows) {
    const int64_t end = std::min(table->num_rows(), begin + kBlockRows);
    BENTO_RETURN_NOT_OK(
        WriteAll(f, StringifyRows(*table, begin, end, options.delimiter)));
  }
  return Status::OK();
}

Status WriteCsvParallel(const col::TablePtr& table, const std::string& path,
                        const CsvWriteOptions& options,
                        const sim::ParallelOptions& parallel) {
  BENTO_TRACE_SPAN(kIo, "csv.write_parallel");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create ", path);
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  if (options.header) {
    BENTO_RETURN_NOT_OK(WriteAll(f, HeaderLine(*table, options.delimiter)));
  }

  int workers = parallel.max_workers;
  if (workers <= 0) {
    workers = sim::Session::Current() != nullptr
                  ? sim::Session::Current()->cores()
                  : 1;
  }
  auto ranges = sim::SplitRange(table->num_rows(), workers, 8192);
  std::vector<std::string> blocks(ranges.size());
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(ranges.size()),
      [&](int64_t i) {
        auto [b, e] = ranges[static_cast<size_t>(i)];
        blocks[static_cast<size_t>(i)] =
            StringifyRows(*table, b, e, options.delimiter);
        return Status::OK();
      },
      parallel));
  for (const std::string& block : blocks) {
    BENTO_RETURN_NOT_OK(WriteAll(f, block));
  }
  return Status::OK();
}

}  // namespace bento::io
