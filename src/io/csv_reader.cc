#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <charconv>
#include <cstring>
#include <set>

#include "columnar/builder.h"
#include "io/csv.h"
#include "kernels/flat_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace bento::io {

namespace {

using col::TypeId;

/// Splits one CSV record into fields. Quoted fields may contain the
/// delimiter and doubled quotes; `scratch` backs unescaped copies.
/// `quoted` (optional) records which fields were quoted — a quoted empty
/// field is an empty string, an unquoted one is null.
void SplitRecord(std::string_view line, char delimiter,
                 std::vector<std::string_view>* fields, std::string* scratch,
                 std::vector<bool>* quoted = nullptr) {
  fields->clear();
  scratch->clear();
  if (quoted != nullptr) quoted->clear();
  // Unescaped content never exceeds the raw line; reserving up front keeps
  // the string_views into scratch stable across push_backs.
  scratch->reserve(line.size());
  size_t pos = 0;
  while (true) {
    if (pos < line.size() && line[pos] == '"') {
      // Quoted field: unescape into scratch (stable because we reserve).
      const size_t scratch_start = scratch->size();
      ++pos;
      bool closed = false;
      while (pos < line.size()) {
        char c = line[pos];
        if (c == '"') {
          if (pos + 1 < line.size() && line[pos + 1] == '"') {
            scratch->push_back('"');
            pos += 2;
          } else {
            ++pos;
            closed = true;
            break;
          }
        } else {
          scratch->push_back(c);
          ++pos;
        }
      }
      (void)closed;
      fields->emplace_back(scratch->data() + scratch_start,
                           scratch->size() - scratch_start);
      if (quoted != nullptr) quoted->push_back(true);
      if (pos < line.size() && line[pos] == delimiter) {
        ++pos;
        continue;
      }
      break;
    }
    size_t next = line.find(delimiter, pos);
    if (next == std::string_view::npos) {
      fields->push_back(line.substr(pos));
      if (quoted != nullptr) quoted->push_back(false);
      break;
    }
    fields->push_back(line.substr(pos, next - pos));
    if (quoted != nullptr) quoted->push_back(false);
    pos = next + 1;
  }
}

bool IsNullLiteral(std::string_view v,
                   const std::vector<std::string>& null_literals) {
  for (const std::string& lit : null_literals) {
    if (v == lit) return true;
  }
  return false;
}

bool LooksLikeInt(std::string_view v) {
  int64_t out;
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc() && p == v.data() + v.size();
}

bool LooksLikeDouble(std::string_view v) {
  double out;
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc() && p == v.data() + v.size();
}

bool LooksLikeBool(std::string_view v) {
  return v == "true" || v == "false" || v == "True" || v == "False";
}

/// Walks `text` record by record (handles quoted newlines) and calls
/// `on_record(line)` for each one. Returns the offset one past the last
/// complete record (the remainder is a partial record).
template <typename Fn>
size_t ForEachRecord(std::string_view text, bool allow_partial_tail, Fn on_record) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = pos;
    bool in_quotes = false;
    while (end < text.size()) {
      char c = text[end];
      if (c == '"') {
        in_quotes = !in_quotes;
      } else if (c == '\n' && !in_quotes) {
        break;
      }
      ++end;
    }
    if (end >= text.size() && allow_partial_tail) {
      return pos;  // incomplete tail record
    }
    std::string_view line = text.substr(pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) on_record(line);
    pos = end + 1;
  }
  return pos;
}

/// Column-type inference over sampled rows.
col::SchemaPtr InferSchema(const std::vector<std::string>& names,
                           const std::vector<std::vector<std::string>>& sample,
                           const CsvReadOptions& options) {
  const size_t n_cols = names.size();
  std::vector<bool> all_int(n_cols, true);
  std::vector<bool> all_double(n_cols, true);
  std::vector<bool> all_bool(n_cols, true);
  std::vector<bool> any_value(n_cols, false);

  for (const auto& row : sample) {
    for (size_t c = 0; c < n_cols && c < row.size(); ++c) {
      std::string_view v = row[c];
      if (IsNullLiteral(v, options.null_literals)) continue;
      any_value[c] = true;
      if (all_int[c] && !LooksLikeInt(v)) all_int[c] = false;
      if (all_double[c] && !LooksLikeDouble(v)) all_double[c] = false;
      if (all_bool[c] && !LooksLikeBool(v)) all_bool[c] = false;
    }
  }

  std::vector<col::Field> fields;
  for (size_t c = 0; c < n_cols; ++c) {
    TypeId t = TypeId::kString;
    if (any_value[c]) {
      if (all_int[c]) {
        t = TypeId::kInt64;
      } else if (all_double[c]) {
        t = TypeId::kFloat64;
      } else if (all_bool[c]) {
        t = TypeId::kBool;
      }
    }
    if (t == TypeId::kString && options.dictionary_encode_strings) {
      t = TypeId::kCategorical;
    }
    fields.push_back({names[c], t});
  }
  return std::make_shared<col::Schema>(std::move(fields));
}

/// Typed appender: decodes one field into the right builder; unparsable
/// values become null.
class ColumnDecoder {
 public:
  ColumnDecoder(TypeId type, const CsvReadOptions* options)
      : type_(type), options_(options) {}

  void Append(std::string_view v, bool was_quoted = false) {
    // Quoted fields are literal content; only bare fields decode as null.
    if (!was_quoted && IsNullLiteral(v, options_->null_literals)) {
      AppendNull();
      return;
    }
    switch (type_) {
      case TypeId::kInt64: {
        int64_t out;
        auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
        if (ec == std::errc() && p == v.data() + v.size()) {
          ints_.Append(out);
        } else {
          ints_.AppendNull();
        }
        break;
      }
      case TypeId::kFloat64: {
        double out;
        auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
        if (ec == std::errc() && p == v.data() + v.size()) {
          doubles_.Append(out);
        } else {
          doubles_.AppendNull();
        }
        break;
      }
      case TypeId::kBool: {
        if (v == "true" || v == "True") {
          bools_.Append(true);
        } else if (v == "false" || v == "False") {
          bools_.Append(false);
        } else {
          bools_.AppendNull();
        }
        break;
      }
      case TypeId::kCategorical:
        // Intern at parse time: one copy per distinct value, int32 codes
        // per row — the dictionary-encoded string column path.
        cats_.Append(interner_.FindOrInsert(v));
        break;
      default:
        strings_.Append(v);
    }
  }

  void AppendNull() {
    switch (type_) {
      case TypeId::kInt64:
        ints_.AppendNull();
        break;
      case TypeId::kFloat64:
        doubles_.AppendNull();
        break;
      case TypeId::kBool:
        bools_.AppendNull();
        break;
      case TypeId::kCategorical:
        cats_.AppendNull();
        break;
      default:
        strings_.AppendNull();
    }
  }

  Result<col::ArrayPtr> Finish() {
    switch (type_) {
      case TypeId::kInt64:
        return ints_.Finish();
      case TypeId::kFloat64:
        return doubles_.Finish();
      case TypeId::kBool:
        return bools_.Finish();
      case TypeId::kCategorical: {
        auto dict =
            std::make_shared<std::vector<std::string>>(interner_.ToStrings());
        return cats_.Finish(std::move(dict));
      }
      default:
        return strings_.Finish();
    }
  }

 private:
  TypeId type_;
  const CsvReadOptions* options_;
  col::Int64Builder ints_;
  col::Float64Builder doubles_;
  col::BoolBuilder bools_;
  col::StringBuilder strings_;
  col::CategoricalBuilder cats_;
  kern::StringInterner interner_;
};

/// Parses `body` into `schema`'s columns. When `field_map` is non-null,
/// `schema` is a projection of the file and `(*field_map)[c]` gives the
/// record field index backing column `c`; unmapped fields are split but
/// never decoded (the column-skipping read path).
Result<col::TablePtr> ParseRecords(std::string_view body,
                                   const col::SchemaPtr& schema,
                                   const CsvReadOptions& options,
                                   const std::vector<size_t>* field_map =
                                       nullptr) {
  std::vector<ColumnDecoder> decoders;
  decoders.reserve(static_cast<size_t>(schema->num_fields()));
  for (const col::Field& f : schema->fields()) {
    decoders.emplace_back(f.type, &options);
  }
  std::vector<std::string_view> fields;
  std::vector<bool> quoted;
  std::string scratch;
  scratch.reserve(4096);
  ForEachRecord(body, /*allow_partial_tail=*/false, [&](std::string_view line) {
    SplitRecord(line, options.delimiter, &fields, &scratch, &quoted);
    for (size_t c = 0; c < decoders.size(); ++c) {
      const size_t f = field_map != nullptr ? (*field_map)[c] : c;
      if (f < fields.size()) {
        decoders[c].Append(fields[f], quoted[f]);
      } else {
        decoders[c].AppendNull();
      }
    }
  });
  std::vector<col::ArrayPtr> columns;
  for (auto& d : decoders) {
    BENTO_ASSIGN_OR_RETURN(auto a, d.Finish());
    columns.push_back(std::move(a));
  }
  return col::Table::Make(schema, std::move(columns));
}

/// Resolved form of CsvReadOptions::drop_columns: the projected schema and,
/// per kept column, the index of its field in the raw record.
struct CsvProjection {
  col::SchemaPtr schema;
  std::vector<size_t> field_map;
  bool active = false;
};

Result<CsvProjection> ResolveDropColumns(const col::SchemaPtr& full,
                                         const CsvReadOptions& options) {
  CsvProjection proj;
  proj.schema = full;
  if (options.drop_columns.empty()) return proj;
  std::set<std::string> drop;
  for (const std::string& name : options.drop_columns) {
    if (full->IndexOf(name) < 0) {
      return Status::KeyError("no column named '", name, "'");
    }
    drop.insert(name);
  }
  std::vector<col::Field> fields;
  for (int c = 0; c < full->num_fields(); ++c) {
    const col::Field& f = full->fields()[static_cast<size_t>(c)];
    if (drop.count(f.name) != 0) continue;
    fields.push_back(f);
    proj.field_map.push_back(static_cast<size_t>(c));
  }
  proj.schema = std::make_shared<col::Schema>(std::move(fields));
  proj.active = true;
  static obs::Counter* skipped =
      obs::MetricsRegistry::Global().counter("io.csv.columns_skipped");
  skipped->Add(static_cast<int64_t>(drop.size()));
  return proj;
}

struct HeaderInfo {
  std::vector<std::string> names;
  size_t body_offset = 0;  // offset of the first data record
};

HeaderInfo ReadHeader(std::string_view text, const CsvReadOptions& options) {
  HeaderInfo info;
  size_t end = text.find('\n');
  std::string_view first =
      end == std::string_view::npos ? text : text.substr(0, end);
  if (!first.empty() && first.back() == '\r') first.remove_suffix(1);
  std::vector<std::string_view> fields;
  std::string scratch;
  SplitRecord(first, options.delimiter, &fields, &scratch);
  if (options.has_header) {
    for (std::string_view f : fields) info.names.emplace_back(f);
    info.body_offset = end == std::string_view::npos ? text.size() : end + 1;
  } else {
    for (size_t c = 0; c < fields.size(); ++c) {
      info.names.push_back("c" + std::to_string(c));
    }
    info.body_offset = 0;
  }
  return info;
}

col::SchemaPtr InferFromBody(std::string_view body,
                             const std::vector<std::string>& names,
                             const CsvReadOptions& options) {
  std::vector<std::vector<std::string>> sample;
  std::vector<std::string_view> fields;
  std::string scratch;
  int64_t taken = 0;
  ForEachRecord(body, false, [&](std::string_view line) {
    if (taken >= options.infer_rows) return;
    SplitRecord(line, options.delimiter, &fields, &scratch);
    std::vector<std::string> row;
    row.reserve(fields.size());
    for (std::string_view f : fields) row.emplace_back(f);
    sample.push_back(std::move(row));
    ++taken;
  });
  return InferSchema(names, sample, options);
}

Result<std::string> SlurpFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open ", path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string content(static_cast<size_t>(size), '\0');
  const size_t got = std::fread(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (got != content.size()) return Status::IOError("short read from ", path);
  return content;
}

}  // namespace

Result<col::TablePtr> ReadCsv(const std::string& path,
                              const CsvReadOptions& options) {
  BENTO_TRACE_SPAN(kIo, "csv.read");
  BENTO_ASSIGN_OR_RETURN(std::string content, SlurpFile(path));
  static obs::Counter* bytes_read =
      obs::MetricsRegistry::Global().counter("io.csv.bytes_read");
  bytes_read->Add(content.size());
  HeaderInfo header = ReadHeader(content, options);
  std::string_view body =
      std::string_view(content).substr(header.body_offset);
  col::SchemaPtr schema = options.schema;
  if (schema == nullptr) {
    schema = InferFromBody(body, header.names, options);
  } else if (static_cast<size_t>(schema->num_fields()) != header.names.size()) {
    return Status::Invalid("explicit schema has ", schema->num_fields(),
                           " fields, file has ", header.names.size());
  }
  BENTO_ASSIGN_OR_RETURN(CsvProjection proj,
                         ResolveDropColumns(schema, options));
  return ParseRecords(body, proj.schema, options,
                      proj.active ? &proj.field_map : nullptr);
}

Result<col::TablePtr> ReadCsvMmap(const std::string& path,
                                  const CsvReadOptions& options,
                                  const sim::ParallelOptions& parallel) {
  BENTO_TRACE_SPAN(kIo, "csv.read_mmap");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open ", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("stat failed for ", path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  static obs::Counter* bytes_read =
      obs::MetricsRegistry::Global().counter("io.csv.bytes_read");
  bytes_read->Add(size);
  void* mapped = size > 0 ? ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0)
                          : nullptr;
  ::close(fd);
  if (size > 0 && mapped == MAP_FAILED) {
    return Status::IOError("mmap failed for ", path);
  }
  struct Unmapper {
    void* p;
    size_t n;
    ~Unmapper() {
      if (p != nullptr) ::munmap(p, n);
    }
  } unmapper{mapped, size};

  std::string_view text(static_cast<const char*>(mapped), size);
  HeaderInfo header = ReadHeader(text, options);
  std::string_view body = text.substr(header.body_offset);
  col::SchemaPtr schema = options.schema;
  if (schema == nullptr) schema = InferFromBody(body, header.names, options);
  BENTO_ASSIGN_OR_RETURN(CsvProjection proj,
                         ResolveDropColumns(schema, options));
  schema = proj.schema;
  const std::vector<size_t>* field_map =
      proj.active ? &proj.field_map : nullptr;

  // Split at record boundaries (newline scan; quoted newlines are not
  // supported on this parallel path, matching mmap readers' restrictions).
  int workers = parallel.max_workers;
  if (workers <= 0) {
    workers = sim::Session::Current() != nullptr
                  ? sim::Session::Current()->cores()
                  : 1;
  }
  std::vector<std::pair<size_t, size_t>> chunks;
  if (workers <= 1 || body.size() < 1 << 16) {
    chunks.emplace_back(0, body.size());
  } else {
    size_t begin = 0;
    for (int w = 1; w <= workers; ++w) {
      size_t target = body.size() * static_cast<size_t>(w) /
                      static_cast<size_t>(workers);
      if (w == workers) {
        chunks.emplace_back(begin, body.size());
        break;
      }
      size_t cut = body.find('\n', target);
      if (cut == std::string_view::npos) {
        chunks.emplace_back(begin, body.size());
        begin = body.size();
        break;
      }
      chunks.emplace_back(begin, cut + 1);
      begin = cut + 1;
    }
  }

  std::vector<col::TablePtr> parts(chunks.size());
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(chunks.size()),
      [&](int64_t i) -> Status {
        auto [b, e] = chunks[static_cast<size_t>(i)];
        if (e <= b) {
          return Status::OK();
        }
        BENTO_ASSIGN_OR_RETURN(parts[static_cast<size_t>(i)],
                               ParseRecords(body.substr(b, e - b), schema,
                                            options, field_map));
        return Status::OK();
      },
      parallel));

  std::vector<col::TablePtr> non_empty;
  for (auto& p : parts) {
    if (p != nullptr && p->num_rows() > 0) non_empty.push_back(std::move(p));
  }
  if (non_empty.empty()) return col::Table::MakeEmpty(schema);
  return col::ConcatTables(non_empty);
}

Result<std::unique_ptr<CsvChunkReader>> CsvChunkReader::Open(
    const std::string& path, const CsvReadOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open ", path);
  auto reader = std::unique_ptr<CsvChunkReader>(new CsvChunkReader());
  reader->file_ = f;
  reader->options_ = options;

  // Read an inference prefix, then rewind past the header only.
  std::string prefix(1 << 20, '\0');
  const size_t got = std::fread(prefix.data(), 1, prefix.size(), f);
  prefix.resize(got);
  HeaderInfo header = ReadHeader(prefix, options);
  std::string_view body = std::string_view(prefix).substr(header.body_offset);
  col::SchemaPtr full = options.schema != nullptr
                            ? options.schema
                            : InferFromBody(body, header.names, options);
  BENTO_ASSIGN_OR_RETURN(CsvProjection proj,
                         ResolveDropColumns(full, options));
  reader->schema_ = proj.schema;
  if (proj.active) reader->field_map_ = std::move(proj.field_map);
  if (std::fseek(f, static_cast<long>(header.body_offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed for ", path);
  }
  return reader;
}

CsvChunkReader::~CsvChunkReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<col::TablePtr> CsvChunkReader::Next() {
  BENTO_TRACE_SPAN(kIo, "csv.chunk_next");
  if (eof_ && carry_.empty()) return col::TablePtr(nullptr);

  // Accumulate at least chunk_rows complete records in the buffer, then cut
  // exactly chunk_rows of them; the remainder carries to the next call.
  std::string buffer = std::move(carry_);
  carry_.clear();
  std::string block(256 * 1024, '\0');
  std::string chunk_text;

  auto count_and_cut = [&](int64_t limit, int64_t* rows_out) -> size_t {
    // Scans complete records; returns the offset just past record `limit`
    // (or past the last complete record when fewer are buffered).
    int64_t rows = 0;
    size_t cut = 0;
    ForEachRecord(buffer, /*allow_partial_tail=*/true,
                  [&](std::string_view) { ++rows; });
    // Second pass to find the cut offset for `limit` records.
    int64_t seen = 0;
    size_t pos = 0;
    std::string_view text(buffer);
    while (pos < text.size() && seen < limit) {
      size_t end = pos;
      bool in_quotes = false;
      while (end < text.size()) {
        char c = text[end];
        if (c == '"') {
          in_quotes = !in_quotes;
        } else if (c == '\n' && !in_quotes) {
          break;
        }
        ++end;
      }
      if (end >= text.size()) break;  // incomplete tail
      if (end > pos) ++seen;          // skip blank lines without counting
      pos = end + 1;
      cut = pos;
    }
    *rows_out = rows;
    return cut;
  };

  int64_t rows = 0;
  while (true) {
    count_and_cut(0, &rows);
    if (rows >= options_.chunk_rows || eof_) break;
    const size_t got = std::fread(block.data(), 1, block.size(), file_);
    if (got == 0) {
      eof_ = true;
      continue;
    }
    buffer.append(block.data(), got);
  }

  if (eof_ && rows <= options_.chunk_rows) {
    // Flush everything, including a tail record without trailing newline.
    chunk_text = std::move(buffer);
    carry_.clear();
  } else {
    const size_t cut = count_and_cut(options_.chunk_rows, &rows);
    chunk_text = buffer.substr(0, cut);
    carry_ = buffer.substr(cut);
  }
  if (chunk_text.empty()) {
    eof_ = true;
    return col::TablePtr(nullptr);
  }
  return ParseRecords(chunk_text, schema_, options_,
                      field_map_.empty() ? nullptr : &field_map_);
}

}  // namespace bento::io
