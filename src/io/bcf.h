#ifndef BENTO_IO_BCF_H_
#define BENTO_IO_BCF_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "io/encoding.h"

namespace bento::io {

/// \brief BCF ("Bento Columnar Format") is this repo's Parquet stand-in:
/// a footer-indexed, row-grouped, column-chunked binary format with
/// per-page encodings (PLAIN/DELTA/DICT/RLE) and optional LZ page
/// compression.
///
/// Layout:
///   "BCF1" | row-group pages... | footer(JSON) | u64 footer_len | "BCF1"
///
/// Each column chunk stores an optional raw validity bitmap page followed by
/// the encoded value page. The footer records offsets/sizes/encodings, so
/// readers can project columns and stream row groups without touching the
/// rest of the file — the property behind the paper's Parquet observations
/// (Fig. 5/6).
struct BcfWriteOptions {
  int64_t row_group_rows = 64 * 1024;
  bool compression = true;
};

/// \brief One zone-map-prunable conjunct of a scan filter:
/// `column <cmp> value` over a numeric column. Readers use per-row-group
/// min/max statistics to skip groups that cannot contain a matching row;
/// the full predicate always re-runs on the rows that are read, so stats
/// are an accelerator, never a correctness carrier.
struct ScanPredicate {
  enum class Cmp { kLt, kLe, kGt, kGe, kEq };
  std::string column;
  Cmp cmp = Cmp::kEq;
  double value = 0.0;
};

Status WriteBcf(const col::TablePtr& table, const std::string& path,
                const BcfWriteOptions& options = {});

/// \brief Incremental BCF writer: append tables (each becomes one or more
/// row groups), then Finish() writes the footer. Used for streaming
/// conversions (the Vaex engine's CSV -> memory-mapped format pass) and
/// spill files.
class BcfWriter {
 public:
  static Result<std::unique_ptr<BcfWriter>> Open(
      const std::string& path, const BcfWriteOptions& options = {});

  ~BcfWriter();
  BcfWriter(const BcfWriter&) = delete;
  BcfWriter& operator=(const BcfWriter&) = delete;

  /// Appends `table` as row groups; the schema is fixed by the first call.
  Status Append(const col::TablePtr& table);

  /// Writes the footer and closes the file. Must be called exactly once.
  Status Finish();

 private:
  struct GroupMeta;
  BcfWriter() = default;

  Status AppendGroup(const col::TablePtr& slice);

  std::FILE* file_ = nullptr;
  BcfWriteOptions options_;
  col::SchemaPtr schema_;
  uint64_t offset_ = 0;
  int64_t total_rows_ = 0;
  std::vector<GroupMeta> groups_;
  bool finished_ = false;
};

struct BcfReadOptions {
  /// Surface string columns whose every chunk is DICT-encoded as
  /// dictionary-encoded categoricals instead of materializing the strings —
  /// the decoded page's codes become the column's codes directly. Columns
  /// with any PLAIN chunk still decode as plain strings (mixed-encoding
  /// groups cannot share one categorical type across a concat).
  bool strings_as_categorical = false;
};

class BcfReader {
 public:
  static Result<std::unique_ptr<BcfReader>> Open(
      const std::string& path, const BcfReadOptions& options = {});

  ~BcfReader();
  BcfReader(const BcfReader&) = delete;
  BcfReader& operator=(const BcfReader&) = delete;

  const col::SchemaPtr& schema() const { return schema_; }
  int num_row_groups() const { return static_cast<int>(groups_.size()); }
  int64_t num_rows() const { return num_rows_; }

  /// Reads one row group, optionally projecting to `columns` (all when
  /// empty). Projection touches only the selected chunks' bytes.
  Result<col::TablePtr> ReadRowGroup(
      int group, const std::vector<std::string>& columns = {});

  /// Concatenation of all row groups.
  Result<col::TablePtr> ReadAll(const std::vector<std::string>& columns = {});

  /// True unless the group's zone-map statistics prove no row can satisfy
  /// `pred`. Unknown columns and chunks without statistics (string columns,
  /// all-null chunks, files written before stats existed) return true.
  bool GroupMayMatch(int group, const ScanPredicate& pred) const;

 private:
  struct ColumnChunk {
    uint64_t validity_offset = 0;
    uint64_t validity_size = 0;
    uint64_t data_offset = 0;
    uint64_t data_size = 0;      // on-disk (possibly compressed) size
    uint64_t raw_size = 0;       // decoded-page byte size
    Encoding encoding = Encoding::kPlain;
    bool compressed = false;
    int64_t null_count = 0;
    /// Zone map over the chunk's valid values (numeric columns only).
    bool has_stats = false;
    double min = 0.0;
    double max = 0.0;
  };
  struct RowGroup {
    int64_t num_rows = 0;
    std::vector<ColumnChunk> columns;
  };

  BcfReader() = default;

  Result<std::vector<uint8_t>> ReadRange(uint64_t offset, uint64_t size);

  std::FILE* file_ = nullptr;
  BcfReadOptions options_;
  col::SchemaPtr schema_;
  std::vector<RowGroup> groups_;
  int64_t num_rows_ = 0;
  /// Per column: every row group's chunk is DICT-encoded (so the column can
  /// surface as one categorical type under strings_as_categorical).
  std::vector<bool> dict_everywhere_;
};

}  // namespace bento::io

#endif  // BENTO_IO_BCF_H_
